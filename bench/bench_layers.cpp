// Split-layer sweep (extension beyond the paper's M1/M3): how attack
// difficulty changes with the split layer. One layout per design, split
// at M1..M5; reports fragment counts, the candidate ceiling, and the
// proximity / network-flow baselines. Expected monotonics: higher split
// layers leave fewer broken nets (less for an attacker to recover) and
// sparser virtual pins (each recovery easier) — the defender's tradeoff
// the paper's introduction describes.
#include <iostream>
#include <string>

#include "bench_util.hpp"

#include "attack/flow_attack.hpp"
#include "attack/proximity_attack.hpp"
#include "eval/experiment.hpp"
#include "split/candidates.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kWarn);
  sma::benchutil::init_observability();
  std::vector<std::string> designs = {"c880", "c3540"};
  if (argc > 1) {
    designs.clear();
    for (int i = 1; i < argc; ++i) designs.push_back(argv[i]);
  }

  std::cout << "Split-layer sweep (extension; paper evaluates M1 and M3)\n\n";
  for (const std::string& name : designs) {
    // Build the layout once; splitting is cheap.
    sma::eval::PreparedSplit base = sma::eval::prepare_split(
        sma::netlist::find_profile(name), 1, sma::layout::FlowConfig{}, 2019);

    sma::util::Table table({"Layer", "#Sk", "#Sc", "#VP", "hit%(n=31)",
                            "prox CCR%", "flow CCR%"});
    for (int layer = 1; layer <= 5; ++layer) {
      sma::split::SplitDesign split(base.design.get(), layer);
      sma::split::SplitStats stats = split.stats();
      double hit = sma::split::candidate_hit_rate(
          sma::split::build_queries(split));
      sma::attack::AttackResult prox =
          sma::attack::run_proximity_attack(split);
      sma::attack::FlowAttackConfig flow_config;
      flow_config.timeout_seconds = 30.0;
      sma::attack::AttackResult flow =
          sma::attack::run_flow_attack(split, flow_config);
      table.add_row(
          {"M" + std::to_string(layer),
           std::to_string(stats.num_sink_fragments),
           std::to_string(stats.num_source_fragments),
           std::to_string(stats.num_virtual_pins),
           sma::util::format_double(hit * 100, 1),
           sma::util::format_double(prox.ccr * 100, 2),
           flow.timed_out ? "N/A"
                          : sma::util::format_double(flow.ccr * 100, 2)});
    }
    std::cout << "=== " << name << " ===\n" << table.to_string() << "\n";
  }
  std::cout << "Expected shape: #Sk falls as the split moves up while the "
               "baselines' CCR rises — fewer, easier connections.\n";
  sma::benchutil::flush_report(sma::obs::RunReport("layers", 1));
  sma::benchutil::flush_trace();
  return 0;
}
