// Before/after benchmark for the fused training-step engine (the
// tentpole measurement of the TrainStep PR): train the fast-profile
// network on one real design twice — once on the reference three-pass
// update path (per-step lane reduce, Adam pass, weight broadcast onto
// full lane clones; the PR-2 baseline) and once on the fused engine
// (shared-weight pinned lanes, one reduce+Adam pass, no broadcast) — and
// compare s/epoch. The two trained models are also compared byte for
// byte: the fused engine is a performance toggle, never a semantic one.
//
// Since the activation-arena PR this bench also reports steady-state
// allocation behavior: the first epoch warms each net's arena up to the
// largest query shape, and every later epoch must add ZERO arena heap
// allocations. The JSON carries the last-epoch alloc count (total and
// per query) and the pinned arena bytes for both paths; in --smoke mode
// a nonzero steady-state alloc count fails the run (the CI gate).
//
// Since the channel-major layout PR this bench also runs a layout A/B
// pair on the fused path with the conv trunk enabled: the PR-7 blocked
// pipeline (ConvLayoutMode::kRowMajorCompat) vs the channel-major
// default, reporting s/epoch for both plus the nn.reorder_bytes /
// nn.pack_bytes counter deltas per mode ("layout_ab" in the JSON). In
// --smoke mode two more gates ride on it: byte-identical models across
// the modes, and zero reorder bytes on the channel-major run.
//
// Human-readable progress goes to stderr; stdout carries exactly one
// JSON object (scripts/bench.sh redirects it to BENCH_train.json).
//
// Flags:
//   --smoke        tiny synthetic design, 2 epochs (warm-up + steady
//                  state), no timing claims; exercises both paths,
//                  verifies bit-identity and zero steady-state arena
//                  allocations (CI)
//   --design=c432  design used for the comparison
//   --layer=1      split layer
//   --epochs=3     training epochs per path
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/dataset.hpp"
#include "attack/dl_attack.hpp"
#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace {

struct PathResult {
  double s_per_epoch = 0.0;
  long queries_seen = 0;
  long warmup_allocs = 0;  ///< arena heap growths in epoch 1
  long steady_allocs = 0;  ///< arena heap growths in the last epoch
  std::size_t arena_bytes = 0;
  std::string model_bytes;
};

PathResult run_path(const sma::eval::PreparedSplit& prepared,
                    const sma::eval::ExperimentProfile& profile,
                    bool fused, int epochs, bool use_all_queries,
                    sma::obs::RunReport* report = nullptr) {
  sma::attack::DatasetConfig dataset_config = profile.dataset;
  dataset_config.build_images = profile.net.use_images;

  sma::nn::NetConfig net_config = profile.net;
  if (net_config.use_images) {
    net_config.image_channels =
        static_cast<int>(profile.dataset.images.pixel_sizes.size());
  }

  sma::attack::TrainConfig train_config = profile.train;
  train_config.epochs = epochs;
  train_config.fused_step = fused;
  // The steady-state gate needs every query shape seen during warm-up;
  // per-epoch subsampling could defer a large query past epoch 1.
  if (use_all_queries) train_config.max_queries_per_design = 0;

  std::vector<sma::attack::QueryDataset> training;
  training.emplace_back(prepared.split.get(), dataset_config);
  // Feature extraction is dataset preparation, not training; render the
  // image cache up front so s/epoch measures the training loop.
  training.back().prebuild_images(nullptr);
  std::vector<sma::attack::QueryDataset> validation;

  sma::attack::DlAttack dl(net_config);
  sma::attack::TrainStats stats =
      dl.train(training, validation, train_config, /*pool=*/nullptr);
  if (report != nullptr) report->add_train(stats);

  PathResult result;
  result.s_per_epoch = stats.seconds / epochs;
  result.queries_seen = stats.queries_seen;
  if (!stats.arena_allocs_per_epoch.empty()) {
    result.warmup_allocs = stats.arena_allocs_per_epoch.front();
    result.steady_allocs = stats.arena_allocs_per_epoch.back();
  }
  result.arena_bytes = stats.arena_bytes_pinned;
  std::stringstream bytes;
  dl.net().save(bytes);
  result.model_bytes = bytes.str();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kWarn);
  sma::benchutil::init_observability();

  bool smoke = false;
  std::string design = "c432";
  int layer = 1;
  int epochs = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--design=", 0) == 0) {
      design = arg.substr(9);
    } else if (arg.rfind("--layer=", 0) == 0) {
      layer = sma::benchutil::parse_int(arg.substr(8), "--layer", 1);
    } else if (arg.rfind("--epochs=", 0) == 0) {
      epochs = sma::benchutil::parse_int(arg.substr(9), "--epochs", 1);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  sma::eval::ExperimentProfile profile = sma::eval::ExperimentProfile::fast();
  sma::eval::PreparedSplit prepared;
  if (smoke) {
    // Tiny synthetic design and a tiny vector-only net: exercises both
    // update paths end-to-end in well under a second. Two epochs so the
    // second exercises (and gates) the alloc-free steady state.
    epochs = 2;
    sma::netlist::DesignProfile tiny;
    tiny.name = "smoke_train";
    tiny.num_inputs = 8;
    tiny.num_outputs = 4;
    tiny.num_gates = 280;
    prepared = sma::eval::prepare_split(tiny, 3, sma::layout::FlowConfig{},
                                        /*seed=*/2019);
    profile.net.use_images = false;
    profile.net.hidden = 16;
    profile.net.vector_res_blocks = 1;
    profile.net.merged_res_blocks = 1;
    profile.dataset.candidates.max_candidates = 6;
  } else {
    std::cerr << "bench_train: preparing " << design << " (M" << layer
              << ")...\n";
    try {
      prepared = sma::eval::prepare_split(sma::netlist::find_profile(design),
                                          layer, sma::layout::FlowConfig{},
                                          /*seed=*/2019);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  std::cerr << "bench_train: " << epochs << " epochs per path, batch "
            << profile.train.batch_size << " lanes\n";
  // The smoke gate requires a deterministic query set per epoch (no
  // subsampling), so steady-state epochs only revisit warmed-up shapes.
  PathResult unfused =
      run_path(prepared, profile, /*fused=*/false, epochs, smoke);
  std::cerr << "  three-pass (PR-2 baseline): " << unfused.s_per_epoch
            << " s/epoch (" << unfused.queries_seen << " queries, "
            << unfused.steady_allocs << " steady-state arena allocs)\n";
  sma::obs::RunReport report("train", 1);
  PathResult fused =
      run_path(prepared, profile, /*fused=*/true, epochs, smoke, &report);
  std::cerr << "  fused engine:               " << fused.s_per_epoch
            << " s/epoch (" << fused.queries_seen << " queries, "
            << fused.steady_allocs << " steady-state arena allocs, "
            << fused.arena_bytes << " arena bytes)\n";

  const double speedup =
      fused.s_per_epoch > 0.0 ? unfused.s_per_epoch / fused.s_per_epoch : 0.0;
  const bool identical = unfused.model_bytes == fused.model_bytes &&
                         !unfused.model_bytes.empty() &&
                         unfused.queries_seen > 0;
  std::cerr << "  speedup " << speedup << "x, models "
            << (identical ? "identical" : "DIFFER") << "\n";
  // Post-warm-up epochs must add zero arena heap allocations. Gated in
  // smoke mode (full runs subsample per epoch, so a late-arriving larger
  // query can legitimately grow an arena; the counts are still reported).
  const bool alloc_free =
      unfused.steady_allocs == 0 && fused.steady_allocs == 0 && epochs > 1;
  if (smoke) {
    std::cerr << (alloc_free
                      ? "steady-state check: zero arena allocs after warm-up\n"
                      : "steady-state check FAILED: arena still allocating "
                        "after warm-up\n");
  }

  // --- layout A/B: blocked PR-7 pipeline (row-major compat) vs the
  // channel-major default, fused path, conv trunk exercised. The main
  // smoke pair above is vector-only, so this pair switches images ON
  // (tiny 15x15 three-scale images from the fast profile) to drive the
  // conv pipeline through both modes. Two gates ride on it in smoke
  // mode: the two trained models must be byte-identical (the layout
  // refactor is data movement, never semantics — this IS the PR-7
  // equivalence gate, since compat mode is the PR-7 pipeline), and the
  // channel-major run must report zero nn.reorder_bytes (the counter
  // proves the layer-boundary reorders are gone rather than asserting
  // it in prose). Counter deltas are read around each run; with
  // SMA_OBS=OFF both deltas are zero and the gate stays vacuously green.
  sma::eval::ExperimentProfile ab_profile = profile;
  ab_profile.net.use_images = true;
  sma::obs::Registry& reg = sma::obs::Registry::global();
  struct AbResult {
    PathResult path;
    double s_per_epoch = 0.0;
    std::uint64_t reorder_bytes = 0;
    std::uint64_t pack_bytes = 0;
  };
  AbResult ab[2];  // [0] = pr7 compat, [1] = channel-major
  for (int mode = 0; mode < 2; ++mode) {
    sma::nn::set_conv_layout_mode(
        mode == 0 ? sma::nn::ConvLayoutMode::kRowMajorCompat
                  : sma::nn::ConvLayoutMode::kChannelMajor);
    const std::uint64_t reorder0 = reg.counter("nn.reorder_bytes").value();
    const std::uint64_t pack0 = reg.counter("nn.pack_bytes").value();
    ab[mode].path = run_path(prepared, ab_profile, /*fused=*/true, epochs,
                             smoke);
    ab[mode].s_per_epoch = ab[mode].path.s_per_epoch;
    ab[mode].reorder_bytes = reg.counter("nn.reorder_bytes").value() - reorder0;
    ab[mode].pack_bytes = reg.counter("nn.pack_bytes").value() - pack0;
  }
  sma::nn::set_conv_layout_mode(sma::nn::ConvLayoutMode::kChannelMajor);
  const bool ab_identical = ab[0].path.model_bytes == ab[1].path.model_bytes &&
                            !ab[0].path.model_bytes.empty() &&
                            ab[0].path.queries_seen > 0;
  const bool ab_reorder_free = ab[1].reorder_bytes == 0;
  const double ab_speedup = ab[1].s_per_epoch > 0.0
                                ? ab[0].s_per_epoch / ab[1].s_per_epoch
                                : 0.0;
  std::cerr << "  layout A/B (conv trunk): pr7 " << ab[0].s_per_epoch
            << " s/epoch (" << ab[0].reorder_bytes
            << " reorder bytes) -> channel-major " << ab[1].s_per_epoch
            << " s/epoch (" << ab[1].reorder_bytes << " reorder bytes, "
            << ab_speedup << "x), models "
            << (ab_identical ? "identical" : "DIFFER") << "\n";
  if (!ab_reorder_free) {
    std::cerr << "layout check FAILED: channel-major run still moved "
              << ab[1].reorder_bytes << " reorder bytes\n";
  }

  const long queries_per_epoch = unfused.queries_seen / epochs;
  const double fused_allocs_per_query =
      queries_per_epoch > 0
          ? static_cast<double>(fused.steady_allocs) / queries_per_epoch
          : 0.0;
  std::ostringstream json;
  json << "{\"bench\": \"train\", \"smoke\": " << (smoke ? "true" : "false")
       << ", \"design\": \"" << (smoke ? "smoke_train" : design)
       << "\", \"layer\": " << (smoke ? 3 : layer)
       << ", \"epochs\": " << epochs
       << ", \"lanes\": " << profile.train.batch_size
       << ", \"queries_per_epoch\": " << queries_per_epoch
       << ", \"unfused_s_per_epoch\": " << unfused.s_per_epoch
       << ", \"fused_s_per_epoch\": " << fused.s_per_epoch
       << ", \"speedup\": " << speedup
       << ", \"unfused_steady_allocs\": " << unfused.steady_allocs
       << ", \"fused_warmup_allocs\": " << fused.warmup_allocs
       << ", \"fused_steady_allocs\": " << fused.steady_allocs
       << ", \"fused_steady_allocs_per_query\": " << fused_allocs_per_query
       << ", \"fused_arena_bytes\": " << fused.arena_bytes
       << ", \"models_identical\": " << (identical ? "true" : "false")
       << ", \"layout_ab\": {\"pr7_s_per_epoch\": " << ab[0].s_per_epoch
       << ", \"channel_major_s_per_epoch\": " << ab[1].s_per_epoch
       << ", \"speedup\": " << ab_speedup
       << ", \"models_identical\": " << (ab_identical ? "true" : "false")
       << ", \"pr7_reorder_bytes\": " << ab[0].reorder_bytes
       << ", \"channel_major_reorder_bytes\": " << ab[1].reorder_bytes
       << ", \"pr7_pack_bytes\": " << ab[0].pack_bytes
       << ", \"channel_major_pack_bytes\": " << ab[1].pack_bytes << "}"
       << sma::benchutil::report_fragment(report) << "}";
  std::cout << json.str() << "\n";
  sma::benchutil::flush_trace();
  std::cerr << (identical && ab_identical
                    ? "bit-identity check: trained models identical\n"
                    : "bit-identity check FAILED\n");
  if (!identical || !ab_identical) return 1;
  if (smoke && !alloc_free) return 1;
  if (smoke && !ab_reorder_free) return 1;
  return 0;
}
