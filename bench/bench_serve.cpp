// Benchmark for the batched cross-query inference engine and the
// coalescing serve loop (the tentpole measurement of the batched-serving
// PR): train the fast-profile network once, then attack the same split at
// batch widths B in {1, 4, 16, 64} and report queries/sec per width. Two
// gates ride on every width:
//
//   * byte-identity — selections and CCR at width B must equal the
//     B == 1 baseline bit for bit (the batched path is a performance
//     knob, never a semantic one);
//   * alloc-free steady state — after one warm-up pass at width B, the
//     measured repetitions must add ZERO activation-arena heap
//     allocations (the replica arenas grow once to the widest batch and
//     then stay flat).
//
// Each width also runs the ServeLoop front end (max_batch = B) under
// concurrent client threads and reports client-observed p50/p99 submit
// latency plus the realized batch shapes — the coalescing knee is
// visible as queries/sec rising with B until the GEMMs saturate.
//
// Human-readable progress goes to stderr; stdout carries exactly one
// JSON object (scripts/bench.sh redirects it to BENCH_serve.json).
//
// Flags:
//   --smoke         tiny synthetic design, no timing claims; exercises
//                   every width end-to-end and enforces both gates (CI)
//   --design=c432   design used for the sweep
//   --layer=1       split layer
//   --epochs=2      training epochs before the sweep
//   --widths=1,4,16,64
//   --reps=3        timed attack() repetitions per width
//   --clients=4     concurrent submitter threads for the ServeLoop pass
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/dataset.hpp"
#include "attack/dl_attack.hpp"
#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "serve/serve_loop.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace {

bool selections_equal(const sma::attack::AttackResult& a,
                      const sma::attack::AttackResult& b) {
  if (a.selections.size() != b.selections.size()) return false;
  for (std::size_t i = 0; i < a.selections.size(); ++i) {
    if (a.selections[i].sink_fragment != b.selections[i].sink_fragment ||
        a.selections[i].chosen_source != b.selections[i].chosen_source ||
        a.selections[i].correct != b.selections[i].correct ||
        a.selections[i].num_sinks != b.selections[i].num_sinks) {
      return false;
    }
  }
  return a.ccr == b.ccr;  // bit-equal, not approximately
}

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

struct WidthResult {
  int width = 0;
  double attack_seconds = 0.0;  ///< per timed repetition
  double queries_per_sec = 0.0;
  long steady_arena_allocs = 0;
  bool identical = false;
  double serve_p50_us = 0.0;
  double serve_p99_us = 0.0;
  long serve_batches = 0;
  std::size_t serve_max_batch = 0;
};

}  // namespace

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kWarn);
  sma::benchutil::init_observability();

  bool smoke = false;
  std::string design = "c432";
  int layer = 1;
  int epochs = 2;
  int reps = 3;
  int clients = 4;
  std::vector<int> widths = {1, 4, 16, 64};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--design=", 0) == 0) {
      design = arg.substr(9);
    } else if (arg.rfind("--layer=", 0) == 0) {
      layer = sma::benchutil::parse_int(arg.substr(8), "--layer", 1);
    } else if (arg.rfind("--epochs=", 0) == 0) {
      epochs = sma::benchutil::parse_int(arg.substr(9), "--epochs", 1);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = sma::benchutil::parse_int(arg.substr(7), "--reps", 1);
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = sma::benchutil::parse_int(arg.substr(10), "--clients", 1);
    } else if (arg.rfind("--widths=", 0) == 0) {
      widths.clear();
      for (const std::string& w : sma::benchutil::split_list(arg.substr(9))) {
        widths.push_back(sma::benchutil::parse_int(w, "--widths", 1));
      }
      if (widths.empty()) {
        std::cerr << "--widths needs at least one width\n";
        return 2;
      }
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  sma::eval::ExperimentProfile profile = sma::eval::ExperimentProfile::fast();
  sma::eval::PreparedSplit prepared;
  if (smoke) {
    // Tiny synthetic design, images ON: the batched fusion seam (source
    // rows + strided sink broadcast) only exists on the image branch, so
    // the smoke gate must drive it.
    sma::netlist::DesignProfile tiny;
    tiny.name = "smoke_serve";
    tiny.num_inputs = 8;
    tiny.num_outputs = 4;
    tiny.num_gates = 420;
    prepared = sma::eval::prepare_split(tiny, 3, sma::layout::FlowConfig{},
                                        /*seed=*/2019);
    layer = 3;
    epochs = std::min(epochs, 2);
    reps = std::min(reps, 2);
    profile.net.hidden = 16;
    profile.net.vector_res_blocks = 1;
    profile.net.merged_res_blocks = 1;
    profile.net.conv_channels = {4, 6, 8, 10};
    profile.net.image_fc = 16;
    profile.net.fc6_width = 8;
    profile.dataset.candidates.max_candidates = 6;
    profile.dataset.images.size = 9;
    profile.dataset.images.pixel_sizes = {200, 400};
  } else {
    std::cerr << "bench_serve: preparing " << design << " (M" << layer
              << ")...\n";
    try {
      prepared = sma::eval::prepare_split(sma::netlist::find_profile(design),
                                          layer, sma::layout::FlowConfig{},
                                          /*seed=*/2019);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  sma::attack::DatasetConfig dataset_config = profile.dataset;
  dataset_config.build_images = profile.net.use_images;
  sma::nn::NetConfig net_config = profile.net;
  if (net_config.use_images) {
    net_config.image_channels =
        static_cast<int>(dataset_config.images.pixel_sizes.size());
  }
  sma::attack::TrainConfig train_config = profile.train;
  train_config.epochs = epochs;

  std::vector<sma::attack::QueryDataset> training;
  training.emplace_back(prepared.split.get(), dataset_config);
  std::vector<sma::attack::QueryDataset> validation;
  sma::attack::DlAttack dl(net_config);
  std::cerr << "bench_serve: training " << epochs << " epochs...\n";
  dl.train(training, validation, train_config);

  // The victim dataset, images prebuilt so the sweep times inference, not
  // feature extraction.
  sma::attack::QueryDataset victim(prepared.split.get(), dataset_config);
  victim.prebuild_images(nullptr);
  const long num_queries = static_cast<long>(victim.num_queries());

  // Batch-1 serial baseline: the identity oracle for every width.
  const sma::attack::AttackResult baseline = dl.attack(victim);
  std::cerr << "bench_serve: " << num_queries << " queries, baseline CCR "
            << baseline.ccr << "\n";

  sma::obs::RunReport report("serve", 1);
  std::vector<WidthResult> results;
  bool identity_ok = true;
  bool alloc_free = true;
  for (int width : widths) {
    WidthResult r;
    r.width = width;

    // Warm-up pass: grows the replica arena to this width's shapes and
    // runs the identity gate.
    const sma::attack::AttackResult warm = dl.attack(victim, nullptr, width);
    r.identical = selections_equal(warm, baseline);
    identity_ok = identity_ok && r.identical;

    const long allocs_before = dl.inference_arena_stats().allocs;
    sma::util::Timer timer;
    for (int rep = 0; rep < reps; ++rep) {
      const sma::attack::AttackResult timed = dl.attack(victim, nullptr, width);
      r.identical = r.identical && selections_equal(timed, baseline);
    }
    r.attack_seconds = timer.seconds() / reps;
    r.steady_arena_allocs = dl.inference_arena_stats().allocs - allocs_before;
    identity_ok = identity_ok && r.identical;
    alloc_free = alloc_free && r.steady_arena_allocs == 0;
    r.queries_per_sec = r.attack_seconds > 0.0
                            ? static_cast<double>(num_queries) /
                                  r.attack_seconds
                            : 0.0;

    // ServeLoop pass: concurrent clients, client-observed submit latency.
    {
      sma::serve::ServeConfig serve_config;
      serve_config.max_batch = width;
      serve_config.max_wait_us = 200;
      serve_config.dispatchers = 2;
      sma::serve::ServeLoop loop(dl, serve_config);
      std::vector<std::vector<double>> lat_us(
          static_cast<std::size_t>(clients));
      std::vector<sma::attack::Selection> got(
          static_cast<std::size_t>(num_queries));
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([c, clients, num_queries, &lat_us, &got, &loop,
                              &victim] {
          for (long i = c; i < num_queries; i += clients) {
            sma::util::Timer t;
            got[static_cast<std::size_t>(i)] =
                loop.submit(victim, static_cast<std::size_t>(i));
            lat_us[static_cast<std::size_t>(c)].push_back(t.seconds() * 1e6);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      loop.shutdown();
      const sma::serve::ServeStats stats = loop.stats();
      r.serve_batches = stats.batches;
      r.serve_max_batch = stats.max_batch_seen;
      std::vector<double> all_us;
      for (const std::vector<double>& per_client : lat_us) {
        all_us.insert(all_us.end(), per_client.begin(), per_client.end());
      }
      r.serve_p50_us = percentile(all_us, 0.5);
      r.serve_p99_us = percentile(all_us, 0.99);
      bool serve_identical = true;
      for (long i = 0; i < num_queries; ++i) {
        const sma::attack::Selection& g = got[static_cast<std::size_t>(i)];
        const sma::attack::Selection& w =
            baseline.selections[static_cast<std::size_t>(i)];
        serve_identical = serve_identical &&
                          g.sink_fragment == w.sink_fragment &&
                          g.chosen_source == w.chosen_source &&
                          g.correct == w.correct && g.num_sinks == w.num_sinks;
      }
      r.identical = r.identical && serve_identical;
      identity_ok = identity_ok && serve_identical;
      // The last width's serve stats land in the embedded report (the
      // width/latency distributions accumulate across the whole sweep in
      // the metrics histograms).
      report.add_serve(stats);
    }

    std::cerr << "  B=" << r.width << ": " << r.queries_per_sec
              << " queries/sec (" << r.attack_seconds << " s/attack, "
              << r.steady_arena_allocs << " steady arena allocs), serve p50 "
              << r.serve_p50_us << "us p99 " << r.serve_p99_us << "us over "
              << r.serve_batches << " batches (max width "
              << r.serve_max_batch << "), "
              << (r.identical ? "identical" : "DIFFERS") << "\n";
    results.push_back(r);
  }
  report.add_replicas(dl);

  // The knee: the width where queries/sec peaks. Below it throughput must
  // rise with B (wider GEMMs amortize per-query overhead); beyond it the
  // kernels are saturated and extra width just adds latency. A 5% slack
  // absorbs timer noise between adjacent widths.
  std::size_t knee = 0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].queries_per_sec > results[knee].queries_per_sec) knee = i;
  }
  bool monotonic = true;
  for (std::size_t i = 0; i < knee; ++i) {
    monotonic = monotonic && results[i].queries_per_sec <=
                                 results[i + 1].queries_per_sec * 1.05;
  }
  std::cerr << "  knee at B=" << results[knee].width << ", throughput "
            << (monotonic ? "monotonic" : "NOT monotonic") << " up to it\n";

  std::ostringstream json;
  json << "{\"bench\": \"serve\", \"smoke\": " << (smoke ? "true" : "false")
       << ", \"design\": \"" << (smoke ? "smoke_serve" : design)
       << "\", \"layer\": " << layer << ", \"epochs\": " << epochs
       << ", \"reps\": " << reps << ", \"clients\": " << clients
       << ", \"num_queries\": " << num_queries << ", \"widths\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WidthResult& r = results[i];
    if (i > 0) json << ", ";
    json << "{\"width\": " << r.width
         << ", \"attack_seconds\": " << r.attack_seconds
         << ", \"queries_per_sec\": " << r.queries_per_sec
         << ", \"steady_arena_allocs\": " << r.steady_arena_allocs
         << ", \"identical\": " << (r.identical ? "true" : "false")
         << ", \"serve_p50_us\": " << r.serve_p50_us
         << ", \"serve_p99_us\": " << r.serve_p99_us
         << ", \"serve_batches\": " << r.serve_batches
         << ", \"serve_max_batch\": " << r.serve_max_batch << "}";
  }
  json << "], \"knee_width\": " << results[knee].width
       << ", \"monotonic_to_knee\": " << (monotonic ? "true" : "false")
       << ", \"identity_ok\": " << (identity_ok ? "true" : "false")
       << ", \"alloc_free\": " << (alloc_free ? "true" : "false")
       << sma::benchutil::report_fragment(report) << "}";
  std::cout << json.str() << "\n";
  sma::benchutil::flush_trace();

  std::cerr << (identity_ok
                    ? "bit-identity check: all widths match batch-1\n"
                    : "bit-identity check FAILED\n");
  if (!alloc_free) {
    std::cerr << "steady-state check FAILED: arena still allocating after "
                 "warm-up\n";
  }
  if (!identity_ok || !alloc_free) return 1;
  return 0;
}
