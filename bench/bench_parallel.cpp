// Serial-vs-parallel speedup of the experiment pipeline (the tentpole
// measurement for the runtime subsystem): run_table3 with the fast()
// profile at each requested thread count, verifying along the way that
// every thread count produces row-for-row identical CCRs (the runtime's
// determinism contract).
//
// Human-readable progress goes to stderr; stdout carries exactly one JSON
// object (scripts/bench.sh redirects it to BENCH_parallel.json).
//
// Every run contributes a datapoint: the 1-thread baseline is always
// measured (prepended if the sweep omits it), and the JSON carries a
// top-level "summary" with the baseline wall-times and best speedup —
// previously a 1-core host skipped every requested count > 1 and the
// bench trajectory stayed empty despite the JSON existing.
//
// Flags:
//   --threads=1,2,4    thread counts to sweep (1 is always the baseline
//                      and is prepended when missing)
//   --designs=c432,... victim subset (default: four small/mid designs)
//   --layer=1          split layer
//   --paper            full-fidelity profile (very slow; default --fast)
#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace {

using sma::benchutil::split_list;
using sma::eval::ExperimentProfile;
using sma::eval::Table3Result;

/// The determinism contract covers the DL side (models, CCRs, candidate
/// hit rates). Flow-attack timeouts are wall-clock budgets and may
/// legitimately flip under contention, so flow columns are excluded.
bool dl_rows_identical(const Table3Result& a, const Table3Result& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i].design != b.rows[i].design) return false;
    if (a.rows[i].num_sink_fragments != b.rows[i].num_sink_fragments) {
      return false;
    }
    if (a.rows[i].num_source_fragments != b.rows[i].num_source_fragments) {
      return false;
    }
    if (a.rows[i].dl_ccr != b.rows[i].dl_ccr) return false;
    if (a.rows[i].hit_rate != b.rows[i].hit_rate) return false;
  }
  return true;
}

using sma::benchutil::json_escape;

}  // namespace

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kWarn);
  sma::benchutil::init_observability();

  ExperimentProfile profile = ExperimentProfile::fast();
  std::string profile_name = "fast";
  std::vector<int> threads = {1, 2, 4};
  std::vector<std::string> design_names = {"c432", "c880", "b7", "b13"};
  int layer = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--paper") {
      profile = ExperimentProfile::paper();
      profile_name = "paper";
    } else if (arg == "--fast") {
      profile = ExperimentProfile::fast();
      profile_name = "fast";
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads.clear();
      for (const std::string& t : split_list(arg.substr(10))) {
        threads.push_back(sma::benchutil::parse_int(t, "--threads", 1));
      }
    } else if (arg.rfind("--designs=", 0) == 0) {
      design_names = split_list(arg.substr(10));
    } else if (arg.rfind("--layer=", 0) == 0) {
      layer = sma::benchutil::parse_int(arg.substr(8), "--layer", 1);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (threads.empty()) {
    std::cerr << "need at least one thread count\n";
    return 2;
  }
  // The serial run is the speedup denominator and the one configuration
  // every host can measure — always include it, and always FIRST (the
  // baseline is runs.front(), so `--threads=4,1` must not leave the
  // 4-thread run as the denominator).
  threads.erase(std::remove(threads.begin(), threads.end(), 1),
                threads.end());
  threads.insert(threads.begin(), 1);

  // Oversubscribing a host (threads > cores) cannot speed anything up and
  // records misleading sub-1x "speedups" — on a 1-CPU machine the old
  // default sweep reported 2 threads as 0.95x. Skip those counts instead
  // of timing them; they remain listed in the JSON for transparency.
  const int host_concurrency = sma::runtime::Config{}.resolved();
  std::vector<int> skipped;
  {
    std::vector<int> runnable;
    for (int t : threads) {
      if (t <= host_concurrency) {
        runnable.push_back(t);
      } else {
        skipped.push_back(t);
      }
    }
    if (!skipped.empty()) {
      std::cerr << "skipping thread counts >" << host_concurrency
                << " (host concurrency):";
      for (int t : skipped) std::cerr << " " << t;
      std::cerr << "\n";
    }
    threads = std::move(runnable);
  }
  if (threads.empty()) {
    // Every requested count oversubscribes; fall back to a serial run so
    // the bench still produces a baseline measurement.
    threads.push_back(1);
    std::cerr << "all requested thread counts exceed host concurrency; "
                 "measuring threads=1 only\n";
  }

  std::vector<sma::netlist::DesignProfile> designs;
  for (const std::string& name : design_names) {
    try {
      designs.push_back(sma::netlist::find_profile(name));
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  std::cerr << "bench_parallel: run_table3 M" << layer << ", profile "
            << profile_name << ", " << designs.size()
            << " designs, host concurrency "
            << sma::runtime::Config{}.resolved() << "\n";

  struct Run {
    int threads = 0;
    double seconds = 0.0;
    double train_seconds = 0.0;
  };
  std::vector<Run> runs;
  Table3Result baseline;
  bool deterministic = true;
  double baseline_seconds = 0.0;

  for (std::size_t i = 0; i < threads.size(); ++i) {
    ExperimentProfile variant = profile;
    variant.runtime.threads = threads[i];
    sma::util::Timer timer;
    Table3Result result =
        sma::eval::run_table3(layer, variant, sma::layout::FlowConfig{},
                              designs, /*seed=*/2019);
    Run run;
    run.threads = threads[i];
    run.seconds = timer.seconds();
    run.train_seconds = result.train_seconds;
    runs.push_back(run);

    if (i == 0) {
      baseline = result;
      baseline_seconds = run.seconds;
    } else if (!dl_rows_identical(baseline, result)) {
      deterministic = false;
    }
    std::cerr << "  threads=" << run.threads << ": " << run.seconds
              << "s total (train " << run.train_seconds << "s), speedup "
              << baseline_seconds / run.seconds << "x\n";
  }

  std::ostringstream json;
  json << "{\"bench\": \"parallel\", \"profile\": \"" << profile_name
       << "\", \"layer\": " << layer << ", \"designs\": [";
  for (std::size_t i = 0; i < design_names.size(); ++i) {
    json << (i ? ", " : "") << "\"" << json_escape(design_names[i]) << "\"";
  }
  json << "], \"host_concurrency\": " << host_concurrency
       << ", \"skipped_threads\": [";
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    json << (i ? ", " : "") << skipped[i];
  }
  json << "], \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json << (i ? ", " : "") << "{\"threads\": " << runs[i].threads
         << ", \"seconds\": " << runs[i].seconds
         << ", \"train_seconds\": " << runs[i].train_seconds
         << ", \"speedup\": " << baseline_seconds / runs[i].seconds << "}";
  }
  // Top-level summary: the datapoint every run contributes, even when the
  // host can only measure the serial baseline.
  double best_speedup = 0.0;
  int best_threads = runs.empty() ? 0 : runs.front().threads;
  for (const Run& run : runs) {
    const double speedup = baseline_seconds / run.seconds;
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_threads = run.threads;
    }
  }
  json << "], \"summary\": {\"baseline_threads\": "
       << (runs.empty() ? 0 : runs.front().threads)
       << ", \"baseline_seconds\": " << baseline_seconds
       << ", \"baseline_train_seconds\": "
       << (runs.empty() ? 0.0 : runs.front().train_seconds)
       << ", \"best_speedup\": " << best_speedup
       << ", \"best_speedup_threads\": " << best_threads
       << ", \"measured_counts\": " << runs.size() << "}";
  sma::obs::RunReport report("parallel", threads.back());
  json << ", \"deterministic\": " << (deterministic ? "true" : "false")
       << sma::benchutil::report_fragment(report) << "}";
  std::cout << json.str() << "\n";
  sma::benchutil::flush_trace();
  std::cerr << (deterministic
                    ? "determinism check: all thread counts identical\n"
                    : "determinism check FAILED: rows differ across runs\n");
  return deterministic ? 0 : 1;
}
