// Cache-cold physical-design-flow bench: per-phase timings and the wave
// router's determinism + quality contract (the tentpole measurement for
// intra-flow parallelism).
//
// For every requested design the bench runs:
//   1. the legacy strictly-sequential flow (wave_size = 1, relax_lanes =
//      1) — the quality baseline the wave schedule replaced, and
//   2. the wave-scheduled flow at each requested thread count, verifying
//      that every count produces a byte-identical layout (DEF string) and
//      reporting global-place / legalize / detailed-place / route /
//      negotiation seconds per run.
// Quality deltas (wirelength, vias, final overflow, fallbacks) between
// the wave schedule and the legacy schedule go into the JSON — the wave
// router is a deliberate algorithm change and its cost must stay visible.
//
// Human-readable progress goes to stderr; stdout carries exactly one JSON
// object (scripts/bench.sh redirects it to BENCH_flow.json). Exit status
// is non-zero if any thread count broke byte-identity.
//
// Flags:
//   --threads=1,2,4    thread counts to sweep (1 always measured first)
//   --designs=c432,... design profiles (default: two small/mid designs)
//   --wave=N           wave_size for the wave runs (default: RouterConfig)
//   --seed=2019        flow seed
//   --smoke            minimal sweep (c432, threads 1,2) for CI
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "layout/def_io.hpp"
#include "layout/design.hpp"
#include "netlist/profiles.hpp"
#include "route/router.hpp"
#include "runtime/thread_pool.hpp"
#include "tech/cell_library.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace {

using sma::benchutil::parse_int;
using sma::benchutil::split_list;

struct FlowRun {
  int threads = 0;
  double seconds = 0.0;
  sma::layout::FlowTimings timings;
  double negotiation_seconds = 0.0;
  std::int64_t wirelength = 0;
  int vias = 0;
  int overflow = 0;
  int fallbacks = 0;
  std::string def;  ///< byte-identity witness
};

FlowRun run_flow_once(const sma::netlist::DesignProfile& profile,
                      const sma::layout::FlowConfig& flow, int threads,
                      sma::obs::RunReport* report = nullptr) {
  static const sma::tech::CellLibrary kLibrary =
      sma::tech::CellLibrary::nangate45_like();
  sma::netlist::Netlist nl =
      sma::netlist::build_profile(profile, &kLibrary, flow.seed);
  sma::runtime::Config runtime_config;
  runtime_config.threads = threads;
  std::unique_ptr<sma::runtime::ThreadPool> pool = runtime_config.make_pool();

  sma::util::Timer timer;
  sma::layout::Design design =
      sma::layout::run_flow(std::move(nl), flow, pool.get());
  if (report != nullptr) report->add_flow(profile.name, design);
  FlowRun run;
  run.threads = threads;
  run.seconds = timer.seconds();
  run.timings = design.timings;
  run.negotiation_seconds = design.routing.negotiation_seconds;
  run.wirelength = design.routing.total_wirelength;
  run.vias = design.routing.total_vias;
  run.overflow = design.routing.final_overflow;
  run.fallbacks = design.routing.fallback_routes;
  run.def = sma::layout::to_def_string(design);
  return run;
}

using sma::benchutil::json_escape;

void append_run_json(std::ostringstream& json, const FlowRun& run,
                     double baseline_seconds) {
  json << "{\"threads\": " << run.threads << ", \"seconds\": " << run.seconds
       << ", \"global_place_seconds\": " << run.timings.global_place_seconds
       << ", \"legalize_seconds\": " << run.timings.legalize_seconds
       << ", \"detailed_place_seconds\": "
       << run.timings.detailed_place_seconds
       << ", \"route_seconds\": " << run.timings.route_seconds
       << ", \"negotiation_seconds\": " << run.negotiation_seconds
       << ", \"speedup\": "
       << (run.seconds > 0.0 ? baseline_seconds / run.seconds : 0.0) << "}";
}

void append_quality_json(std::ostringstream& json, const FlowRun& run) {
  json << "\"seconds\": " << run.seconds
       << ", \"wirelength\": " << run.wirelength << ", \"vias\": " << run.vias
       << ", \"overflow\": " << run.overflow
       << ", \"fallbacks\": " << run.fallbacks;
}

}  // namespace

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kWarn);
  sma::benchutil::init_observability();

  std::vector<int> threads = {1, 2, 4};
  std::vector<std::string> design_names = {"c432", "b13"};
  int wave_size = sma::route::RouterConfig{}.wave_size;
  std::uint64_t seed = 2019;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      threads = {1, 2};
      design_names = {"c432"};
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads.clear();
      for (const std::string& t : split_list(arg.substr(10))) {
        threads.push_back(parse_int(t, "--threads", 1));
      }
    } else if (arg.rfind("--designs=", 0) == 0) {
      design_names = split_list(arg.substr(10));
    } else if (arg.rfind("--wave=", 0) == 0) {
      wave_size = parse_int(arg.substr(7), "--wave", 1);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(
          parse_int(arg.substr(7), "--seed", 0));
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (threads.empty() || design_names.empty()) {
    std::cerr << "need at least one thread count and one design\n";
    return 2;
  }

  // Serial first: it is the speedup denominator and the identity witness.
  threads.erase(std::remove(threads.begin(), threads.end(), 1),
                threads.end());
  threads.insert(threads.begin(), 1);

  // Oversubscribed counts cannot speed anything up; skip but report them
  // (same policy as bench_parallel, so 1-core hosts still contribute).
  const int host_concurrency = sma::runtime::Config{}.resolved();
  std::vector<int> skipped;
  {
    std::vector<int> runnable;
    for (int t : threads) {
      (t <= host_concurrency ? runnable : skipped).push_back(t);
    }
    if (runnable.empty()) runnable.push_back(1);
    threads = std::move(runnable);
  }

  std::vector<sma::netlist::DesignProfile> designs;
  for (const std::string& name : design_names) {
    try {
      designs.push_back(sma::netlist::find_profile(name));
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  sma::layout::FlowConfig wave_flow;
  wave_flow.seed = seed;
  wave_flow.router.wave_size = wave_size;
  // The quality baseline: the pre-wave strictly-sequential flow
  // (single-net "waves" with bulk offender rip-up, single-lane relax).
  sma::layout::FlowConfig legacy_flow = wave_flow;
  legacy_flow.router.wave_size = 1;
  legacy_flow.router.bulk_negotiation_ripup = true;
  legacy_flow.global_placer.relax_lanes = 1;

  std::cerr << "bench_flow: " << designs.size() << " designs, wave_size "
            << wave_size << ", relax_lanes "
            << wave_flow.global_placer.relax_lanes << ", host concurrency "
            << host_concurrency << (smoke ? ", smoke" : "") << "\n";

  bool deterministic = true;
  sma::obs::RunReport report("flow", threads.back());
  std::ostringstream body;
  double summary_baseline = 0.0;
  double best_speedup = 0.0;
  int best_threads = 1;

  for (std::size_t d = 0; d < designs.size(); ++d) {
    const sma::netlist::DesignProfile& profile = designs[d];
    std::cerr << profile.name << ": legacy sequential flow...\n";
    FlowRun legacy = run_flow_once(profile, legacy_flow, 1);
    std::cerr << "  legacy: " << legacy.seconds << "s, WL "
              << legacy.wirelength << ", vias " << legacy.vias
              << ", overflow " << legacy.overflow << "\n";

    std::vector<FlowRun> runs;
    bool design_identical = true;
    for (int t : threads) {
      FlowRun run = run_flow_once(profile, wave_flow, t,
                                  runs.empty() ? &report : nullptr);
      if (!runs.empty()) {
        if (run.def != runs.front().def) {
          design_identical = false;
          deterministic = false;
          std::cerr << "  DETERMINISM FAILURE: threads=" << t
                    << " layout differs from threads=" << runs.front().threads
                    << "\n";
        }
        run.def.clear();  // only the serial witness is ever compared against
      }
      std::cerr << "  wave threads=" << t << ": " << run.seconds
                << "s (place " << run.timings.global_place_seconds
                << "s, route " << run.timings.route_seconds
                << "s, negotiation " << run.negotiation_seconds
                << "s), speedup "
                << (run.seconds > 0.0 ? runs.empty()
                                            ? 1.0
                                            : runs.front().seconds / run.seconds
                                      : 0.0)
                << "x\n";
      runs.push_back(std::move(run));
    }
    const double baseline_seconds = runs.front().seconds;
    if (d == 0) summary_baseline = baseline_seconds;
    for (const FlowRun& run : runs) {
      const double speedup =
          run.seconds > 0.0 ? baseline_seconds / run.seconds : 0.0;
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_threads = run.threads;
      }
    }

    const FlowRun& wave_serial = runs.front();
    body << (d ? ", " : "") << "{\"design\": \""
         << json_escape(profile.name) << "\", \"legacy\": {";
    append_quality_json(body, legacy);
    body << "}, \"wave\": {\"wave_size\": " << wave_size
         << ", \"relax_lanes\": " << wave_flow.global_placer.relax_lanes
         << ", ";
    append_quality_json(body, wave_serial);
    body << ", \"identical_across_threads\": "
         << (design_identical ? "true" : "false") << ", \"runs\": [";
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (r) body << ", ";
      append_run_json(body, runs[r], baseline_seconds);
    }
    body << "]}, \"delta_vs_legacy\": {\"wirelength_pct\": "
         << (legacy.wirelength > 0
                 ? 100.0 * (wave_serial.wirelength - legacy.wirelength) /
                       static_cast<double>(legacy.wirelength)
                 : 0.0)
         << ", \"vias_pct\": "
         << (legacy.vias > 0 ? 100.0 * (wave_serial.vias - legacy.vias) /
                                   static_cast<double>(legacy.vias)
                             : 0.0)
         << ", \"overflow\": " << wave_serial.overflow - legacy.overflow
         << ", \"fallbacks\": " << wave_serial.fallbacks - legacy.fallbacks
         << ", \"serial_seconds_ratio\": "
         << (legacy.seconds > 0.0 ? wave_serial.seconds / legacy.seconds
                                  : 0.0)
         << "}}";
  }

  std::ostringstream json;
  json << "{\"bench\": \"flow\", \"seed\": " << seed
       << ", \"wave_size\": " << wave_size << ", \"host_concurrency\": "
       << host_concurrency << ", \"skipped_threads\": [";
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    json << (i ? ", " : "") << skipped[i];
  }
  json << "], \"designs\": [" << body.str()
       << "], \"summary\": {\"baseline_seconds\": " << summary_baseline
       << ", \"best_speedup\": " << best_speedup
       << ", \"best_speedup_threads\": " << best_threads
       << ", \"measured_counts\": " << threads.size() << "}"
       << ", \"deterministic\": " << (deterministic ? "true" : "false")
       << sma::benchutil::report_fragment(report) << "}";
  std::cout << json.str() << "\n";
  sma::benchutil::flush_trace();
  std::cerr << (deterministic
                    ? "determinism check: all thread counts byte-identical\n"
                    : "determinism check FAILED: layouts differ\n");
  return deterministic ? 0 : 1;
}
