// Kernel-core before/after benchmark (the tentpole measurement for the
// blocked GEMM): naive reference kernels vs the blocked/packed kernels on
// the GEMM shapes the fast-profile network actually runs, layer-level
// conv/dense forward+backward timings, and an end-to-end training
// throughput comparison (s/epoch) on one real design. Every timed pair is
// also checked for bit-identical outputs — a speedup that changes results
// would be a bug, not a win.
//
// Human-readable progress goes to stderr; stdout carries exactly one JSON
// object (scripts/bench.sh redirects it to BENCH_kernels.json).
//
// Flags:
//   --smoke        tiny shapes, no timing claims; exercises both backends
//                  and verifies bit-identity (CI sanity mode)
//   --design=c432  design used for the end-to-end training comparison
//   --layer=1      split layer of the end-to-end comparison
//   --epochs=2     training epochs per backend in the end-to-end pass
//   --no-train     skip the end-to-end pass (micro benchmarks only)
#include <cmath>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/dataset.hpp"
#include "attack/dl_attack.hpp"
#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "nn/gemm.hpp"
#include "nn/layers.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using sma::nn::KernelBackend;
using sma::nn::Tensor;

bool g_all_identical = true;

void check_identical(const float* a, const float* b, std::size_t n,
                     const std::string& what) {
  if (std::memcmp(a, b, n * sizeof(float)) != 0) {
    g_all_identical = false;
    std::cerr << "BIT-IDENTITY VIOLATION: " << what << "\n";
  }
}

std::vector<float> random_vec(std::size_t n, sma::util::Pcg32& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

/// Seconds per call of `fn`, repeated until ~0.2 s of samples.
template <typename Fn>
double time_call(Fn&& fn, int min_reps = 3) {
  fn();  // warmup
  sma::util::Timer timer;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while ((timer.seconds() < 0.2 || reps < min_reps) && reps < 10000);
  return timer.seconds() / reps;
}

struct GemmCase {
  const char* form;  // "nn", "tn", "nt"
  int m, n, k;
  const char* role;
};

struct GemmResult {
  GemmCase spec;
  double naive_gflops = 0.0;
  double blocked_gflops = 0.0;
};

GemmResult run_gemm_case(const GemmCase& spec, bool timed) {
  sma::util::Pcg32 rng(0x9e3779b9u ^ spec.m ^ (spec.n << 8) ^ (spec.k << 16));
  const std::size_t a_size =
      static_cast<std::size_t>(spec.m) * spec.k;
  const std::size_t b_size =
      static_cast<std::size_t>(spec.k) * spec.n;
  const std::size_t c_size =
      static_cast<std::size_t>(spec.m) * spec.n;
  std::vector<float> a = random_vec(a_size, rng);
  std::vector<float> b = random_vec(b_size, rng);
  std::vector<float> c_init = random_vec(c_size, rng);  // nonzero C: += forms

  auto call = [&](float* c) {
    if (std::strcmp(spec.form, "nn") == 0) {
      sma::nn::gemm_nn(spec.m, spec.n, spec.k, a.data(), b.data(), c);
    } else if (std::strcmp(spec.form, "tn") == 0) {
      sma::nn::gemm_tn(spec.m, spec.n, spec.k, a.data(), b.data(), c);
    } else {
      sma::nn::gemm_nt(spec.m, spec.n, spec.k, a.data(), b.data(), c);
    }
  };

  GemmResult result{spec, 0.0, 0.0};
  const double flops = 2.0 * spec.m * spec.n * spec.k;

  std::vector<float> c_naive = c_init;
  sma::nn::set_kernel_backend(KernelBackend::kReference);
  call(c_naive.data());
  if (timed) {
    std::vector<float> c_scratch = c_init;
    result.naive_gflops =
        flops / time_call([&] { call(c_scratch.data()); }) / 1e9;
  }

  std::vector<float> c_blocked = c_init;
  sma::nn::set_kernel_backend(KernelBackend::kBlocked);
  call(c_blocked.data());
  if (timed) {
    std::vector<float> c_scratch = c_init;
    result.blocked_gflops =
        flops / time_call([&] { call(c_scratch.data()); }) / 1e9;
  }

  std::ostringstream what;
  what << "gemm_" << spec.form << " " << spec.m << "x" << spec.n << "x"
       << spec.k;
  check_identical(c_naive.data(), c_blocked.data(), c_size, what.str());
  return result;
}

struct LayerResult {
  std::string name;
  double naive_fwd_us = 0.0;
  double naive_bwd_us = 0.0;
  double pr7_fwd_us = 0.0;  ///< blocked, row-major-compat (PR-7 pipeline)
  double pr7_bwd_us = 0.0;
  double blocked_fwd_us = 0.0;  ///< blocked, channel-major (default)
  double blocked_bwd_us = 0.0;
  /// The layer-boundary layout permutation, timed as its own phase: what
  /// one explicit channel-major -> NCHW reorder of this layer's output
  /// costs — the per-boundary price the channel-major pipeline deletes.
  double reorder_us = 0.0;
};

/// Forward+backward timing of one conv layer under three pipelines —
/// reference, blocked/row-major-compat (the PR-7 baseline) and blocked/
/// channel-major — with bit-identity checks on output and input gradient
/// across all of them.
LayerResult run_conv_case(int in_ch, int out_ch, int stride, int imgs,
                          int size, bool timed) {
  std::ostringstream name;
  name << "conv " << in_ch << "->" << out_ch << " s" << stride << " ["
       << imgs << "x" << size << "x" << size << "]";
  LayerResult result;
  result.name = name.str();

  sma::util::Pcg32 data_rng(1234);
  Tensor x = Tensor::randn({imgs, in_ch, size, size}, data_rng, 1.0);

  auto make_layer = [&] {
    sma::util::Pcg32 rng(77);
    return sma::nn::Conv2d(in_ch, out_ch, stride, rng, "bench",
                           sma::nn::Act::kLeakyReLU);
  };

  // dy values are drawn in row-major logical order once, then converted
  // to each pipeline's actual output layout — every run receives the
  // same mathematical gradient regardless of where its bytes live.
  struct Run {
    const char* phase;
    KernelBackend backend;
    sma::nn::ConvLayoutMode mode;
  };
  const Run runs[] = {
      {"naive", KernelBackend::kReference,
       sma::nn::ConvLayoutMode::kChannelMajor},  // mode unused by reference
      {"pr7", KernelBackend::kBlocked,
       sma::nn::ConvLayoutMode::kRowMajorCompat},
      {"blocked", KernelBackend::kBlocked,
       sma::nn::ConvLayoutMode::kChannelMajor},
  };
  Tensor y_ref;
  Tensor dx_ref;
  Tensor y_cm;  // channel-major output, kept for the reorder-phase timing
  for (const Run& run : runs) {
    sma::nn::set_kernel_backend(run.backend);
    sma::nn::set_conv_layout_mode(run.mode);
    sma::nn::Conv2d layer = make_layer();
    Tensor y = layer.forward(x);
    const Tensor y_rm = sma::nn::to_row_major(y);
    Tensor dy_rm(y.shape());
    sma::util::Pcg32 grad_rng(55);
    for (std::size_t i = 0; i < dy_rm.size(); ++i) {
      dy_rm[i] = static_cast<float>(grad_rng.next_gaussian());
    }
    const Tensor dy = sma::nn::to_layout(dy_rm, y.layout());
    // x is row-major, so dx comes back row-major from every pipeline and
    // compares directly.
    Tensor dx = layer.backward(dy);
    const std::string phase_name = result.name + " " + run.phase;
    if (run.backend == KernelBackend::kReference) {
      y_ref = y_rm;
      dx_ref = dx;
      if (timed) {
        result.naive_fwd_us = time_call([&] { layer.forward(x); }) * 1e6;
        result.naive_bwd_us = time_call([&] { layer.backward(dy); }) * 1e6;
      }
    } else {
      check_identical(y_ref.data(), y_rm.data(), y_rm.size(),
                      phase_name + " forward");
      check_identical(dx_ref.data(), dx.data(), dx.size(),
                      phase_name + " backward");
      double* fwd_us = run.mode == sma::nn::ConvLayoutMode::kRowMajorCompat
                           ? &result.pr7_fwd_us
                           : &result.blocked_fwd_us;
      double* bwd_us = run.mode == sma::nn::ConvLayoutMode::kRowMajorCompat
                           ? &result.pr7_bwd_us
                           : &result.blocked_bwd_us;
      if (timed) {
        *fwd_us = time_call([&] { layer.forward(x); }) * 1e6;
        *bwd_us = time_call([&] { layer.backward(dy); }) * 1e6;
      }
      if (run.mode == sma::nn::ConvLayoutMode::kChannelMajor) y_cm = y;
    }
  }
  if (timed) {
    // Time the bare boundary permutation into a preallocated destination
    // (grow-only resize_reuse makes repeat calls allocation-free).
    Tensor staged;
    sma::nn::copy_to_layout(y_cm, sma::nn::Layout::kRowMajor, staged);
    result.reorder_us =
        time_call([&] {
          sma::nn::copy_to_layout(y_cm, sma::nn::Layout::kRowMajor, staged);
        }) *
        1e6;
  }
  sma::nn::set_conv_layout_mode(sma::nn::ConvLayoutMode::kChannelMajor);
  return result;
}

LayerResult run_dense_case(int rows, int in, int out, bool timed) {
  std::ostringstream name;
  name << "dense " << rows << "x" << in << "->" << out;
  LayerResult result;
  result.name = name.str();

  sma::util::Pcg32 data_rng(4321);
  Tensor x = Tensor::randn({rows, in}, data_rng, 1.0);
  Tensor dy = Tensor::randn({rows, out}, data_rng, 1.0);

  Tensor y_ref;
  Tensor dx_ref;
  for (KernelBackend backend :
       {KernelBackend::kReference, KernelBackend::kBlocked}) {
    sma::nn::set_kernel_backend(backend);
    sma::util::Pcg32 rng(88);
    sma::nn::Linear layer(in, out, rng, "bench", sma::nn::Act::kLeakyReLU);
    Tensor y = layer.forward(x);
    Tensor dx = layer.backward(dy);
    if (backend == KernelBackend::kReference) {
      y_ref = y;
      dx_ref = dx;
      if (timed) {
        result.naive_fwd_us = time_call([&] { layer.forward(x); }) * 1e6;
        result.naive_bwd_us = time_call([&] { layer.backward(dy); }) * 1e6;
      }
    } else {
      check_identical(y_ref.data(), y.data(), y.size(),
                      result.name + " forward");
      check_identical(dx_ref.data(), dx.data(), dx.size(),
                      result.name + " backward");
      if (timed) {
        result.blocked_fwd_us = time_call([&] { layer.forward(x); }) * 1e6;
        result.blocked_bwd_us = time_call([&] { layer.backward(dy); }) * 1e6;
      }
    }
  }
  return result;
}

struct TrainResult {
  double naive_s_per_epoch = 0.0;
  double blocked_s_per_epoch = 0.0;
  double speedup = 0.0;
  bool models_identical = false;
};

/// Train the fast-profile net on one real design under both backends.
/// `only` restricts to a single backend (profiling aid; skips the
/// model-identity check).
TrainResult run_train_case(const std::string& design_name, int split_layer,
                           int epochs, const std::string& only = "") {
  sma::eval::ExperimentProfile profile = sma::eval::ExperimentProfile::fast();
  profile.train.epochs = epochs;

  std::cerr << "  preparing " << design_name << " (M" << split_layer
            << ")...\n";
  sma::eval::PreparedSplit prepared = sma::eval::prepare_split(
      sma::netlist::find_profile(design_name), split_layer,
      sma::layout::FlowConfig{}, /*seed=*/2019);
  sma::attack::DatasetConfig dataset_config = profile.dataset;
  dataset_config.build_images = true;

  sma::nn::NetConfig net_config = profile.net;
  net_config.image_channels =
      static_cast<int>(profile.dataset.images.pixel_sizes.size());

  TrainResult result;
  std::string naive_model;
  std::string blocked_model;
  for (KernelBackend backend :
       {KernelBackend::kReference, KernelBackend::kBlocked}) {
    if (only == "naive" && backend != KernelBackend::kReference) continue;
    if (only == "blocked" && backend != KernelBackend::kBlocked) continue;
    sma::nn::set_kernel_backend(backend);
    std::vector<sma::attack::QueryDataset> training;
    training.emplace_back(prepared.split.get(), dataset_config);
    // Feature extraction is dataset preparation, not training; render the
    // image cache up front so s/epoch measures the kernels.
    training.back().prebuild_images(nullptr);
    std::vector<sma::attack::QueryDataset> validation;
    sma::attack::DlAttack dl(net_config);
    sma::attack::TrainStats stats =
        dl.train(training, validation, profile.train, /*pool=*/nullptr);
    const double s_per_epoch = stats.seconds / epochs;
    std::stringstream bytes;
    dl.net().save(bytes);
    if (backend == KernelBackend::kReference) {
      result.naive_s_per_epoch = s_per_epoch;
      naive_model = bytes.str();
      std::cerr << "  naive:   " << s_per_epoch << " s/epoch\n";
    } else {
      result.blocked_s_per_epoch = s_per_epoch;
      blocked_model = bytes.str();
      std::cerr << "  blocked: " << s_per_epoch << " s/epoch\n";
    }
  }
  if (!only.empty()) return result;
  result.speedup = result.naive_s_per_epoch / result.blocked_s_per_epoch;
  result.models_identical = naive_model == blocked_model;
  if (!result.models_identical) {
    g_all_identical = false;
    std::cerr << "BIT-IDENTITY VIOLATION: trained models differ between "
                 "backends\n";
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kWarn);
  sma::benchutil::init_observability();

  bool smoke = false;
  bool with_train = true;
  std::string design = "c432";
  std::string only_backend;
  int layer = 1;
  int epochs = 2;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--no-train") {
      with_train = false;
    } else if (arg.rfind("--backend=", 0) == 0) {
      only_backend = arg.substr(10);  // profiling aid: naive | blocked
    } else if (arg.rfind("--design=", 0) == 0) {
      design = arg.substr(9);
    } else if (arg.rfind("--layer=", 0) == 0) {
      layer = sma::benchutil::parse_int(arg.substr(8), "--layer", 1);
    } else if (arg.rfind("--epochs=", 0) == 0) {
      epochs = sma::benchutil::parse_int(arg.substr(9), "--epochs", 1);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  const bool timed = !smoke;

  // GEMM shapes from the fast profile (15x15 three-scale images, 16-image
  // queries, conv widths 8/16/32/64, hidden 128): forward im2col rows,
  // backward dW / dX forms, and the FC trunk.
  std::vector<GemmCase> gemm_cases;
  if (smoke) {
    gemm_cases = {
        {"nn", 5, 9, 7, "smoke"},
        {"tn", 9, 5, 11, "smoke"},
        {"nt", 7, 13, 9, "smoke"},
    };
  } else {
    gemm_cases = {
        {"nt", 3600, 8, 27, "conv1_0 fwd"},
        {"nt", 3600, 8, 72, "conv1_1 fwd"},
        {"nt", 400, 16, 72, "conv2_0 fwd"},
        {"nt", 64, 32, 144, "conv3_0 fwd"},
        {"nt", 15, 128, 128, "resblock fwd"},
        {"nn", 3600, 72, 8, "conv1 dX"},
        {"nn", 15, 128, 128, "resblock dX"},
        {"tn", 8, 72, 3600, "conv1 dW"},
        {"tn", 128, 128, 15, "resblock dW"},
    };
  }

  std::vector<GemmResult> gemm_results;
  for (const GemmCase& spec : gemm_cases) {
    GemmResult r = run_gemm_case(spec, timed);
    if (timed) {
      std::cerr << "gemm_" << spec.form << " " << spec.m << "x" << spec.n
                << "x" << spec.k << " (" << spec.role << "): naive "
                << r.naive_gflops << " GF/s, blocked " << r.blocked_gflops
                << " GF/s (" << r.blocked_gflops / r.naive_gflops << "x)\n";
    }
    gemm_results.push_back(r);
  }

  std::vector<LayerResult> layer_results;
  if (smoke) {
    layer_results.push_back(run_conv_case(3, 5, 1, 2, 7, false));
    layer_results.push_back(run_conv_case(2, 3, 3, 1, 11, false));
    layer_results.push_back(run_dense_case(3, 17, 9, false));
  } else {
    layer_results.push_back(run_conv_case(3, 8, 1, 16, 15, true));
    layer_results.push_back(run_conv_case(8, 16, 3, 16, 15, true));
    layer_results.push_back(run_dense_case(15, 128, 128, true));
    for (const LayerResult& r : layer_results) {
      std::cerr << r.name << ": fwd " << r.naive_fwd_us << " -> "
                << r.pr7_fwd_us << " (pr7) -> " << r.blocked_fwd_us
                << " us, bwd " << r.naive_bwd_us << " -> " << r.pr7_bwd_us
                << " (pr7) -> " << r.blocked_bwd_us << " us, reorder "
                << r.reorder_us << " us\n";
    }
  }

  TrainResult train;
  if (timed && with_train) {
    std::cerr << "end-to-end training (" << design << ", " << epochs
              << " epochs per backend):\n";
    train = run_train_case(design, layer, epochs, only_backend);
    std::cerr << "  speedup " << train.speedup << "x, models "
              << (train.models_identical ? "identical" : "DIFFER") << "\n";
  }

  sma::nn::set_kernel_backend(KernelBackend::kBlocked);
  sma::nn::set_conv_layout_mode(sma::nn::ConvLayoutMode::kChannelMajor);

  std::ostringstream json;
  json << "{\"bench\": \"kernels\", \"smoke\": " << (smoke ? "true" : "false")
       << ", \"gemm\": [";
  for (std::size_t i = 0; i < gemm_results.size(); ++i) {
    const GemmResult& r = gemm_results[i];
    json << (i ? ", " : "") << "{\"form\": \"" << r.spec.form
         << "\", \"m\": " << r.spec.m << ", \"n\": " << r.spec.n
         << ", \"k\": " << r.spec.k << ", \"role\": \"" << r.spec.role
         << "\", \"naive_gflops\": " << r.naive_gflops
         << ", \"blocked_gflops\": " << r.blocked_gflops << "}";
  }
  json << "], \"layers\": [";
  for (std::size_t i = 0; i < layer_results.size(); ++i) {
    const LayerResult& r = layer_results[i];
    json << (i ? ", " : "") << "{\"layer\": \"" << r.name
         << "\", \"naive_fwd_us\": " << r.naive_fwd_us
         << ", \"naive_bwd_us\": " << r.naive_bwd_us
         << ", \"pr7_fwd_us\": " << r.pr7_fwd_us
         << ", \"pr7_bwd_us\": " << r.pr7_bwd_us
         << ", \"blocked_fwd_us\": " << r.blocked_fwd_us
         << ", \"blocked_bwd_us\": " << r.blocked_bwd_us
         << ", \"reorder_us\": " << r.reorder_us << "}";
  }
  json << "]";
  if (timed && with_train) {
    json << ", \"train\": {\"design\": \"" << design
         << "\", \"layer\": " << layer << ", \"epochs\": " << epochs
         << ", \"naive_s_per_epoch\": " << train.naive_s_per_epoch
         << ", \"blocked_s_per_epoch\": " << train.blocked_s_per_epoch
         << ", \"speedup\": " << train.speedup << ", \"models_identical\": "
         << (train.models_identical ? "true" : "false") << "}";
  }
  sma::obs::RunReport report("kernels", 1);
  json << ", \"bit_identical\": " << (g_all_identical ? "true" : "false")
       << sma::benchutil::report_fragment(report) << "}";
  std::cout << json.str() << "\n";
  sma::benchutil::flush_trace();
  std::cerr << (g_all_identical
                    ? "bit-identity check: all outputs identical\n"
                    : "bit-identity check FAILED\n");
  return g_all_identical ? 0 : 1;
}
