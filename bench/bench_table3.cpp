// Reproduces Table 3: CCR and runtime of the DL attack vs the network-flow
// attack [1], split at Metal 1 and Metal 3, over the 16 benchmark designs.
//
// Flags:
//   --fast (default)   reduced-fidelity profile sized for one CPU core
//   --paper            full 99x99 images / 31 candidates / Table-2 net
//   --layers=1,3       which split layers to run
//   --designs=c432,... subset of designs (default: all 16)
//   --flow-timeout=S   network-flow budget per design in seconds
//   --threads=N        runtime threads (default: hardware concurrency;
//                      DL results are identical at any thread count, but
//                      flow-attack timeout verdicts are wall-clock-based
//                      and can flip under contention, and per-design
//                      Time columns reflect the contended run — use
//                      --threads=1 for paper-comparable runtimes)
//
// Expected shape (not absolute numbers — our substrate is a from-scratch
// simulator, not the authors' Innovus testbed): DL CCR >= flow CCR on
// average, larger gap at M1 than M3, and DL inference orders of magnitude
// faster on the large designs, where the flow attack times out.
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using sma::benchutil::split_list;
using sma::eval::ExperimentProfile;
using sma::eval::Table3Result;
using sma::eval::Table3Row;
using sma::util::format_double;

}  // namespace

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kInfo);
  sma::benchutil::init_observability();

  ExperimentProfile profile = ExperimentProfile::fast();
  bool paper_mode = false;
  std::vector<int> layers = {1, 3};
  std::vector<std::string> design_filter;
  // Profile tweaks are collected and applied after the loop so flag
  // order doesn't matter (--threads=1 --paper must keep 1 thread).
  std::optional<double> flow_timeout;
  std::optional<int> threads;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--paper") {
      profile = ExperimentProfile::paper();
      paper_mode = true;
    } else if (arg == "--fast") {
      profile = ExperimentProfile::fast();
      paper_mode = false;
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers.clear();
      for (const std::string& l : split_list(arg.substr(9))) {
        layers.push_back(std::stoi(l));
      }
    } else if (arg.rfind("--designs=", 0) == 0) {
      design_filter = split_list(arg.substr(10));
    } else if (arg.rfind("--flow-timeout=", 0) == 0) {
      flow_timeout =
          sma::benchutil::parse_double(arg.substr(15), "--flow-timeout", 0.0);
    } else if (arg.rfind("--threads=", 0) == 0) {
      // 0 = hardware concurrency; negative thread counts are nonsense.
      threads = sma::benchutil::parse_int(arg.substr(10), "--threads", 0);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (flow_timeout) profile.flow_attack.timeout_seconds = *flow_timeout;
  if (threads) profile.runtime.threads = *threads;

  std::vector<sma::netlist::DesignProfile> designs;
  for (const auto& p : sma::netlist::attack_profiles()) {
    if (design_filter.empty()) {
      designs.push_back(p);
    } else {
      for (const std::string& name : design_filter) {
        if (p.name == name) designs.push_back(p);
      }
    }
  }

  std::cout << "Table 3: Comparison with the network-flow attack [1]\n";
  std::cout << "profile: " << (paper_mode ? "paper" : "fast")
            << " (images " << profile.dataset.images.size << "x"
            << profile.dataset.images.size << ", n="
            << profile.dataset.candidates.max_candidates
            << ", flow timeout " << profile.flow_attack.timeout_seconds
            << "s)\n\n";

  for (int layer : layers) {
    Table3Result result =
        sma::eval::run_table3(layer, profile, sma::layout::FlowConfig{},
                              designs, /*seed=*/2019);

    std::cout << "=== Split after Metal " << layer << " ===\n";
    std::cout << "(training took " << format_double(result.train_seconds, 1)
              << "s; designs marked * are scaled down for single-core runtime)\n";
    sma::util::Table table({"Design", "#Sk", "#Sc", "CCR%[1]", "CCR%ours",
                            "Time[1](s)", "Time ours(s)", "hit%"});
    for (const Table3Row& row : result.rows) {
      table.add_row({
          row.design + (row.scaled_down ? "*" : ""),
          std::to_string(row.num_sink_fragments),
          std::to_string(row.num_source_fragments),
          row.flow_timed_out ? "N/A" : format_double(row.flow_ccr * 100, 2),
          format_double(row.dl_ccr * 100, 2),
          row.flow_timed_out ? ("> " + format_double(
                                         profile.flow_attack.timeout_seconds,
                                         0))
                             : format_double(row.flow_seconds, 2),
          format_double(row.dl_seconds, 2),
          format_double(row.hit_rate * 100, 1),
      });
    }
    table.add_row({"Average", "", "", format_double(result.avg_flow_ccr * 100, 2),
                   format_double(result.avg_dl_ccr * 100, 2),
                   format_double(result.avg_flow_seconds, 2),
                   format_double(result.avg_dl_seconds, 2), ""});
    double ccr_ratio = result.avg_dl_ccr / result.avg_flow_ccr;
    double time_ratio = result.avg_dl_seconds / result.avg_flow_seconds;
    table.add_row({"Ratio", "", "", "1.00", format_double(ccr_ratio, 2),
                   "1.000", format_double(time_ratio, 3), ""});
    std::cout << table.to_string() << "\n";
    std::cout << "paper reference: CCR ratio 1.21x at M1, 1.12x at M3; "
                 "runtime ratio ~0.001-0.002\n\n";
  }
  sma::benchutil::flush_report(
      sma::obs::RunReport("table3", profile.runtime.resolved()));
  sma::benchutil::flush_trace();
  return 0;
}
