// Sample-selection quality (Sec. 4.1 / Sec. 5 setup): for each design and
// split layer, reports fragment counts and the candidate-list hit rate
// (how often the true connection survives the three selection criteria
// with n = 31) — the upper bound on any attack's CCR — plus the criteria's
// individual contributions.
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "split/candidates.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kWarn);
  sma::benchutil::init_observability();
  int max_gates = 1300;  // default: small/mid designs
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--all") max_gates = 1 << 30;
  }

  std::cout << "Candidate selection quality (n = 31, Sec. 4.1 criteria)\n\n";
  for (int layer : {1, 3}) {
    sma::util::Table table({"Design", "#frag", "#Sk", "#Sc", "#VP",
                            "hit%(n=31)", "hit%(no-dir)", "hit%(n=8)"});
    for (const auto& profile : sma::netlist::attack_profiles()) {
      if (profile.num_gates > max_gates) continue;
      sma::eval::PreparedSplit prepared = sma::eval::prepare_split(
          profile, layer, sma::layout::FlowConfig{}, 2019);
      const sma::split::SplitDesign& split = *prepared.split;
      sma::split::SplitStats stats = split.stats();

      sma::split::CandidateConfig base;
      base.max_candidates = 31;
      sma::split::CandidateConfig no_direction = base;
      no_direction.use_direction_criterion = false;
      sma::split::CandidateConfig tight = base;
      tight.max_candidates = 8;

      double hit = sma::split::candidate_hit_rate(
          sma::split::build_queries(split, base));
      double hit_nodir = sma::split::candidate_hit_rate(
          sma::split::build_queries(split, no_direction));
      double hit8 = sma::split::candidate_hit_rate(
          sma::split::build_queries(split, tight));

      table.add_row({profile.name, std::to_string(stats.num_fragments),
                     std::to_string(stats.num_sink_fragments),
                     std::to_string(stats.num_source_fragments),
                     std::to_string(stats.num_virtual_pins),
                     sma::util::format_double(hit * 100, 1),
                     sma::util::format_double(hit_nodir * 100, 1),
                     sma::util::format_double(hit8 * 100, 1)});
    }
    std::cout << "=== Split after Metal " << layer << " ===\n"
              << table.to_string() << "\n";
  }
  std::cout << "hit% bounds any attack's CCR; the direction criterion "
               "should cost little coverage (its column stays close to "
               "no-dir), and n=8 shows the distance criterion's pressure.\n";
  sma::benchutil::flush_report(sma::obs::RunReport("candidates", 1));
  sma::benchutil::flush_trace();
  return 0;
}
