// Reproduces Figure 5: ablation of the proposed techniques at an M3 split.
//   (a) average CCR of: two-class loss (vector features only),
//       softmax-regression loss (vector only), softmax + image features;
//   (b) average inference time of the three settings.
//
// Expected shape: CCR(two-class) < CCR(vec) <= CCR(vec+img) (the paper
// reports 1.00 : 1.07 : 1.09), with comparable inference times.
//
// Flags: --fast (default) / --paper, --designs=..., --threads=N
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kInfo);
  sma::benchutil::init_observability();

  sma::eval::ExperimentProfile profile = sma::eval::ExperimentProfile::fast();
  std::vector<std::string> design_filter;
  std::optional<int> threads;  // applied last: flag order must not matter
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--paper") {
      profile = sma::eval::ExperimentProfile::paper();
    } else if (arg == "--fast") {
      profile = sma::eval::ExperimentProfile::fast();
    } else if (arg.rfind("--designs=", 0) == 0) {
      design_filter = sma::benchutil::split_list(arg.substr(10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = sma::benchutil::parse_int(arg.substr(10), "--threads", 0);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (threads) profile.runtime.threads = *threads;

  // Figure 5 averages over the to-be-attacked designs; by default use the
  // small and mid-size ones so all three settings run in minutes.
  std::vector<sma::netlist::DesignProfile> designs;
  for (const auto& p : sma::netlist::attack_profiles()) {
    bool selected = design_filter.empty()
                        ? p.num_gates <= 1700  // keep the sweep tractable
                        : false;
    for (const std::string& name : design_filter) {
      if (p.name == name) selected = true;
    }
    if (selected) designs.push_back(p);
  }

  std::cout << "Figure 5: ablation of loss function and image features "
               "(split after Metal 3)\n\n";
  std::vector<sma::eval::AblationRow> rows =
      sma::eval::run_figure5(profile, sma::layout::FlowConfig{}, designs,
                             /*seed=*/2019);

  sma::util::Table table(
      {"Setting", "Avg CCR (%)", "CCR vs two-class", "Avg inference (s)"});
  double baseline = rows.empty() ? 1.0 : rows.front().avg_ccr;
  for (const sma::eval::AblationRow& row : rows) {
    table.add_row({row.setting,
                   sma::util::format_double(row.avg_ccr * 100, 2),
                   sma::util::format_double(
                       baseline > 0 ? row.avg_ccr / baseline : 0.0, 3),
                   sma::util::format_double(row.avg_inference_seconds, 2)});
  }
  std::cout << table.to_string();
  std::cout << "\npaper reference: softmax loss = 1.07x two-class baseline; "
               "adding images = 1.09x (Fig. 5a); inference times comparable "
               "(Fig. 5b)\n";
  sma::benchutil::flush_report(
      sma::obs::RunReport("figure5", profile.runtime.resolved()));
  sma::benchutil::flush_trace();
  return 0;
}
