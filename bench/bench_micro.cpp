// Micro-benchmarks of the pipeline stages (google-benchmark): placement,
// routing, split extraction, candidate generation, feature rendering, and
// the neural network's forward/backward — the building blocks behind the
// Table 3 runtime column.
#include <benchmark/benchmark.h>

#include "attack/dataset.hpp"
#include "eval/experiment.hpp"
#include "netlist/generator.hpp"
#include "nn/attack_net.hpp"
#include "nn/losses.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "split/candidates.hpp"

namespace {

using namespace sma;  // NOLINT: bench-local brevity

netlist::Netlist make_netlist(int gates, std::uint64_t seed = 1) {
  netlist::GeneratorConfig config;
  config.num_gates = gates;
  config.num_inputs = std::max(4, gates / 12);
  config.num_outputs = std::max(2, gates / 24);
  config.seed = seed;
  static const tech::CellLibrary lib = tech::CellLibrary::nangate45_like();
  return netlist::generate_netlist(config, "bench", &lib);
}

void BM_NetlistGeneration(benchmark::State& state) {
  for (auto _ : state) {
    netlist::Netlist nl = make_netlist(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(nl.num_nets());
  }
}
BENCHMARK(BM_NetlistGeneration)->Arg(200)->Arg(1000);

void BM_GlobalPlacement(benchmark::State& state) {
  netlist::Netlist nl = make_netlist(static_cast<int>(state.range(0)));
  place::Floorplan fp = place::make_floorplan(nl);
  for (auto _ : state) {
    place::Placement placement(&nl, fp);
    place::run_global_placement(placement);
    benchmark::DoNotOptimize(placement.total_hpwl());
  }
}
BENCHMARK(BM_GlobalPlacement)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_FullFlow(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    netlist::Netlist nl = make_netlist(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    layout::Design design = layout::run_flow(std::move(nl));
    benchmark::DoNotOptimize(design.routing.total_wirelength);
  }
}
BENCHMARK(BM_FullFlow)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SplitExtraction(benchmark::State& state) {
  layout::Design design = layout::run_flow(make_netlist(600));
  for (auto _ : state) {
    split::SplitDesign split(&design, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(split.fragments().size());
  }
}
BENCHMARK(BM_SplitExtraction)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_CandidateGeneration(benchmark::State& state) {
  layout::Design design = layout::run_flow(make_netlist(600));
  split::SplitDesign split(&design, 3);
  split::CandidateConfig config;
  config.max_candidates = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto queries = split::build_queries(split, config);
    benchmark::DoNotOptimize(queries.size());
  }
}
BENCHMARK(BM_CandidateGeneration)->Arg(8)->Arg(31)->Unit(benchmark::kMillisecond);

void BM_ImageRendering(benchmark::State& state) {
  layout::Design design = layout::run_flow(make_netlist(600));
  split::SplitDesign split(&design, 3);
  features::ImageConfig config;
  config.size = static_cast<int>(state.range(0));
  config.pixel_sizes = {50, 100, 200};
  features::ImageRenderer renderer(&split, config);
  int vp = 0;
  for (auto _ : state) {
    auto image = renderer.render(vp);
    vp = (vp + 1) % static_cast<int>(split.virtual_pins().size());
    benchmark::DoNotOptimize(image.data());
  }
}
BENCHMARK(BM_ImageRendering)->Arg(15)->Arg(99);

void BM_NetForwardBackward(benchmark::State& state) {
  nn::NetConfig config = nn::NetConfig::fast();
  config.image_channels = 3;
  nn::AttackNet net(config);
  const int n = 15;
  const int size = static_cast<int>(state.range(0));
  util::Pcg32 rng(5);
  nn::QueryInput input;
  input.vec = nn::Tensor::randn({n, 27}, rng, 1.0);
  input.images = nn::Tensor::randn({n + 1, 3, size, size}, rng, 0.3);
  for (auto _ : state) {
    nn::Tensor scores = net.forward(input);
    nn::LossResult loss = nn::softmax_regression_loss(scores, 0);
    net.backward(loss.grad);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_NetForwardBackward)->Arg(15)->Arg(33)->Unit(benchmark::kMillisecond);

void BM_VectorFeatures(benchmark::State& state) {
  layout::Design design = layout::run_flow(make_netlist(400));
  split::SplitDesign split(&design, 3);
  auto queries = split::build_queries(split);
  for (auto _ : state) {
    for (const auto& q : queries) {
      for (const auto& vpp : q.candidates) {
        auto f = features::compute_vector_features(split, vpp);
        benchmark::DoNotOptimize(f[0]);
      }
    }
  }
}
BENCHMARK(BM_VectorFeatures)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
