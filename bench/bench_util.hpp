// Small helpers shared by the bench main()s.
#pragma once

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace sma::benchutil {

/// Parse an integer flag value; exits(2) with a message naming the flag
/// on malformed input or a value below `min_value`.
inline int parse_int(const std::string& value, const std::string& flag,
                     int min_value) {
  int parsed = 0;
  try {
    std::size_t used = 0;
    parsed = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    std::cerr << "invalid integer for " << flag << ": '" << value << "'\n";
    std::exit(2);
  }
  if (parsed < min_value) {
    std::cerr << flag << " must be >= " << min_value << " (got " << parsed
              << ")\n";
    std::exit(2);
  }
  return parsed;
}

/// `parse_int`'s floating-point sibling.
inline double parse_double(const std::string& value, const std::string& flag,
                           double min_value) {
  double parsed = 0.0;
  try {
    std::size_t used = 0;
    parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    std::cerr << "invalid number for " << flag << ": '" << value << "'\n";
    std::exit(2);
  }
  if (parsed < min_value) {
    std::cerr << flag << " must be >= " << min_value << " (got " << parsed
              << ")\n";
    std::exit(2);
  }
  return parsed;
}

/// Escape a string for embedding in a JSON string literal.
inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// "a,b,c" -> {"a", "b", "c"}; empty tokens are dropped.
inline std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace sma::benchutil
