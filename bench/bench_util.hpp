// Small helpers shared by the bench main()s.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace sma::benchutil {

/// Standard bench bring-up: honor SMA_LOG_LEVEL, and enable tracing when
/// SMA_TRACE is set (its value names the Chrome-trace output file, which
/// `flush_trace` writes at exit). Call first thing in main().
inline void init_observability() {
  util::set_log_level_from_env();
  const char* trace_path = std::getenv("SMA_TRACE");
  if (trace_path != nullptr && *trace_path != '\0') {
    obs::set_tracing_enabled(true);
  }
}

/// Write the trace started by `init_observability`, if any. Call after
/// all pool work has joined (end of main()).
inline void flush_trace() {
  const char* trace_path = std::getenv("SMA_TRACE");
  if (trace_path == nullptr || *trace_path == '\0') return;
  std::ofstream out(trace_path);
  if (!out) {
    std::cerr << "cannot write SMA_TRACE file '" << trace_path << "'\n";
    return;
  }
  obs::write_chrome_trace(out);
}

/// The unified report fragment every bench embeds in its JSON object:
/// `, "report": {...}` — appended just before the closing brace.
inline std::string report_fragment(const obs::RunReport& report) {
  return ", \"report\": " + report.to_json();
}

/// For benches whose stdout is a human-readable table rather than JSON:
/// write the run report to the file named by SMA_REPORT (no-op unset).
inline void flush_report(const obs::RunReport& report) {
  const char* path = std::getenv("SMA_REPORT");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write SMA_REPORT file '" << path << "'\n";
    return;
  }
  out << report.to_json() << "\n";
}

/// Parse an integer flag value; exits(2) with a message naming the flag
/// on malformed input or a value below `min_value`.
inline int parse_int(const std::string& value, const std::string& flag,
                     int min_value) {
  int parsed = 0;
  try {
    std::size_t used = 0;
    parsed = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    std::cerr << "invalid integer for " << flag << ": '" << value << "'\n";
    std::exit(2);
  }
  if (parsed < min_value) {
    std::cerr << flag << " must be >= " << min_value << " (got " << parsed
              << ")\n";
    std::exit(2);
  }
  return parsed;
}

/// `parse_int`'s floating-point sibling.
inline double parse_double(const std::string& value, const std::string& flag,
                           double min_value) {
  double parsed = 0.0;
  try {
    std::size_t used = 0;
    parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    std::cerr << "invalid number for " << flag << ": '" << value << "'\n";
    std::exit(2);
  }
  if (parsed < min_value) {
    std::cerr << flag << " must be >= " << min_value << " (got " << parsed
              << ")\n";
    std::exit(2);
  }
  return parsed;
}

/// Escape a string for embedding in a JSON string literal.
inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// "a,b,c" -> {"a", "b", "c"}; empty tokens are dropped.
inline std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace sma::benchutil
