#!/usr/bin/env python3
"""Repo-specific determinism lint for the split-manufacturing attack.

The repo's core guarantee is bit-identical models, tables and layouts at
any thread count.  Functional tests catch *algorithmic* violations; this
lint catches the *construct-level* ones that tend to slip through because
they are deterministic on one machine and nondeterministic on the next:

  unordered-iter     iteration over std::unordered_map/unordered_set
                     (iteration order is implementation- and salt-defined)
  unordered-include  <unordered_map>/<unordered_set> included but unused —
                     a stale include that invites future unordered use
  entropy            entropy/time sources outside the sanctioned modules:
                     std::random_device, rand()/srand(), time(),
                     *_clock::now() (incl. aliases like `clock::now()`)
  thread-id          std::this_thread::get_id in logic (ids are assigned
                     by the OS scheduler; use util::thread_ordinal())
  pointer-order      ordering or hashing by pointer value: std::set/map/
                     less/greater over pointer keys, std::hash<T*>,
                     reinterpret_cast<uintptr_t> (heap layout is random
                     under ASLR, so pointer order varies per run)
  fp-contract        a TU with a floating-point multiply-accumulate that
                     is not listed in SMA_FP_STRICT_TUS in CMakeLists.txt
                     (FMA contraction changes rounding on -march=native)

Suppression is explicit and audited: append

    // sma-lint: allow(<rule>) <reason>

to the offending line, or put it on the line directly above.  The reason
is mandatory; an allow that matches no finding (stale) or names an
unknown rule is itself an error, so suppressions cannot rot.

Exit status: 0 when src/ is clean, 1 when any unsuppressed finding (or
bad suppression) exists, 2 on usage errors.  `--self-test` runs the lint
against tests/lint_fixtures/ and verifies every rule still trips on its
trip_<rule>.cpp fixture while clean*.cpp stays clean.
"""

import argparse
import os
import re
import sys

RULES = (
    "unordered-iter",
    "unordered-include",
    "entropy",
    "thread-id",
    "pointer-order",
    "fp-contract",
)

# Paths (relative to repo root, '/'-separated) where entropy sources are
# the module's job: the seeded RNG, the wall-clock timer, and the
# observability layer (timestamps feed reports, never algorithms).
ENTROPY_ALLOWED_PREFIXES = (
    "src/util/rng.",
    "src/util/timer.",
    "src/obs/",
)

ALLOW_RE = re.compile(r"//\s*sma-lint:\s*allow\(([a-z-]+)\)\s*(.*)")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<.*>\s*&?\s*([A-Za-z_]\w*)")
UNORDERED_INCLUDE_RE = re.compile(r'#\s*include\s*[<"](unordered_map|unordered_set)[>"]')

ENTROPY_RES = (
    re.compile(r"\bstd\s*::\s*random_device\b"),
    re.compile(r"\bstd\s*::\s*(?:s?rand|time)\s*\("),
    re.compile(r"(?<![\w.:>])s?rand\s*\("),
    re.compile(r"(?<![\w.:>])time\s*\("),
    re.compile(r"\b\w*clock\w*\s*::\s*now\s*\("),
)

THREAD_ID_RE = re.compile(r"\bthis_thread\s*::\s*get_id\b")

POINTER_ORDER_RES = (
    re.compile(r"\bstd\s*::\s*hash\s*<[^<>]*\*\s*(?:const\s*)?>"),
    re.compile(r"\bstd\s*::\s*(?:set|map|less|greater)\s*<[^<>,]*\*"),
    re.compile(r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\b"),
)

# A compound FP accumulate with a multiply on the right-hand side — the
# pattern FMA contraction rewrites.  `sizeof` excludes size arithmetic.
FP_ACCUM_RE = re.compile(r"[^=<>!+\-*/|&^][+-]=[^=].*\*")
FLOATISH_RE = re.compile(r"\b(float|double)\b|\b\d+\.\d*f?\b|\b\d+\.?\d*e[+-]?\d+\b")

FP_STRICT_BLOCK_RE = re.compile(
    r"set\s*\(\s*SMA_FP_STRICT_TUS\s*(.*?)\)", re.DOTALL)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(lines):
    """Return code-only lines: string/char literals blanked, // and block
    comments removed.  Line count and column positions are preserved where
    possible so findings point at the real line."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i = 0
        n = len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end == -1:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                break  # rest of line is a comment
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c == '"' or c == "'":
                quote = c
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                buf.append('""' if quote == '"' else "' '")
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def parse_allows(lines):
    """Map line number (1-based) -> (rule, reason, raw_line_no) for every
    sma-lint allow directive.  A directive covers its own line and the
    line below it (for `x =  // sma-lint: allow(...)` split statements)."""
    allows = {}
    errors = []
    for idx, raw in enumerate(lines, start=1):
        m = ALLOW_RE.search(raw)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if rule not in RULES:
            errors.append((idx, f"unknown rule '{rule}' in sma-lint allow "
                                f"(known: {', '.join(RULES)})"))
            continue
        if not reason:
            errors.append((idx, f"sma-lint allow({rule}) without a reason — "
                                "say why the construct is safe"))
            continue
        allows[idx] = {"rule": rule, "reason": reason, "used": False}
    return allows, errors


def parse_fp_strict_tus(repo):
    path = os.path.join(repo, "CMakeLists.txt")
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return set()
    m = FP_STRICT_BLOCK_RE.search(text)
    if not m:
        return set()
    tus = set()
    for line in m.group(1).splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            tus.add(line)
    return tus


def sibling_paths(path):
    """Header/source siblings sharing the stem — a member declared in
    foo.hpp is legitimately iterated in foo.cpp, so unordered names are
    collected across the pair."""
    stem, _ = os.path.splitext(path)
    return [stem + ext for ext in (".hpp", ".h", ".cpp", ".cc")
            if os.path.exists(stem + ext)]


def collect_unordered_names(paths):
    names = set()
    for p in paths:
        try:
            with open(p, encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError:
            continue
        for line in strip_comments_and_strings(lines):
            for m in UNORDERED_DECL_RE.finditer(line):
                name = m.group(1)
                if name not in ("const", "auto"):
                    names.add(name)
    return names


def check_file(path, rel, code, fp_strict_tus):
    """Yield Finding objects for one file.  `code` is the comment/string
    stripped line list."""
    findings = []

    # --- unordered-iter -------------------------------------------------
    unordered_names = collect_unordered_names(sibling_paths(path))
    iter_res = []
    for name in unordered_names:
        iter_res.append((name, re.compile(
            r"for\s*\([^;)]*:\s*(?:\*?\s*)?(?:[A-Za-z_]\w*(?:\.|->))*"
            + re.escape(name) + r"\s*\)")))
        iter_res.append((name, re.compile(
            r"\b" + re.escape(name) + r"\s*(?:\.|->)\s*c?r?begin\s*\(")))
    uses_unordered = False
    for idx, line in enumerate(code, start=1):
        if "unordered_map" in line or "unordered_set" in line:
            if not UNORDERED_INCLUDE_RE.search(line):
                uses_unordered = True
        for name, rx in iter_res:
            if rx.search(line):
                findings.append(Finding(
                    rel, idx, "unordered-iter",
                    f"iteration over unordered container '{name}' — order is "
                    "implementation-defined; copy keys out and sort, or use "
                    "std::map/std::vector"))

    # --- unordered-include ----------------------------------------------
    if not uses_unordered:
        for idx, line in enumerate(code, start=1):
            m = UNORDERED_INCLUDE_RE.search(line)
            if m:
                findings.append(Finding(
                    rel, idx, "unordered-include",
                    f"<{m.group(1)}> included but never used — remove the "
                    "stale include (it invites order-sensitive code later)"))

    # --- entropy ---------------------------------------------------------
    relpost = rel.replace(os.sep, "/")
    entropy_allowed = any(relpost.startswith(p) for p in ENTROPY_ALLOWED_PREFIXES)
    if not entropy_allowed:
        for idx, line in enumerate(code, start=1):
            for rx in ENTROPY_RES:
                if rx.search(line):
                    findings.append(Finding(
                        rel, idx, "entropy",
                        "entropy/time source outside util/rng, util/timer "
                        "and obs/ — thread seeded util::Rng or obs::now_us "
                        "through instead"))
                    break

    # --- thread-id --------------------------------------------------------
    for idx, line in enumerate(code, start=1):
        if THREAD_ID_RE.search(line):
            findings.append(Finding(
                rel, idx, "thread-id",
                "std::this_thread::get_id is scheduler-assigned — use "
                "util::thread_ordinal() (stable small ints) instead"))

    # --- pointer-order ----------------------------------------------------
    for idx, line in enumerate(code, start=1):
        for rx in POINTER_ORDER_RES:
            if rx.search(line):
                findings.append(Finding(
                    rel, idx, "pointer-order",
                    "ordering/hashing by pointer value varies per run under "
                    "ASLR — key on a stable id instead"))
                break

    # --- fp-contract ------------------------------------------------------
    if rel.endswith((".cpp", ".cc")) and relpost not in fp_strict_tus:
        floatish_lines = [bool(FLOATISH_RE.search(l)) for l in code]
        for idx, line in enumerate(code, start=1):
            if "sizeof" in line:
                continue
            if not FP_ACCUM_RE.search(line):
                continue
            lo = max(0, idx - 1 - 25)
            hi = min(len(code), idx + 25)
            if any(floatish_lines[lo:hi]):
                findings.append(Finding(
                    rel, idx, "fp-contract",
                    "floating-point multiply-accumulate in a TU not listed "
                    "in SMA_FP_STRICT_TUS (CMakeLists.txt) — FMA contraction "
                    "would change rounding; add the TU to the list or mark "
                    "the accumulate as non-output-shaping"))
    return findings


def lint_paths(repo, files, fp_strict_tus):
    """Lint the given files.  Returns (unsuppressed findings, errors)."""
    reported = []
    errors = []
    for path in files:
        rel = os.path.relpath(path, repo)
        try:
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError as e:
            errors.append(Finding(rel, 0, "io", str(e)))
            continue
        code = strip_comments_and_strings(lines)
        allows, allow_errors = parse_allows(lines)
        for line_no, msg in allow_errors:
            errors.append(Finding(rel, line_no, "bad-allow", msg))
        for finding in check_file(path, rel, code, fp_strict_tus):
            suppressed = False
            # A directive on the finding's line or the line above covers it.
            for directive_line in (finding.line, finding.line - 1):
                allow = allows.get(directive_line)
                if allow and allow["rule"] == finding.rule:
                    allow["used"] = True
                    suppressed = True
                    break
            if not suppressed:
                reported.append(finding)
        for line_no, allow in sorted(allows.items()):
            if not allow["used"]:
                errors.append(Finding(
                    rel, line_no, "stale-allow",
                    f"sma-lint allow({allow['rule']}) matches no finding — "
                    "remove it (stale suppressions hide future regressions)"))
    return reported, errors


def gather_src_files(repo):
    files = []
    for root, dirs, names in os.walk(os.path.join(repo, "src")):
        dirs.sort()
        for name in sorted(names):
            if name.endswith((".cpp", ".cc", ".hpp", ".h")):
                files.append(os.path.join(root, name))
    return files


def run_self_test(repo, fp_strict_tus):
    """Every trip_<rule>.cpp fixture must produce ≥1 finding of exactly
    that rule; clean*.cpp must produce none and no errors."""
    fixture_dir = os.path.join(repo, "tests", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"self-test: fixture directory missing: {fixture_dir}")
        return 1
    failures = []
    checked = 0
    seen_rules = set()
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith((".cpp", ".hpp")):
            continue
        path = os.path.join(fixture_dir, name)
        findings, errors = lint_paths(repo, [path], fp_strict_tus)
        checked += 1
        if name.startswith("trip_"):
            rule = os.path.splitext(name)[0][len("trip_"):].replace("_", "-")
            seen_rules.add(rule)
            hits = [f for f in findings if f.rule == rule]
            strays = [f for f in findings + errors if f.rule != rule]
            if not hits:
                failures.append(f"{name}: rule '{rule}' did not trip")
            for s in strays:
                failures.append(f"{name}: unexpected {s}")
        elif name.startswith("clean"):
            for f in findings + errors:
                failures.append(f"{name}: expected clean, got {f}")
        else:
            failures.append(f"{name}: fixture must be trip_<rule>.* or clean*.*")
    missing = set(RULES) - seen_rules
    if missing:
        failures.append("no trip fixture for rule(s): " + ", ".join(sorted(missing)))
    if failures:
        print(f"self-test FAILED ({len(failures)} problem(s)):")
        for f in failures:
            print("  " + f)
        return 1
    print(f"self-test OK: {checked} fixtures, all {len(RULES)} rules trip, "
          "clean fixtures stay clean")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint tests/lint_fixtures/ and verify every "
                             "rule trips; ignores src/")
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (default: all of src/)")
    args = parser.parse_args(argv)

    repo = os.path.abspath(args.repo)
    fp_strict_tus = parse_fp_strict_tus(repo)

    if args.self_test:
        return run_self_test(repo, fp_strict_tus)

    files = [os.path.abspath(f) for f in args.files] or gather_src_files(repo)
    if not files:
        print(f"lint_determinism: no files under {repo}/src", file=sys.stderr)
        return 2
    findings, errors = lint_paths(repo, files, fp_strict_tus)
    for f in findings + errors:
        print(f)
    if findings or errors:
        print(f"lint_determinism: {len(findings)} finding(s), "
              f"{len(errors)} suppression error(s) in {len(files)} file(s)")
        return 1
    print(f"lint_determinism: clean ({len(files)} files, "
          f"{len(fp_strict_tus)} fp-strict TUs)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
