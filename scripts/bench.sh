#!/usr/bin/env bash
# Run a repo benchmark and emit its JSON result file.
#
# Usage: scripts/bench.sh [parallel|kernels|all] [extra bench flags]
#   scripts/bench.sh                      # parallel bench (default)
#   scripts/bench.sh parallel --threads=1,2,4 --layer=3
#   scripts/bench.sh kernels --design=c880 --epochs=3
#   scripts/bench.sh all                  # both, default flags only
#
# Each bench prints human-readable progress on stderr and exactly one
# JSON object on stdout; exit status is non-zero if its self-check fails
# (bench_parallel: determinism across thread counts; bench_kernels:
# bit-identity between naive and blocked kernels).
set -euo pipefail

cd "$(dirname "$0")/.."

which="${1:-parallel}"
case "$which" in
  parallel|kernels|all) shift || true ;;
  *) which=parallel ;;  # no subcommand: all args go to bench_parallel
esac

if [ ! -d build ]; then
  cmake -B build -S . >&2
fi

run_one() {
  local name="$1"
  shift
  # Always (re)build — incremental and cheap, and it prevents silently
  # benchmarking a stale binary after source changes.
  cmake --build build -j --target "bench_${name}" >&2
  "build/bench_${name}" "$@" > "BENCH_${name}.json"
  echo "wrote BENCH_${name}.json:" >&2
  cat "BENCH_${name}.json"
}

case "$which" in
  parallel) run_one parallel "$@" ;;
  kernels)  run_one kernels "$@" ;;
  all)
    # The two benches take different flags, so `all` runs both with
    # defaults rather than forwarding one bench's flags to the other.
    if [ "$#" -gt 0 ]; then
      echo "bench.sh all takes no extra flags (run each bench separately)" >&2
      exit 2
    fi
    run_one parallel
    run_one kernels
    ;;
esac
