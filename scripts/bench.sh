#!/usr/bin/env bash
# Run the parallel-runtime speedup bench and emit BENCH_parallel.json.
#
# Usage: scripts/bench.sh [extra bench_parallel flags]
#   e.g. scripts/bench.sh --threads=1,2,4,8 --layer=3
#
# The bench prints human-readable progress on stderr and exactly one JSON
# object on stdout; exit status is non-zero if the determinism check
# (identical CCRs at every thread count) fails.
set -euo pipefail

cd "$(dirname "$0")/.."

if [ ! -d build ]; then
  cmake -B build -S . >&2
fi
# Always (re)build — incremental and cheap, and it prevents silently
# benchmarking a stale binary after source changes.
cmake --build build -j --target bench_parallel >&2

build/bench_parallel "$@" > BENCH_parallel.json
echo "wrote BENCH_parallel.json:" >&2
cat BENCH_parallel.json
