#!/usr/bin/env bash
# Run a repo benchmark and emit its JSON result file.
#
# Usage: scripts/bench.sh [parallel|kernels|train|flow|serve|all] [flags]
#   scripts/bench.sh                      # parallel bench (default)
#   scripts/bench.sh parallel --threads=1,2,4 --layer=3
#   scripts/bench.sh kernels --design=c880 --epochs=3
#   scripts/bench.sh train --design=c432 --epochs=3
#   scripts/bench.sh flow --designs=c432,b13 --threads=1,2,4
#   scripts/bench.sh serve --design=c432 --widths=1,4,16,64
#   scripts/bench.sh all                  # all five, default flags only
#
# Each bench prints human-readable progress on stderr and exactly one
# JSON object on stdout; exit status is non-zero if its self-check fails
# (bench_parallel: determinism across thread counts; bench_kernels:
# bit-identity between naive and blocked kernels; bench_train:
# bit-identity between the fused and three-pass training paths;
# bench_flow: byte-identical layouts across thread counts; bench_serve:
# bit-identity between batched widths and batch-1, zero steady-state
# arena allocations).
set -euo pipefail

cd "$(dirname "$0")/.."

which="${1:-parallel}"
case "$which" in
  parallel|kernels|train|flow|serve|all) shift || true ;;
  *) which=parallel ;;  # no subcommand: all args go to bench_parallel
esac

if [ ! -d build ]; then
  cmake -B build -S . >&2
fi

run_one() {
  local name="$1"
  shift
  # Always (re)build — incremental and cheap, and it prevents silently
  # benchmarking a stale binary after source changes.
  cmake --build build -j --target "bench_${name}" >&2
  "build/bench_${name}" "$@" > "BENCH_${name}.json"
  echo "wrote BENCH_${name}.json:" >&2
  cat "BENCH_${name}.json"
}

case "$which" in
  parallel) run_one parallel "$@" ;;
  kernels)  run_one kernels "$@" ;;
  train)    run_one train "$@" ;;
  flow)     run_one flow "$@" ;;
  serve)    run_one serve "$@" ;;
  all)
    # The benches take different flags, so `all` runs each with defaults
    # rather than forwarding one bench's flags to the others.
    if [ "$#" -gt 0 ]; then
      echo "bench.sh all takes no extra flags (run each bench separately)" >&2
      exit 2
    fi
    run_one parallel
    run_one kernels
    run_one train
    run_one flow
    run_one serve
    ;;
esac
