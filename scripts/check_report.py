#!/usr/bin/env python3
"""Validate observability artifacts: Chrome traces and sma run reports.

Three checks, combinable in one invocation (CI runs all of them):

  --trace FILE      FILE is Chrome trace-event JSON: a `traceEvents` list
                    of complete ("X") events with the keys Perfetto /
                    chrome://tracing need. By default the trace must be
                    non-empty (a traced run that recorded zero spans means
                    the instrumentation is broken); --allow-empty relaxes.

  --report FILE     FILE is a unified run report of schema
                    sma-run-report-v1 (see src/obs/report.hpp).

  --bench FILE...   Each FILE is a BENCH_*.json bench artifact; when it
                    embeds a "report" object, that object must validate as
                    sma-run-report-v1. Guards against report-schema drift
                    in the bench trajectory.

Exits non-zero with a message naming the file and the violated rule.
"""

import argparse
import json
import sys

SCHEMA = "sma-run-report-v1"

TRACE_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")
RUN_KEYS = ("name", "threads", "obs_compiled", "tracing")
FLOW_ROW_KEYS = (
    "design",
    "global_place_seconds",
    "legalize_seconds",
    "detailed_place_seconds",
    "route_seconds",
    "negotiation_seconds",
    "wirelength",
    "vias",
    "overflow",
    "fallback_routes",
)
TRAIN_KEYS = (
    "seconds",
    "seconds_per_epoch",
    "epochs",
    "queries_seen",
    "final_loss",
    "arena_allocs_total",
    "arena_bytes_pinned",
)
REPLICA_KEYS = (
    "clones_created",
    "leases",
    "max_on_loan",
    "wait_seconds",
    "occupancy_seconds",
    "timeouts",
    "arena_allocs",
    "arena_bytes_pinned",
)
SERVE_KEYS = (
    "submitted",
    "answered",
    "failed",
    "empty",
    "batches",
    "max_batch_seen",
    "max_queue_depth",
)
SPLIT_CACHE_KEYS = (
    "hits",
    "misses",
    "disk_hits",
    "disk_spills",
    "disk_corrupt",
    "disk_dir",
)
DURABILITY_KEYS = (
    "fault_compiled",
    "faults_injected",
    "checkpoint_saves",
    "checkpoint_resumes",
    "checkpoint_corrupt_discards",
)
KERNEL_KEYS = ("backend", "isa", "blocked_calls", "reference_calls",
               "reorder_bytes", "pack_bytes")
METRICS_KEYS = ("counters", "gauges", "histograms")
HISTOGRAM_KEYS = ("count", "sum", "buckets")


def fail(path, message):
    sys.exit(f"{path}: {message}")


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(path, f"cannot read: {e}")
    except json.JSONDecodeError as e:
        fail(path, f"not valid JSON: {e}")


def require_keys(path, obj, keys, context):
    for key in keys:
        if key not in obj:
            fail(path, f"{context} is missing key {key!r}")


def check_trace(path, allow_empty):
    trace = load_json(path)
    if not isinstance(trace, dict):
        fail(path, "trace root must be a JSON object")
    if "traceEvents" not in trace:
        fail(path, "missing 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail(path, "'traceEvents' must be a list")
    if not events and not allow_empty:
        fail(path, "trace recorded zero events (tracing not enabled, or "
                   "instrumentation compiled out?)")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(path, f"traceEvents[{i}] is not an object")
        require_keys(path, event, TRACE_EVENT_KEYS, f"traceEvents[{i}]")
        if event["ph"] != "X":
            fail(path, f"traceEvents[{i}]: expected complete events "
                       f"(ph='X'), got ph={event['ph']!r}")
        for key in ("ts", "dur"):
            if not isinstance(event[key], (int, float)):
                fail(path, f"traceEvents[{i}].{key} is not a number")
        if event["dur"] < 0:
            fail(path, f"traceEvents[{i}] has negative duration")
    print(f"{path}: ok ({len(events)} trace events)")


def check_report_object(path, report, context="report"):
    if not isinstance(report, dict):
        fail(path, f"{context} must be a JSON object")
    if report.get("schema") != SCHEMA:
        fail(path, f"{context}: schema is {report.get('schema')!r}, "
                   f"expected {SCHEMA!r}")
    require_keys(path, report, ("run", "flow", "train", "replicas",
                                "split_cache", "durability", "kernels",
                                "metrics"), context)
    require_keys(path, report["run"], RUN_KEYS, f"{context}.run")
    if not isinstance(report["flow"], list):
        fail(path, f"{context}.flow must be a list")
    for i, row in enumerate(report["flow"]):
        require_keys(path, row, FLOW_ROW_KEYS, f"{context}.flow[{i}]")
    if report["train"] is not None:
        require_keys(path, report["train"], TRAIN_KEYS, f"{context}.train")
    if report["replicas"] is not None:
        require_keys(path, report["replicas"], REPLICA_KEYS,
                     f"{context}.replicas")
    if report.get("serve") is not None:
        require_keys(path, report["serve"], SERVE_KEYS, f"{context}.serve")
    require_keys(path, report["split_cache"], SPLIT_CACHE_KEYS,
                 f"{context}.split_cache")
    require_keys(path, report["durability"], DURABILITY_KEYS,
                 f"{context}.durability")
    if not isinstance(report["durability"]["fault_compiled"], bool):
        fail(path, f"{context}.durability.fault_compiled must be a boolean")
    require_keys(path, report["kernels"], KERNEL_KEYS, f"{context}.kernels")
    require_keys(path, report["metrics"], METRICS_KEYS, f"{context}.metrics")
    for name, hist in report["metrics"]["histograms"].items():
        require_keys(path, hist, HISTOGRAM_KEYS,
                     f"{context}.metrics.histograms[{name!r}]")
        if not isinstance(hist["buckets"], list):
            fail(path, f"{context}.metrics.histograms[{name!r}].buckets "
                       "must be a list")


def check_report(path):
    check_report_object(path, load_json(path))
    print(f"{path}: ok ({SCHEMA})")


def check_bench(path):
    bench = load_json(path)
    if not isinstance(bench, dict):
        fail(path, "bench artifact root must be a JSON object")
    if "report" not in bench:
        fail(path, "bench artifact has no embedded 'report' — report-schema "
                   "drift (benches must attach an sma run report)")
    check_report_object(path, bench["report"], context="report")
    print(f"{path}: ok (embedded {SCHEMA})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace-event JSON to validate")
    parser.add_argument("--report", help="run-report JSON to validate")
    parser.add_argument("--bench", nargs="*", default=[],
                        help="BENCH_*.json artifacts whose embedded report "
                             "must validate")
    parser.add_argument("--allow-empty", action="store_true",
                        help="accept a trace with zero events")
    args = parser.parse_args()
    if not args.trace and not args.report and not args.bench:
        parser.error("nothing to check: pass --trace, --report or --bench")
    if args.trace:
        check_trace(args.trace, args.allow_empty)
    if args.report:
        check_report(args.report)
    for path in args.bench:
        check_bench(path)


if __name__ == "__main__":
    main()
