#include "netlist/simulate.hpp"

#include <gtest/gtest.h>

#include "layout/def_io.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "test_support.hpp"

namespace sma::netlist {
namespace {

TEST(Simulator, C17TruthSamples) {
  Netlist nl = parse_bench_string(test::kC17Bench, "c17", &test::library());
  Simulator sim(&nl);
  ASSERT_EQ(sim.num_inputs(), 5);
  ASSERT_EQ(sim.num_outputs(), 2);
  // c17: out22 = NAND(G10, G16), out23 = NAND(G16, G19) with
  // G10=NAND(1,3), G11=NAND(3,6), G16=NAND(2,G11), G19=NAND(G11,7).
  // All-zero inputs: G10=1, G11=1, G16=1, G19=1 -> 22=0, 23=0.
  std::vector<bool> out = sim.evaluate({false, false, false, false, false});
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
  // inputs 1=1, 3=1 -> G10=0 -> 22=1 regardless of G16.
  out = sim.evaluate({true, false, true, false, false});
  EXPECT_TRUE(out[0]);
}

TEST(Simulator, GateFunctions) {
  // One gate of each function, checked against its Boolean definition.
  struct Case {
    const char* text;
    std::vector<bool> in;
    bool expected;
  };
  const Case cases[] = {
      {"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n", {true}, false},
      {"INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n", {true, true}, true},
      {"INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n", {true, true}, false},
      {"INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = OR(a, b)\n", {false, false}, false},
      {"INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NOR(a, b)\n", {false, false}, true},
      {"INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = XOR(a, b)\n", {true, false}, true},
      {"INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = XNOR(a, b)\n", {true, false}, false},
  };
  for (const Case& c : cases) {
    Netlist nl = parse_bench_string(c.text, "g", &test::library());
    Simulator sim(&nl);
    EXPECT_EQ(sim.evaluate(c.in)[0], c.expected) << c.text;
  }
}

TEST(Simulator, DffDelaysByOneCycle) {
  std::string text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
  Netlist nl = parse_bench_string(text, "dff", &test::library());
  Simulator sim(&nl);
  EXPECT_FALSE(sim.step({true})[0]);   // state was 0
  EXPECT_TRUE(sim.step({false})[0]);   // captured the 1
  EXPECT_FALSE(sim.step({false})[0]);
  sim.reset();
  EXPECT_FALSE(sim.step({true})[0]);
}

TEST(Simulator, WideGateDecompositionPreservesFunction) {
  // 9-input NAND decomposed into a tree must still be a 9-input NAND.
  std::string wide;
  std::string args;
  for (int i = 0; i < 9; ++i) {
    wide += "INPUT(i" + std::to_string(i) + ")\n";
    args += (i ? ", i" : "i") + std::to_string(i);
  }
  wide += "OUTPUT(z)\nz = NAND(" + args + ")\n";
  Netlist nl = parse_bench_string(wide, "wide", &test::library());
  Simulator sim(&nl);
  std::vector<bool> all_ones(9, true);
  EXPECT_FALSE(sim.evaluate(all_ones)[0]);
  for (int i = 0; i < 9; ++i) {
    std::vector<bool> in(9, true);
    in[i] = false;
    EXPECT_TRUE(sim.evaluate(in)[0]) << "bit " << i;
  }
}

TEST(Simulator, BenchRoundTripEquivalence) {
  Netlist nl = parse_bench_string(test::kC17Bench, "c17", &test::library());
  Netlist rt =
      parse_bench_string(to_bench(nl), "c17rt", &test::library());
  util::Pcg32 rng(3);
  EXPECT_TRUE(random_equivalence(nl, rt, 64, rng));
}

TEST(Simulator, GeneratedNetlistsAreSimulatable) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    GeneratorConfig config;
    config.num_gates = 300;
    config.seq_fraction = 0.1;
    config.seed = seed;
    Netlist nl = generate_netlist(config, "sim", &test::library());
    Simulator sim(&nl);
    util::Pcg32 rng(seed);
    for (int t = 0; t < 8; ++t) {
      std::vector<bool> in(sim.num_inputs());
      for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool(0.5);
      EXPECT_EQ(sim.step(in).size(),
                static_cast<std::size_t>(sim.num_outputs()));
    }
  }
}

TEST(Simulator, DefRoundTripPreservesFunction) {
  layout::Design design = test::small_routed_design(120, 4);
  layout::Design imported =
      layout::read_def_string(layout::to_def_string(design),
                              &test::library());
  util::Pcg32 rng(9);
  EXPECT_TRUE(
      random_equivalence(*design.netlist, *imported.netlist, 32, rng));
}

TEST(Simulator, InputWidthChecked) {
  Netlist nl = parse_bench_string(test::kC17Bench, "c17", &test::library());
  Simulator sim(&nl);
  EXPECT_THROW(sim.evaluate({true}), std::invalid_argument);
}

TEST(RandomEquivalence, DetectsDifferentCircuits) {
  std::string a = "INPUT(x)\nINPUT(y)\nOUTPUT(z)\nz = AND(x, y)\n";
  std::string b = "INPUT(x)\nINPUT(y)\nOUTPUT(z)\nz = OR(x, y)\n";
  Netlist na = parse_bench_string(a, "a", &test::library());
  Netlist nb = parse_bench_string(b, "b", &test::library());
  util::Pcg32 rng(5);
  EXPECT_FALSE(random_equivalence(na, nb, 64, rng));
}

}  // namespace
}  // namespace sma::netlist
