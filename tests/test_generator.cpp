#include "netlist/generator.hpp"

#include <gtest/gtest.h>

#include "netlist/profiles.hpp"
#include "netlist/stats.hpp"
#include "test_support.hpp"

namespace sma::netlist {
namespace {

TEST(Generator, ProducesRequestedShape) {
  GeneratorConfig config;
  config.num_inputs = 12;
  config.num_outputs = 6;
  config.num_gates = 200;
  config.seed = 42;
  Netlist nl = generate_netlist(config, "g", &test::library());
  EXPECT_EQ(nl.num_cells(), 200);
  EXPECT_TRUE(nl.validate().empty());
  int inputs = 0;
  int outputs = 0;
  for (PortId p = 0; p < nl.num_ports(); ++p) {
    if (nl.port(p).direction == PortDirection::kInput) {
      ++inputs;
    } else {
      ++outputs;
    }
  }
  EXPECT_EQ(inputs, 12);
  EXPECT_GE(outputs, 6);
}

TEST(Generator, DeterministicInSeed) {
  GeneratorConfig config;
  config.num_gates = 120;
  config.seed = 7;
  Netlist a = generate_netlist(config, "a", &test::library());
  Netlist b = generate_netlist(config, "b", &test::library());
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (CellId c = 0; c < a.num_cells(); ++c) {
    EXPECT_EQ(a.cell(c).lib_cell, b.cell(c).lib_cell);
    EXPECT_EQ(a.cell(c).pin_nets, b.cell(c).pin_nets);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.num_gates = 120;
  config.seed = 7;
  Netlist a = generate_netlist(config, "a", &test::library());
  config.seed = 8;
  Netlist b = generate_netlist(config, "b", &test::library());
  bool any_difference = a.num_nets() != b.num_nets();
  for (CellId c = 0; !any_difference && c < a.num_cells(); ++c) {
    any_difference = a.cell(c).lib_cell != b.cell(c).lib_cell;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, SequentialFractionRespected) {
  GeneratorConfig config;
  config.num_gates = 600;
  config.seq_fraction = 0.15;
  config.seed = 11;
  Netlist nl = generate_netlist(config, "seq", &test::library());
  NetlistStats stats = compute_stats(nl);
  EXPECT_NEAR(stats.num_sequential / 600.0, 0.15, 0.05);
}

TEST(Generator, RealisticShape) {
  GeneratorConfig config;
  config.num_gates = 500;
  config.seed = 13;
  Netlist nl = generate_netlist(config, "shape", &test::library());
  NetlistStats stats = compute_stats(nl);
  // Technology-mapped netlists: average fanin ~2, some logic depth,
  // a modest fanout tail.
  EXPECT_GT(stats.avg_fanin, 1.4);
  EXPECT_LT(stats.avg_fanin, 3.0);
  EXPECT_GT(stats.logic_depth, 4);
  EXPECT_GT(stats.max_fanout, 2);
  EXPECT_GE(stats.avg_fanout, 1.0);
}

TEST(Generator, RejectsDegenerateConfig) {
  GeneratorConfig config;
  config.num_inputs = 0;
  EXPECT_THROW(generate_netlist(config, "x", &test::library()),
               std::invalid_argument);
}

TEST(Profiles, AllProfilesBuildValidNetlists) {
  // Only the small profiles here; the big ones are exercised by benches.
  for (const DesignProfile& p : validation_profiles()) {
    Netlist nl = build_profile(p, &test::library(), 5);
    EXPECT_EQ(nl.num_cells(), p.num_gates) << p.name;
    EXPECT_TRUE(nl.validate().empty()) << p.name;
  }
}

TEST(Profiles, SuitesAreDisjointAndComplete) {
  EXPECT_EQ(attack_profiles().size(), 16u);     // Table 3 designs
  EXPECT_EQ(training_profiles().size(), 9u);    // paper: 9 training
  EXPECT_EQ(validation_profiles().size(), 5u);  // paper: 5 validation
  for (const DesignProfile& a : attack_profiles()) {
    for (const DesignProfile& t : training_profiles()) {
      EXPECT_NE(a.name, t.name);
    }
  }
}

TEST(Profiles, FindProfileWorksAcrossSuites) {
  EXPECT_EQ(find_profile("c432").num_gates, 160);
  EXPECT_EQ(find_profile("t_alu2").num_gates, 420);
  EXPECT_THROW(find_profile("unknown"), std::invalid_argument);
}

TEST(Profiles, ScaledDesignsAreFlagged) {
  const DesignProfile& b18 = find_profile("b18");
  EXPECT_TRUE(b18.scaled_down);
  EXPECT_GT(b18.paper_gates, b18.num_gates);
  const DesignProfile& c432 = find_profile("c432");
  EXPECT_FALSE(c432.scaled_down);
  EXPECT_EQ(c432.paper_gates, c432.num_gates);
}

}  // namespace
}  // namespace sma::netlist
