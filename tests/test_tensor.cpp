#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace sma::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
  EXPECT_FALSE(t.empty());
  Tensor empty;
  EXPECT_TRUE(empty.empty());
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({5, 5});
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, FillAndIndex) {
  Tensor t({3});
  t.fill(2.5f);
  EXPECT_EQ(t[0], 2.5f);
  t[1] = -1.0f;
  EXPECT_EQ(t[1], -1.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 9.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t[7], 9.0f);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, RandnStatistics) {
  util::Pcg32 rng(3);
  Tensor t = Tensor::randn({10000}, rng, 0.5);
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.03);
  EXPECT_NEAR(sq / t.size(), 0.25, 0.03);
}

TEST(Tensor, NegativeDimensionRejected) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(Tensor, ShapeSizeOverflowRejected) {
  // 3 x INT_MAX dimensions multiply to ~2^93, past any std::size_t. A
  // silent wrap would under-allocate data_ and turn indexing into OOB
  // writes; shape_size must throw instead, naming the offending shape.
  const int big = std::numeric_limits<int>::max();
  const std::vector<int> shape = {big, big, big};
  try {
    shape_size(shape);
    FAIL() << "shape_size accepted an overflowing shape";
  } catch (const std::overflow_error& e) {
    EXPECT_NE(std::string(e.what()).find("2147483647"), std::string::npos)
        << "error should name the offending shape: " << e.what();
  }
  EXPECT_THROW(Tensor({big, big, big}), std::overflow_error);
  EXPECT_THROW(shape_size({big, big, big, big}), std::overflow_error);
}

TEST(Tensor, ZeroDimensionNeverOverflows) {
  // A zero dimension makes the product 0 no matter how large the rest
  // are — must not trip the overflow guard (or divide by zero).
  const int big = std::numeric_limits<int>::max();
  EXPECT_EQ(shape_size({big, 0, big, big}), 0u);
  Tensor t({0, big});
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ResizeReuseGrowOnlyNoClear) {
  Tensor t;
  EXPECT_TRUE(t.resize_reuse({2, 3}));  // first growth allocates
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i + 1);
  const std::size_t cap = t.capacity_bytes();

  // Shrink: logical extent drops, storage (and contents) retained.
  EXPECT_FALSE(t.resize_reuse({2}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.capacity_bytes(), cap);

  // Regrow within the high-water mark: no allocation, stale contents
  // still visible — the explicit no-stale-read contract.
  EXPECT_FALSE(t.resize_reuse({3, 2}));
  EXPECT_EQ(t.shape(), (std::vector<int>{3, 2}));
  EXPECT_FLOAT_EQ(t[5], 6.0f);

  // fill() touches only the logical extent.
  t.resize_reuse({2});
  t.fill(-1.0f);
  t.resize_reuse({6});
  EXPECT_FLOAT_EQ(t[0], -1.0f);
  EXPECT_FLOAT_EQ(t[1], -1.0f);
  EXPECT_FLOAT_EQ(t[2], 3.0f);  // beyond the fill: stale, untouched

  // Growing past the high-water mark allocates.
  EXPECT_TRUE(t.resize_reuse({100}));
  EXPECT_GE(t.capacity_bytes(), 100 * sizeof(float));
}

TEST(Tensor, ReshapeInitializerList) {
  Tensor t({2, 6});
  t[7] = 9.0f;
  t.reshape({4, 3});
  EXPECT_EQ(t.dim(0), 4);
  EXPECT_FLOAT_EQ(t[7], 9.0f);
  EXPECT_THROW(t.reshape({7}), std::invalid_argument);
}

}  // namespace
}  // namespace sma::nn
