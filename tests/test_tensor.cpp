#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace sma::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
  EXPECT_FALSE(t.empty());
  Tensor empty;
  EXPECT_TRUE(empty.empty());
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({5, 5});
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, FillAndIndex) {
  Tensor t({3});
  t.fill(2.5f);
  EXPECT_EQ(t[0], 2.5f);
  t[1] = -1.0f;
  EXPECT_EQ(t[1], -1.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 9.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t[7], 9.0f);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, RandnStatistics) {
  util::Pcg32 rng(3);
  Tensor t = Tensor::randn({10000}, rng, 0.5);
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.03);
  EXPECT_NEAR(sq / t.size(), 0.25, 0.03);
}

TEST(Tensor, NegativeDimensionRejected) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

}  // namespace
}  // namespace sma::nn
