#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace sma::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
  EXPECT_FALSE(t.empty());
  Tensor empty;
  EXPECT_TRUE(empty.empty());
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({5, 5});
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, FillAndIndex) {
  Tensor t({3});
  t.fill(2.5f);
  EXPECT_EQ(t[0], 2.5f);
  t[1] = -1.0f;
  EXPECT_EQ(t[1], -1.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 9.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t[7], 9.0f);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, RandnStatistics) {
  util::Pcg32 rng(3);
  Tensor t = Tensor::randn({10000}, rng, 0.5);
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.03);
  EXPECT_NEAR(sq / t.size(), 0.25, 0.03);
}

TEST(Tensor, NegativeDimensionRejected) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(Tensor, ShapeSizeOverflowRejected) {
  // 3 x INT_MAX dimensions multiply to ~2^93, past any std::size_t. A
  // silent wrap would under-allocate data_ and turn indexing into OOB
  // writes; shape_size must throw instead, naming the offending shape.
  const int big = std::numeric_limits<int>::max();
  const std::vector<int> shape = {big, big, big};
  try {
    shape_size(shape);
    FAIL() << "shape_size accepted an overflowing shape";
  } catch (const std::overflow_error& e) {
    EXPECT_NE(std::string(e.what()).find("2147483647"), std::string::npos)
        << "error should name the offending shape: " << e.what();
  }
  EXPECT_THROW(Tensor({big, big, big}), std::overflow_error);
  EXPECT_THROW(shape_size({big, big, big, big}), std::overflow_error);
}

TEST(Tensor, ZeroDimensionNeverOverflows) {
  // A zero dimension makes the product 0 no matter how large the rest
  // are — must not trip the overflow guard (or divide by zero).
  const int big = std::numeric_limits<int>::max();
  EXPECT_EQ(shape_size({big, 0, big, big}), 0u);
  Tensor t({0, big});
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ResizeReuseGrowOnlyNoClear) {
  Tensor t;
  EXPECT_TRUE(t.resize_reuse({2, 3}));  // first growth allocates
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i + 1);
  const std::size_t cap = t.capacity_bytes();

  // Shrink: logical extent drops, storage (and contents) retained.
  EXPECT_FALSE(t.resize_reuse({2}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.capacity_bytes(), cap);

  // Regrow within the high-water mark: no allocation, stale contents
  // still visible — the explicit no-stale-read contract.
  EXPECT_FALSE(t.resize_reuse({3, 2}));
  EXPECT_EQ(t.shape(), (std::vector<int>{3, 2}));
  EXPECT_FLOAT_EQ(t[5], 6.0f);

  // fill() touches only the logical extent.
  t.resize_reuse({2});
  t.fill(-1.0f);
  t.resize_reuse({6});
  EXPECT_FLOAT_EQ(t[0], -1.0f);
  EXPECT_FLOAT_EQ(t[1], -1.0f);
  EXPECT_FLOAT_EQ(t[2], 3.0f);  // beyond the fill: stale, untouched

  // Growing past the high-water mark allocates.
  EXPECT_TRUE(t.resize_reuse({100}));
  EXPECT_GE(t.capacity_bytes(), 100 * sizeof(float));
}

TEST(TensorLayout, DefaultsToRowMajorAndTagSurvivesCopies) {
  Tensor t({2, 3, 4, 4});
  EXPECT_EQ(t.layout(), Layout::kRowMajor);
  t.set_layout(Layout::kChannelMajor);
  EXPECT_EQ(t.layout(), Layout::kChannelMajor);
  Tensor copy = t;  // the tag is part of the value
  EXPECT_EQ(copy.layout(), Layout::kChannelMajor);
  Tensor assigned;
  assigned = t;
  EXPECT_EQ(assigned.layout(), Layout::kChannelMajor);
}

TEST(TensorLayout, ResizeReuseTagsAndRetags) {
  Tensor t;
  t.resize_reuse({2, 3, 4, 4}, Layout::kChannelMajor);
  EXPECT_EQ(t.layout(), Layout::kChannelMajor);
  // The defaulted parameter means untouched call sites reset to
  // row-major — a slot reused across layouts never keeps a stale tag.
  t.resize_reuse({2, 48});
  EXPECT_EQ(t.layout(), Layout::kRowMajor);
  t.resize_reuse(std::vector<int>{1, 2, 4, 4}, Layout::kChannelMajor);
  EXPECT_EQ(t.layout(), Layout::kChannelMajor);
}

TEST(TensorLayout, ConversionRoundTripsAndPermutesPlanes) {
  // [n=2, c=3] of 2x2 planes, values = row-major linear index.
  Tensor rm({2, 3, 2, 2});
  for (std::size_t i = 0; i < rm.size(); ++i) rm[i] = static_cast<float>(i);

  Tensor cm = to_layout(rm, Layout::kChannelMajor);
  EXPECT_EQ(cm.layout(), Layout::kChannelMajor);
  EXPECT_EQ(cm.shape(), rm.shape());
  // Channel-major plane (ch, img) sits at (ch*n + img)*plane; its bytes
  // are row-major plane (img, ch) at (img*c + ch)*plane.
  const int n = 2, c = 3, plane = 4;
  for (int ch = 0; ch < c; ++ch) {
    for (int img = 0; img < n; ++img) {
      for (int k = 0; k < plane; ++k) {
        EXPECT_FLOAT_EQ(cm[(ch * n + img) * plane + k],
                        rm[(img * c + ch) * plane + k]);
      }
    }
  }

  Tensor back = to_row_major(cm);
  EXPECT_EQ(back.layout(), Layout::kRowMajor);
  for (std::size_t i = 0; i < rm.size(); ++i) {
    EXPECT_FLOAT_EQ(back[i], rm[i]);
  }

  // Same-layout conversion is a plain copy, and empty tensors are fine.
  Tensor same = to_layout(rm, Layout::kRowMajor);
  for (std::size_t i = 0; i < rm.size(); ++i) EXPECT_FLOAT_EQ(same[i], rm[i]);
  Tensor empty({0, 3, 2, 2});
  EXPECT_EQ(to_layout(empty, Layout::kChannelMajor).size(), 0u);
}

TEST(TensorLayout, DebugContractViolationsThrow) {
  // The layout contract is enforced only in Debug builds; in Release the
  // tag is free and these calls are no-ops / allowed.
  if (!layout_checks_enabled()) GTEST_SKIP() << "Release build";
  // Channel-major is defined only for rank-4 [n,C,H,W] shapes.
  Tensor t({2, 3});
  EXPECT_THROW(t.set_layout(Layout::kChannelMajor), std::logic_error);
  Tensor u;
  EXPECT_THROW(u.resize_reuse({2, 6}, Layout::kChannelMajor),
               std::logic_error);
  EXPECT_THROW(u.resize_reuse(std::vector<int>{2, 3, 4},
                              Layout::kChannelMajor),
               std::logic_error);
  // Reshape would reinterpret plane-swapped bytes under the new shape.
  Tensor v({1, 2, 2, 2});
  v.set_layout(Layout::kChannelMajor);
  EXPECT_THROW(v.reshape({8}), std::logic_error);
  EXPECT_THROW(v.reshape(std::vector<int>{2, 4}), std::logic_error);
}

TEST(Tensor, ReshapeInitializerList) {
  Tensor t({2, 6});
  t[7] = 9.0f;
  t.reshape({4, 3});
  EXPECT_EQ(t.dim(0), 4);
  EXPECT_FLOAT_EQ(t[7], 9.0f);
  EXPECT_THROW(t.reshape({7}), std::invalid_argument);
}

}  // namespace
}  // namespace sma::nn
