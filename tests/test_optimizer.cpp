#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sma::nn {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // Minimize f(x) = (x - 3)^2 elementwise.
  Tensor x({4});
  Tensor g({4});
  x.fill(0.0f);
  AdamConfig config;
  config.lr = 0.1;
  Adam adam({{"x", &x, &g}}, config);
  for (int step = 0; step < 400; ++step) {
    for (int i = 0; i < 4; ++i) {
      g[i] = 2.0f * (x[i] - 3.0f);
    }
    adam.step();
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(x[i], 3.0f, 0.05f);
  }
}

TEST(Adam, StepZerosGradients) {
  Tensor x({2});
  Tensor g({2});
  g.fill(1.0f);
  Adam adam({{"x", &x, &g}});
  adam.step();
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 0.0f);
}

TEST(Adam, ZeroGradWithoutUpdate) {
  Tensor x({2});
  x.fill(5.0f);
  Tensor g({2});
  g.fill(1.0f);
  Adam adam({{"x", &x, &g}});
  adam.zero_grad();
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(x[0], 5.0f);  // no parameter change
}

TEST(Adam, LrDecaySchedule) {
  Tensor x({1});
  Tensor g({1});
  AdamConfig config;
  config.lr = 0.001;
  config.decay = 0.6;
  Adam adam({{"x", &x, &g}}, config);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.001);
  adam.decay_lr();
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.0006);
  adam.decay_lr();
  EXPECT_NEAR(adam.learning_rate(), 0.00036, 1e-9);
}

TEST(Adam, FirstStepSizeIsLr) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Tensor x({1});
  Tensor g({1});
  g[0] = 0.5f;
  AdamConfig config;
  config.lr = 0.01;
  Adam adam({{"x", &x, &g}}, config);
  adam.step();
  EXPECT_NEAR(x[0], -0.01f, 1e-4);
}

TEST(Adam, CountsParameters) {
  Tensor a({3, 4});
  Tensor ga({3, 4});
  Tensor b({5});
  Tensor gb({5});
  Adam adam({{"a", &a, &ga}, {"b", &b, &gb}});
  EXPECT_EQ(adam.num_parameters(), 17u);
}

}  // namespace
}  // namespace sma::nn
