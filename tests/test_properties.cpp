// Property-style parameterized sweeps over pipeline invariants: seeds,
// design sizes and split layers vary; the invariants must hold everywhere.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "attack/dataset.hpp"
#include "netlist/generator.hpp"
#include "split/candidates.hpp"
#include "test_support.hpp"

namespace sma {
namespace {

struct PipelineParam {
  int gates;
  std::uint64_t seed;
  int split_layer;
};

void PrintTo(const PipelineParam& p, std::ostream* os) {
  *os << "gates=" << p.gates << " seed=" << p.seed << " M" << p.split_layer;
}

class PipelineProperty : public ::testing::TestWithParam<PipelineParam> {
 protected:
  void SetUp() override {
    const PipelineParam& p = GetParam();
    s_ = test::small_split(p.split_layer, p.gates, p.seed);
  }
  test::SmallSplit s_;
};

TEST_P(PipelineProperty, NetlistAndPlacementInvariants) {
  EXPECT_TRUE(s_.design->netlist->validate().empty());
  EXPECT_TRUE(s_.design->placement->is_legal());
}

TEST_P(PipelineProperty, RoutesCoverEveryNet) {
  const netlist::Netlist& nl = *s_.design->netlist;
  ASSERT_EQ(static_cast<int>(s_.design->routing.routes.size()),
            nl.num_nets());
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const route::NetRoute& route = s_.design->route_of(n);
    EXPECT_EQ(route.net, n);
    // Multi-gcell nets must have geometry.
    if (route.pin_nodes.size() >= 2) {
      EXPECT_FALSE(route.grid_edges.empty())
          << "net " << nl.net(n).name << " spans gcells but has no route";
    }
  }
}

TEST_P(PipelineProperty, FragmentInvariants) {
  for (const split::Fragment& f : s_.split->fragments()) {
    // Every fragment belongs to a net and owns >= 1 virtual pin.
    EXPECT_GE(f.net, 0);
    EXPECT_FALSE(f.virtual_pins.empty());
    // FEOL-only geometry.
    for (const route::RouteSegment& seg : f.segments) {
      EXPECT_LE(seg.layer, s_.split->split_layer());
    }
    // Sink/source classification is exclusive.
    EXPECT_FALSE(f.is_sink() && f.is_source());
  }
}

TEST_P(PipelineProperty, GroundTruthAlwaysSameNet) {
  for (int sink : s_.split->sink_fragments()) {
    int source = s_.split->positive_source_of(sink);
    if (source < 0) continue;
    EXPECT_EQ(s_.split->fragment(sink).net, s_.split->fragment(source).net);
  }
}

TEST_P(PipelineProperty, CandidateListsSortedAndUnique) {
  split::CandidateConfig config;
  config.max_candidates = 10;
  for (const split::SinkQuery& q : split::build_queries(*s_.split, config)) {
    EXPECT_LE(q.candidates.size(), 10u);
    std::set<int> sources;
    for (const split::Vpp& vpp : q.candidates) {
      EXPECT_TRUE(sources.insert(vpp.source_fragment).second);
      EXPECT_EQ(vpp.sink_fragment, q.sink_fragment);
    }
  }
}

TEST_P(PipelineProperty, VectorFeaturesFiniteEverywhere) {
  split::CandidateConfig config;
  config.max_candidates = 6;
  for (const split::SinkQuery& q : split::build_queries(*s_.split, config)) {
    for (const split::Vpp& vpp : q.candidates) {
      features::VectorFeatures f =
          features::compute_vector_features(*s_.split, vpp);
      for (float v : f) {
        ASSERT_TRUE(std::isfinite(v));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Values(PipelineParam{40, 1, 1}, PipelineParam{40, 1, 3},
                      PipelineParam{80, 2, 1}, PipelineParam{80, 2, 3},
                      PipelineParam{120, 3, 2}, PipelineParam{80, 4, 4},
                      PipelineParam{60, 5, 3}, PipelineParam{100, 6, 1}));

/// Generator sweep: structural sanity across sizes and seeds.
class GeneratorProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(GeneratorProperty, AlwaysValidAndSized) {
  auto [gates, seed] = GetParam();
  netlist::GeneratorConfig config;
  config.num_gates = gates;
  config.num_inputs = std::max(4, gates / 10);
  config.num_outputs = std::max(2, gates / 20);
  config.seed = seed;
  netlist::Netlist nl =
      netlist::generate_netlist(config, "sweep", &test::library());
  EXPECT_EQ(nl.num_cells(), gates);
  EXPECT_TRUE(nl.validate().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorProperty,
    ::testing::Combine(::testing::Values(20, 100, 400),
                       ::testing::Values(1ull, 99ull, 12345ull)));

}  // namespace
}  // namespace sma
