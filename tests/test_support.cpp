#include "test_support.hpp"

#include <map>
#include <tuple>

#include "netlist/generator.hpp"

namespace sma::test {

const tech::CellLibrary& library() {
  static const tech::CellLibrary kLibrary =
      tech::CellLibrary::nangate45_like();
  return kLibrary;
}

const char* kC17Bench = R"(# c17 ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

layout::Design small_routed_design(int gates, std::uint64_t seed) {
  netlist::GeneratorConfig config;
  config.num_inputs = std::max(8, gates / 10);
  config.num_outputs = std::max(4, gates / 20);
  config.num_gates = gates;
  config.seed = seed;
  netlist::Netlist nl =
      netlist::generate_netlist(config, "small", &library());
  layout::FlowConfig flow;
  flow.seed = seed;
  return layout::run_flow(std::move(nl), flow);
}

SmallSplit small_split(int split_layer, int gates, std::uint64_t seed) {
  SmallSplit result;
  result.design =
      std::make_unique<layout::Design>(small_routed_design(gates, seed));
  result.split = std::make_unique<split::SplitDesign>(result.design.get(),
                                                      split_layer);
  return result;
}

const SmallSplit& shared_split(int split_layer, int gates,
                               std::uint64_t seed) {
  static std::map<std::tuple<int, int, std::uint64_t>, SmallSplit> cache;
  auto key = std::make_tuple(split_layer, gates, seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, small_split(split_layer, gates, seed)).first;
  }
  return it->second;
}

}  // namespace sma::test
