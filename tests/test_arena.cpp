// Activation-arena tests: slot reuse semantics (grow-only capacity, no
// clearing, stats), the zero-allocations-per-query steady state of the
// whole network hot path (asserted both through arena stats and through
// a global operator-new counter), and the no-stale-read regression —
// shape-varying query sequences through one reused net / one pinned
// replica must be byte-identical to fresh-net baselines, at thread
// counts {1, 4} and lane counts {1, 8}.
#include "nn/arena.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <vector>

#include "attack/dl_attack.hpp"
#include "eval/experiment.hpp"
#include "nn/attack_net.hpp"
#include "nn/gemm.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------
// Global allocation counter. Overriding operator new binary-wide lets the
// steady-state test assert that a warm net's forward/backward performs
// literally zero heap allocations — stronger than the arena's own stats,
// which only see arena-managed storage.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};

void* counted_alloc_nothrow(std::size_t size) noexcept {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc(std::size_t size) {
  void* p = counted_alloc_nothrow(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

// The nothrow forms must be replaced too: the standard library reaches
// them directly (std::stable_sort's temporary buffer, for one), and under
// ASan a nothrow-new allocation freed by our free()-based operator delete
// is reported as an alloc-dealloc mismatch.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sma::nn {
namespace {

bool same_bytes(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------
// Arena unit tests

TEST(Arena, SlotAddressesAreStable) {
  Arena arena;
  const Arena::Slot a = arena.add_tensor();
  const Arena::Slot b = arena.add_tensor();
  Tensor& ta = arena.tensor(a, {4, 4}, Arena::Fill::kNone);
  // Registering and acquiring other slots never moves an existing one.
  const Arena::Slot c = arena.add_tensor();
  arena.tensor(b, {128, 128}, Arena::Fill::kNone);
  arena.tensor(c, {64}, Arena::Fill::kZero);
  EXPECT_EQ(&ta, &arena.tensor(a, {4, 4}, Arena::Fill::kNone));
}

TEST(Arena, GrowOnlyCapacityAndNoClearing) {
  Arena arena;
  const Arena::Slot s = arena.add_tensor();
  Tensor& t = arena.tensor(s, {4, 4}, Arena::Fill::kNone);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i + 1);
  const long allocs_warm = arena.stats().allocs;
  EXPECT_GE(allocs_warm, 1);

  // Shrink: same storage, logical extent drops, stale contents visible.
  Tensor& t2 = arena.tensor(s, {2, 2}, Arena::Fill::kNone);
  EXPECT_EQ(t2.size(), 4u);
  EXPECT_FLOAT_EQ(t2[0], 1.0f);
  EXPECT_FLOAT_EQ(t2[3], 4.0f);

  // Grow back within the high-water mark: NO allocation, NO zero-fill —
  // the old bytes are still there (the no-stale-read contract is real).
  Tensor& t3 = arena.tensor(s, {4, 4}, Arena::Fill::kNone);
  EXPECT_EQ(arena.stats().allocs, allocs_warm);
  EXPECT_FLOAT_EQ(t3[15], 16.0f);

  // Fill::kZero reproduces a freshly constructed tensor's bytes.
  Tensor& t4 = arena.tensor(s, {4, 4}, Arena::Fill::kZero);
  for (std::size_t i = 0; i < t4.size(); ++i) EXPECT_FLOAT_EQ(t4[i], 0.0f);

  // Growing past the high-water mark allocates (counted).
  arena.tensor(s, {8, 8}, Arena::Fill::kNone);
  EXPECT_GT(arena.stats().allocs, allocs_warm);
}

TEST(Arena, FloatAndByteBuffersReuse) {
  Arena arena;
  const Arena::Slot f = arena.add_floats();
  const Arena::Slot b = arena.add_bytes();
  float* p1 = arena.floats(f, 100, Arena::Fill::kNone);
  for (int i = 0; i < 100; ++i) p1[i] = static_cast<float>(i);
  std::uint8_t* q1 = arena.bytes(b, 64);
  q1[63] = 7;
  const long allocs_warm = arena.stats().allocs;

  // Shrink-then-grow within the high-water mark: same pointers, stale
  // contents, zero allocations.
  EXPECT_EQ(arena.floats(f, 10, Arena::Fill::kNone), p1);
  float* p2 = arena.floats(f, 80, Arena::Fill::kNone);
  EXPECT_EQ(p2, p1);
  EXPECT_FLOAT_EQ(p2[79], 79.0f);
  EXPECT_EQ(arena.bytes(b, 64)[63], 7);
  EXPECT_EQ(arena.stats().allocs, allocs_warm);

  // kZero clears exactly the requested extent.
  float* p3 = arena.floats(f, 50, Arena::Fill::kZero);
  for (int i = 0; i < 50; ++i) EXPECT_FLOAT_EQ(p3[i], 0.0f);
}

TEST(Arena, SharedFloatSlotsKeyedByName) {
  Arena arena;
  const Arena::Slot a = arena.shared_floats("conv.y_rows");
  const Arena::Slot b = arena.shared_floats("conv.y_rows");
  const Arena::Slot c = arena.shared_floats("conv.dcols");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(arena.floats(a, 16, Arena::Fill::kNone),
            arena.floats(b, 16, Arena::Fill::kNone));
}

TEST(Arena, StatsTrackScratchGrowth) {
  Arena arena;
  const long before = arena.stats().allocs;
  GemmScratch& scratch = arena.gemm_scratch();
  scratch.a_panel.resize(4096);  // as the GEMM kernels do internally
  const ArenaStats grown = arena.stats();
  EXPECT_GT(grown.allocs, before);
  EXPECT_GE(grown.bytes_pinned, 4096 * sizeof(float));
  // Stable capacity => no further counted allocations.
  EXPECT_EQ(arena.stats().allocs, grown.allocs);
}

// ---------------------------------------------------------------------
// Network-level steady state

NetConfig tiny_image_config() {
  NetConfig config;
  config.hidden = 16;
  config.vector_res_blocks = 1;
  config.merged_res_blocks = 1;
  config.use_images = true;
  config.image_channels = 1;
  config.conv_channels = {4, 4, 4, 4};
  config.image_fc = 8;
  config.fc6_width = 8;
  return config;
}

/// [n] vec + [n+1] images query, deterministic in (n, salt).
QueryInput make_input(const NetConfig& config, int n, int image_size,
                      std::uint64_t salt) {
  util::Pcg32 rng(salt, 0x1234);
  QueryInput input;
  input.vec = Tensor::randn({n, config.vector_dim}, rng, 1.0);
  if (config.use_images) {
    input.images = Tensor::randn(
        {n + 1, config.image_channels, image_size, image_size}, rng, 1.0);
  }
  return input;
}

TEST(ArenaNet, SteadyStateHasZeroHeapAllocations) {
  const NetConfig config = tiny_image_config();
  const int image_size = 15;  // conv stack: 15 -> 5 -> 2 -> 1
  AttackNet net(config);

  const std::vector<int> ns = {2, 6, 4};
  // Pre-build inputs and per-n score gradients so the counted region
  // contains exactly forward + backward.
  std::vector<QueryInput> inputs;
  std::vector<Tensor> dscores;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    inputs.push_back(make_input(config, ns[i], image_size, 11 + i));
    util::Pcg32 grng(100 + i);
    dscores.push_back(Tensor::randn({ns[i]}, grng, 1.0));
  }

  // Warm-up: one pass over every shape (including the largest).
  for (std::size_t i = 0; i < ns.size(); ++i) {
    net.forward(inputs[i]);
    net.backward(dscores[i]);
  }
  const long arena_allocs_warm = net.arena().stats().allocs;
  EXPECT_GT(arena_allocs_warm, 0);

  // Steady state: two more passes over the same shapes must perform zero
  // heap allocations — none in the arena, none anywhere else.
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < ns.size(); ++i) {
      net.forward(inputs[i]);
      net.backward(dscores[i]);
    }
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0)
      << "warm forward/backward hit the allocator";
  EXPECT_EQ(net.arena().stats().allocs, arena_allocs_warm);
  EXPECT_GT(net.arena().stats().bytes_pinned, 0u);
}

// ---------------------------------------------------------------------
// No-stale-read regressions: shape-varying reuse vs fresh baselines

TEST(ArenaNet, ShapeVaryingForwardMatchesFreshNet) {
  const NetConfig config = tiny_image_config();
  const int image_size = 15;
  AttackNet reused(config);
  // Alternate small/large so every buffer shrinks and regrows.
  const std::vector<int> ns = {6, 2, 5, 1, 4, 6};
  for (std::size_t i = 0; i < ns.size(); ++i) {
    QueryInput input = make_input(config, ns[i], image_size, 40 + i);
    Tensor got = reused.forward(input);
    AttackNet fresh(config);  // same config + seed => identical weights
    Tensor want = fresh.forward(input);
    EXPECT_TRUE(same_bytes(got, want)) << "query " << i << " (n=" << ns[i]
                                       << ") diverged from fresh net";
  }
}

TEST(ArenaNet, StaleWarmupNeverLeaksIntoTraining) {
  // Net B first digests a large garbage query (oversizing every arena
  // buffer and leaving junk in the slack), then both nets train on the
  // same shape-varying sequence. Any stale byte escaping a reused buffer
  // would diverge the models.
  const NetConfig config = tiny_image_config();
  const int image_size = 15;
  AttackNet a(config);
  AttackNet b(config);

  {
    QueryInput junk = make_input(config, 9, image_size, 999);
    b.forward(junk);
    util::Pcg32 grng(77);
    Tensor junk_grad = Tensor::randn({9}, grng, 3.0);
    b.backward(junk_grad);
    // Discard the junk gradients; Adam state does not exist yet.
    for (Param& p : b.params()) p.grad->fill(0.0f);
  }

  Adam adam_a(a.params());
  Adam adam_b(b.params());
  const std::vector<int> ns = {3, 7, 2, 6, 1, 5};
  for (std::size_t i = 0; i < ns.size(); ++i) {
    QueryInput input = make_input(config, ns[i], image_size, 300 + i);
    const int target = static_cast<int>(i) % ns[i];
    LossResult loss_a = softmax_regression_loss(a.forward(input), target);
    a.backward(loss_a.grad);
    adam_a.step(nullptr);
    LossResult loss_b = softmax_regression_loss(b.forward(input), target);
    b.backward(loss_b.grad);
    adam_b.step(nullptr);
    EXPECT_DOUBLE_EQ(loss_a.loss, loss_b.loss) << "query " << i;
  }

  std::stringstream bytes_a;
  std::stringstream bytes_b;
  a.save(bytes_a);
  b.save(bytes_b);
  EXPECT_EQ(bytes_a.str(), bytes_b.str())
      << "stale warm-up contents leaked into the trained model";
}

TEST(ArenaNet, LayoutModesTrainByteIdenticalModels) {
  // PR-7 equivalence gate at the model level: a full image-profile
  // training sequence under kRowMajorCompat (the PR-7 data path: GEMM
  // into staging, permutation copy back to NCHW) and under kChannelMajor
  // (GEMM straight into the channel-major arena slot) must save
  // byte-identical models — the layout refactor moves bytes, never
  // arithmetic or summation order.
  const NetConfig config = tiny_image_config();
  const int image_size = 15;
  const std::vector<int> ns = {3, 7, 2, 6, 1, 5};

  auto train_with_mode = [&](ConvLayoutMode mode) {
    set_conv_layout_mode(mode);
    AttackNet net(config);
    Adam adam(net.params());
    for (std::size_t i = 0; i < ns.size(); ++i) {
      QueryInput input = make_input(config, ns[i], image_size, 500 + i);
      const int target = static_cast<int>(i) % ns[i];
      LossResult loss = softmax_regression_loss(net.forward(input), target);
      net.backward(loss.grad);
      adam.step(nullptr);
    }
    std::stringstream bytes;
    net.save(bytes);
    return bytes.str();
  };

  const std::string compat = train_with_mode(ConvLayoutMode::kRowMajorCompat);
  const std::string cm = train_with_mode(ConvLayoutMode::kChannelMajor);
  set_conv_layout_mode(ConvLayoutMode::kChannelMajor);
  EXPECT_FALSE(compat.empty());
  EXPECT_EQ(compat, cm) << "layout modes trained diverging models";
}

TEST(ArenaNet, PinnedReplicaShapeVaryingMatchesMaster) {
  const NetConfig config = tiny_image_config();
  const int image_size = 15;
  AttackNet master(config);
  AttackNet replica = master.clone_shared();
  const std::vector<int> ns = {5, 2, 7, 2, 5};
  for (std::size_t i = 0; i < ns.size(); ++i) {
    QueryInput input = make_input(config, ns[i], image_size, 70 + i);
    Tensor from_master = master.forward(input);
    Tensor from_replica = replica.forward(input);
    EXPECT_TRUE(same_bytes(from_master, from_replica))
        << "replica diverged at query " << i << " (n=" << ns[i] << ")";
    AttackNet fresh(config);
    Tensor want = fresh.forward(input);
    EXPECT_TRUE(same_bytes(from_master, want))
        << "master diverged from fresh net at query " << i;
  }
}

}  // namespace
}  // namespace sma::nn

// ---------------------------------------------------------------------
// End-to-end: shape-varying corpora through training lanes and pinned
// inference replicas at threads {1, 4} x lanes {1, 8}.

namespace sma::attack {
namespace {

eval::PreparedSplit tiny_prepared() {
  netlist::DesignProfile profile;
  profile.name = "tiny_arena";
  profile.num_inputs = 8;
  profile.num_outputs = 4;
  profile.num_gates = 280;
  return eval::prepare_split(profile, 3, layout::FlowConfig{}, 91);
}

nn::NetConfig tiny_net_config() {
  nn::NetConfig config;
  config.hidden = 16;
  config.vector_res_blocks = 1;
  config.merged_res_blocks = 1;
  config.use_images = false;
  return config;
}

struct TrainOutcome {
  std::string model_bytes;
  TrainStats stats;
};

TrainOutcome train_once(const eval::PreparedSplit& prepared, int lanes,
                        runtime::ThreadPool* pool) {
  DatasetConfig dataset_config;
  dataset_config.candidates.max_candidates = 6;
  dataset_config.build_images = false;

  TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = lanes;
  train_config.max_queries_per_design = 0;  // deterministic epoch set

  std::vector<QueryDataset> training;
  training.emplace_back(prepared.split.get(), dataset_config);
  std::vector<QueryDataset> validation;
  DlAttack dl(tiny_net_config());
  TrainOutcome outcome;
  outcome.stats = dl.train(training, validation, train_config, pool);
  EXPECT_GT(outcome.stats.queries_seen, 0);
  std::stringstream bytes;
  dl.net().save(bytes);
  outcome.model_bytes = bytes.str();
  return outcome;
}

TEST(ArenaTraining, ThreadAndLaneMatrixStaysByteIdentical) {
  eval::PreparedSplit prepared = tiny_prepared();
  for (int lanes : {1, 8}) {
    const TrainOutcome serial = train_once(prepared, lanes, nullptr);
    runtime::ThreadPool pool(4);
    const TrainOutcome pooled = train_once(prepared, lanes, &pool);
    EXPECT_EQ(serial.model_bytes, pooled.model_bytes)
        << "1-thread vs 4-thread model diverged at lanes " << lanes;
    // Every epoch after the first revisits the same query set: the
    // arenas must be fully warm — zero allocations per steady epoch.
    ASSERT_EQ(serial.stats.arena_allocs_per_epoch.size(), 3u);
    EXPECT_GT(serial.stats.arena_allocs_per_epoch[0], 0);
    EXPECT_EQ(serial.stats.arena_allocs_per_epoch[1], 0)
        << "lanes " << lanes << " (serial)";
    EXPECT_EQ(serial.stats.arena_allocs_per_epoch[2], 0);
    EXPECT_EQ(pooled.stats.arena_allocs_per_epoch[1], 0)
        << "lanes " << lanes << " (pooled)";
    EXPECT_EQ(pooled.stats.arena_allocs_per_epoch[2], 0);
    EXPECT_GT(serial.stats.arena_bytes_pinned, 0u);
  }
}

TEST(ArenaServing, PinnedReplicasStayAllocFreeAcrossAttacks) {
  eval::PreparedSplit prepared = tiny_prepared();
  DatasetConfig dataset_config;
  dataset_config.candidates.max_candidates = 6;
  dataset_config.build_images = false;

  TrainConfig train_config;
  train_config.epochs = 2;
  train_config.batch_size = 4;

  std::vector<QueryDataset> training;
  training.emplace_back(prepared.split.get(), dataset_config);
  std::vector<QueryDataset> validation;
  DlAttack dl(tiny_net_config());
  runtime::ThreadPool pool(4);
  dl.train(training, validation, train_config, &pool);

  QueryDataset victim(prepared.split.get(), dataset_config);
  AttackResult first = dl.attack(victim, &pool);
  // Replica arenas warm on the first pass over the victim...
  const nn::ArenaStats warm = dl.inference_arena_stats();
  EXPECT_GT(warm.bytes_pinned, 0u);
  // ...and later passes over already-seen query shapes add nothing.
  for (int round = 0; round < 3; ++round) {
    AttackResult again = dl.attack(victim, &pool);
    EXPECT_EQ(again.ccr, first.ccr);
  }
  const nn::ArenaStats steady = dl.inference_arena_stats();
  EXPECT_EQ(steady.allocs, warm.allocs)
      << "pinned replicas allocated on a repeated attack()";
}

}  // namespace
}  // namespace sma::attack
