// Content-addressed layout cache: a hit must be indistinguishable from a
// fresh flow run (same bytes, same downstream numbers), and the key must
// separate everything that feeds the flow.
#include "eval/split_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "eval/experiment.hpp"
#include "layout/def_io.hpp"
#include "netlist/profiles.hpp"
#include "runtime/thread_pool.hpp"
#include "split/split_design.hpp"

namespace sma::eval {
namespace {

netlist::DesignProfile tiny_profile(const char* name, int gates) {
  netlist::DesignProfile p;
  p.name = name;
  p.num_inputs = 8;
  p.num_outputs = 4;
  p.num_gates = gates;
  return p;
}

/// Each test starts from an empty, enabled global cache and leaves it
/// that way (other test binaries have their own process).
class SplitCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SplitCache::global().clear();
    SplitCache::global().set_enabled(true);
  }
  void TearDown() override {
    SplitCache::global().clear();
    SplitCache::global().set_enabled(true);
  }
};

TEST_F(SplitCacheTest, KeySeparatesFlowInputs) {
  const netlist::DesignProfile a = tiny_profile("tiny_a", 300);
  const netlist::DesignProfile b = tiny_profile("tiny_b", 300);
  layout::FlowConfig flow;

  const std::uint64_t base = design_cache_key(a, flow, 7);
  EXPECT_EQ(base, design_cache_key(a, flow, 7));
  EXPECT_NE(base, design_cache_key(b, flow, 7));
  EXPECT_NE(base, design_cache_key(a, flow, 8));

  layout::FlowConfig other = flow;
  other.utilization = 0.6;
  EXPECT_NE(base, design_cache_key(a, other, 7));
  other = flow;
  other.router.via_cost = 3.0;
  EXPECT_NE(base, design_cache_key(a, other, 7));
  other = flow;
  other.grid.m2_capacity += 1;
  EXPECT_NE(base, design_cache_key(a, other, 7));
  // The wave schedule and the relaxation lane count shape the layout, so
  // they must separate keys...
  other = flow;
  other.router.wave_size = 1;
  EXPECT_NE(base, design_cache_key(a, other, 7));
  other = flow;
  other.router.bulk_negotiation_ripup = true;
  EXPECT_NE(base, design_cache_key(a, other, 7));
  other = flow;
  other.global_placer.relax_lanes = 1;
  EXPECT_NE(base, design_cache_key(a, other, 7));
}

TEST_F(SplitCacheTest, PooledAndSerialFlowsShareOneDigestAndEntry) {
  // ...while the thread count must NOT: pooled and serial flows are
  // bit-identical, share one digest, and therefore one cache entry.
  const netlist::DesignProfile profile = tiny_profile("tiny_a", 280);
  layout::FlowConfig flow;

  PreparedSplit serial = prepare_split(profile, 3, flow, 9);
  const std::string serial_def = layout::to_def_string(*serial.design);

  runtime::ThreadPool pool(3);
  PreparedSplit pooled = prepare_split(profile, 3, flow, 9, &pool);
  // Same digest -> the pooled call hit the serial call's entry.
  EXPECT_EQ(SplitCache::global().stats().misses, 1u);
  EXPECT_EQ(SplitCache::global().stats().hits, 1u);
  EXPECT_EQ(serial.design.get(), pooled.design.get());

  // Cache-cold pooled build: byte-identical layout, equal end-to-end.
  SplitCache::global().clear();
  PreparedSplit cold = prepare_split(profile, 3, flow, 9, &pool);
  EXPECT_NE(serial.design.get(), cold.design.get());
  EXPECT_EQ(serial_def, layout::to_def_string(*cold.design));
  // The split itself (pooled fragment extraction) matches too.
  EXPECT_EQ(serial.split->stats().num_fragments,
            cold.split->stats().num_fragments);
  EXPECT_EQ(serial.split->stats().num_virtual_pins,
            cold.split->stats().num_virtual_pins);
  ASSERT_EQ(serial.split->fragments().size(), cold.split->fragments().size());
  for (std::size_t f = 0; f < serial.split->fragments().size(); ++f) {
    const split::Fragment& a = serial.split->fragment(static_cast<int>(f));
    const split::Fragment& b = cold.split->fragment(static_cast<int>(f));
    ASSERT_EQ(a.net, b.net);
    ASSERT_EQ(a.segments, b.segments);
    ASSERT_EQ(a.vias, b.vias);
    ASSERT_EQ(a.virtual_pins, b.virtual_pins);
    ASSERT_EQ(a.has_driver, b.has_driver);
    ASSERT_EQ(a.num_sink_pins, b.num_sink_pins);
  }
}

TEST_F(SplitCacheTest, HitSharesTheDesignAndCountsStats) {
  const netlist::DesignProfile profile = tiny_profile("tiny_a", 300);
  layout::FlowConfig flow;

  PreparedSplit first = prepare_split(profile, 3, flow, 7);
  const SplitCache::Stats after_first = SplitCache::global().stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.hits, 0u);

  PreparedSplit second = prepare_split(profile, 3, flow, 7);
  const SplitCache::Stats after_second = SplitCache::global().stats();
  EXPECT_EQ(after_second.misses, 1u);
  EXPECT_EQ(after_second.hits, 1u);
  // A hit returns the *same* immutable layout, not a rebuild.
  EXPECT_EQ(first.design.get(), second.design.get());

  // A different split layer re-splits the cached layout — no new flow.
  PreparedSplit other_layer = prepare_split(profile, 1, flow, 7);
  EXPECT_EQ(SplitCache::global().stats().hits, 2u);
  EXPECT_EQ(first.design.get(), other_layer.design.get());
  EXPECT_NE(first.split->stats().num_fragments,
            0);  // both layers produced real splits
}

TEST_F(SplitCacheTest, HitIsByteIdenticalToFreshFlow) {
  const netlist::DesignProfile profile = tiny_profile("tiny_a", 260);
  layout::FlowConfig flow;

  PreparedSplit warm = prepare_split(profile, 3, flow, 11);
  PreparedSplit cached = prepare_split(profile, 3, flow, 11);
  const std::string cached_def = layout::to_def_string(*cached.design);

  SplitCache::global().clear();
  PreparedSplit fresh = prepare_split(profile, 3, flow, 11);
  EXPECT_NE(cached.design.get(), fresh.design.get());
  EXPECT_EQ(cached_def, layout::to_def_string(*fresh.design));
}

TEST_F(SplitCacheTest, DisabledCacheBuildsEveryTime) {
  SplitCache::global().set_enabled(false);
  const netlist::DesignProfile profile = tiny_profile("tiny_a", 260);
  layout::FlowConfig flow;
  PreparedSplit first = prepare_split(profile, 3, flow, 5);
  PreparedSplit second = prepare_split(profile, 3, flow, 5);
  EXPECT_NE(first.design.get(), second.design.get());
  EXPECT_EQ(SplitCache::global().size(), 0u);
  EXPECT_EQ(layout::to_def_string(*first.design),
            layout::to_def_string(*second.design));
}

TEST_F(SplitCacheTest, LruEvictsLeastRecentlyUsed) {
  SplitCache::global().set_capacity(2);
  const netlist::DesignProfile a = tiny_profile("tiny_a", 260);
  const netlist::DesignProfile b = tiny_profile("tiny_b", 280);
  const netlist::DesignProfile c = tiny_profile("tiny_c", 300);
  layout::FlowConfig flow;

  prepare_split(a, 3, flow, 1);
  prepare_split(b, 3, flow, 1);
  prepare_split(a, 3, flow, 1);  // touch a: b is now LRU
  prepare_split(c, 3, flow, 1);  // evicts b
  EXPECT_EQ(SplitCache::global().size(), 2u);

  const SplitCache::Stats before = SplitCache::global().stats();
  prepare_split(a, 3, flow, 1);
  EXPECT_EQ(SplitCache::global().stats().hits, before.hits + 1);
  prepare_split(b, 3, flow, 1);  // miss: was evicted
  EXPECT_EQ(SplitCache::global().stats().misses, before.misses + 1);
  SplitCache::global().set_capacity(32);
}

TEST_F(SplitCacheTest, Table3RowsUnchangedByCache) {
  // The experiment protocol must produce bit-identical rows whether the
  // flow results come from the cache or from fresh runs. Vector-only
  // fast-profile variant keeps the double run test-sized.
  ExperimentProfile profile = ExperimentProfile::fast();
  profile.net.use_images = false;
  profile.net.hidden = 16;
  profile.net.vector_res_blocks = 1;
  profile.net.merged_res_blocks = 1;
  profile.dataset.candidates.max_candidates = 6;
  profile.train.epochs = 1;
  profile.train.max_queries_per_design = 10;
  profile.flow_attack.timeout_seconds = 1e6;
  profile.runtime.threads = 1;

  std::vector<netlist::DesignProfile> designs = {tiny_profile("tiny_a", 300)};
  layout::FlowConfig flow;

  SplitCache::global().set_enabled(false);
  Table3Result uncached = run_table3(3, profile, flow, designs, 2019);

  SplitCache::global().set_enabled(true);
  Table3Result warmup = run_table3(3, profile, flow, designs, 2019);
  const SplitCache::Stats warm_stats = SplitCache::global().stats();
  EXPECT_GT(warm_stats.misses, 0u);

  Table3Result cached = run_table3(3, profile, flow, designs, 2019);
  const SplitCache::Stats hit_stats = SplitCache::global().stats();
  // Second cached run rebuilt nothing: training corpus + victim all hit.
  EXPECT_EQ(hit_stats.misses, warm_stats.misses);
  EXPECT_GE(hit_stats.hits, warm_stats.hits + designs.size());

  ASSERT_EQ(uncached.rows.size(), cached.rows.size());
  for (std::size_t i = 0; i < uncached.rows.size(); ++i) {
    const Table3Row& u = uncached.rows[i];
    const Table3Row& c = cached.rows[i];
    EXPECT_EQ(u.design, c.design);
    EXPECT_EQ(u.num_sink_fragments, c.num_sink_fragments);
    EXPECT_EQ(u.num_source_fragments, c.num_source_fragments);
    EXPECT_EQ(u.dl_ccr, c.dl_ccr);
    EXPECT_EQ(u.flow_ccr, c.flow_ccr);
    EXPECT_EQ(u.hit_rate, c.hit_rate);
    EXPECT_EQ(u.flow_timed_out, c.flow_timed_out);
    // And the warm (first cached) run matches too.
    EXPECT_EQ(u.dl_ccr, warmup.rows[i].dl_ccr);
  }
  EXPECT_EQ(uncached.avg_dl_ccr, cached.avg_dl_ccr);
  EXPECT_EQ(uncached.avg_flow_ccr, cached.avg_flow_ccr);
}

}  // namespace
}  // namespace sma::eval
