#include "tech/layer_stack.hpp"

#include <gtest/gtest.h>

namespace sma::tech {
namespace {

TEST(LayerStack, Nangate45LikeShape) {
  LayerStack stack = LayerStack::nangate45_like();
  EXPECT_EQ(stack.num_layers(), 6);
  EXPECT_EQ(stack.num_cut_layers(), 5);
  EXPECT_EQ(stack.layer(1).name, "M1");
  EXPECT_EQ(stack.layer(6).name, "M6");
}

TEST(LayerStack, AlternatingPreferredDirections) {
  LayerStack stack = LayerStack::nangate45_like();
  for (int m = 1; m < stack.num_layers(); ++m) {
    EXPECT_NE(stack.preferred(m), stack.preferred(m + 1))
        << "layers " << m << " and " << m + 1;
  }
  EXPECT_EQ(stack.preferred(1), util::Axis::kHorizontal);
}

TEST(LayerStack, UniformThinPitch) {
  LayerStack stack = LayerStack::nangate45_like();
  for (int m = 1; m <= stack.num_layers(); ++m) {
    EXPECT_EQ(stack.pitch(m), 140) << "M" << m;
  }
  // Upper metals are thicker: lower resistance per DBU.
  EXPECT_LT(stack.layer(6).res_per_dbu, stack.layer(1).res_per_dbu);
}

TEST(LayerStack, CutNames) {
  LayerStack stack = LayerStack::nangate45_like();
  EXPECT_EQ(stack.cut_name(1), "V12");
  EXPECT_EQ(stack.cut_name(5), "V56");
  EXPECT_THROW(stack.cut_name(0), std::out_of_range);
  EXPECT_THROW(stack.cut_name(6), std::out_of_range);
}

TEST(LayerStack, RejectsTooFewLayers) {
  EXPECT_THROW(
      LayerStack({{"M1", util::Axis::kHorizontal, 140, 0.0002, 0.002}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace sma::tech
