#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include "netlist/stats.hpp"
#include "test_support.hpp"

namespace sma::netlist {
namespace {

TEST(BenchIo, ParsesC17) {
  Netlist nl = parse_bench_string(test::kC17Bench, "c17", &test::library());
  EXPECT_EQ(nl.name(), "c17");
  EXPECT_EQ(nl.num_cells(), 6);  // six NAND2 gates
  EXPECT_EQ(nl.num_ports(), 7);  // 5 inputs + 2 outputs
  EXPECT_TRUE(nl.validate().empty());
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    EXPECT_EQ(nl.lib_cell_of(c).function, tech::Function::kNand);
  }
}

TEST(BenchIo, C17RoundTrip) {
  Netlist nl = parse_bench_string(test::kC17Bench, "c17", &test::library());
  std::string round = to_bench(nl);
  Netlist nl2 = parse_bench_string(round, "c17rt", &test::library());
  EXPECT_EQ(nl2.num_cells(), nl.num_cells());
  EXPECT_EQ(nl2.num_ports(), nl.num_ports());
  EXPECT_EQ(nl2.num_nets(), nl.num_nets());
  EXPECT_TRUE(nl2.validate().empty());
}

TEST(BenchIo, DecomposesWideGates) {
  const char* text = R"(
INPUT(a) INPUT(b)
)";
  (void)text;
  std::string wide = "INPUT(i0)\n";
  std::string args = "i0";
  for (int i = 1; i < 9; ++i) {
    wide += "INPUT(i" + std::to_string(i) + ")\n";
    args += ", i" + std::to_string(i);
  }
  wide += "OUTPUT(z)\n";
  wide += "z = NAND(" + args + ")\n";
  Netlist nl = parse_bench_string(wide, "wide", &test::library());
  EXPECT_TRUE(nl.validate().empty());
  // 9-input NAND needs at least 3 gates after decomposition.
  EXPECT_GE(nl.num_cells(), 3);
  // The output net must be driven by an inverting gate (NAND).
  NetId z = *nl.find_net("z");
  ASSERT_FALSE(nl.net(z).driver.is_port());
  EXPECT_EQ(nl.lib_cell_of(nl.net(z).driver.id).function,
            tech::Function::kNand);
}

TEST(BenchIo, DecomposesWideXorAsChain) {
  std::string text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\n";
  text += "z = XOR(a, b, c, d)\n";
  Netlist nl = parse_bench_string(text, "xor4", &test::library());
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_EQ(nl.num_cells(), 3);  // xor chain of 3 two-input gates
}

TEST(BenchIo, SingleInputAndBecomesBuffer) {
  std::string text = "INPUT(a)\nOUTPUT(z)\nz = AND(a)\n";
  Netlist nl = parse_bench_string(text, "and1", &test::library());
  ASSERT_EQ(nl.num_cells(), 1);
  EXPECT_EQ(nl.lib_cell_of(0).function, tech::Function::kBuf);
}

TEST(BenchIo, SingleInputNandBecomesInverter) {
  std::string text = "INPUT(a)\nOUTPUT(z)\nz = NAND(a)\n";
  Netlist nl = parse_bench_string(text, "nand1", &test::library());
  ASSERT_EQ(nl.num_cells(), 1);
  EXPECT_EQ(nl.lib_cell_of(0).function, tech::Function::kInv);
}

TEST(BenchIo, ParsesDff) {
  std::string text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
  Netlist nl = parse_bench_string(text, "dff", &test::library());
  ASSERT_EQ(nl.num_cells(), 1);
  EXPECT_EQ(nl.lib_cell_of(0).function, tech::Function::kDff);
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  std::string text =
      "# header\n\nINPUT(a)  # inline comment\nOUTPUT(z)\nz = NOT(a)\n";
  Netlist nl = parse_bench_string(text, "c", &test::library());
  EXPECT_EQ(nl.num_cells(), 1);
}

TEST(BenchIo, ErrorsOnUnknownGate) {
  std::string text = "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n";
  EXPECT_THROW(parse_bench_string(text, "bad", &test::library()),
               std::runtime_error);
}

TEST(BenchIo, ErrorsOnUndefinedOutput) {
  std::string text = "INPUT(a)\nOUTPUT(zz)\nz = NOT(a)\n";
  EXPECT_THROW(parse_bench_string(text, "bad", &test::library()),
               std::runtime_error);
}

TEST(BenchIo, ErrorsOnMalformedLine) {
  EXPECT_THROW(
      parse_bench_string("INPUT a\n", "bad", &test::library()),
      std::runtime_error);
  EXPECT_THROW(
      parse_bench_string("z = NAND(a\n", "bad", &test::library()),
      std::runtime_error);
}

TEST(BenchIo, C17LevelizationDepth) {
  Netlist nl = parse_bench_string(test::kC17Bench, "c17", &test::library());
  Levelization lev = levelize(nl);
  EXPECT_FALSE(lev.has_combinational_loop);
  EXPECT_EQ(lev.max_level, 2);  // c17 is 3 NAND levels deep (0, 1, 2)
}

}  // namespace
}  // namespace sma::netlist
