#include "place/placement.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "test_support.hpp"

namespace sma::place {
namespace {

netlist::Netlist c17() {
  return netlist::parse_bench_string(sma::test::kC17Bench, "c17",
                                     &sma::test::library());
}

TEST(Floorplan, SizedForUtilization) {
  netlist::Netlist nl = c17();
  Floorplan fp = make_floorplan(nl, 0.5);
  EXPECT_GT(fp.num_rows, 0);
  EXPECT_GT(fp.num_sites, 0);
  std::int64_t total_width = 0;
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    total_width += nl.lib_cell_of(c).width;
  }
  std::int64_t capacity =
      static_cast<std::int64_t>(fp.num_rows) * fp.num_sites * fp.site_width;
  EXPECT_GE(capacity, total_width);
  // Roughly square.
  double aspect = static_cast<double>(fp.die.width()) / fp.die.height();
  EXPECT_GT(aspect, 0.4);
  EXPECT_LT(aspect, 2.5);
}

TEST(Floorplan, UtilizationClamped) {
  netlist::Netlist nl = c17();
  EXPECT_NO_THROW(make_floorplan(nl, -1.0));
  EXPECT_NO_THROW(make_floorplan(nl, 2.0));
}

TEST(Placement, PortsOnBoundary) {
  netlist::Netlist nl = c17();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  for (netlist::PortId p = 0; p < nl.num_ports(); ++p) {
    const util::Point& loc = placement.port_location(p);
    bool on_edge = loc.x == fp.die.lo.x || loc.x == fp.die.hi.x ||
                   loc.y == fp.die.lo.y || loc.y == fp.die.hi.y;
    EXPECT_TRUE(on_edge) << nl.port(p).name << " at " << loc.x << ","
                         << loc.y;
  }
}

TEST(Placement, PinLocationAddsLibOffset) {
  netlist::Netlist nl = c17();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  placement.set_cell_origin(0, {1000, 2000});
  const tech::LibCell& lib = nl.lib_cell_of(0);
  util::Point pin =
      placement.pin_location(netlist::PinRef::cell_pin(0, lib.output_pin()));
  EXPECT_EQ(pin.x, 1000 + lib.pins[lib.output_pin()].offset.x);
  EXPECT_EQ(pin.y, 2000 + lib.pins[lib.output_pin()].offset.y);
}

TEST(Placement, HpwlZeroWhenCoincident) {
  netlist::Netlist nl = c17();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  // All cells at origin: every net's bbox is small but port nets still
  // stretch to the boundary.
  EXPECT_GE(placement.total_hpwl(), 0);
}

TEST(Placement, IsLegalDetectsOverlap) {
  netlist::Netlist nl = c17();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    placement.set_cell_origin(c, {0, 0});  // pile-up
  }
  std::vector<std::string> problems;
  EXPECT_FALSE(placement.is_legal(&problems));
  EXPECT_FALSE(problems.empty());
}

TEST(Placement, IsLegalDetectsOffGridAndOutside) {
  netlist::Netlist nl = c17();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  // Spread cells legally first.
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    placement.set_cell_origin(
        c, {fp.site_x(c * 6), fp.row_y(c % std::max(1, fp.num_rows))});
  }
  placement.set_cell_origin(0, {7, 0});  // off site grid
  std::vector<std::string> problems;
  EXPECT_FALSE(placement.is_legal(&problems));

  placement.set_cell_origin(0, {fp.die.hi.x + fp.site_width, 0});
  problems.clear();
  EXPECT_FALSE(placement.is_legal(&problems));
}

}  // namespace
}  // namespace sma::place
