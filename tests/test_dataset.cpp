#include "attack/dataset.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sma::attack {
namespace {

DatasetConfig small_config(bool images = true) {
  DatasetConfig config;
  config.candidates.max_candidates = 8;
  config.images.size = 15;
  config.images.pixel_sizes = {100, 200};
  config.build_images = images;
  return config;
}

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override { s_ = &test::shared_split(3, 400, 7); }
  const test::SmallSplit* s_ = nullptr;
};

TEST_F(DatasetTest, InputShapes) {
  QueryDataset dataset(s_->split.get(), small_config());
  ASSERT_GT(dataset.num_queries(), 0u);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, dataset.num_queries());
       ++i) {
    const int n = static_cast<int>(dataset.query(i).candidates.size());
    if (n == 0) continue;
    nn::QueryInput input = dataset.input(i);
    EXPECT_EQ(input.vec.shape(),
              (std::vector<int>{n, features::kNumVectorFeatures}));
    EXPECT_EQ(input.images.shape(), (std::vector<int>{n + 1, 2, 15, 15}));
  }
}

TEST_F(DatasetTest, VectorOnlyLeavesImagesEmpty) {
  QueryDataset dataset(s_->split.get(), small_config(false));
  nn::QueryInput input = dataset.input(0);
  EXPECT_TRUE(input.images.empty());
  EXPECT_FALSE(input.vec.empty());
}

TEST_F(DatasetTest, ImageCachingSharesVirtualPins) {
  QueryDataset dataset(s_->split.get(), small_config());
  std::size_t queries = std::min<std::size_t>(10, dataset.num_queries());
  std::size_t total_images = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    total_images += dataset.query(i).candidates.size() + 1;
    dataset.input(i);
  }
  // Cache must be smaller than the naive count (pins are shared).
  EXPECT_LT(dataset.cached_images(), total_images);
  EXPECT_GT(dataset.cached_images(), 0u);
}

TEST_F(DatasetTest, TargetsMatchQueries) {
  QueryDataset dataset(s_->split.get(), small_config());
  for (std::size_t i = 0; i < dataset.num_queries(); ++i) {
    const split::SinkQuery& q = dataset.query(i);
    EXPECT_EQ(dataset.target(i), q.positive_index);
    EXPECT_EQ(dataset.num_sinks(i), q.num_sinks);
    if (q.positive_index >= 0) {
      EXPECT_LT(q.positive_index, static_cast<int>(q.candidates.size()));
    }
  }
}

TEST_F(DatasetTest, HitRateMatchesSplitHelper) {
  QueryDataset dataset(s_->split.get(), small_config());
  EXPECT_GT(dataset.candidate_hit_rate(), 0.0);
  EXPECT_LE(dataset.candidate_hit_rate(), 1.0);
}

}  // namespace
}  // namespace sma::attack
