// Lint fixture: MUST stay clean. Ordered containers, integer
// accumulation, no entropy — the deterministic idiom the lint enforces.
#include <map>
#include <string>

int total(const std::map<std::string, int>& scores) {
  int sum = 0;
  for (const auto& entry : scores) {
    sum += entry.second;
  }
  return sum;
}
