// Lint fixture: MUST trip rule pointer-order (and nothing else).
// std::set<T*> orders by pointer value, which ASLR randomizes per run.
#include <cstddef>
#include <set>

struct Cell;
using CellSet = std::set<Cell*>;

std::size_t count_cells(const CellSet& cells) { return cells.size(); }
