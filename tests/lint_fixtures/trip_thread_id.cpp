// Lint fixture: MUST trip rule thread-id (and nothing else).
// std::thread::id values are assigned by the OS scheduler.
#include <thread>

bool same_thread(std::thread::id expected) {
  return std::this_thread::get_id() == expected;
}
