// Lint fixture: MUST trip rule unordered-iter (and nothing else).
// Iterating an unordered container visits elements in hash-salt order,
// which differs across standard libraries and runs.
#include <string>
#include <unordered_map>

int sum_values(const std::unordered_map<std::string, int>& scores_) {
  int total = 0;
  for (const auto& entry : scores_) {
    total += entry.second;
  }
  return total;
}
