// Lint fixture: MUST trip rule unordered-include (and nothing else).
// The header is included but no unordered container is ever named.
#include <unordered_set>

int answer() { return 42; }
