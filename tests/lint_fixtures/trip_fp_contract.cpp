// Lint fixture: MUST trip rule fp-contract (and nothing else).
// A float multiply-accumulate in a TU that is not in SMA_FP_STRICT_TUS:
// an FMA-capable target may contract the mul+add into one rounding step.
double dot(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}
