// Lint fixture: MUST trip rule entropy (and nothing else).
// Unseeded libc entropy outside util/rng.
#include <cstdlib>

int noisy_seed() { return std::rand(); }
