// Lint fixture: MUST stay clean. Exercises the audited suppression
// syntax — the directive covers the line below it and carries a reason.
#include <cstdlib>

// sma-lint: allow(entropy) fixture demonstrating an audited suppression
int seeded() { return std::rand(); }
