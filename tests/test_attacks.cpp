#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "attack/dl_attack.hpp"
#include "attack/flow_attack.hpp"
#include "attack/proximity_attack.hpp"
#include "test_support.hpp"

namespace sma::attack {
namespace {

TEST(ComputeCcr, WeightsBySinkCount) {
  std::vector<Selection> selections(3);
  selections[0] = {0, 1, true, 3};
  selections[1] = {1, 2, false, 1};
  selections[2] = {2, 3, true, 1};
  EXPECT_DOUBLE_EQ(compute_ccr(selections), 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(compute_ccr({}), 0.0);
}

class AttackTest : public ::testing::Test {
 protected:
  void SetUp() override { s_ = &test::shared_split(3, 400, 13); }
  const test::SmallSplit* s_ = nullptr;
};

TEST_F(AttackTest, ProximityAttackProducesSelections) {
  AttackResult result = run_proximity_attack(*s_->split);
  EXPECT_EQ(result.selections.size(), s_->split->sink_fragments().size());
  EXPECT_GE(result.ccr, 0.0);
  EXPECT_LE(result.ccr, 1.0);
  EXPECT_FALSE(result.timed_out);
  // Proximity must beat random guessing among the ~48 candidates (~2%)
  // by a wide margin.
  EXPECT_GT(result.ccr, 0.06);
}

TEST_F(AttackTest, FlowAttackRespectsCapacities) {
  AttackResult result = run_flow_attack(*s_->split);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.selections.size(), s_->split->sink_fragments().size());
  EXPECT_GT(result.ccr, 0.1);

  // No source fragment may be assigned more sinks than its capacity bound.
  FlowAttackConfig config;
  std::map<int, int> assignments;
  for (const Selection& sel : result.selections) {
    if (sel.chosen_source >= 0) ++assignments[sel.chosen_source];
  }
  for (const auto& [source, count] : assignments) {
    EXPECT_LE(count, config.max_slots);
  }
}

TEST_F(AttackTest, FlowAttackTimeoutPath) {
  FlowAttackConfig config;
  config.timeout_seconds = 1e-9;  // force immediate timeout
  AttackResult result = run_flow_attack(*s_->split, config);
  EXPECT_TRUE(result.timed_out);
  EXPECT_TRUE(std::isnan(result.ccr));
}

TEST_F(AttackTest, DlAttackVectorOnlyTrainsAndAttacks) {
  DatasetConfig dataset_config;
  dataset_config.candidates.max_candidates = 8;
  dataset_config.build_images = false;

  std::vector<QueryDataset> training;
  training.emplace_back(s_->split.get(), dataset_config);
  const test::SmallSplit& extra = test::shared_split(3, 400, 16);
  training.emplace_back(extra.split.get(), dataset_config);
  std::vector<QueryDataset> validation;

  nn::NetConfig net_config;
  net_config.hidden = 24;
  net_config.vector_res_blocks = 1;
  net_config.merged_res_blocks = 1;
  net_config.use_images = false;

  TrainConfig train_config;
  train_config.epochs = 6;
  train_config.max_queries_per_design = 200;

  DlAttack dl(net_config);
  TrainStats stats = dl.train(training, validation, train_config);
  EXPECT_EQ(stats.epoch_loss.size(), 6u);
  EXPECT_GT(stats.queries_seen, 0);
  // Loss should drop from the first epoch to the last.
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());

  // Attack a fresh layout of the same character (self-attack sanity).
  const test::SmallSplit& victim = test::shared_split(3, 400, 14);
  QueryDataset victim_data(victim.split.get(), dataset_config);
  AttackResult result = dl.attack(victim_data);
  EXPECT_EQ(result.selections.size(), victim.split->sink_fragments().size());
  // Trained DL should comfortably beat random choice (1/8).
  EXPECT_GT(result.ccr, 0.16);
}

TEST_F(AttackTest, DlAttackBeatsUntrainedNet) {
  DatasetConfig dataset_config;
  dataset_config.candidates.max_candidates = 8;
  dataset_config.build_images = false;

  nn::NetConfig net_config;
  net_config.hidden = 24;
  net_config.vector_res_blocks = 1;
  net_config.merged_res_blocks = 1;
  net_config.use_images = false;

  const test::SmallSplit& victim = test::shared_split(3, 400, 14);

  // Untrained baseline.
  DlAttack untrained(net_config);
  QueryDataset victim_data1(victim.split.get(), dataset_config);
  double untrained_ccr = untrained.attack(victim_data1).ccr;

  // Trained.
  std::vector<QueryDataset> training;
  training.emplace_back(s_->split.get(), dataset_config);
  std::vector<QueryDataset> validation;
  TrainConfig train_config;
  train_config.epochs = 6;
  DlAttack trained(net_config);
  trained.train(training, validation, train_config);
  QueryDataset victim_data2(victim.split.get(), dataset_config);
  double trained_ccr = trained.attack(victim_data2).ccr;

  EXPECT_GT(trained_ccr, untrained_ccr);
}

TEST_F(AttackTest, TrainingWithValidationTracksCcr) {
  DatasetConfig dataset_config;
  dataset_config.candidates.max_candidates = 6;
  dataset_config.build_images = false;

  std::vector<QueryDataset> training;
  training.emplace_back(s_->split.get(), dataset_config);
  const test::SmallSplit& val = test::shared_split(3, 300, 15);
  std::vector<QueryDataset> validation;
  validation.emplace_back(val.split.get(), dataset_config);

  nn::NetConfig net_config;
  net_config.hidden = 16;
  net_config.vector_res_blocks = 1;
  net_config.merged_res_blocks = 1;
  net_config.use_images = false;

  TrainConfig train_config;
  train_config.epochs = 4;
  train_config.validate_every = 2;
  train_config.max_queries_per_design = 100;

  DlAttack dl(net_config);
  TrainStats stats = dl.train(training, validation, train_config);
  EXPECT_EQ(stats.validation_ccr.size(), 2u);
}

}  // namespace
}  // namespace sma::attack
