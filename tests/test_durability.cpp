// Crash-safety gates (PR 7): durable_io framing, the fault-injection
// harness, checkpoint/resume byte-identity, the split cache's disk tier,
// and durable experiment work units.
//
// The central contract under test: a run killed at ANY fault-injection
// point can be rerun and produces results byte-identical to a run that
// was never interrupted — and a damaged file on disk is always detected
// and recomputed, never silently consumed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/checkpoint.hpp"
#include "attack/dl_attack.hpp"
#include "attack/replica_set.hpp"
#include "eval/experiment.hpp"
#include "eval/split_cache.hpp"
#include "layout/def_io.hpp"
#include "test_support.hpp"
#include "util/durable_io.hpp"
#include "util/fault.hpp"

namespace sma {
namespace {

namespace fault = util::fault;

/// Fresh per-test scratch directory under the gtest temp root.
std::string test_dir() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + "sma_durability/" +
                          info->test_suite_name() + "_" + info->name();
  std::filesystem::remove_all(dir);
  util::ensure_dir(dir);
  return dir;
}

/// Flip one byte of `path` in place (simulated bit rot).
void corrupt_file_byte(const std::string& path, std::size_t offset) {
  std::string bytes = util::read_file(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size())));
}

/// Armed faults must never leak across tests.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

// ---------------------------------------------------------------------
// Frame container
// ---------------------------------------------------------------------

TEST_F(DurabilityTest, FrameRoundTripsArbitraryPayloads) {
  const std::string payload("ab\0\xff\n\x01zz", 8);
  const std::string frame = util::frame_encode("unit-test", 3, payload);
  EXPECT_EQ(util::frame_decode(frame, "unit-test", 3), payload);

  // Empty payloads are legal (an empty work unit is still a valid frame).
  const std::string empty = util::frame_encode("unit-test", 3, "");
  EXPECT_EQ(util::frame_decode(empty, "unit-test", 3), "");
}

TEST_F(DurabilityTest, FrameRejectsEveryTruncation) {
  // The torn-write case: a frame cut at EVERY byte boundary must be
  // rejected — there is no prefix length at which a truncated frame still
  // decodes.
  const std::string frame = util::frame_encode("unit-test", 1, "payload!");
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_THROW(util::frame_decode(frame.substr(0, cut), "unit-test", 1),
                 util::FrameError)
        << "cut at byte " << cut << " of " << frame.size();
  }
}

TEST_F(DurabilityTest, FrameRejectsEverySingleByteCorruption) {
  // Bit rot anywhere — header, kind, length fields, payload, checksum —
  // must be caught (by a field check or ultimately the checksum).
  const std::string frame =
      util::frame_encode("unit-test", 1, "sixteen payload b");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string damaged = frame;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x04);
    EXPECT_THROW(util::frame_decode(damaged, "unit-test", 1),
                 util::FrameError)
        << "flipped byte " << i << " of " << frame.size();
  }
}

TEST_F(DurabilityTest, FrameRejectsWrongKindAndVersion) {
  const std::string frame = util::frame_encode("kind-a", 2, "data");
  EXPECT_THROW(util::frame_decode(frame, "kind-b", 2), util::FrameError);
  EXPECT_THROW(util::frame_decode(frame, "kind-a", 3), util::FrameError);
  EXPECT_EQ(util::frame_decode(frame, "kind-a", 2), "data");
}

// ---------------------------------------------------------------------
// Atomic file replacement
// ---------------------------------------------------------------------

TEST_F(DurabilityTest, AtomicWriteReadRoundTripAndReplace) {
  const std::string dir = test_dir();
  const std::string path = dir + "/file.bin";
  EXPECT_FALSE(util::file_exists(path));
  EXPECT_THROW(util::read_file(path), util::IoError);

  util::atomic_write_file(path, "first");
  EXPECT_TRUE(util::file_exists(path));
  EXPECT_EQ(util::read_file(path), "first");

  util::atomic_write_file(path, "second, longer contents");
  EXPECT_EQ(util::read_file(path), "second, longer contents");
}

TEST_F(DurabilityTest, EnsureDirCreatesNestedDirectories) {
  const std::string dir = test_dir() + "/a/b/c";
  util::ensure_dir(dir);
  util::ensure_dir(dir);  // idempotent
  util::atomic_write_file(dir + "/f", "x");
  EXPECT_EQ(util::read_file(dir + "/f"), "x");
}

// ---------------------------------------------------------------------
// Fault harness
// ---------------------------------------------------------------------

TEST_F(DurabilityTest, FaultFiresOnNthHitAndIsOneShot) {
  if (!fault::compiled()) GTEST_SKIP() << "built with -DSMA_FAULT=OFF";
  const std::string dir = test_dir();
  const std::string path = dir + "/f.bin";
  util::atomic_write_file(path, "ok");

  ASSERT_TRUE(fault::arm("durable.read", fault::Action::kFail, /*nth=*/2));
  EXPECT_EQ(util::read_file(path), "ok");                    // hit 1: inert
  EXPECT_THROW(util::read_file(path), fault::FaultInjected);  // hit 2: fires
  EXPECT_EQ(util::read_file(path), "ok");  // one-shot: disarmed after firing
  EXPECT_EQ(fault::hits("durable.read"), 3);

  fault::disarm_all();
  EXPECT_EQ(fault::hits("durable.read"), 0);
}

TEST_F(DurabilityTest, ArmFromEnvParsesSpecsAndRejectsMalformedOnes) {
  if (!fault::compiled()) GTEST_SKIP() << "built with -DSMA_FAULT=OFF";
  const std::string dir = test_dir();
  const std::string path = dir + "/f.bin";
  util::atomic_write_file(path, "ok");

  ::setenv("SMA_FAULT", "durable.read:fail:1", /*overwrite=*/1);
  EXPECT_EQ(fault::arm_from_env(), 1);
  ::unsetenv("SMA_FAULT");
  EXPECT_THROW(util::read_file(path), fault::FaultInjected);
  EXPECT_EQ(util::read_file(path), "ok");

  // A misspelled spec must fail loudly, not silently test nothing.
  ::setenv("SMA_FAULT", "durable.read:bogus_mode:1", 1);
  EXPECT_THROW(fault::arm_from_env(), std::invalid_argument);
  ::unsetenv("SMA_FAULT");
}

TEST_F(DurabilityTest, AtomicReplaceSurvivesKillAtEveryIoPoint) {
  if (!fault::compiled()) GTEST_SKIP() << "built with -DSMA_FAULT=OFF";
  const std::string dir = test_dir();
  const std::string path = dir + "/frame.sma";
  util::write_frame_file(path, "kill-test", 1, "OLD");

  struct Point {
    const char* name;
    fault::Action mode;
  };
  const Point points[] = {
      {"durable.open_temp", fault::Action::kFail},
      {"durable.write", fault::Action::kFail},
      {"durable.write", fault::Action::kShortWrite},
      {"durable.fsync", fault::Action::kFail},
      {"durable.rename", fault::Action::kFail},
  };
  for (const Point& p : points) {
    fault::disarm_all();
    ASSERT_TRUE(fault::arm(p.name, p.mode));
    EXPECT_THROW(util::write_frame_file(path, "kill-test", 1, "NEW"),
                 fault::FaultInjected)
        << p.name;
    // The crash left either no trace or a doomed temp file — never a torn
    // destination. The previous frame must still load, intact.
    EXPECT_EQ(util::read_frame_file(path, "kill-test", 1), "OLD") << p.name;
  }

  fault::disarm_all();
  util::write_frame_file(path, "kill-test", 1, "NEW");
  EXPECT_EQ(util::read_frame_file(path, "kill-test", 1), "NEW");
}

TEST_F(DurabilityTest, SilentCorruptionIsDetectedAtLoad) {
  if (!fault::compiled()) GTEST_SKIP() << "built with -DSMA_FAULT=OFF";
  const std::string dir = test_dir();
  const std::string path = dir + "/frame.sma";

  // corrupt mode completes the write normally (no crash to observe) but
  // flips a byte — the non-atomic-filesystem / bit-rot case. The frame
  // checksum must catch it at load.
  ASSERT_TRUE(fault::arm("durable.write", fault::Action::kCorrupt));
  util::write_frame_file(path, "kill-test", 1, "payload bytes");
  EXPECT_THROW(util::read_frame_file(path, "kill-test", 1), util::FrameError);
}

// ---------------------------------------------------------------------
// Training checkpoints
// ---------------------------------------------------------------------

TEST_F(DurabilityTest, CheckpointSaveLoadRoundTrip) {
  const std::string dir = test_dir();
  const std::string path = dir + "/ckpt.sma";

  attack::TrainCheckpoint ckpt;
  ckpt.compat_digest = 0xfeedbeefcafe1234ULL;
  ckpt.epochs_done = 7;
  ckpt.queries_seen = 4200;
  ckpt.epoch_loss = {1.5, 0.75, 0.5};
  ckpt.validation_ccr = {0.25};
  ckpt.rng = util::Pcg32(123).save_state();
  ckpt.model_blob = "model-bytes";
  ckpt.adam_blob = "adam-bytes";
  attack::save_checkpoint(path, ckpt);

  attack::TrainCheckpoint loaded;
  ASSERT_TRUE(attack::try_load_checkpoint(path, ckpt.compat_digest, &loaded));
  EXPECT_EQ(loaded.compat_digest, ckpt.compat_digest);
  EXPECT_EQ(loaded.epochs_done, 7);
  EXPECT_EQ(loaded.queries_seen, 4200);
  EXPECT_EQ(loaded.epoch_loss, ckpt.epoch_loss);
  EXPECT_EQ(loaded.validation_ccr, ckpt.validation_ccr);
  EXPECT_EQ(loaded.rng.state, ckpt.rng.state);
  EXPECT_EQ(loaded.rng.inc, ckpt.rng.inc);
  EXPECT_EQ(loaded.model_blob, "model-bytes");
  EXPECT_EQ(loaded.adam_blob, "adam-bytes");

  // Missing file and configuration mismatch both mean "start fresh".
  attack::TrainCheckpoint out;
  EXPECT_FALSE(attack::try_load_checkpoint(dir + "/nope.sma",
                                           ckpt.compat_digest, &out));
  const long discards_before = attack::checkpoint_stats().corrupt_discards;
  EXPECT_FALSE(attack::try_load_checkpoint(path, /*expect_digest=*/1, &out));
  EXPECT_EQ(attack::checkpoint_stats().corrupt_discards, discards_before + 1);

  // A damaged checkpoint is discarded, not resumed.
  corrupt_file_byte(path, 40);
  EXPECT_FALSE(attack::try_load_checkpoint(path, ckpt.compat_digest, &out));
  EXPECT_EQ(attack::checkpoint_stats().corrupt_discards, discards_before + 2);
}

TEST_F(DurabilityTest, EncodeDecodeParamsTransplantsWeightsExactly) {
  nn::NetConfig config;
  config.hidden = 16;
  config.vector_res_blocks = 1;
  config.merged_res_blocks = 1;
  config.use_images = false;
  nn::AttackNet a(config);
  nn::NetConfig other = config;
  other.seed ^= 0x9e3779b9u;  // different random init
  nn::AttackNet b(other);

  std::vector<nn::Param> a_params = a.params();
  std::vector<nn::Param> b_params = b.params();
  const std::string blob = attack::encode_params(a_params);
  attack::decode_params(blob, b_params);

  std::ostringstream sa, sb;
  a.save(sa);
  b.save(sb);
  // Weight sections must now match byte for byte (headers differ in the
  // stored seed, so compare past them).
  EXPECT_EQ(sa.str().substr(64), sb.str().substr(64));

  // A truncated blob must be rejected BEFORE any tensor is written.
  EXPECT_THROW(
      attack::decode_params(blob.substr(0, blob.size() / 2), b_params),
      util::FrameError);
  std::ostringstream sb2;
  b.save(sb2);
  EXPECT_EQ(sb.str(), sb2.str()) << "failed decode mutated the weights";
}

/// Shared training fixture for the resume tests: one small vector-only
/// dataset (pattern borrowed from test_attacks.cpp), kept tiny because
/// the kill matrix trains it many times.
class CheckpointTrainTest : public DurabilityTest {
 protected:
  static nn::NetConfig net_config() {
    nn::NetConfig config;
    config.hidden = 24;
    config.vector_res_blocks = 1;
    config.merged_res_blocks = 1;
    config.use_images = false;
    return config;
  }

  static std::vector<attack::QueryDataset> make_training() {
    attack::DatasetConfig config;
    config.candidates.max_candidates = 8;
    config.build_images = false;
    std::vector<attack::QueryDataset> training;
    training.emplace_back(test::shared_split(3, 400, 13).split.get(), config);
    return training;
  }

  /// One full train() call; returns the saved model bytes.
  static std::string train_model(int epochs, int batch_size, int threads,
                                 const std::string& checkpoint_path,
                                 int checkpoint_every,
                                 attack::TrainStats* out_stats = nullptr) {
    runtime::Config runtime_config;
    runtime_config.threads = threads;
    std::unique_ptr<runtime::ThreadPool> pool = runtime_config.make_pool();

    std::vector<attack::QueryDataset> training = make_training();
    std::vector<attack::QueryDataset> validation;
    attack::TrainConfig config;
    config.epochs = epochs;
    config.batch_size = batch_size;
    config.max_queries_per_design = 60;
    config.decay_every = 3;
    config.checkpoint_path = checkpoint_path;
    config.checkpoint_every = checkpoint_every;

    attack::DlAttack dl(net_config());
    attack::TrainStats stats =
        dl.train(training, validation, config, pool.get());
    if (out_stats != nullptr) *out_stats = stats;
    std::ostringstream bytes;
    dl.net().save(bytes);
    return bytes.str();
  }
};

TEST_F(CheckpointTrainTest, ResumeIsByteIdenticalAcrossThreadsAndLanes) {
  const std::string dir = test_dir();
  for (int batch_size : {1, 8}) {
    // The reference: an uninterrupted run (the model depends on the lane
    // count but never on the thread count).
    attack::TrainStats ref_stats;
    const std::string ref =
        train_model(4, batch_size, /*threads=*/1, "", 0, &ref_stats);

    for (int threads : {1, 4}) {
      const std::string path = dir + "/ckpt_b" + std::to_string(batch_size) +
                               "_t" + std::to_string(threads) + ".sma";
      // "Crash" after epoch 2 (simply stop), then resume to epoch 4.
      train_model(2, batch_size, threads, path, /*checkpoint_every=*/1);
      attack::TrainStats stats;
      const std::string resumed =
          train_model(4, batch_size, threads, path, 1, &stats);

      EXPECT_EQ(stats.resumed_from_epoch, 2)
          << "batch " << batch_size << ", threads " << threads;
      EXPECT_EQ(resumed, ref)
          << "resumed model differs from uninterrupted run (batch "
          << batch_size << ", threads " << threads << ")";
      // The stats histories must also cover the full run, bitwise.
      EXPECT_EQ(stats.epoch_loss, ref_stats.epoch_loss);
      ASSERT_EQ(stats.arena_allocs_per_epoch.size(),
                ref_stats.arena_allocs_per_epoch.size());
      EXPECT_GE(stats.checkpoints_saved, 1);
    }
  }
}

TEST_F(CheckpointTrainTest, KillDuringSaveLeavesPreviousCheckpointValid) {
  if (!fault::compiled()) GTEST_SKIP() << "built with -DSMA_FAULT=OFF";
  const std::string dir = test_dir();
  const std::string ref = train_model(6, 2, 1, "", 0);

  struct Kill {
    const char* point;
    fault::Action mode;
    long nth;
    int resume_epoch;  ///< the checkpoint that must survive the crash
  };
  // With checkpoint_every = 2, saves happen after epochs 2, 4 and 6. Each
  // entry crashes the SECOND save (epoch 4) at a different instant of the
  // write path — except checkpoint.saved, which crashes right AFTER the
  // first save commits, so the new checkpoint must be the survivor.
  const Kill kills[] = {
      {"checkpoint.save", fault::Action::kFail, 2, 2},
      {"durable.open_temp", fault::Action::kFail, 2, 2},
      {"durable.write", fault::Action::kFail, 2, 2},
      {"durable.write", fault::Action::kShortWrite, 2, 2},
      {"durable.fsync", fault::Action::kFail, 2, 2},
      {"durable.rename", fault::Action::kFail, 2, 2},
      {"checkpoint.saved", fault::Action::kFail, 1, 2},
  };
  int i = 0;
  for (const Kill& kill : kills) {
    const std::string path = dir + "/ckpt_" + std::to_string(i++) + ".sma";
    fault::disarm_all();
    ASSERT_TRUE(fault::arm(kill.point, kill.mode, kill.nth));
    EXPECT_THROW(train_model(6, 2, 1, path, /*checkpoint_every=*/2),
                 fault::FaultInjected)
        << kill.point;
    fault::disarm_all();

    // Rerun after the "crash": it must resume from the checkpoint the
    // crash could not damage and converge to the uninterrupted model.
    attack::TrainStats stats;
    const std::string resumed = train_model(6, 2, 1, path, 2, &stats);
    EXPECT_EQ(stats.resumed_from_epoch, kill.resume_epoch) << kill.point;
    EXPECT_EQ(resumed, ref)
        << "model after crash at " << kill.point
        << " differs from uninterrupted run";
  }
}

TEST_F(CheckpointTrainTest, CorruptCheckpointFallsBackToFreshStart) {
  const std::string dir = test_dir();
  const std::string path = dir + "/ckpt.sma";
  const std::string ref = train_model(4, 2, 1, "", 0);

  train_model(4, 2, 1, path, /*checkpoint_every=*/2);
  ASSERT_TRUE(util::file_exists(path));
  corrupt_file_byte(path, 100);

  const long discards_before = attack::checkpoint_stats().corrupt_discards;
  attack::TrainStats stats;
  const std::string retrained = train_model(4, 2, 1, path, 2, &stats);
  EXPECT_EQ(stats.resumed_from_epoch, 0)
      << "a damaged checkpoint must not be resumed";
  EXPECT_EQ(retrained, ref);
  EXPECT_GT(attack::checkpoint_stats().corrupt_discards, discards_before);
}

// ---------------------------------------------------------------------
// Split-cache disk tier
// ---------------------------------------------------------------------

std::string cache_entry_path(const std::string& dir, std::uint64_t key) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.sma",
                static_cast<unsigned long long>(key));
  return dir + "/" + name;
}

TEST_F(DurabilityTest, DiskCacheServesSecondProcessByteIdenticalDesign) {
  const std::string dir = test_dir();
  constexpr std::uint64_t kKey = 0x51a1ca5e00001234ULL;

  // "Process" 1: a miss builds through the flow and spills to disk.
  eval::SplitCache first(4);
  first.set_disk_dir(dir, &test::library());
  std::shared_ptr<const layout::Design> built = first.get_or_build(kKey, [] {
    return std::make_shared<const layout::Design>(
        test::small_routed_design(60, 3));
  });
  EXPECT_EQ(first.stats().misses, 1u);
  EXPECT_EQ(first.stats().disk_hits, 0u);
  EXPECT_EQ(first.stats().disk_spills, 1u);
  ASSERT_TRUE(util::file_exists(cache_entry_path(dir, kKey)));

  // "Process" 2 (a fresh cache over the same directory): the entry must
  // come from disk — the build closure must never run — and the design
  // must round-trip byte-identically.
  eval::SplitCache second(4);
  second.set_disk_dir(dir, &test::library());
  std::shared_ptr<const layout::Design> loaded =
      second.get_or_build(kKey, []() -> std::shared_ptr<const layout::Design> {
        ADD_FAILURE() << "build ran despite a valid disk entry";
        return std::make_shared<const layout::Design>(
            test::small_routed_design(60, 3));
      });
  EXPECT_EQ(second.stats().disk_hits, 1u);
  EXPECT_EQ(layout::to_def_string(*loaded), layout::to_def_string(*built));
  EXPECT_EQ(loaded->routing.final_overflow, built->routing.final_overflow);
  EXPECT_EQ(loaded->routing.fallback_routes, built->routing.fallback_routes);
  EXPECT_EQ(loaded->routing.total_wirelength, built->routing.total_wirelength);
  EXPECT_EQ(loaded->routing.total_vias, built->routing.total_vias);

  // Memory tier now holds it: a second lookup never touches disk again.
  second.get_or_build(kKey, []() -> std::shared_ptr<const layout::Design> {
    ADD_FAILURE() << "memory tier missed";
    return nullptr;
  });
  EXPECT_EQ(second.stats().hits, 1u);
  EXPECT_EQ(second.stats().disk_hits, 1u);
}

TEST_F(DurabilityTest, CorruptDiskCacheEntryIsRebuiltNeverServed) {
  const std::string dir = test_dir();
  constexpr std::uint64_t kKey = 0xabcdef0123456789ULL;

  eval::SplitCache first(4);
  first.set_disk_dir(dir, &test::library());
  std::shared_ptr<const layout::Design> built = first.get_or_build(kKey, [] {
    return std::make_shared<const layout::Design>(
        test::small_routed_design(60, 3));
  });
  const std::string path = cache_entry_path(dir, kKey);
  ASSERT_TRUE(util::file_exists(path));
  corrupt_file_byte(path, util::read_file(path).size() / 2);

  // The damaged entry must be detected, deleted, and rebuilt — and the
  // rebuild's spill repairs the file for the next process.
  eval::SplitCache second(4);
  second.set_disk_dir(dir, &test::library());
  bool rebuilt = false;
  std::shared_ptr<const layout::Design> repaired =
      second.get_or_build(kKey, [&rebuilt] {
        rebuilt = true;
        return std::make_shared<const layout::Design>(
            test::small_routed_design(60, 3));
      });
  EXPECT_TRUE(rebuilt) << "a corrupt entry was served as a layout";
  EXPECT_EQ(second.stats().disk_corrupt, 1u);
  EXPECT_EQ(second.stats().disk_hits, 0u);
  EXPECT_EQ(second.stats().disk_spills, 1u);
  EXPECT_EQ(layout::to_def_string(*repaired), layout::to_def_string(*built));

  eval::SplitCache third(4);
  third.set_disk_dir(dir, &test::library());
  third.get_or_build(kKey, []() -> std::shared_ptr<const layout::Design> {
    ADD_FAILURE() << "repaired entry did not load";
    return nullptr;
  });
  EXPECT_EQ(third.stats().disk_hits, 1u);
}

TEST_F(DurabilityTest, DiskCacheEntryUnderWrongNameIsRejected) {
  const std::string dir = test_dir();
  eval::SplitCache cache(4);
  cache.set_disk_dir(dir, &test::library());
  cache.get_or_build(0x1111ULL, [] {
    return std::make_shared<const layout::Design>(
        test::small_routed_design(60, 3));
  });
  // Rename the entry to a different key: the embedded key echo must catch
  // the mismatch and rebuild instead of serving the wrong layout.
  std::filesystem::rename(cache_entry_path(dir, 0x1111ULL),
                          cache_entry_path(dir, 0x2222ULL));
  eval::SplitCache other(4);
  other.set_disk_dir(dir, &test::library());
  bool rebuilt = false;
  other.get_or_build(0x2222ULL, [&rebuilt] {
    rebuilt = true;
    return std::make_shared<const layout::Design>(
        test::small_routed_design(60, 5));
  });
  EXPECT_TRUE(rebuilt);
  EXPECT_EQ(other.stats().disk_corrupt, 1u);
}

TEST_F(DurabilityTest, SpillFailureDegradesToMemoryOnly) {
  const std::string tier = test_dir() + "/tier";
  eval::SplitCache cache(4);
  cache.set_disk_dir(tier, &test::library());
  // Break the storage AFTER attach: the tier path is now a plain file, so
  // every spill fails with a genuine IoError (the full-disk case). That
  // must not fail the build — the run continues with the in-memory
  // design.
  std::filesystem::remove_all(tier);
  util::atomic_write_file(tier, "not a directory");
  std::shared_ptr<const layout::Design> design =
      cache.get_or_build(0x3333ULL, [] {
        return std::make_shared<const layout::Design>(
            test::small_routed_design(60, 3));
      });
  ASSERT_NE(design, nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().disk_spills, 0u);

  // A simulated crash AT the spill point is a different story: it must
  // crash the caller, never degrade to "continue without spilling".
  if (fault::compiled()) {
    ASSERT_TRUE(fault::arm("cache.spill", fault::Action::kFail));
    EXPECT_THROW(cache.get_or_build(0x4444ULL,
                                    [] {
                                      return std::make_shared<
                                          const layout::Design>(
                                          test::small_routed_design(60, 3));
                                    }),
                 fault::FaultInjected);
  }
}

// ---------------------------------------------------------------------
// Durable experiment work units
// ---------------------------------------------------------------------

TEST_F(DurabilityTest, Figure5RerunLoadsWorkUnitsBitIdenticallyAndSkips) {
  const std::string dir = test_dir();
  // The tiny profile from test_experiment.cpp, plus a work dir.
  eval::ExperimentProfile profile = eval::ExperimentProfile::fast();
  profile.dataset.candidates.max_candidates = 6;
  profile.dataset.images.size = 9;
  profile.dataset.images.pixel_sizes = {200, 400};
  profile.net.hidden = 16;
  profile.net.vector_res_blocks = 1;
  profile.net.merged_res_blocks = 1;
  profile.net.conv_channels = {4, 6, 8, 10};
  profile.net.image_fc = 16;
  profile.train.epochs = 2;
  profile.train.max_queries_per_design = 40;
  profile.work_dir = dir;

  netlist::DesignProfile victim;
  victim.name = "tiny_a";
  victim.num_inputs = 8;
  victim.num_outputs = 4;
  victim.num_gates = 300;
  const std::vector<netlist::DesignProfile> victims = {victim};

  layout::FlowConfig flow;
  const std::vector<eval::AblationRow> first =
      eval::run_figure5(profile, flow, victims, 2019);
  ASSERT_EQ(first.size(), 3u);

  std::size_t units = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".sma") ++units;
  }
  EXPECT_EQ(units, 3u) << "one work unit per Figure-5 setting";

  // The rerun must load every row from its unit. The proof that nothing
  // was recomputed: avg_inference_seconds is a wall-clock measurement,
  // bit-equal only if it came from the file.
  const std::vector<eval::AblationRow> second =
      eval::run_figure5(profile, flow, victims, 2019);
  ASSERT_EQ(second.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(second[i].setting, first[i].setting);
    EXPECT_EQ(second[i].avg_ccr, first[i].avg_ccr);
    EXPECT_EQ(second[i].avg_inference_seconds,
              first[i].avg_inference_seconds);
  }

  // A damaged unit is recomputed (and only that one retrains); the rerun
  // still converges to the identical row because training is
  // deterministic.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".sma") {
      corrupt_file_byte(entry.path().string(), 30);
      break;
    }
  }
  const std::vector<eval::AblationRow> third =
      eval::run_figure5(profile, flow, victims, 2019);
  ASSERT_EQ(third.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(third[i].setting, first[i].setting);
    EXPECT_EQ(third[i].avg_ccr, first[i].avg_ccr)
        << "recomputed row diverged for " << first[i].setting;
  }
}

// ---------------------------------------------------------------------
// Bounded replica serving
// ---------------------------------------------------------------------

TEST_F(DurabilityTest, BoundedReplicaSetTimesOutAndCountsIt) {
  nn::NetConfig config;
  config.hidden = 8;
  config.vector_res_blocks = 1;
  config.merged_res_blocks = 1;
  config.use_images = false;
  nn::AttackNet master(config);

  attack::ReplicaSet set;
  set.set_max_replicas(2);
  EXPECT_EQ(set.max_replicas(), 2u);
  // More than the bound can never be satisfied: refuse, don't deadlock.
  EXPECT_THROW(set.lease(3, master, 0.01), std::invalid_argument);

  {
    attack::ReplicaLease held = set.lease(2, master);
    // Saturated: a bounded lease with a deadline must give up, typed.
    EXPECT_THROW(set.lease(1, master, /*timeout_seconds=*/0.05),
                 attack::AcquireTimeoutError);
  }
  EXPECT_EQ(set.lease_stats().timeouts, 1);

  // After release the same request succeeds without growing past the cap.
  attack::ReplicaLease ok = set.lease(2, master, 0.05);
  EXPECT_EQ(ok.nets().size(), 2u);
  EXPECT_EQ(set.lease_stats().clones_created, 2);
}

TEST_F(DurabilityTest, BoundedLeaseWakesWhenConcurrentLeaseReleases) {
  nn::NetConfig config;
  config.hidden = 8;
  config.vector_res_blocks = 1;
  config.merged_res_blocks = 1;
  config.use_images = false;
  nn::AttackNet master(config);

  attack::ReplicaSet set;
  set.set_max_replicas(1);
  std::thread holder([&] {
    attack::ReplicaLease held = set.lease(1, master);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Generous deadline: must block until the holder releases, then win.
  attack::ReplicaLease won = set.lease(1, master, /*timeout_seconds=*/10.0);
  EXPECT_EQ(won.nets().size(), 1u);
  holder.join();
  EXPECT_EQ(set.lease_stats().clones_created, 1);
}

}  // namespace
}  // namespace sma
