#include "util/geometry.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sma::util {
namespace {

TEST(Geometry, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({1, 2}, {4, 6}), 7);
  EXPECT_EQ(manhattan({-3, 5}, {2, -1}), 11);
}

TEST(Geometry, PointArithmetic) {
  Point a{3, 4};
  Point b{1, -2};
  EXPECT_EQ(a + b, (Point{4, 2}));
  EXPECT_EQ(a - b, (Point{2, 6}));
}

TEST(Geometry, DefaultRectIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.width(), 0);
  EXPECT_EQ(r.height(), 0);
  EXPECT_EQ(r.half_perimeter(), 0);
  EXPECT_FALSE(r.contains({0, 0}));
}

TEST(Geometry, ExpandFromEmpty) {
  Rect r;
  r.expand(Point{5, 7});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.lo, (Point{5, 7}));
  EXPECT_EQ(r.hi, (Point{5, 7}));
  r.expand(Point{-1, 9});
  EXPECT_EQ(r.lo, (Point{-1, 7}));
  EXPECT_EQ(r.hi, (Point{5, 9}));
  EXPECT_EQ(r.width(), 6);
  EXPECT_EQ(r.height(), 2);
  EXPECT_EQ(r.half_perimeter(), 8);
}

TEST(Geometry, ExpandWithEmptyRectIsNoop) {
  Rect r{{0, 0}, {2, 2}};
  Rect empty;
  r.expand(empty);
  EXPECT_EQ(r, (Rect{{0, 0}, {2, 2}}));
}

TEST(Geometry, ContainsIsInclusive) {
  Rect r{{0, 0}, {10, 5}};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 5}));
  EXPECT_TRUE(r.contains({5, 3}));
  EXPECT_FALSE(r.contains({11, 3}));
  EXPECT_FALSE(r.contains({5, -1}));
}

TEST(Geometry, Intersects) {
  Rect a{{0, 0}, {4, 4}};
  Rect b{{4, 4}, {8, 8}};   // corner touch counts (closed rects)
  Rect c{{5, 5}, {8, 8}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(a.intersects(Rect{}));
}

TEST(Geometry, Inflated) {
  Rect r{{2, 3}, {4, 5}};
  Rect inflated = r.inflated(2);
  EXPECT_EQ(inflated, (Rect{{0, 1}, {6, 7}}));
}

TEST(Geometry, CenterRoundsTowardLow) {
  Rect r{{0, 0}, {5, 3}};
  EXPECT_EQ(r.center(), (Point{2, 1}));
}

TEST(Geometry, AxisHelpers) {
  EXPECT_EQ(perpendicular(Axis::kHorizontal), Axis::kVertical);
  EXPECT_EQ(perpendicular(Axis::kVertical), Axis::kHorizontal);
  Point p{3, 9};
  EXPECT_EQ(along(p, Axis::kHorizontal), 3);
  EXPECT_EQ(along(p, Axis::kVertical), 9);
}

TEST(Geometry, Streaming) {
  std::ostringstream os;
  os << Point{1, 2} << ' ' << Rect{{0, 0}, {1, 1}};
  EXPECT_EQ(os.str(), "(1, 2) [(0, 0) - (1, 1)]");
}

}  // namespace
}  // namespace sma::util
