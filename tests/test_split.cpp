#include "split/split_design.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_support.hpp"

namespace sma::split {
namespace {

TEST(SplitDesign, RejectsBadLayer) {
  layout::Design design = test::small_routed_design(30, 2);
  EXPECT_THROW(SplitDesign(&design, 0), std::invalid_argument);
  EXPECT_THROW(SplitDesign(&design, 6), std::invalid_argument);
  EXPECT_THROW(SplitDesign(nullptr, 3), std::invalid_argument);
}

TEST(SplitDesign, FragmentGeometryStaysInFeol) {
  for (int layer : {1, 3}) {
    test::SmallSplit s = test::small_split(layer);
    for (const Fragment& f : s.split->fragments()) {
      for (const route::RouteSegment& seg : f.segments) {
        EXPECT_LE(seg.layer, layer);
      }
      for (const route::RouteVia& via : f.vias) {
        EXPECT_LT(via.cut, layer);
      }
      EXPECT_FALSE(f.virtual_pins.empty())
          << "fragments exist only where BEOL connects";
    }
  }
}

TEST(SplitDesign, EveryBrokenNetHasOneSourceFragment) {
  const test::SmallSplit& s = test::shared_split(3, 400, 7);
  const netlist::Netlist& nl = *s.design->netlist;
  std::set<netlist::NetId> broken;
  for (const Fragment& f : s.split->fragments()) broken.insert(f.net);
  for (netlist::NetId n : broken) {
    int sources = 0;
    for (const Fragment& f : s.split->fragments()) {
      if (f.net == n && f.has_driver) ++sources;
    }
    EXPECT_EQ(sources, 1) << "net " << nl.net(n).name;
  }
}

TEST(SplitDesign, GroundTruthPointsToSameNet) {
  const test::SmallSplit& s = test::shared_split(3, 400, 7);
  for (int sink_id : s.split->sink_fragments()) {
    int source_id = s.split->positive_source_of(sink_id);
    ASSERT_GE(source_id, 0);
    EXPECT_EQ(s.split->fragment(sink_id).net,
              s.split->fragment(source_id).net);
    EXPECT_TRUE(s.split->fragment(source_id).has_driver);
  }
}

TEST(SplitDesign, SinkAndSourceSetsAreDisjoint) {
  const test::SmallSplit& s = test::shared_split(3, 400, 7);
  std::set<int> sinks(s.split->sink_fragments().begin(),
                      s.split->sink_fragments().end());
  for (int source : s.split->source_fragments()) {
    EXPECT_FALSE(sinks.contains(source));
  }
}

TEST(SplitDesign, M1SplitBreaksMoreNetsThanM3) {
  const test::SmallSplit& m1 = test::shared_split(1, 400, 7);
  const test::SmallSplit& m3 = test::shared_split(3, 400, 7);
  SplitStats s1 = m1.split->stats();
  SplitStats s3 = m3.split->stats();
  EXPECT_GT(s1.num_broken_nets, s3.num_broken_nets);
  EXPECT_GT(s1.num_sink_fragments, s3.num_sink_fragments);
  EXPECT_GT(s1.num_virtual_pins, s3.num_virtual_pins);
}

TEST(SplitDesign, StatsAreConsistent) {
  const test::SmallSplit& s = test::shared_split(3, 400, 7);
  SplitStats stats = s.split->stats();
  EXPECT_EQ(stats.num_fragments,
            static_cast<int>(s.split->fragments().size()));
  EXPECT_EQ(stats.num_sink_fragments,
            static_cast<int>(s.split->sink_fragments().size()));
  EXPECT_EQ(stats.num_source_fragments,
            static_cast<int>(s.split->source_fragments().size()));
  EXPECT_EQ(stats.num_broken_nets + stats.num_unbroken_nets,
            s.design->netlist->num_nets());
  // Virtual pins belong to fragments with matching back-references.
  for (const VirtualPin& vp : s.split->virtual_pins()) {
    const Fragment& f = s.split->fragment(vp.fragment);
    bool found = false;
    for (int id : f.virtual_pins) found |= id == vp.id;
    EXPECT_TRUE(found);
  }
}

TEST(SplitDesign, PinsPartitionAcrossFragmentsOfANet) {
  const test::SmallSplit& s = test::shared_split(3, 400, 7);
  const netlist::Netlist& nl = *s.design->netlist;
  // For each broken net: sink pins across fragments never exceed the
  // net's sinks, and driver appears in exactly one fragment.
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    if (!s.split->net_is_broken(n)) continue;
    int sink_pins = 0;
    int drivers = 0;
    for (const Fragment& f : s.split->fragments()) {
      if (f.net != n) continue;
      sink_pins += f.num_sink_pins;
      if (f.has_driver) ++drivers;
    }
    EXPECT_LE(sink_pins, static_cast<int>(nl.net(n).sinks.size()));
    EXPECT_EQ(drivers, 1);
  }
}

TEST(SplitDesign, VirtualPinStubDirectionsAreUnitAxis) {
  const test::SmallSplit& s = test::shared_split(3, 400, 7);
  for (const VirtualPin& vp : s.split->virtual_pins()) {
    for (const util::Point& d : vp.stub_directions) {
      EXPECT_EQ(std::abs(d.x) + std::abs(d.y), 1)
          << "stub direction must be a unit axis vector";
    }
  }
}

TEST(SplitDesign, FragmentWirelengthMatchesSegments) {
  const test::SmallSplit& s = test::shared_split(3, 400, 7);
  for (const Fragment& f : s.split->fragments()) {
    std::int64_t sum = 0;
    for (int layer = 1; layer <= 3; ++layer) {
      sum += f.wirelength_on(layer);
    }
    EXPECT_EQ(sum, f.total_wirelength());
  }
}

}  // namespace
}  // namespace sma::split
