// Layer tests, including numerical gradient checks — the ground truth for
// every hand-written backward pass.
#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace sma::nn {
namespace {

/// Numerical vs analytic input gradient for a layer functor.
/// `forward` must be pure given the same layer state.
template <typename Layer>
void check_input_gradient(Layer& layer, Tensor x, double tolerance = 2e-2) {
  Tensor y = layer.forward(x);
  // Loss = sum(y * c) with fixed pseudo-random coefficients.
  Tensor coeff(y.shape());
  util::Pcg32 rng(99);
  for (std::size_t i = 0; i < coeff.size(); ++i) {
    coeff[i] = static_cast<float>(rng.next_double() - 0.5);
  }
  // The loss pairs coeff[j] with y's storage element j, so dy must carry
  // y's layout tag — for a channel-major conv output the gradient of
  // that loss IS coeff laid out channel-major.
  Tensor dy = coeff;
  dy.set_layout(y.layout());
  Tensor dx = layer.backward(dy);

  const float eps = 1e-2f;
  util::Pcg32 pick(123);
  for (int trial = 0; trial < 12; ++trial) {
    std::size_t i = pick.next_below(static_cast<std::uint32_t>(x.size()));
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    Tensor yp = layer.forward(xp);
    Tensor ym = layer.forward(xm);
    double lp = 0.0;
    double lm = 0.0;
    for (std::size_t j = 0; j < yp.size(); ++j) {
      lp += static_cast<double>(yp[j]) * coeff[j];
      lm += static_cast<double>(ym[j]) * coeff[j];
    }
    double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(dx[i], numeric, tolerance)
        << "input gradient mismatch at " << i;
  }
}

TEST(Gemm, NnMatchesManual) {
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]]
  float a[] = {1, 2, 3, 4};
  float b[] = {5, 6, 7, 8};
  float c[4] = {0, 0, 0, 0};
  gemm_nn(2, 2, 2, a, b, c);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, TnMatchesNnWithTranspose) {
  // A^T stored [K=2, M=3]: effective A [3,2].
  float at[] = {1, 2, 3, 4, 5, 6};  // A = [[1,4],[2,5],[3,6]]
  float b[] = {1, 0, 0, 1};         // identity
  float c[6] = {};
  gemm_tn(3, 2, 2, at, b, c);
  EXPECT_FLOAT_EQ(c[0], 1);
  EXPECT_FLOAT_EQ(c[1], 4);
  EXPECT_FLOAT_EQ(c[2], 2);
  EXPECT_FLOAT_EQ(c[3], 5);
  EXPECT_FLOAT_EQ(c[4], 3);
  EXPECT_FLOAT_EQ(c[5], 6);
}

TEST(Gemm, NtMatchesManual) {
  // B^T stored [N=2, K=2]; B = [[5,7],[6,8]].
  float a[] = {1, 2, 3, 4};
  float bt[] = {5, 6, 7, 8};
  float c[4] = {};
  gemm_nt(2, 2, 2, a, bt, c);
  EXPECT_FLOAT_EQ(c[0], 17);
  EXPECT_FLOAT_EQ(c[1], 23);
  EXPECT_FLOAT_EQ(c[2], 39);
  EXPECT_FLOAT_EQ(c[3], 53);
}

TEST(Linear, ForwardShapeAndBias) {
  util::Pcg32 rng(1);
  Linear layer(4, 3, rng, "t");
  Tensor x({2, 4});
  x.fill(0.0f);
  Tensor y = layer.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<int>{2, 3}));
  // Zero input -> output equals bias (zero-initialized).
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 0.0f);
}

TEST(Linear, GradientCheck) {
  util::Pcg32 rng(2);
  Linear layer(5, 4, rng, "t");
  Tensor x = Tensor::randn({3, 5}, rng, 1.0);
  check_input_gradient(layer, x);
}

TEST(Linear, WeightGradientCheck) {
  util::Pcg32 rng(3);
  Linear layer(3, 2, rng, "t");
  Tensor x = Tensor::randn({2, 3}, rng, 1.0);

  std::vector<Param> params;
  layer.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  Tensor& w = *params[0].value;
  Tensor& dw = *params[0].grad;

  Tensor y = layer.forward(x);
  Tensor dy(y.shape());
  dy.fill(1.0f);
  layer.backward(dy);

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < w.size(); ++i) {
    float saved = w[i];
    w[i] = saved + eps;
    Tensor yp = layer.forward(x);
    w[i] = saved - eps;
    Tensor ym = layer.forward(x);
    w[i] = saved;
    double lp = 0.0;
    double lm = 0.0;
    for (std::size_t j = 0; j < yp.size(); ++j) {
      lp += yp[j];
      lm += ym[j];
    }
    EXPECT_NEAR(dw[i], (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST(LeakyReLU, ForwardSemantics) {
  LeakyReLU act;
  Tensor x({4});
  x[0] = 2.0f;
  x[1] = -2.0f;
  x[2] = 0.0f;
  x[3] = -100.0f;
  Tensor y = act.forward(x);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], -0.02f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[3], -1.0f);
}

TEST(LeakyReLU, BackwardMask) {
  LeakyReLU act;
  Tensor x({2});
  x[0] = 3.0f;
  x[1] = -3.0f;
  act.forward(x);
  Tensor dy({2});
  dy.fill(1.0f);
  Tensor dx = act.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[1], 0.01f);
}

TEST(Conv2d, OutputSizes) {
  util::Pcg32 rng(4);
  Conv2d stride1(3, 8, 1, rng, "c1");
  Conv2d stride3(3, 8, 3, rng, "c3");
  EXPECT_EQ(stride1.out_size(99), 99);
  EXPECT_EQ(stride3.out_size(99), 33);
  EXPECT_EQ(stride3.out_size(33), 11);
  EXPECT_EQ(stride3.out_size(11), 4);
  EXPECT_EQ(stride3.out_size(15), 5);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  util::Pcg32 rng(5);
  Conv2d conv(1, 1, 1, rng, "id");
  std::vector<Param> params;
  conv.collect_params(params);
  Tensor& w = *params[0].value;
  w.fill(0.0f);
  w[4] = 1.0f;  // center tap of the 3x3 kernel
  Tensor x = Tensor::randn({1, 1, 5, 5}, rng, 1.0);
  Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-5);
  }
}

TEST(Conv2d, GradientCheck) {
  util::Pcg32 rng(6);
  Conv2d conv(2, 3, 1, rng, "g");
  Tensor x = Tensor::randn({2, 2, 4, 4}, rng, 1.0);
  check_input_gradient(conv, x);
}

TEST(Conv2d, StridedGradientCheck) {
  util::Pcg32 rng(7);
  Conv2d conv(1, 2, 3, rng, "gs");
  Tensor x = Tensor::randn({1, 1, 7, 7}, rng, 1.0);
  check_input_gradient(conv, x);
}

TEST(GlobalAvgPool, ForwardAndBackward) {
  GlobalAvgPool pool;
  Tensor x({1, 2, 2, 2});
  for (int i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<int>{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 1.5f);  // mean of 0..3
  EXPECT_FLOAT_EQ(y[1], 5.5f);  // mean of 4..7
  Tensor dy({1, 2});
  dy[0] = 4.0f;
  dy[1] = 8.0f;
  Tensor dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[7], 2.0f);
}

TEST(LayoutContract, ConvTrunkBoundariesCarryChannelMajor) {
  // The AttackNet activation contract checked at every layer-pair
  // boundary of the conv trunk, forward and backward: the dataset input
  // and the pool->fc seam are row-major; everything between convs stays
  // channel-major, and each backward hands dx back in the layout its
  // forward consumed.
  set_conv_layout_mode(ConvLayoutMode::kChannelMajor);
  util::Pcg32 rng(42);
  Conv2d conv1(3, 6, 3, rng, "c1", Act::kLeakyReLU);
  Conv2d conv2(6, 8, 3, rng, "c2", Act::kLeakyReLU);
  GlobalAvgPool pool;
  Linear fc(8, 4, rng, "fc");

  Tensor x = Tensor::randn({2, 3, 15, 15}, rng, 1.0);
  ASSERT_EQ(x.layout(), Layout::kRowMajor);

  Tensor y1 = conv1.forward(x);
  EXPECT_EQ(y1.layout(), Layout::kChannelMajor);  // conv -> conv boundary
  Tensor y2 = conv2.forward(y1);
  EXPECT_EQ(y2.layout(), Layout::kChannelMajor);  // conv -> pool boundary
  Tensor p = pool.forward(y2);
  EXPECT_EQ(p.layout(), Layout::kRowMajor);  // pool -> fc seam
  Tensor out = fc.forward(p);
  EXPECT_EQ(out.layout(), Layout::kRowMajor);

  Tensor dout(out.shape());
  dout.fill(1.0f);
  Tensor dp = fc.backward(dout);
  EXPECT_EQ(dp.layout(), Layout::kRowMajor);  // fc seam, backward
  Tensor dy2 = pool.backward(dp);
  EXPECT_EQ(dy2.layout(), Layout::kChannelMajor);  // dx in x's own layout
  Tensor dy1 = conv2.backward(dy2);
  EXPECT_EQ(dy1.layout(), Layout::kChannelMajor);
  Tensor dx = conv1.backward(dy1);
  EXPECT_EQ(dx.layout(), Layout::kRowMajor);  // dataset seam, backward
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(LayoutContract, RowMajorCompatModeKeepsEveryBoundaryRowMajor) {
  // The A/B baseline: under kRowMajorCompat the same trunk must present
  // PR-7's all-row-major activations at every boundary.
  set_conv_layout_mode(ConvLayoutMode::kRowMajorCompat);
  util::Pcg32 rng(42);
  Conv2d conv1(3, 6, 3, rng, "c1", Act::kLeakyReLU);
  GlobalAvgPool pool;
  Tensor x = Tensor::randn({2, 3, 15, 15}, rng, 1.0);

  Tensor y1 = conv1.forward(x);
  EXPECT_EQ(y1.layout(), Layout::kRowMajor);
  Tensor p = pool.forward(y1);
  EXPECT_EQ(p.layout(), Layout::kRowMajor);
  Tensor dp(p.shape());
  dp.fill(1.0f);
  Tensor dy1 = pool.backward(dp);
  EXPECT_EQ(dy1.layout(), Layout::kRowMajor);
  Tensor dx = conv1.backward(dy1);
  EXPECT_EQ(dx.layout(), Layout::kRowMajor);
  set_conv_layout_mode(ConvLayoutMode::kChannelMajor);
}

TEST(ResBlock, IdentitySkipPath) {
  util::Pcg32 rng(8);
  ResBlock block(8, rng, "r");
  // Zero all weights: output must equal input (plus lrelu(0) = 0).
  std::vector<Param> params;
  block.collect_params(params);
  for (Param& p : params) p.value->fill(0.0f);
  Tensor x = Tensor::randn({3, 8}, rng, 1.0);
  Tensor y = block.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y[i], x[i]);
  }
}

TEST(ResBlock, GradientCheck) {
  util::Pcg32 rng(9);
  ResBlock block(6, rng, "r");
  Tensor x = Tensor::randn({2, 6}, rng, 1.0);
  check_input_gradient(block, x);
}

}  // namespace
}  // namespace sma::nn
