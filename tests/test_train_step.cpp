// The fused training-step engine's contract: one fused
// reduce + Adam + broadcast pass is byte-identical to the reference
// three-pass sequence at every lane count and every thread count, and
// pinned inference replicas are reused across attack() calls without
// changing any result.
#include "nn/train_step.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "attack/dl_attack.hpp"
#include "eval/experiment.hpp"
#include "nn/attack_net.hpp"
#include "nn/optimizer.hpp"
#include "runtime/parallel.hpp"
#include "util/rng.hpp"

namespace sma::nn {
namespace {

/// A bank of parameter tensors with private gradients.
struct ParamBank {
  std::vector<Tensor> values;
  std::vector<Tensor> grads;

  explicit ParamBank(const std::vector<std::vector<int>>& shapes,
                     util::Pcg32& rng) {
    values.reserve(shapes.size());
    grads.reserve(shapes.size());
    for (const auto& shape : shapes) {
      values.push_back(Tensor::randn(shape, rng, 0.5));
      grads.emplace_back(shape);
    }
  }

  std::vector<Param> params() {
    std::vector<Param> out;
    for (std::size_t i = 0; i < values.size(); ++i) {
      out.push_back({"p" + std::to_string(i), &values[i], &grads[i]});
    }
    return out;
  }
};

bool same_bytes(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Deterministic pseudo-gradients, identical for both banks.
void fill_grads(std::vector<Tensor>& lane_grads, util::Pcg32& rng) {
  for (Tensor& g : lane_grads) {
    for (std::size_t j = 0; j < g.size(); ++j) {
      g[j] = static_cast<float>(rng.next_gaussian());
    }
  }
}

/// Fused vs reference three-pass on raw tensors: `lanes` gradient lanes,
/// several steps (the last one with a partial batch), run serially or on
/// a pool. Master weights and every lane's weight copy must match byte
/// for byte afterwards.
void check_fused_matches_three_pass(int lanes, runtime::ThreadPool* pool) {
  // Odd sizes on purpose: no tile or grain boundary alignment.
  const std::vector<std::vector<int>> shapes = {{7, 13}, {13}, {31, 3}, {5}};
  util::Pcg32 init(2024);
  ParamBank master_a(shapes, init);
  util::Pcg32 init_b(2024);  // identical initial weights
  ParamBank master_b(shapes, init_b);

  auto make_lanes = [&](int count) {
    std::vector<ParamBank> banks;
    util::Pcg32 lane_rng(7);
    for (int l = 0; l < count; ++l) banks.emplace_back(shapes, lane_rng);
    return banks;
  };
  std::vector<ParamBank> lanes_a = make_lanes(lanes);
  std::vector<ParamBank> lanes_b = make_lanes(lanes);

  AdamConfig config;
  config.lr = 0.01;
  Adam adam_a(master_a.params(), config);

  TrainStep engine(master_b.params(), config);
  std::vector<std::vector<Param>> lane_params_b;
  for (ParamBank& lane : lanes_b) lane_params_b.push_back(lane.params());
  engine.attach_lanes(lane_params_b, /*broadcast=*/true);

  std::vector<Param> master_params_a = master_a.params();
  std::vector<std::vector<Param>> lane_params_a;
  for (ParamBank& lane : lanes_a) lane_params_a.push_back(lane.params());

  util::Pcg32 grad_rng_a(99);
  util::Pcg32 grad_rng_b(99);
  for (int step = 0; step < 5; ++step) {
    const int active = step == 4 && lanes > 1 ? lanes - 1 : lanes;
    for (int l = 0; l < active; ++l) {
      fill_grads(lanes_a[l].grads, grad_rng_a);
      fill_grads(lanes_b[l].grads, grad_rng_b);
    }

    // Reference: the PR-2 three-pass sequence (reduce in ascending lane
    // order, Adam step, broadcast to every lane).
    runtime::parallel_for(
        pool, 0, master_params_a.size(), /*grain=*/4, [&](std::size_t k) {
          float* master = master_params_a[k].grad->data();
          const std::size_t size = master_params_a[k].grad->size();
          for (int l = 0; l < active; ++l) {
            float* lane = lane_params_a[l][k].grad->data();
            for (std::size_t j = 0; j < size; ++j) {
              master[j] += lane[j];
              lane[j] = 0.0f;
            }
          }
        });
    adam_a.step(pool);
    for (int l = 0; l < lanes; ++l) {
      for (std::size_t k = 0; k < master_params_a.size(); ++k) {
        std::memcpy(lane_params_a[l][k].value->data(),
                    master_params_a[k].value->data(),
                    master_params_a[k].value->size() * sizeof(float));
      }
    }

    // Fused: one pass.
    engine.step(active, pool);
  }

  for (std::size_t k = 0; k < shapes.size(); ++k) {
    EXPECT_TRUE(same_bytes(master_a.values[k], master_b.values[k]))
        << "master param " << k << " diverged (lanes " << lanes << ")";
    EXPECT_TRUE(same_bytes(master_a.grads[k], master_b.grads[k]))
        << "master grad " << k << " not zeroed identically";
    for (int l = 0; l < lanes; ++l) {
      EXPECT_TRUE(same_bytes(lanes_a[l].values[k], lanes_b[l].values[k]))
          << "lane " << l << " param " << k << " diverged";
    }
  }
}

TEST(TrainStep, FusedMatchesThreePassAcrossLanesAndThreads) {
  for (int lanes : {1, 2, 8}) {
    check_fused_matches_three_pass(lanes, nullptr);
    runtime::ThreadPool pool(4);
    check_fused_matches_three_pass(lanes, &pool);
  }
}

TEST(TrainStep, NegativeActiveLanesThrows) {
  // A negative count is a caller bug (a miscomputed partial batch), not a
  // "no lanes active" request — silently clamping it to 0 would run a
  // spurious Adam step on zero gradients and advance the step counter.
  const std::vector<std::vector<int>> shapes = {{3, 3}};
  util::Pcg32 init(11);
  ParamBank master(shapes, init);
  TrainStep engine(master.params(), {});
  // Throws with no lanes attached...
  EXPECT_THROW(engine.step(-1, nullptr), std::invalid_argument);
  // ...and with lanes attached (where the old code clamped).
  util::Pcg32 lane_init(12);
  ParamBank lane(shapes, lane_init);
  engine.attach_lanes({lane.params()}, /*broadcast=*/true);
  EXPECT_THROW(engine.step(-3, nullptr), std::invalid_argument);
  // Zero stays valid: it means "no active lanes this step".
  EXPECT_NO_THROW(engine.step(0, nullptr));
}

TEST(TrainStep, NoLanesDegradesToAdamStep) {
  const std::vector<std::vector<int>> shapes = {{4, 4}, {9}};
  util::Pcg32 init(5);
  ParamBank a(shapes, init);
  util::Pcg32 init_b(5);
  ParamBank b(shapes, init_b);

  Adam adam(a.params(), {});
  TrainStep engine(b.params(), {});
  util::Pcg32 ga(1), gb(1);
  for (int step = 0; step < 3; ++step) {
    fill_grads(a.grads, ga);
    fill_grads(b.grads, gb);
    adam.step(nullptr);
    engine.step(/*active_lanes=*/0, nullptr);
  }
  for (std::size_t k = 0; k < shapes.size(); ++k) {
    EXPECT_TRUE(same_bytes(a.values[k], b.values[k]));
  }
}

TEST(AttackNetSharing, SharedCloneTracksMasterWeights) {
  NetConfig config;
  config.hidden = 16;
  config.vector_res_blocks = 1;
  config.merged_res_blocks = 1;
  config.use_images = false;
  AttackNet master(config);
  AttackNet replica = master.clone_shared();

  util::Pcg32 rng(3);
  QueryInput input;
  input.vec = Tensor::randn({5, 27}, rng, 1.0);

  Tensor a = master.forward(input);
  Tensor b = replica.forward(input);
  EXPECT_TRUE(same_bytes(a, b));

  // Mutate the master's weights; the replica must see the change with no
  // synchronization (it reads the same tensors).
  for (Param& p : master.params()) {
    for (std::size_t j = 0; j < p.value->size(); ++j) (*p.value)[j] += 0.25f;
  }
  Tensor a2 = master.forward(input);
  Tensor b2 = replica.forward(input);
  EXPECT_TRUE(same_bytes(a2, b2));
  EXPECT_FALSE(same_bytes(a, a2));

  // The replica's private weight storage is freed, not duplicated.
  for (Param& p : replica.params()) {
    EXPECT_EQ(p.value->size(), 0u) << p.name;
  }
}

}  // namespace
}  // namespace sma::nn

namespace sma::attack {
namespace {

/// Tiny end-to-end corpus (the determinism-test pattern): one generated
/// design, vector-only features.
eval::PreparedSplit tiny_prepared() {
  netlist::DesignProfile profile;
  profile.name = "tiny_fused";
  profile.num_inputs = 8;
  profile.num_outputs = 4;
  profile.num_gates = 280;
  return eval::prepare_split(profile, 3, layout::FlowConfig{}, 77);
}

nn::NetConfig tiny_net_config() {
  nn::NetConfig config;
  config.hidden = 16;
  config.vector_res_blocks = 1;
  config.merged_res_blocks = 1;
  config.use_images = false;
  return config;
}

std::string train_model_bytes(const eval::PreparedSplit& prepared,
                              int batch_size, bool fused,
                              runtime::ThreadPool* pool) {
  DatasetConfig dataset_config;
  dataset_config.candidates.max_candidates = 6;
  dataset_config.build_images = false;

  TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = batch_size;
  train_config.fused_step = fused;

  std::vector<QueryDataset> training;
  training.emplace_back(prepared.split.get(), dataset_config);
  std::vector<QueryDataset> validation;
  DlAttack dl(tiny_net_config());
  TrainStats stats = dl.train(training, validation, train_config, pool);
  // Guard against a vacuous pass: the tiny corpus must actually contain
  // trainable queries, or the bit-identity comparison proves nothing.
  EXPECT_GT(stats.queries_seen, 0);
  std::stringstream bytes;
  dl.net().save(bytes);
  return bytes.str();
}

TEST(FusedTraining, ModelBytesMatchThreePassAcrossLanesAndThreads) {
  eval::PreparedSplit prepared = tiny_prepared();
  for (int lanes : {1, 2, 8}) {
    const std::string unfused =
        train_model_bytes(prepared, lanes, /*fused=*/false, nullptr);
    // Fused, serial.
    EXPECT_EQ(unfused,
              train_model_bytes(prepared, lanes, /*fused=*/true, nullptr))
        << "fused != three-pass at lanes " << lanes << " (serial)";
    // Fused, pooled.
    runtime::ThreadPool pool(4);
    EXPECT_EQ(unfused,
              train_model_bytes(prepared, lanes, /*fused=*/true, &pool))
        << "fused != three-pass at lanes " << lanes << " (4 threads)";
  }
}

TEST(PinnedReplicas, AttackReusesReplicasAndStaysByteIdentical) {
  eval::PreparedSplit prepared = tiny_prepared();
  DatasetConfig dataset_config;
  dataset_config.candidates.max_candidates = 6;
  dataset_config.build_images = false;

  TrainConfig train_config;
  train_config.epochs = 2;
  train_config.batch_size = 4;

  std::vector<QueryDataset> training;
  training.emplace_back(prepared.split.get(), dataset_config);
  std::vector<QueryDataset> validation;
  DlAttack dl(tiny_net_config());
  runtime::ThreadPool pool(4);
  dl.train(training, validation, train_config, &pool);

  std::stringstream model_before;
  dl.net().save(model_before);

  QueryDataset victim(prepared.split.get(), dataset_config);
  AttackResult first = dl.attack(victim, &pool);
  const long clones_after_first = dl.inference_clones();
  EXPECT_GT(clones_after_first, 0);

  for (int round = 0; round < 3; ++round) {
    AttackResult again = dl.attack(victim, &pool);
    // Pinned: repeated calls lease the same replicas instead of cloning.
    EXPECT_EQ(dl.inference_clones(), clones_after_first);
    // And results are byte-identical call over call.
    EXPECT_EQ(again.ccr, first.ccr);
    ASSERT_EQ(again.selections.size(), first.selections.size());
    for (std::size_t i = 0; i < first.selections.size(); ++i) {
      EXPECT_EQ(again.selections[i].chosen_source,
                first.selections[i].chosen_source);
      EXPECT_EQ(again.selections[i].correct, first.selections[i].correct);
    }
  }

  // Inference must leave the trained model untouched.
  std::stringstream model_after;
  dl.net().save(model_after);
  EXPECT_EQ(model_before.str(), model_after.str());

  // Serial attack (no pool) must agree with the replica-served one — the
  // determinism contract across execution modes.
  AttackResult serial = dl.attack(victim, nullptr);
  EXPECT_EQ(serial.ccr, first.ccr);
}

}  // namespace
}  // namespace sma::attack
