#include "route/router.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "netlist/generator.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "test_support.hpp"

namespace sma::route {
namespace {

struct Routed {
  netlist::Netlist nl;
  place::Floorplan fp;
  std::unique_ptr<place::Placement> placement;
  tech::LayerStack stack = tech::LayerStack::nangate45_like();
  std::unique_ptr<RoutingGrid> grid;
  RoutingResult result;
};

Routed route_small(int gates = 80, std::uint64_t seed = 5,
                   runtime::ThreadPool* pool = nullptr,
                   const RouterConfig& config = {}) {
  netlist::GeneratorConfig generator;
  generator.num_inputs = 8;
  generator.num_outputs = 4;
  generator.num_gates = gates;
  generator.seed = seed;
  Routed r{netlist::generate_netlist(generator, "r", &sma::test::library()),
           {},
           nullptr};
  r.fp = place::make_floorplan(r.nl);
  r.placement = std::make_unique<place::Placement>(&r.nl, r.fp);
  place::run_global_placement(*r.placement);
  place::run_legalization(*r.placement);
  r.grid = std::make_unique<RoutingGrid>(&r.stack, r.fp.die);
  r.result = route_design(*r.placement, *r.grid, config, pool);
  return r;
}

/// Full structural equality of two routing results (edges, geometry,
/// aggregates) — the byte-identity the wave determinism contract promises.
void expect_identical(const RoutingResult& a, const RoutingResult& b) {
  ASSERT_EQ(a.routes.size(), b.routes.size());
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.total_vias, b.total_vias);
  EXPECT_EQ(a.final_overflow, b.final_overflow);
  EXPECT_EQ(a.fallback_routes, b.fallback_routes);
  for (std::size_t n = 0; n < a.routes.size(); ++n) {
    const NetRoute& ra = a.routes[n];
    const NetRoute& rb = b.routes[n];
    ASSERT_EQ(ra.grid_edges.size(), rb.grid_edges.size()) << "net " << n;
    for (std::size_t e = 0; e < ra.grid_edges.size(); ++e) {
      EXPECT_EQ(ra.grid_edges[e].from, rb.grid_edges[e].from)
          << "net " << n << " edge " << e;
      EXPECT_EQ(ra.grid_edges[e].dir, rb.grid_edges[e].dir)
          << "net " << n << " edge " << e;
    }
    EXPECT_EQ(ra.segments, rb.segments) << "net " << n;
    EXPECT_EQ(ra.vias, rb.vias) << "net " << n;
  }
}

/// Every routed net must form a connected tree over its pin nodes, using
/// only edges that exist in `grid`.
void expect_connected(const netlist::Netlist& nl, const RoutingGrid& grid,
                      const RoutingResult& result) {
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const NetRoute& route = result.routes[n];
    if (route.pin_nodes.size() < 2) continue;

    std::map<std::size_t, std::vector<std::size_t>> adj;
    for (const GridEdge& e : route.grid_edges) {
      ASSERT_TRUE(grid.has_neighbor(e.from, e.dir))
          << "net " << nl.net(n).name << " uses a nonexistent edge";
      std::size_t a = grid.node_index(e.from);
      std::size_t b = grid.node_index(grid.neighbor(e.from, e.dir));
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
    // BFS from the first pin.
    std::set<std::size_t> reached;
    std::vector<std::size_t> stack = {grid.node_index(route.pin_nodes[0])};
    reached.insert(stack[0]);
    while (!stack.empty()) {
      std::size_t v = stack.back();
      stack.pop_back();
      for (std::size_t w : adj[v]) {
        if (reached.insert(w).second) stack.push_back(w);
      }
    }
    for (const GridCoord& pin : route.pin_nodes) {
      EXPECT_TRUE(reached.contains(grid.node_index(pin)))
          << "net " << nl.net(n).name << " pin unreachable";
    }
  }
}

void check_connectivity(const Routed& r) {
  expect_connected(r.nl, *r.grid, r.result);
}

TEST(Router, AllNetsConnected) {
  Routed r = route_small();
  check_connectivity(r);
}

TEST(Router, UsageMatchesRoutes) {
  Routed r = route_small();
  // Sum of per-net edges must equal total grid usage.
  long route_edges = 0;
  for (const NetRoute& route : r.result.routes) {
    route_edges += static_cast<long>(route.grid_edges.size());
  }
  long usage = 0;
  for (std::size_t i = 0; i < r.grid->num_nodes(); ++i) {
    GridCoord c = r.grid->coord_of(i);
    if (r.grid->has_neighbor(c, Dir::kEast)) {
      usage += r.grid->usage(c, Dir::kEast);
    }
    if (r.grid->has_neighbor(c, Dir::kNorth)) {
      usage += r.grid->usage(c, Dir::kNorth);
    }
    if (r.grid->has_neighbor(c, Dir::kUp)) usage += r.grid->usage(c, Dir::kUp);
  }
  EXPECT_EQ(route_edges, usage);
}

TEST(Router, GeometryMatchesGridEdges) {
  Routed r = route_small();
  for (const NetRoute& route : r.result.routes) {
    // Total segment length equals planar step count * gcell size.
    long planar = 0;
    long vias = 0;
    for (const GridEdge& e : route.grid_edges) {
      if (e.dir == Dir::kUp || e.dir == Dir::kDown) {
        ++vias;
      } else {
        ++planar;
      }
    }
    EXPECT_EQ(route.total_wirelength(),
              planar * r.grid->gcell_size());
    EXPECT_EQ(static_cast<long>(route.vias.size()), vias);
  }
}

TEST(Router, WirelengthTracksPlacementHpwl) {
  Routed r = route_small();
  std::int64_t hpwl = r.placement->total_hpwl();
  // Routed length >= HPWL-ish and below a generous detour factor.
  EXPECT_GT(r.result.total_wirelength, hpwl / 4);
  EXPECT_LT(r.result.total_wirelength, hpwl * 4);
}

TEST(Router, PreferredDirectionDominates) {
  Routed r = route_small(120, 9);
  long preferred = 0;
  long wrongway = 0;
  for (const NetRoute& route : r.result.routes) {
    for (const RouteSegment& s : route.segments) {
      bool horizontal = s.is_horizontal();
      bool pref = (r.stack.preferred(s.layer) == util::Axis::kHorizontal) ==
                  horizontal;
      if (s.a == s.b) continue;
      (pref ? preferred : wrongway) += s.length();
    }
  }
  EXPECT_GT(preferred, 3 * wrongway);
}

TEST(Router, LowOverflowOnUncongestedDesign) {
  Routed r = route_small();
  EXPECT_LE(r.result.final_overflow, 5);
}

TEST(Router, DeterministicAcrossRuns) {
  Routed a = route_small(60, 77);
  Routed b = route_small(60, 77);
  ASSERT_EQ(a.result.routes.size(), b.result.routes.size());
  EXPECT_EQ(a.result.total_wirelength, b.result.total_wirelength);
  EXPECT_EQ(a.result.total_vias, b.result.total_vias);
  for (std::size_t i = 0; i < a.result.routes.size(); ++i) {
    EXPECT_EQ(a.result.routes[i].grid_edges.size(),
              b.result.routes[i].grid_edges.size());
  }
}

// --- wave determinism contract -----------------------------------------

TEST(Router, ParallelWavesBitIdenticalToSerial) {
  // Two design profiles, threads {1, 2, 4}: the wave schedule is a
  // property of the config, so every pool size must reproduce the serial
  // routes edge-for-edge.
  struct Profile {
    int gates;
    std::uint64_t seed;
  };
  for (const Profile& p : {Profile{80, 5}, Profile{150, 9}}) {
    Routed serial = route_small(p.gates, p.seed);
    for (int threads : {2, 4}) {
      runtime::ThreadPool pool(threads - 1);
      Routed parallel = route_small(p.gates, p.seed, &pool);
      SCOPED_TRACE(testing::Message()
                   << "gates " << p.gates << ", threads " << threads);
      expect_identical(serial.result, parallel.result);
    }
  }
}

TEST(Router, WaveScheduleStableAcrossRuns) {
  // Same binary, same config, two runs (one serial, two pooled): the
  // schedule must not depend on any run-to-run state.
  runtime::ThreadPool pool(3);
  Routed first = route_small(60, 77, &pool);
  Routed second = route_small(60, 77, &pool);
  expect_identical(first.result, second.result);
}

TEST(Router, WaveSizeOneMatchesLegacySequentialSchedule) {
  // wave_size = 1 is the pre-wave router: every net sees all previously
  // committed nets. It differs from the default wave schedule in general
  // but must itself be deterministic and parallel-invariant (each wave
  // holds a single net, so the pool has nothing to reorder).
  RouterConfig sequential;
  sequential.wave_size = 1;
  Routed serial = route_small(100, 21, nullptr, sequential);
  runtime::ThreadPool pool(2);
  Routed parallel = route_small(100, 21, &pool, sequential);
  expect_identical(serial.result, parallel.result);
}

TEST(Router, RejectsNonPositiveWaveSize) {
  netlist::GeneratorConfig generator;
  generator.num_inputs = 4;
  generator.num_outputs = 2;
  generator.num_gates = 10;
  netlist::Netlist nl =
      netlist::generate_netlist(generator, "w", &sma::test::library());
  place::Floorplan fp = place::make_floorplan(nl);
  place::Placement placement(&nl, fp);
  place::run_global_placement(placement);
  tech::LayerStack stack = tech::LayerStack::nangate45_like();
  RoutingGrid grid(&stack, fp.die);
  RouterConfig config;
  config.wave_size = 0;
  EXPECT_THROW(route_design(placement, grid, config), std::invalid_argument);
}

// --- fallback-route termination (regression) ---------------------------

TEST(Router, FallbackTerminatesOnTwoLayerGrid) {
  // max_expansions = 0 forces every connection through the L-shape
  // fallback. On a 2-layer stack the fallback's "climb to M3" leg can
  // never complete; the old unconditional `while (layer < 3) step(kUp)`
  // spun forever once the step was blocked. The legs must bail out when
  // blocked and still deliver a connected route.
  std::vector<tech::LayerInfo> layers = {
      {"M1", util::Axis::kHorizontal, 140, 0.2, 3.0},
      {"M2", util::Axis::kVertical, 140, 0.2, 3.0},
  };
  tech::LayerStack two_layer(layers);

  netlist::GeneratorConfig generator;
  generator.num_inputs = 6;
  generator.num_outputs = 3;
  generator.num_gates = 40;
  generator.seed = 3;
  netlist::Netlist nl =
      netlist::generate_netlist(generator, "two", &sma::test::library());
  place::Floorplan fp = place::make_floorplan(nl);
  place::Placement placement(&nl, fp);
  place::run_global_placement(placement);
  place::run_legalization(placement);

  RoutingGrid grid(&two_layer, fp.die);
  RouterConfig config;
  config.max_expansions = 0;  // A* always gives up -> fallback every leg
  RoutingResult result = route_design(placement, grid, config);

  EXPECT_GT(result.fallback_routes, 0);
  // Every multi-pin net still forms a connected tree over its pins.
  expect_connected(nl, grid, result);
}

// --- zero-capacity edge costs (regression) -----------------------------

TEST(Router, ZeroWrongwayCapacityRoutesWithoutNanCosts) {
  // wrongway_capacity = 0 is a legal "no wrong-way tracks" config. The
  // old edge cost divided usage by the zero capacity, and the resulting
  // NaN broke the A* ordering; now such edges carry a finite overflow
  // surcharge and routing completes connected and deterministically.
  netlist::GeneratorConfig generator;
  generator.num_inputs = 8;
  generator.num_outputs = 4;
  generator.num_gates = 80;
  generator.seed = 5;
  netlist::Netlist nl =
      netlist::generate_netlist(generator, "zw", &sma::test::library());
  place::Floorplan fp = place::make_floorplan(nl);
  place::Placement placement(&nl, fp);
  place::run_global_placement(placement);
  place::run_legalization(placement);

  tech::LayerStack stack = tech::LayerStack::nangate45_like();
  RoutingGrid::Config grid_config;
  grid_config.wrongway_capacity = 0;
  RoutingGrid grid_a(&stack, fp.die, grid_config);
  RoutingResult a = route_design(placement, grid_a);
  RoutingGrid grid_b(&stack, fp.die, grid_config);
  RoutingResult b = route_design(placement, grid_b);
  expect_identical(a, b);

  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const NetRoute& route = a.routes[n];
    if (route.pin_nodes.size() < 2) continue;
    EXPECT_FALSE(route.grid_edges.empty()) << "net " << nl.net(n).name;
  }
}

TEST(NetRoute, PerLayerAccounting) {
  Routed r = route_small();
  for (const NetRoute& route : r.result.routes) {
    std::int64_t sum = 0;
    for (int layer = 1; layer <= 6; ++layer) {
      sum += route.wirelength_on(layer);
    }
    EXPECT_EQ(sum, route.total_wirelength());
    int via_sum = 0;
    for (int cut = 1; cut <= 5; ++cut) via_sum += route.vias_on(cut);
    EXPECT_EQ(via_sum, static_cast<int>(route.vias.size()));
  }
}

}  // namespace
}  // namespace sma::route
