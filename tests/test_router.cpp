#include "route/router.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "netlist/generator.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "test_support.hpp"

namespace sma::route {
namespace {

struct Routed {
  netlist::Netlist nl;
  place::Floorplan fp;
  std::unique_ptr<place::Placement> placement;
  tech::LayerStack stack = tech::LayerStack::nangate45_like();
  std::unique_ptr<RoutingGrid> grid;
  RoutingResult result;
};

Routed route_small(int gates = 80, std::uint64_t seed = 5) {
  netlist::GeneratorConfig config;
  config.num_inputs = 8;
  config.num_outputs = 4;
  config.num_gates = gates;
  config.seed = seed;
  Routed r{netlist::generate_netlist(config, "r", &sma::test::library()),
           {},
           nullptr};
  r.fp = place::make_floorplan(r.nl);
  r.placement = std::make_unique<place::Placement>(&r.nl, r.fp);
  place::run_global_placement(*r.placement);
  place::run_legalization(*r.placement);
  r.grid = std::make_unique<RoutingGrid>(&r.stack, r.fp.die);
  r.result = route_design(*r.placement, *r.grid);
  return r;
}

/// Every routed net must form a connected tree over its pin nodes.
void check_connectivity(const Routed& r) {
  for (netlist::NetId n = 0; n < r.nl.num_nets(); ++n) {
    const NetRoute& route = r.result.routes[n];
    if (route.pin_nodes.size() < 2) continue;

    std::set<std::size_t> nodes;
    std::map<std::size_t, std::vector<std::size_t>> adj;
    for (const GridEdge& e : route.grid_edges) {
      std::size_t a = r.grid->node_index(e.from);
      std::size_t b = r.grid->node_index(r.grid->neighbor(e.from, e.dir));
      nodes.insert(a);
      nodes.insert(b);
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
    // BFS from the first pin.
    std::set<std::size_t> reached;
    std::vector<std::size_t> stack = {r.grid->node_index(route.pin_nodes[0])};
    reached.insert(stack[0]);
    while (!stack.empty()) {
      std::size_t v = stack.back();
      stack.pop_back();
      for (std::size_t w : adj[v]) {
        if (reached.insert(w).second) stack.push_back(w);
      }
    }
    for (const GridCoord& pin : route.pin_nodes) {
      EXPECT_TRUE(reached.contains(r.grid->node_index(pin)))
          << "net " << r.nl.net(n).name << " pin unreachable";
    }
  }
}

TEST(Router, AllNetsConnected) {
  Routed r = route_small();
  check_connectivity(r);
}

TEST(Router, UsageMatchesRoutes) {
  Routed r = route_small();
  // Sum of per-net edges must equal total grid usage.
  long route_edges = 0;
  for (const NetRoute& route : r.result.routes) {
    route_edges += static_cast<long>(route.grid_edges.size());
  }
  long usage = 0;
  for (std::size_t i = 0; i < r.grid->num_nodes(); ++i) {
    GridCoord c = r.grid->coord_of(i);
    if (r.grid->has_neighbor(c, Dir::kEast)) {
      usage += r.grid->usage(c, Dir::kEast);
    }
    if (r.grid->has_neighbor(c, Dir::kNorth)) {
      usage += r.grid->usage(c, Dir::kNorth);
    }
    if (r.grid->has_neighbor(c, Dir::kUp)) usage += r.grid->usage(c, Dir::kUp);
  }
  EXPECT_EQ(route_edges, usage);
}

TEST(Router, GeometryMatchesGridEdges) {
  Routed r = route_small();
  for (const NetRoute& route : r.result.routes) {
    // Total segment length equals planar step count * gcell size.
    long planar = 0;
    long vias = 0;
    for (const GridEdge& e : route.grid_edges) {
      if (e.dir == Dir::kUp || e.dir == Dir::kDown) {
        ++vias;
      } else {
        ++planar;
      }
    }
    EXPECT_EQ(route.total_wirelength(),
              planar * r.grid->gcell_size());
    EXPECT_EQ(static_cast<long>(route.vias.size()), vias);
  }
}

TEST(Router, WirelengthTracksPlacementHpwl) {
  Routed r = route_small();
  std::int64_t hpwl = r.placement->total_hpwl();
  // Routed length >= HPWL-ish and below a generous detour factor.
  EXPECT_GT(r.result.total_wirelength, hpwl / 4);
  EXPECT_LT(r.result.total_wirelength, hpwl * 4);
}

TEST(Router, PreferredDirectionDominates) {
  Routed r = route_small(120, 9);
  long preferred = 0;
  long wrongway = 0;
  for (const NetRoute& route : r.result.routes) {
    for (const RouteSegment& s : route.segments) {
      bool horizontal = s.is_horizontal();
      bool pref = (r.stack.preferred(s.layer) == util::Axis::kHorizontal) ==
                  horizontal;
      if (s.a == s.b) continue;
      (pref ? preferred : wrongway) += s.length();
    }
  }
  EXPECT_GT(preferred, 3 * wrongway);
}

TEST(Router, LowOverflowOnUncongestedDesign) {
  Routed r = route_small();
  EXPECT_LE(r.result.final_overflow, 5);
}

TEST(Router, DeterministicAcrossRuns) {
  Routed a = route_small(60, 77);
  Routed b = route_small(60, 77);
  ASSERT_EQ(a.result.routes.size(), b.result.routes.size());
  EXPECT_EQ(a.result.total_wirelength, b.result.total_wirelength);
  EXPECT_EQ(a.result.total_vias, b.result.total_vias);
  for (std::size_t i = 0; i < a.result.routes.size(); ++i) {
    EXPECT_EQ(a.result.routes[i].grid_edges.size(),
              b.result.routes[i].grid_edges.size());
  }
}

TEST(NetRoute, PerLayerAccounting) {
  Routed r = route_small();
  for (const NetRoute& route : r.result.routes) {
    std::int64_t sum = 0;
    for (int layer = 1; layer <= 6; ++layer) {
      sum += route.wirelength_on(layer);
    }
    EXPECT_EQ(sum, route.total_wirelength());
    int via_sum = 0;
    for (int cut = 1; cut <= 5; ++cut) via_sum += route.vias_on(cut);
    EXPECT_EQ(via_sum, static_cast<int>(route.vias.size()));
  }
}

}  // namespace
}  // namespace sma::route
