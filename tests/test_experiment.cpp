#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sma::eval {
namespace {

/// Very small profiles so the end-to-end experiment stays fast in CI.
std::vector<netlist::DesignProfile> tiny_designs() {
  std::vector<netlist::DesignProfile> designs;
  netlist::DesignProfile a;
  a.name = "tiny_a";
  a.num_inputs = 8;
  a.num_outputs = 4;
  a.num_gates = 300;
  designs.push_back(a);
  netlist::DesignProfile b = a;
  b.name = "tiny_b";
  b.num_gates = 260;
  designs.push_back(b);
  return designs;
}

ExperimentProfile tiny_profile() {
  ExperimentProfile p = ExperimentProfile::fast();
  p.dataset.candidates.max_candidates = 6;
  p.dataset.images.size = 9;
  p.dataset.images.pixel_sizes = {200, 400};
  p.net.hidden = 16;
  p.net.vector_res_blocks = 1;
  p.net.merged_res_blocks = 1;
  p.net.conv_channels = {4, 6, 8, 10};
  p.net.image_fc = 16;
  p.train.epochs = 2;
  p.train.max_queries_per_design = 40;
  return p;
}

TEST(Experiment, PrepareSplitProducesConsistentDesign) {
  netlist::DesignProfile profile = tiny_designs()[0];
  PreparedSplit prepared =
      prepare_split(profile, 3, layout::FlowConfig{}, 42);
  EXPECT_EQ(prepared.name, "tiny_a");
  EXPECT_TRUE(prepared.design->netlist->validate().empty());
  EXPECT_GT(prepared.split->sink_fragments().size(), 0u);
  EXPECT_GT(prepared.split->source_fragments().size(), 0u);
}

TEST(Experiment, ProfilesDifferInFidelity) {
  ExperimentProfile fast = ExperimentProfile::fast();
  ExperimentProfile paper = ExperimentProfile::paper();
  EXPECT_LT(fast.dataset.images.size, paper.dataset.images.size);
  EXPECT_EQ(paper.dataset.candidates.max_candidates, 31);
  EXPECT_EQ(paper.dataset.images.size, 99);
  EXPECT_EQ(paper.dataset.images.pixel_sizes,
            (std::vector<std::int64_t>{50, 100, 200}));
  EXPECT_EQ(paper.net.conv_channels, (std::array<int, 4>{16, 32, 64, 128}));
}

// NOTE: this is a miniature end-to-end run of the whole paper pipeline —
// training designs through physical design, split, DL training, and both
// attacks. Kept tiny; the bench binaries run the real thing.
TEST(Experiment, Table3EndToEndTiny) {
  // Use the tiny training corpus: swap in tiny profiles by running the
  // pipeline pieces directly.
  ExperimentProfile profile = tiny_profile();
  layout::FlowConfig flow;

  // Train on one tiny design.
  PreparedSplit train_split =
      prepare_split(tiny_designs()[0], 3, flow, 7);
  attack::DatasetConfig dataset_config = profile.dataset;
  std::vector<attack::QueryDataset> training;
  training.emplace_back(train_split.split.get(), dataset_config);
  std::vector<attack::QueryDataset> validation;

  nn::NetConfig net_config = profile.net;
  net_config.image_channels =
      static_cast<int>(profile.dataset.images.pixel_sizes.size());
  attack::DlAttack dl(net_config);
  dl.train(training, validation, profile.train);

  // Attack the other tiny design.
  PreparedSplit victim = prepare_split(tiny_designs()[1], 3, flow, 8);
  attack::QueryDataset victim_data(victim.split.get(), dataset_config);
  attack::AttackResult dl_result = dl.attack(victim_data);
  EXPECT_GE(dl_result.ccr, 0.0);
  EXPECT_LE(dl_result.ccr, 1.0);

  attack::AttackResult flow_result =
      attack::run_flow_attack(*victim.split, profile.flow_attack);
  EXPECT_FALSE(flow_result.timed_out);
}

TEST(Experiment, Figure5ConcurrentSettingsMatchSerial) {
  // run_figure5 trains its three settings as one TaskGroup when the
  // profile resolves > 1 thread; the rows must match a 1-thread run
  // bitwise (settings are independent and slot-addressed).
  layout::FlowConfig flow;
  std::vector<netlist::DesignProfile> victims = {tiny_designs()[0]};

  ExperimentProfile serial_profile = tiny_profile();
  serial_profile.runtime.threads = 1;
  std::vector<AblationRow> serial =
      run_figure5(serial_profile, flow, victims, 2019);

  ExperimentProfile parallel_profile = tiny_profile();
  parallel_profile.runtime.threads = 4;
  std::vector<AblationRow> parallel =
      run_figure5(parallel_profile, flow, victims, 2019);

  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  EXPECT_EQ(serial[0].setting, "two-class");
  EXPECT_EQ(serial[1].setting, "vec");
  EXPECT_EQ(serial[2].setting, "vec+img");
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].setting, parallel[i].setting);
    // Bit-identical CCRs: the determinism contract across thread counts.
    EXPECT_EQ(serial[i].avg_ccr, parallel[i].avg_ccr)
        << "setting " << serial[i].setting;
  }
}

TEST(Experiment, FinalizeAveragesSkipsTimeouts) {
  Table3Result result;
  Table3Row a;
  a.flow_ccr = 0.5;
  a.dl_ccr = 0.6;
  a.flow_seconds = 10;
  a.dl_seconds = 1;
  result.rows.push_back(a);
  Table3Row b;
  b.flow_timed_out = true;
  b.dl_ccr = 0.4;
  b.dl_seconds = 2;
  result.rows.push_back(b);
  finalize_averages(result);
  EXPECT_DOUBLE_EQ(result.avg_flow_ccr, 0.5);
  EXPECT_DOUBLE_EQ(result.avg_dl_ccr, 0.6);  // only non-timeout rows
  EXPECT_DOUBLE_EQ(result.avg_dl_seconds, 1.5);
}

}  // namespace
}  // namespace sma::eval
