#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "eval/experiment.hpp"

namespace sma::runtime {
namespace {

TEST(ThreadPool, StartupShutdownAcrossSizes) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::atomic<int> ran{0};
    TaskGroup group(&pool);
    for (int i = 0; i < 3 * threads; ++i) {
      group.run([&ran] { ran.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(ran.load(), 3 * threads);
  }
  // Idle pools must tear down cleanly too.
  ThreadPool idle(3);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(Config, ResolvesThreads) {
  Config config;
  EXPECT_GE(config.resolved(), 1);
  config.threads = 5;
  EXPECT_EQ(config.resolved(), 5);
  config.threads = 1;
  EXPECT_EQ(config.make_pool(), nullptr);  // serial = no pool
  // The calling thread is always a worker, so a pool for N total compute
  // threads holds N - 1 pool workers.
  config.threads = 2;
  auto pool = config.make_pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 1);
  config.threads = 4;
  EXPECT_EQ(config.make_pool()->num_threads(), 3);
}

TEST(ParallelFor, EmptyRangeDoesNothing) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(&pool, 5, 5, 1, [&calls](std::size_t) { ++calls; });
  parallel_for(&pool, 7, 3, 1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleItem) {
  ThreadPool pool(4);
  std::vector<int> hits(1, 0);
  parallel_for(&pool, 0, 1, 1, [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(hits[0], 1);
}

TEST(ParallelFor, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<int> out(3, 0);
  parallel_for(&pool, 0, 3, 1,
               [&out](std::size_t i) { out[i] = static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{1000}}) {
    std::vector<int> counts(257, 0);
    parallel_for(&pool, 0, counts.size(), grain,
                 [&counts](std::size_t i) { ++counts[i]; });
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 257)
        << "grain " << grain;
    for (int c : counts) EXPECT_EQ(c, 1);
  }
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<int> out(10, 0);
  parallel_for(nullptr, 0, out.size(), 3,
               [&out](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 0, 100, 1,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must remain usable after a failed loop.
  std::atomic<int> ran{0};
  parallel_for(&pool, 0, 8, 1, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.run([] { throw std::logic_error("task failed"); });
  group.run([] {});
  EXPECT_THROW(group.wait(), std::logic_error);
  // wait() after the throw is idempotent.
  group.wait();
}

TEST(TaskGroup, InlineExecutionWithoutPool) {
  TaskGroup group(nullptr);
  int ran = 0;
  group.run([&ran] { ++ran; });
  group.run([&ran] { ++ran; });
  group.wait();
  EXPECT_EQ(ran, 2);
}

TEST(ParallelMap, ResultsLandInSlots) {
  ThreadPool pool(4);
  std::vector<int> squares =
      parallel_map(&pool, 20, [](std::size_t i) -> int {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(squares.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  ThreadPool pool(2);
  std::vector<std::vector<int>> out(6);
  parallel_for(&pool, 0, out.size(), 1, [&](std::size_t i) {
    out[i].assign(32, 0);
    parallel_for(&pool, 0, out[i].size(), 4, [&out, i](std::size_t j) {
      out[i][j] = static_cast<int>(i * 100 + j);
    });
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = 0; j < out[i].size(); ++j) {
      EXPECT_EQ(out[i][j], static_cast<int>(i * 100 + j));
    }
  }
}

TEST(TaskRng, PureFunctionOfSeedAndIndex) {
  util::Pcg32 a = task_rng(42, 7);
  util::Pcg32 b = task_rng(42, 7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());

  // Distinct indices decorrelate.
  util::Pcg32 c = task_rng(42, 8);
  util::Pcg32 d = task_rng(42, 7);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c.next_u32() == d.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

// ---- determinism of the parallel experiment pipeline -------------------

/// A reduced Table-3 configuration: real 9-design training corpus, tiny
/// net/images so the double run stays test-sized.
eval::ExperimentProfile determinism_profile(int threads) {
  eval::ExperimentProfile p = eval::ExperimentProfile::fast();
  p.dataset.candidates.max_candidates = 6;
  p.dataset.images.size = 9;
  p.dataset.images.pixel_sizes = {200, 400};
  p.net.hidden = 16;
  p.net.vector_res_blocks = 1;
  p.net.merged_res_blocks = 1;
  p.net.conv_channels = {4, 6, 8, 10};
  p.net.image_fc = 16;
  p.train.epochs = 2;
  p.train.max_queries_per_design = 20;
  p.train.batch_size = 4;
  p.flow_attack.timeout_seconds = 1e6;  // no time-dependent behavior
  p.runtime.threads = threads;
  return p;
}

std::vector<netlist::DesignProfile> determinism_designs() {
  std::vector<netlist::DesignProfile> designs;
  netlist::DesignProfile a;
  a.name = "tiny_a";
  a.num_inputs = 8;
  a.num_outputs = 4;
  a.num_gates = 300;
  designs.push_back(a);
  netlist::DesignProfile b = a;
  b.name = "tiny_b";
  b.num_gates = 260;
  designs.push_back(b);
  return designs;
}

TEST(Determinism, ParallelTable3MatchesSerialRowForRow) {
  const std::vector<netlist::DesignProfile> designs = determinism_designs();
  layout::FlowConfig flow;

  eval::Table3Result serial =
      eval::run_table3(3, determinism_profile(1), flow, designs, 2019);
  eval::Table3Result parallel =
      eval::run_table3(3, determinism_profile(4), flow, designs, 2019);

  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const eval::Table3Row& s = serial.rows[i];
    const eval::Table3Row& p = parallel.rows[i];
    EXPECT_EQ(s.design, p.design);
    EXPECT_EQ(s.num_sink_fragments, p.num_sink_fragments);
    EXPECT_EQ(s.num_source_fragments, p.num_source_fragments);
    // Bit-identical CCRs, not just approximately equal: the parallel
    // runtime's determinism contract.
    EXPECT_EQ(s.dl_ccr, p.dl_ccr) << "row " << s.design;
    EXPECT_EQ(s.flow_ccr, p.flow_ccr) << "row " << s.design;
    EXPECT_EQ(s.hit_rate, p.hit_rate) << "row " << s.design;
    EXPECT_EQ(s.flow_timed_out, p.flow_timed_out);
  }
  EXPECT_EQ(serial.avg_dl_ccr, parallel.avg_dl_ccr);
  EXPECT_EQ(serial.avg_flow_ccr, parallel.avg_flow_ccr);
}

TEST(Determinism, LaneParallelTrainingMatchesSerial) {
  // Same model trained twice with batch lanes — once serially, once on a
  // pool — must serialize to identical bytes.
  const std::vector<netlist::DesignProfile> designs = determinism_designs();
  layout::FlowConfig flow;
  eval::PreparedSplit prepared =
      eval::prepare_split(designs[0], 3, flow, 77);

  attack::DatasetConfig dataset_config;
  dataset_config.candidates.max_candidates = 6;
  dataset_config.build_images = false;

  nn::NetConfig net_config;
  net_config.hidden = 16;
  net_config.vector_res_blocks = 1;
  net_config.merged_res_blocks = 1;
  net_config.use_images = false;

  attack::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = 4;

  auto run = [&](ThreadPool* pool) {
    std::vector<attack::QueryDataset> training;
    training.emplace_back(prepared.split.get(), dataset_config);
    std::vector<attack::QueryDataset> validation;
    attack::DlAttack dl(net_config);
    attack::TrainStats stats =
        dl.train(training, validation, train_config, pool);
    std::stringstream bytes;
    dl.net().save(bytes);
    return std::make_pair(stats.epoch_loss, bytes.str());
  };

  auto [serial_loss, serial_bytes] = run(nullptr);
  ThreadPool pool(4);
  auto [parallel_loss, parallel_bytes] = run(&pool);

  EXPECT_EQ(serial_loss, parallel_loss);
  EXPECT_EQ(serial_bytes, parallel_bytes);
}

}  // namespace
}  // namespace sma::runtime
