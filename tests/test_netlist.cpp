#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sma::netlist {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : nl_("t", &test::library()) {}
  Netlist nl_;
};

TEST_F(NetlistTest, BuildTinyCircuit) {
  PortId in_a = nl_.add_port("a", PortDirection::kInput);
  PortId in_b = nl_.add_port("b", PortDirection::kInput);
  PortId out = nl_.add_port("z", PortDirection::kOutput);
  int nand2 = *test::library().find("NAND2_X1");
  CellId g = nl_.add_cell("g1", nand2);

  NetId na = nl_.add_net("a");
  NetId nb = nl_.add_net("b");
  NetId nz = nl_.add_net("z");

  const tech::LibCell& lib = test::library().cell(nand2);
  auto inputs = lib.input_pins();
  nl_.connect(na, PinRef::port(in_a));
  nl_.connect(na, PinRef::cell_pin(g, inputs[0]));
  nl_.connect(nb, PinRef::port(in_b));
  nl_.connect(nb, PinRef::cell_pin(g, inputs[1]));
  nl_.connect(nz, PinRef::cell_pin(g, lib.output_pin()));
  nl_.connect(nz, PinRef::port(out));

  EXPECT_TRUE(nl_.validate().empty());
  EXPECT_EQ(nl_.num_cells(), 1);
  EXPECT_EQ(nl_.num_nets(), 3);
  EXPECT_EQ(nl_.num_ports(), 3);
  EXPECT_EQ(nl_.net(na).sinks.size(), 1u);
  EXPECT_TRUE(nl_.net(na).has_driver());
  EXPECT_TRUE(nl_.net(na).driver.is_port());
  EXPECT_FALSE(nl_.net(nz).driver.is_port());
}

TEST_F(NetlistTest, DuplicateNamesRejected) {
  nl_.add_port("p", PortDirection::kInput);
  EXPECT_THROW(nl_.add_port("p", PortDirection::kOutput),
               std::invalid_argument);
  nl_.add_net("n");
  EXPECT_THROW(nl_.add_net("n"), std::invalid_argument);
  nl_.add_cell("c", 0);
  EXPECT_THROW(nl_.add_cell("c", 0), std::invalid_argument);
}

TEST_F(NetlistTest, DoubleDriverRejected) {
  PortId a = nl_.add_port("a", PortDirection::kInput);
  PortId b = nl_.add_port("b", PortDirection::kInput);
  NetId n = nl_.add_net("n");
  nl_.connect(n, PinRef::port(a));
  EXPECT_THROW(nl_.connect(n, PinRef::port(b)), std::logic_error);
}

TEST_F(NetlistTest, DoubleConnectRejected) {
  PortId a = nl_.add_port("a", PortDirection::kInput);
  NetId n1 = nl_.add_net("n1");
  NetId n2 = nl_.add_net("n2");
  nl_.connect(n1, PinRef::port(a));
  EXPECT_THROW(nl_.connect(n2, PinRef::port(a)), std::logic_error);
}

TEST_F(NetlistTest, ValidateReportsProblems) {
  NetId n = nl_.add_net("floating");
  (void)n;
  CellId c = nl_.add_cell("open_cell", *test::library().find("INV_X1"));
  (void)c;
  auto problems = nl_.validate();
  EXPECT_GE(problems.size(), 3u);  // no driver, no sinks, open pins
}

TEST_F(NetlistTest, SinkCapacitanceAndNames) {
  int inv = *test::library().find("INV_X1");
  CellId c = nl_.add_cell("u1", inv);
  const tech::LibCell& lib = test::library().cell(inv);
  PinRef in_pin = PinRef::cell_pin(c, lib.input_pins()[0]);
  PinRef out_pin = PinRef::cell_pin(c, lib.output_pin());
  EXPECT_GT(nl_.sink_capacitance(in_pin), 0.0);
  EXPECT_EQ(nl_.sink_capacitance(out_pin), 0.0);
  EXPECT_EQ(nl_.pin_name(in_pin), "u1/A");
  EXPECT_EQ(nl_.pin_name(out_pin), "u1/Z");
  EXPECT_FALSE(nl_.is_driver_pin(in_pin));
  EXPECT_TRUE(nl_.is_driver_pin(out_pin));
}

TEST_F(NetlistTest, FindLookups) {
  nl_.add_cell("u42", 0);
  nl_.add_net("mynet");
  nl_.add_port("myport", PortDirection::kInput);
  EXPECT_TRUE(nl_.find_cell("u42").has_value());
  EXPECT_TRUE(nl_.find_net("mynet").has_value());
  EXPECT_TRUE(nl_.find_port("myport").has_value());
  EXPECT_FALSE(nl_.find_cell("nope").has_value());
  EXPECT_FALSE(nl_.find_net("nope").has_value());
  EXPECT_FALSE(nl_.find_port("nope").has_value());
}

TEST_F(NetlistTest, NumPinsCountsCellsAndPorts) {
  nl_.add_port("p", PortDirection::kInput);
  nl_.add_cell("u1", *test::library().find("NAND2_X1"));  // 3 pins
  EXPECT_EQ(nl_.num_pins(), 4);
}

TEST(Netlist, RequiresLibrary) {
  EXPECT_THROW(Netlist("x", nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace sma::netlist
