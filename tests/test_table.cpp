#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sma::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "bb"});
  t.add_row({"xxx", "y"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("a    bb"), std::string::npos);
  EXPECT_NE(s.find("xxx  y"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 4), "3.1416");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatDouble, NanRendersAsNa) {
  EXPECT_EQ(format_double(std::nan(""), 2), "N/A");
}

}  // namespace
}  // namespace sma::util
