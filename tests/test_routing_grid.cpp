#include "route/routing_grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sma::route {
namespace {

class RoutingGridTest : public ::testing::Test {
 protected:
  RoutingGridTest()
      : stack_(tech::LayerStack::nangate45_like()),
        grid_(&stack_, util::Rect{{0, 0}, {7000, 7000}}) {}

  tech::LayerStack stack_;
  RoutingGrid grid_;
};

TEST_F(RoutingGridTest, Dimensions) {
  EXPECT_EQ(grid_.nx(), 10);
  EXPECT_EQ(grid_.ny(), 10);
  EXPECT_EQ(grid_.num_layers(), 6);
  EXPECT_EQ(grid_.num_nodes(), 600u);
}

TEST_F(RoutingGridTest, NodeIndexRoundTrip) {
  for (int layer = 1; layer <= 6; ++layer) {
    for (int y = 0; y < 10; y += 3) {
      for (int x = 0; x < 10; x += 3) {
        GridCoord c{layer, x, y};
        EXPECT_EQ(grid_.coord_of(grid_.node_index(c)), c);
      }
    }
  }
}

TEST_F(RoutingGridTest, GcellMapping) {
  GridCoord c = grid_.gcell_at({350, 1399});
  EXPECT_EQ(c.x, 0);
  EXPECT_EQ(c.y, 1);
  // Clamped outside the die.
  GridCoord edge = grid_.gcell_at({999999, -5});
  EXPECT_EQ(edge.x, 9);
  EXPECT_EQ(edge.y, 0);
  // Center of gcell (0,0).
  util::Point center = grid_.gcell_center({1, 0, 0});
  EXPECT_EQ(center, (util::Point{350, 350}));
}

TEST_F(RoutingGridTest, NeighborsRespectBounds) {
  GridCoord corner{1, 0, 0};
  EXPECT_TRUE(grid_.has_neighbor(corner, Dir::kEast));
  EXPECT_FALSE(grid_.has_neighbor(corner, Dir::kWest));
  EXPECT_TRUE(grid_.has_neighbor(corner, Dir::kNorth));
  EXPECT_FALSE(grid_.has_neighbor(corner, Dir::kSouth));
  EXPECT_TRUE(grid_.has_neighbor(corner, Dir::kUp));
  EXPECT_FALSE(grid_.has_neighbor(corner, Dir::kDown));
  GridCoord top{6, 9, 9};
  EXPECT_FALSE(grid_.has_neighbor(top, Dir::kUp));
  EXPECT_TRUE(grid_.has_neighbor(top, Dir::kDown));
}

TEST_F(RoutingGridTest, ReverseDirections) {
  EXPECT_EQ(reverse(Dir::kEast), Dir::kWest);
  EXPECT_EQ(reverse(Dir::kNorth), Dir::kSouth);
  EXPECT_EQ(reverse(Dir::kUp), Dir::kDown);
}

TEST_F(RoutingGridTest, PreferredDirectionCapacities) {
  // M1 horizontal but clamped to pin-access capacity.
  EXPECT_EQ(grid_.capacity({1, 4, 4}, Dir::kEast), 1);
  // M2 vertical: 700/140 = 5 tracks, x0.65 utilization = 3 (and the M2
  // clamp is also 3).
  EXPECT_EQ(grid_.capacity({2, 4, 4}, Dir::kNorth), 3);
  // Wrong-way on M2.
  EXPECT_EQ(grid_.capacity({2, 4, 4}, Dir::kEast), 1);
  // M4 vertical: same thin pitch and utilization.
  EXPECT_EQ(grid_.capacity({4, 4, 4}, Dir::kNorth), 3);
  // Vias.
  EXPECT_EQ(grid_.capacity({2, 4, 4}, Dir::kUp), 12);
}

TEST_F(RoutingGridTest, UsageSharedBetweenEdgeEnds) {
  GridCoord a{3, 4, 4};
  grid_.add_usage(a, Dir::kEast, 1);
  EXPECT_EQ(grid_.usage(a, Dir::kEast), 1);
  GridCoord b = grid_.neighbor(a, Dir::kEast);
  EXPECT_EQ(grid_.usage(b, Dir::kWest), 1);
  grid_.add_usage(b, Dir::kWest, -1);
  EXPECT_EQ(grid_.usage(a, Dir::kEast), 0);
}

TEST_F(RoutingGridTest, UsageNeverNegative) {
  GridCoord a{2, 1, 1};
  grid_.add_usage(a, Dir::kNorth, -3);
  EXPECT_EQ(grid_.usage(a, Dir::kNorth), 0);
}

TEST_F(RoutingGridTest, OverflowCountAndHistory) {
  GridCoord a{1, 2, 2};
  EXPECT_EQ(grid_.overflow_count(), 0);
  grid_.add_usage(a, Dir::kEast, 3);  // capacity 1 -> overflow
  EXPECT_EQ(grid_.overflow_count(), 1);
  EXPECT_FLOAT_EQ(grid_.history(a, Dir::kEast), 0.0f);
  grid_.bump_history_on_overflow(1.5f);
  EXPECT_FLOAT_EQ(grid_.history(a, Dir::kEast), 1.5f);
  grid_.clear_usage();
  EXPECT_EQ(grid_.overflow_count(), 0);
  // History survives usage clearing.
  EXPECT_FLOAT_EQ(grid_.history(a, Dir::kEast), 1.5f);
}

TEST_F(RoutingGridTest, ViaUsage) {
  GridCoord a{2, 5, 5};
  grid_.add_usage(a, Dir::kUp, 2);
  GridCoord above = grid_.neighbor(a, Dir::kUp);
  EXPECT_EQ(grid_.usage(above, Dir::kDown), 2);
}

TEST_F(RoutingGridTest, RejectsDegenerateCapacities) {
  // Zero/negative capacities used to reach the router as NaN/inf edge
  // costs (usage / 0); they must fail loudly at construction instead.
  const util::Rect die{{0, 0}, {7000, 7000}};
  auto make = [&](const RoutingGrid::Config& config) {
    RoutingGrid grid(&stack_, die, config);
  };
  RoutingGrid::Config config;
  config.via_capacity = 0;
  EXPECT_THROW(make(config), std::invalid_argument);
  config = {};
  config.m1_capacity = 0;
  EXPECT_THROW(make(config), std::invalid_argument);
  config = {};
  config.m2_capacity = 0;
  EXPECT_THROW(make(config), std::invalid_argument);
  config = {};
  config.wrongway_capacity = -1;
  EXPECT_THROW(make(config), std::invalid_argument);
  config = {};
  config.gcell_size = 0;
  EXPECT_THROW(make(config), std::invalid_argument);
  config = {};
  config.track_utilization = 0.0;
  EXPECT_THROW(make(config), std::invalid_argument);
  // wrongway_capacity = 0 is legal: "no wrong-way tracks".
  config = {};
  config.wrongway_capacity = 0;
  EXPECT_NO_THROW(make(config));
  RoutingGrid no_wrongway(&stack_, die, config);
  // M1 is horizontal-preferred in this stack; its vertical edges now have
  // zero capacity.
  EXPECT_EQ(no_wrongway.capacity({1, 5, 5}, Dir::kNorth), 0);
  EXPECT_GT(no_wrongway.capacity({1, 5, 5}, Dir::kEast), 0);
}

}  // namespace
}  // namespace sma::route
