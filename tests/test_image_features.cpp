#include "features/image_features.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace sma::features {
namespace {

ImageConfig small_config() {
  ImageConfig config;
  config.size = 15;
  config.pixel_sizes = {100, 200, 400};
  return config;
}

class ImageFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s_ = &test::shared_split(3, 400, 7);
    renderer_ = std::make_unique<ImageRenderer>(s_->split.get(), small_config());
  }
  const test::SmallSplit* s_ = nullptr;
  std::unique_ptr<ImageRenderer> renderer_;
};

TEST_F(ImageFeaturesTest, ConfigValidation) {
  ImageConfig even;
  even.size = 16;
  EXPECT_THROW(ImageRenderer(s_->split.get(), even), std::invalid_argument);
  ImageConfig no_scales;
  no_scales.pixel_sizes.clear();
  EXPECT_THROW(ImageRenderer(s_->split.get(), no_scales),
               std::invalid_argument);
  EXPECT_THROW(ImageRenderer(nullptr, small_config()), std::invalid_argument);
}

TEST_F(ImageFeaturesTest, OutputShapeAndRange) {
  const ImageConfig& config = renderer_->config();
  for (int vp = 0; vp < std::min<int>(20, static_cast<int>(
                                              s_->split->virtual_pins().size()));
       ++vp) {
    std::vector<float> image = renderer_->render(vp);
    EXPECT_EQ(image.size(), config.pixels_per_image());
    for (float v : image) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST_F(ImageFeaturesTest, CenterPixelShowsOwnFragment) {
  // The virtual pin sits at the center pixel, and its own via is drawn at
  // the split layer -> the own-fragment bit for M3 (bit m + 2 of m = 3)
  // must be set, making the packed value >= 32/63.
  const ImageConfig& config = renderer_->config();
  const int size = config.size;
  const int center_index = (size / 2) * size + (size / 2);
  const float own_m3_bit = 32.0f / 63.0f;
  for (int vp = 0; vp < std::min<int>(20, static_cast<int>(
                                              s_->split->virtual_pins().size()));
       ++vp) {
    std::vector<float> image = renderer_->render(vp);
    EXPECT_GE(image[center_index], own_m3_bit)
        << "virtual pin " << vp << " missing its own via mark";
  }
}

TEST_F(ImageFeaturesTest, CoarserScalesSeeMoreGeometry) {
  // Channel 2 (coarse) covers 4x the area of channel 1; it should light at
  // least as many "other fragment" pixels in busy regions on average.
  const ImageConfig& config = renderer_->config();
  const std::size_t per_channel =
      static_cast<std::size_t>(config.size) * config.size;
  long fine_lit = 0;
  long coarse_lit = 0;
  int count = std::min<int>(30, static_cast<int>(
                                    s_->split->virtual_pins().size()));
  for (int vp = 0; vp < count; ++vp) {
    std::vector<float> image = renderer_->render(vp);
    for (std::size_t i = 0; i < per_channel; ++i) {
      if (image[i] > 0) ++fine_lit;
      if (image[2 * per_channel + i] > 0) ++coarse_lit;
    }
  }
  EXPECT_GT(coarse_lit, fine_lit / 2);
  EXPECT_GT(fine_lit, 0);
  EXPECT_GT(coarse_lit, 0);
}

TEST_F(ImageFeaturesTest, DeterministicRendering) {
  std::vector<float> a = renderer_->render(0);
  std::vector<float> b = renderer_->render(0);
  EXPECT_EQ(a, b);
}

TEST_F(ImageFeaturesTest, M1SplitUsesTwoLayerBits) {
  const test::SmallSplit& m1 = test::shared_split(1, 400, 7);
  ImageRenderer renderer(m1.split.get(), small_config());
  // m = 1 -> values quantized to multiples of 1/3 (2 bits).
  std::vector<float> image = renderer.render(0);
  for (float v : image) {
    float scaled = v * 3.0f;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-4);
  }
}

TEST_F(ImageFeaturesTest, PixelValuesAreQuantizedToLayerBits) {
  // m = 3 -> 6 bits -> multiples of 1/63.
  std::vector<float> image = renderer_->render(0);
  for (float v : image) {
    float scaled = v * 63.0f;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-3);
  }
}

}  // namespace
}  // namespace sma::features
