#include "features/vector_features.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace sma::features {
namespace {

class VectorFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s_ = &test::shared_split(3, 400, 7);
    queries_ = split::build_queries(*s_->split);
    ASSERT_FALSE(queries_.empty());
  }
  const test::SmallSplit* s_ = nullptr;
  std::vector<split::SinkQuery> queries_;
};

TEST_F(VectorFeaturesTest, NamesMatchWidth) {
  EXPECT_EQ(vector_feature_names().size(),
            static_cast<std::size_t>(kNumVectorFeatures));
  EXPECT_EQ(kNumVectorFeatures, 27);  // the paper's fc1 input width
}

TEST_F(VectorFeaturesTest, AllFinite) {
  for (const split::SinkQuery& q : queries_) {
    for (const split::Vpp& vpp : q.candidates) {
      VectorFeatures f = compute_vector_features(*s_->split, vpp);
      for (float v : f) {
        EXPECT_TRUE(std::isfinite(v));
      }
    }
  }
}

TEST_F(VectorFeaturesTest, DistanceConsistency) {
  for (const split::SinkQuery& q : queries_) {
    for (const split::Vpp& vpp : q.candidates) {
      VectorFeatures f = compute_vector_features(*s_->split, vpp);
      // |signed| == abs features.
      EXPECT_FLOAT_EQ(std::abs(f[0]), f[2]);
      EXPECT_FLOAT_EQ(std::abs(f[1]), f[3]);
      // Manhattan = |pref| + |nonpref|.
      EXPECT_NEAR(f[4], f[2] + f[3], 1e-4);
      // Ratio features have consistent sign.
      EXPECT_EQ(f[0] < 0, f[5] < 0);
      EXPECT_GE(f[9], 0.0f);
      EXPECT_LE(f[9], 1.0f);  // distance cannot exceed the half-perimeter
    }
  }
}

TEST_F(VectorFeaturesTest, ElectricalBoundsOrdered) {
  for (const split::SinkQuery& q : queries_) {
    for (const split::Vpp& vpp : q.candidates) {
      VectorFeatures f = compute_vector_features(*s_->split, vpp);
      EXPECT_GT(f[10], 0.0f) << "driver max cap must be positive";
      EXPECT_GE(f[11], 0.0f);
      EXPECT_GE(f[12], 1.0f) << "sink fragment has at least one sink";
      EXPECT_GE(f[23], 0.0f) << "delay bound non-negative";
    }
  }
}

TEST_F(VectorFeaturesTest, WirelengthsRespectSplitLayer) {
  // Split at M3: per-layer wirelengths for M1..M3 may be nonzero; totals
  // equal the fragment accounting.
  for (const split::SinkQuery& q : queries_) {
    for (const split::Vpp& vpp : q.candidates) {
      VectorFeatures f = compute_vector_features(*s_->split, vpp);
      float src_sum = f[13] + f[14] + f[15];
      EXPECT_NEAR(src_sum, f[24], 1e-3);
      float snk_sum = f[16] + f[17] + f[18];
      EXPECT_NEAR(snk_sum, f[25], 1e-3);
    }
  }
}

TEST_F(VectorFeaturesTest, M1SplitZerosUpperLayerFeatures) {
  const test::SmallSplit& m1 = test::shared_split(1, 400, 7);
  auto queries = split::build_queries(*m1.split);
  for (const split::SinkQuery& q : queries) {
    for (const split::Vpp& vpp : q.candidates) {
      VectorFeatures f = compute_vector_features(*m1.split, vpp);
      EXPECT_EQ(f[14], 0.0f);  // no M2 in the FEOL
      EXPECT_EQ(f[15], 0.0f);  // no M3
      EXPECT_EQ(f[19], 0.0f);  // no V12 vias
      EXPECT_EQ(f[20], 0.0f);
    }
  }
}

TEST_F(VectorFeaturesTest, PositiveVppTendsToBeCloser) {
  // Averaged over queries, the positive candidate's Manhattan distance
  // should not exceed the mean candidate distance — the physical-design
  // locality the attack exploits.
  double positive_sum = 0.0;
  double all_sum = 0.0;
  int positive_count = 0;
  int all_count = 0;
  for (const split::SinkQuery& q : queries_) {
    for (const split::Vpp& vpp : q.candidates) {
      VectorFeatures f = compute_vector_features(*s_->split, vpp);
      all_sum += f[4];
      ++all_count;
      if (vpp.positive) {
        positive_sum += f[4];
        ++positive_count;
      }
    }
  }
  ASSERT_GT(positive_count, 0);
  EXPECT_LT(positive_sum / positive_count, all_sum / all_count);
}

TEST_F(VectorFeaturesTest, FragmentElectricalSourceVsSink) {
  for (int source_id : s_->split->source_fragments()) {
    FragmentElectrical e =
        fragment_electrical(*s_->split, s_->split->fragment(source_id));
    EXPECT_GT(e.driver_max_cap, 0.0);
    EXPECT_GT(e.driver_resistance, 0.0);
  }
  for (int sink_id : s_->split->sink_fragments()) {
    FragmentElectrical e =
        fragment_electrical(*s_->split, s_->split->fragment(sink_id));
    EXPECT_EQ(e.driver_max_cap, 0.0);
    EXPECT_GT(e.sink_pin_cap, 0.0);
  }
}

}  // namespace
}  // namespace sma::features
