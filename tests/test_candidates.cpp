#include "split/candidates.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_support.hpp"

namespace sma::split {
namespace {

TEST(Prefers, UnconstrainedPinPrefersEverything) {
  VirtualPin p;
  p.location = {0, 0};
  VirtualPin q;
  q.location = {100, 100};
  EXPECT_TRUE(prefers(p, q));
}

TEST(Prefers, OppositeSideOfStub) {
  VirtualPin p;
  p.location = {0, 0};
  p.stub_directions = {{1, 0}};  // wire extends east
  VirtualPin west;
  west.location = {-50, 0};
  VirtualPin east;
  east.location = {50, 0};
  VirtualPin north;
  north.location = {0, 50};
  EXPECT_TRUE(prefers(p, west));    // opposite side
  EXPECT_FALSE(prefers(p, east));   // same side as the wire
  EXPECT_TRUE(prefers(p, north));   // perpendicular counts as opposite/beside
}

TEST(Prefers, AnyStubSufficies) {
  VirtualPin p;
  p.location = {0, 0};
  p.stub_directions = {{1, 0}, {-1, 0}};  // wire passes through
  VirtualPin east;
  east.location = {50, 0};
  EXPECT_TRUE(prefers(p, east));  // opposite of the westward stub
}

class CandidatesTest : public ::testing::Test {
 protected:
  void SetUp() override { s_ = &test::shared_split(3, 400, 7); }
  const test::SmallSplit* s_ = nullptr;
};

TEST_F(CandidatesTest, OneQueryPerSinkFragment) {
  auto queries = build_queries(*s_->split);
  EXPECT_EQ(queries.size(), s_->split->sink_fragments().size());
  std::set<int> seen;
  for (const SinkQuery& q : queries) {
    EXPECT_TRUE(seen.insert(q.sink_fragment).second);
    EXPECT_GT(q.num_sinks, 0);
  }
}

TEST_F(CandidatesTest, RespectsMaxCandidates) {
  CandidateConfig config;
  config.max_candidates = 5;
  for (const SinkQuery& q : build_queries(*s_->split, config)) {
    EXPECT_LE(q.candidates.size(), 5u);
  }
}

TEST_F(CandidatesTest, CandidatesAreDistanceSorted) {
  for (const SinkQuery& q : build_queries(*s_->split)) {
    for (std::size_t i = 1; i < q.candidates.size(); ++i) {
      VppDistance prev = vpp_distance(
          *s_->split, s_->split->virtual_pin(q.candidates[i - 1].sink_vp),
          s_->split->virtual_pin(q.candidates[i - 1].source_vp));
      VppDistance curr = vpp_distance(
          *s_->split, s_->split->virtual_pin(q.candidates[i].sink_vp),
          s_->split->virtual_pin(q.candidates[i].source_vp));
      EXPECT_LE(prev, curr);
    }
  }
}

TEST_F(CandidatesTest, NonDuplicationOneVppPerSourceFragment) {
  for (const SinkQuery& q : build_queries(*s_->split)) {
    std::set<int> sources;
    for (const Vpp& vpp : q.candidates) {
      EXPECT_TRUE(sources.insert(vpp.source_fragment).second)
          << "duplicate source fragment in candidate list";
    }
  }
}

TEST_F(CandidatesTest, PositiveIndexConsistent) {
  for (const SinkQuery& q : build_queries(*s_->split)) {
    if (q.positive_index >= 0) {
      ASSERT_LT(q.positive_index, static_cast<int>(q.candidates.size()));
      EXPECT_TRUE(q.candidates[q.positive_index].positive);
      EXPECT_EQ(q.candidates[q.positive_index].source_fragment,
                s_->split->positive_source_of(q.sink_fragment));
    } else {
      for (const Vpp& vpp : q.candidates) {
        EXPECT_FALSE(vpp.positive);
      }
    }
  }
}

TEST_F(CandidatesTest, HitRateReasonableOnSmallDesign) {
  auto queries = build_queries(*s_->split);
  // On a small uncongested design, the positive VPP should almost always
  // be among the 31 nearest candidates.
  EXPECT_GT(candidate_hit_rate(queries), 0.7);
}

TEST_F(CandidatesTest, LargerNNeverLowersHitRate) {
  CandidateConfig small;
  small.max_candidates = 4;
  CandidateConfig large;
  large.max_candidates = 31;
  double small_rate = candidate_hit_rate(build_queries(*s_->split, small));
  double large_rate = candidate_hit_rate(build_queries(*s_->split, large));
  EXPECT_GE(large_rate, small_rate);
}

TEST_F(CandidatesTest, DirectionCriterionOnlyPrunes) {
  CandidateConfig with;
  with.max_candidates = 1000000;  // no distance truncation
  CandidateConfig without = with;
  without.use_direction_criterion = false;
  auto q_with = build_queries(*s_->split, with);
  auto q_without = build_queries(*s_->split, without);
  ASSERT_EQ(q_with.size(), q_without.size());
  for (std::size_t i = 0; i < q_with.size(); ++i) {
    EXPECT_LE(q_with[i].candidates.size(), q_without[i].candidates.size());
  }
}

TEST_F(CandidatesTest, VppDistanceUsesSplitLayerAxes) {
  // Split layer 3 is horizontal-preferred, so non-preferred = vertical.
  VirtualPin p;
  p.location = {0, 0};
  VirtualPin q;
  q.location = {100, 40};
  VppDistance d = vpp_distance(*s_->split, p, q);
  EXPECT_EQ(d.preferred, 100);
  EXPECT_EQ(d.non_preferred, 40);
}

}  // namespace
}  // namespace sma::split
