#include "tech/cell_library.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sma::tech {
namespace {

TEST(CellLibrary, FindByName) {
  const CellLibrary& lib = test::library();
  auto inv = lib.find("INV_X1");
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(lib.cell(*inv).function, Function::kInv);
  EXPECT_FALSE(lib.find("NOPE_X9").has_value());
}

TEST(CellLibrary, EveryCellHasOneOutputAndPositiveWidth) {
  const CellLibrary& lib = test::library();
  for (int i = 0; i < lib.num_cells(); ++i) {
    const LibCell& cell = lib.cell(i);
    EXPECT_NO_THROW(cell.output_pin()) << cell.name;
    EXPECT_GT(cell.width, 0) << cell.name;
    EXPECT_EQ(cell.width % lib.site_width(), 0)
        << cell.name << " width must be a site multiple";
    int outputs = 0;
    for (const LibPin& pin : cell.pins) {
      if (pin.direction == PinDirection::kOutput) ++outputs;
    }
    EXPECT_EQ(outputs, 1) << cell.name;
  }
}

TEST(CellLibrary, PinOffsetsInsideCell) {
  const CellLibrary& lib = test::library();
  for (int i = 0; i < lib.num_cells(); ++i) {
    const LibCell& cell = lib.cell(i);
    for (const LibPin& pin : cell.pins) {
      EXPECT_GE(pin.offset.x, 0) << cell.name << "/" << pin.name;
      EXPECT_LE(pin.offset.x, cell.width) << cell.name << "/" << pin.name;
      EXPECT_GE(pin.offset.y, 0) << cell.name << "/" << pin.name;
      EXPECT_LE(pin.offset.y, lib.row_height()) << cell.name << "/" << pin.name;
    }
  }
}

TEST(CellLibrary, InputPinsHaveCapacitance) {
  const CellLibrary& lib = test::library();
  for (int i = 0; i < lib.num_cells(); ++i) {
    const LibCell& cell = lib.cell(i);
    for (int pin : cell.input_pins()) {
      EXPECT_GT(cell.pins[pin].capacitance, 0.0) << cell.name;
    }
    EXPECT_GT(cell.max_load_cap, 0.0) << cell.name;
    EXPECT_GT(cell.drive_resistance, 0.0) << cell.name;
  }
}

TEST(CellLibrary, PickMatchesFunctionAndFanin) {
  const CellLibrary& lib = test::library();
  auto nand3 = lib.pick(Function::kNand, 3);
  ASSERT_TRUE(nand3.has_value());
  EXPECT_EQ(lib.cell(*nand3).num_inputs(), 3);
  EXPECT_EQ(lib.cell(*nand3).function, Function::kNand);
  EXPECT_FALSE(lib.pick(Function::kNand, 7).has_value());
  EXPECT_FALSE(lib.pick(Function::kXor, 3).has_value());
}

TEST(CellLibrary, CellsWithFunctionSortedByDrive) {
  const CellLibrary& lib = test::library();
  auto inverters = lib.cells_with_function(Function::kInv);
  ASSERT_GE(inverters.size(), 2u);
  for (std::size_t i = 1; i < inverters.size(); ++i) {
    EXPECT_LE(lib.cell(inverters[i - 1]).drive_strength,
              lib.cell(inverters[i]).drive_strength);
  }
}

TEST(CellLibrary, StrongerDriversAllowMoreLoad) {
  const CellLibrary& lib = test::library();
  const LibCell& x1 = lib.cell(*lib.find("INV_X1"));
  const LibCell& x4 = lib.cell(*lib.find("INV_X4"));
  EXPECT_GT(x4.max_load_cap, x1.max_load_cap);
  EXPECT_LT(x4.drive_resistance, x1.drive_resistance);
}

TEST(CellLibrary, SequentialClassification) {
  EXPECT_TRUE(is_sequential(Function::kDff));
  EXPECT_FALSE(is_sequential(Function::kNand));
  const CellLibrary& lib = test::library();
  auto dff = lib.pick(Function::kDff, 1);
  ASSERT_TRUE(dff.has_value());
}

}  // namespace
}  // namespace sma::tech
