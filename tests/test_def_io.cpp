#include "layout/def_io.hpp"

#include <gtest/gtest.h>

#include "split/split_design.hpp"
#include "test_support.hpp"

namespace sma::layout {
namespace {

TEST(DefIo, RoundTripPreservesEverything) {
  Design original = test::small_routed_design(60, 3);
  std::string text = to_def_string(original);
  Design imported = read_def_string(text, &test::library());

  const netlist::Netlist& a = *original.netlist;
  const netlist::Netlist& b = *imported.netlist;
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  ASSERT_EQ(a.num_ports(), b.num_ports());
  EXPECT_TRUE(b.validate().empty());

  for (netlist::CellId c = 0; c < a.num_cells(); ++c) {
    EXPECT_EQ(a.cell(c).name, b.cell(c).name);
    EXPECT_EQ(a.cell(c).lib_cell, b.cell(c).lib_cell);
    EXPECT_EQ(original.placement->cell_origin(c),
              imported.placement->cell_origin(c));
  }
  for (netlist::NetId n = 0; n < a.num_nets(); ++n) {
    EXPECT_EQ(a.net(n).name, b.net(n).name);
    EXPECT_EQ(a.net(n).sinks.size(), b.net(n).sinks.size());
    EXPECT_EQ(original.route_of(n).segments, imported.route_of(n).segments);
    EXPECT_EQ(original.route_of(n).vias, imported.route_of(n).vias);
  }
  EXPECT_EQ(original.routing.total_wirelength,
            imported.routing.total_wirelength);
}

TEST(DefIo, SecondSerializationIsIdentical) {
  Design original = test::small_routed_design(40, 9);
  std::string text1 = to_def_string(original);
  Design imported = read_def_string(text1, &test::library());
  std::string text2 = to_def_string(imported);
  EXPECT_EQ(text1, text2);
}

TEST(DefIo, SplitOnImportedDesignMatchesOriginal) {
  Design original = test::small_routed_design(60, 3);
  std::string text = to_def_string(original);
  Design imported = read_def_string(text, &test::library());

  split::SplitDesign split_a(&original, 3);
  split::SplitDesign split_b(&imported, 3);
  EXPECT_EQ(split_a.fragments().size(), split_b.fragments().size());
  EXPECT_EQ(split_a.sink_fragments().size(), split_b.sink_fragments().size());
  EXPECT_EQ(split_a.source_fragments().size(),
            split_b.source_fragments().size());
  EXPECT_EQ(split_a.virtual_pins().size(), split_b.virtual_pins().size());
}

TEST(DefIo, RejectsMalformedInput) {
  EXPECT_THROW(read_def_string("GARBAGE", &test::library()),
               std::runtime_error);
  EXPECT_THROW(read_def_string("DESIGN x\nDIEAREA 0 0", &test::library()),
               std::runtime_error);
  EXPECT_THROW(read_def_string("", &test::library()), std::runtime_error);
}

TEST(DefIo, RejectsUnknownMaster) {
  std::string text =
      "DESIGN x\nDIEAREA 0 0 100 100\nROWS 1 4 1400 190\nGCELL 700\n"
      "COMPONENTS 1\n  u1 NOT_A_CELL 0 0\nPINS 0\nNETS 0\nEND\n";
  EXPECT_THROW(read_def_string(text, &test::library()), std::runtime_error);
}

}  // namespace
}  // namespace sma::layout
