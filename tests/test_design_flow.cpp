#include "layout/design.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sma::layout {
namespace {

TEST(DesignFlow, EndToEndSmallDesign) {
  Design design = test::small_routed_design(60, 3);
  EXPECT_TRUE(design.netlist->validate().empty());
  EXPECT_TRUE(design.placement->is_legal());
  EXPECT_EQ(static_cast<int>(design.routing.routes.size()),
            design.netlist->num_nets());
  EXPECT_GT(design.routing.total_wirelength, 0);
  EXPECT_GT(design.routing.total_vias, 0);
}

TEST(DesignFlow, DifferentSeedsGiveDifferentLayouts) {
  Design a = test::small_routed_design(60, 3);
  Design b = test::small_routed_design(60, 4);
  bool any_difference = false;
  for (netlist::CellId c = 0; c < a.netlist->num_cells(); ++c) {
    if (a.placement->cell_origin(c) != b.placement->cell_origin(c)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(DesignFlow, MoveKeepsInternalReferencesValid) {
  Design a = test::small_routed_design(40, 5);
  const netlist::Netlist* nl_before = a.netlist.get();
  Design b = std::move(a);
  EXPECT_EQ(b.netlist.get(), nl_before);
  EXPECT_EQ(&b.placement->netlist(), nl_before);
  EXPECT_TRUE(b.placement->is_legal());
}

TEST(DesignFlow, RouteOfReturnsPerNetRoute) {
  Design design = test::small_routed_design(40, 6);
  for (netlist::NetId n = 0; n < design.netlist->num_nets(); ++n) {
    EXPECT_EQ(design.route_of(n).net, n);
  }
}

}  // namespace
}  // namespace sma::layout
