// Bit-identity of the blocked GEMM core against the retained reference
// kernels — the contract that lets the optimized kernels replace the
// naive ones without perturbing a single downstream number (trained
// models, CCRs, the parallel runtime's serial == parallel checks).
//
// Every comparison here is exact to the bit (memcmp, not EXPECT_NEAR):
// the optimized kernels keep each output element's accumulation a single
// ascending-k chain, so any reassociation bug shows up as a hard failure
// on the randomized shapes below, which include sizes well off the 4x8
// register tile.
#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace sma::nn {
namespace {

/// Restores the process-wide backend and conv layout mode after each test.
class KernelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_kernel_backend(KernelBackend::kBlocked);
    set_conv_layout_mode(ConvLayoutMode::kChannelMajor);
  }
};

std::vector<float> random_vec(std::size_t n, util::Pcg32& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

bool bit_equal(const float* a, const float* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(float)) == 0;
}

// Shapes straddling the register tile (kMr = 4, kNr = 8): exact
// multiples, off-by-one tails, single rows/columns, k = 1.
struct Shape {
  int m, n, k;
};
const Shape kShapes[] = {
    {1, 1, 1},   {1, 8, 4},    {4, 8, 16},  {5, 9, 7},    {3, 17, 1},
    {8, 16, 32}, {13, 31, 29}, {17, 5, 64}, {33, 40, 13}, {6, 128, 130},
    {40, 33, 57},
};

using GemmFn = void (*)(int, int, int, const float*, const float*, float*);

void expect_form_bit_identical(GemmFn fn, bool a_is_km, bool b_is_nk) {
  for (const Shape& s : kShapes) {
    util::Pcg32 rng(1000u + s.m * 131 + s.n * 17 + s.k);
    const std::size_t a_size =
        a_is_km ? static_cast<std::size_t>(s.k) * s.m
                : static_cast<std::size_t>(s.m) * s.k;
    const std::size_t b_size =
        b_is_nk ? static_cast<std::size_t>(s.n) * s.k
                : static_cast<std::size_t>(s.k) * s.n;
    std::vector<float> a = random_vec(a_size, rng);
    std::vector<float> b = random_vec(b_size, rng);
    // Nonzero initial C exercises the += semantics (the dW accumulation
    // path) where association with prior contents matters.
    std::vector<float> c0 =
        random_vec(static_cast<std::size_t>(s.m) * s.n, rng);

    std::vector<float> c_ref = c0;
    set_kernel_backend(KernelBackend::kReference);
    fn(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());

    std::vector<float> c_blk = c0;
    set_kernel_backend(KernelBackend::kBlocked);
    fn(s.m, s.n, s.k, a.data(), b.data(), c_blk.data());

    EXPECT_TRUE(bit_equal(c_ref.data(), c_blk.data(), c_ref.size()))
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST_F(KernelTest, GemmNnBitIdentical) {
  expect_form_bit_identical(&gemm_nn, false, false);
}

TEST_F(KernelTest, GemmTnBitIdentical) {
  expect_form_bit_identical(&gemm_tn, true, false);
}

TEST_F(KernelTest, GemmNtBitIdentical) {
  expect_form_bit_identical(&gemm_nt, false, true);
}

TEST_F(KernelTest, GemmNnHandlesExactZerosInA) {
  // The reference nn/tn kernels skip zero A elements entirely; the
  // blocked kernels multiply through. Structural zeros (im2col padding)
  // must not change a single bit.
  for (const Shape& s : {Shape{9, 21, 18}, Shape{4, 8, 8}}) {
    util::Pcg32 rng(7u + s.m);
    std::vector<float> a =
        random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    for (std::size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
    std::vector<float> b =
        random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    std::vector<float> c0 =
        random_vec(static_cast<std::size_t>(s.m) * s.n, rng);

    std::vector<float> c_ref = c0;
    set_kernel_backend(KernelBackend::kReference);
    gemm_nn(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());
    std::vector<float> c_blk = c0;
    set_kernel_backend(KernelBackend::kBlocked);
    gemm_nn(s.m, s.n, s.k, a.data(), b.data(), c_blk.data());
    EXPECT_TRUE(bit_equal(c_ref.data(), c_blk.data(), c_ref.size()));
  }
}

TEST_F(KernelTest, ForwardNtEpilogueBitIdentical) {
  for (const Shape& s : kShapes) {
    util::Pcg32 rng(400u + s.m * 7 + s.n * 3 + s.k);
    std::vector<float> a =
        random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    std::vector<float> b =
        random_vec(static_cast<std::size_t>(s.n) * s.k, rng);
    std::vector<float> bias = random_vec(s.n, rng);
    const std::size_t c_size = static_cast<std::size_t>(s.m) * s.n;

    for (Epilogue epilogue : {Epilogue::kBias, Epilogue::kBiasLeakyReLU}) {
      GemmScratch ws;
      // Stale garbage in the destination: the overwrite form must ignore
      // prior contents (layers reuse these buffers without clearing).
      std::vector<float> c_ref(c_size, 123.0f);
      std::vector<std::uint8_t> mask_ref(c_size, 2);
      set_kernel_backend(KernelBackend::kReference);
      gemm_forward_nt(s.m, s.n, s.k, a.data(), b.data(), bias.data(),
                      c_ref.data(), epilogue, 0.01f, mask_ref.data(), ws);

      std::vector<float> c_blk(c_size, -77.0f);
      std::vector<std::uint8_t> mask_blk(c_size, 3);
      set_kernel_backend(KernelBackend::kBlocked);
      gemm_forward_nt(s.m, s.n, s.k, a.data(), b.data(), bias.data(),
                      c_blk.data(), epilogue, 0.01f, mask_blk.data(), ws);

      EXPECT_TRUE(bit_equal(c_ref.data(), c_blk.data(), c_size))
          << "shape " << s.m << "x" << s.n << "x" << s.k;
      EXPECT_EQ(mask_ref, mask_blk);
    }
  }
}

// ---- layer-level identity ----------------------------------------------

template <typename MakeLayer>
void expect_layer_bit_identical(MakeLayer make_layer, const Tensor& x,
                                util::Pcg32& grad_rng) {
  set_kernel_backend(KernelBackend::kReference);
  auto ref = make_layer();
  Tensor y_ref = ref.forward(x);
  // dy values are drawn once in row-major (NCHW) order, then converted
  // to whatever layout each backend's y carries: the logical gradient is
  // identical even when the blocked path hands back channel-major y.
  Tensor dy_rm(y_ref.shape());
  for (std::size_t i = 0; i < dy_rm.size(); ++i) {
    dy_rm[i] = static_cast<float>(grad_rng.next_gaussian());
  }
  Tensor dx_ref = ref.backward(dy_rm);
  std::vector<Param> ref_params;
  ref.collect_params(ref_params);

  set_kernel_backend(KernelBackend::kBlocked);
  auto blk = make_layer();
  Tensor y_blk = blk.forward(x);
  Tensor dy_blk = to_layout(dy_rm, y_blk.layout());
  Tensor dx_blk = blk.backward(dy_blk);
  std::vector<Param> blk_params;
  blk.collect_params(blk_params);

  ASSERT_EQ(y_ref.size(), y_blk.size());
  const Tensor y_blk_rm = to_row_major(y_blk);
  EXPECT_TRUE(bit_equal(y_ref.data(), y_blk_rm.data(), y_ref.size()));
  ASSERT_EQ(dx_ref.size(), dx_blk.size());
  EXPECT_TRUE(bit_equal(dx_ref.data(), dx_blk.data(), dx_ref.size()));
  ASSERT_EQ(ref_params.size(), blk_params.size());
  for (std::size_t p = 0; p < ref_params.size(); ++p) {
    EXPECT_TRUE(bit_equal(ref_params[p].grad->data(),
                          blk_params[p].grad->data(),
                          ref_params[p].grad->size()))
        << "grad " << ref_params[p].name;
  }
}

TEST_F(KernelTest, LinearBitIdenticalAcrossBackends) {
  for (Act act : {Act::kNone, Act::kLeakyReLU}) {
    for (const auto& [rows, in, out] :
         {std::tuple{1, 1, 1}, std::tuple{5, 9, 13}, std::tuple{16, 128, 32},
          std::tuple{3, 27, 128}}) {
      util::Pcg32 data_rng(17u + rows + in + out);
      Tensor x = Tensor::randn({rows, in}, data_rng, 1.0);
      util::Pcg32 grad_rng(91);
      expect_layer_bit_identical(
          [&, in = in, out = out] {
            util::Pcg32 rng(55);
            return Linear(in, out, rng, "t", act);
          },
          x, grad_rng);
    }
  }
}

TEST_F(KernelTest, Conv2dBitIdenticalAcrossBackends) {
  for (Act act : {Act::kNone, Act::kLeakyReLU}) {
    struct Case {
      int n, in_ch, out_ch, stride, size;
    };
    // Non-multiple-of-tile channel counts and odd image sizes included.
    for (const Case& c :
         {Case{1, 1, 1, 1, 3}, Case{2, 3, 5, 1, 7}, Case{2, 3, 8, 3, 15},
          Case{1, 5, 13, 3, 11}}) {
      util::Pcg32 data_rng(29u + c.in_ch * c.out_ch);
      Tensor x = Tensor::randn({c.n, c.in_ch, c.size, c.size}, data_rng, 1.0);
      util::Pcg32 grad_rng(37);
      expect_layer_bit_identical(
          [&] {
            util::Pcg32 rng(66);
            return Conv2d(c.in_ch, c.out_ch, c.stride, rng, "t", act);
          },
          x, grad_rng);
    }
  }
}

TEST_F(KernelTest, Conv2dStridedOnOnePixelInputIsDeterministic) {
  // Regression: for a 1-wide feature map and kernel column kx = 2 the
  // blocked pipeline's edge formula (w - kx) / stride + 1 truncated
  // -1/stride toward zero, admitting an out-of-bounds tap: im2col read
  // one float past the row (heap garbage on the last plane — trained
  // models became nondeterministic) and col2im WROTE one float past it.
  // Only stride-3 convs see it (stride 1 divides -1 exactly), and only
  // once the trunk shrinks to 1x1 maps — tiny test nets, not the paper
  // profiles, which is how it survived PR 2.
  struct Case {
    int n, in_ch, out_ch, size;
  };
  for (const Case& c : {Case{7, 8, 10, 1}, Case{3, 2, 5, 1}, Case{1, 1, 1, 1}}) {
    // Pollute the allocator's free lists so stale-memory taps cannot
    // masquerade as zeros.
    {
      std::vector<float> junk(1 << 18, 1e9f);
      volatile float sink = junk[0];
      (void)sink;
    }
    util::Pcg32 data_rng(11u + c.n);
    Tensor x = Tensor::randn({c.n, c.in_ch, c.size, c.size}, data_rng, 1.0);
    util::Pcg32 grad_rng(13);
    expect_layer_bit_identical(
        [&] {
          util::Pcg32 rng(44);
          return Conv2d(c.in_ch, c.out_ch, /*stride=*/3, rng, "t",
                        Act::kLeakyReLU);
        },
        x, grad_rng);

    // And the blocked path must be repeatable against itself under a
    // dirtied heap (the original failure mode).
    set_kernel_backend(KernelBackend::kBlocked);
    Tensor y_first;
    Tensor dx_first;
    for (int round = 0; round < 2; ++round) {
      std::vector<float> junk(1 << 16, -1e9f);
      volatile float sink = junk[0];
      (void)sink;
      util::Pcg32 rng(44);
      Conv2d conv(c.in_ch, c.out_ch, 3, rng, "t", Act::kLeakyReLU);
      Tensor y = conv.forward(x);
      // Tag dy with y's own layout so the backward exercises the new
      // channel-major fast path (the pack_cm_* code under test here).
      Tensor dy(y.shape());
      dy.set_layout(y.layout());
      util::Pcg32 grng(13);
      for (std::size_t i = 0; i < dy.size(); ++i) {
        dy[i] = static_cast<float>(grng.next_gaussian());
      }
      Tensor dx = conv.backward(dy);
      if (round == 0) {
        y_first = y;
        dx_first = dx;
      } else {
        EXPECT_TRUE(bit_equal(y_first.data(), y.data(), y.size()));
        EXPECT_TRUE(bit_equal(dx_first.data(), dx.data(), dx.size()));
      }
    }
  }
}

TEST_F(KernelTest, ConvLayoutModesBitIdentical) {
  // kRowMajorCompat is the PR-7 pipeline (GEMM into per-thread staging,
  // then a permutation copy back to NCHW); kChannelMajor writes the GEMM
  // output straight into the channel-major arena slot. Both modes feed
  // the kernels the same operands in the same order, so forward output,
  // input gradient and every parameter gradient must match bit for bit —
  // including on the stride-3 one-pixel clamp edge.
  struct Case {
    int n, in_ch, out_ch, stride, size;
  };
  for (const Case& c :
       {Case{2, 3, 8, 1, 7}, Case{2, 3, 8, 3, 15}, Case{3, 2, 5, 3, 1}}) {
    util::Pcg32 data_rng(71u + c.n);
    Tensor x = Tensor::randn({c.n, c.in_ch, c.size, c.size}, data_rng, 1.0);

    auto run = [&](ConvLayoutMode mode, Layout* y_layout, Tensor* y_rm,
                   Tensor* dx, std::vector<float>* grads) {
      set_conv_layout_mode(mode);
      util::Pcg32 rng(21);
      Conv2d conv(c.in_ch, c.out_ch, c.stride, rng, "t", Act::kLeakyReLU);
      Tensor y = conv.forward(x);
      *y_layout = y.layout();
      Tensor dy_rm(y.shape());
      util::Pcg32 grng(23);
      for (std::size_t i = 0; i < dy_rm.size(); ++i) {
        dy_rm[i] = static_cast<float>(grng.next_gaussian());
      }
      Tensor dy = to_layout(dy_rm, y.layout());
      *dx = conv.backward(dy);
      *y_rm = to_row_major(y);
      std::vector<Param> params;
      conv.collect_params(params);
      grads->clear();
      for (const Param& p : params) {
        grads->insert(grads->end(), p.grad->data(),
                      p.grad->data() + p.grad->size());
      }
    };

    Layout layout_compat, layout_cm;
    Tensor y_compat, y_cm, dx_compat, dx_cm;
    std::vector<float> g_compat, g_cm;
    run(ConvLayoutMode::kRowMajorCompat, &layout_compat, &y_compat,
        &dx_compat, &g_compat);
    run(ConvLayoutMode::kChannelMajor, &layout_cm, &y_cm, &dx_cm, &g_cm);

    // The modes must genuinely diverge in storage, not silently share a
    // path — otherwise this A/B proves nothing.
    EXPECT_EQ(layout_compat, Layout::kRowMajor);
    EXPECT_EQ(layout_cm, Layout::kChannelMajor);

    ASSERT_EQ(y_compat.size(), y_cm.size());
    EXPECT_TRUE(bit_equal(y_compat.data(), y_cm.data(), y_compat.size()));
    ASSERT_EQ(dx_compat.size(), dx_cm.size());
    EXPECT_TRUE(bit_equal(dx_compat.data(), dx_cm.data(), dx_compat.size()));
    ASSERT_EQ(g_compat.size(), g_cm.size());
    EXPECT_TRUE(bit_equal(g_compat.data(), g_cm.data(), g_compat.size()));
  }
}

TEST_F(KernelTest, FusedActivationMatchesSeparateLayer) {
  // Linear(Act::kLeakyReLU) must equal Linear(no act) + LeakyReLU exactly,
  // forward and backward — the epilogue fusion is pure plumbing.
  util::Pcg32 data_rng(3);
  Tensor x = Tensor::randn({7, 19}, data_rng, 1.0);
  Tensor dy = Tensor::randn({7, 11}, data_rng, 1.0);

  util::Pcg32 rng_a(9);
  Linear fused(19, 11, rng_a, "t", Act::kLeakyReLU);
  Tensor y_fused = fused.forward(x);
  Tensor dx_fused = fused.backward(dy);

  util::Pcg32 rng_b(9);
  Linear plain(19, 11, rng_b, "t");
  LeakyReLU act;
  Tensor y_plain = act.forward(plain.forward(x));
  Tensor dx_plain = plain.backward(act.backward(dy));

  EXPECT_TRUE(bit_equal(y_fused.data(), y_plain.data(), y_fused.size()));
  EXPECT_TRUE(bit_equal(dx_fused.data(), dx_plain.data(), dx_fused.size()));
}

TEST_F(KernelTest, ScratchSurvivesShapeChanges) {
  // One layer instance driven through growing and shrinking batches: the
  // reusable scratch must resize correctly and stale contents must never
  // leak into results (compare against a fresh layer per shape).
  util::Pcg32 rng_a(111);
  Linear reused(23, 31, rng_a, "reused", Act::kLeakyReLU);
  for (int rows : {16, 3, 40, 1, 7}) {
    util::Pcg32 data_rng(rows);
    Tensor x = Tensor::randn({rows, 23}, data_rng, 1.0);

    Tensor y_reused = reused.forward(x);

    util::Pcg32 rng_b(111);
    Linear fresh(23, 31, rng_b, "fresh", Act::kLeakyReLU);
    Tensor y_fresh = fresh.forward(x);

    EXPECT_TRUE(bit_equal(y_reused.data(), y_fresh.data(), y_fresh.size()))
        << "rows " << rows;
  }
}

}  // namespace
}  // namespace sma::nn
