// Tests for the observability layer (src/obs/): span tracing, the metrics
// registry, Chrome-trace export, the unified run report, and the
// non-negotiable gate — tracing must never change what the pipeline
// computes (byte-identical layouts and models with tracing on or off, at
// any thread count). The SpanGuard/TimedSpan/Registry *classes* exist in
// both SMA_OBS modes (only the macros compile out), so everything here
// runs under -DSMA_OBS=OFF too.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/dl_attack.hpp"
#include "layout/def_io.hpp"
#include "layout/design.hpp"
#include "netlist/generator.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "runtime/thread_pool.hpp"
#include "test_support.hpp"
#include "util/logging.hpp"

namespace sma::obs {
namespace {

/// Structural JSON check: braces/brackets balance outside of strings and
/// nothing trails the root value. Not a full parser, but catches the
/// escaping and nesting mistakes a hand-rolled serializer can make.
bool json_balanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool root_closed = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (root_closed && !std::isspace(static_cast<unsigned char>(c))) {
      return false;  // trailing garbage after the root value
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        if (depth == 0) root_closed = true;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string && root_closed;
}

/// Fresh trace session for a test; restores the disabled state on exit.
struct TraceSession {
  TraceSession() { set_tracing_enabled(true); }
  ~TraceSession() { set_tracing_enabled(false); }
};

TEST(Histogram, BucketOfMatchesPowerOfTwoEdges) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  // The top bucket is open-ended.
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(2), 2u);
  EXPECT_EQ(Histogram::bucket_floor(3), 4u);
  EXPECT_EQ(Histogram::bucket_floor(11), 1024u);
  // Every value lands in the bucket whose floor it is >= to.
  for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull, 65535ull, 65536ull}) {
    const int b = Histogram::bucket_of(v);
    EXPECT_GE(v, Histogram::bucket_floor(b)) << "value " << v;
    if (b < Histogram::kNumBuckets - 1) {
      EXPECT_LT(v, Histogram::bucket_floor(b + 1)) << "value " << v;
    }
  }
}

TEST(Histogram, ObserveAccumulatesCountSumBuckets) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1007u);
  EXPECT_EQ(h.bucket(0), 1u);  // [0, 1)
  EXPECT_EQ(h.bucket(1), 1u);  // [1, 2)
  EXPECT_EQ(h.bucket(2), 2u);  // [2, 4)
  EXPECT_EQ(h.bucket(10), 1u);  // [512, 1024)
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Registry, SnapshotOrderIsLexicographicNotRegistrationOrder) {
  Registry a;
  a.counter("zebra").add(1);
  a.counter("alpha").add(2);
  a.gauge("mid").set(-7);
  a.histogram("late").observe(3);
  a.histogram("early").observe(9);

  Registry b;  // same metrics, opposite registration order
  b.histogram("early").observe(9);
  b.histogram("late").observe(3);
  b.gauge("mid").set(-7);
  b.counter("alpha").add(2);
  b.counter("zebra").add(1);

  const Registry::Snapshot sa = a.snapshot();
  const Registry::Snapshot sb = b.snapshot();
  ASSERT_EQ(sa.counters.size(), 2u);
  EXPECT_EQ(sa.counters[0].first, "alpha");
  EXPECT_EQ(sa.counters[1].first, "zebra");
  EXPECT_EQ(sa.counters, sb.counters);
  EXPECT_EQ(sa.gauges, sb.gauges);
  ASSERT_EQ(sa.histograms.size(), 2u);
  EXPECT_EQ(sa.histograms[0].name, "early");
  EXPECT_EQ(sa.histograms[1].name, "late");
  for (std::size_t i = 0; i < sa.histograms.size(); ++i) {
    EXPECT_EQ(sa.histograms[i].count, sb.histograms[i].count);
    EXPECT_EQ(sa.histograms[i].sum, sb.histograms[i].sum);
    EXPECT_EQ(sa.histograms[i].buckets, sb.histograms[i].buckets);
  }
}

TEST(Registry, FindOrCreateReturnsStableReferences) {
  Registry r;
  Counter& c1 = r.counter("x");
  Counter& c2 = r.counter("x");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);
  r.reset();  // zeroes values, keeps registrations
  EXPECT_EQ(c1.value(), 0u);
  EXPECT_EQ(&r.counter("x"), &c1);
}

TEST(Trace, SpansNestAndCarryArgs) {
  TraceSession session;
  {
    SpanGuard outer("test", "outer");
    SpanGuard inner("test", "inner", 42);
  }
  const std::vector<TraceEvent> events = collect_events();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_STREQ(outer->cat, "test");
  EXPECT_EQ(outer->arg, kNoArg);
  EXPECT_EQ(inner->arg, 42);
  // Nesting: the inner span lies within the outer span's interval, on the
  // same thread.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
}

TEST(Trace, EnableStartsAFreshSession) {
  {
    TraceSession session;
    SpanGuard stale("test", "stale_event");
  }
  TraceSession session;  // re-enable: new epoch
  { SpanGuard fresh("test", "fresh_event"); }
  bool saw_stale = false;
  bool saw_fresh = false;
  for (const TraceEvent& e : collect_events()) {
    if (std::string(e.name) == "stale_event") saw_stale = true;
    if (std::string(e.name) == "fresh_event") saw_fresh = true;
  }
  EXPECT_FALSE(saw_stale) << "events from a previous session were exported";
  EXPECT_TRUE(saw_fresh);
}

TEST(Trace, DisabledRecordsNothing) {
  set_tracing_enabled(false);
  { SpanGuard ghost("test", "ghost"); }
  for (const TraceEvent& e : collect_events()) {
    EXPECT_STRNE(e.name, "ghost");
  }
}

TEST(Trace, ThreadsAreAttributedDistinctTids) {
  TraceSession session;
  { SpanGuard main_span("test", "tid_main"); }
  std::thread worker([] { SpanGuard t("test", "tid_worker"); });
  worker.join();
  int main_tid = -1;
  int worker_tid = -1;
  for (const TraceEvent& e : collect_events()) {
    if (std::string(e.name) == "tid_main") main_tid = e.tid;
    if (std::string(e.name) == "tid_worker") worker_tid = e.tid;
  }
  ASSERT_GE(main_tid, 0);
  ASSERT_GE(worker_tid, 0);
  EXPECT_NE(main_tid, worker_tid);
  // The trace tid is the logging thread ordinal, so log lines correlate.
  EXPECT_EQ(main_tid, util::thread_ordinal());
}

TEST(Trace, RingWrapCountsDroppedEvents) {
  set_ring_capacity(16);
  TraceSession session;
  // A fresh thread gets a fresh (small) ring; overflow it.
  std::thread worker([] {
    for (int i = 0; i < 100; ++i) {
      SpanGuard s("test", "wrap_span");
    }
  });
  worker.join();
  set_ring_capacity(std::size_t{1} << 16);  // restore the default
  EXPECT_GE(dropped_events(), 84u);
  // The survivors are the newest events, and collect still works.
  int wraps = 0;
  for (const TraceEvent& e : collect_events()) {
    if (std::string(e.name) == "wrap_span") ++wraps;
  }
  EXPECT_GT(wraps, 0);
  EXPECT_LE(wraps, 16);
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
  TraceSession session;
  {
    SpanGuard plain("cat\"with\\quotes", "span \"quoted\" name");
    SpanGuard arg("test", "with_arg", -5);
  }
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": -5}"), std::string::npos);
  // Quotes and backslashes in names must be escaped.
  EXPECT_NE(json.find("span \\\"quoted\\\" name"), std::string::npos);

  // An empty session still serializes to valid JSON.
  set_tracing_enabled(false);
  set_tracing_enabled(true);  // bump epoch: no events yet
  std::ostringstream out;
  write_chrome_trace(out);
  EXPECT_TRUE(json_balanced(out.str())) << out.str();
}

TEST(Trace, TimedSpanMeasuresRegardlessOfTracing) {
  set_tracing_enabled(false);
  TimedSpan span("test", "timed");
  const double mid = span.seconds();
  EXPECT_GE(mid, 0.0);
  const double total = span.stop();
  EXPECT_GE(total, mid);
  // stop() is idempotent and seconds() freezes at the stopped value.
  EXPECT_DOUBLE_EQ(span.stop(), total);
  EXPECT_DOUBLE_EQ(span.seconds(), total);
}

TEST(Report, JsonHasSchemaAndIsWellFormed) {
  layout::Design design = test::small_routed_design(60, 3);
  RunReport report("unit\"test", 4);
  report.add_flow("small", design);
  const std::string json = report.to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"sma-run-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("unit\\\"test"), std::string::npos);
  for (const char* section :
       {"\"run\"", "\"flow\"", "\"train\"", "\"replicas\"", "\"split_cache\"",
        "\"kernels\"", "\"metrics\""}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
  // Sections not added serialize as null, not as garbage.
  EXPECT_NE(json.find("\"train\": null"), std::string::npos);
  EXPECT_NE(json.find("\"replicas\": null"), std::string::npos);
  // The flow row carries the per-phase seconds measured by run_flow.
  EXPECT_NE(json.find("\"route_seconds\""), std::string::npos);
}

// The gate the whole subsystem is designed around: observation must not
// perturb the computation. Layouts are compared as DEF text, models as
// serialized bytes, across tracing off/on and 1/4 threads.
TEST(ByteIdentity, FlowIsIdenticalWithTracingOnOrOff) {
  auto build_def = [](runtime::ThreadPool* pool) {
    netlist::GeneratorConfig config;
    config.num_inputs = 10;
    config.num_outputs = 6;
    config.num_gates = 80;
    config.seed = 21;
    netlist::Netlist nl =
        netlist::generate_netlist(config, "ident", &test::library());
    layout::FlowConfig flow;
    flow.seed = 21;
    return layout::to_def_string(layout::run_flow(std::move(nl), flow, pool));
  };

  set_tracing_enabled(false);
  const std::string reference = build_def(nullptr);
  {
    TraceSession session;
    runtime::ThreadPool serial(1);
    runtime::ThreadPool wide(4);
    EXPECT_EQ(build_def(nullptr), reference);
    EXPECT_EQ(build_def(&serial), reference);
    EXPECT_EQ(build_def(&wide), reference);
  }
  // And again after the trace session ended.
  EXPECT_EQ(build_def(nullptr), reference);
}

TEST(ByteIdentity, TrainedModelIsIdenticalWithTracingOnOrOff) {
  const test::SmallSplit& s = test::shared_split(3, 400, 13);
  auto train_bytes = [&](runtime::ThreadPool* pool) {
    attack::DatasetConfig dataset_config;
    dataset_config.candidates.max_candidates = 8;
    dataset_config.build_images = false;
    dataset_config.pool = pool;
    std::vector<attack::QueryDataset> training;
    training.emplace_back(s.split.get(), dataset_config);
    std::vector<attack::QueryDataset> validation;

    nn::NetConfig net_config;
    net_config.hidden = 16;
    net_config.vector_res_blocks = 1;
    net_config.merged_res_blocks = 1;
    net_config.use_images = false;

    attack::TrainConfig train_config;
    train_config.epochs = 2;
    train_config.max_queries_per_design = 120;

    attack::DlAttack dl(net_config);
    dl.train(training, validation, train_config, pool);
    std::ostringstream bytes;
    dl.attack(*training.begin(), pool);  // exercise the replica path too
    dl.net().save(bytes);
    return bytes.str();
  };

  set_tracing_enabled(false);
  const std::string reference = train_bytes(nullptr);
  {
    TraceSession session;
    runtime::ThreadPool wide(4);
    EXPECT_EQ(train_bytes(nullptr), reference);
    EXPECT_EQ(train_bytes(&wide), reference);
  }
}

TEST(Obs, CompiledModeIsReportedInTheReport) {
  RunReport report("mode", 1);
  const std::string json = report.to_json();
  const std::string expected = compiled()
                                   ? "\"obs_compiled\": true"
                                   : "\"obs_compiled\": false";
  EXPECT_NE(json.find(expected), std::string::npos) << json;
}

}  // namespace
}  // namespace sma::obs

namespace sma::util {
namespace {

/// Restores the global log level (and SMA_LOG_LEVEL) after each test so
/// the rest of the binary keeps its quiet default.
class LoggingEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override {
    unsetenv("SMA_LOG_LEVEL");
    set_log_level(saved_);
  }
  LogLevel saved_;
};

TEST_F(LoggingEnvTest, ParsesLevelNames) {
  set_log_level(LogLevel::kError);
  setenv("SMA_LOG_LEVEL", "debug", 1);
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  setenv("SMA_LOG_LEVEL", "warn", 1);
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingEnvTest, ParsesNumericLevels) {
  set_log_level(LogLevel::kError);
  setenv("SMA_LOG_LEVEL", "2", 1);
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST_F(LoggingEnvTest, UnsetOrInvalidLeavesLevelUnchanged) {
  set_log_level(LogLevel::kWarn);
  unsetenv("SMA_LOG_LEVEL");
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  setenv("SMA_LOG_LEVEL", "chatty", 1);
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

/// Streamable probe: records whether the logger actually formatted it.
struct FormatProbe {
  mutable bool* formatted;
};
std::ostream& operator<<(std::ostream& out, const FormatProbe& p) {
  *p.formatted = true;
  return out;
}

TEST(Logging, FilteredMessagesSkipFormatting) {
  const LogLevel saved = log_level();
  bool formatted = false;
  set_log_level(LogLevel::kError);
  log_debug() << FormatProbe{&formatted};  // filtered: must not format
  EXPECT_FALSE(formatted);
  log_error() << FormatProbe{&formatted};  // enabled: must format
  EXPECT_TRUE(formatted);
  set_log_level(saved);
}

TEST(Logging, ThreadOrdinalsAreStableAndDistinct) {
  const int mine = thread_ordinal();
  EXPECT_EQ(thread_ordinal(), mine);  // stable within a thread
  int other = -1;
  std::thread t([&other] { other = thread_ordinal(); });
  t.join();
  EXPECT_GE(other, 0);
  EXPECT_NE(other, mine);
}

}  // namespace
}  // namespace sma::util
