#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sma::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Pcg32 rng(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInClosedRange) {
  Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.next_in(42, 42), 42);
}

TEST(Rng, DoubleInUnitInterval) {
  Pcg32 rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BoolProbabilityRoughlyHolds) {
  Pcg32 rng(17);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.03);
}

TEST(Rng, GaussianMoments) {
  Pcg32 rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    double v = rng.next_gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
  EXPECT_NEAR(sq / trials, 1.0, 0.08);
}

TEST(Rng, WeightedSamplingRespectsWeights) {
  Pcg32 rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.next_weighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.5);
}

TEST(Rng, WeightedAllZeroReturnsLastIndex) {
  Pcg32 rng(29);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.next_weighted(weights), 2u);
}

TEST(Rng, ForkProducesDecorrelatedStream) {
  Pcg32 a(31);
  Pcg32 b = a.fork(1);
  Pcg32 c = a.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (b.next_u32() == c.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, ShuffleIsPermutationAndDeterministic) {
  std::vector<int> v1 = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> v2 = v1;
  Pcg32 r1(37);
  Pcg32 r2(37);
  shuffle(v1, r1);
  shuffle(v2, r2);
  EXPECT_EQ(v1, v2);
  std::sort(v1.begin(), v1.end());
  EXPECT_EQ(v1, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

}  // namespace
}  // namespace sma::util
