#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/generator.hpp"
#include "place/detailed_placer.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "runtime/thread_pool.hpp"
#include "test_support.hpp"

namespace sma::place {
namespace {

netlist::Netlist medium_netlist(std::uint64_t seed = 21) {
  netlist::GeneratorConfig config;
  config.num_inputs = 10;
  config.num_outputs = 5;
  config.num_gates = 150;
  config.seed = seed;
  return netlist::generate_netlist(config, "m", &sma::test::library());
}

TEST(GlobalPlacer, ImprovesHpwlOverRandom) {
  netlist::Netlist nl = medium_netlist();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);

  // Random baseline: scatter deterministically.
  util::Pcg32 rng(1);
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    placement.set_cell_origin(
        c, {static_cast<std::int64_t>(rng.next_double() * fp.die.width()),
            static_cast<std::int64_t>(rng.next_double() * fp.die.height())});
  }
  std::int64_t random_hpwl = placement.total_hpwl();

  run_global_placement(placement);
  std::int64_t placed_hpwl = placement.total_hpwl();
  EXPECT_LT(placed_hpwl, random_hpwl);
}

TEST(GlobalPlacer, KeepsCellsInsideDie) {
  netlist::Netlist nl = medium_netlist();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  run_global_placement(placement);
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const util::Point& p = placement.cell_origin(c);
    EXPECT_GE(p.x, 0);
    EXPECT_GE(p.y, 0);
    EXPECT_LT(p.x, fp.die.hi.x);
    EXPECT_LT(p.y, fp.die.hi.y);
  }
}

TEST(GlobalPlacer, DeterministicInSeed) {
  netlist::Netlist nl = medium_netlist();
  Floorplan fp = make_floorplan(nl);
  Placement p1(&nl, fp);
  Placement p2(&nl, fp);
  run_global_placement(p1);
  run_global_placement(p2);
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    EXPECT_EQ(p1.cell_origin(c), p2.cell_origin(c));
  }
}

TEST(GlobalPlacer, ParallelBitIdenticalToSerial) {
  // Lane accumulation and band sorts are scheduled by the config, never
  // the thread count: pools of any size must land every cell on exactly
  // the serial coordinates. Two design profiles, threads {1, 2, 4}.
  for (std::uint64_t seed : {21ull, 97ull}) {
    netlist::Netlist nl = medium_netlist(seed);
    Floorplan fp = make_floorplan(nl);
    Placement serial(&nl, fp);
    run_global_placement(serial);
    for (int threads : {2, 4}) {
      runtime::ThreadPool pool(threads - 1);
      Placement parallel(&nl, fp);
      run_global_placement(parallel, {}, &pool);
      for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
        ASSERT_EQ(serial.cell_origin(c), parallel.cell_origin(c))
            << "seed " << seed << ", threads " << threads << ", cell " << c;
      }
    }
  }
}

TEST(GlobalPlacer, ParallelStableAcrossRuns) {
  netlist::Netlist nl = medium_netlist(33);
  Floorplan fp = make_floorplan(nl);
  runtime::ThreadPool pool(3);
  Placement first(&nl, fp);
  Placement second(&nl, fp);
  run_global_placement(first, {}, &pool);
  run_global_placement(second, {}, &pool);
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    ASSERT_EQ(first.cell_origin(c), second.cell_origin(c));
  }
}

TEST(GlobalPlacer, RejectsNonPositiveRelaxLanes) {
  netlist::Netlist nl = medium_netlist();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  GlobalPlacerConfig config;
  config.relax_lanes = 0;
  EXPECT_THROW(run_global_placement(placement, config), std::invalid_argument);
}

TEST(GlobalPlacer, SingleLaneMatchesLegacyAccumulationShape) {
  // relax_lanes = 1 is the legacy accumulation order. It generally
  // differs from the default lane count in last-ulp ways, but it must be
  // self-consistent and parallel-invariant like any other lane count.
  netlist::Netlist nl = medium_netlist(5);
  Floorplan fp = make_floorplan(nl);
  GlobalPlacerConfig config;
  config.relax_lanes = 1;
  Placement serial(&nl, fp);
  run_global_placement(serial, config);
  runtime::ThreadPool pool(2);
  Placement parallel(&nl, fp);
  run_global_placement(parallel, config, &pool);
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    ASSERT_EQ(serial.cell_origin(c), parallel.cell_origin(c));
  }
}

TEST(Legalizer, ProducesLegalPlacement) {
  netlist::Netlist nl = medium_netlist();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  run_global_placement(placement);
  run_legalization(placement);
  std::vector<std::string> problems;
  EXPECT_TRUE(placement.is_legal(&problems))
      << (problems.empty() ? "" : problems.front());
}

TEST(Legalizer, SmallDisplacement) {
  netlist::Netlist nl = medium_netlist();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  run_global_placement(placement);
  std::vector<util::Point> before;
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    before.push_back(placement.cell_origin(c));
  }
  run_legalization(placement);
  std::int64_t total_displacement = 0;
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    total_displacement +=
        util::manhattan(before[c], placement.cell_origin(c));
  }
  double avg = static_cast<double>(total_displacement) / nl.num_cells();
  // Average displacement under ~4 row heights indicates a sane legalizer.
  EXPECT_LT(avg, 4.0 * fp.row_height);
}

TEST(DetailedPlacer, NeverWorsensHpwlAndStaysLegal) {
  netlist::Netlist nl = medium_netlist();
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  run_global_placement(placement);
  run_legalization(placement);
  std::int64_t before = placement.total_hpwl();
  std::int64_t gain = run_detailed_placement(placement);
  std::int64_t after = placement.total_hpwl();
  EXPECT_EQ(before - after, gain);
  EXPECT_GE(gain, 0);
  EXPECT_TRUE(placement.is_legal());
}

TEST(Legalizer, WorksOnEmptyAndTinyNetlists) {
  netlist::GeneratorConfig config;
  config.num_inputs = 2;
  config.num_outputs = 1;
  config.num_gates = 1;
  netlist::Netlist nl =
      netlist::generate_netlist(config, "tiny", &sma::test::library());
  Floorplan fp = make_floorplan(nl);
  Placement placement(&nl, fp);
  run_global_placement(placement);
  EXPECT_NO_THROW(run_legalization(placement));
  EXPECT_TRUE(placement.is_legal());
}

}  // namespace
}  // namespace sma::place
