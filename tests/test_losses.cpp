// Loss tests, verifying the implementation against Eqs. (3)-(8) of the
// paper both analytically and with numerical differentiation.
#include "nn/losses.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sma::nn {
namespace {

TEST(SoftmaxRegressionLoss, MatchesEquation6) {
  Tensor scores({3});
  scores[0] = 1.0f;
  scores[1] = 2.0f;
  scores[2] = 0.5f;
  LossResult r = softmax_regression_loss(scores, 1);
  double denom = std::exp(1.0) + std::exp(2.0) + std::exp(0.5);
  EXPECT_NEAR(r.loss, -std::log(std::exp(2.0) / denom), 1e-6);
}

TEST(SoftmaxRegressionLoss, GradientMatchesEquation7) {
  Tensor scores({4});
  scores[0] = 0.3f;
  scores[1] = -1.2f;
  scores[2] = 2.0f;
  scores[3] = 0.0f;
  const int target = 2;
  LossResult r = softmax_regression_loss(scores, target);
  double denom = 0.0;
  for (int j = 0; j < 4; ++j) denom += std::exp(scores[j]);
  for (int j = 0; j < 4; ++j) {
    double p = std::exp(scores[j]) / denom;
    double expected = p - (j == target ? 1.0 : 0.0);
    EXPECT_NEAR(r.grad[j], expected, 1e-6);
  }
}

TEST(SoftmaxRegressionLoss, GradientSumsToZero) {
  // The positive and negative gradient coefficients balance (the paper's
  // no-imbalance argument): sum_j dL/ds_j = 0.
  util::Pcg32 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng.next_below(10));
    Tensor scores({n});
    for (int j = 0; j < n; ++j) {
      scores[j] = static_cast<float>(rng.next_gaussian());
    }
    LossResult r = softmax_regression_loss(
        scores, static_cast<int>(rng.next_below(n)));
    double sum = 0.0;
    for (int j = 0; j < n; ++j) sum += r.grad[j];
    EXPECT_NEAR(sum, 0.0, 1e-5);
  }
}

TEST(SoftmaxRegressionLoss, NumericalGradient) {
  util::Pcg32 rng(7);
  Tensor scores({5});
  for (int j = 0; j < 5; ++j) {
    scores[j] = static_cast<float>(rng.next_gaussian());
  }
  LossResult r = softmax_regression_loss(scores, 3);
  const float eps = 1e-3f;
  for (int j = 0; j < 5; ++j) {
    Tensor sp = scores;
    sp[j] += eps;
    Tensor sm = scores;
    sm[j] -= eps;
    double numeric = (softmax_regression_loss(sp, 3).loss -
                      softmax_regression_loss(sm, 3).loss) /
                     (2.0 * eps);
    EXPECT_NEAR(r.grad[j], numeric, 1e-3);
  }
}

TEST(SoftmaxRegressionLoss, PerfectPredictionHasLowLoss) {
  Tensor scores({3});
  scores[0] = -10.0f;
  scores[1] = 10.0f;
  scores[2] = -10.0f;
  EXPECT_LT(softmax_regression_loss(scores, 1).loss, 1e-6);
  EXPECT_GT(softmax_regression_loss(scores, 0).loss, 10.0);
}

TEST(SoftmaxRegressionLoss, InvalidInputsRejected) {
  Tensor scores({3});
  EXPECT_THROW(softmax_regression_loss(scores, -1), std::invalid_argument);
  EXPECT_THROW(softmax_regression_loss(scores, 3), std::invalid_argument);
  Tensor matrix({3, 2});
  EXPECT_THROW(softmax_regression_loss(matrix, 0), std::invalid_argument);
}

TEST(TwoClassLoss, MatchesEquation3) {
  Tensor scores({2, 2});
  // candidate 0: s- = 0.5, s+ = 1.5 ; candidate 1: s- = 1.0, s+ = -1.0
  scores[0] = 0.5f;
  scores[1] = 1.5f;
  scores[2] = 1.0f;
  scores[3] = -1.0f;
  LossResult r = two_class_loss(scores, 0);
  double p0_pos = std::exp(1.5) / (std::exp(0.5) + std::exp(1.5));
  double p1_neg = std::exp(1.0) / (std::exp(1.0) + std::exp(-1.0));
  double expected = -(std::log(p0_pos) + std::log(p1_neg)) / 2.0;
  EXPECT_NEAR(r.loss, expected, 1e-6);
}

TEST(TwoClassLoss, GradientSignsFollowEquation4) {
  Tensor scores({3, 2});
  for (int i = 0; i < 6; ++i) scores[i] = 0.1f * i;
  LossResult r = two_class_loss(scores, 1);
  // Positive candidate: gradient pushes s+ up (negative grad on s+).
  EXPECT_LT(r.grad[1 * 2 + 1], 0.0f);
  EXPECT_GT(r.grad[1 * 2 + 0], 0.0f);
  // Negative candidates: gradient pushes s+ down.
  EXPECT_GT(r.grad[0 * 2 + 1], 0.0f);
  EXPECT_LT(r.grad[0 * 2 + 0], 0.0f);
}

TEST(TwoClassLoss, NumericalGradient) {
  util::Pcg32 rng(11);
  Tensor scores({4, 2});
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<float>(rng.next_gaussian());
  }
  LossResult r = two_class_loss(scores, 2);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    Tensor sp = scores;
    sp[i] += eps;
    Tensor sm = scores;
    sm[i] -= eps;
    double numeric =
        (two_class_loss(sp, 2).loss - two_class_loss(sm, 2).loss) /
        (2.0 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-3);
  }
}

TEST(TwoClassLoss, PositiveGradientScalesWithN) {
  // The paper's imbalance critique: the positive sample's gradient is
  // divided by n, shrinking as candidate lists grow.
  auto positive_grad_magnitude = [](int n) {
    Tensor scores({n, 2});
    LossResult r = two_class_loss(scores, 0);
    return std::abs(r.grad[1]);
  };
  EXPECT_GT(positive_grad_magnitude(2), positive_grad_magnitude(20) * 5);
}

TEST(Predict, SingleScoreArgmax) {
  Tensor scores({4});
  scores[0] = 0.1f;
  scores[1] = 3.0f;
  scores[2] = -1.0f;
  scores[3] = 2.9f;
  EXPECT_EQ(predict(scores), 1);
}

TEST(Predict, TwoClassMargin) {
  Tensor scores({2, 2});
  scores[0] = 0.0f;  // candidate 0: margin 1.0
  scores[1] = 1.0f;
  scores[2] = -2.0f;  // candidate 1: margin 3.0
  scores[3] = 1.0f;
  EXPECT_EQ(predict(scores), 1);
}

}  // namespace
}  // namespace sma::nn
