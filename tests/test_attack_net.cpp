#include "nn/attack_net.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <ostream>
#include <sstream>
#include <streambuf>

#include "nn/losses.hpp"
#include "nn/optimizer.hpp"

namespace sma::nn {
namespace {

NetConfig tiny_config(bool use_images, bool two_class = false) {
  NetConfig config;
  config.hidden = 16;
  config.vector_res_blocks = 2;
  config.merged_res_blocks = 1;
  config.use_images = use_images;
  config.image_channels = 2;
  config.conv_channels = {4, 6, 8, 10};
  config.image_fc = 24;
  config.fc6_width = 8;
  config.two_class = two_class;
  return config;
}

QueryInput tiny_input(int n, bool use_images, std::uint64_t seed = 1) {
  util::Pcg32 rng(seed);
  QueryInput input;
  input.vec = Tensor::randn({n, 27}, rng, 1.0);
  if (use_images) {
    input.images = Tensor::randn({n + 1, 2, 15, 15}, rng, 0.3);
  }
  return input;
}

TEST(AttackNet, VectorOnlyForwardShape) {
  AttackNet net(tiny_config(false));
  Tensor scores = net.forward(tiny_input(7, false));
  EXPECT_EQ(scores.shape(), (std::vector<int>{7}));
}

TEST(AttackNet, WithImagesForwardShape) {
  AttackNet net(tiny_config(true));
  Tensor scores = net.forward(tiny_input(5, true));
  EXPECT_EQ(scores.shape(), (std::vector<int>{5}));
}

TEST(AttackNet, TwoClassForwardShape) {
  AttackNet net(tiny_config(true, true));
  Tensor scores = net.forward(tiny_input(5, true));
  EXPECT_EQ(scores.shape(), (std::vector<int>{5, 2}));
}

TEST(AttackNet, VariableBatchSizes) {
  AttackNet net(tiny_config(true));
  for (int n : {1, 3, 9}) {
    Tensor scores = net.forward(tiny_input(n, true));
    EXPECT_EQ(scores.dim(0), n);
  }
}

TEST(AttackNet, DeterministicForward) {
  AttackNet a(tiny_config(true));
  AttackNet b(tiny_config(true));
  Tensor sa = a.forward(tiny_input(4, true));
  Tensor sb = b.forward(tiny_input(4, true));
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_FLOAT_EQ(sa[i], sb[i]);
  }
}

TEST(AttackNet, RejectsBadInput) {
  AttackNet net(tiny_config(true));
  QueryInput bad = tiny_input(4, true);
  bad.vec = Tensor({4, 5});  // wrong feature width
  EXPECT_THROW(net.forward(bad), std::invalid_argument);
  QueryInput bad2 = tiny_input(4, true);
  bad2.images = Tensor({4, 2, 15, 15});  // n images instead of n+1
  EXPECT_THROW(net.forward(bad2), std::invalid_argument);
}

TEST(AttackNet, EndToEndGradientCheck) {
  // Numerical gradient through the whole network on a handful of inputs.
  NetConfig config = tiny_config(true);
  AttackNet net(config);
  QueryInput input = tiny_input(3, true, 7);
  const int target = 1;

  Tensor scores = net.forward(input);
  LossResult loss = softmax_regression_loss(scores, target);
  net.backward(loss.grad);

  // Gradient w.r.t. fc1 weights via finite differences.
  std::vector<Param> params = net.params();
  Param* fc1_w = nullptr;
  for (Param& p : params) {
    if (p.name == "fc1.w") fc1_w = &p;
  }
  ASSERT_NE(fc1_w, nullptr);

  const float eps = 1e-2f;
  util::Pcg32 pick(3);
  for (int trial = 0; trial < 6; ++trial) {
    std::size_t i =
        pick.next_below(static_cast<std::uint32_t>(fc1_w->value->size()));
    float saved = (*fc1_w->value)[i];
    (*fc1_w->value)[i] = saved + eps;
    double lp =
        softmax_regression_loss(net.forward(input), target).loss;
    (*fc1_w->value)[i] = saved - eps;
    double lm =
        softmax_regression_loss(net.forward(input), target).loss;
    (*fc1_w->value)[i] = saved;
    double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR((*fc1_w->grad)[i], numeric, 5e-2)
        << "fc1.w gradient mismatch at " << i;
  }
}

TEST(AttackNet, LearnsSyntheticRule) {
  // Teach the net "the candidate with the largest feature-0 wins" on
  // random data; it should fit quickly.
  NetConfig config = tiny_config(false);
  AttackNet net(config);
  AdamConfig adam_config;
  adam_config.lr = 0.005;
  Adam adam(net.params(), adam_config);

  util::Pcg32 rng(17);
  double last_loss = 0.0;
  for (int step = 0; step < 900; ++step) {
    const int n = 6;
    QueryInput input;
    input.vec = Tensor::randn({n, 27}, rng, 1.0);
    int target = 0;
    for (int j = 1; j < n; ++j) {
      if (input.vec[static_cast<std::size_t>(j) * 27] >
          input.vec[static_cast<std::size_t>(target) * 27]) {
        target = j;
      }
    }
    Tensor scores = net.forward(input);
    LossResult loss = softmax_regression_loss(scores, target);
    net.backward(loss.grad);
    adam.step();
    last_loss = loss.loss;
  }
  // Check accuracy on fresh samples.
  int correct = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const int n = 6;
    QueryInput input;
    input.vec = Tensor::randn({n, 27}, rng, 1.0);
    int target = 0;
    for (int j = 1; j < n; ++j) {
      if (input.vec[static_cast<std::size_t>(j) * 27] >
          input.vec[static_cast<std::size_t>(target) * 27]) {
        target = j;
      }
    }
    if (predict(net.forward(input)) == target) ++correct;
  }
  EXPECT_GT(correct, trials * 3 / 5)
      << "net failed to learn an easy rule; last loss " << last_loss;
}

TEST(AttackNet, SaveLoadRoundTrip) {
  AttackNet net(tiny_config(true));
  QueryInput input = tiny_input(4, true, 11);
  Tensor before = net.forward(input);

  std::stringstream buffer;
  net.save(buffer);
  AttackNet restored = AttackNet::load(buffer);
  Tensor after = restored.forward(input);

  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
  EXPECT_EQ(restored.config().hidden, 16);
  EXPECT_TRUE(restored.config().use_images);
}

TEST(AttackNet, LoadRejectsGarbage) {
  std::stringstream buffer;
  buffer << "not a model";
  EXPECT_THROW(AttackNet::load(buffer), std::runtime_error);
}

TEST(AttackNet, LoadRejectsHostileHeaderFieldsBeforeAllocating) {
  // Fuzz the 64-byte header of a valid model: magic u32 at 0, then the
  // config ints (vector_dim @4, hidden @8, vector_res_blocks @12,
  // merged_res_blocks @16, use_images @20, image_channels @24,
  // conv_channels @28..40, image_fc @44, fc6_width @48, two_class @52),
  // then the u64 seed @56. Every out-of-range value must be rejected with
  // the typed ModelLoadError *before* tensor allocation — a hostile
  // header must never become a bad_alloc or a garbage network.
  AttackNet net(tiny_config(true));
  std::stringstream buffer;
  net.save(buffer);
  const std::string full = buffer.str();
  ASSERT_GE(full.size(), 64u);

  struct Patch {
    std::size_t offset;
    int value;
    const char* field;
  };
  const Patch patches[] = {
      {4, 0, "vector_dim zero"},
      {4, -27, "vector_dim negative"},
      {4, 0x7fffffff, "vector_dim huge"},
      {8, 0, "hidden zero"},
      {8, -16, "hidden negative"},
      {8, 0x7fffffff, "hidden huge"},
      {12, -1, "vector_res_blocks negative"},
      {12, 1 << 30, "vector_res_blocks huge"},
      {16, -2, "merged_res_blocks negative"},
      {20, 7, "use_images non-flag"},
      {24, 0, "image_channels zero"},
      {24, 1 << 20, "image_channels huge"},
      {28, -4, "conv_channels negative"},
      {32, 0x7fffffff, "conv_channels huge"},
      {44, 0, "image_fc zero"},
      {48, -8, "fc6_width negative"},
      {52, 3, "two_class non-flag"},
  };
  for (const Patch& patch : patches) {
    std::string damaged = full;
    std::memcpy(&damaged[patch.offset], &patch.value, sizeof(int));
    std::stringstream in(damaged);
    EXPECT_THROW(AttackNet::load(in), ModelLoadError) << patch.field;
  }

  // The unpatched stream still loads: the patches, not the fixture,
  // triggered the rejections.
  std::stringstream good(full);
  AttackNet restored = AttackNet::load(good);
  EXPECT_EQ(restored.config().hidden, 16);
}

TEST(AttackNet, LoadRejectsHeaderPromisingMoreWeightsThanStreamHolds) {
  // A header that is self-consistent but promises a bigger network than
  // the stream contains (e.g. a truncated download of a larger model)
  // must be rejected by the size-vs-remaining-bytes check, typed.
  AttackNet net(tiny_config(false));
  std::stringstream buffer;
  net.save(buffer);
  std::string bytes = buffer.str();
  const int big_hidden = 512;  // plausible but far beyond the stored weights
  std::memcpy(&bytes[8], &big_hidden, sizeof(int));
  std::stringstream in(bytes);
  EXPECT_THROW(AttackNet::load(in), ModelLoadError);
}

TEST(AttackNet, LoadTruncationThrowsTypedErrorAtEveryHeaderCut) {
  // Denser sweep than LoadRejectsTruncatedBuffer, asserting the *typed*
  // error: every cut inside the header and the early weight section.
  AttackNet net(tiny_config(false));
  std::stringstream buffer;
  net.save(buffer);
  const std::string full = buffer.str();
  for (std::size_t cut = 0; cut < 96 && cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(AttackNet::load(truncated), ModelLoadError)
        << "cut at byte " << cut;
  }
}

TEST(AttackNet, LoadRejectsTruncatedBuffer) {
  // The failure mode a silent partial save used to produce: a file cut
  // off at an arbitrary byte. load() must throw at every cut point, never
  // return a half-initialized network.
  AttackNet net(tiny_config(true));
  std::stringstream buffer;
  net.save(buffer);
  const std::string full = buffer.str();
  ASSERT_GT(full.size(), 64u);

  for (std::size_t cut :
       {full.size() / 7, full.size() / 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(AttackNet::load(truncated), std::runtime_error)
        << "cut at byte " << cut << " of " << full.size();
  }
}

namespace {

/// An output buffer that accepts only `capacity` bytes — a stand-in for a
/// full disk or closed pipe mid-save.
class CappedBuf : public std::streambuf {
 public:
  explicit CappedBuf(std::size_t capacity) : capacity_(capacity) {}

 protected:
  int_type overflow(int_type ch) override {
    if (written_ >= capacity_) return traits_type::eof();
    ++written_;
    return ch;
  }

 private:
  std::size_t capacity_;
  std::size_t written_ = 0;
};

}  // namespace

TEST(AttackNet, SaveThrowsWhenStreamFailsMidWrite) {
  AttackNet net(tiny_config(false));

  // Already-failed stream: the header write must be detected.
  std::stringstream dead;
  dead.setstate(std::ios::badbit);
  EXPECT_THROW(net.save(dead), std::runtime_error);

  // Stream that fails partway through the weights: previously save()
  // returned silently, leaving a truncated model file.
  CappedBuf capped(256);
  std::ostream out(&capped);
  EXPECT_THROW(net.save(out), std::runtime_error);
}

TEST(AttackNet, SaveLoadRoundTripAfterFailedAttempt) {
  // A failed save must not corrupt the net: a subsequent save to a good
  // stream round-trips.
  AttackNet net(tiny_config(false));
  CappedBuf capped(64);
  std::ostream bad(&capped);
  EXPECT_THROW(net.save(bad), std::runtime_error);

  std::stringstream good;
  net.save(good);
  AttackNet restored = AttackNet::load(good);
  QueryInput input = tiny_input(3, false, 21);
  Tensor a = net.forward(input);
  Tensor b = restored.forward(input);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(AttackNet, ParameterCountPaperConfigIsLarge) {
  AttackNet net(NetConfig::paper());
  // fc trunks alone: fc1 + 12 + 9 fc2 layers of 128x128 > 300k params.
  EXPECT_GT(net.num_parameters(), 500000u);
}

}  // namespace
}  // namespace sma::nn
