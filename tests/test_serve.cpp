// Batched inference + serving-loop contracts (src/serve/, PR "batched
// cross-query inference engine").
//
// The central claim under test: stacking B queries into one
// forward_batched pass is BYTE-identical per query to B separate
// forward calls — at every batch width, thread count, and batch
// composition — so the serving tier can coalesce requests freely without
// changing any answer. Plus the serving-loop lifecycle: shutdown drains
// in-flight requests deterministically, lease timeouts propagate to
// every waiting request of the stalled batch, and live leases show up in
// occupancy snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "attack/dl_attack.hpp"
#include "attack/replica_set.hpp"
#include "nn/losses.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/serve_loop.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace sma::attack {
namespace {

DatasetConfig serve_dataset_config() {
  DatasetConfig config;
  config.candidates.max_candidates = 8;
  config.images.size = 9;
  config.images.pixel_sizes = {200, 400};
  return config;
}

nn::NetConfig serve_net_config() {
  nn::NetConfig config;
  config.hidden = 16;
  config.vector_res_blocks = 1;
  config.merged_res_blocks = 1;
  config.image_channels = 2;
  config.conv_channels = {4, 6, 8, 10};
  config.image_fc = 16;
  config.fc6_width = 8;
  return config;
}

/// Shared trained model + victim dataset + the batch-1 serial baseline
/// (selections AND raw per-query score bytes). Built once: training even
/// the tiny image net dominates suite time otherwise.
struct ServeFixtureState {
  std::unique_ptr<DlAttack> dl;
  std::unique_ptr<QueryDataset> victim;
  AttackResult baseline;
  std::vector<std::vector<float>> baseline_scores;  ///< per query, [] if empty
};

ServeFixtureState& fixture() {
  static ServeFixtureState* state = [] {
    auto* s = new ServeFixtureState();
    const test::SmallSplit& train_split = test::shared_split(3, 400, 13);
    const test::SmallSplit& victim_split = test::shared_split(3, 400, 14);

    std::vector<QueryDataset> training;
    training.emplace_back(train_split.split.get(), serve_dataset_config());
    std::vector<QueryDataset> validation;

    TrainConfig train_config;
    train_config.epochs = 2;
    train_config.max_queries_per_design = 60;

    s->dl = std::make_unique<DlAttack>(serve_net_config());
    s->dl->train(training, validation, train_config);

    s->victim = std::make_unique<QueryDataset>(victim_split.split.get(),
                                               serve_dataset_config());
    s->baseline = s->dl->attack(*s->victim);

    // Raw batch-1 score bytes per query: the identity oracle.
    nn::QueryInput input;
    for (std::size_t i = 0; i < s->victim->num_queries(); ++i) {
      std::vector<float>& row = s->baseline_scores.emplace_back();
      if (s->victim->query(i).candidates.empty()) continue;
      s->victim->input_into(i, input);
      const nn::Tensor& scores = s->dl->net().forward(input);
      row.assign(scores.data(), scores.data() + scores.size());
    }
    return s;
  }();
  return *state;
}

void expect_selections_equal(const AttackResult& got,
                             const AttackResult& want) {
  ASSERT_EQ(got.selections.size(), want.selections.size());
  for (std::size_t i = 0; i < got.selections.size(); ++i) {
    EXPECT_EQ(got.selections[i].sink_fragment, want.selections[i].sink_fragment);
    EXPECT_EQ(got.selections[i].chosen_source, want.selections[i].chosen_source);
    EXPECT_EQ(got.selections[i].correct, want.selections[i].correct);
    EXPECT_EQ(got.selections[i].num_sinks, want.selections[i].num_sinks);
  }
  EXPECT_EQ(got.ccr, want.ccr);  // bit-equal, not approximately
}

TEST(BatchedAttack, BitIdenticalAcrossWidthsAndThreads) {
  ServeFixtureState& f = fixture();
  for (int width : {1, 2, 8, 64}) {
    {
      SCOPED_TRACE("serial width " + std::to_string(width));
      expect_selections_equal(f.dl->attack(*f.victim, nullptr, width),
                              f.baseline);
    }
    for (int threads : {1, 4}) {
      SCOPED_TRACE("threads " + std::to_string(threads) + " width " +
                   std::to_string(width));
      runtime::ThreadPool pool(threads);
      expect_selections_equal(f.dl->attack(*f.victim, &pool, width),
                              f.baseline);
    }
  }
}

TEST(BatchedAttack, ScoresBitEqualToBatchOne) {
  ServeFixtureState& f = fixture();
  const std::size_t n = f.victim->num_queries();
  ASSERT_GT(n, 8u);
  nn::BatchedQueryInput input;
  for (std::size_t width : {std::size_t{2}, std::size_t{8}, n}) {
    SCOPED_TRACE("width " + std::to_string(width));
    for (std::size_t base = 0; base < n; base += width) {
      const std::size_t count = std::min(width, n - base);
      f.victim->input_into_batch(base, count, input);
      ASSERT_EQ(input.query_rows.size(), count);
      int rows = 0;
      for (int nq : input.query_rows) rows += nq;
      if (rows == 0) continue;
      const nn::Tensor& scores = f.dl->net().forward_batched(input);
      ASSERT_EQ(scores.dim(0), rows);
      const float* s = scores.data();
      for (std::size_t k = 0; k < count; ++k) {
        const std::vector<float>& want = f.baseline_scores[base + k];
        ASSERT_EQ(static_cast<std::size_t>(input.query_rows[k]), want.size());
        EXPECT_EQ(std::memcmp(s, want.data(), want.size() * sizeof(float)), 0)
            << "query " << base + k << " diverges from batch-1";
        s += want.size();
      }
    }
  }
}

TEST(BatchedAttack, RaggedFinalBatch) {
  ServeFixtureState& f = fixture();
  const std::size_t n = f.victim->num_queries();
  ASSERT_GE(n, 3u);
  // A trailing batch narrower than the width: the last 3 queries alone.
  nn::BatchedQueryInput input;
  f.victim->input_into_batch(n - 3, 3, input);
  int rows = 0;
  for (int nq : input.query_rows) rows += nq;
  if (rows > 0) {
    const nn::Tensor& scores = f.dl->net().forward_batched(input);
    const float* s = scores.data();
    for (std::size_t k = 0; k < 3; ++k) {
      const std::vector<float>& want = f.baseline_scores[n - 3 + k];
      EXPECT_EQ(std::memcmp(s, want.data(), want.size() * sizeof(float)), 0);
      s += want.size();
    }
  }
  // A width that cannot divide the dataset evenly end-to-end.
  const int ragged_width = 7;
  expect_selections_equal(f.dl->attack(*f.victim, nullptr, ragged_width),
                          f.baseline);
}

TEST(BatchedAttack, SingleQueryDegenerateBatch) {
  ServeFixtureState& f = fixture();
  nn::BatchedQueryInput input;
  for (std::size_t i = 0; i < std::min<std::size_t>(4, f.victim->num_queries());
       ++i) {
    if (f.victim->query(i).candidates.empty()) continue;
    f.victim->input_into_batch(i, 1, input);
    ASSERT_EQ(input.query_rows.size(), 1u);
    const nn::Tensor& scores = f.dl->net().forward_batched(input);
    const std::vector<float>& want = f.baseline_scores[i];
    ASSERT_EQ(static_cast<std::size_t>(scores.size()), want.size());
    EXPECT_EQ(
        std::memcmp(scores.data(), want.data(), want.size() * sizeof(float)),
        0);
  }
}

TEST(BatchedForward, SkipsZeroRowQueries) {
  // Unit-level: a batch whose middle query has no candidates contributes
  // no rows and no planes, and the live queries' scores are bit-equal to
  // their solo forwards.
  nn::NetConfig config = serve_net_config();
  nn::AttackNet net(config);
  util::Pcg32 rng(11);
  nn::QueryInput a;
  a.vec = nn::Tensor::randn({3, 27}, rng, 1.0);
  a.images = nn::Tensor::randn({4, 2, 15, 15}, rng, 0.3);
  nn::QueryInput b;
  b.vec = nn::Tensor::randn({2, 27}, rng, 1.0);
  b.images = nn::Tensor::randn({3, 2, 15, 15}, rng, 0.3);

  std::vector<float> want_a, want_b;
  {
    const nn::Tensor& sa = net.forward(a);
    want_a.assign(sa.data(), sa.data() + sa.size());
    const nn::Tensor& sb = net.forward(b);
    want_b.assign(sb.data(), sb.data() + sb.size());
  }

  nn::BatchedQueryInput batch;
  batch.query_rows = {3, 0, 2};
  batch.vec = nn::Tensor({5, 27});
  std::memcpy(batch.vec.data(), a.vec.data(), 3 * 27 * sizeof(float));
  std::memcpy(batch.vec.data() + 3 * 27, b.vec.data(), 2 * 27 * sizeof(float));
  batch.images = nn::Tensor({7, 2, 15, 15});
  const std::size_t plane = 2 * 15 * 15;
  std::memcpy(batch.images.data(), a.images.data(), 4 * plane * sizeof(float));
  std::memcpy(batch.images.data() + 4 * plane, b.images.data(),
              3 * plane * sizeof(float));

  const nn::Tensor& scores = net.forward_batched(batch);
  ASSERT_EQ(scores.dim(0), 5);
  EXPECT_EQ(std::memcmp(scores.data(), want_a.data(),
                        want_a.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(scores.data() + want_a.size(), want_b.data(),
                        want_b.size() * sizeof(float)),
            0);
}

TEST(BatchedForward, RejectsBadBatches) {
  nn::AttackNet net(serve_net_config());
  nn::BatchedQueryInput batch;
  EXPECT_THROW(net.forward_batched(batch), std::invalid_argument);
  batch.query_rows = {0, 0};
  batch.vec = nn::Tensor({0, 27});
  EXPECT_THROW(net.forward_batched(batch), std::invalid_argument);
  util::Pcg32 rng(5);
  batch.query_rows = {2, -1};
  batch.vec = nn::Tensor::randn({2, 27}, rng, 1.0);
  EXPECT_THROW(net.forward_batched(batch), std::invalid_argument);
  // Row count must match the stacked vec.
  batch.query_rows = {2, 3};
  EXPECT_THROW(net.forward_batched(batch), std::invalid_argument);
}

TEST(BatchedForward, BackwardAfterBatchedThrows) {
  nn::NetConfig config = serve_net_config();
  config.use_images = false;
  nn::AttackNet net(config);
  util::Pcg32 rng(3);

  nn::BatchedQueryInput batch;
  batch.query_rows = {2, 2};
  batch.vec = nn::Tensor::randn({4, 27}, rng, 1.0);
  const nn::Tensor& scores = net.forward_batched(batch);
  nn::Tensor grad(scores.shape());
  EXPECT_THROW(net.backward(grad), std::logic_error);

  // A later single-query forward re-arms the training path.
  nn::QueryInput single;
  single.vec = nn::Tensor::randn({2, 27}, rng, 1.0);
  const nn::Tensor& s = net.forward(single);
  nn::Tensor g(s.shape());
  EXPECT_NO_THROW(net.backward(g));
}

TEST(ServeLoop, MatchesBatchOneAcrossConcurrentClients) {
  ServeFixtureState& f = fixture();
  serve::ServeConfig config;
  config.max_batch = 8;
  config.max_wait_us = 200;
  config.dispatchers = 2;
  serve::ServeLoop loop(*f.dl, config);

  const std::size_t n = f.victim->num_queries();
  std::vector<Selection> got(n);
  const int clients = 4;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([c, n, &got, &loop, &f] {
      for (std::size_t i = c; i < n; i += clients) {
        got[i] = loop.submit(*f.victim, i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  loop.shutdown();

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i].sink_fragment, f.baseline.selections[i].sink_fragment);
    EXPECT_EQ(got[i].chosen_source, f.baseline.selections[i].chosen_source);
    EXPECT_EQ(got[i].correct, f.baseline.selections[i].correct);
    EXPECT_EQ(got[i].num_sinks, f.baseline.selections[i].num_sinks);
  }

  const serve::ServeStats stats = loop.stats();
  EXPECT_EQ(stats.submitted, static_cast<long>(n));
  EXPECT_EQ(stats.answered + stats.empty, static_cast<long>(n));
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GE(stats.max_batch_seen, 1u);
  EXPECT_LE(stats.max_batch_seen, 8u);
}

TEST(ServeLoop, ShutdownDrainsInFlightRequests) {
  ServeFixtureState& f = fixture();
  serve::ServeConfig config;
  config.max_batch = 4;
  config.max_wait_us = 2000;  // long budget: shutdown must cut it short
  serve::ServeLoop loop(*f.dl, config);

  const std::size_t n = f.victim->num_queries();
  std::atomic<long> answered{0};
  std::atomic<long> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([c, n, &answered, &rejected, &loop, &f] {
      for (std::size_t i = c; i < n; i += 3) {
        try {
          const Selection got = loop.submit(*f.victim, i);
          // An answered request must carry the batch-1 answer even when
          // the loop is tearing down around it.
          EXPECT_EQ(got.chosen_source,
                    f.baseline.selections[i].chosen_source);
          answered.fetch_add(1);
        } catch (const std::runtime_error&) {
          rejected.fetch_add(1);  // submitted after shutdown
        }
      }
    });
  }
  // Let some requests in, then close the loop under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  loop.shutdown();
  for (std::thread& t : clients) t.join();

  // Every request was either answered correctly or rejected cleanly...
  EXPECT_EQ(answered.load() + rejected.load(), static_cast<long>(n));
  // ...and nothing was left hanging: accepted == completed.
  const serve::ServeStats stats = loop.stats();
  EXPECT_EQ(stats.answered + stats.empty, answered.load());
  EXPECT_EQ(stats.failed, 0);
  EXPECT_THROW(loop.submit(*f.victim, 0), std::runtime_error);
}

TEST(ServeLoop, LeaseTimeoutPropagatesToWaitingRequests) {
  // A private attack: bounding the shared fixture's replica set would
  // leak into other tests.
  ServeFixtureState& f = fixture();
  DlAttack dl(serve_net_config());
  dl.replicas().set_max_replicas(1);

  serve::ServeConfig config;
  config.max_wait_us = 0;
  config.lease_timeout_seconds = 0.02;
  serve::ServeLoop loop(dl, config);

  std::size_t live_query = f.victim->num_queries();
  for (std::size_t i = 0; i < f.victim->num_queries(); ++i) {
    if (!f.victim->query(i).candidates.empty()) {
      live_query = i;
      break;
    }
  }
  ASSERT_LT(live_query, f.victim->num_queries());

  {
    // Hold the only replica: every batch the loop dispatches must time
    // out and fail its requests with the typed saturation error.
    ReplicaLease hog = dl.replicas().lease(1, dl.net());
    EXPECT_THROW(loop.submit(*f.victim, live_query), AcquireTimeoutError);
    EXPECT_GE(loop.stats().failed, 1);
  }
  // Replica released: the same request now succeeds.
  const Selection got = loop.submit(*f.victim, live_query);
  EXPECT_EQ(got.sink_fragment,
            f.victim->query(live_query).sink_fragment);
  EXPECT_GE(got.chosen_source, 0);
  loop.shutdown();
}

TEST(ServeLoop, RejectsMismatchedImageGeometry) {
  ServeFixtureState& f = fixture();
  serve::ServeLoop loop(*f.dl, serve::ServeConfig{});
  // Register the fleet geometry with a first request.
  std::size_t any = 0;
  loop.submit(*f.victim, any);
  // A vector-only dataset cannot share batches with an image fleet.
  DatasetConfig mismatched = serve_dataset_config();
  mismatched.build_images = false;
  const test::SmallSplit& split = test::shared_split(3, 400, 14);
  QueryDataset other(split.split.get(), mismatched);
  EXPECT_THROW(loop.submit(other, 0), std::invalid_argument);
}

TEST(ReplicaSet, LiveLeasesCountTowardOccupancy) {
  DlAttack dl(serve_net_config());
  {
    ReplicaLease lease = dl.replicas().lease(2, dl.net());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const ReplicaSet::LeaseStats mid = dl.replica_lease_stats();
    // The lease is still live, yet its occupancy so far is visible (2
    // replicas x >= 10ms) — the header used to document this gap.
    EXPECT_GT(mid.occupancy_seconds, 0.0);
    EXPECT_EQ(mid.max_on_loan, 2u);
    EXPECT_EQ(mid.leases, 1);
  }
  const ReplicaSet::LeaseStats after = dl.replica_lease_stats();
  EXPECT_GT(after.occupancy_seconds, 0.0);

  // Occupancy is monotone across repeated snapshots of a live lease.
  ReplicaLease lease = dl.replicas().lease(1, dl.net());
  const double first = dl.replica_lease_stats().occupancy_seconds;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(dl.replica_lease_stats().occupancy_seconds, first);
}

}  // namespace
}  // namespace sma::attack
