// Shared fixtures/helpers for the test suite.
#pragma once

#include <memory>
#include <string>

#include "eval/experiment.hpp"
#include "layout/design.hpp"
#include "netlist/netlist.hpp"
#include "split/split_design.hpp"
#include "tech/cell_library.hpp"

namespace sma::test {

/// Process-wide default library (cheap to build, but sharing keeps tests
/// terse).
const tech::CellLibrary& library();

/// The real ISCAS-85 c17 netlist in .bench format (public-domain
/// benchmark, 6 NAND gates) — ground truth for parser tests.
extern const char* kC17Bench;

/// A small generated netlist, placed and routed with fast settings.
layout::Design small_routed_design(int gates = 60, std::uint64_t seed = 3);

/// A small design split at `layer`.
struct SmallSplit {
  std::unique_ptr<layout::Design> design;
  std::unique_ptr<split::SplitDesign> split;
};
SmallSplit small_split(int split_layer, int gates = 60,
                       std::uint64_t seed = 3);

/// Process-wide cached split (M3 splits need a few hundred gates to carry
/// a meaningful number of fragments; rebuilding one per test would
/// dominate suite runtime). Do not mutate through this reference.
const SmallSplit& shared_split(int split_layer, int gates = 400,
                               std::uint64_t seed = 7);

}  // namespace sma::test
