#include "netlist/stats.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "test_support.hpp"

namespace sma::netlist {
namespace {

TEST(Stats, C17Stats) {
  Netlist nl = parse_bench_string(test::kC17Bench, "c17", &test::library());
  NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.num_cells, 6);
  EXPECT_EQ(s.num_nets, 11);
  EXPECT_EQ(s.num_ports, 7);
  EXPECT_EQ(s.num_sequential, 0);
  EXPECT_EQ(s.logic_depth, 2);
  EXPECT_DOUBLE_EQ(s.avg_fanin, 2.0);
  EXPECT_GE(s.max_fanout, 2);
}

TEST(Stats, LevelizationOrderRespectsDependencies) {
  Netlist nl = parse_bench_string(test::kC17Bench, "c17", &test::library());
  Levelization lev = levelize(nl);
  ASSERT_EQ(lev.topo_order.size(), 6u);
  // Every cell must appear after all its combinational fanin cells.
  std::vector<int> position(nl.num_cells());
  for (std::size_t i = 0; i < lev.topo_order.size(); ++i) {
    position[lev.topo_order[i]] = static_cast<int>(i);
  }
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const Cell& cell = nl.cell(c);
    for (int pin : nl.lib_cell_of(c).input_pins()) {
      const Net& net = nl.net(cell.pin_nets[pin]);
      if (net.driver.is_port()) continue;
      EXPECT_LT(position[net.driver.id], position[c]);
    }
  }
}

TEST(Stats, DffBreaksLevels) {
  std::string text =
      "INPUT(a)\nOUTPUT(q)\nx = NOT(a)\nq1 = DFF(x)\nq = NOT(q1)\n";
  Netlist nl = parse_bench_string(text, "d", &test::library());
  Levelization lev = levelize(nl);
  EXPECT_FALSE(lev.has_combinational_loop);
  // The NOT after the DFF restarts at level 0.
  auto q_net = nl.find_net("q");
  ASSERT_TRUE(q_net.has_value());
  CellId final_not = nl.net(*q_net).driver.id;
  EXPECT_EQ(lev.cell_level[final_not], 0);
}

TEST(Stats, SequentialLoopIsNotCombinational) {
  // q = DFF(x); x = NOT(q) — a legal sequential loop.
  std::string text = "INPUT(a)\nOUTPUT(q)\nq = DFF(x)\nx = NOR(q, a)\n";
  Netlist nl = parse_bench_string(text, "loop", &test::library());
  Levelization lev = levelize(nl);
  EXPECT_FALSE(lev.has_combinational_loop);
}

TEST(Stats, ToStringMentionsKeyNumbers) {
  Netlist nl = parse_bench_string(test::kC17Bench, "c17", &test::library());
  std::string s = to_string(compute_stats(nl));
  EXPECT_NE(s.find("6 cells"), std::string::npos);
  EXPECT_NE(s.find("11 nets"), std::string::npos);
}

}  // namespace
}  // namespace sma::netlist
