// Defense study: placement perturbation vs the proximity/DL attacks.
//
// The paper's conclusion points at placement-based defenses as the natural
// countermeasure. This example implements one: after legalization,
// randomly swap same-width cell pairs ("defense strength" = swap budget),
// destroying the proximity signal the attacks rely on, then measures
//   - wirelength overhead (the defender's cost), and
//   - CCR of the proximity attack and a trained DL attack (the gain).
// Built entirely from the public module APIs — a template for evaluating
// custom defenses.
#include <iostream>
#include <vector>

#include "attack/dl_attack.hpp"
#include "attack/proximity_attack.hpp"
#include "eval/experiment.hpp"
#include "netlist/generator.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "route/router.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace sma;  // NOLINT: example-local brevity

/// Randomly swap `swaps` same-width cell pairs (keeps legality).
void perturb_placement(place::Placement& placement, int swaps,
                       util::Pcg32& rng) {
  const netlist::Netlist& nl = placement.netlist();
  if (nl.num_cells() < 2) return;
  for (int done = 0; done < swaps;) {
    netlist::CellId a = static_cast<netlist::CellId>(
        rng.next_below(static_cast<std::uint32_t>(nl.num_cells())));
    netlist::CellId b = static_cast<netlist::CellId>(
        rng.next_below(static_cast<std::uint32_t>(nl.num_cells())));
    if (a == b || nl.lib_cell_of(a).width != nl.lib_cell_of(b).width) {
      continue;
    }
    util::Point pa = placement.cell_origin(a);
    placement.set_cell_origin(a, placement.cell_origin(b));
    placement.set_cell_origin(b, pa);
    ++done;
  }
}

/// Place (with optional perturbation) and route one netlist.
layout::Design defended_flow(netlist::Netlist nl, int swaps,
                             std::uint64_t seed) {
  layout::Design design;
  design.netlist = std::make_unique<netlist::Netlist>(std::move(nl));
  design.stack =
      std::make_unique<tech::LayerStack>(tech::LayerStack::nangate45_like());
  place::Floorplan fp = place::make_floorplan(*design.netlist, 0.55);
  design.placement =
      std::make_unique<place::Placement>(design.netlist.get(), fp);
  run_global_placement(*design.placement);
  run_legalization(*design.placement);
  util::Pcg32 rng(seed, 0xdef);
  perturb_placement(*design.placement, swaps, rng);
  design.grid = std::make_unique<route::RoutingGrid>(design.stack.get(),
                                                     fp.die);
  design.routing = route::route_design(*design.placement, *design.grid);
  return design;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  util::set_log_level_from_env();  // SMA_LOG_LEVEL overrides the default
  const tech::CellLibrary library = tech::CellLibrary::nangate45_like();
  const int kSplitLayer = 3;

  // Train a DL model on undefended layouts (the attacker's database).
  eval::ExperimentProfile profile = eval::ExperimentProfile::fast();
  profile.train.epochs = 8;
  std::vector<eval::PreparedSplit> store;
  std::vector<attack::QueryDataset> training;
  int used = 0;
  for (const auto& p : netlist::training_profiles()) {
    if (++used > 3) break;
    store.push_back(eval::prepare_split(p, kSplitLayer,
                                        layout::FlowConfig{}, 40 + used));
    training.emplace_back(store.back().split.get(), profile.dataset);
  }
  std::vector<attack::QueryDataset> validation;
  nn::NetConfig net_config = profile.net;
  net_config.image_channels =
      static_cast<int>(profile.dataset.images.pixel_sizes.size());
  attack::DlAttack dl(net_config);
  dl.train(training, validation, profile.train);

  // Sweep the defense strength on one victim.
  netlist::GeneratorConfig gen;
  gen.num_inputs = 20;
  gen.num_outputs = 10;
  gen.num_gates = 400;
  gen.seed = 4;

  util::Table table({"Swaps", "WL overhead (%)", "Proximity CCR (%)",
                     "DL CCR (%)", "Hit rate (%)"});
  std::int64_t baseline_wl = 0;
  for (int swaps : {0, 50, 200, 800}) {
    netlist::Netlist nl = netlist::generate_netlist(gen, "victim", &library);
    layout::Design design = defended_flow(std::move(nl), swaps, 77);
    if (swaps == 0) baseline_wl = design.routing.total_wirelength;
    double overhead =
        100.0 * (static_cast<double>(design.routing.total_wirelength) /
                     baseline_wl -
                 1.0);

    split::SplitDesign split(&design, kSplitLayer);
    attack::AttackResult prox = attack::run_proximity_attack(split);
    attack::QueryDataset dataset(&split, profile.dataset);
    attack::AttackResult dl_result = dl.attack(dataset);

    table.add_row({std::to_string(swaps), util::format_double(overhead, 1),
                   util::format_double(prox.ccr * 100, 2),
                   util::format_double(dl_result.ccr * 100, 2),
                   util::format_double(dataset.candidate_hit_rate() * 100, 1)});
  }
  std::cout << "Placement-perturbation defense at an M" << kSplitLayer
            << " split (victim: 400 gates)\n\n"
            << table.to_string()
            << "\nExpected: CCR falls with defense strength while "
               "wirelength overhead rises — the defender's tradeoff.\n";
  return 0;
}
