// Quickstart: the whole pipeline on one small design, in ~40 lines of API.
//
//   1. generate a benchmark netlist (stand-in for ISCAS-85),
//   2. place & route it (stand-in for Cadence Innovus),
//   3. split the layout after Metal 3,
//   4. train the paper's DL model on another layout from the same flow,
//   5. attack: recover the hidden BEOL connections, report CCR.
#include <iostream>
#include <memory>

#include "attack/dl_attack.hpp"
#include "attack/proximity_attack.hpp"
#include "eval/experiment.hpp"
#include "netlist/generator.hpp"
#include "netlist/stats.hpp"

int main() {
  const sma::tech::CellLibrary library =
      sma::tech::CellLibrary::nangate45_like();

  // 1. A 300-gate benchmark circuit.
  sma::netlist::GeneratorConfig gen;
  gen.num_inputs = 20;
  gen.num_outputs = 10;
  gen.num_gates = 300;
  gen.seed = 7;
  sma::netlist::Netlist netlist =
      sma::netlist::generate_netlist(gen, "victim", &library);
  std::cout << "netlist: " << to_string(sma::netlist::compute_stats(netlist))
            << "\n";

  // 2. Physical design.
  sma::layout::Design design = sma::layout::run_flow(std::move(netlist));
  std::cout << "layout: HPWL " << design.placement->total_hpwl()
            << " dbu, routed WL " << design.routing.total_wirelength
            << " dbu, " << design.routing.total_vias << " vias\n";

  // 3. Split manufacturing after M3.
  sma::split::SplitDesign split(&design, /*split_layer=*/3);
  sma::split::SplitStats stats = split.stats();
  std::cout << "split at M3: " << stats.num_sink_fragments
            << " sink fragments, " << stats.num_source_fragments
            << " source fragments, " << stats.num_virtual_pins
            << " virtual pins\n";

  // 4. Train the DL attack on an attacker-generated layout (same flow,
  //    different design — the paper's threat model).
  gen.num_gates = 400;
  gen.seed = 99;
  sma::layout::Design training_design = sma::layout::run_flow(
      sma::netlist::generate_netlist(gen, "training", &library));
  sma::split::SplitDesign training_split(&training_design, 3);

  sma::eval::ExperimentProfile profile =
      sma::eval::ExperimentProfile::fast();
  profile.train.epochs = 8;

  // Parallel runtime: one pool for feature extraction, training lanes and
  // inference. Thread count never changes the numbers below.
  std::unique_ptr<sma::runtime::ThreadPool> pool_owner =
      profile.runtime.make_pool();
  sma::runtime::ThreadPool* pool = pool_owner.get();

  sma::attack::DatasetConfig dataset_config = profile.dataset;
  dataset_config.pool = pool;
  std::vector<sma::attack::QueryDataset> training;
  training.emplace_back(&training_split, dataset_config);
  std::vector<sma::attack::QueryDataset> validation;

  sma::nn::NetConfig net_config = profile.net;
  net_config.image_channels =
      static_cast<int>(dataset_config.images.pixel_sizes.size());
  sma::attack::DlAttack dl(net_config);
  sma::attack::TrainStats train_stats =
      dl.train(training, validation, profile.train, pool);
  std::cout << "trained " << dl.net().num_parameters() << " parameters in "
            << train_stats.seconds << "s (final loss "
            << train_stats.epoch_loss.back() << ")\n";

  // 5. Attack.
  sma::attack::QueryDataset victim(&split, dataset_config);
  sma::attack::AttackResult result = dl.attack(victim, pool);
  sma::attack::AttackResult proximity =
      sma::attack::run_proximity_attack(split);
  std::cout << "DL attack CCR: " << result.ccr * 100 << "% in "
            << result.seconds << "s (candidate ceiling "
            << victim.candidate_hit_rate() * 100 << "%)\n";
  std::cout << "proximity baseline CCR: " << proximity.ccr * 100 << "%\n";
  return 0;
}
