// Quickstart: the whole pipeline on one small design, in ~40 lines of API.
//
//   1. generate a benchmark netlist (stand-in for ISCAS-85),
//   2. place & route it (stand-in for Cadence Innovus),
//   3. split the layout after Metal 3,
//   4. train the paper's DL model on another layout from the same flow,
//   5. attack: recover the hidden BEOL connections, report CCR.
//
// Observability flags (all optional):
//   --trace <file>      record a Chrome trace of the run (open the file
//                       at chrome://tracing or https://ui.perfetto.dev)
//   --report <file>     write the unified run report JSON (schema
//                       sma-run-report-v1; '-' writes to stdout)
// Durability flags (all optional):
//   --checkpoint <file> checkpoint training every 2 epochs; an existing
//                       matching checkpoint resumes the run. With
//                       SMA_FAULT=checkpoint.save:fail:2 (etc.) an
//                       injected crash exits with status 42 — CI kills a
//                       run this way, reruns it, and asserts the resumed
//                       model is byte-identical to an uninterrupted one.
//   --save-model <file> write the trained model (AttackNet::save) for
//                       byte-comparison across runs.
// SMA_LOG_LEVEL=debug|info|warn|error raises/lowers log verbosity.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "attack/dl_attack.hpp"
#include "attack/proximity_attack.hpp"
#include "eval/experiment.hpp"
#include "netlist/generator.hpp"
#include "netlist/stats.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace {

int run(const std::string& trace_path, const std::string& report_path,
        const std::string& checkpoint_path, const std::string& model_path);

}  // namespace

int main(int argc, char** argv) {
  sma::util::set_log_level_from_env();
  std::string trace_path;
  std::string report_path;
  std::string checkpoint_path;
  std::string model_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (arg == "--save-model" && i + 1 < argc) {
      model_path = argv[++i];
    } else {
      std::cerr << "usage: quickstart [--trace FILE] [--report FILE] "
                   "[--checkpoint FILE] [--save-model FILE]\n";
      return 2;
    }
  }
  try {
    return run(trace_path, report_path, checkpoint_path, model_path);
  } catch (const sma::util::fault::FaultInjected& e) {
    // A simulated crash (SMA_FAULT=...). Distinct exit status so scripts
    // can tell "killed at the injection point, as requested" from real
    // failures.
    std::cerr << "simulated crash: " << e.what() << "\n";
    return 42;
  }
}

namespace {

int run(const std::string& trace_path, const std::string& report_path,
        const std::string& checkpoint_path, const std::string& model_path) {
  if (!trace_path.empty()) sma::obs::set_tracing_enabled(true);

  const sma::tech::CellLibrary library =
      sma::tech::CellLibrary::nangate45_like();

  // 1. A 300-gate benchmark circuit.
  sma::netlist::GeneratorConfig gen;
  gen.num_inputs = 20;
  gen.num_outputs = 10;
  gen.num_gates = 300;
  gen.seed = 7;
  sma::netlist::Netlist netlist =
      sma::netlist::generate_netlist(gen, "victim", &library);
  std::cout << "netlist: " << to_string(sma::netlist::compute_stats(netlist))
            << "\n";

  // 2. Physical design.
  sma::layout::Design design = sma::layout::run_flow(std::move(netlist));
  std::cout << "layout: HPWL " << design.placement->total_hpwl()
            << " dbu, routed WL " << design.routing.total_wirelength
            << " dbu, " << design.routing.total_vias << " vias\n";

  // 3. Split manufacturing after M3.
  sma::split::SplitDesign split(&design, /*split_layer=*/3);
  sma::split::SplitStats stats = split.stats();
  std::cout << "split at M3: " << stats.num_sink_fragments
            << " sink fragments, " << stats.num_source_fragments
            << " source fragments, " << stats.num_virtual_pins
            << " virtual pins\n";

  // 4. Train the DL attack on an attacker-generated layout (same flow,
  //    different design — the paper's threat model).
  gen.num_gates = 400;
  gen.seed = 99;
  sma::layout::Design training_design = sma::layout::run_flow(
      sma::netlist::generate_netlist(gen, "training", &library));
  sma::split::SplitDesign training_split(&training_design, 3);

  sma::eval::ExperimentProfile profile =
      sma::eval::ExperimentProfile::fast();
  profile.train.epochs = 8;
  if (!checkpoint_path.empty()) {
    profile.train.checkpoint_path = checkpoint_path;
    profile.train.checkpoint_every = 2;
  }

  // Parallel runtime: one pool for feature extraction, training lanes and
  // inference. Thread count never changes the numbers below.
  std::unique_ptr<sma::runtime::ThreadPool> pool_owner =
      profile.runtime.make_pool();
  sma::runtime::ThreadPool* pool = pool_owner.get();

  sma::attack::DatasetConfig dataset_config = profile.dataset;
  dataset_config.pool = pool;
  std::vector<sma::attack::QueryDataset> training;
  training.emplace_back(&training_split, dataset_config);
  std::vector<sma::attack::QueryDataset> validation;

  sma::nn::NetConfig net_config = profile.net;
  net_config.image_channels =
      static_cast<int>(dataset_config.images.pixel_sizes.size());
  sma::attack::DlAttack dl(net_config);
  sma::attack::TrainStats train_stats =
      dl.train(training, validation, profile.train, pool);
  std::cout << "trained " << dl.net().num_parameters() << " parameters in "
            << train_stats.seconds << "s (final loss "
            << train_stats.epoch_loss.back() << ")";
  if (train_stats.resumed_from_epoch > 0) {
    std::cout << " [resumed from epoch " << train_stats.resumed_from_epoch
              << "]";
  }
  std::cout << "\n";

  if (!model_path.empty()) {
    std::ofstream out(model_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write model file '" << model_path << "'\n";
      return 1;
    }
    dl.net().save(out);
    std::cout << "model written to " << model_path << "\n";
  }

  // 5. Attack.
  sma::attack::QueryDataset victim(&split, dataset_config);
  sma::attack::AttackResult result = dl.attack(victim, pool);
  sma::attack::AttackResult proximity =
      sma::attack::run_proximity_attack(split);
  std::cout << "DL attack CCR: " << result.ccr * 100 << "% in "
            << result.seconds << "s (candidate ceiling "
            << victim.candidate_hit_rate() * 100 << "%)\n";
  std::cout << "proximity baseline CCR: " << proximity.ccr * 100 << "%\n";

  // Observability output: one report, one trace — both after the pool
  // work above has fully joined.
  if (!report_path.empty()) {
    sma::obs::RunReport report("quickstart", profile.runtime.resolved());
    report.add_flow("victim", design);
    report.add_flow("training", training_design);
    report.add_train(train_stats);
    report.add_replicas(dl);
    if (report_path == "-") {
      std::cout << report.to_json() << "\n";
    } else {
      std::ofstream out(report_path);
      if (!out) {
        std::cerr << "cannot write report file '" << report_path << "'\n";
        return 1;
      }
      out << report.to_json() << "\n";
      std::cout << "run report written to " << report_path << "\n";
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write trace file '" << trace_path << "'\n";
      return 1;
    }
    sma::obs::write_chrome_trace(out);
    std::cout << "chrome trace written to " << trace_path
              << " (open at https://ui.perfetto.dev)\n";
  }
  return 0;
}

}  // namespace
