// Attack a chosen benchmark design at a chosen split layer with all three
// attacks (DL, network-flow, proximity) and print a side-by-side report.
//
// Usage: attack_benchmark_suite [design] [split_layer]
//   e.g. attack_benchmark_suite c880 3
#include <iostream>
#include <memory>
#include <string>

#include "attack/dl_attack.hpp"
#include "attack/flow_attack.hpp"
#include "attack/proximity_attack.hpp"
#include "eval/experiment.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kInfo);
  sma::util::set_log_level_from_env();  // SMA_LOG_LEVEL overrides the default
  const std::string design_name = argc > 1 ? argv[1] : "c880";
  const int split_layer = argc > 2 ? std::stoi(argv[2]) : 3;

  const sma::netlist::DesignProfile& victim_profile =
      sma::netlist::find_profile(design_name);
  sma::eval::ExperimentProfile profile =
      sma::eval::ExperimentProfile::fast();

  // All stages share one pool sized to the host (results are identical
  // at any thread count; see src/runtime/).
  std::unique_ptr<sma::runtime::ThreadPool> pool_owner =
      profile.runtime.make_pool();
  sma::runtime::ThreadPool* pool = pool_owner.get();
  profile.dataset.pool = pool;

  // Train on the standard training corpus (smaller subset for an example).
  std::vector<sma::eval::PreparedSplit> prepared_store;
  std::vector<sma::attack::QueryDataset> training;
  int used = 0;
  for (const auto& p : sma::netlist::training_profiles()) {
    if (++used > 4) break;  // example-sized corpus
    prepared_store.push_back(sma::eval::prepare_split(
        p, split_layer, sma::layout::FlowConfig{}, 11 + used));
    training.emplace_back(prepared_store.back().split.get(),
                          profile.dataset);
  }
  std::vector<sma::attack::QueryDataset> validation;

  sma::nn::NetConfig net_config = profile.net;
  net_config.image_channels =
      static_cast<int>(profile.dataset.images.pixel_sizes.size());
  sma::attack::DlAttack dl(net_config);
  profile.train.epochs = 10;
  dl.train(training, validation, profile.train, pool);

  // Victim.
  sma::eval::PreparedSplit victim = sma::eval::prepare_split(
      victim_profile, split_layer, sma::layout::FlowConfig{}, 2019);
  sma::split::SplitStats stats = victim.split->stats();
  std::cout << "\n"
            << design_name << " split after M" << split_layer << ": "
            << stats.num_sink_fragments << " sink fragments, "
            << stats.num_source_fragments << " source fragments\n\n";

  sma::attack::QueryDataset dataset(victim.split.get(), profile.dataset);
  sma::attack::AttackResult dl_result = dl.attack(dataset, pool);
  sma::attack::AttackResult flow_result =
      sma::attack::run_flow_attack(*victim.split, profile.flow_attack);
  sma::attack::AttackResult prox_result =
      sma::attack::run_proximity_attack(*victim.split);

  sma::util::Table table({"Attack", "CCR (%)", "Runtime (s)"});
  auto add = [&table](const sma::attack::AttackResult& r) {
    table.add_row({r.attack_name,
                   r.timed_out ? "N/A" : sma::util::format_double(r.ccr * 100, 2),
                   sma::util::format_double(r.seconds, 2)});
  };
  add(dl_result);
  add(flow_result);
  add(prox_result);
  std::cout << table.to_string();
  std::cout << "\ncandidate ceiling (hit rate): "
            << sma::util::format_double(dataset.candidate_hit_rate() * 100, 1)
            << "%\n";
  return 0;
}
