// Train the attack model on the training corpus, save it to disk, reload
// it, and verify the reloaded model attacks identically — the workflow an
// attacker would use to build a model library per technology/flow.
//
// Usage: train_and_save_model [model_path] [split_layer]
#include <fstream>
#include <iostream>

#include "attack/dl_attack.hpp"
#include "eval/experiment.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  sma::util::set_log_level(sma::util::LogLevel::kInfo);
  sma::util::set_log_level_from_env();  // SMA_LOG_LEVEL overrides the default
  const std::string path = argc > 1 ? argv[1] : "attack_model.bin";
  const int split_layer = argc > 2 ? std::stoi(argv[2]) : 3;

  sma::eval::ExperimentProfile profile =
      sma::eval::ExperimentProfile::fast();
  profile.train.epochs = 8;

  // Small training corpus for the example.
  std::vector<sma::eval::PreparedSplit> prepared_store;
  std::vector<sma::attack::QueryDataset> training;
  int used = 0;
  for (const auto& p : sma::netlist::training_profiles()) {
    if (++used > 3) break;
    prepared_store.push_back(sma::eval::prepare_split(
        p, split_layer, sma::layout::FlowConfig{}, 100 + used));
    training.emplace_back(prepared_store.back().split.get(), profile.dataset);
  }
  std::vector<sma::attack::QueryDataset> validation;

  sma::nn::NetConfig net_config = profile.net;
  net_config.image_channels =
      static_cast<int>(profile.dataset.images.pixel_sizes.size());
  sma::attack::DlAttack dl(net_config);
  sma::attack::TrainStats stats =
      dl.train(training, validation, profile.train);
  std::cout << "trained in " << stats.seconds << "s over "
            << stats.queries_seen << " query presentations\n";

  {
    std::ofstream out(path, std::ios::binary);
    dl.net().save(out);
  }
  std::cout << "saved model to " << path << "\n";

  std::ifstream in(path, std::ios::binary);
  sma::attack::DlAttack reloaded(sma::nn::AttackNet::load(in));
  std::cout << "reloaded model with " << reloaded.net().num_parameters()
            << " parameters\n";

  // Verify identical behaviour on a fresh victim.
  sma::eval::PreparedSplit victim = sma::eval::prepare_split(
      sma::netlist::find_profile("v_cht"), split_layer,
      sma::layout::FlowConfig{}, 2020);
  sma::attack::QueryDataset d1(victim.split.get(), profile.dataset);
  sma::attack::QueryDataset d2(victim.split.get(), profile.dataset);
  double ccr1 = dl.attack(d1).ccr;
  double ccr2 = reloaded.attack(d2).ccr;
  std::cout << "victim CCR: original " << ccr1 * 100 << "%, reloaded "
            << ccr2 * 100 << "% (must match: "
            << (ccr1 == ccr2 ? "yes" : "NO") << ")\n";
  return ccr1 == ccr2 ? 0 : 1;
}
