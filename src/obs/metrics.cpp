#include "obs/metrics.hpp"

namespace sma::obs {

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all threads
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset() {
  util::MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot snap;
  util::MutexLock lock(mutex_);
  // std::map iterates in key order, which is the fixed aggregation order
  // the report determinism relies on.
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    int top = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (h->bucket(b) > 0) top = b + 1;
    }
    hs.buckets.reserve(top);
    for (int b = 0; b < top; ++b) hs.buckets.push_back(h->bucket(b));
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

}  // namespace sma::obs
