// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Instruments register by name on first use (the SMA_COUNT /
// SMA_HISTOGRAM_US macros in obs/obs.hpp hide a function-local static
// lookup, so the steady-state cost of a counter bump is one relaxed
// atomic add). Updates are wait-free; names registered once keep stable
// addresses for the registry's lifetime.
//
// Determinism of reports: registration *time* depends on which code path
// runs first (and, under a pool, on scheduling), so aggregation walks the
// metrics in a fixed order — lexicographic by name — which is the same in
// every run regardless of which thread touched a metric first. Metric
// values feed reports only; they never feed an algorithm or a cache
// digest, so instrumented and uninstrumented runs produce byte-identical
// models, tables and layouts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sma::obs {

/// Monotonic u64 counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed gauge.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram. Bucket b counts observations in
/// [2^(b-1), 2^b) microseconds (bucket 0 is [0, 1)); the top bucket is
/// open-ended. Power-of-two bounds keep `observe` branch-free (one
/// bit-width computation) and make bucket edges identical across runs.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;

  /// Bucket index for a value — exposed for tests and for reports.
  static int bucket_of(std::uint64_t value) {
    int b = 0;
    while (value > 0 && b < kNumBuckets - 1) {
      value >>= 1;
      ++b;
    }
    return b;
  }

  /// Lower edge (inclusive) of bucket `b`, in the observed unit.
  static std::uint64_t bucket_floor(int b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  void observe(std::uint64_t value) {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Name -> metric registry. `global()` is the process-wide instance every
/// macro feeds; independent instances exist only for tests.
class Registry {
 public:
  static Registry& global();

  /// Find-or-create. The returned reference is valid for the registry's
  /// lifetime; repeated calls with one name return the same object.
  Counter& counter(const std::string& name) SMA_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) SMA_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name) SMA_EXCLUDES(mutex_);

  /// Zero every metric (run-scoped reports; registrations are kept).
  void reset() SMA_EXCLUDES(mutex_);

  /// Point-in-time copy, names in lexicographic order (see file comment).
  struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;  ///< trailing zero buckets trimmed
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  Snapshot snapshot() const SMA_EXCLUDES(mutex_);

 private:
  /// Guards the maps, not the metric values (those are atomics updated
  /// lock-free through the references counter()/gauge()/histogram()
  /// hand out).
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SMA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      SMA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SMA_GUARDED_BY(mutex_);
};

}  // namespace sma::obs
