// Span tracing with Chrome-trace / Perfetto export.
//
// Spans are recorded through RAII guards (see the SMA_TRACE_SPAN macros in
// obs/obs.hpp) into lock-free per-thread ring buffers: each thread owns one
// buffer and is its only writer, so the hot path is a steady_clock read at
// span open and one ring slot write (plus a release store of the count) at
// span close — no locks, no allocation once the ring exists. Buffers are
// epoch-stamped like the router's loaned scratch: enabling tracing bumps a
// session epoch, and export only reads events of the current epoch, so
// stale events from a previous session never need clearing.
//
// Tracing is observation only. It reads clocks and writes to its own
// buffers; it never feeds an algorithm, a cache digest, or an RNG, so
// models, tables, and layouts are byte-identical with tracing enabled,
// disabled, or compiled out entirely (tests/test_obs.cpp gates this).
//
// Export is the Chrome trace-event JSON format ("X" complete events):
// open the file at chrome://tracing or https://ui.perfetto.dev. Flush at a
// quiescent point (after pool work joined) — a thread mid-write during an
// export can at worst contribute one torn event to the *report*, never to
// the traced computation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sma::obs {

/// Sentinel for "span carries no argument".
inline constexpr std::int64_t kNoArg = INT64_MIN;

/// One finished span, as exported. `ts_us`/`dur_us` are microseconds on
/// the process-wide steady clock; `tid` is util::thread_ordinal().
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  std::int64_t arg = kNoArg;
};

/// Microseconds since process start on the steady clock.
double now_us();

/// Runtime switch. Enabling starts a new trace session (bumps the epoch —
/// previously recorded events are no longer exported); disabling freezes
/// the current session, whose events remain exportable.
void set_tracing_enabled(bool enabled);
bool tracing_enabled();

/// Events per thread ring (default 1 << 16). Applies to buffers created
/// after the call; a full ring wraps, overwriting the oldest events of the
/// thread and counting the loss in `dropped_events()`.
void set_ring_capacity(std::size_t events);

/// Record one complete span. Normally called by SpanGuard, not directly.
void record_span(const char* cat, const char* name, double ts_us,
                 double dur_us, std::int64_t arg = kNoArg);

/// Events of the current session across all threads, in timestamp order.
/// The structured form the tests assert on; the JSON export serializes it.
std::vector<TraceEvent> collect_events();

/// Events lost to ring wrap-around in the current session.
std::uint64_t dropped_events();

/// Write the current session as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& out);
std::string chrome_trace_json();

/// Intern a dynamic string (e.g. a design name) so it can be used as a
/// span name/category, which must outlive the trace session. Interned
/// strings live for the process lifetime; intended for a bounded set of
/// names, not per-event payloads.
const char* intern(const std::string& s);

/// RAII span: captures the start time at construction when tracing is
/// enabled (one relaxed atomic load otherwise) and records a complete
/// event at destruction. Use via SMA_TRACE_SPAN so spans compile out
/// under -DSMA_OBS=OFF.
class SpanGuard {
 public:
  SpanGuard(const char* cat, const char* name, std::int64_t arg = kNoArg) {
    if (tracing_enabled()) {
      cat_ = cat;
      name_ = name;
      arg_ = arg;
      start_us_ = now_us();
    }
  }
  ~SpanGuard() {
    if (cat_ != nullptr) {
      record_span(cat_, name_, start_us_, now_us() - start_us_, arg_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t arg_ = kNoArg;
  double start_us_ = 0.0;
};

/// A stopwatch that doubles as a span: always measures wall time (so
/// callers can keep feeding existing timing fields, e.g. Design::timings)
/// and additionally records a trace span when tracing is enabled. This is
/// the migration path for hand-rolled phase timers: the measurement stays
/// even under -DSMA_OBS=OFF, only the trace side disappears.
class TimedSpan {
 public:
  TimedSpan(const char* cat, const char* name, std::int64_t arg = kNoArg)
      : cat_(cat), name_(name), arg_(arg), start_us_(now_us()) {}
  ~TimedSpan() { stop(); }
  TimedSpan(const TimedSpan&) = delete;
  TimedSpan& operator=(const TimedSpan&) = delete;

  /// Stop (idempotent) and return elapsed seconds. Records the span on
  /// the first call if tracing is enabled.
  double stop();

  /// Elapsed seconds so far (or the final time once stopped).
  double seconds() const;

 private:
  const char* cat_;
  const char* name_;
  std::int64_t arg_;
  double start_us_;
  double stopped_us_ = -1.0;
};

}  // namespace sma::obs
