#include "obs/trace.hpp"

#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "util/logging.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sma::obs {

namespace {

/// One event slot in a thread's ring. Epoch-stamped: export filters on the
/// session epoch instead of anyone ever clearing the ring.
struct Slot {
  TraceEvent event;
  std::uint32_t epoch = 0;
};

/// Per-thread ring buffer. The owning thread is the only writer; readers
/// (export) take an acquire snapshot of `count` and walk the last
/// min(count, capacity) slots. Export at quiescent points sees fully
/// published events; a concurrently writing thread can at worst tear one
/// in-flight slot of the *report* — the traced computation is untouched.
struct ThreadBuffer {
  explicit ThreadBuffer(int tid_in, std::size_t capacity)
      : tid(tid_in), ring(capacity) {}

  int tid;
  std::vector<Slot> ring;
  std::atomic<std::uint64_t> count{0};  ///< events ever written
};

struct Tracer {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint32_t> epoch{0};
  std::atomic<std::size_t> ring_capacity{std::size_t{1} << 16};
  /// Events written to a full ring in the current session, per epoch —
  /// approximated by summing per-buffer overflow at collect time.
  util::Mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers SMA_GUARDED_BY(mutex);
  /// Lookup/insert only — iteration order never escapes, so the set
  /// being unordered cannot leak into any output.
  std::unordered_set<std::string> interned SMA_GUARDED_BY(mutex);
};

Tracer& tracer() {
  static Tracer* instance = new Tracer();  // leaked: threads may outlive main
  return *instance;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    Tracer& t = tracer();
    auto created = std::make_shared<ThreadBuffer>(
        util::thread_ordinal(), t.ring_capacity.load(std::memory_order_relaxed));
    util::MutexLock lock(t.mutex);
    t.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

}  // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - kProcessStart)
      .count();
}

void set_tracing_enabled(bool enabled) {
  Tracer& t = tracer();
  if (enabled && !t.enabled.load(std::memory_order_relaxed)) {
    // New session: events recorded before this instant carry an older
    // epoch and silently drop out of every export.
    t.epoch.fetch_add(1, std::memory_order_relaxed);
  }
  t.enabled.store(enabled, std::memory_order_release);
}

bool tracing_enabled() {
  return tracer().enabled.load(std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t events) {
  tracer().ring_capacity.store(std::max<std::size_t>(events, 8),
                               std::memory_order_relaxed);
}

void record_span(const char* cat, const char* name, double ts_us,
                 double dur_us, std::int64_t arg) {
  Tracer& t = tracer();
  if (!t.enabled.load(std::memory_order_relaxed)) return;
  ThreadBuffer& buffer = local_buffer();
  const std::uint64_t n = buffer.count.load(std::memory_order_relaxed);
  Slot& slot = buffer.ring[n % buffer.ring.size()];
  slot.event = {cat, name, ts_us, dur_us, buffer.tid, arg};
  slot.epoch = t.epoch.load(std::memory_order_relaxed);
  buffer.count.store(n + 1, std::memory_order_release);
}

std::vector<TraceEvent> collect_events() {
  Tracer& t = tracer();
  const std::uint32_t epoch = t.epoch.load(std::memory_order_relaxed);
  std::vector<TraceEvent> events;
  util::MutexLock lock(t.mutex);
  for (const auto& buffer : t.buffers) {
    const std::uint64_t n = buffer->count.load(std::memory_order_acquire);
    const std::uint64_t live = std::min<std::uint64_t>(n, buffer->ring.size());
    for (std::uint64_t i = n - live; i < n; ++i) {
      const Slot& slot = buffer->ring[i % buffer->ring.size()];
      if (slot.epoch == epoch) events.push_back(slot.event);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

std::uint64_t dropped_events() {
  Tracer& t = tracer();
  std::uint64_t dropped = 0;
  util::MutexLock lock(t.mutex);
  for (const auto& buffer : t.buffers) {
    const std::uint64_t n = buffer->count.load(std::memory_order_acquire);
    if (n > buffer->ring.size()) dropped += n - buffer->ring.size();
  }
  return dropped;
}

namespace {

void write_json_string(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';  // control characters have no business in span names
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

void write_chrome_trace(std::ostream& out) {
  const std::vector<TraceEvent> events = collect_events();
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\": ";
    write_json_string(out, e.name);
    out << ", \"cat\": ";
    write_json_string(out, e.cat);
    out << ", \"ph\": \"X\", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us
        << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.arg != kNoArg) {
      out << ", \"args\": {\"value\": " << e.arg << "}";
    }
    out << "}";
  }
  out << "], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped_events\": "
      << dropped_events() << "}}";
}

std::string chrome_trace_json() {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  write_chrome_trace(out);
  return out.str();
}

const char* intern(const std::string& s) {
  Tracer& t = tracer();
  util::MutexLock lock(t.mutex);
  return t.interned.insert(s).first->c_str();
}

double TimedSpan::stop() {
  if (stopped_us_ < 0.0) {
    stopped_us_ = now_us();
    // The measurement always happens (callers feed Design::timings); only
    // the trace record honours the compile-time kill switch.
    if (compiled() && tracing_enabled()) {
      record_span(cat_, name_, start_us_, stopped_us_ - start_us_, arg_);
    }
  }
  return (stopped_us_ - start_us_) * 1e-6;
}

double TimedSpan::seconds() const {
  const double end_us = stopped_us_ < 0.0 ? now_us() : stopped_us_;
  return (end_us - start_us_) * 1e-6;
}

}  // namespace sma::obs
