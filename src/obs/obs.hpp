// Observability macros — the only header instrumented code includes.
//
// Compile-time kill switch: the CMake option SMA_OBS (default ON) defines
// SMA_OBS_ENABLED on every target linking libsma. With -DSMA_OBS=OFF the
// macros below expand to nothing — no clock reads, no atomics, no static
// registrations — so the instrumented hot paths compile to exactly the
// uninstrumented code. The obs library itself (trace export, metrics
// registry, RunReport) still builds in both modes, so reports keep their
// schema (with zeroed metrics) and callers never need #ifdefs.
//
// Runtime switch: spans additionally check obs::tracing_enabled() (one
// relaxed load when off). Counters/histograms stay live whenever compiled
// in — they are how RunReport sees dispatch counts without tracing — and
// cost one relaxed atomic add at coarse (per-call/per-wave) granularity.
//
//   SMA_TRACE_SPAN("route", "wave");             // span until scope exit
//   SMA_TRACE_SPAN_V("route", "wave", index);    // ... with an i64 arg
//   SMA_COUNT("gemm.blocked_calls");             // counter += 1
//   SMA_COUNT_N("route.ripups", offenders);      // counter += n
//   SMA_GAUGE_SET("nn.lanes", lanes);            // gauge = v
//   SMA_HISTOGRAM_US("route.wave_us", micros);   // histogram.observe
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef SMA_OBS_ENABLED
#define SMA_OBS_ENABLED 1
#endif

namespace sma::obs {
/// True when the instrumentation macros are compiled in.
inline constexpr bool compiled() { return SMA_OBS_ENABLED != 0; }
}  // namespace sma::obs

#define SMA_OBS_CONCAT_IMPL(a, b) a##b
#define SMA_OBS_CONCAT(a, b) SMA_OBS_CONCAT_IMPL(a, b)

#if SMA_OBS_ENABLED

#define SMA_TRACE_SPAN(cat, name) \
  ::sma::obs::SpanGuard SMA_OBS_CONCAT(sma_obs_span_, __LINE__)(cat, name)

#define SMA_TRACE_SPAN_V(cat, name, arg)                            \
  ::sma::obs::SpanGuard SMA_OBS_CONCAT(sma_obs_span_, __LINE__)(    \
      cat, name, static_cast<std::int64_t>(arg))

#define SMA_COUNT_N(name, n)                                          \
  do {                                                                \
    static ::sma::obs::Counter& SMA_OBS_CONCAT(sma_obs_counter_,      \
                                               __LINE__) =            \
        ::sma::obs::Registry::global().counter(name);                 \
    SMA_OBS_CONCAT(sma_obs_counter_, __LINE__)                        \
        .add(static_cast<std::uint64_t>(n));                          \
  } while (0)

#define SMA_COUNT(name) SMA_COUNT_N(name, 1)

#define SMA_GAUGE_SET(name, v)                                        \
  do {                                                                \
    static ::sma::obs::Gauge& SMA_OBS_CONCAT(sma_obs_gauge_,          \
                                             __LINE__) =              \
        ::sma::obs::Registry::global().gauge(name);                   \
    SMA_OBS_CONCAT(sma_obs_gauge_, __LINE__)                          \
        .set(static_cast<std::int64_t>(v));                           \
  } while (0)

/// Generic value histogram (power-of-two buckets of whatever unit the
/// call site observes — name the metric accordingly).
#define SMA_HISTOGRAM(name, value)                                    \
  do {                                                                \
    static ::sma::obs::Histogram& SMA_OBS_CONCAT(sma_obs_hist_,       \
                                                 __LINE__) =          \
        ::sma::obs::Registry::global().histogram(name);               \
    SMA_OBS_CONCAT(sma_obs_hist_, __LINE__)                           \
        .observe(static_cast<std::uint64_t>(value));                  \
  } while (0)

#define SMA_HISTOGRAM_US(name, us) SMA_HISTOGRAM(name, us)

#else  // SMA_OBS_ENABLED

// `sizeof` keeps the argument expressions *unevaluated* (no clock reads,
// no atomics) while still marking their operands used, so instrumented
// call sites stay -Wunused-clean in both modes.
#define SMA_TRACE_SPAN(cat, name) ((void)0)
#define SMA_TRACE_SPAN_V(cat, name, arg) ((void)sizeof((arg)))
#define SMA_COUNT_N(name, n) ((void)sizeof((n)))
#define SMA_COUNT(name) ((void)0)
#define SMA_GAUGE_SET(name, v) ((void)sizeof((v)))
#define SMA_HISTOGRAM(name, value) ((void)sizeof((value)))
#define SMA_HISTOGRAM_US(name, us) ((void)sizeof((us)))

#endif  // SMA_OBS_ENABLED
