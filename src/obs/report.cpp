#include "obs/report.hpp"

#include <cstdio>
#include <sstream>

#include "attack/checkpoint.hpp"
#include "attack/dl_attack.hpp"
#include "eval/split_cache.hpp"
#include "layout/design.hpp"
#include "util/fault.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "serve/serve_loop.hpp"

namespace sma::obs {

namespace {

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Shortest round-trippable decimal — keeps the JSON compact and stable.
void append_number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

void RunReport::add_flow(const std::string& design_name,
                         const layout::Design& design) {
  FlowRow row;
  row.design = design_name;
  row.global_place_seconds = design.timings.global_place_seconds;
  row.legalize_seconds = design.timings.legalize_seconds;
  row.detailed_place_seconds = design.timings.detailed_place_seconds;
  row.route_seconds = design.timings.route_seconds;
  row.negotiation_seconds = design.routing.negotiation_seconds;
  row.wirelength = design.routing.total_wirelength;
  row.vias = design.routing.total_vias;
  row.overflow = design.routing.final_overflow;
  row.fallback_routes = design.routing.fallback_routes;
  flow_.push_back(std::move(row));
}

void RunReport::add_train(const attack::TrainStats& stats) {
  train_.present = true;
  train_.seconds = stats.seconds;
  train_.epochs = static_cast<int>(stats.epoch_loss.size());
  train_.seconds_per_epoch =
      train_.epochs > 0 ? stats.seconds / train_.epochs : 0.0;
  train_.queries_seen = stats.queries_seen;
  train_.final_loss = stats.epoch_loss.empty() ? 0.0 : stats.epoch_loss.back();
  train_.arena_allocs_total = 0;
  for (long a : stats.arena_allocs_per_epoch) train_.arena_allocs_total += a;
  train_.arena_bytes_pinned = stats.arena_bytes_pinned;
}

void RunReport::add_replicas(const attack::DlAttack& attack) {
  const attack::ReplicaSet::LeaseStats lease = attack.replica_lease_stats();
  const nn::ArenaStats arena = attack.inference_arena_stats();
  replicas_.present = true;
  replicas_.clones_created = lease.clones_created;
  replicas_.leases = lease.leases;
  replicas_.max_on_loan = static_cast<std::int64_t>(lease.max_on_loan);
  replicas_.wait_seconds = lease.wait_seconds;
  replicas_.occupancy_seconds = lease.occupancy_seconds;
  replicas_.timeouts = lease.timeouts;
  replicas_.arena_allocs = arena.allocs;
  replicas_.arena_bytes_pinned = arena.bytes_pinned;
}

void RunReport::add_serve(const serve::ServeStats& stats) {
  serve_.present = true;
  serve_.submitted = stats.submitted;
  serve_.answered = stats.answered;
  serve_.failed = stats.failed;
  serve_.empty = stats.empty;
  serve_.batches = stats.batches;
  serve_.max_batch_seen = static_cast<std::int64_t>(stats.max_batch_seen);
  serve_.max_queue_depth = static_cast<std::int64_t>(stats.max_queue_depth);
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\": \"" << kSchema << "\"";

  os << ", \"run\": {\"name\": ";
  append_json_string(os, name_);
  os << ", \"threads\": " << threads_
     << ", \"obs_compiled\": " << (compiled() ? "true" : "false")
     << ", \"tracing\": " << (tracing_enabled() ? "true" : "false") << "}";

  os << ", \"flow\": [";
  for (std::size_t i = 0; i < flow_.size(); ++i) {
    const FlowRow& row = flow_[i];
    if (i > 0) os << ", ";
    os << "{\"design\": ";
    append_json_string(os, row.design);
    os << ", \"global_place_seconds\": ";
    append_number(os, row.global_place_seconds);
    os << ", \"legalize_seconds\": ";
    append_number(os, row.legalize_seconds);
    os << ", \"detailed_place_seconds\": ";
    append_number(os, row.detailed_place_seconds);
    os << ", \"route_seconds\": ";
    append_number(os, row.route_seconds);
    os << ", \"negotiation_seconds\": ";
    append_number(os, row.negotiation_seconds);
    os << ", \"wirelength\": " << row.wirelength << ", \"vias\": " << row.vias
       << ", \"overflow\": " << row.overflow
       << ", \"fallback_routes\": " << row.fallback_routes << "}";
  }
  os << "]";

  if (train_.present) {
    os << ", \"train\": {\"seconds\": ";
    append_number(os, train_.seconds);
    os << ", \"seconds_per_epoch\": ";
    append_number(os, train_.seconds_per_epoch);
    os << ", \"epochs\": " << train_.epochs
       << ", \"queries_seen\": " << train_.queries_seen
       << ", \"final_loss\": ";
    append_number(os, train_.final_loss);
    os << ", \"arena_allocs_total\": " << train_.arena_allocs_total
       << ", \"arena_bytes_pinned\": " << train_.arena_bytes_pinned << "}";
  } else {
    os << ", \"train\": null";
  }

  if (replicas_.present) {
    os << ", \"replicas\": {\"clones_created\": " << replicas_.clones_created
       << ", \"leases\": " << replicas_.leases
       << ", \"max_on_loan\": " << replicas_.max_on_loan
       << ", \"wait_seconds\": ";
    append_number(os, replicas_.wait_seconds);
    os << ", \"occupancy_seconds\": ";
    append_number(os, replicas_.occupancy_seconds);
    os << ", \"timeouts\": " << replicas_.timeouts
       << ", \"arena_allocs\": " << replicas_.arena_allocs
       << ", \"arena_bytes_pinned\": " << replicas_.arena_bytes_pinned << "}";
  } else {
    os << ", \"replicas\": null";
  }

  if (serve_.present) {
    os << ", \"serve\": {\"submitted\": " << serve_.submitted
       << ", \"answered\": " << serve_.answered
       << ", \"failed\": " << serve_.failed
       << ", \"empty\": " << serve_.empty
       << ", \"batches\": " << serve_.batches
       << ", \"max_batch_seen\": " << serve_.max_batch_seen
       << ", \"max_queue_depth\": " << serve_.max_queue_depth << "}";
  } else {
    os << ", \"serve\": null";
  }

  const eval::SplitCache::Stats cache = eval::SplitCache::global().stats();
  os << ", \"split_cache\": {\"hits\": " << cache.hits
     << ", \"misses\": " << cache.misses
     << ", \"disk_hits\": " << cache.disk_hits
     << ", \"disk_spills\": " << cache.disk_spills
     << ", \"disk_corrupt\": " << cache.disk_corrupt << ", \"disk_dir\": ";
  append_json_string(os, eval::SplitCache::global().disk_dir());
  os << "}";

  // Durability: the crash-safety machinery's process-wide counters —
  // whether fault injection is compiled in and how often it fired, plus
  // the checkpoint lifecycle (PR 7).
  const attack::CheckpointStats ckpt = attack::checkpoint_stats();
  os << ", \"durability\": {\"fault_compiled\": "
     << (util::fault::compiled() ? "true" : "false")
     << ", \"faults_injected\": " << util::fault::injected_count()
     << ", \"checkpoint_saves\": " << ckpt.saves
     << ", \"checkpoint_resumes\": " << ckpt.resumes
     << ", \"checkpoint_corrupt_discards\": " << ckpt.corrupt_discards << "}";

  // reorder_bytes / pack_bytes are the layout refactor's proof
  // obligation: pack_bytes is the im2col/col2im traffic that remains by
  // design, reorder_bytes the layer-boundary permutation traffic the
  // channel-major pipeline eliminates (~0 on the default mode; nonzero
  // only on the reference / row-major-compat baselines).
  Registry& reg = Registry::global();
  os << ", \"kernels\": {\"backend\": \""
     << (nn::kernel_backend() == nn::KernelBackend::kBlocked ? "blocked"
                                                             : "reference")
     << "\", \"isa\": \"" << nn::active_isa()
     << "\", \"blocked_calls\": " << reg.counter("gemm.blocked_calls").value()
     << ", \"reference_calls\": "
     << reg.counter("gemm.reference_calls").value()
     << ", \"reorder_bytes\": " << reg.counter("nn.reorder_bytes").value()
     << ", \"pack_bytes\": " << reg.counter("nn.pack_bytes").value() << "}";

  const Registry::Snapshot snap = reg.snapshot();
  os << ", \"metrics\": {\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) os << ", ";
    append_json_string(os, snap.counters[i].first);
    os << ": " << snap.counters[i].second;
  }
  os << "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) os << ", ";
    append_json_string(os, snap.gauges[i].first);
    os << ": " << snap.gauges[i].second;
  }
  os << "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const Registry::HistogramSnapshot& h = snap.histograms[i];
    if (i > 0) os << ", ";
    append_json_string(os, h.name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) os << ", ";
      os << h.buckets[b];
    }
    os << "]}";
  }
  os << "}}";

  os << "}";
  return os.str();
}

}  // namespace sma::obs
