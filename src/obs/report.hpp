// Unified run report — one JSON schema for every experiment and bench.
//
// Before this existed, per-phase flow seconds lived in Design::timings,
// arena stats in TrainStats, cache hit rates in SplitCache, and every
// bench hand-rolled its own JSON around a different subset. RunReport
// unifies them: callers add the sections they have (flow rows, training
// stats, replica-serving stats) and `to_json()` appends the globally
// available ones (split-cache stats, GEMM kernel dispatch counts, the
// full metrics snapshot) under the stable `sma-run-report-v1` schema that
// scripts/check_report.py validates in CI.
//
// This is the top of the obs layer: report.cpp may include any sma
// header, nothing in src/ includes report.hpp except entry points
// (experiments, examples, benches via bench/bench_util.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sma::layout {
struct Design;
}
namespace sma::attack {
struct TrainStats;
class DlAttack;
}  // namespace sma::attack
namespace sma::serve {
struct ServeStats;
}

namespace sma::obs {

class RunReport {
 public:
  static constexpr const char* kSchema = "sma-run-report-v1";

  explicit RunReport(std::string name, int threads = 1)
      : name_(std::move(name)), threads_(threads) {}

  /// One implemented design: per-phase flow seconds (fed by the obs
  /// TimedSpans in run_flow) plus the routing aggregates.
  void add_flow(const std::string& design_name, const layout::Design& design);

  /// Training-run stats (s/epoch, arena allocs/bytes, final loss).
  void add_train(const attack::TrainStats& stats);

  /// Inference-serving stats of one DlAttack: replica-lease lifecycle
  /// (leases, wait, occupancy) and the pinned replicas' arena stats.
  void add_replicas(const attack::DlAttack& attack);

  /// Request-coalescing stats of one ServeLoop (src/serve/): submit and
  /// batch lifecycle counters. The width/latency distributions travel in
  /// the metrics section's histograms (serve.batch_width,
  /// serve.queue_depth, serve.queue_wait_us).
  void add_serve(const serve::ServeStats& stats);

  /// Serialize. Split-cache stats, kernel dispatch counts and the metrics
  /// registry snapshot are read at call time, in fixed (name) order, so
  /// two identical runs emit identical key sequences.
  std::string to_json() const;

 private:
  struct FlowRow {
    std::string design;
    double global_place_seconds = 0.0;
    double legalize_seconds = 0.0;
    double detailed_place_seconds = 0.0;
    double route_seconds = 0.0;
    double negotiation_seconds = 0.0;
    std::int64_t wirelength = 0;
    int vias = 0;
    int overflow = 0;
    int fallback_routes = 0;
  };
  struct Train {
    bool present = false;
    double seconds = 0.0;
    double seconds_per_epoch = 0.0;
    int epochs = 0;
    long queries_seen = 0;
    double final_loss = 0.0;
    long arena_allocs_total = 0;
    std::uint64_t arena_bytes_pinned = 0;
  };
  struct Replicas {
    bool present = false;
    long clones_created = 0;
    long leases = 0;
    std::int64_t max_on_loan = 0;
    double wait_seconds = 0.0;
    double occupancy_seconds = 0.0;
    long timeouts = 0;
    long arena_allocs = 0;
    std::uint64_t arena_bytes_pinned = 0;
  };
  struct Serve {
    bool present = false;
    long submitted = 0;
    long answered = 0;
    long failed = 0;
    long empty = 0;
    long batches = 0;
    std::int64_t max_batch_seen = 0;
    std::int64_t max_queue_depth = 0;
  };

  std::string name_;
  int threads_ = 1;
  std::vector<FlowRow> flow_;
  Train train_;
  Replicas replicas_;
  Serve serve_;
};

}  // namespace sma::obs
