// Structural netlist statistics and levelization.
//
// Used by tests to check that generated benchmarks have sane shape, by the
// placer for its initial ordering, and by the benches to report design
// sizes alongside attack results.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace sma::netlist {

/// Topological levelization. Sequential cells (DFFs) act as level breaks:
/// their outputs restart at level 0, so combinational loops through state
/// elements are fine; purely combinational loops are reported.
struct Levelization {
  std::vector<int> cell_level;   ///< per CellId; -1 if on a comb. loop
  int max_level = 0;
  bool has_combinational_loop = false;
  /// Cells in a valid topological order (loop cells appended last).
  std::vector<CellId> topo_order;
};

Levelization levelize(const Netlist& netlist);

/// Aggregate shape statistics.
struct NetlistStats {
  int num_cells = 0;
  int num_nets = 0;
  int num_ports = 0;
  int num_pins = 0;
  int num_sequential = 0;
  int logic_depth = 0;
  double avg_fanout = 0.0;   ///< average sinks per net
  int max_fanout = 0;
  double avg_fanin = 0.0;    ///< average input pins per cell
};

NetlistStats compute_stats(const Netlist& netlist);

/// One-line human-readable summary.
std::string to_string(const NetlistStats& stats);

}  // namespace sma::netlist
