#include "netlist/netlist.hpp"

#include <stdexcept>

namespace sma::netlist {

Netlist::Netlist(std::string name, const tech::CellLibrary* library)
    : name_(std::move(name)), library_(library) {
  if (library_ == nullptr) {
    throw std::invalid_argument("netlist requires a cell library");
  }
}

CellId Netlist::add_cell(const std::string& name, int lib_cell) {
  if (cell_index_.contains(name)) {
    throw std::invalid_argument("duplicate cell name: " + name);
  }
  if (lib_cell < 0 || lib_cell >= library_->num_cells()) {
    throw std::out_of_range("lib cell index out of range for " + name);
  }
  Cell cell;
  cell.name = name;
  cell.lib_cell = lib_cell;
  cell.pin_nets.assign(library_->cell(lib_cell).pins.size(), kInvalidId);
  CellId id = static_cast<CellId>(cells_.size());
  cells_.push_back(std::move(cell));
  cell_index_.emplace(name, id);
  return id;
}

PortId Netlist::add_port(const std::string& name, PortDirection direction) {
  if (port_index_.contains(name)) {
    throw std::invalid_argument("duplicate port name: " + name);
  }
  Port port;
  port.name = name;
  port.direction = direction;
  PortId id = static_cast<PortId>(ports_.size());
  ports_.push_back(std::move(port));
  port_index_.emplace(name, id);
  return id;
}

NetId Netlist::add_net(const std::string& name) {
  if (net_index_.contains(name)) {
    throw std::invalid_argument("duplicate net name: " + name);
  }
  Net net;
  net.name = name;
  NetId id = static_cast<NetId>(nets_.size());
  nets_.push_back(std::move(net));
  net_index_.emplace(name, id);
  return id;
}

void Netlist::connect(NetId net_id, PinRef pin) {
  Net& net = nets_.at(net_id);
  bool driver = is_driver_pin(pin);

  if (pin.is_port()) {
    Port& port = ports_.at(pin.id);
    if (port.net != kInvalidId) {
      throw std::logic_error("port already connected: " + port.name);
    }
    port.net = net_id;
  } else {
    Cell& cell = cells_.at(pin.id);
    NetId& slot = cell.pin_nets.at(pin.lib_pin);
    if (slot != kInvalidId) {
      throw std::logic_error("cell pin already connected: " + pin_name(pin));
    }
    slot = net_id;
  }

  if (driver) {
    if (net.has_driver()) {
      throw std::logic_error("net already has a driver: " + net.name);
    }
    net.driver = pin;
  } else {
    net.sinks.push_back(pin);
  }
}

std::optional<CellId> Netlist::find_cell(const std::string& name) const {
  auto it = cell_index_.find(name);
  if (it == cell_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<PortId> Netlist::find_port(const std::string& name) const {
  auto it = port_index_.find(name);
  if (it == port_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<NetId> Netlist::find_net(const std::string& name) const {
  auto it = net_index_.find(name);
  if (it == net_index_.end()) return std::nullopt;
  return it->second;
}

bool Netlist::is_driver_pin(const PinRef& pin) const {
  if (pin.is_port()) {
    return ports_.at(pin.id).direction == PortDirection::kInput;
  }
  const Cell& cell = cells_.at(pin.id);
  const tech::LibCell& lib = library_->cell(cell.lib_cell);
  return lib.pins.at(pin.lib_pin).direction == tech::PinDirection::kOutput;
}

double Netlist::sink_capacitance(const PinRef& pin) const {
  if (pin.is_port()) {
    // Nominal external load presented by an output pad.
    return ports_.at(pin.id).direction == PortDirection::kOutput ? 2.0 : 0.0;
  }
  const Cell& cell = cells_.at(pin.id);
  return library_->cell(cell.lib_cell).pins.at(pin.lib_pin).capacitance;
}

std::string Netlist::pin_name(const PinRef& pin) const {
  if (pin.is_port()) return ports_.at(pin.id).name;
  const Cell& cell = cells_.at(pin.id);
  const tech::LibCell& lib = library_->cell(cell.lib_cell);
  return cell.name + "/" + lib.pins.at(pin.lib_pin).name;
}

int Netlist::num_pins() const {
  int total = num_ports();
  for (const Cell& cell : cells_) {
    total += static_cast<int>(cell.pin_nets.size());
  }
  return total;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  for (NetId i = 0; i < num_nets(); ++i) {
    const Net& net = nets_[i];
    if (!net.has_driver()) {
      problems.push_back("net without driver: " + net.name);
    }
    if (net.sinks.empty()) {
      problems.push_back("net without sinks: " + net.name);
    }
  }
  for (CellId i = 0; i < num_cells(); ++i) {
    const Cell& cell = cells_[i];
    for (std::size_t p = 0; p < cell.pin_nets.size(); ++p) {
      if (cell.pin_nets[p] == kInvalidId) {
        problems.push_back("open pin: " +
                           pin_name(PinRef::cell_pin(i, static_cast<int>(p))));
      }
    }
  }
  for (PortId i = 0; i < num_ports(); ++i) {
    if (ports_[i].net == kInvalidId) {
      problems.push_back("unconnected port: " + ports_[i].name);
    }
  }
  return problems;
}

}  // namespace sma::netlist
