#include "netlist/simulate.hpp"

#include <stdexcept>

namespace sma::netlist {

Simulator::Simulator(const Netlist* netlist)
    : netlist_(netlist), levelization_(levelize(*netlist)) {
  if (netlist_ == nullptr) throw std::invalid_argument("null netlist");
  if (levelization_.has_combinational_loop) {
    throw std::invalid_argument("cannot simulate a combinational loop");
  }
  for (PortId p = 0; p < netlist_->num_ports(); ++p) {
    if (netlist_->port(p).direction == PortDirection::kInput) {
      input_ports_.push_back(p);
    } else {
      output_ports_.push_back(p);
    }
  }
  for (CellId c = 0; c < netlist_->num_cells(); ++c) {
    if (tech::is_sequential(netlist_->lib_cell_of(c).function)) {
      dffs_.push_back(c);
    }
  }
  values_.assign(netlist_->num_nets(), false);
  dff_state_.assign(dffs_.size(), false);
}

bool Simulator::eval_cell(CellId cell_id) const {
  const Cell& cell = netlist_->cell(cell_id);
  const tech::LibCell& lib = netlist_->lib_cell_of(cell_id);
  std::vector<bool> in;
  for (int pin : lib.input_pins()) {
    in.push_back(values_.at(cell.pin_nets.at(pin)));
  }
  using tech::Function;
  switch (lib.function) {
    case Function::kInv: return !in[0];
    case Function::kBuf: return in[0];
    case Function::kNand: {
      bool all = true;
      for (bool v : in) all = all && v;
      return !all;
    }
    case Function::kAnd: {
      bool all = true;
      for (bool v : in) all = all && v;
      return all;
    }
    case Function::kNor: {
      bool any = false;
      for (bool v : in) any = any || v;
      return !any;
    }
    case Function::kOr: {
      bool any = false;
      for (bool v : in) any = any || v;
      return any;
    }
    case Function::kXor: {
      bool acc = false;
      for (bool v : in) acc = acc != v;
      return acc;
    }
    case Function::kXnor: {
      bool acc = false;
      for (bool v : in) acc = acc != v;
      return !acc;
    }
    case Function::kAoi21: return !((in[0] && in[1]) || in[2]);
    case Function::kOai21: return !((in[0] || in[1]) && in[2]);
    case Function::kMux2: return in[2] ? in[1] : in[0];
    case Function::kDff:
      throw std::logic_error("DFF evaluated combinationally");
  }
  return false;
}

std::vector<bool> Simulator::evaluate(const std::vector<bool>& inputs) {
  if (inputs.size() != input_ports_.size()) {
    throw std::invalid_argument("wrong input vector width");
  }
  for (std::size_t i = 0; i < input_ports_.size(); ++i) {
    values_.at(netlist_->port(input_ports_[i]).net) = inputs[i];
  }
  // DFF outputs present state before any combinational evaluation.
  for (std::size_t d = 0; d < dffs_.size(); ++d) {
    const Cell& cell = netlist_->cell(dffs_[d]);
    const tech::LibCell& lib = netlist_->lib_cell_of(dffs_[d]);
    values_.at(cell.pin_nets.at(lib.output_pin())) = dff_state_[d];
  }
  for (CellId c : levelization_.topo_order) {
    const tech::LibCell& lib = netlist_->lib_cell_of(c);
    if (tech::is_sequential(lib.function)) continue;
    const Cell& cell = netlist_->cell(c);
    values_.at(cell.pin_nets.at(lib.output_pin())) = eval_cell(c);
  }
  std::vector<bool> outputs;
  outputs.reserve(output_ports_.size());
  for (PortId p : output_ports_) {
    outputs.push_back(values_.at(netlist_->port(p).net));
  }
  return outputs;
}

std::vector<bool> Simulator::step(const std::vector<bool>& inputs) {
  std::vector<bool> outputs = evaluate(inputs);
  for (std::size_t d = 0; d < dffs_.size(); ++d) {
    const Cell& cell = netlist_->cell(dffs_[d]);
    const tech::LibCell& lib = netlist_->lib_cell_of(dffs_[d]);
    dff_state_[d] = values_.at(cell.pin_nets.at(lib.input_pins()[0]));
  }
  return outputs;
}

void Simulator::reset() {
  dff_state_.assign(dffs_.size(), false);
}

bool random_equivalence(const Netlist& a, const Netlist& b, int vectors,
                        util::Pcg32& rng, int sequence_length) {
  Simulator sim_a(&a);
  Simulator sim_b(&b);
  if (sim_a.num_inputs() != sim_b.num_inputs() ||
      sim_a.num_outputs() != sim_b.num_outputs()) {
    return false;
  }
  for (int v = 0; v < vectors; ++v) {
    sim_a.reset();
    sim_b.reset();
    for (int t = 0; t < sequence_length; ++t) {
      std::vector<bool> in(sim_a.num_inputs());
      for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool(0.5);
      if (sim_a.step(in) != sim_b.step(in)) return false;
    }
  }
  return true;
}

}  // namespace sma::netlist
