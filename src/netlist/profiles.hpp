// Benchmark design profiles.
//
// One profile per design evaluated in the paper (Table 3) plus the
// training/validation suites described in Sec. 5. Gate and I/O counts for
// the ISCAS-85 designs follow the published benchmark statistics; ITC-99
// profiles are sequential. The two largest ITC designs are scaled down
// (flagged via `scaled_down` and `paper_gates`) because this reproduction
// runs on a single CPU core; bench output reports the scaling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"

namespace sma::netlist {

/// Statistics of one benchmark design to synthesize.
struct DesignProfile {
  std::string name;
  int num_inputs = 0;
  int num_outputs = 0;
  int num_gates = 0;
  double seq_fraction = 0.0;   ///< DFF share (ITC-99 designs)
  bool scaled_down = false;    ///< true if smaller than the paper's design
  int paper_gates = 0;         ///< original size when scaled_down
};

/// The 16 to-be-attacked designs of Table 3 (ISCAS-85 + ITC-99).
const std::vector<DesignProfile>& attack_profiles();

/// The 9 training designs (MCNC/ISCAS-like mix).
const std::vector<DesignProfile>& training_profiles();

/// The 5 validation designs.
const std::vector<DesignProfile>& validation_profiles();

/// Profile lookup across all three suites; throws if unknown.
const DesignProfile& find_profile(const std::string& name);

/// Instantiate the profile as a netlist (deterministic in `seed`).
Netlist build_profile(const DesignProfile& profile,
                      const tech::CellLibrary* library, std::uint64_t seed);

}  // namespace sma::netlist
