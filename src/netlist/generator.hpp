// Synthetic benchmark-netlist generator.
//
// Stands in for the ISCAS-85 / MCNC / ITC-99 benchmark suites, whose
// netlist files are not redistributable inside this repository. The
// generator produces levelized random gate networks whose structural
// statistics (gate count, I/O count, fan-in mix, fan-out skew, structural
// locality, sequential fraction) are matched per design to the published
// benchmark profiles (`profiles.hpp`). The DL attack and its baselines are
// purely structural/geometric, so matching these statistics reproduces the
// attack-hardness of the originals (see DESIGN.md, substitution table).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace sma::netlist {

/// Knobs of the random netlist model.
struct GeneratorConfig {
  int num_inputs = 16;
  int num_outputs = 8;
  int num_gates = 100;          ///< library cells to instantiate
  double seq_fraction = 0.0;    ///< fraction of gates that are DFFs
  /// Geometric locality parameter in (0, 1): larger values bias gate fan-in
  /// selection toward recently created signals, producing the narrow,
  /// cone-like structure (low Rent exponent) of real combinational logic.
  double locality = 0.08;
  /// Probability of drawing a so-far-unused signal for a fan-in (keeps the
  /// number of dangling signals low and connects all primary inputs).
  double reuse_pressure = 0.5;
  std::uint64_t seed = 1;
};

/// Generate a connected netlist; the result always passes
/// `Netlist::validate()`.
Netlist generate_netlist(const GeneratorConfig& config,
                         const std::string& design_name,
                         const tech::CellLibrary* library);

}  // namespace sma::netlist
