#include "netlist/profiles.hpp"

#include <stdexcept>

namespace sma::netlist {

namespace {

DesignProfile make(std::string name, int inputs, int outputs, int gates,
                   double seq = 0.0, int paper_gates = 0) {
  DesignProfile p;
  p.name = std::move(name);
  p.num_inputs = inputs;
  p.num_outputs = outputs;
  p.num_gates = gates;
  p.seq_fraction = seq;
  p.scaled_down = paper_gates > 0;
  p.paper_gates = paper_gates > 0 ? paper_gates : gates;
  return p;
}

}  // namespace

const std::vector<DesignProfile>& attack_profiles() {
  // ISCAS-85 sizes follow the published benchmarks; ITC-99 sizes follow
  // typical synthesis results for those RT-level designs. b15_1, b17_1 and
  // b18 are scaled for single-core runtime (flagged).
  static const std::vector<DesignProfile> kProfiles = {
      make("c432", 36, 7, 160),
      make("c880", 60, 26, 383),
      make("c1355", 41, 32, 546),
      make("c1908", 33, 25, 880),
      make("c2670", 157, 64, 1193),
      make("c3540", 50, 22, 1669),
      make("c5315", 178, 123, 2307),
      make("c6288", 32, 32, 2416),
      make("c7552", 207, 108, 3512),
      make("b7", 49, 57, 420, 0.12),
      make("b11", 38, 31, 550, 0.06),
      make("b13", 62, 63, 360, 0.15),
      make("b14", 77, 299, 2000, 0.06, 4200),
      make("b15_1", 89, 519, 2300, 0.08, 8900),
      make("b17_1", 135, 97, 2600, 0.08, 22000),
      make("b18", 148, 120, 3000, 0.06, 49000),
  };
  return kProfiles;
}

const std::vector<DesignProfile>& training_profiles() {
  // MCNC-flavoured combinational mix plus mid-size sequential designs, in
  // the spirit of the paper's 9-design training corpus.
  static const std::vector<DesignProfile> kProfiles = {
      make("t_alu2", 10, 6, 420),
      make("t_apex6", 135, 99, 780),
      make("t_dalu", 75, 16, 1100),
      make("t_frg2", 143, 139, 900),
      make("t_i8", 133, 81, 1300),
      make("t_k2", 45, 45, 1200),
      make("t_vda", 17, 39, 750),
      make("t_b04", 76, 74, 650, 0.10),
      make("t_b12", 125, 119, 1000, 0.12),
  };
  return kProfiles;
}

const std::vector<DesignProfile>& validation_profiles() {
  static const std::vector<DesignProfile> kProfiles = {
      make("v_c8", 28, 18, 160),
      make("v_cht", 47, 36, 220),
      make("v_ttt2", 24, 21, 290),
      make("v_x4", 94, 71, 500),
      make("v_b05", 34, 70, 600, 0.08),
  };
  return kProfiles;
}

const DesignProfile& find_profile(const std::string& name) {
  for (const auto* suite :
       {&attack_profiles(), &training_profiles(), &validation_profiles()}) {
    for (const DesignProfile& p : *suite) {
      if (p.name == name) return p;
    }
  }
  throw std::invalid_argument("unknown design profile: " + name);
}

Netlist build_profile(const DesignProfile& profile,
                      const tech::CellLibrary* library, std::uint64_t seed) {
  GeneratorConfig config;
  config.num_inputs = profile.num_inputs;
  config.num_outputs = profile.num_outputs;
  config.num_gates = profile.num_gates;
  config.seq_fraction = profile.seq_fraction;
  config.seed = seed;
  return generate_netlist(config, profile.name, library);
}

}  // namespace sma::netlist
