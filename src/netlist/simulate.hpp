// Cycle-free logic simulation.
//
// Evaluates a netlist on Boolean input vectors (DFFs hold explicit state
// and advance per `step`). The attack itself never simulates — it is
// purely structural — but simulation is the ground truth for substrate
// correctness: generated netlists must be evaluable, .bench round trips
// and DEF-lite round trips must preserve function, and a reconnected
// netlist equals the original exactly when every sink was restored.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"
#include "util/rng.hpp"

namespace sma::netlist {

/// Simulator over one netlist; holds per-net values and DFF state.
class Simulator {
 public:
  explicit Simulator(const Netlist* netlist);

  /// Number of primary inputs / outputs.
  int num_inputs() const { return static_cast<int>(input_ports_.size()); }
  int num_outputs() const { return static_cast<int>(output_ports_.size()); }

  /// Evaluate combinationally with the given input values (index-aligned
  /// with the netlist's input ports in id order). DFF outputs present
  /// their current state. Returns output port values in id order.
  std::vector<bool> evaluate(const std::vector<bool>& inputs);

  /// `evaluate`, then clock every DFF (state <- D input value).
  std::vector<bool> step(const std::vector<bool>& inputs);

  /// Reset all DFF state to 0.
  void reset();

  /// Value of an arbitrary net after the last evaluate/step.
  bool net_value(NetId net) const { return values_.at(net); }

 private:
  bool eval_cell(CellId cell) const;

  const Netlist* netlist_;
  Levelization levelization_;
  std::vector<PortId> input_ports_;
  std::vector<PortId> output_ports_;
  std::vector<CellId> dffs_;
  std::vector<bool> values_;     ///< per net
  std::vector<bool> dff_state_;  ///< per entry of dffs_
};

/// Structural equivalence check by random simulation: run `vectors`
/// random input vectors (and `sequence_length` clock steps each for
/// sequential designs) through both netlists and compare outputs. The
/// netlists must have identical port counts in id order. Returns true if
/// no mismatch was observed.
bool random_equivalence(const Netlist& a, const Netlist& b, int vectors,
                        util::Pcg32& rng, int sequence_length = 4);

}  // namespace sma::netlist
