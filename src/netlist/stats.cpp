#include "netlist/stats.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace sma::netlist {

Levelization levelize(const Netlist& nl) {
  Levelization result;
  result.cell_level.assign(nl.num_cells(), -1);

  // Kahn's algorithm over the cell graph. A cell depends on the driver
  // cells of its input nets, except through DFF outputs (level breaks).
  std::vector<int> pending(nl.num_cells(), 0);
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const Cell& cell = nl.cell(c);
    const tech::LibCell& lib = nl.library().cell(cell.lib_cell);
    for (int pin : lib.input_pins()) {
      NetId net_id = cell.pin_nets.at(pin);
      if (net_id == kInvalidId) continue;
      const Net& net = nl.net(net_id);
      if (!net.has_driver() || net.driver.is_port()) continue;
      const Cell& driver_cell = nl.cell(net.driver.id);
      if (tech::is_sequential(nl.library().cell(driver_cell.lib_cell).function)) {
        continue;  // level break at state elements
      }
      ++pending[c];
    }
  }

  std::deque<CellId> ready;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (pending[c] == 0) {
      ready.push_back(c);
      result.cell_level[c] = 0;
    }
  }

  while (!ready.empty()) {
    CellId c = ready.front();
    ready.pop_front();
    result.topo_order.push_back(c);
    result.max_level = std::max(result.max_level, result.cell_level[c]);

    const Cell& cell = nl.cell(c);
    const tech::LibCell& lib = nl.library().cell(cell.lib_cell);
    if (tech::is_sequential(lib.function)) {
      // Consumers of a DFF output do not wait on it.
      continue;
    }
    NetId out_net = cell.pin_nets.at(lib.output_pin());
    if (out_net == kInvalidId) continue;
    for (const PinRef& sink : nl.net(out_net).sinks) {
      if (sink.is_port()) continue;
      CellId consumer = sink.id;
      if (--pending[consumer] == 0) {
        result.cell_level[consumer] = result.cell_level[c] + 1;
        ready.push_back(consumer);
      }
    }
  }

  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (result.cell_level[c] < 0) {
      result.has_combinational_loop = true;
      result.topo_order.push_back(c);
    }
  }
  return result;
}

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.num_cells = nl.num_cells();
  s.num_nets = nl.num_nets();
  s.num_ports = nl.num_ports();
  s.num_pins = nl.num_pins();

  long total_fanout = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    int fanout = static_cast<int>(nl.net(n).sinks.size());
    total_fanout += fanout;
    s.max_fanout = std::max(s.max_fanout, fanout);
  }
  s.avg_fanout = nl.num_nets() > 0
                     ? static_cast<double>(total_fanout) / nl.num_nets()
                     : 0.0;

  long total_fanin = 0;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const tech::LibCell& lib = nl.lib_cell_of(c);
    total_fanin += lib.num_inputs();
    if (tech::is_sequential(lib.function)) ++s.num_sequential;
  }
  s.avg_fanin = nl.num_cells() > 0
                    ? static_cast<double>(total_fanin) / nl.num_cells()
                    : 0.0;

  s.logic_depth = levelize(nl).max_level;
  return s;
}

std::string to_string(const NetlistStats& s) {
  std::ostringstream os;
  os << s.num_cells << " cells (" << s.num_sequential << " seq), "
     << s.num_nets << " nets, " << s.num_ports << " ports, depth "
     << s.logic_depth << ", avg fanout " << s.avg_fanout << ", max fanout "
     << s.max_fanout;
  return os.str();
}

}  // namespace sma::netlist
