#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

namespace sma::netlist {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

struct GateSpec {
  std::string output;
  std::string func;
  std::vector<std::string> inputs;
};

/// Incremental builder that owns gate decomposition.
class BenchBuilder {
 public:
  BenchBuilder(Netlist& nl) : nl_(nl) {}

  NetId net_for(const std::string& signal) {
    if (auto id = nl_.find_net(signal)) return *id;
    return nl_.add_net(signal);
  }

  /// Instantiate one library cell driving `out_net`.
  void instantiate(tech::Function fn, const std::vector<NetId>& fanin,
                   NetId out_net) {
    auto lib_index = nl_.library().pick(fn, static_cast<int>(fanin.size()));
    if (!lib_index) {
      throw std::runtime_error("no library cell for function with " +
                               std::to_string(fanin.size()) + " inputs");
    }
    const tech::LibCell& lib = nl_.library().cell(*lib_index);
    CellId cell = nl_.add_cell(unique_cell_name(lib.name), *lib_index);
    const auto inputs = lib.input_pins();
    for (std::size_t i = 0; i < fanin.size(); ++i) {
      nl_.connect(fanin[i], PinRef::cell_pin(cell, inputs[i]));
    }
    nl_.connect(out_net, PinRef::cell_pin(cell, lib.output_pin()));
  }

  /// Build a (possibly decomposed) gate computing `fn` over `fanin`,
  /// driving `out_net`.
  void build_gate(tech::Function fn, std::vector<NetId> fanin, NetId out_net) {
    using tech::Function;
    const int k = static_cast<int>(fanin.size());
    if (k == 0) throw std::runtime_error("gate with no inputs");

    // Degenerate single-input gates collapse to a buffer or inverter.
    if (k == 1 && !nl_.library().pick(fn, 1)) {
      bool inverting = fn == Function::kNand || fn == Function::kNor;
      instantiate(inverting ? Function::kInv : Function::kBuf, fanin, out_net);
      return;
    }

    // Directly representable?
    if (nl_.library().pick(fn, k)) {
      instantiate(fn, fanin, out_net);
      return;
    }

    switch (fn) {
      case Function::kAnd:
      case Function::kOr:
        build_tree(fn, std::move(fanin), out_net);
        return;
      case Function::kNand:
      case Function::kNor: {
        // Reduce with the non-inverting tree, finish with a wide-as-possible
        // inverting stage: NAND(k) = NAND(and-groups), etc.
        Function reduce = fn == Function::kNand ? Function::kAnd : Function::kOr;
        std::vector<NetId> groups = reduce_groups(reduce, std::move(fanin));
        instantiate(fn, groups, out_net);
        return;
      }
      case Function::kXor:
      case Function::kXnor: {
        // Parity chain; last stage carries the (possibly inverted) polarity.
        NetId acc = fanin[0];
        for (int i = 1; i < k - 1; ++i) {
          NetId t = temp_net();
          instantiate(Function::kXor, {acc, fanin[i]}, t);
          acc = t;
        }
        instantiate(fn, {acc, fanin[k - 1]}, out_net);
        return;
      }
      default:
        throw std::runtime_error("cannot decompose function");
    }
  }

 private:
  /// Balanced reduction tree for AND/OR with arbitrary width.
  void build_tree(tech::Function fn, std::vector<NetId> fanin, NetId out_net) {
    std::vector<NetId> groups = reduce_groups(fn, std::move(fanin));
    if (groups.size() == 1) {
      // A single group already computed the function into a temp; buffer it
      // onto the requested net. reduce_groups only returns one group when
      // it reduced >4 inputs, so a buffer is rare but correct.
      instantiate(tech::Function::kBuf, groups, out_net);
      return;
    }
    instantiate(fn, groups, out_net);
  }

  /// Repeatedly collapse runs of up to 4 signals with `fn` until at most 4
  /// remain; returns the survivors (>= 2 of them unless input had 1).
  std::vector<NetId> reduce_groups(tech::Function fn,
                                   std::vector<NetId> fanin) {
    while (fanin.size() > 4) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i < fanin.size(); i += 4) {
        std::size_t n = std::min<std::size_t>(4, fanin.size() - i);
        if (n == 1) {
          next.push_back(fanin[i]);
          continue;
        }
        NetId t = temp_net();
        instantiate(fn, {fanin.begin() + i, fanin.begin() + i + n}, t);
        next.push_back(t);
      }
      fanin = std::move(next);
    }
    return fanin;
  }

  NetId temp_net() {
    return nl_.add_net("_dec" + std::to_string(temp_counter_++));
  }

  std::string unique_cell_name(const std::string& lib_name) {
    return "U" + std::to_string(cell_counter_++) + "_" + lib_name;
  }

  Netlist& nl_;
  int temp_counter_ = 0;
  int cell_counter_ = 0;
};

tech::Function function_from_bench(const std::string& token, int line_no) {
  static const std::map<std::string, tech::Function> kMap = {
      {"NOT", tech::Function::kInv},   {"INV", tech::Function::kInv},
      {"BUF", tech::Function::kBuf},   {"BUFF", tech::Function::kBuf},
      {"AND", tech::Function::kAnd},   {"NAND", tech::Function::kNand},
      {"OR", tech::Function::kOr},     {"NOR", tech::Function::kNor},
      {"XOR", tech::Function::kXor},   {"XNOR", tech::Function::kXnor},
      {"DFF", tech::Function::kDff},
  };
  auto it = kMap.find(token);
  if (it == kMap.end()) {
    throw std::runtime_error("line " + std::to_string(line_no) +
                             ": unknown bench gate '" + token + "'");
  }
  return it->second;
}

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& design_name,
                    const tech::CellLibrary* library) {
  Netlist nl(design_name, library);
  BenchBuilder builder(nl);

  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<GateSpec> gates;

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    auto paren = line.find('(');
    auto equals = line.find('=');
    if (equals == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      auto close = line.rfind(')');
      if (paren == std::string::npos || close == std::string::npos ||
          close < paren) {
        throw std::runtime_error("line " + std::to_string(line_no) +
                                 ": malformed declaration");
      }
      std::string kind = upper(trim(line.substr(0, paren)));
      std::string name = trim(line.substr(paren + 1, close - paren - 1));
      if (kind == "INPUT") {
        input_names.push_back(name);
      } else if (kind == "OUTPUT") {
        output_names.push_back(name);
      } else {
        throw std::runtime_error("line " + std::to_string(line_no) +
                                 ": unknown declaration '" + kind + "'");
      }
      continue;
    }

    // name = FUNC(a, b, ...)
    GateSpec gate;
    gate.output = trim(line.substr(0, equals));
    auto close = line.rfind(')');
    paren = line.find('(', equals);
    if (paren == std::string::npos || close == std::string::npos ||
        close < paren) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": malformed gate");
    }
    gate.func = upper(trim(line.substr(equals + 1, paren - equals - 1)));
    std::string args = line.substr(paren + 1, close - paren - 1);
    std::stringstream ss(args);
    std::string arg;
    while (std::getline(ss, arg, ',')) {
      arg = trim(arg);
      if (!arg.empty()) gate.inputs.push_back(arg);
    }
    if (gate.inputs.empty()) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": gate with no inputs");
    }
    // Validate the function name early for a good error message.
    function_from_bench(gate.func, line_no);
    gates.push_back(std::move(gate));
  }

  for (const std::string& name : input_names) {
    PortId port = nl.add_port(name, PortDirection::kInput);
    nl.connect(builder.net_for(name), PinRef::port(port));
  }
  for (const GateSpec& gate : gates) {
    std::vector<NetId> fanin;
    fanin.reserve(gate.inputs.size());
    for (const std::string& in_name : gate.inputs) {
      fanin.push_back(builder.net_for(in_name));
    }
    builder.build_gate(function_from_bench(gate.func, 0), std::move(fanin),
                       builder.net_for(gate.output));
  }
  for (const std::string& name : output_names) {
    PortId port = nl.add_port(name + "_po", PortDirection::kOutput);
    auto net = nl.find_net(name);
    if (!net) {
      throw std::runtime_error("OUTPUT of undefined signal: " + name);
    }
    nl.connect(*net, PinRef::port(port));
  }
  return nl;
}

Netlist parse_bench_string(const std::string& text,
                           const std::string& design_name,
                           const tech::CellLibrary* library) {
  std::istringstream in(text);
  return parse_bench(in, design_name, library);
}

std::string to_bench(const Netlist& nl) {
  std::ostringstream os;
  os << "# " << nl.name() << "\n";
  for (PortId i = 0; i < nl.num_ports(); ++i) {
    const Port& port = nl.port(i);
    if (port.direction == PortDirection::kInput) {
      os << "INPUT(" << nl.net(port.net).name << ")\n";
    }
  }
  for (PortId i = 0; i < nl.num_ports(); ++i) {
    const Port& port = nl.port(i);
    if (port.direction == PortDirection::kOutput) {
      os << "OUTPUT(" << nl.net(port.net).name << ")\n";
    }
  }
  for (CellId i = 0; i < nl.num_cells(); ++i) {
    const Cell& cell = nl.cell(i);
    const tech::LibCell& lib = nl.library().cell(cell.lib_cell);
    const char* fn = nullptr;
    switch (lib.function) {
      case tech::Function::kInv: fn = "NOT"; break;
      case tech::Function::kBuf: fn = "BUFF"; break;
      case tech::Function::kAnd: fn = "AND"; break;
      case tech::Function::kNand: fn = "NAND"; break;
      case tech::Function::kOr: fn = "OR"; break;
      case tech::Function::kNor: fn = "NOR"; break;
      case tech::Function::kXor: fn = "XOR"; break;
      case tech::Function::kXnor: fn = "XNOR"; break;
      case tech::Function::kDff: fn = "DFF"; break;
      default:
        throw std::runtime_error("cell not expressible in bench: " +
                                 cell.name);
    }
    os << nl.net(cell.pin_nets.at(lib.output_pin())).name << " = " << fn
       << "(";
    const auto inputs = lib.input_pins();
    for (std::size_t p = 0; p < inputs.size(); ++p) {
      if (p > 0) os << ", ";
      os << nl.net(cell.pin_nets.at(inputs[p])).name;
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace sma::netlist
