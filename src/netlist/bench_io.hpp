// Reader/writer for the ISCAS-85/89 ".bench" netlist format.
//
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//
// The reader technology-maps each bench gate onto the cell library: gates
// wider than the widest library cell are decomposed into balanced trees
// (e.g. a 9-input NAND becomes AND4/AND3 stages feeding a final NAND), and
// XOR/XNOR chains are built for multi-input parity gates. DFFs map to the
// library flip-flop; the clock network is abstracted away, as it plays no
// role in the split-manufacturing attack.
#pragma once

#include <istream>
#include <string>

#include "netlist/netlist.hpp"

namespace sma::netlist {

/// Parse a .bench stream into a netlist named `design_name`.
/// Throws std::runtime_error with a line number on malformed input.
Netlist parse_bench(std::istream& in, const std::string& design_name,
                    const tech::CellLibrary* library);

/// Convenience overload for in-memory text.
Netlist parse_bench_string(const std::string& text,
                           const std::string& design_name,
                           const tech::CellLibrary* library);

/// Serialize to .bench. Only netlists whose cells all have bench-expressible
/// functions (INV/BUF/NAND/NOR/AND/OR/XOR/XNOR/DFF) can be written; throws
/// std::runtime_error otherwise.
std::string to_bench(const Netlist& netlist);

}  // namespace sma::netlist
