#include "netlist/generator.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace sma::netlist {

namespace {

using tech::Function;

/// Fan-in count distribution loosely matching technology-mapped benchmark
/// netlists: dominated by 2-input gates with a tail of 3/4-input gates and
/// a healthy inverter/buffer share.
int sample_fanin(util::Pcg32& rng) {
  static const std::vector<double> kWeights = {0.22, 0.52, 0.17, 0.09};
  return static_cast<int>(rng.next_weighted(kWeights)) + 1;
}

/// Pick a combinational function compatible with `fanin` inputs.
Function sample_function(util::Pcg32& rng, int fanin) {
  switch (fanin) {
    case 1:
      return rng.next_bool(0.7) ? Function::kInv : Function::kBuf;
    case 2: {
      static const std::vector<double> kW = {0.30, 0.22, 0.12, 0.12,
                                             0.12, 0.12};
      static const Function kF[] = {Function::kNand, Function::kNor,
                                    Function::kAnd,  Function::kOr,
                                    Function::kXor,  Function::kXnor};
      return kF[rng.next_weighted(kW)];
    }
    case 3: {
      static const std::vector<double> kW = {0.35, 0.25, 0.15, 0.15, 0.10};
      static const Function kF[] = {Function::kNand, Function::kNor,
                                    Function::kAoi21, Function::kOai21,
                                    Function::kMux2};
      return kF[rng.next_weighted(kW)];
    }
    case 4: {
      return rng.next_bool(0.6) ? Function::kNand : Function::kNor;
    }
    default:
      throw std::logic_error("unsupported fan-in");
  }
}

}  // namespace

Netlist generate_netlist(const GeneratorConfig& config,
                         const std::string& design_name,
                         const tech::CellLibrary* library) {
  if (config.num_inputs < 1 || config.num_gates < 1) {
    throw std::invalid_argument("generator needs >= 1 input and gate");
  }
  Netlist nl(design_name, library);
  util::Pcg32 rng(config.seed, 0x5e41);

  // Signals available as fan-in, in creation order (index = age).
  std::vector<NetId> pool;
  // Fan-out count per pool entry, to track unused signals.
  std::vector<int> fanout;
  std::vector<std::size_t> unused;  // indices into pool with fanout == 0

  auto add_signal = [&](NetId net) {
    pool.push_back(net);
    fanout.push_back(0);
    unused.push_back(pool.size() - 1);
  };

  for (int i = 0; i < config.num_inputs; ++i) {
    std::string name = "pi" + std::to_string(i);
    PortId port = nl.add_port(name, PortDirection::kInput);
    NetId net = nl.add_net(name);
    nl.connect(net, PinRef::port(port));
    add_signal(net);
  }

  // Draws a pool index for one fan-in, avoiding duplicates within
  // `chosen`. Fan-out accounting is the caller's job so that abandoned
  // gate attempts do not leak phantom fan-out.
  auto draw_fanin = [&](const std::vector<std::size_t>& chosen)
      -> std::optional<std::size_t> {
    // Retire stale entries of the unused list lazily.
    while (!unused.empty() && fanout[unused.back()] > 0) unused.pop_back();

    std::size_t index;
    if (!unused.empty() && rng.next_bool(config.reuse_pressure)) {
      // Recency-biased draw over the unused signals: real logic reuses
      // signals created nearby, which is what gives circuits the spatial
      // locality (low Rent exponent) a placer can exploit.
      std::size_t back_off = 0;
      while (rng.next_bool(1.0 - 2.0 * config.locality) &&
             back_off + 1 < unused.size()) {
        ++back_off;
      }
      index = unused[unused.size() - 1 - back_off];
      if (fanout[index] > 0) index = unused.back();  // stale; fall back
    } else {
      // Recency-biased geometric draw over the pool.
      std::size_t back_off = 0;
      while (rng.next_bool(1.0 - config.locality) &&
             back_off + 1 < pool.size()) {
        ++back_off;
        if (back_off > pool.size() / 2 && rng.next_bool(0.5)) break;
      }
      index = pool.size() - 1 - back_off;
    }
    auto taken = [&](std::size_t i) {
      return std::find(chosen.begin(), chosen.end(), i) != chosen.end();
    };
    if (taken(index)) {
      // Duplicate; do a cheap uniform retry.
      index = rng.next_below(static_cast<std::uint32_t>(pool.size()));
      if (taken(index)) return std::nullopt;
    }
    return index;
  };

  int made = 0;
  int attempts = 0;
  while (made < config.num_gates && attempts < config.num_gates * 20) {
    ++attempts;
    bool sequential = rng.next_bool(config.seq_fraction);
    int k = sequential ? 1 : sample_fanin(rng);
    k = std::min<int>(k, static_cast<int>(pool.size()));
    Function fn = sequential ? Function::kDff : sample_function(rng, k);

    auto lib_index = library->pick(fn, k);
    if (!lib_index) continue;

    std::vector<std::size_t> fanin_indices;
    fanin_indices.reserve(k);
    for (int i = 0; i < k; ++i) {
      auto index = draw_fanin(fanin_indices);
      if (!index) break;
      fanin_indices.push_back(*index);
    }
    if (static_cast<int>(fanin_indices.size()) < k) continue;
    for (std::size_t index : fanin_indices) ++fanout[index];

    const tech::LibCell& lib = library->cell(*lib_index);
    CellId cell =
        nl.add_cell("g" + std::to_string(made) + "_" + lib.name, *lib_index);
    const auto input_pins = lib.input_pins();
    for (int i = 0; i < k; ++i) {
      nl.connect(pool[fanin_indices[i]],
                 PinRef::cell_pin(cell, input_pins[i]));
    }
    NetId out = nl.add_net("n" + std::to_string(made));
    nl.connect(out, PinRef::cell_pin(cell, lib.output_pin()));
    add_signal(out);
    ++made;
  }
  if (made < config.num_gates) {
    throw std::runtime_error("generator failed to reach requested gate count");
  }

  // Every dangling signal becomes a primary output; then tap extra internal
  // signals until the requested output count is reached.
  int outputs_made = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (fanout[i] == 0) {
      PortId port =
          nl.add_port("po" + std::to_string(outputs_made), PortDirection::kOutput);
      nl.connect(pool[i], PinRef::port(port));
      ++fanout[i];
      ++outputs_made;
    }
  }
  while (outputs_made < config.num_outputs) {
    std::size_t index = rng.next_below(static_cast<std::uint32_t>(pool.size()));
    // Skip signals that already feed an output port (cheap check: allow
    // duplicates only via distinct nets).
    PortId port =
        nl.add_port("po" + std::to_string(outputs_made), PortDirection::kOutput);
    nl.connect(pool[index], PinRef::port(port));
    ++outputs_made;
  }
  return nl;
}

}  // namespace sma::netlist
