// Gate-level netlist database.
//
// Index-based storage (ids, not pointers) in the style of modern EDA code:
// cells, ports and nets live in contiguous vectors and refer to each other
// by integer id, which keeps the database relocatable, cache-friendly and
// trivially serializable.
//
// Connectivity model: every net has exactly one driver (a cell output pin
// or a primary input port) and zero or more sinks (cell input pins or
// primary output ports).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tech/cell_library.hpp"

namespace sma::netlist {

using CellId = std::int32_t;
using NetId = std::int32_t;
using PortId = std::int32_t;

inline constexpr std::int32_t kInvalidId = -1;

/// End-point of a net: either pin `lib_pin` of `cell`, or a primary port.
struct PinRef {
  enum class Kind : std::uint8_t { kCellPin, kPort } kind = Kind::kCellPin;
  std::int32_t id = kInvalidId;   ///< CellId or PortId depending on kind
  std::int32_t lib_pin = 0;       ///< pin index within LibCell (cell pins)

  static PinRef cell_pin(CellId cell, int lib_pin) {
    return {Kind::kCellPin, cell, lib_pin};
  }
  static PinRef port(PortId port) { return {Kind::kPort, port, 0}; }

  bool is_port() const { return kind == Kind::kPort; }
  friend bool operator==(const PinRef&, const PinRef&) = default;
};

/// A placed instance of a library cell (placement data lives in
/// `sma::place`; here only connectivity).
struct Cell {
  std::string name;
  int lib_cell = 0;                  ///< index into the CellLibrary
  std::vector<NetId> pin_nets;       ///< per LibCell pin index; kInvalidId if open
};

enum class PortDirection : std::uint8_t { kInput, kOutput };

/// A primary input or output of the design.
struct Port {
  std::string name;
  PortDirection direction = PortDirection::kInput;
  NetId net = kInvalidId;
};

/// A signal net with single-driver/multi-sink connectivity.
struct Net {
  std::string name;
  PinRef driver;                     ///< id == kInvalidId while unconnected
  std::vector<PinRef> sinks;

  Net() { driver.id = kInvalidId; }
  bool has_driver() const { return driver.id != kInvalidId; }
  /// Driver plus sinks.
  std::size_t degree() const { return sinks.size() + (has_driver() ? 1 : 0); }
};

/// The netlist database. Construction is additive: create ports, cells and
/// nets, then wire pins to nets with `connect`. `validate` checks the
/// single-driver invariant and full connectivity.
class Netlist {
 public:
  Netlist(std::string name, const tech::CellLibrary* library);

  const std::string& name() const { return name_; }
  const tech::CellLibrary& library() const { return *library_; }

  // -- construction ---------------------------------------------------
  CellId add_cell(const std::string& name, int lib_cell);
  PortId add_port(const std::string& name, PortDirection direction);
  NetId add_net(const std::string& name);

  /// Attach `pin` to `net` as driver (cell output pins and input ports) or
  /// sink (cell input pins and output ports); direction is inferred.
  /// Throws if the pin is already connected or the net already has a driver.
  void connect(NetId net, PinRef pin);

  // -- access ---------------------------------------------------------
  int num_cells() const { return static_cast<int>(cells_.size()); }
  int num_ports() const { return static_cast<int>(ports_.size()); }
  int num_nets() const { return static_cast<int>(nets_.size()); }

  const Cell& cell(CellId id) const { return cells_.at(id); }
  const Port& port(PortId id) const { return ports_.at(id); }
  const Net& net(NetId id) const { return nets_.at(id); }

  const tech::LibCell& lib_cell_of(CellId id) const {
    return library_->cell(cell(id).lib_cell);
  }

  std::optional<CellId> find_cell(const std::string& name) const;
  std::optional<PortId> find_port(const std::string& name) const;
  std::optional<NetId> find_net(const std::string& name) const;

  /// Is `pin` a net driver (cell output pin or primary input port)?
  bool is_driver_pin(const PinRef& pin) const;

  /// Input pin capacitance of a sink pin. Output ports present a nominal
  /// external pad load.
  double sink_capacitance(const PinRef& pin) const;

  /// Human-readable name "cell/PIN" or "port".
  std::string pin_name(const PinRef& pin) const;

  /// Total number of cell pins plus ports.
  int num_pins() const;

  /// Verify invariants: every net driven, every cell pin connected, every
  /// port connected. Returns a list of problems (empty = valid).
  std::vector<std::string> validate() const;

 private:
  std::string name_;
  const tech::CellLibrary* library_;
  std::vector<Cell> cells_;
  std::vector<Port> ports_;
  std::vector<Net> nets_;
  std::unordered_map<std::string, CellId> cell_index_;
  std::unordered_map<std::string, PortId> port_index_;
  std::unordered_map<std::string, NetId> net_index_;
};

}  // namespace sma::netlist
