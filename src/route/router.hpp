// Negotiated-congestion global router (PathFinder-style A* maze routing).
//
// Routes every net of a placed design over the RoutingGrid: multi-pin nets
// are decomposed incrementally (each next-closest pin is routed to the
// growing route tree with multi-source A*), preferred-direction and via
// costs shape the paths, and a few rip-up-and-reroute rounds with history
// costs resolve overflows. The output geometry feeds the split model and
// the attack features.
//
// Nets are scheduled in deterministic *waves* of `RouterConfig::wave_size`
// nets: every net of a wave runs A* against an immutable snapshot of grid
// usage/history (no commits happen mid-wave), then usage is committed in
// fixed net order before the next wave starts. The schedule is a property
// of the config alone — never of the thread count — so routing a design
// with a thread pool is bit-identical to routing it serially, and
// `wave_size = 1` with `bulk_negotiation_ripup` reproduces the
// strictly-sequential legacy router edge-for-edge.
#pragma once

#include <cstdint>
#include <vector>

#include "place/placement.hpp"
#include "route/net_route.hpp"
#include "route/routing_grid.hpp"
#include "runtime/thread_pool.hpp"

namespace sma::route {

struct RouterConfig {
  double via_cost = 2.0;          ///< base cost of one via step
  double wrongway_mult = 4.0;     ///< planar cost multiplier off-preference
  double m1_cost_mult = 3.0;      ///< extra cost of routing through M1
  double present_weight = 0.8;    ///< soft cost of partially used edges
  double history_weight = 1.0;    ///< PathFinder history contribution
  double overflow_penalty = 8.0;  ///< hard cost per unit of overflow
  int max_iterations = 4;         ///< rip-up-and-reroute rounds
  std::size_t max_expansions = 400000;  ///< per two-pin connection

  /// Nets routed concurrently against one usage snapshot before their
  /// usage is committed (in net order). Part of the routing algorithm, so
  /// it feeds the layout-cache digest; 1 = the legacy sequential schedule
  /// where every net sees every previously routed net. Must be >= 1.
  /// Default 4: measured on the small/mid profiles, waves of 4-8 keep
  /// final overflow at the sequential router's level and BEOL-excursion
  /// counts (the M3 attack's raw material) within a few percent of the
  /// sequential schedule, while 16+ starts leaving residual overflow
  /// (see BENCH_flow.json deltas). Raise it on many-core hosts routing
  /// large designs; quality deltas are reported by `bench_flow`.
  int wave_size = 4;

  /// Negotiation rip-up policy. false (default): each negotiation wave
  /// rips up only its own nets immediately before rerouting them, so
  /// offenders awaiting later waves keep their usage visible — close to
  /// canonical per-net PathFinder, and what keeps the wave schedule's
  /// extra negotiation cost small. true: all offenders are ripped up
  /// before any rerouting starts — the pre-wave router's policy, kept so
  /// `wave_size = 1 && bulk_negotiation_ripup` reproduces the legacy
  /// strictly-sequential router edge-for-edge (the quality baseline
  /// `bench_flow` reports deltas against).
  bool bulk_negotiation_ripup = false;

  /// Per-layer height surcharge: planar cost is multiplied by
  /// 1 + layer_height_cost * (layer - 3) above M3. Together with via cost
  /// this makes upper-metal excursions short: a route climbs over a
  /// congested stretch and comes back down within a few gcells — the
  /// short BEOL hops whose virtual pins an M3 attacker exploits.
  double layer_height_cost = 2.0;

  // Optional span-based layer promotion (off by default; congestion is the
  // realistic driver of upper-layer usage). When enabled, connections
  // spanning more than `promote_dist1` gcells prefer layers >=
  // `promote_layer1` (and `promote_dist2` -> `promote_layer2`); planar
  // wiring below the preferred minimum is soft-penalized except within
  // `promote_access_region` gcells of the connection endpoints.
  int promote_dist1 = 1 << 28;
  int promote_layer1 = 4;
  int promote_dist2 = 1 << 28;
  int promote_layer2 = 5;
  double promotion_penalty = 4.0;
  /// Pin-access region: within this many gcells of either connection
  /// endpoint the promotion penalty is waived, so promoted routes enter
  /// and leave the BEOL near the middle of the connection — as detailed
  /// routers do — rather than via-stacking directly on the pins.
  int promote_access_region = 2;
};

/// Result of routing one design.
struct RoutingResult {
  std::vector<NetRoute> routes;   ///< indexed by NetId
  int final_overflow = 0;         ///< overflowed edges after the last round
  int fallback_routes = 0;        ///< connections routed by the L-shape fallback
  std::int64_t total_wirelength = 0;
  int total_vias = 0;
  /// Wall-clock spent in rip-up-and-reroute rounds (subset of the total
  /// routing time; feeds the per-phase numbers in BENCH_flow.json).
  double negotiation_seconds = 0.0;
};

/// Route all nets of `placement` on `grid`. The grid's usage is left
/// populated so callers can inspect congestion. A non-null `pool` routes
/// each wave's nets concurrently; the result is bit-identical to the
/// serial run at any thread count (see the wave contract above). Throws
/// std::invalid_argument on a non-positive `wave_size`.
RoutingResult route_design(const place::Placement& placement,
                           RoutingGrid& grid, const RouterConfig& config = {},
                           runtime::ThreadPool* pool = nullptr);

}  // namespace sma::route
