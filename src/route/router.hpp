// Negotiated-congestion global router (PathFinder-style A* maze routing).
//
// Routes every net of a placed design over the RoutingGrid: multi-pin nets
// are decomposed incrementally (each next-closest pin is routed to the
// growing route tree with multi-source A*), preferred-direction and via
// costs shape the paths, and a few rip-up-and-reroute rounds with history
// costs resolve overflows. The output geometry feeds the split model and
// the attack features.
#pragma once

#include <cstdint>
#include <vector>

#include "place/placement.hpp"
#include "route/net_route.hpp"
#include "route/routing_grid.hpp"

namespace sma::route {

struct RouterConfig {
  double via_cost = 2.0;          ///< base cost of one via step
  double wrongway_mult = 4.0;     ///< planar cost multiplier off-preference
  double m1_cost_mult = 3.0;      ///< extra cost of routing through M1
  double present_weight = 0.8;    ///< soft cost of partially used edges
  double history_weight = 1.0;    ///< PathFinder history contribution
  double overflow_penalty = 8.0;  ///< hard cost per unit of overflow
  int max_iterations = 4;         ///< rip-up-and-reroute rounds
  std::size_t max_expansions = 400000;  ///< per two-pin connection

  /// Per-layer height surcharge: planar cost is multiplied by
  /// 1 + layer_height_cost * (layer - 3) above M3. Together with via cost
  /// this makes upper-metal excursions short: a route climbs over a
  /// congested stretch and comes back down within a few gcells — the
  /// short BEOL hops whose virtual pins an M3 attacker exploits.
  double layer_height_cost = 2.0;

  // Optional span-based layer promotion (off by default; congestion is the
  // realistic driver of upper-layer usage). When enabled, connections
  // spanning more than `promote_dist1` gcells prefer layers >=
  // `promote_layer1` (and `promote_dist2` -> `promote_layer2`); planar
  // wiring below the preferred minimum is soft-penalized except within
  // `promote_access_region` gcells of the connection endpoints.
  int promote_dist1 = 1 << 28;
  int promote_layer1 = 4;
  int promote_dist2 = 1 << 28;
  int promote_layer2 = 5;
  double promotion_penalty = 4.0;
  /// Pin-access region: within this many gcells of either connection
  /// endpoint the promotion penalty is waived, so promoted routes enter
  /// and leave the BEOL near the middle of the connection — as detailed
  /// routers do — rather than via-stacking directly on the pins.
  int promote_access_region = 2;
};

/// Result of routing one design.
struct RoutingResult {
  std::vector<NetRoute> routes;   ///< indexed by NetId
  int final_overflow = 0;         ///< overflowed edges after the last round
  int fallback_routes = 0;        ///< connections routed by the L-shape fallback
  std::int64_t total_wirelength = 0;
  int total_vias = 0;
};

/// Route all nets of `placement` on `grid`. The grid's usage is left
/// populated so callers can inspect congestion.
RoutingResult route_design(const place::Placement& placement,
                           RoutingGrid& grid, const RouterConfig& config = {});

}  // namespace sma::route
