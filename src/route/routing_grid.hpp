// Global-routing grid graph.
//
// The die is tiled into square gcells; each metal layer contributes one
// 2-D lattice of nodes, stacked by vias. Edge capacities reflect the
// track count per gcell: full capacity along a layer's preferred routing
// direction, a small allowance for wrong-way jogs (the paper's direction
// criterion explicitly accounts for those), and generous via capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "place/placement.hpp"
#include "tech/layer_stack.hpp"
#include "util/geometry.hpp"

namespace sma::route {

/// Location of a routing-grid node: 1-based metal layer + gcell indices.
struct GridCoord {
  int layer = 1;
  int x = 0;
  int y = 0;
  friend bool operator==(const GridCoord&, const GridCoord&) = default;
};

/// Direction of a grid edge out of a node.
enum class Dir : std::uint8_t { kEast, kWest, kNorth, kSouth, kUp, kDown };
inline constexpr int kNumDirs = 6;

/// Returns the reverse direction.
Dir reverse(Dir d);

class RoutingGrid {
 public:
  /// Validated at grid construction: gcell_size, via/m1/m2 capacities and
  /// track_utilization must be positive; wrongway_capacity may be 0 (no
  /// wrong-way tracks) but not negative. Violations throw
  /// std::invalid_argument instead of surfacing later as NaN edge costs.
  struct Config {
    std::int64_t gcell_size = 700;   ///< DBU; ~5 thin-metal tracks
    int wrongway_capacity = 1;       ///< tracks available against preference
    int via_capacity = 12;
    /// M1 is mostly blocked by cell-internal shapes in real designs, so its
    /// through-routing capacity is clamped to pin-access level. This is what
    /// makes an M1 split shatter nearly every net, as in the paper.
    int m1_capacity = 1;
    /// Cap on M2 through-capacity (vertical FEOL supply). Keeping M2
    /// generous lets long vertical runs stay in the FEOL; only locally
    /// congested stretches then hop above M3 with short excursions — the
    /// close-by virtual-pin pairs that dominate real M3-split layouts.
    int m2_capacity = 3;
    /// Fraction of signal tracks actually available: power/ground straps,
    /// clock trees and cell blockages consume the rest. This sets the
    /// congestion level that pushes a minority of nets into BEOL
    /// excursions — the fragments an M3 split attacks.
    double track_utilization = 0.65;
  };

  RoutingGrid(const tech::LayerStack* stack, const util::Rect& die,
              const Config& config);
  RoutingGrid(const tech::LayerStack* stack, const util::Rect& die);

  int num_layers() const { return stack_->num_layers(); }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::int64_t gcell_size() const { return config_.gcell_size; }
  const tech::LayerStack& stack() const { return *stack_; }

  /// Total node count (layers * nx * ny).
  std::size_t num_nodes() const {
    return static_cast<std::size_t>(num_layers()) * nx_ * ny_;
  }

  std::size_t node_index(const GridCoord& c) const {
    return (static_cast<std::size_t>(c.layer - 1) * ny_ + c.y) * nx_ + c.x;
  }
  GridCoord coord_of(std::size_t index) const;

  /// Gcell containing a DBU point (clamped to the grid).
  GridCoord gcell_at(const util::Point& p, int layer = 1) const;

  /// DBU center of a gcell.
  util::Point gcell_center(const GridCoord& c) const;

  /// Does the neighbour of `c` in direction `d` exist?
  bool has_neighbor(const GridCoord& c, Dir d) const;
  GridCoord neighbor(const GridCoord& c, Dir d) const;

  /// Capacity of the edge leaving `c` in direction `d` (0 = no edge).
  int capacity(const GridCoord& c, Dir d) const;

  /// Current usage of that edge.
  int usage(const GridCoord& c, Dir d) const;
  void add_usage(const GridCoord& c, Dir d, int delta);

  /// Congestion history (PathFinder-style), bumped on overflowed edges.
  float history(const GridCoord& c, Dir d) const;
  void bump_history_on_overflow(float increment);

  /// Number of edges with usage > capacity.
  int overflow_count() const;

  /// Reset all usage (history preserved).
  void clear_usage();

  /// True if `d` runs along the preferred axis of `c.layer`.
  bool is_preferred(int layer, Dir d) const;

 private:
  struct EdgeArrays {
    std::vector<std::uint16_t> usage;
    std::vector<float> history;
  };

  // Edge storage: for each layer, x-edges (node -> east neighbour) and
  // y-edges (node -> north neighbour); plus via edges (node -> up).
  std::size_t x_edge_index(int layer, int x, int y) const;
  std::size_t y_edge_index(int layer, int x, int y) const;
  std::size_t via_edge_index(int layer, int x, int y) const;

  /// Maps (c, d) onto canonical edge storage; returns array + index.
  std::pair<EdgeArrays*, std::size_t> edge_slot(const GridCoord& c, Dir d);
  std::pair<const EdgeArrays*, std::size_t> edge_slot(const GridCoord& c,
                                                      Dir d) const;

  const tech::LayerStack* stack_;
  util::Rect die_;
  Config config_;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<int> pref_capacity_;   ///< per layer: tracks per gcell
  EdgeArrays x_edges_;
  EdgeArrays y_edges_;
  EdgeArrays via_edges_;
};

}  // namespace sma::route
