#include "route/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>

#include "obs/obs.hpp"
#include "runtime/parallel.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace sma::route {

namespace {

using netlist::NetId;
using netlist::PinRef;

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Scratch arrays for repeated A* searches, epoch-stamped so they never
/// need clearing between searches.
struct SearchScratch {
  std::vector<float> g;
  std::vector<std::uint8_t> arrival;    ///< Dir + 1; 0 = tree seed
  std::vector<std::uint32_t> epoch;     ///< search stamp
  std::vector<std::uint32_t> tree_mark; ///< per-net tree membership stamp
  std::uint32_t current_epoch = 0;
  std::uint32_t current_net_mark = 0;

  explicit SearchScratch(std::size_t nodes)
      : g(nodes, kInf),
        arrival(nodes, 0),
        epoch(nodes, 0),
        tree_mark(nodes, 0) {}
};

struct QueueEntry {
  float f;
  std::size_t node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    if (a.f != b.f) return a.f > b.f;
    return a.node > b.node;  // deterministic tie-break
  }
};

/// Routes one net at a time against a *read-only* grid view. A NetRouter
/// never mutates grid usage — commits and rip-ups are the wave scheduler's
/// job — so several NetRouters (one per concurrent task, each with its own
/// scratch) may route different nets of a wave against the same snapshot.
class NetRouter {
 public:
  NetRouter(const RoutingGrid& grid, const RouterConfig& config)
      : grid_(grid), config_(config), scratch_(grid.num_nodes()) {}

  /// Cost of traversing the edge leaving `c` in direction `d`.
  float edge_cost(const GridCoord& c, Dir d) const {
    const bool via = d == Dir::kUp || d == Dir::kDown;
    double base;
    if (via) {
      base = config_.via_cost;
    } else {
      base = grid_.is_preferred(c.layer, d) ? 1.0 : config_.wrongway_mult;
      if (c.layer == 1) base *= config_.m1_cost_mult;
      if (c.layer > 3) {
        base *= 1.0 + config_.layer_height_cost * (c.layer - 3);
      }
      // Layer-assignment pressure: the middle of long connections should
      // climb; the pin-access regions at both ends stay in the FEOL.
      if (c.layer < current_min_layer_) {
        const int to_root =
            std::abs(c.x - current_root_.x) + std::abs(c.y - current_root_.y);
        const int to_target = std::abs(c.x - current_target_.x) +
                              std::abs(c.y - current_target_.y);
        if (std::min(to_root, to_target) > config_.promote_access_region) {
          base *= config_.promotion_penalty;
        }
      }
    }
    const int usage = grid_.usage(c, d);
    const int cap = grid_.capacity(c, d);
    double cost = base;
    cost += config_.history_weight * grid_.history(c, d);
    if (cap > 0) {
      cost += config_.present_weight * (static_cast<double>(usage) / cap);
      if (usage >= cap) {
        cost += config_.overflow_penalty * (usage - cap + 1);
      }
    } else {
      // Zero-capacity edge (e.g. wrongway_capacity = 0): any use of it is
      // pure overflow. The old `usage / cap` produced NaN/inf here and
      // poisoned the priority-queue ordering; keep the cost finite so A*
      // stays ordered and simply avoids these edges whenever it can.
      cost += config_.overflow_penalty * (usage + 1);
    }
    return static_cast<float>(cost);
  }

  /// Admissible heuristic toward a layer-1 target.
  float heuristic(const GridCoord& c, const GridCoord& target) const {
    double planar = std::abs(c.x - target.x) + std::abs(c.y - target.y);
    double vias = config_.via_cost * std::abs(c.layer - target.layer);
    return static_cast<float>(planar + vias);
  }

  /// Route one net against the current grid snapshot. Does NOT commit
  /// usage — the caller commits `route.grid_edges` in fixed net order.
  void route_net(NetRoute& route, int& fallbacks) {
    route.grid_edges.clear();
    if (route.pin_nodes.size() < 2) return;

    ++scratch_.current_net_mark;
    const std::uint32_t mark = scratch_.current_net_mark;
    std::vector<std::size_t> tree_nodes;

    auto add_tree_node = [&](const GridCoord& c) {
      std::size_t index = grid_.node_index(c);
      if (scratch_.tree_mark[index] != mark) {
        scratch_.tree_mark[index] = mark;
        tree_nodes.push_back(index);
      }
    };
    add_tree_node(route.pin_nodes.front());

    // Targets in increasing distance from the driver pin.
    std::vector<GridCoord> targets(route.pin_nodes.begin() + 1,
                                   route.pin_nodes.end());
    const GridCoord root = route.pin_nodes.front();
    std::stable_sort(targets.begin(), targets.end(),
                     [&](const GridCoord& a, const GridCoord& b) {
                       int da = std::abs(a.x - root.x) + std::abs(a.y - root.y);
                       int db = std::abs(b.x - root.x) + std::abs(b.y - root.y);
                       return da < db;
                     });

    for (const GridCoord& target : targets) {
      std::size_t target_index = grid_.node_index(target);
      if (scratch_.tree_mark[target_index] == mark) continue;  // already on tree

      // Preferred minimum layer for this connection's span.
      const int span = std::abs(target.x - root.x) + std::abs(target.y - root.y);
      current_min_layer_ = 1;
      if (span > config_.promote_dist2) {
        current_min_layer_ = config_.promote_layer2;
      } else if (span > config_.promote_dist1) {
        current_min_layer_ = config_.promote_layer1;
      }
      current_root_ = root;
      current_target_ = target;

      if (!astar_to_tree(target, mark, tree_nodes, route)) {
        fallback_route(target, mark, tree_nodes, route);
        ++fallbacks;
      }
    }
  }

 private:
  /// Multi-source A* from the current tree to `target`. On success, appends
  /// the path's edges and adds its nodes to the tree.
  bool astar_to_tree(const GridCoord& target, std::uint32_t mark,
                     std::vector<std::size_t>& tree_nodes, NetRoute& route) {
    ++scratch_.current_epoch;
    const std::uint32_t epoch = scratch_.current_epoch;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        open;

    auto visit = [&](std::size_t index, float g, std::uint8_t arrival) {
      if (scratch_.epoch[index] == epoch && scratch_.g[index] <= g) return;
      scratch_.epoch[index] = epoch;
      scratch_.g[index] = g;
      scratch_.arrival[index] = arrival;
      GridCoord c = grid_.coord_of(index);
      open.push({g + heuristic(c, target), index});
    };

    for (std::size_t index : tree_nodes) {
      visit(index, 0.0f, 0);
    }

    const std::size_t target_index = grid_.node_index(target);
    std::size_t expansions = 0;

    while (!open.empty()) {
      auto [f, index] = open.top();
      open.pop();
      GridCoord c = grid_.coord_of(index);
      float g = scratch_.g[index];
      if (f > g + heuristic(c, target)) continue;  // stale entry

      if (index == target_index) {
        backtrack(index, mark, tree_nodes, route);
        return true;
      }
      if (++expansions > config_.max_expansions) return false;

      for (int d = 0; d < kNumDirs; ++d) {
        Dir dir = static_cast<Dir>(d);
        if (!grid_.has_neighbor(c, dir)) continue;
        float ng = g + edge_cost(c, dir);
        std::size_t ni = grid_.node_index(grid_.neighbor(c, dir));
        visit(ni, ng, static_cast<std::uint8_t>(d + 1));
      }
    }
    return false;
  }

  /// Walk parents from `index` back to a tree seed, recording edges and
  /// enlarging the tree.
  void backtrack(std::size_t index, std::uint32_t mark,
                 std::vector<std::size_t>& tree_nodes, NetRoute& route) {
    while (scratch_.arrival[index] != 0) {
      Dir arrival_dir = static_cast<Dir>(scratch_.arrival[index] - 1);
      GridCoord here = grid_.coord_of(index);
      GridCoord prev = grid_.neighbor(here, reverse(arrival_dir));
      route.grid_edges.push_back({prev, arrival_dir});
      if (scratch_.tree_mark[index] != mark) {
        scratch_.tree_mark[index] = mark;
        tree_nodes.push_back(index);
      }
      index = grid_.node_index(prev);
    }
    if (scratch_.tree_mark[index] != mark) {
      scratch_.tree_mark[index] = mark;
      tree_nodes.push_back(index);
    }
  }

  /// Guaranteed connection, ignoring congestion: climbs toward M3/M2, runs
  /// the two planar legs, and descends at the target. Used only when A*
  /// exceeds its expansion budget. Every leg stops as soon as a step is
  /// blocked (grid edge missing) instead of spinning on it — a grid with
  /// fewer than 3 metal layers, or a target on the die edge, used to make
  /// the old unconditional `while` legs loop forever.
  void fallback_route(const GridCoord& target, std::uint32_t mark,
                      std::vector<std::size_t>& tree_nodes, NetRoute& route) {
    GridCoord from = grid_.coord_of(tree_nodes.front());
    auto step = [&](GridCoord& c, Dir d) -> bool {
      if (!grid_.has_neighbor(c, d)) return false;
      route.grid_edges.push_back({c, d});
      c = grid_.neighbor(c, d);
      std::size_t index = grid_.node_index(c);
      if (scratch_.tree_mark[index] != mark) {
        scratch_.tree_mark[index] = mark;
        tree_nodes.push_back(index);
      }
      return true;
    };

    // Horizontal leg on M3 (preferred horizontal), vertical leg on M2;
    // on a shorter stack the legs run on the highest layer reachable.
    while (from.layer < 3 && step(from, Dir::kUp)) {}
    while (from.x < target.x && step(from, Dir::kEast)) {}
    while (from.x > target.x && step(from, Dir::kWest)) {}
    while (from.layer > 2 && step(from, Dir::kDown)) {}
    while (from.y < target.y && step(from, Dir::kNorth)) {}
    while (from.y > target.y && step(from, Dir::kSouth)) {}
    while (from.layer > target.layer && step(from, Dir::kDown)) {}
    while (from.layer < target.layer && step(from, Dir::kUp)) {}
  }

  const RoutingGrid& grid_;
  const RouterConfig& config_;
  SearchScratch scratch_;
  int current_min_layer_ = 1;
  GridCoord current_root_;
  GridCoord current_target_;
};

/// Lends NetRouters (each carrying O(num_nodes) scratch) to concurrent
/// wave tasks. Which task gets which router never affects results: the
/// scratch is epoch-stamped, so a route is a pure function of the net and
/// the grid snapshot. At most one router per simultaneously running task
/// is ever allocated; the serial path reuses a single router throughout.
class RouterLoaner {
 public:
  RouterLoaner(const RoutingGrid& grid, const RouterConfig& config)
      : grid_(grid), config_(config) {}

  std::unique_ptr<NetRouter> acquire() SMA_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<NetRouter> router = std::move(idle_.back());
        idle_.pop_back();
        return router;
      }
    }
    return std::make_unique<NetRouter>(grid_, config_);
  }

  void release(std::unique_ptr<NetRouter> router) SMA_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    idle_.push_back(std::move(router));
  }

 private:
  const RoutingGrid& grid_;
  const RouterConfig& config_;
  util::Mutex mutex_;
  std::vector<std::unique_ptr<NetRouter>> idle_ SMA_GUARDED_BY(mutex_);
};

/// Unique pin grid nodes of a net, driver first.
std::vector<GridCoord> pin_nodes_of(const place::Placement& placement,
                                    const RoutingGrid& grid, NetId net_id) {
  const netlist::Netlist& nl = placement.netlist();
  const netlist::Net& net = nl.net(net_id);
  std::vector<GridCoord> nodes;
  auto add = [&](const PinRef& pin) {
    GridCoord c = grid.gcell_at(placement.pin_location(pin));
    for (const GridCoord& existing : nodes) {
      if (existing == c) return;
    }
    nodes.push_back(c);
  };
  if (net.has_driver()) add(net.driver);
  for (const PinRef& sink : net.sinks) add(sink);
  return nodes;
}

/// Add (`delta` = 1) or remove (-1) a route's usage on the grid.
void apply_route_usage(RoutingGrid& grid, const NetRoute& route, int delta) {
  for (const GridEdge& e : route.grid_edges) {
    grid.add_usage(e.from, e.dir, delta);
  }
}

/// Route `nets` in waves of `wave`: each wave's nets run against the grid
/// as it stands at the wave's start (nobody writes usage mid-wave), then
/// their usage is committed in net order. Slot-addressed routes and
/// fallback counters keep the parallel run bit-identical to the serial
/// one.
void route_waves(const std::vector<NetId>& nets, RoutingResult& result,
                 RoutingGrid& grid, RouterLoaner& loaner,
                 runtime::ThreadPool* pool, std::size_t wave,
                 bool rip_up_first) {
  std::vector<int> fallbacks(nets.size(), 0);
  for (std::size_t begin = 0; begin < nets.size(); begin += wave) {
    const std::size_t end = std::min(nets.size(), begin + wave);
    SMA_TRACE_SPAN_V("route", "wave", end - begin);
    SMA_COUNT("route.waves");
    SMA_HISTOGRAM("route.wave_nets", end - begin);
    if (rip_up_first) {
      // Negotiation: rip up only THIS wave's routes, immediately before
      // rerouting them. Offenders scheduled for later waves keep their
      // usage on the grid, so the wave reroutes under realistic pressure
      // instead of the near-empty grid a bulk rip-up would leave — the
      // close-to-sequential visibility PathFinder's convergence needs.
      for (std::size_t i = begin; i < end; ++i) {
        apply_route_usage(grid, result.routes[nets[i]], -1);
      }
      SMA_COUNT_N("route.ripped_up", end - begin);
    }
    runtime::parallel_for(pool, begin, end, /*grain=*/1, [&](std::size_t i) {
      std::unique_ptr<NetRouter> router = loaner.acquire();
      router->route_net(result.routes[nets[i]], fallbacks[i]);
      loaner.release(std::move(router));
    });
    for (std::size_t i = begin; i < end; ++i) {
      apply_route_usage(grid, result.routes[nets[i]], 1);
    }
  }
  for (int f : fallbacks) result.fallback_routes += f;
}

}  // namespace

RoutingResult route_design(const place::Placement& placement,
                           RoutingGrid& grid, const RouterConfig& config,
                           runtime::ThreadPool* pool) {
  if (config.wave_size < 1) {
    throw std::invalid_argument("RouterConfig::wave_size must be >= 1");
  }
  const netlist::Netlist& nl = placement.netlist();
  RoutingResult result;
  result.routes.resize(nl.num_nets());

  RouterLoaner loaner(grid, config);

  // Route order: small-HPWL nets first; they have the least flexibility.
  const std::size_t num_nets = static_cast<std::size_t>(nl.num_nets());
  std::vector<NetId> order(num_nets);
  std::vector<std::int64_t> hpwl(num_nets, 0);
  runtime::parallel_for(pool, 0, num_nets,
                        runtime::default_grain(num_nets, pool),
                        [&](std::size_t i) {
                          const NetId n = static_cast<NetId>(i);
                          order[i] = n;
                          result.routes[i].net = n;
                          result.routes[i].pin_nodes =
                              pin_nodes_of(placement, grid, n);
                          hpwl[i] = placement.net_hpwl(n);
                        });
  std::stable_sort(order.begin(), order.end(),
                   [&](NetId a, NetId b) { return hpwl[a] < hpwl[b]; });

  {
    SMA_TRACE_SPAN_V("route", "first_pass", num_nets);
    route_waves(order, result, grid, loaner, pool,
                static_cast<std::size_t>(config.wave_size),
                /*rip_up_first=*/false);
  }

  // Negotiation rounds: reroute nets that touch overflowed edges, wave
  // by wave with per-wave rip-up. Every schedule decision below depends
  // only on the config and the round index — never the thread count — so
  // determinism is preserved.
  util::Timer negotiation_timer;
  for (int iter = 1; iter < config.max_iterations; ++iter) {
    if (grid.overflow_count() == 0) break;
    SMA_TRACE_SPAN_V("route", "negotiation_round", iter);
    SMA_COUNT("route.negotiation_rounds");
    grid.bump_history_on_overflow(1.0f);

    std::vector<NetId> offenders;
    for (NetId n : order) {
      const NetRoute& route = result.routes[n];
      for (const GridEdge& e : route.grid_edges) {
        if (grid.usage(e.from, e.dir) > grid.capacity(e.from, e.dir)) {
          offenders.push_back(n);
          break;
        }
      }
    }
    util::log_debug() << "route iter " << iter << ": "
                      << grid.overflow_count() << " overflowed edges, "
                      << offenders.size() << " nets to reroute";
    SMA_COUNT_N("route.offender_nets", offenders.size());
    if (config.bulk_negotiation_ripup) {
      for (NetId n : offenders) {
        apply_route_usage(grid, result.routes[n], -1);
      }
    }
    // The negotiation wave width starts at half the first-pass width and
    // halves again every round (never below 1), so late rounds approach
    // the sequential schedule whose full usage visibility PathFinder's
    // convergence relies on — full-width negotiation waves measurably
    // leave residual overflow (see BENCH_flow.json).
    const std::size_t negotiation_wave = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.wave_size) >>
               std::min(iter, 30));  // clamped: shifting by >= width is UB
    route_waves(offenders, result, grid, loaner, pool, negotiation_wave,
                /*rip_up_first=*/!config.bulk_negotiation_ripup);
  }
  result.negotiation_seconds = negotiation_timer.seconds();

  result.final_overflow = grid.overflow_count();
  SMA_COUNT_N("route.fallback_routes", result.fallback_routes);
  SMA_COUNT_N("route.final_overflow", result.final_overflow);
  for (NetRoute& route : result.routes) {
    build_geometry(grid, route);
    result.total_wirelength += route.total_wirelength();
    result.total_vias += static_cast<int>(route.vias.size());
  }
  return result;
}

}  // namespace sma::route
