#include "route/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/logging.hpp"

namespace sma::route {

namespace {

using netlist::NetId;
using netlist::PinRef;

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Scratch arrays for repeated A* searches, epoch-stamped so they never
/// need clearing between searches.
struct SearchScratch {
  std::vector<float> g;
  std::vector<std::uint8_t> arrival;    ///< Dir + 1; 0 = tree seed
  std::vector<std::uint32_t> epoch;     ///< search stamp
  std::vector<std::uint32_t> tree_mark; ///< per-net tree membership stamp
  std::uint32_t current_epoch = 0;
  std::uint32_t current_net_mark = 0;

  explicit SearchScratch(std::size_t nodes)
      : g(nodes, kInf),
        arrival(nodes, 0),
        epoch(nodes, 0),
        tree_mark(nodes, 0) {}
};

struct QueueEntry {
  float f;
  std::size_t node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    if (a.f != b.f) return a.f > b.f;
    return a.node > b.node;  // deterministic tie-break
  }
};

class NetRouter {
 public:
  NetRouter(RoutingGrid& grid, const RouterConfig& config)
      : grid_(grid), config_(config), scratch_(grid.num_nodes()) {}

  /// Cost of traversing the edge leaving `c` in direction `d`.
  float edge_cost(const GridCoord& c, Dir d) const {
    const bool via = d == Dir::kUp || d == Dir::kDown;
    double base;
    if (via) {
      base = config_.via_cost;
    } else {
      base = grid_.is_preferred(c.layer, d) ? 1.0 : config_.wrongway_mult;
      if (c.layer == 1) base *= config_.m1_cost_mult;
      if (c.layer > 3) {
        base *= 1.0 + config_.layer_height_cost * (c.layer - 3);
      }
      // Layer-assignment pressure: the middle of long connections should
      // climb; the pin-access regions at both ends stay in the FEOL.
      if (c.layer < current_min_layer_) {
        const int to_root =
            std::abs(c.x - current_root_.x) + std::abs(c.y - current_root_.y);
        const int to_target = std::abs(c.x - current_target_.x) +
                              std::abs(c.y - current_target_.y);
        if (std::min(to_root, to_target) > config_.promote_access_region) {
          base *= config_.promotion_penalty;
        }
      }
    }
    const int usage = grid_.usage(c, d);
    const int cap = grid_.capacity(c, d);
    double cost = base;
    cost += config_.history_weight * grid_.history(c, d);
    cost += config_.present_weight * (static_cast<double>(usage) / cap);
    if (usage >= cap) {
      cost += config_.overflow_penalty * (usage - cap + 1);
    }
    return static_cast<float>(cost);
  }

  /// Admissible heuristic toward a layer-1 target.
  float heuristic(const GridCoord& c, const GridCoord& target) const {
    double planar = std::abs(c.x - target.x) + std::abs(c.y - target.y);
    double vias = config_.via_cost * std::abs(c.layer - target.layer);
    return static_cast<float>(planar + vias);
  }

  /// Route one net; returns false only if even the fallback failed.
  bool route_net(NetRoute& route, int& fallbacks) {
    route.grid_edges.clear();
    if (route.pin_nodes.size() < 2) return true;

    ++scratch_.current_net_mark;
    const std::uint32_t mark = scratch_.current_net_mark;
    std::vector<std::size_t> tree_nodes;

    auto add_tree_node = [&](const GridCoord& c) {
      std::size_t index = grid_.node_index(c);
      if (scratch_.tree_mark[index] != mark) {
        scratch_.tree_mark[index] = mark;
        tree_nodes.push_back(index);
      }
    };
    add_tree_node(route.pin_nodes.front());

    // Targets in increasing distance from the driver pin.
    std::vector<GridCoord> targets(route.pin_nodes.begin() + 1,
                                   route.pin_nodes.end());
    const GridCoord root = route.pin_nodes.front();
    std::stable_sort(targets.begin(), targets.end(),
                     [&](const GridCoord& a, const GridCoord& b) {
                       int da = std::abs(a.x - root.x) + std::abs(a.y - root.y);
                       int db = std::abs(b.x - root.x) + std::abs(b.y - root.y);
                       return da < db;
                     });

    for (const GridCoord& target : targets) {
      std::size_t target_index = grid_.node_index(target);
      if (scratch_.tree_mark[target_index] == mark) continue;  // already on tree

      // Preferred minimum layer for this connection's span.
      const int span = std::abs(target.x - root.x) + std::abs(target.y - root.y);
      current_min_layer_ = 1;
      if (span > config_.promote_dist2) {
        current_min_layer_ = config_.promote_layer2;
      } else if (span > config_.promote_dist1) {
        current_min_layer_ = config_.promote_layer1;
      }
      current_root_ = root;
      current_target_ = target;

      if (!astar_to_tree(target, mark, tree_nodes, route)) {
        fallback_route(target, mark, tree_nodes, route);
        ++fallbacks;
      }
    }

    // Commit usage.
    for (const GridEdge& e : route.grid_edges) {
      grid_.add_usage(e.from, e.dir, 1);
    }
    return true;
  }

  /// Remove a net's usage from the grid.
  void rip_up(const NetRoute& route) {
    for (const GridEdge& e : route.grid_edges) {
      grid_.add_usage(e.from, e.dir, -1);
    }
  }

 private:
  /// Multi-source A* from the current tree to `target`. On success, appends
  /// the path's edges and adds its nodes to the tree.
  bool astar_to_tree(const GridCoord& target, std::uint32_t mark,
                     std::vector<std::size_t>& tree_nodes, NetRoute& route) {
    ++scratch_.current_epoch;
    const std::uint32_t epoch = scratch_.current_epoch;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        open;

    auto visit = [&](std::size_t index, float g, std::uint8_t arrival) {
      if (scratch_.epoch[index] == epoch && scratch_.g[index] <= g) return;
      scratch_.epoch[index] = epoch;
      scratch_.g[index] = g;
      scratch_.arrival[index] = arrival;
      GridCoord c = grid_.coord_of(index);
      open.push({g + heuristic(c, target), index});
    };

    for (std::size_t index : tree_nodes) {
      visit(index, 0.0f, 0);
    }

    const std::size_t target_index = grid_.node_index(target);
    std::size_t expansions = 0;

    while (!open.empty()) {
      auto [f, index] = open.top();
      open.pop();
      GridCoord c = grid_.coord_of(index);
      float g = scratch_.g[index];
      if (f > g + heuristic(c, target)) continue;  // stale entry

      if (index == target_index) {
        backtrack(index, mark, tree_nodes, route);
        return true;
      }
      if (++expansions > config_.max_expansions) return false;

      for (int d = 0; d < kNumDirs; ++d) {
        Dir dir = static_cast<Dir>(d);
        if (!grid_.has_neighbor(c, dir)) continue;
        float ng = g + edge_cost(c, dir);
        std::size_t ni = grid_.node_index(grid_.neighbor(c, dir));
        visit(ni, ng, static_cast<std::uint8_t>(d + 1));
      }
    }
    return false;
  }

  /// Walk parents from `index` back to a tree seed, recording edges and
  /// enlarging the tree.
  void backtrack(std::size_t index, std::uint32_t mark,
                 std::vector<std::size_t>& tree_nodes, NetRoute& route) {
    while (scratch_.arrival[index] != 0) {
      Dir arrival_dir = static_cast<Dir>(scratch_.arrival[index] - 1);
      GridCoord here = grid_.coord_of(index);
      GridCoord prev = grid_.neighbor(here, reverse(arrival_dir));
      route.grid_edges.push_back({prev, arrival_dir});
      if (scratch_.tree_mark[index] != mark) {
        scratch_.tree_mark[index] = mark;
        tree_nodes.push_back(index);
      }
      index = grid_.node_index(prev);
    }
    if (scratch_.tree_mark[index] != mark) {
      scratch_.tree_mark[index] = mark;
      tree_nodes.push_back(index);
    }
  }

  /// Guaranteed L-shaped connection, ignoring congestion: climbs to M3/M2,
  /// runs the two legs, and descends at the target. Used only when A*
  /// exceeds its expansion budget.
  void fallback_route(const GridCoord& target, std::uint32_t mark,
                      std::vector<std::size_t>& tree_nodes, NetRoute& route) {
    GridCoord from = grid_.coord_of(tree_nodes.front());
    auto step = [&](GridCoord& c, Dir d) {
      if (!grid_.has_neighbor(c, d)) return;
      route.grid_edges.push_back({c, d});
      c = grid_.neighbor(c, d);
      std::size_t index = grid_.node_index(c);
      if (scratch_.tree_mark[index] != mark) {
        scratch_.tree_mark[index] = mark;
        tree_nodes.push_back(index);
      }
    };

    // Horizontal leg on M3 (preferred horizontal), vertical leg on M2.
    while (from.layer < 3) step(from, Dir::kUp);
    while (from.x < target.x) step(from, Dir::kEast);
    while (from.x > target.x) step(from, Dir::kWest);
    while (from.layer > 2) step(from, Dir::kDown);
    while (from.y < target.y) step(from, Dir::kNorth);
    while (from.y > target.y) step(from, Dir::kSouth);
    while (from.layer > target.layer) step(from, Dir::kDown);
    while (from.layer < target.layer) step(from, Dir::kUp);
  }

  RoutingGrid& grid_;
  const RouterConfig& config_;
  SearchScratch scratch_;
  int current_min_layer_ = 1;
  GridCoord current_root_;
  GridCoord current_target_;
};

/// Unique pin grid nodes of a net, driver first.
std::vector<GridCoord> pin_nodes_of(const place::Placement& placement,
                                    const RoutingGrid& grid, NetId net_id) {
  const netlist::Netlist& nl = placement.netlist();
  const netlist::Net& net = nl.net(net_id);
  std::vector<GridCoord> nodes;
  auto add = [&](const PinRef& pin) {
    GridCoord c = grid.gcell_at(placement.pin_location(pin));
    for (const GridCoord& existing : nodes) {
      if (existing == c) return;
    }
    nodes.push_back(c);
  };
  if (net.has_driver()) add(net.driver);
  for (const PinRef& sink : net.sinks) add(sink);
  return nodes;
}

}  // namespace

RoutingResult route_design(const place::Placement& placement,
                           RoutingGrid& grid, const RouterConfig& config) {
  const netlist::Netlist& nl = placement.netlist();
  RoutingResult result;
  result.routes.resize(nl.num_nets());

  NetRouter router(grid, config);

  // Route order: small-HPWL nets first; they have the least flexibility.
  std::vector<NetId> order;
  order.reserve(nl.num_nets());
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    order.push_back(n);
    result.routes[n].net = n;
    result.routes[n].pin_nodes = pin_nodes_of(placement, grid, n);
  }
  std::stable_sort(order.begin(), order.end(), [&](NetId a, NetId b) {
    return placement.net_hpwl(a) < placement.net_hpwl(b);
  });

  for (NetId n : order) {
    router.route_net(result.routes[n], result.fallback_routes);
  }

  // Negotiation rounds: reroute nets that touch overflowed edges.
  for (int iter = 1; iter < config.max_iterations; ++iter) {
    if (grid.overflow_count() == 0) break;
    grid.bump_history_on_overflow(1.0f);

    std::vector<NetId> offenders;
    for (NetId n : order) {
      const NetRoute& route = result.routes[n];
      for (const GridEdge& e : route.grid_edges) {
        if (grid.usage(e.from, e.dir) > grid.capacity(e.from, e.dir)) {
          offenders.push_back(n);
          break;
        }
      }
    }
    util::log_debug() << "route iter " << iter << ": "
                      << grid.overflow_count() << " overflowed edges, "
                      << offenders.size() << " nets to reroute";
    for (NetId n : offenders) {
      router.rip_up(result.routes[n]);
    }
    for (NetId n : offenders) {
      router.route_net(result.routes[n], result.fallback_routes);
    }
  }

  result.final_overflow = grid.overflow_count();
  for (NetRoute& route : result.routes) {
    build_geometry(grid, route);
    result.total_wirelength += route.total_wirelength();
    result.total_vias += static_cast<int>(route.vias.size());
  }
  return result;
}

}  // namespace sma::route
