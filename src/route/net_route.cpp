#include "route/net_route.hpp"

#include <algorithm>
#include <map>

namespace sma::route {

std::int64_t NetRoute::wirelength_on(int layer) const {
  std::int64_t total = 0;
  for (const RouteSegment& s : segments) {
    if (s.layer == layer) total += s.length();
  }
  return total;
}

std::int64_t NetRoute::total_wirelength() const {
  std::int64_t total = 0;
  for (const RouteSegment& s : segments) total += s.length();
  return total;
}

int NetRoute::vias_on(int cut) const {
  int count = 0;
  for (const RouteVia& v : vias) {
    if (v.cut == cut) ++count;
  }
  return count;
}

int NetRoute::max_layer() const {
  int top = 1;
  for (const RouteSegment& s : segments) top = std::max(top, s.layer);
  for (const RouteVia& v : vias) top = std::max(top, v.cut + 1);
  return top;
}

void build_geometry(const RoutingGrid& grid, NetRoute& route) {
  route.segments.clear();
  route.vias.clear();

  // Collect unit steps per (layer, row/column) and merge contiguous runs.
  // Key: for horizontal runs (layer, y) -> sorted x starts; vertical
  // (layer, x) -> sorted y starts.
  std::map<std::pair<int, int>, std::vector<int>> horizontal;
  std::map<std::pair<int, int>, std::vector<int>> vertical;

  for (const GridEdge& e : route.grid_edges) {
    GridCoord from = e.from;
    GridCoord to = grid.neighbor(from, e.dir);
    switch (e.dir) {
      case Dir::kEast:
        horizontal[{from.layer, from.y}].push_back(from.x);
        break;
      case Dir::kWest:
        horizontal[{from.layer, from.y}].push_back(to.x);
        break;
      case Dir::kNorth:
        vertical[{from.layer, from.x}].push_back(from.y);
        break;
      case Dir::kSouth:
        vertical[{from.layer, from.x}].push_back(to.y);
        break;
      case Dir::kUp:
        route.vias.push_back({from.layer, grid.gcell_center(from)});
        break;
      case Dir::kDown:
        route.vias.push_back({to.layer, grid.gcell_center(to)});
        break;
    }
  }

  auto merge_runs = [&](bool horizontal_axis,
                        std::map<std::pair<int, int>, std::vector<int>>& runs) {
    for (auto& [key, starts] : runs) {
      std::sort(starts.begin(), starts.end());
      starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
      std::size_t i = 0;
      while (i < starts.size()) {
        std::size_t j = i;
        while (j + 1 < starts.size() && starts[j + 1] == starts[j] + 1) ++j;
        GridCoord a{key.first, 0, 0};
        GridCoord b{key.first, 0, 0};
        if (horizontal_axis) {
          a.x = starts[i];
          a.y = key.second;
          b.x = starts[j] + 1;
          b.y = key.second;
        } else {
          a.x = key.second;
          a.y = starts[i];
          b.x = key.second;
          b.y = starts[j] + 1;
        }
        route.segments.push_back(
            {key.first, grid.gcell_center(a), grid.gcell_center(b)});
        i = j + 1;
      }
    }
  };
  merge_runs(true, horizontal);
  merge_runs(false, vertical);

  // Deduplicate vias (a node's up edge appears once, but defensive).
  std::sort(route.vias.begin(), route.vias.end(),
            [](const RouteVia& a, const RouteVia& b) {
              if (a.cut != b.cut) return a.cut < b.cut;
              if (a.at.x != b.at.x) return a.at.x < b.at.x;
              return a.at.y < b.at.y;
            });
  route.vias.erase(std::unique(route.vias.begin(), route.vias.end()),
                   route.vias.end());
}

}  // namespace sma::route
