// Routed-net geometry.
//
// A net's route is kept in two forms: the raw grid-edge list the router
// produced (for usage accounting and splitting) and merged DBU center-line
// segments/vias (for feature extraction and export).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "route/routing_grid.hpp"
#include "util/geometry.hpp"

namespace sma::route {

/// Axis-aligned wire piece on one metal layer; `a <= b` componentwise.
struct RouteSegment {
  int layer = 1;
  util::Point a;
  util::Point b;

  friend bool operator==(const RouteSegment&, const RouteSegment&) = default;

  std::int64_t length() const { return util::manhattan(a, b); }
  bool is_horizontal() const { return a.y == b.y; }
};

/// Via on cut layer `cut` (connecting metal `cut` and `cut + 1`).
struct RouteVia {
  int cut = 1;
  util::Point at;
  friend bool operator==(const RouteVia&, const RouteVia&) = default;
};

/// One directed grid step of a route tree.
struct GridEdge {
  GridCoord from;
  Dir dir = Dir::kEast;
};

/// Complete route of one net.
struct NetRoute {
  netlist::NetId net = netlist::kInvalidId;
  /// Grid nodes of the net's pins, in (driver, sinks...) order.
  std::vector<GridCoord> pin_nodes;
  /// Tree edges in the grid (each step appears once).
  std::vector<GridEdge> grid_edges;
  /// Merged DBU geometry derived from `grid_edges`.
  std::vector<RouteSegment> segments;
  std::vector<RouteVia> vias;

  /// Total wirelength on a given metal layer (DBU).
  std::int64_t wirelength_on(int layer) const;
  /// Total wirelength over all layers (DBU).
  std::int64_t total_wirelength() const;
  /// Number of vias on a given cut layer.
  int vias_on(int cut) const;
  /// Highest metal layer used (1 if no segments/vias).
  int max_layer() const;
};

/// Convert grid edges into merged segments + vias (fills `segments`/`vias`
/// of `route` from its `grid_edges`).
void build_geometry(const RoutingGrid& grid, NetRoute& route);

}  // namespace sma::route
