#include "route/routing_grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace sma::route {

Dir reverse(Dir d) {
  switch (d) {
    case Dir::kEast: return Dir::kWest;
    case Dir::kWest: return Dir::kEast;
    case Dir::kNorth: return Dir::kSouth;
    case Dir::kSouth: return Dir::kNorth;
    case Dir::kUp: return Dir::kDown;
    case Dir::kDown: return Dir::kUp;
  }
  return Dir::kEast;
}

RoutingGrid::RoutingGrid(const tech::LayerStack* stack, const util::Rect& die)
    : RoutingGrid(stack, die, Config{}) {}

RoutingGrid::RoutingGrid(const tech::LayerStack* stack, const util::Rect& die,
                         const Config& config)
    : stack_(stack), die_(die), config_(config) {
  if (stack_ == nullptr) throw std::invalid_argument("null layer stack");
  if (die_.empty()) throw std::invalid_argument("empty die");
  // Degenerate capacities used to surface only deep inside the router as
  // NaN/inf edge costs (usage / 0) that silently corrupted the A* queue
  // ordering; reject them at construction with a nameable error instead.
  // wrongway_capacity == 0 stays legal (a "no wrong-way tracks" config);
  // the router's edge cost guards that division.
  if (config_.gcell_size <= 0) {
    throw std::invalid_argument("RoutingGrid: gcell_size must be positive");
  }
  if (config_.via_capacity < 1) {
    throw std::invalid_argument("RoutingGrid: via_capacity must be >= 1");
  }
  if (config_.m1_capacity < 1) {
    throw std::invalid_argument("RoutingGrid: m1_capacity must be >= 1");
  }
  if (config_.m2_capacity < 1) {
    throw std::invalid_argument("RoutingGrid: m2_capacity must be >= 1");
  }
  if (config_.wrongway_capacity < 0) {
    throw std::invalid_argument(
        "RoutingGrid: wrongway_capacity must be >= 0");
  }
  if (!(config_.track_utilization > 0.0)) {
    throw std::invalid_argument(
        "RoutingGrid: track_utilization must be positive");
  }
  nx_ = std::max<int>(
      1, static_cast<int>((die_.width() + config_.gcell_size - 1) /
                          config_.gcell_size));
  ny_ = std::max<int>(
      1, static_cast<int>((die_.height() + config_.gcell_size - 1) /
                          config_.gcell_size));

  const int layers = num_layers();
  pref_capacity_.resize(layers);
  for (int m = 1; m <= layers; ++m) {
    int tracks =
        std::max<int>(1, static_cast<int>(config_.gcell_size / stack_->pitch(m)));
    pref_capacity_[m - 1] = std::max<int>(
        1, static_cast<int>(tracks * config_.track_utilization));
  }
  pref_capacity_[0] = std::min(pref_capacity_[0], config_.m1_capacity);
  if (layers > 1) {
    pref_capacity_[1] = std::min(pref_capacity_[1], config_.m2_capacity);
  }

  const std::size_t per_layer = static_cast<std::size_t>(nx_) * ny_;
  x_edges_.usage.assign(per_layer * layers, 0);
  x_edges_.history.assign(per_layer * layers, 0.0f);
  y_edges_.usage.assign(per_layer * layers, 0);
  y_edges_.history.assign(per_layer * layers, 0.0f);
  via_edges_.usage.assign(per_layer * (layers - 1), 0);
  via_edges_.history.assign(per_layer * (layers - 1), 0.0f);
}

GridCoord RoutingGrid::coord_of(std::size_t index) const {
  GridCoord c;
  c.x = static_cast<int>(index % nx_);
  index /= nx_;
  c.y = static_cast<int>(index % ny_);
  c.layer = static_cast<int>(index / ny_) + 1;
  return c;
}

GridCoord RoutingGrid::gcell_at(const util::Point& p, int layer) const {
  GridCoord c;
  c.layer = layer;
  c.x = std::clamp<int>(
      static_cast<int>((p.x - die_.lo.x) / config_.gcell_size), 0, nx_ - 1);
  c.y = std::clamp<int>(
      static_cast<int>((p.y - die_.lo.y) / config_.gcell_size), 0, ny_ - 1);
  return c;
}

util::Point RoutingGrid::gcell_center(const GridCoord& c) const {
  return {die_.lo.x + c.x * config_.gcell_size + config_.gcell_size / 2,
          die_.lo.y + c.y * config_.gcell_size + config_.gcell_size / 2};
}

bool RoutingGrid::has_neighbor(const GridCoord& c, Dir d) const {
  switch (d) {
    case Dir::kEast: return c.x + 1 < nx_;
    case Dir::kWest: return c.x > 0;
    case Dir::kNorth: return c.y + 1 < ny_;
    case Dir::kSouth: return c.y > 0;
    case Dir::kUp: return c.layer < num_layers();
    case Dir::kDown: return c.layer > 1;
  }
  return false;
}

GridCoord RoutingGrid::neighbor(const GridCoord& c, Dir d) const {
  GridCoord n = c;
  switch (d) {
    case Dir::kEast: ++n.x; break;
    case Dir::kWest: --n.x; break;
    case Dir::kNorth: ++n.y; break;
    case Dir::kSouth: --n.y; break;
    case Dir::kUp: ++n.layer; break;
    case Dir::kDown: --n.layer; break;
  }
  return n;
}

bool RoutingGrid::is_preferred(int layer, Dir d) const {
  util::Axis pref = stack_->preferred(layer);
  bool horizontal = d == Dir::kEast || d == Dir::kWest;
  return horizontal == (pref == util::Axis::kHorizontal);
}

int RoutingGrid::capacity(const GridCoord& c, Dir d) const {
  if (!has_neighbor(c, d)) return 0;
  if (d == Dir::kUp || d == Dir::kDown) return config_.via_capacity;
  return is_preferred(c.layer, d) ? pref_capacity_[c.layer - 1]
                                  : config_.wrongway_capacity;
}

std::size_t RoutingGrid::x_edge_index(int layer, int x, int y) const {
  return (static_cast<std::size_t>(layer - 1) * ny_ + y) * nx_ + x;
}
std::size_t RoutingGrid::y_edge_index(int layer, int x, int y) const {
  return (static_cast<std::size_t>(layer - 1) * ny_ + y) * nx_ + x;
}
std::size_t RoutingGrid::via_edge_index(int layer, int x, int y) const {
  return (static_cast<std::size_t>(layer - 1) * ny_ + y) * nx_ + x;
}

std::pair<RoutingGrid::EdgeArrays*, std::size_t> RoutingGrid::edge_slot(
    const GridCoord& c, Dir d) {
  auto const_result =
      static_cast<const RoutingGrid*>(this)->edge_slot(c, d);
  return {const_cast<EdgeArrays*>(const_result.first), const_result.second};
}

std::pair<const RoutingGrid::EdgeArrays*, std::size_t>
RoutingGrid::edge_slot(const GridCoord& c, Dir d) const {
  switch (d) {
    case Dir::kEast:
      return {&x_edges_, x_edge_index(c.layer, c.x, c.y)};
    case Dir::kWest:
      return {&x_edges_, x_edge_index(c.layer, c.x - 1, c.y)};
    case Dir::kNorth:
      return {&y_edges_, y_edge_index(c.layer, c.x, c.y)};
    case Dir::kSouth:
      return {&y_edges_, y_edge_index(c.layer, c.x, c.y - 1)};
    case Dir::kUp:
      return {&via_edges_, via_edge_index(c.layer, c.x, c.y)};
    case Dir::kDown:
      return {&via_edges_, via_edge_index(c.layer - 1, c.x, c.y)};
  }
  return {&x_edges_, 0};
}

int RoutingGrid::usage(const GridCoord& c, Dir d) const {
  auto [arr, idx] = edge_slot(c, d);
  return arr->usage[idx];
}

void RoutingGrid::add_usage(const GridCoord& c, Dir d, int delta) {
  auto [arr, idx] = edge_slot(c, d);
  int value = static_cast<int>(arr->usage[idx]) + delta;
  arr->usage[idx] = static_cast<std::uint16_t>(std::max(0, value));
}

float RoutingGrid::history(const GridCoord& c, Dir d) const {
  auto [arr, idx] = edge_slot(c, d);
  return arr->history[idx];
}

void RoutingGrid::bump_history_on_overflow(float increment) {
  const int layers = num_layers();
  auto bump = [&](EdgeArrays& edges, auto capacity_of) {
    for (std::size_t i = 0; i < edges.usage.size(); ++i) {
      if (edges.usage[i] > capacity_of(i)) edges.history[i] += increment;
    }
  };
  const std::size_t per_layer = static_cast<std::size_t>(nx_) * ny_;
  bump(x_edges_, [&](std::size_t i) {
    int layer = static_cast<int>(i / per_layer) + 1;
    return is_preferred(layer, Dir::kEast) ? pref_capacity_[layer - 1]
                                           : config_.wrongway_capacity;
  });
  bump(y_edges_, [&](std::size_t i) {
    int layer = static_cast<int>(i / per_layer) + 1;
    return is_preferred(layer, Dir::kNorth) ? pref_capacity_[layer - 1]
                                            : config_.wrongway_capacity;
  });
  bump(via_edges_, [&](std::size_t) { return config_.via_capacity; });
  (void)layers;
}

int RoutingGrid::overflow_count() const {
  int overflow = 0;
  const std::size_t per_layer = static_cast<std::size_t>(nx_) * ny_;
  for (std::size_t i = 0; i < x_edges_.usage.size(); ++i) {
    int layer = static_cast<int>(i / per_layer) + 1;
    int cap = is_preferred(layer, Dir::kEast) ? pref_capacity_[layer - 1]
                                              : config_.wrongway_capacity;
    if (x_edges_.usage[i] > cap) ++overflow;
  }
  for (std::size_t i = 0; i < y_edges_.usage.size(); ++i) {
    int layer = static_cast<int>(i / per_layer) + 1;
    int cap = is_preferred(layer, Dir::kNorth) ? pref_capacity_[layer - 1]
                                               : config_.wrongway_capacity;
    if (y_edges_.usage[i] > cap) ++overflow;
  }
  for (std::size_t i = 0; i < via_edges_.usage.size(); ++i) {
    if (via_edges_.usage[i] > config_.via_capacity) ++overflow;
  }
  return overflow;
}

void RoutingGrid::clear_usage() {
  std::fill(x_edges_.usage.begin(), x_edges_.usage.end(), 0);
  std::fill(y_edges_.usage.begin(), y_edges_.usage.end(), 0);
  std::fill(via_edges_.usage.begin(), via_edges_.usage.end(), 0);
}

}  // namespace sma::route
