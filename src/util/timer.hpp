// Wall-clock timing for attack runtime reporting (Table 3 columns).
#pragma once

#include <chrono>

namespace sma::util {

/// Stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last `reset()`.
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sma::util
