// Content hashing for cache keys.
//
// A small FNV-1a 64-bit accumulator: feed it the fields that define an
// artifact's inputs and use the digest as a content address. Doubles are
// hashed by bit pattern, so two configs hash equal iff every field is
// bit-equal — exactly the granularity at which the deterministic
// generators reproduce identical outputs.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sma::util {

class ContentHash {
 public:
  ContentHash& add_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= 0x100000001b3ull;  // FNV-1a prime
    }
    return *this;
  }

  ContentHash& add(std::uint64_t v) { return add_bytes(&v, sizeof(v)); }
  ContentHash& add(std::int64_t v) { return add_bytes(&v, sizeof(v)); }
  ContentHash& add(int v) { return add(static_cast<std::int64_t>(v)); }
  ContentHash& add(bool v) { return add(static_cast<std::int64_t>(v)); }

  ContentHash& add(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return add(bits);
  }

  ContentHash& add(std::string_view s) {
    add(static_cast<std::uint64_t>(s.size()));  // guard against splicing
    return add_bytes(s.data(), s.size());
  }
  ContentHash& add(const std::string& s) { return add(std::string_view(s)); }
  ContentHash& add(const char* s) { return add(std::string_view(s)); }

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

}  // namespace sma::util
