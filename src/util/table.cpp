#include "util/table.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sma::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "N/A";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace sma::util
