// Clang thread-safety annotation macros (no-ops on other compilers).
//
// The repo's determinism contract — bit-identical models, tables and
// layouts at any thread count — is only as strong as its locking
// discipline: a single unguarded access can break byte-identity without
// failing any test on a machine where the race happens to land the same
// way. These macros make the discipline *statically checkable*: every
// mutex-protected member is declared SMA_GUARDED_BY its mutex, every
// helper that assumes the lock is held says SMA_REQUIRES, and clang's
// `-Wthread-safety` analysis (a dedicated CI leg compiles the full tree
// with it promoted to an error) rejects any access pattern that violates
// the declarations — before the code ever runs.
//
// Convention for new code:
//   - Guard every shared member:        T x_ SMA_GUARDED_BY(mutex_);
//   - Private called-under-lock helper: void f() SMA_REQUIRES(mutex_);
//   - Public locking entry point:       void g() SMA_EXCLUDES(mutex_);
//   - Use util::Mutex / util::MutexLock / util::CondVar (util/mutex.hpp)
//     instead of the std:: types — the std types carry no capability
//     attributes under libstdc++, so the analysis cannot see them.
//   - Write condition-variable waits as explicit `while (!pred) wait;`
//     loops, not predicate lambdas: the analysis treats a lambda as a
//     separate function that does not hold the caller's lock.
//   - SMA_NO_THREAD_SAFETY_ANALYSIS is a last resort; every use needs a
//     comment explaining why the analysis cannot follow the code.
//
// The macro set mirrors the names in clang's documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with an SMA_
// prefix so a grep for the convention finds only this repo's uses.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define SMA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SMA_THREAD_ANNOTATION(x)  // no-op: gcc/msvc have no analysis
#endif

/// Declares a type to be a lockable capability ("mutex").
#define SMA_CAPABILITY(x) SMA_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define SMA_SCOPED_CAPABILITY SMA_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written while holding `x`.
#define SMA_GUARDED_BY(x) SMA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define SMA_PT_GUARDED_BY(x) SMA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the caller to already hold the capability.
#define SMA_REQUIRES(...) \
  SMA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define SMA_ACQUIRE(...) \
  SMA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability the caller held.
#define SMA_RELEASE(...) \
  SMA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define SMA_TRY_ACQUIRE(result, ...) \
  SMA_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant entry points).
#define SMA_EXCLUDES(...) SMA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability that guards the decorated data.
#define SMA_RETURN_CAPABILITY(x) SMA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is correct but inexpressible.
#define SMA_NO_THREAD_SAFETY_ANALYSIS \
  SMA_THREAD_ANNOTATION(no_thread_safety_analysis)
