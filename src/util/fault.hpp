// Deterministic fault injection for the durability layer.
//
// Persistence code is exactly the code that normal test runs never see
// failing: the open that hits a full disk, the write that is torn by a
// power cut, the rename a crash races. Named injection points let tests
// (and CI) force those failures on demand:
//
//   SMA_FAULT=checkpoint.save:fail:2,durable.write:short_write:1
//
// arms the 2nd hit of `checkpoint.save` to throw FaultInjected (a
// simulated crash) and the 1st hit of `durable.write` to tear the write.
// Entries are one-shot: each fires on its configured hit and then
// disarms. Tests arm programmatically via `arm()` instead of the
// environment.
//
// Modes:
//   fail         throw FaultInjected at the point (crash *before* the op)
//   short_write  IO points only: write a truncated prefix, then throw —
//                the torn-file case durable_io's framing must detect
//   corrupt      IO points only: flip one payload byte but complete the
//                write normally — silent corruption, detected at load
//   delay        sleep ~2ms, then continue (widens race windows)
//
// Compile-time kill switch: the CMake option SMA_FAULT (default ON)
// defines SMA_FAULT_ENABLED on every target linking libsma. With
// -DSMA_FAULT=OFF, `point()`/`io_point()` are inline no-ops — production
// builds carry zero fault-injection code on the I/O paths — while
// `arm()` returns false so tests can skip themselves.
#pragma once

#include <stdexcept>
#include <string>

#ifndef SMA_FAULT_ENABLED
#define SMA_FAULT_ENABLED 1
#endif

namespace sma::util::fault {

/// A simulated crash. Deliberately NOT derived from DurableIoError: the
/// durability layer's graceful-degradation paths (e.g. "cache spill
/// failed, continue without spilling") must never swallow an injected
/// crash, or the kill-matrix tests would silently test nothing.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& point)
      : std::runtime_error("injected fault at " + point), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

enum class Action {
  kNone,
  kFail,
  kShortWrite,
  kCorrupt,
  kDelay,
};

/// True when the injection points are compiled in.
inline constexpr bool compiled() { return SMA_FAULT_ENABLED != 0; }

/// Arm `point` to fire `mode` on its `nth` future hit (1-based). One-shot:
/// the entry disarms after firing. Returns false (and arms nothing) when
/// fault injection is compiled out. Thread-safe.
bool arm(const std::string& point, Action mode, long nth = 1);

/// Drop every armed entry and reset hit counters (tests call this in
/// SetUp/TearDown so armed faults never leak across tests).
void disarm_all();

/// Times `point` has been evaluated since the last disarm_all().
long hits(const std::string& point);

/// Faults fired process-wide (never reset; feeds the run report).
long injected_count();

/// Parse SMA_FAULT from the environment and arm its entries. Called
/// automatically on the first point hit; exposed for tests. Returns the
/// number of entries armed. Malformed entries throw std::invalid_argument
/// naming the entry — a misspelled fault spec must not silently test
/// nothing.
int arm_from_env();

#if SMA_FAULT_ENABLED

/// Evaluate an IO injection point: count the hit and return the action
/// the caller must implement (durable_io implements short_write/corrupt
/// on its own buffers). kFail throws FaultInjected here; kDelay sleeps
/// here; both return kNone-like control to simpler callers.
Action io_point(const char* name);

/// Evaluate a plain crash point: kFail/kShortWrite/kCorrupt all throw
/// FaultInjected (a non-IO point cannot tear bytes — treat any armed
/// destructive mode as a crash), kDelay sleeps.
void point(const char* name);

#else  // SMA_FAULT_ENABLED

inline Action io_point(const char*) { return Action::kNone; }
inline void point(const char*) {}

#endif  // SMA_FAULT_ENABLED

}  // namespace sma::util::fault
