// Plain-text table rendering for experiment reports.
//
// The bench binaries print paper-style tables (e.g. Table 3) to stdout;
// this helper keeps column alignment logic in one place.
#pragma once

#include <string>
#include <vector>

namespace sma::util {

/// A right-padded text table with a header row and `---` separator.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with two-space column gaps.
  std::string to_string() const;

  /// Render as comma-separated values (for machine post-processing).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.34"); NaN renders as "N/A",
/// matching the paper's notation for timed-out attacks.
std::string format_double(double value, int precision = 2);

}  // namespace sma::util
