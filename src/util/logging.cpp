#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sma::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

double elapsed_ms() {
  using clock = std::chrono::steady_clock;
  // sma-lint: allow(entropy) log-line timestamps only; never enters outputs
  static const clock::time_point start = clock::now();
  // sma-lint: allow(entropy) log-line timestamps only; never enters outputs
  return std::chrono::duration<double, std::milli>(clock::now() - start)
      .count();
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level_from_env() {
  const char* value = std::getenv("SMA_LOG_LEVEL");
  if (value == nullptr || *value == '\0') return;
  if (std::strcmp(value, "error") == 0 || std::strcmp(value, "0") == 0) {
    set_log_level(LogLevel::kError);
  } else if (std::strcmp(value, "warn") == 0 || std::strcmp(value, "1") == 0) {
    set_log_level(LogLevel::kWarn);
  } else if (std::strcmp(value, "info") == 0 || std::strcmp(value, "2") == 0) {
    set_log_level(LogLevel::kInfo);
  } else if (std::strcmp(value, "debug") == 0 || std::strcmp(value, "3") == 0) {
    set_log_level(LogLevel::kDebug);
  } else {
    log_line(LogLevel::kWarn, std::string("unrecognized SMA_LOG_LEVEL '") +
                                  value + "' (want error|warn|info|debug)");
  }
}

int thread_ordinal() {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%11.3fms t%02d] %s %s\n", elapsed_ms(),
               thread_ordinal(), tag(level), message.c_str());
}

}  // namespace sma::util
