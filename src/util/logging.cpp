#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace sma::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%8.3f] %s %s\n", elapsed_seconds(), tag(level),
               message.c_str());
}

}  // namespace sma::util
