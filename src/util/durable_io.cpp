#include "util/durable_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/fault.hpp"

namespace sma::util {

namespace {

constexpr std::uint32_t kMagic = 0x464d5341;  // "SMAF" little-endian
constexpr std::uint32_t kContainerVersion = 1;

void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked little-endian reads over the frame bytes.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  T read(const char* what) {
    if (bytes_.size() - pos_ < sizeof(T)) {
      throw FrameError(std::string("frame truncated in ") + what);
    }
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view read_bytes(std::size_t n, const char* what) {
    if (bytes_.size() - pos_ < n) {
      throw FrameError(std::string("frame truncated in ") + what);
    }
    std::string_view v = bytes_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  std::size_t pos() const { return pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

std::uint64_t frame_checksum(std::string_view kind, std::uint32_t version,
                             std::string_view payload) {
  // Chain FNV over the pieces the checksum covers, in frame order.
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ull;
    }
  };
  mix(kind.data(), kind.size());
  mix(&version, sizeof(version));
  mix(payload.data(), payload.size());
  return h;
}

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw IoError(op + " '" + path + "' failed: " + std::strerror(errno));
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string frame_encode(std::string_view kind, std::uint32_t version,
                         std::string_view payload) {
  std::string out;
  out.reserve(4 * sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t) +
              kind.size() + payload.size());
  append_u32(out, kMagic);
  append_u32(out, kContainerVersion);
  append_u32(out, static_cast<std::uint32_t>(kind.size()));
  out.append(kind.data(), kind.size());
  append_u32(out, version);
  append_u64(out, static_cast<std::uint64_t>(payload.size()));
  out.append(payload.data(), payload.size());
  append_u64(out, frame_checksum(kind, version, payload));
  return out;
}

std::string frame_decode(std::string_view bytes, std::string_view kind,
                         std::uint32_t version) {
  Cursor cursor(bytes);
  if (cursor.read<std::uint32_t>("magic") != kMagic) {
    throw FrameError("not a durable frame (bad magic)");
  }
  const auto container = cursor.read<std::uint32_t>("container version");
  if (container != kContainerVersion) {
    throw FrameError("unsupported container version " +
                     std::to_string(container));
  }
  const auto kind_len = cursor.read<std::uint32_t>("kind length");
  if (kind_len > 256) {
    throw FrameError("implausible kind length " + std::to_string(kind_len));
  }
  const std::string_view got_kind = cursor.read_bytes(kind_len, "kind");
  if (got_kind != kind) {
    throw FrameError("frame kind mismatch: expected '" + std::string(kind) +
                     "', got '" + std::string(got_kind) + "'");
  }
  const auto got_version = cursor.read<std::uint32_t>("schema version");
  if (got_version != version) {
    throw FrameError("frame schema version mismatch: expected " +
                     std::to_string(version) + ", got " +
                     std::to_string(got_version));
  }
  const auto payload_len = cursor.read<std::uint64_t>("payload length");
  if (payload_len > bytes.size() - cursor.pos()) {
    throw FrameError("frame truncated: payload claims " +
                     std::to_string(payload_len) + " bytes, " +
                     std::to_string(bytes.size() - cursor.pos()) +
                     " remain");
  }
  const std::string_view payload = cursor.read_bytes(
      static_cast<std::size_t>(payload_len), "payload");
  const auto checksum = cursor.read<std::uint64_t>("checksum");
  if (checksum != frame_checksum(kind, version, payload)) {
    throw FrameError("frame checksum mismatch (torn write or corruption)");
  }
  return std::string(payload);
}

void atomic_write_file(const std::string& path, std::string_view bytes) {
  // Temp file in the destination directory (rename must not cross
  // filesystems); pid-suffixed so concurrent processes sharing a cache
  // directory never scribble on each other's temp file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  fault::point("durable.open_temp");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open", tmp);

  std::string_view to_write = bytes;
  std::string mutated;
  bool tear_after_prefix = false;
  switch (fault::io_point("durable.write")) {
    case fault::Action::kShortWrite:
      // Torn write: emit only a prefix, then crash. The temp file is the
      // torn one; atomic replace means the destination stays whole. To
      // model a filesystem that reordered data vs. the rename, tests
      // instead truncate the destination bytes directly.
      to_write = bytes.substr(0, bytes.size() / 2);
      tear_after_prefix = true;
      break;
    case fault::Action::kCorrupt:
      // Silent corruption: flip one byte mid-payload but complete the
      // write — the checksum catches it at load time.
      mutated.assign(bytes);
      if (!mutated.empty()) mutated[mutated.size() / 2] ^= 0x40;
      to_write = mutated;
      break;
    default:
      break;
  }

  std::size_t written = 0;
  while (written < to_write.size()) {
    const ::ssize_t n =
        ::write(fd, to_write.data() + written, to_write.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_errno("write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (tear_after_prefix) {
    ::close(fd);
    throw fault::FaultInjected("durable.write");
  }

  fault::point("durable.fsync");
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_errno("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("close", tmp);
  }

  fault::point("durable.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("rename", tmp + " -> " + path);
  }

  // Durability of the rename itself: fsync the containing directory.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort — some filesystems reject directory fsync
    ::close(dfd);
  }
}

std::string read_file(const std::string& path) {
  fault::point("durable.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw IoError("read of '" + path + "' failed");
  return buffer.str();
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError("cannot create directory '" + dir + "': " + ec.message());
  }
}

void write_frame_file(const std::string& path, std::string_view kind,
                      std::uint32_t version, std::string_view payload) {
  atomic_write_file(path, frame_encode(kind, version, payload));
}

std::string read_frame_file(const std::string& path, std::string_view kind,
                            std::uint32_t version) {
  return frame_decode(read_file(path), kind, version);
}

}  // namespace sma::util
