// Annotated mutex primitives for clang's thread-safety analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so code using
// it is invisible to `-Wthread-safety` — SMA_GUARDED_BY(a std::mutex)
// is rejected outright. These thin wrappers (zero overhead: every method
// is an inline forward) make the lock graph visible to the analysis:
//
//   util::Mutex mutex_;
//   int shared_ SMA_GUARDED_BY(mutex_);
//
//   void touch() {
//     util::MutexLock lock(mutex_);   // scoped capability
//     ++shared_;                      // statically checked
//   }
//
// CondVar pairs with MutexLock. Write waits as explicit loops —
// `while (!pred()) cv_.wait(lock);` — never predicate lambdas: the
// analysis treats a lambda as a separate function that does not hold the
// caller's lock, so guarded reads inside the predicate would be flagged.
// (The analysis does not model the unlock/relock inside wait(); the
// capability is treated as held across the call, which matches the
// invariant re-established on every wakeup.)
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace sma::util {

class MutexLock;

/// std::mutex with capability annotations. Non-reentrant.
class SMA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SMA_ACQUIRE() { m_.lock(); }
  void unlock() SMA_RELEASE() { m_.unlock(); }
  bool try_lock() SMA_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII scoped lock over Mutex (the repo's lock_guard/unique_lock).
class SMA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SMA_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~MutexLock() SMA_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable usable with MutexLock. Waits release and reacquire
/// the underlying std::mutex exactly like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sma::util
