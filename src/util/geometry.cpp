#include "util/geometry.hpp"

#include <ostream>

namespace sma::util {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo << " - " << r.hi << ']';
}

}  // namespace sma::util
