// Deterministic pseudo-random number generation.
//
// Every stochastic stage of the pipeline (netlist generation, placement,
// training) draws from a seeded Pcg32 so that whole experiments are exactly
// reproducible from a single seed. std::mt19937 is avoided because its
// stream is not guaranteed identical across standard library versions for
// the distributions layered on top; all distribution logic here is our own.
#pragma once

#include <cstdint>
#include <vector>

namespace sma::util {

/// PCG-XSH-RR 64/32 generator (O'Neill, 2014). Small, fast, seedable, and
/// with a per-stream `sequence` selector so independent pipeline stages can
/// derive decorrelated streams from one master seed.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t sequence = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform in [0, bound) without modulo bias. `bound` must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability `p` (clamped to [0, 1]).
  bool next_bool(double p);

  /// Standard normal variate (Box-Muller; consumes two uniforms).
  double next_gaussian();

  /// Sample an index from unnormalized non-negative weights.
  /// Returns `weights.size() - 1` if all weights are zero.
  std::size_t next_weighted(const std::vector<double>& weights);

  /// A decorrelated child generator for a named sub-stage.
  Pcg32 fork(std::uint64_t stream_id) const;

  /// The full generator state, for checkpoint/resume: a restored
  /// generator continues the exact stream the saved one would have
  /// produced. (Constructing from the original seed and replaying draws
  /// reaches the same state; capture/restore just skips the replay.)
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
  };
  State save_state() const { return State{state_, inc_}; }
  void restore_state(const State& s) {
    state_ = s.state;
    inc_ = s.inc;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Fisher-Yates shuffle driven by Pcg32 (deterministic across platforms).
template <typename T>
void shuffle(std::vector<T>& v, Pcg32& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = rng.next_below(static_cast<std::uint32_t>(i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace sma::util
