// Minimal leveled logging to stderr.
//
// The library never prints to stdout (reserved for experiment tables);
// diagnostics go through this logger so verbosity can be raised in the
// examples and silenced in the unit tests.
#pragma once

#include <sstream>
#include <string>

namespace sma::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global verbosity threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Read SMA_LOG_LEVEL from the environment ("error", "warn", "info",
/// "debug", or the numeric 0-3) and apply it; unset or unrecognized
/// values leave the level unchanged. Called by the examples and benches
/// so CI can raise verbosity without code edits.
void set_log_level_from_env();

/// Small sequential id of the calling thread (0 = first thread to ask).
/// Shared by log lines and the tracer's Chrome-trace tids, so a log line
/// and a trace span from the same thread correlate.
int thread_ordinal();

/// Emit one line at `level` with a level tag, monotonic millisecond
/// timestamp, and the calling thread's ordinal.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Builds a message with stream syntax and emits it on destruction.
/// Formatting is gated on the level check up front: a filtered-out
/// message never streams its operands (debug logging in hot loops is
/// free apart from one atomic level load).
class LogMessage {
 public:
  explicit LogMessage(LogLevel level)
      : level_(level), enabled_(level <= log_level()) {}
  ~LogMessage() {
    if (enabled_) log_line(level_, stream_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogMessage log_error() {
  return detail::LogMessage(LogLevel::kError);
}
inline detail::LogMessage log_warn() {
  return detail::LogMessage(LogLevel::kWarn);
}
inline detail::LogMessage log_info() {
  return detail::LogMessage(LogLevel::kInfo);
}
inline detail::LogMessage log_debug() {
  return detail::LogMessage(LogLevel::kDebug);
}

}  // namespace sma::util
