// Minimal leveled logging to stderr.
//
// The library never prints to stdout (reserved for experiment tables);
// diagnostics go through this logger so verbosity can be raised in the
// examples and silenced in the unit tests.
#pragma once

#include <sstream>
#include <string>

namespace sma::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global verbosity threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` with a level tag and elapsed wall time.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Builds a message with stream syntax and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogMessage log_error() {
  return detail::LogMessage(LogLevel::kError);
}
inline detail::LogMessage log_warn() {
  return detail::LogMessage(LogLevel::kWarn);
}
inline detail::LogMessage log_info() {
  return detail::LogMessage(LogLevel::kInfo);
}
inline detail::LogMessage log_debug() {
  return detail::LogMessage(LogLevel::kDebug);
}

}  // namespace sma::util
