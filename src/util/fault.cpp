#include "util/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/logging.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sma::util::fault {

namespace {

std::atomic<long> g_injected{0};

#if SMA_FAULT_ENABLED

struct Armed {
  Action mode = Action::kNone;
  long nth = 1;  ///< fire when the point's hit counter reaches this
};

struct Registry {
  util::Mutex mutex;
  /// Lookup-only maps (find / operator[] / clear); their iteration order
  /// is never observed, so unordered storage cannot leak into outputs.
  std::unordered_map<std::string, std::vector<Armed>> armed
      SMA_GUARDED_BY(mutex);
  std::unordered_map<std::string, long> hits SMA_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry instance;
  return instance;
}

std::once_flag g_env_once;

void ensure_env_parsed() {
  std::call_once(g_env_once, [] { arm_from_env(); });
}

Action mode_from_name(const std::string& name, const std::string& entry) {
  if (name == "fail") return Action::kFail;
  if (name == "short_write") return Action::kShortWrite;
  if (name == "corrupt") return Action::kCorrupt;
  if (name == "delay") return Action::kDelay;
  throw std::invalid_argument("SMA_FAULT: unknown mode '" + name + "' in '" +
                              entry + "' (fail|short_write|corrupt|delay)");
}

/// Count a hit and consume a matching one-shot entry, if any.
Action consume(const char* name) {
  ensure_env_parsed();
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  const long hit = ++reg.hits[name];
  auto it = reg.armed.find(name);
  if (it == reg.armed.end()) return Action::kNone;
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    if (it->second[i].nth == hit) {
      const Action mode = it->second[i].mode;
      it->second.erase(it->second.begin() + static_cast<std::ptrdiff_t>(i));
      ++g_injected;
      return mode;
    }
  }
  return Action::kNone;
}

#endif  // SMA_FAULT_ENABLED

}  // namespace

long injected_count() { return g_injected.load(); }

#if SMA_FAULT_ENABLED

bool arm(const std::string& point, Action mode, long nth) {
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  reg.armed[point].push_back(Armed{mode, reg.hits[point] + nth});
  return true;
}

void disarm_all() {
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  reg.armed.clear();
  reg.hits.clear();
}

long hits(const std::string& point) {
  ensure_env_parsed();
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  auto it = reg.hits.find(point);
  return it == reg.hits.end() ? 0 : it->second;
}

int arm_from_env() {
  const char* spec = std::getenv("SMA_FAULT");
  if (spec == nullptr || *spec == '\0') return 0;
  int armed = 0;
  std::string s(spec);
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(',', start);
    if (end == std::string::npos) end = s.size();
    const std::string entry = s.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t c1 = entry.find(':');
    if (c1 == std::string::npos || c1 == 0) {
      throw std::invalid_argument("SMA_FAULT: malformed entry '" + entry +
                                  "' (expected point:mode[:count])");
    }
    const std::size_t c2 = entry.find(':', c1 + 1);
    const std::string point_name = entry.substr(0, c1);
    const std::string mode_name =
        entry.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                     : c2 - c1 - 1);
    long nth = 1;
    if (c2 != std::string::npos) {
      try {
        nth = std::stol(entry.substr(c2 + 1));
      } catch (const std::exception&) {
        nth = 0;
      }
      if (nth < 1) {
        throw std::invalid_argument("SMA_FAULT: bad count in '" + entry +
                                    "' (need a positive integer)");
      }
    }
    arm(point_name, mode_from_name(mode_name, entry), nth);
    util::log_warn() << "fault armed: " << point_name << ":" << mode_name
                     << ":" << nth;
    ++armed;
  }
  return armed;
}

Action io_point(const char* name) {
  const Action mode = consume(name);
  switch (mode) {
    case Action::kFail:
      util::log_warn() << "fault fired: " << name << " (fail)";
      throw FaultInjected(name);
    case Action::kDelay:
      util::log_warn() << "fault fired: " << name << " (delay)";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return Action::kNone;
    case Action::kShortWrite:
    case Action::kCorrupt:
      util::log_warn() << "fault fired: " << name
                       << (mode == Action::kShortWrite ? " (short_write)"
                                                       : " (corrupt)");
      return mode;
    case Action::kNone:
      return Action::kNone;
  }
  return Action::kNone;
}

void point(const char* name) {
  switch (io_point(name)) {
    case Action::kShortWrite:
    case Action::kCorrupt:
      // A non-IO point has no bytes to tear; the closest honest
      // interpretation of a destructive mode here is a crash.
      throw FaultInjected(name);
    default:
      break;
  }
}

#else  // SMA_FAULT_ENABLED

bool arm(const std::string&, Action, long) { return false; }
void disarm_all() {}
long hits(const std::string&) { return 0; }
int arm_from_env() { return 0; }

#endif  // SMA_FAULT_ENABLED

}  // namespace sma::util::fault
