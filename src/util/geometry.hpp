// Integer geometry primitives used across the layout pipeline.
//
// All coordinates are in database units (DBU); this project uses
// 1 DBU = 1 nanometre. Keeping coordinates integral avoids the
// floating-point comparison pitfalls that plague layout code and is
// the convention of LEF/DEF-based tools.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iosfwd>

namespace sma::util {

/// One DBU is one nanometre.
inline constexpr std::int64_t kDbuPerMicron = 1000;

/// A point on the manufacturing grid, in DBU.
struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  friend auto operator<=>(const Point&, const Point&) = default;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

/// Manhattan (L1) distance between two points; the metric of routed wires.
inline std::int64_t manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y] in DBU.
///
/// An empty rectangle is represented by lo > hi on either axis; the
/// default-constructed rectangle is empty and acts as the identity for
/// `expand`.
struct Rect {
  Point lo{1, 1};
  Point hi{0, 0};

  friend bool operator==(const Rect&, const Rect&) = default;

  bool empty() const { return lo.x > hi.x || lo.y > hi.y; }
  std::int64_t width() const { return empty() ? 0 : hi.x - lo.x; }
  std::int64_t height() const { return empty() ? 0 : hi.y - lo.y; }
  std::int64_t half_perimeter() const { return width() + height(); }

  /// Center point (rounded toward lo).
  Point center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }

  bool contains(const Point& p) const {
    return !empty() && p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  bool intersects(const Rect& o) const {
    return !empty() && !o.empty() && lo.x <= o.hi.x && o.lo.x <= hi.x &&
           lo.y <= o.hi.y && o.lo.y <= hi.y;
  }

  /// Grow the rectangle so it also covers `p`.
  void expand(const Point& p) {
    if (empty()) {
      lo = hi = p;
      return;
    }
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Grow the rectangle so it also covers `o` (no-op for empty `o`).
  void expand(const Rect& o) {
    if (o.empty()) return;
    expand(o.lo);
    expand(o.hi);
  }

  /// Rectangle inflated by `margin` on every side.
  Rect inflated(std::int64_t margin) const {
    if (empty()) return *this;
    return {{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }
};

/// Axis of travel; metal layers route predominantly along one axis.
enum class Axis : std::uint8_t { kHorizontal, kVertical };

/// The orthogonal axis.
inline Axis perpendicular(Axis a) {
  return a == Axis::kHorizontal ? Axis::kVertical : Axis::kHorizontal;
}

/// Component of `p` along `a` (x for horizontal travel, y for vertical).
inline std::int64_t along(const Point& p, Axis a) {
  return a == Axis::kHorizontal ? p.x : p.y;
}

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace sma::util
