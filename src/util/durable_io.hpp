// Crash-safe file persistence: atomic replace + a checksummed frame.
//
// Everything the repo persists across process lifetimes (training
// checkpoints, the on-disk split cache, experiment work units) goes
// through this layer, which gives two guarantees:
//
//  1. Atomic visibility. `atomic_write_file` writes to a temp file in the
//     target directory, flushes it to stable storage (fsync), renames it
//     over the destination, and fsyncs the directory. A crash at any
//     instant leaves either the complete old file or the complete new
//     file — never a torn one — so "the previous checkpoint stays valid"
//     holds at every injection point of the fault harness (util/fault.hpp).
//
//  2. Detection at load. Payloads are wrapped in a framed container —
//     magic, kind tag, schema version, payload length, FNV-1a checksum —
//     so a file that was torn or corrupted anyway (non-atomic filesystem,
//     bit rot, a fault-injected short_write/corrupt) is rejected with a
//     typed error at `frame_decode` time, never silently consumed.
//
// Errors are typed so callers can distinguish "this file is damaged,
// recompute it" (FrameError) from "the storage itself is failing"
// (IoError); both derive from DurableIoError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sma::util {

/// Base of every durable-IO failure.
class DurableIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The bytes are not a valid frame: bad magic, wrong kind, unsupported
/// version, truncation, or checksum mismatch. The file is damaged or
/// foreign — discard or recompute it.
class FrameError : public DurableIoError {
 public:
  using DurableIoError::DurableIoError;
};

/// The operating system refused an IO operation (open, write, fsync,
/// rename, read). The message carries the path and errno text.
class IoError : public DurableIoError {
 public:
  using DurableIoError::DurableIoError;
};

/// FNV-1a 64-bit over a byte range (the frame checksum; same function as
/// util::ContentHash so digests stay consistent repo-wide).
std::uint64_t fnv1a(const void* data, std::size_t size);

/// Wrap `payload` in a framed container:
///   u32 magic "SMAF" | u32 container version | u32 kind length |
///   kind bytes | u32 schema version | u64 payload length |
///   payload bytes | u64 FNV-1a(kind, schema version, payload)
std::string frame_encode(std::string_view kind, std::uint32_t version,
                         std::string_view payload);

/// Validate a frame and return its payload. Throws FrameError naming the
/// violated rule (magic, kind, version, truncation, checksum).
std::string frame_decode(std::string_view bytes, std::string_view kind,
                         std::uint32_t version);

/// Atomically replace `path` with `bytes` (temp file + fsync + rename +
/// directory fsync). Throws IoError on OS failure. Fault injection
/// points: `durable.open_temp`, `durable.write` (honors short_write /
/// corrupt), `durable.fsync`, `durable.rename`.
void atomic_write_file(const std::string& path, std::string_view bytes);

/// Read a whole file. Throws IoError when it does not exist or cannot be
/// read. Fault injection point: `durable.read`.
std::string read_file(const std::string& path);

bool file_exists(const std::string& path);

/// Create `dir` (and parents) if missing. Throws IoError on failure.
void ensure_dir(const std::string& dir);

/// frame_encode + atomic_write_file.
void write_frame_file(const std::string& path, std::string_view kind,
                      std::uint32_t version, std::string_view payload);

/// read_file + frame_decode.
std::string read_frame_file(const std::string& path, std::string_view kind,
                            std::uint32_t version);

}  // namespace sma::util
