#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace sma::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t sequence)
    : state_(0), inc_((sequence << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  // Lemire-style rejection to remove modulo bias.
  std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Pcg32::next_in(std::int64_t lo, std::int64_t hi) {
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span <= 1) return lo;
  // Two 32-bit draws cover 64-bit spans; for the small spans used here a
  // single draw suffices, but keep it general.
  std::uint64_t r =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  return lo + static_cast<std::int64_t>(r % span);
}

double Pcg32::next_double() {
  return next_u32() * 0x1.0p-32;
}

bool Pcg32::next_bool(double p) {
  return next_double() < p;
}

double Pcg32::next_gaussian() {
  // Box-Muller; guard the log argument away from zero.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Pcg32::next_weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Pcg32 Pcg32::fork(std::uint64_t stream_id) const {
  // Derive a child stream from the current state and the caller-chosen id.
  return Pcg32(state_ ^ (stream_id * 0x9e3779b97f4a7c15ULL),
               inc_ + 2 * stream_id + 1);
}

}  // namespace sma::util
