#include "tech/cell_library.hpp"

#include <algorithm>
#include <stdexcept>

namespace sma::tech {

bool is_sequential(Function f) { return f == Function::kDff; }

int LibCell::output_pin() const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].direction == PinDirection::kOutput) {
      return static_cast<int>(i);
    }
  }
  throw std::logic_error("library cell without output pin: " + name);
}

std::vector<int> LibCell::input_pins() const {
  std::vector<int> result;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].direction == PinDirection::kInput) {
      result.push_back(static_cast<int>(i));
    }
  }
  return result;
}

int LibCell::num_inputs() const {
  return static_cast<int>(input_pins().size());
}

double LibCell::input_cap_sum() const {
  double total = 0.0;
  for (const auto& pin : pins) {
    if (pin.direction == PinDirection::kInput) total += pin.capacitance;
  }
  return total;
}

namespace {

constexpr std::int64_t kSite = 190;    // DBU (0.19 um, NanGate site width)
constexpr std::int64_t kRow = 1400;    // DBU (1.4 um row height)

/// Assembles a LibCell with evenly spread pin offsets: inputs on the left
/// half of the cell at staggered heights, output on the right edge. The
/// exact shapes do not matter; only that pins of one cell have distinct,
/// deterministic locations for routing and feature extraction.
LibCell make_cell(std::string name, Function fn, int drive, int inputs,
                  std::int64_t width_sites, double in_cap, double max_load,
                  double res, double delay) {
  LibCell cell;
  cell.name = std::move(name);
  cell.function = fn;
  cell.drive_strength = drive;
  cell.width = width_sites * kSite;
  cell.max_load_cap = max_load;
  cell.drive_resistance = res;
  cell.intrinsic_delay = delay;

  static const char* kInputNames[] = {"A", "B", "C", "D"};
  for (int i = 0; i < inputs; ++i) {
    LibPin pin;
    pin.name = fn == Function::kDff && i == 0 ? "D" : kInputNames[i];
    pin.direction = PinDirection::kInput;
    pin.offset = {kSite / 2 + (i % 2) * kSite / 2,
                  kRow / 4 + (i * kRow) / (2 * std::max(inputs, 1))};
    pin.capacitance = in_cap;
    cell.pins.push_back(pin);
  }
  LibPin out;
  out.name = fn == Function::kDff ? "Q" : "Z";
  out.direction = PinDirection::kOutput;
  out.offset = {cell.width - kSite / 2, kRow / 2};
  out.capacitance = 0.0;
  cell.pins.push_back(out);
  return cell;
}

}  // namespace

CellLibrary CellLibrary::nangate45_like() {
  std::vector<LibCell> cells;
  // name, fn, drive, #in, width(sites), in-cap fF, max load fF, R ohm, d ps
  cells.push_back(make_cell("INV_X1", Function::kInv, 1, 1, 2, 1.6, 60.0, 7000, 10));
  cells.push_back(make_cell("INV_X2", Function::kInv, 2, 1, 3, 3.2, 120.0, 3500, 9));
  cells.push_back(make_cell("INV_X4", Function::kInv, 4, 1, 4, 6.4, 240.0, 1750, 8));
  cells.push_back(make_cell("BUF_X1", Function::kBuf, 1, 1, 3, 1.5, 60.0, 7000, 22));
  cells.push_back(make_cell("BUF_X2", Function::kBuf, 2, 1, 4, 3.0, 120.0, 3500, 20));
  cells.push_back(make_cell("NAND2_X1", Function::kNand, 1, 2, 3, 1.6, 55.0, 7400, 14));
  cells.push_back(make_cell("NAND3_X1", Function::kNand, 1, 3, 4, 1.7, 50.0, 7800, 18));
  cells.push_back(make_cell("NAND4_X1", Function::kNand, 1, 4, 5, 1.8, 45.0, 8200, 22));
  cells.push_back(make_cell("NOR2_X1", Function::kNor, 1, 2, 3, 1.7, 55.0, 7600, 15));
  cells.push_back(make_cell("NOR3_X1", Function::kNor, 1, 3, 4, 1.8, 50.0, 8000, 20));
  cells.push_back(make_cell("NOR4_X1", Function::kNor, 1, 4, 5, 1.9, 45.0, 8400, 25));
  cells.push_back(make_cell("AND2_X1", Function::kAnd, 1, 2, 4, 1.5, 60.0, 7200, 24));
  cells.push_back(make_cell("AND3_X1", Function::kAnd, 1, 3, 5, 1.6, 55.0, 7400, 28));
  cells.push_back(make_cell("AND4_X1", Function::kAnd, 1, 4, 6, 1.7, 50.0, 7600, 32));
  cells.push_back(make_cell("OR2_X1", Function::kOr, 1, 2, 4, 1.5, 60.0, 7200, 25));
  cells.push_back(make_cell("OR3_X1", Function::kOr, 1, 3, 5, 1.6, 55.0, 7400, 29));
  cells.push_back(make_cell("OR4_X1", Function::kOr, 1, 4, 6, 1.7, 50.0, 7600, 33));
  cells.push_back(make_cell("XOR2_X1", Function::kXor, 1, 2, 5, 2.0, 50.0, 7600, 30));
  cells.push_back(make_cell("XNOR2_X1", Function::kXnor, 1, 2, 5, 2.0, 50.0, 7600, 30));
  cells.push_back(make_cell("AOI21_X1", Function::kAoi21, 1, 3, 4, 1.7, 50.0, 7800, 18));
  cells.push_back(make_cell("OAI21_X1", Function::kOai21, 1, 3, 4, 1.7, 50.0, 7800, 18));
  cells.push_back(make_cell("MUX2_X1", Function::kMux2, 1, 3, 6, 1.8, 55.0, 7400, 32));
  cells.push_back(make_cell("DFF_X1", Function::kDff, 1, 1, 9, 1.6, 60.0, 7000, 90));
  return CellLibrary(std::move(cells), kSite, kRow);
}

CellLibrary::CellLibrary(std::vector<LibCell> cells, std::int64_t site_width,
                         std::int64_t row_height)
    : cells_(std::move(cells)),
      site_width_(site_width),
      row_height_(row_height) {
  if (cells_.empty()) throw std::invalid_argument("empty cell library");
}

std::optional<int> CellLibrary::find(const std::string& name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::vector<int> CellLibrary::cells_with_function(Function f) const {
  std::vector<int> result;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].function == f) result.push_back(static_cast<int>(i));
  }
  std::sort(result.begin(), result.end(), [this](int a, int b) {
    return cells_[a].drive_strength < cells_[b].drive_strength;
  });
  return result;
}

std::optional<int> CellLibrary::pick(Function f, int num_inputs) const {
  for (int index : cells_with_function(f)) {
    if (cells_[index].num_inputs() == num_inputs) return index;
  }
  return std::nullopt;
}

}  // namespace sma::tech
