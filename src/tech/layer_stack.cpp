#include "tech/layer_stack.hpp"

#include <stdexcept>

namespace sma::tech {

LayerStack LayerStack::nangate45_like() {
  using util::Axis;
  // Capacitance ~0.2 fF/um and resistance ~2 ohm/um on thin metals; upper
  // metals are wider/thicker, so lower R and slightly lower C. A uniform
  // thin pitch is used on all six layers (the real stack widens above M3
  // but also has more layers; uniform capacity keeps the six-layer model's
  // per-direction routing supply realistic).
  std::vector<LayerInfo> layers;
  layers.push_back({"M1", Axis::kHorizontal, 140, 0.00020, 0.0020});
  layers.push_back({"M2", Axis::kVertical, 140, 0.00020, 0.0020});
  layers.push_back({"M3", Axis::kHorizontal, 140, 0.00020, 0.0020});
  layers.push_back({"M4", Axis::kVertical, 140, 0.00017, 0.0010});
  layers.push_back({"M5", Axis::kHorizontal, 140, 0.00017, 0.0010});
  layers.push_back({"M6", Axis::kVertical, 140, 0.00017, 0.0010});
  return LayerStack(std::move(layers));
}

LayerStack::LayerStack(std::vector<LayerInfo> layers)
    : layers_(std::move(layers)) {
  if (layers_.size() < 2) {
    throw std::invalid_argument("layer stack needs at least two metals");
  }
}

std::string LayerStack::cut_name(int cut) const {
  if (cut < 1 || cut > num_cut_layers()) {
    throw std::out_of_range("cut layer out of range");
  }
  return "V" + std::to_string(cut) + std::to_string(cut + 1);
}

}  // namespace sma::tech
