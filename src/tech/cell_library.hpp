// Standard-cell library model.
//
// Mirrors the slice of a Liberty file the attack needs (Sec. 2.1 of the
// paper: the attacker knows the cell library, in particular maximum load
// capacitances, pin capacitances, and drive strengths for delay bounds).
// Functional behaviour is carried as a coarse `Function` tag: the attack is
// purely structural, but the tag lets tests and the synthetic generator
// build logically sensible netlists.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/geometry.hpp"

namespace sma::tech {

/// Coarse logic function of a library cell.
enum class Function : std::uint8_t {
  kInv,
  kBuf,
  kNand,
  kNor,
  kAnd,
  kOr,
  kXor,
  kXnor,
  kAoi21,   // !(a*b + c)
  kOai21,   // !((a+b) * c)
  kMux2,    // s ? b : a
  kDff,     // D flip-flop (sequential)
};

/// True for cells whose output is a clocked state element.
bool is_sequential(Function f);

enum class PinDirection : std::uint8_t { kInput, kOutput };

/// One pin of a library cell template.
struct LibPin {
  std::string name;
  PinDirection direction;
  /// Geometric offset of the pin shape from the cell origin, in DBU.
  util::Point offset;
  /// Input pin capacitance in fF (0 for outputs).
  double capacitance = 0.0;
};

/// One standard-cell template.
struct LibCell {
  std::string name;        ///< e.g. "NAND2_X1"
  Function function;
  int drive_strength;      ///< X1 = 1, X2 = 2, X4 = 4
  std::int64_t width;      ///< cell width in DBU (multiple of site width)
  std::vector<LibPin> pins;
  double max_load_cap;     ///< max output load in fF (the attacker's bound)
  double drive_resistance; ///< output resistance in ohm (for Elmore delay)
  double intrinsic_delay;  ///< gate intrinsic delay in ps

  /// Index of the single output pin in `pins`.
  int output_pin() const;
  /// Indices of input pins in `pins`.
  std::vector<int> input_pins() const;
  /// Number of input pins.
  int num_inputs() const;
  /// Total input capacitance (fF).
  double input_cap_sum() const;
};

/// A set of cell templates with name lookup.
class CellLibrary {
 public:
  /// NanGate-45-like library: INV/BUF X1-X4, NAND/NOR/AND/OR 2-4 inputs,
  /// XOR/XNOR2, AOI21/OAI21, MUX2, DFF. Site width 190 nm, row height
  /// 1400 nm.
  static CellLibrary nangate45_like();

  explicit CellLibrary(std::vector<LibCell> cells, std::int64_t site_width,
                       std::int64_t row_height);

  int num_cells() const { return static_cast<int>(cells_.size()); }
  const LibCell& cell(int index) const { return cells_.at(index); }

  /// Index of the cell named `name`, or nullopt.
  std::optional<int> find(const std::string& name) const;

  /// All cells implementing `f`, sorted by drive strength.
  std::vector<int> cells_with_function(Function f) const;

  /// The weakest (X1) cell implementing `f` with exactly `num_inputs`
  /// inputs; nullopt if none exists.
  std::optional<int> pick(Function f, int num_inputs) const;

  std::int64_t site_width() const { return site_width_; }
  std::int64_t row_height() const { return row_height_; }

 private:
  std::vector<LibCell> cells_;
  std::int64_t site_width_;
  std::int64_t row_height_;
};

}  // namespace sma::tech
