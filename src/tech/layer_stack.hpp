// Back-end metal stack description.
//
// Models the interconnect resources of a NanGate-45-like technology:
// alternating preferred routing directions, per-layer track pitch, and the
// cut (via) layers between adjacent metals. The split-manufacturing model
// (`sma::split`) cuts this stack at a chosen metal layer: layers 1..split
// form the FEOL available to the attacker, layers above form the hidden
// BEOL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/geometry.hpp"

namespace sma::tech {

/// 1-based metal layer index: 1 = M1 (lowest), up to `num_layers()`.
using MetalLayer = int;

/// Properties of a single metal layer.
struct LayerInfo {
  std::string name;            ///< "M1", "M2", ...
  util::Axis preferred;        ///< preferred routing direction
  std::int64_t pitch;          ///< track-to-track pitch in DBU
  double cap_per_dbu;          ///< wire capacitance in fF per DBU of length
  double res_per_dbu;          ///< wire resistance in ohm per DBU of length
};

/// The full metal stack. Cut layer `k` (1-based, V12 = 1) joins metal `k`
/// and metal `k + 1`.
class LayerStack {
 public:
  /// NanGate-45-like default: 6 metals, M1 horizontal, alternating above,
  /// 140 nm pitch on M1-M3 and 280 nm on M4-M6.
  static LayerStack nangate45_like();

  explicit LayerStack(std::vector<LayerInfo> layers);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  int num_cut_layers() const { return num_layers() - 1; }

  const LayerInfo& layer(MetalLayer m) const { return layers_.at(m - 1); }
  util::Axis preferred(MetalLayer m) const { return layer(m).preferred; }
  std::int64_t pitch(MetalLayer m) const { return layer(m).pitch; }

  /// Name of the cut layer between metal `m` and metal `m + 1` ("V12"...).
  std::string cut_name(int cut) const;

 private:
  std::vector<LayerInfo> layers_;
};

}  // namespace sma::tech
