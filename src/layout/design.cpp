#include "layout/design.hpp"

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sma::layout {

Design run_flow(netlist::Netlist netlist, const FlowConfig& config,
                runtime::ThreadPool* pool) {
  util::Timer timer;
  Design design;
  design.netlist = std::make_unique<netlist::Netlist>(std::move(netlist));
  design.stack =
      std::make_unique<tech::LayerStack>(tech::LayerStack::nangate45_like());

  place::Floorplan floorplan =
      place::make_floorplan(*design.netlist, config.utilization);
  design.placement =
      std::make_unique<place::Placement>(design.netlist.get(), floorplan);

  util::Timer phase_timer;
  place::GlobalPlacerConfig global = config.global_placer;
  global.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
  run_global_placement(*design.placement, global, pool);
  design.timings.global_place_seconds = phase_timer.seconds();

  phase_timer.reset();
  run_legalization(*design.placement);
  design.timings.legalize_seconds = phase_timer.seconds();

  phase_timer.reset();
  place::DetailedPlacerConfig detailed = config.detailed_placer;
  detailed.seed ^= config.seed * 0xbf58476d1ce4e5b9ULL;
  run_detailed_placement(*design.placement, detailed);
  design.timings.detailed_place_seconds = phase_timer.seconds();

  design.grid = std::make_unique<route::RoutingGrid>(
      design.stack.get(), floorplan.die, config.grid);
  phase_timer.reset();
  design.routing = route::route_design(*design.placement, *design.grid,
                                       config.router, pool);
  design.timings.route_seconds = phase_timer.seconds();

  util::log_info() << design.netlist->name() << ": flow done in "
                   << timer.seconds() << "s, HPWL "
                   << design.placement->total_hpwl() << ", WL "
                   << design.routing.total_wirelength << ", vias "
                   << design.routing.total_vias << ", overflow "
                   << design.routing.final_overflow;
  return design;
}

}  // namespace sma::layout
