#include "layout/design.hpp"

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sma::layout {

Design run_flow(netlist::Netlist netlist, const FlowConfig& config) {
  util::Timer timer;
  Design design;
  design.netlist = std::make_unique<netlist::Netlist>(std::move(netlist));
  design.stack =
      std::make_unique<tech::LayerStack>(tech::LayerStack::nangate45_like());

  place::Floorplan floorplan =
      place::make_floorplan(*design.netlist, config.utilization);
  design.placement =
      std::make_unique<place::Placement>(design.netlist.get(), floorplan);

  place::GlobalPlacerConfig global = config.global_placer;
  global.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
  run_global_placement(*design.placement, global);
  run_legalization(*design.placement);

  place::DetailedPlacerConfig detailed = config.detailed_placer;
  detailed.seed ^= config.seed * 0xbf58476d1ce4e5b9ULL;
  run_detailed_placement(*design.placement, detailed);

  design.grid = std::make_unique<route::RoutingGrid>(
      design.stack.get(), floorplan.die, config.grid);
  design.routing = route::route_design(*design.placement, *design.grid,
                                       config.router);

  util::log_info() << design.netlist->name() << ": flow done in "
                   << timer.seconds() << "s, HPWL "
                   << design.placement->total_hpwl() << ", WL "
                   << design.routing.total_wirelength << ", vias "
                   << design.routing.total_vias << ", overflow "
                   << design.routing.final_overflow;
  return design;
}

}  // namespace sma::layout
