#include "layout/design.hpp"

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sma::layout {

// Phase timing rides on obs::TimedSpan: each phase still lands its
// wall-clock seconds in Design::timings (the public accessor benches
// consume, available even under SMA_OBS=OFF), and when tracing is on the
// same interval shows up as a "flow" span in the Chrome trace.
Design run_flow(netlist::Netlist netlist, const FlowConfig& config,
                runtime::ThreadPool* pool) {
  util::Timer timer;
  Design design;
  design.netlist = std::make_unique<netlist::Netlist>(std::move(netlist));
  design.stack =
      std::make_unique<tech::LayerStack>(tech::LayerStack::nangate45_like());

  place::Floorplan floorplan =
      place::make_floorplan(*design.netlist, config.utilization);
  design.placement =
      std::make_unique<place::Placement>(design.netlist.get(), floorplan);

  {
    obs::TimedSpan span("flow", "global_place");
    place::GlobalPlacerConfig global = config.global_placer;
    global.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
    run_global_placement(*design.placement, global, pool);
    design.timings.global_place_seconds = span.stop();
  }

  {
    obs::TimedSpan span("flow", "legalize");
    run_legalization(*design.placement);
    design.timings.legalize_seconds = span.stop();
  }

  {
    obs::TimedSpan span("flow", "detailed_place");
    place::DetailedPlacerConfig detailed = config.detailed_placer;
    detailed.seed ^= config.seed * 0xbf58476d1ce4e5b9ULL;
    run_detailed_placement(*design.placement, detailed);
    design.timings.detailed_place_seconds = span.stop();
  }

  design.grid = std::make_unique<route::RoutingGrid>(
      design.stack.get(), floorplan.die, config.grid);
  {
    obs::TimedSpan span("flow", "route");
    design.routing = route::route_design(*design.placement, *design.grid,
                                         config.router, pool);
    design.timings.route_seconds = span.stop();
  }

  util::log_info() << design.netlist->name() << ": flow done in "
                   << timer.seconds() << "s, HPWL "
                   << design.placement->total_hpwl() << ", WL "
                   << design.routing.total_wirelength << ", vias "
                   << design.routing.total_vias << ", overflow "
                   << design.routing.final_overflow;
  return design;
}

}  // namespace sma::layout
