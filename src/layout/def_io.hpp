// DEF-lite: a compact text interchange format for routed designs.
//
// Mirrors the paper's use of the Design Exchange Format as the hand-off
// between the physical-design tool and the attack: a `Design` can be
// exported after routing and re-imported later (e.g. by an attack running
// in a different process) with identical connectivity, placement and
// routed geometry. This is a reduced dialect, not IEEE 1481 DEF.
#pragma once

#include <iosfwd>
#include <string>

#include "layout/design.hpp"

namespace sma::layout {

/// Serialize a routed design.
void write_def(const Design& design, std::ostream& out);
std::string to_def_string(const Design& design);

/// Reconstruct a design from DEF-lite text. The cell `library` must contain
/// every master referenced by the file. Routed geometry is restored;
/// router-internal grid-edge lists are not (all consumers work from
/// geometry). Throws std::runtime_error on malformed input.
Design read_def(std::istream& in, const tech::CellLibrary* library);
Design read_def_string(const std::string& text,
                       const tech::CellLibrary* library);

}  // namespace sma::layout
