#include "layout/def_io.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sma::layout {

namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::PinRef;
using netlist::PortId;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("def-lite: " + what);
}

std::string expect_token(std::istream& in, const char* context) {
  std::string token;
  if (!(in >> token)) fail(std::string("unexpected end of file in ") + context);
  return token;
}

std::int64_t expect_int(std::istream& in, const char* context) {
  std::int64_t value;
  if (!(in >> value)) fail(std::string("expected integer in ") + context);
  return value;
}

void expect_keyword(std::istream& in, const std::string& keyword) {
  std::string token = expect_token(in, keyword.c_str());
  if (token != keyword) fail("expected '" + keyword + "', got '" + token + "'");
}

}  // namespace

void write_def(const Design& design, std::ostream& out) {
  const netlist::Netlist& nl = *design.netlist;
  const place::Placement& pl = *design.placement;
  const place::Floorplan& fp = pl.floorplan();

  out << "DESIGN " << nl.name() << "\n";
  out << "DIEAREA " << fp.die.lo.x << ' ' << fp.die.lo.y << ' ' << fp.die.hi.x
      << ' ' << fp.die.hi.y << "\n";
  out << "ROWS " << fp.num_rows << ' ' << fp.num_sites << ' ' << fp.row_height
      << ' ' << fp.site_width << "\n";
  out << "GCELL " << design.grid->gcell_size() << "\n";

  out << "COMPONENTS " << nl.num_cells() << "\n";
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const util::Point& p = pl.cell_origin(c);
    out << "  " << nl.cell(c).name << ' ' << nl.lib_cell_of(c).name << ' '
        << p.x << ' ' << p.y << "\n";
  }

  out << "PINS " << nl.num_ports() << "\n";
  for (PortId p = 0; p < nl.num_ports(); ++p) {
    const netlist::Port& port = nl.port(p);
    const util::Point& loc = pl.port_location(p);
    out << "  " << port.name << ' '
        << (port.direction == netlist::PortDirection::kInput ? "IN" : "OUT")
        << ' ' << loc.x << ' ' << loc.y << "\n";
  }

  out << "NETS " << nl.num_nets() << "\n";
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    const route::NetRoute& route = design.route_of(n);
    out << "  NET " << net.name << "\n";
    auto emit_pin = [&](const PinRef& pin) {
      if (pin.is_port()) {
        out << "    PORT " << nl.port(pin.id).name << "\n";
      } else {
        const tech::LibCell& lib = nl.lib_cell_of(pin.id);
        out << "    PIN " << nl.cell(pin.id).name << ' '
            << lib.pins.at(pin.lib_pin).name << "\n";
      }
    };
    if (net.has_driver()) emit_pin(net.driver);
    for (const PinRef& sink : net.sinks) emit_pin(sink);
    out << "    SEGMENTS " << route.segments.size() << "\n";
    for (const route::RouteSegment& s : route.segments) {
      out << "      " << s.layer << ' ' << s.a.x << ' ' << s.a.y << ' '
          << s.b.x << ' ' << s.b.y << "\n";
    }
    out << "    VIAS " << route.vias.size() << "\n";
    for (const route::RouteVia& v : route.vias) {
      out << "      " << v.cut << ' ' << v.at.x << ' ' << v.at.y << "\n";
    }
  }
  out << "END\n";
}

std::string to_def_string(const Design& design) {
  std::ostringstream os;
  write_def(design, os);
  return os.str();
}

Design read_def(std::istream& in, const tech::CellLibrary* library) {
  if (library == nullptr) fail("null library");

  expect_keyword(in, "DESIGN");
  std::string design_name = expect_token(in, "DESIGN");

  expect_keyword(in, "DIEAREA");
  util::Rect die;
  die.lo.x = expect_int(in, "DIEAREA");
  die.lo.y = expect_int(in, "DIEAREA");
  die.hi.x = expect_int(in, "DIEAREA");
  die.hi.y = expect_int(in, "DIEAREA");

  expect_keyword(in, "ROWS");
  place::Floorplan fp;
  fp.die = die;
  fp.num_rows = static_cast<int>(expect_int(in, "ROWS"));
  fp.num_sites = static_cast<int>(expect_int(in, "ROWS"));
  fp.row_height = expect_int(in, "ROWS");
  fp.site_width = expect_int(in, "ROWS");

  expect_keyword(in, "GCELL");
  std::int64_t gcell = expect_int(in, "GCELL");

  Design design;
  design.netlist = std::make_unique<netlist::Netlist>(design_name, library);
  design.stack =
      std::make_unique<tech::LayerStack>(tech::LayerStack::nangate45_like());
  netlist::Netlist& nl = *design.netlist;

  expect_keyword(in, "COMPONENTS");
  int num_components = static_cast<int>(expect_int(in, "COMPONENTS"));
  std::vector<util::Point> cell_positions(num_components);
  for (int i = 0; i < num_components; ++i) {
    std::string cell_name = expect_token(in, "component");
    std::string master = expect_token(in, "component");
    auto lib_index = library->find(master);
    if (!lib_index) fail("unknown master: " + master);
    CellId id = nl.add_cell(cell_name, *lib_index);
    cell_positions[id].x = expect_int(in, "component");
    cell_positions[id].y = expect_int(in, "component");
  }

  expect_keyword(in, "PINS");
  int num_pins = static_cast<int>(expect_int(in, "PINS"));
  for (int i = 0; i < num_pins; ++i) {
    std::string port_name = expect_token(in, "pin");
    std::string direction = expect_token(in, "pin");
    expect_int(in, "pin");  // x: re-derived by Placement's perimeter rule
    expect_int(in, "pin");  // y
    nl.add_port(port_name, direction == "IN"
                               ? netlist::PortDirection::kInput
                               : netlist::PortDirection::kOutput);
  }

  expect_keyword(in, "NETS");
  int num_nets = static_cast<int>(expect_int(in, "NETS"));
  std::vector<route::NetRoute> routes(num_nets);
  for (int i = 0; i < num_nets; ++i) {
    expect_keyword(in, "NET");
    std::string net_name = expect_token(in, "net");
    NetId net = nl.add_net(net_name);
    routes[net].net = net;

    for (;;) {
      std::string token = expect_token(in, "net body");
      if (token == "PORT") {
        std::string port_name = expect_token(in, "PORT");
        auto port = nl.find_port(port_name);
        if (!port) fail("unknown port: " + port_name);
        nl.connect(net, PinRef::port(*port));
      } else if (token == "PIN") {
        std::string cell_name = expect_token(in, "PIN");
        std::string pin_name = expect_token(in, "PIN");
        auto cell = nl.find_cell(cell_name);
        if (!cell) fail("unknown cell: " + cell_name);
        const tech::LibCell& lib = nl.lib_cell_of(*cell);
        int lib_pin = -1;
        for (std::size_t p = 0; p < lib.pins.size(); ++p) {
          if (lib.pins[p].name == pin_name) {
            lib_pin = static_cast<int>(p);
            break;
          }
        }
        if (lib_pin < 0) fail("unknown pin " + pin_name + " on " + cell_name);
        nl.connect(net, PinRef::cell_pin(*cell, lib_pin));
      } else if (token == "SEGMENTS") {
        int count = static_cast<int>(expect_int(in, "SEGMENTS"));
        for (int s = 0; s < count; ++s) {
          route::RouteSegment seg;
          seg.layer = static_cast<int>(expect_int(in, "segment"));
          seg.a.x = expect_int(in, "segment");
          seg.a.y = expect_int(in, "segment");
          seg.b.x = expect_int(in, "segment");
          seg.b.y = expect_int(in, "segment");
          routes[net].segments.push_back(seg);
        }
      } else if (token == "VIAS") {
        int count = static_cast<int>(expect_int(in, "VIAS"));
        for (int v = 0; v < count; ++v) {
          route::RouteVia via;
          via.cut = static_cast<int>(expect_int(in, "via"));
          via.at.x = expect_int(in, "via");
          via.at.y = expect_int(in, "via");
          routes[net].vias.push_back(via);
        }
        break;  // VIAS is the last section of a net
      } else {
        fail("unexpected token in net body: " + token);
      }
    }
  }
  expect_keyword(in, "END");

  design.placement = std::make_unique<place::Placement>(&nl, fp);
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    design.placement->set_cell_origin(c, cell_positions[c]);
  }

  route::RoutingGrid::Config grid_config;
  grid_config.gcell_size = gcell;
  design.grid = std::make_unique<route::RoutingGrid>(design.stack.get(), die,
                                                     grid_config);
  design.routing.routes = std::move(routes);
  for (route::NetRoute& route : design.routing.routes) {
    design.routing.total_wirelength += route.total_wirelength();
    design.routing.total_vias += static_cast<int>(route.vias.size());
  }
  return design;
}

Design read_def_string(const std::string& text,
                       const tech::CellLibrary* library) {
  std::istringstream in(text);
  return read_def(in, library);
}

}  // namespace sma::layout
