// Assembled physical design: netlist + placement + routing, and the
// end-to-end implementation flow that produces it.
//
// `run_flow` is the stand-in for the paper's Synopsys DC + Cadence Innovus
// pipeline: it takes a netlist, builds a floorplan, places (global ->
// legal -> detailed) and routes it, returning a self-contained `Design`
// whose parts reference each other with stable addresses.
#pragma once

#include <cstdint>
#include <memory>

#include "netlist/netlist.hpp"
#include "place/detailed_placer.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"
#include "route/routing_grid.hpp"
#include "runtime/thread_pool.hpp"
#include "tech/layer_stack.hpp"

namespace sma::layout {

/// Wall-clock breakdown of one flow run (diagnostic only — never part of
/// the layout content or the cache digest). The negotiation subset of
/// `route_seconds` lives in `RoutingResult::negotiation_seconds`.
struct FlowTimings {
  double global_place_seconds = 0.0;
  double legalize_seconds = 0.0;
  double detailed_place_seconds = 0.0;
  double route_seconds = 0.0;
};

/// A completed layout. Move-only; internal pointers stay valid across moves
/// because the parts live behind unique_ptr.
struct Design {
  std::unique_ptr<netlist::Netlist> netlist;
  std::unique_ptr<tech::LayerStack> stack;
  std::unique_ptr<place::Placement> placement;
  std::unique_ptr<route::RoutingGrid> grid;
  route::RoutingResult routing;
  FlowTimings timings;

  const route::NetRoute& route_of(netlist::NetId net) const {
    return routing.routes.at(net);
  }
};

/// Parameters of the implementation flow.
struct FlowConfig {
  double utilization = 0.55;
  place::GlobalPlacerConfig global_placer;
  place::DetailedPlacerConfig detailed_placer;
  route::RoutingGrid::Config grid;
  route::RouterConfig router;
  /// Master seed; placer seeds are derived from it so two flows with
  /// different seeds yield different (but statistically alike) layouts.
  std::uint64_t seed = 1;
};

/// Run placement + routing on `netlist` (consumed) and return the layout.
/// A non-null `pool` parallelizes inside placement (relaxation lanes,
/// band sorts) and routing (wave-concurrent nets); the resulting layout
/// is bit-identical at any thread count, so the pool is deliberately NOT
/// part of `FlowConfig` or the layout-cache digest.
Design run_flow(netlist::Netlist netlist, const FlowConfig& config = {},
                runtime::ThreadPool* pool = nullptr);

}  // namespace sma::layout
