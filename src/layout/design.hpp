// Assembled physical design: netlist + placement + routing, and the
// end-to-end implementation flow that produces it.
//
// `run_flow` is the stand-in for the paper's Synopsys DC + Cadence Innovus
// pipeline: it takes a netlist, builds a floorplan, places (global ->
// legal -> detailed) and routes it, returning a self-contained `Design`
// whose parts reference each other with stable addresses.
#pragma once

#include <cstdint>
#include <memory>

#include "netlist/netlist.hpp"
#include "place/detailed_placer.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"
#include "route/routing_grid.hpp"
#include "tech/layer_stack.hpp"

namespace sma::layout {

/// A completed layout. Move-only; internal pointers stay valid across moves
/// because the parts live behind unique_ptr.
struct Design {
  std::unique_ptr<netlist::Netlist> netlist;
  std::unique_ptr<tech::LayerStack> stack;
  std::unique_ptr<place::Placement> placement;
  std::unique_ptr<route::RoutingGrid> grid;
  route::RoutingResult routing;

  const route::NetRoute& route_of(netlist::NetId net) const {
    return routing.routes.at(net);
  }
};

/// Parameters of the implementation flow.
struct FlowConfig {
  double utilization = 0.55;
  place::GlobalPlacerConfig global_placer;
  place::DetailedPlacerConfig detailed_placer;
  route::RoutingGrid::Config grid;
  route::RouterConfig router;
  /// Master seed; placer seeds are derived from it so two flows with
  /// different seeds yield different (but statistically alike) layouts.
  std::uint64_t seed = 1;
};

/// Run placement + routing on `netlist` (consumed) and return the layout.
Design run_flow(netlist::Netlist netlist, const FlowConfig& config = {});

}  // namespace sma::layout
