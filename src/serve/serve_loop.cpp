#include "serve/serve_loop.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "attack/replica_set.hpp"
#include "features/vector_features.hpp"
#include "obs/obs.hpp"

namespace sma::serve {

ServeLoop::ServeLoop(attack::DlAttack& attack, ServeConfig config)
    : attack_(&attack), config_(config) {
  if (config_.max_batch < 1) {
    throw std::invalid_argument("ServeLoop: max_batch must be >= 1");
  }
  if (config_.dispatchers < 1) {
    throw std::invalid_argument("ServeLoop: dispatchers must be >= 1");
  }
  dispatchers_.reserve(static_cast<std::size_t>(config_.dispatchers));
  for (int i = 0; i < config_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_main(); });
  }
}

ServeLoop::~ServeLoop() { shutdown(); }

void ServeLoop::shutdown() {
  {
    util::MutexLock lock(mutex_);
    closed_ = true;
  }
  arrivals_.notify_all();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
}

ServeStats ServeLoop::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

void ServeLoop::prepare_dataset(attack::QueryDataset& dataset) {
  util::MutexLock lock(prep_mutex_);
  for (attack::QueryDataset* d : prepared_) {
    if (d == &dataset) return;
  }
  // One batch stacks every request into a single [planes, C, H, W]
  // tensor, so all served datasets must agree on image geometry. The
  // first dataset fixes the fleet's shape.
  if (!prepared_.empty()) {
    const attack::DatasetConfig& cfg = dataset.config();
    const attack::DatasetConfig& fleet = prepared_.front()->config();
    if (cfg.build_images != fleet.build_images ||
        (cfg.build_images &&
         (cfg.images.channels() != fleet.images.channels() ||
          cfg.images.size != fleet.images.size))) {
      throw std::invalid_argument(
          "ServeLoop: dataset image geometry differs from the serving "
          "fleet's (set by the first dataset served)");
    }
  }
  // Prebuild makes the image cache immutable, so dispatcher threads can
  // assemble batches from this dataset concurrently (read-only).
  dataset.prebuild_images();
  prepared_.push_back(&dataset);
}

attack::Selection ServeLoop::submit(attack::QueryDataset& dataset,
                                    std::size_t query) {
  prepare_dataset(dataset);
  const split::SinkQuery& q = dataset.query(query);
  if (q.candidates.empty()) {
    // The attack()-path no-op choice; never worth a queue round-trip.
    attack::Selection out;
    out.sink_fragment = q.sink_fragment;
    out.num_sinks = q.num_sinks;
    util::MutexLock lock(mutex_);
    if (closed_) {
      throw std::runtime_error("ServeLoop::submit after shutdown");
    }
    ++stats_.submitted;
    ++stats_.empty;
    return out;
  }

  Request req;
  req.dataset = &dataset;
  req.query = query;
  req.enqueue_us = obs::now_us();
  {
    util::MutexLock lock(mutex_);
    if (closed_) {
      throw std::runtime_error("ServeLoop::submit after shutdown");
    }
    ++stats_.submitted;
    queue_.push_back(&req);
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    SMA_HISTOGRAM("serve.queue_depth", queue_.size());
  }
  arrivals_.notify_all();
  {
    util::MutexLock lock(mutex_);
    while (!req.done) completions_.wait(lock);
  }
  if (!req.error.empty()) {
    if (req.lease_timeout) throw attack::AcquireTimeoutError(req.error);
    throw std::runtime_error(req.error);
  }
  return req.result;
}

void ServeLoop::dispatcher_main() {
  std::vector<Request*> batch;
  nn::BatchedQueryInput input;  // grow-only; alloc-free once warm
  while (true) {
    batch.clear();
    {
      util::MutexLock lock(mutex_);
      while (queue_.empty() && !closed_) arrivals_.wait(lock);
      if (queue_.empty()) return;  // closed and drained
      if (static_cast<int>(queue_.size()) < config_.max_batch &&
          config_.max_wait_us > 0 && !closed_) {
        // Latency budget: hold what we have and wait out the budget for
        // more arrivals, so bursts coalesce into wide batches. The
        // deadline bounds only this wait; wall-clock time never feeds a
        // model, table, or layout.
        const auto deadline =  // sma-lint: allow(entropy) cv deadline only
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(config_.max_wait_us);
        while (static_cast<int>(queue_.size()) < config_.max_batch &&
               !closed_) {
          if (arrivals_.wait_until(lock, deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      // Another dispatcher may have drained the queue while we waited.
      const std::size_t take = std::min<std::size_t>(
          queue_.size(), static_cast<std::size_t>(config_.max_batch));
      for (std::size_t k = 0; k < take; ++k) {
        batch.push_back(queue_.front());
        queue_.pop_front();
      }
      if (!batch.empty()) {
        ++stats_.batches;
        stats_.max_batch_seen = std::max(stats_.max_batch_seen, batch.size());
      }
    }
    if (batch.empty()) continue;

    SMA_HISTOGRAM("serve.batch_width", batch.size());
    const double taken_us = obs::now_us();
    for (const Request* r : batch) {
      SMA_HISTOGRAM_US("serve.queue_wait_us",
                       static_cast<std::uint64_t>(
                           std::max(0.0, taken_us - r->enqueue_us)));
    }
    process_batch(batch, input);
    {
      util::MutexLock lock(mutex_);
      for (Request* r : batch) {
        if (r->error.empty()) {
          ++stats_.answered;
        } else {
          ++stats_.failed;
        }
        r->done = true;
      }
    }
    completions_.notify_all();
  }
}

void ServeLoop::process_batch(std::vector<Request*>& batch,
                              nn::BatchedQueryInput& input) {
  SMA_TRACE_SPAN_V("serve", "batch", batch.size());
  // Metadata pass: selection header fields plus the stacked layout.
  // Empty-candidate queries are answered at submit, so every request here
  // contributes rows; the n == 0 guards below are belt-and-braces.
  input.query_rows.clear();
  int rows = 0;
  int planes = 0;
  for (Request* r : batch) {
    const split::SinkQuery& q = r->dataset->query(r->query);
    r->result.sink_fragment = q.sink_fragment;
    r->result.num_sinks = q.num_sinks;
    const int n = r->dataset->batch_rows(r->query);
    input.query_rows.push_back(n);
    if (n > 0) {
      rows += n;
      planes += n + 1;
    }
  }
  if (rows == 0) return;

  // Assemble across datasets with per-request strided fills (every
  // prepared dataset's image cache is immutable, so this only reads).
  const attack::DatasetConfig& cfg = batch.front()->dataset->config();
  const bool images = cfg.build_images;
  input.vec.resize_reuse({rows, features::kNumVectorFeatures});
  if (images) {
    input.images.resize_reuse(
        {planes, cfg.images.channels(), cfg.images.size, cfg.images.size});
  } else {
    input.images = nn::Tensor();
  }
  int r0 = 0;
  int m0 = 0;
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const int n = input.query_rows[k];
    if (n == 0) continue;
    batch[k]->dataset->fill_batch_query(batch[k]->query, input, r0, m0);
    r0 += n;
    m0 += n + 1;
  }

  try {
    // One replica per pass: the ReplicaSet is the backpressure valve. A
    // bounded set makes saturated dispatchers wait here (or time out),
    // not pile more work onto the model.
    attack::ReplicaLease lease = attack_->replicas().lease(
        1, attack_->net(), config_.lease_timeout_seconds);
    const nn::Tensor& scores = lease.nets()[0]->forward_batched(input);
    const int cols =
        scores.shape().size() == 2 && scores.dim(1) == 2 ? 2 : 1;
    const float* s = scores.data();
    int r = 0;
    for (std::size_t k = 0; k < batch.size(); ++k) {
      const int n = input.query_rows[k];
      if (n == 0) continue;
      const split::SinkQuery& q = batch[k]->dataset->query(batch[k]->query);
      const int predicted =
          nn::predict(s + static_cast<std::size_t>(r) * cols, n, cols);
      batch[k]->result.chosen_source = q.candidates[predicted].source_fragment;
      batch[k]->result.correct = q.candidates[predicted].positive;
      r += n;
    }
  } catch (const attack::AcquireTimeoutError& e) {
    SMA_COUNT("serve.lease_timeouts");
    for (Request* r : batch) {
      r->error = e.what();
      r->lease_timeout = true;
    }
  } catch (const std::exception& e) {
    for (Request* r : batch) r->error = e.what();
  }
}

}  // namespace sma::serve
