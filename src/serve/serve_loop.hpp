// Coalescing attack-serving front end (ROADMAP "batched cross-query
// inference engine + attack-serving front end").
//
// `attack()` batches queries it already holds; a serving tier faces the
// opposite shape: many concurrent callers, one query each. ServeLoop
// bridges them — callers `submit()` single queries and block; dispatcher
// threads coalesce whatever is queued into one stacked
// `AttackNet::forward_batched` pass under a latency budget (take up to
// `max_batch` requests, waiting at most `max_wait_us` once at least one
// is held). Each pass runs on ONE replica leased from the attack's
// ReplicaSet, so a bounded set backpressures the serving tier exactly as
// it does direct attack() calls — and a lease timeout propagates to every
// request of the stalled batch as AcquireTimeoutError.
//
// Determinism contract: per-query scores are byte-identical to a direct
// batch-1 `attack()` no matter how requests coalesce (the forward_batched
// contract — accumulation order is per-query), so batch composition,
// dispatcher count, and arrival timing never change any answer. Only
// latency and throughput are timing-dependent. Shutdown is deterministic
// too: every request enqueued before `shutdown()` is answered, then the
// dispatchers exit; later submits throw.
//
// Concurrency (PR-9 conventions): one annotated util::Mutex guards the
// queue/stats; waits are explicit loops with fixed deadlines. Requests
// live on their submitter's stack — the submitter blocks until `done`,
// so the pointers queued here stay valid. Datasets are registered on
// first submit (linear scan — no pointer ordering): their image caches
// are prebuilt so concurrent batch assembly only reads, and their image
// geometry is checked against the first-served dataset, since one batch
// stacks every request into a single image tensor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "attack/attack_result.hpp"
#include "attack/dataset.hpp"
#include "attack/dl_attack.hpp"
#include "nn/attack_net.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sma::serve {

struct ServeConfig {
  /// Most requests one dispatch pass coalesces into a single wide
  /// forward (the knee of BENCH_serve.json's queries/sec curve is the
  /// economical setting).
  int max_batch = 16;
  /// Latency budget: once a dispatcher holds at least one request, how
  /// long it waits for more arrivals before dispatching a partial batch.
  /// 0 dispatches whatever is queued immediately.
  std::int64_t max_wait_us = 500;
  /// Dispatcher threads draining the queue. Each leases one replica per
  /// batch, so useful parallelism is bounded by the replica cap.
  int dispatchers = 1;
  /// Forwarded to ReplicaSet::lease: < 0 waits for a replica
  /// indefinitely; >= 0 fails the whole batch with AcquireTimeoutError
  /// after that many seconds (each submitter of the batch rethrows it).
  double lease_timeout_seconds = -1.0;
};

/// Lifecycle counters, snapshot via ServeLoop::stats(). Latency and width
/// distributions go to the metrics registry instead (histograms
/// serve.batch_width, serve.queue_depth, serve.queue_wait_us — in every
/// sma-run-report-v1 metrics section alongside replica.lease_held_us).
struct ServeStats {
  long submitted = 0;      ///< submit() calls accepted
  long answered = 0;       ///< requests completed with a selection
  long failed = 0;         ///< requests completed with an error
  long empty = 0;          ///< empty-candidate queries answered inline
  long batches = 0;        ///< dispatch passes (including failed ones)
  std::size_t max_batch_seen = 0;   ///< widest coalesced batch
  std::size_t max_queue_depth = 0;  ///< deepest backlog at enqueue
};

class ServeLoop {
 public:
  /// Serves `attack`'s model. The attack (and every dataset later
  /// submitted) must outlive this loop. Dispatchers start immediately.
  ServeLoop(attack::DlAttack& attack, ServeConfig config);
  ~ServeLoop();  ///< shutdown() + join
  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  /// Serve one query of `dataset`: blocks until a dispatcher answers it,
  /// then returns the selection — byte-identical to what a batch-1
  /// attack() would have chosen. Empty-candidate queries are answered
  /// inline (the attack()-path no-op choice) without touching the queue.
  /// Throws AcquireTimeoutError when the batch that carried this request
  /// timed out waiting for a replica, std::runtime_error after
  /// shutdown(), and std::invalid_argument when `dataset`'s image
  /// geometry differs from the fleet's (set by the first dataset served).
  attack::Selection submit(attack::QueryDataset& dataset, std::size_t query)
      SMA_EXCLUDES(mutex_);

  /// Drain and stop: requests already enqueued are answered, new submits
  /// are rejected, dispatchers are joined. Idempotent; called by the
  /// destructor. Do not call concurrently with itself.
  void shutdown() SMA_EXCLUDES(mutex_);

  ServeStats stats() const SMA_EXCLUDES(mutex_);

 private:
  /// One in-flight request, owned by its blocked submitter's stack.
  struct Request {
    attack::QueryDataset* dataset = nullptr;
    std::size_t query = 0;
    double enqueue_us = 0.0;
    attack::Selection result;
    std::string error;          ///< non-empty => the request failed
    bool lease_timeout = false; ///< error is an AcquireTimeoutError
    bool done = false;
  };

  void dispatcher_main();
  /// Assemble `batch` into `input`, run one leased wide forward, and fill
  /// each request's result (or error). Runs outside the queue mutex.
  void process_batch(std::vector<Request*>& batch,
                     nn::BatchedQueryInput& input);
  /// First-submit registration: geometry check + image prebuild.
  void prepare_dataset(attack::QueryDataset& dataset)
      SMA_EXCLUDES(prep_mutex_);

  attack::DlAttack* attack_;
  ServeConfig config_;

  mutable util::Mutex mutex_;
  util::CondVar arrivals_;     ///< signaled on enqueue and on shutdown
  util::CondVar completions_;  ///< signaled when a batch's requests finish
  std::deque<Request*> queue_ SMA_GUARDED_BY(mutex_);
  bool closed_ SMA_GUARDED_BY(mutex_) = false;
  ServeStats stats_ SMA_GUARDED_BY(mutex_);

  util::Mutex prep_mutex_;
  /// Datasets with prebuilt (hence immutable, concurrently readable)
  /// image caches. A vector scanned linearly: iteration order never
  /// matters and pointer-keyed containers are banned (lint).
  std::vector<attack::QueryDataset*> prepared_ SMA_GUARDED_BY(prep_mutex_);

  /// Joined by shutdown(); only touched by the constructor and
  /// shutdown(), never by dispatchers.
  std::vector<std::thread> dispatchers_;
};

}  // namespace sma::serve
