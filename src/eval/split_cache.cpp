#include "eval/split_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "layout/def_io.hpp"
#include "tech/cell_library.hpp"
#include "util/durable_io.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace sma::eval {

namespace {

constexpr const char* kCacheFrameKind = "sma-design-cache";
constexpr std::uint32_t kCacheSchemaVersion = 1;

std::string cache_file_path(const std::string& dir, std::uint64_t key) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.sma",
                static_cast<unsigned long long>(key));
  return dir + "/" + name;
}

/// Cache-entry payload: the key (echoed; guards against a renamed file
/// serving the wrong layout) and the routing summary fields that DEF
/// re-import cannot reconstruct (read_def recomputes wirelength and via
/// counts from geometry, but overflow and fallback counts are router
/// history), followed by the DEF text itself.
std::string encode_entry(std::uint64_t key, const layout::Design& design) {
  std::string out;
  const auto append_u64 = [&out](std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_u64(key);
  append_u64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(design.routing.final_overflow)));
  append_u64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(design.routing.fallback_routes)));
  const std::string def = layout::to_def_string(design);
  append_u64(def.size());
  out.append(def);
  return out;
}

layout::Design decode_entry(const std::string& payload, std::uint64_t key,
                            const tech::CellLibrary* library) {
  std::size_t pos = 0;
  const auto read_u64 = [&payload, &pos](const char* what) {
    std::uint64_t v = 0;
    if (payload.size() - pos < sizeof(v)) {
      throw util::FrameError(std::string("cache entry truncated in ") + what);
    }
    std::memcpy(&v, payload.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };
  const std::uint64_t stored_key = read_u64("key");
  if (stored_key != key) {
    throw util::FrameError("cache entry key mismatch (file renamed?)");
  }
  const auto overflow = static_cast<std::int64_t>(read_u64("overflow"));
  const auto fallback = static_cast<std::int64_t>(read_u64("fallback count"));
  const std::uint64_t def_size = read_u64("DEF length");
  if (def_size != payload.size() - pos) {
    throw util::FrameError("cache entry DEF length mismatch");
  }
  const std::string def = payload.substr(pos);
  layout::Design design = layout::read_def_string(def, library);
  design.routing.final_overflow = static_cast<int>(overflow);
  design.routing.fallback_routes = static_cast<int>(fallback);
  return design;
}

}  // namespace

std::uint64_t design_cache_key(const netlist::DesignProfile& profile,
                               const layout::FlowConfig& flow,
                               std::uint64_t seed) {
  util::ContentHash h;
  h.add("sma-design-v1");

  h.add(profile.name)
      .add(profile.num_inputs)
      .add(profile.num_outputs)
      .add(profile.num_gates)
      .add(profile.seq_fraction)
      .add(profile.scaled_down)
      .add(profile.paper_gates);

  h.add(flow.utilization).add(flow.seed).add(seed);

  const place::GlobalPlacerConfig& gp = flow.global_placer;
  h.add(gp.rounds)
      .add(gp.iterations_per_round)
      .add(gp.pull)
      .add(gp.refine_iterations)
      .add(gp.refine_pull)
      .add(gp.seed)
      // Lane count fixes how the centroid sums associate, so it shapes
      // the layout. The thread count does NOT (bit-identical contract)
      // and is deliberately absent from this digest.
      .add(gp.relax_lanes);

  const place::DetailedPlacerConfig& dp = flow.detailed_placer;
  h.add(dp.passes)
      .add(dp.candidates)
      .add(dp.max_row_distance)
      .add(dp.max_x_distance)
      .add(dp.seed);

  const route::RoutingGrid::Config& grid = flow.grid;
  h.add(grid.gcell_size)
      .add(grid.wrongway_capacity)
      .add(grid.via_capacity)
      .add(grid.m1_capacity)
      .add(grid.m2_capacity)
      .add(grid.track_utilization);

  const route::RouterConfig& rt = flow.router;
  h.add(rt.via_cost)
      .add(rt.wrongway_mult)
      .add(rt.m1_cost_mult)
      .add(rt.present_weight)
      .add(rt.history_weight)
      .add(rt.overflow_penalty)
      .add(rt.max_iterations)
      .add(static_cast<std::uint64_t>(rt.max_expansions))
      .add(rt.layer_height_cost)
      .add(rt.promote_dist1)
      .add(rt.promote_layer1)
      .add(rt.promote_dist2)
      .add(rt.promote_layer2)
      .add(rt.promotion_penalty)
      .add(rt.promote_access_region)
      // Wave width and rip-up policy decide which nets share a usage
      // snapshot, so they shape the routes; the thread count does not
      // and is absent.
      .add(rt.wave_size)
      .add(rt.bulk_negotiation_ripup);

  return h.digest();
}

SplitCache& SplitCache::global() {
  static SplitCache& instance = []() -> SplitCache& {
    static SplitCache cache;
    const char* dir = std::getenv("SMA_CACHE_DIR");
    if (dir != nullptr && dir[0] != '\0') {
      static const tech::CellLibrary kLibrary =
          tech::CellLibrary::nangate45_like();
      cache.set_disk_dir(dir, &kLibrary);
    }
    return cache;
  }();
  return instance;
}

void SplitCache::set_disk_dir(const std::string& dir,
                              const tech::CellLibrary* library) {
  if (!dir.empty()) util::ensure_dir(dir);
  util::MutexLock lock(mutex_);
  disk_dir_ = dir;
  library_ = dir.empty() ? nullptr : library;
}

std::string SplitCache::disk_dir() const {
  util::MutexLock lock(mutex_);
  return disk_dir_;
}

std::shared_ptr<const layout::Design> SplitCache::load_from_disk(
    const std::string& dir, const tech::CellLibrary* library,
    std::uint64_t key) {
  const std::string path = cache_file_path(dir, key);
  if (!util::file_exists(path)) return nullptr;
  try {
    util::fault::point("cache.load");
    const std::string payload =
        util::read_frame_file(path, kCacheFrameKind, kCacheSchemaVersion);
    auto design = std::make_shared<layout::Design>(
        decode_entry(payload, key, library));
    util::MutexLock lock(mutex_);
    ++stats_.disk_hits;
    return design;
  } catch (util::fault::FaultInjected&) {
    throw;  // a simulated crash must crash, never degrade to a miss
  } catch (const std::exception& e) {
    // Damaged frame, foreign file, or unparseable DEF: delete it and let
    // the caller rebuild through the flow — a corrupt entry must never
    // poison a layout, and the rebuild repairs the cache via the spill.
    util::log_warn() << "discarding corrupt cache entry " << path << ": "
                     << e.what();
    std::remove(path.c_str());
    util::MutexLock lock(mutex_);
    ++stats_.disk_corrupt;
    return nullptr;
  }
}

void SplitCache::spill_to_disk(const std::string& dir, std::uint64_t key,
                               const layout::Design& design) {
  const std::string path = cache_file_path(dir, key);
  try {
    util::fault::point("cache.spill");
    util::write_frame_file(path, kCacheFrameKind, kCacheSchemaVersion,
                           encode_entry(key, design));
    util::MutexLock lock(mutex_);
    ++stats_.disk_spills;
  } catch (const util::DurableIoError& e) {
    // Spill failures (full disk, injected IO errors) degrade the cache to
    // memory-only for this entry; the run itself continues. FaultInjected
    // is not a DurableIoError and propagates.
    util::log_warn() << "cache spill failed for " << path << ": " << e.what();
  }
}

std::shared_ptr<const layout::Design> SplitCache::get_or_build(
    std::uint64_t key,
    const std::function<std::shared_ptr<const layout::Design>()>& build) {
  std::string dir;
  const tech::CellLibrary* library = nullptr;
  {
    util::MutexLock lock(mutex_);
    if (enabled_) {
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.design;
      }
      dir = disk_dir_;
      library = library_;
    }
    ++stats_.misses;
  }

  // Disk tier, probed outside the lock (file IO + DEF re-import are slow):
  // a durable entry from an earlier process is byte-identical to a fresh
  // build, so promoting it into the memory tier is just a faster build().
  std::shared_ptr<const layout::Design> design;
  const bool use_disk = !dir.empty() && library != nullptr;
  if (use_disk) design = load_from_disk(dir, library, key);

  // Build outside the lock: flows are expensive and independent builds may
  // proceed concurrently. If two threads race on the same key, both build
  // identical designs (the flow is deterministic) and the second insert is
  // a no-op — results never depend on the race.
  const bool built = design == nullptr;
  if (built) design = build();
  if (built && use_disk) spill_to_disk(dir, key, *design);

  util::MutexLock lock(mutex_);
  if (!enabled_) return design;
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second.design;
  lru_.push_front(key);
  entries_.emplace(key, Entry{design, lru_.begin()});
  evict_to_capacity_locked();
  return design;
}

void SplitCache::set_enabled(bool enabled) {
  util::MutexLock lock(mutex_);
  enabled_ = enabled;
}

bool SplitCache::enabled() const {
  util::MutexLock lock(mutex_);
  return enabled_;
}

void SplitCache::set_capacity(std::size_t capacity) {
  util::MutexLock lock(mutex_);
  capacity_ = capacity;
  evict_to_capacity_locked();
}

void SplitCache::clear() {
  util::MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_ = Stats{};
}

SplitCache::Stats SplitCache::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

std::size_t SplitCache::size() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

void SplitCache::evict_to_capacity_locked() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace sma::eval
