#include "eval/split_cache.hpp"

#include "util/hash.hpp"

namespace sma::eval {

std::uint64_t design_cache_key(const netlist::DesignProfile& profile,
                               const layout::FlowConfig& flow,
                               std::uint64_t seed) {
  util::ContentHash h;
  h.add("sma-design-v1");

  h.add(profile.name)
      .add(profile.num_inputs)
      .add(profile.num_outputs)
      .add(profile.num_gates)
      .add(profile.seq_fraction)
      .add(profile.scaled_down)
      .add(profile.paper_gates);

  h.add(flow.utilization).add(flow.seed).add(seed);

  const place::GlobalPlacerConfig& gp = flow.global_placer;
  h.add(gp.rounds)
      .add(gp.iterations_per_round)
      .add(gp.pull)
      .add(gp.refine_iterations)
      .add(gp.refine_pull)
      .add(gp.seed)
      // Lane count fixes how the centroid sums associate, so it shapes
      // the layout. The thread count does NOT (bit-identical contract)
      // and is deliberately absent from this digest.
      .add(gp.relax_lanes);

  const place::DetailedPlacerConfig& dp = flow.detailed_placer;
  h.add(dp.passes)
      .add(dp.candidates)
      .add(dp.max_row_distance)
      .add(dp.max_x_distance)
      .add(dp.seed);

  const route::RoutingGrid::Config& grid = flow.grid;
  h.add(grid.gcell_size)
      .add(grid.wrongway_capacity)
      .add(grid.via_capacity)
      .add(grid.m1_capacity)
      .add(grid.m2_capacity)
      .add(grid.track_utilization);

  const route::RouterConfig& rt = flow.router;
  h.add(rt.via_cost)
      .add(rt.wrongway_mult)
      .add(rt.m1_cost_mult)
      .add(rt.present_weight)
      .add(rt.history_weight)
      .add(rt.overflow_penalty)
      .add(rt.max_iterations)
      .add(static_cast<std::uint64_t>(rt.max_expansions))
      .add(rt.layer_height_cost)
      .add(rt.promote_dist1)
      .add(rt.promote_layer1)
      .add(rt.promote_dist2)
      .add(rt.promote_layer2)
      .add(rt.promotion_penalty)
      .add(rt.promote_access_region)
      // Wave width and rip-up policy decide which nets share a usage
      // snapshot, so they shape the routes; the thread count does not
      // and is absent.
      .add(rt.wave_size)
      .add(rt.bulk_negotiation_ripup);

  return h.digest();
}

SplitCache& SplitCache::global() {
  static SplitCache instance;
  return instance;
}

std::shared_ptr<const layout::Design> SplitCache::get_or_build(
    std::uint64_t key,
    const std::function<std::shared_ptr<const layout::Design>()>& build) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.design;
      }
    }
    ++stats_.misses;
  }

  // Build outside the lock: flows are expensive and independent builds may
  // proceed concurrently. If two threads race on the same key, both build
  // identical designs (the flow is deterministic) and the second insert is
  // a no-op — results never depend on the race.
  std::shared_ptr<const layout::Design> design = build();

  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return design;
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second.design;
  lru_.push_front(key);
  entries_.emplace(key, Entry{design, lru_.begin()});
  evict_to_capacity_locked();
  return design;
}

void SplitCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool SplitCache::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void SplitCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  evict_to_capacity_locked();
}

void SplitCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_ = Stats{};
}

SplitCache::Stats SplitCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SplitCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SplitCache::evict_to_capacity_locked() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace sma::eval
