// End-to-end experiment orchestration.
//
// Reproduces the paper's evaluation protocol: generate benchmark layouts
// with the physical-design flow, split them at M1/M3, train the DL attack
// on the training corpus, and attack each victim design with the DL attack
// and the network-flow baseline — producing the rows of Table 3 and the
// series of Figure 5.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/dl_attack.hpp"
#include "attack/flow_attack.hpp"
#include "attack/proximity_attack.hpp"
#include "layout/design.hpp"
#include "netlist/profiles.hpp"
#include "runtime/thread_pool.hpp"
#include "split/split_design.hpp"

namespace sma::eval {

/// A design taken through generation -> flow -> split, with stable
/// addresses (everything heap-allocated). The layout is shared and
/// immutable: several PreparedSplits (e.g. the same design split at
/// different layers, or the three Figure-5 settings) may reference one
/// cached `Design`.
struct PreparedSplit {
  std::string name;
  std::shared_ptr<const layout::Design> design;
  std::unique_ptr<split::SplitDesign> split;
};

/// Generate `profile` with `seed`, run the implementation flow, split.
/// The flow result is content-addressed through `SplitCache::global()`
/// (see eval/split_cache.hpp): repeated calls with the same profile, flow
/// config and seed reuse the stored layout instead of re-running
/// placement and routing. Cached and fresh results are byte-identical, so
/// every downstream number (Table 3, Figure 5, flow attack) is unchanged
/// by the cache.
///
/// A non-null `pool` parallelizes inside a cache-cold flow run (placement
/// relaxation lanes, routing waves) and fragment extraction. Layouts are
/// bit-identical at any thread count, so the pool never enters the cache
/// key — pooled and serial calls share one cache entry.
PreparedSplit prepare_split(const netlist::DesignProfile& profile,
                            int split_layer, const layout::FlowConfig& flow,
                            std::uint64_t seed,
                            runtime::ThreadPool* pool = nullptr);

/// Fast defaults for single-core experiments: 15x15 three-scale images,
/// 15 candidates, reduced conv widths. `paper_fidelity` switches to the
/// full 99x99 / 31-candidate / Table-2 configuration.
struct ExperimentProfile {
  attack::DatasetConfig dataset;
  nn::NetConfig net;
  attack::TrainConfig train;
  attack::FlowAttackConfig flow_attack;
  /// Thread count for every stage (0 = hardware concurrency). Any value
  /// yields bit-identical DL models and CCRs; only wall-clock time
  /// changes. Sole exception: network-flow attack *timeouts* are
  /// wall-clock budgets, so flow rows sitting near the timeout can flip
  /// under contention.
  runtime::Config runtime;
  /// Directory for durable experiment work units (empty = disabled). Each
  /// completed Table-3 row / Figure-5 setting is written there as a
  /// checksummed, content-addressed file keyed by a digest of the full run
  /// configuration. A rerun (same configuration) loads the completed units
  /// instead of recomputing them — when every unit is present, even
  /// training is skipped — so a killed sweep resumes where it stopped.
  /// Numeric fields round-trip as raw bit patterns: resumed and fresh
  /// results are bit-identical. A damaged unit file is detected, deleted,
  /// and recomputed.
  std::string work_dir;

  static ExperimentProfile fast();
  static ExperimentProfile paper();
};

/// One Table-3 row.
struct Table3Row {
  std::string design;
  int num_sink_fragments = 0;
  int num_source_fragments = 0;
  double flow_ccr = 0.0;       ///< NaN when timed out
  double flow_seconds = 0.0;
  bool flow_timed_out = false;
  double dl_ccr = 0.0;
  double dl_seconds = 0.0;     ///< inference + feature extraction
  double hit_rate = 0.0;       ///< candidate-list coverage (diagnostic)
  bool scaled_down = false;
};

struct Table3Result {
  std::vector<Table3Row> rows;
  double train_seconds = 0.0;
  /// Averages over rows where the flow attack finished (paper protocol).
  double avg_flow_ccr = 0.0;
  double avg_dl_ccr = 0.0;
  double avg_flow_seconds = 0.0;
  double avg_dl_seconds = 0.0;
};

/// Fill in the aggregate fields from `rows`.
void finalize_averages(Table3Result& result);

/// Train once on the training corpus, then attack every design of
/// `attack_profiles` at `split_layer`.
Table3Result run_table3(int split_layer, const ExperimentProfile& profile,
                        const layout::FlowConfig& flow,
                        const std::vector<netlist::DesignProfile>& designs,
                        std::uint64_t seed);

/// One Figure-5 bar: an attack setting and its averages over the victim
/// designs.
struct AblationRow {
  std::string setting;       ///< "two-class", "vec", "vec+img"
  double avg_ccr = 0.0;
  double avg_inference_seconds = 0.0;
};

/// Reproduce Figure 5: split at M3, compare two-class loss (vector
/// features), softmax loss (vector features), softmax loss (vector +
/// image features).
std::vector<AblationRow> run_figure5(const ExperimentProfile& profile,
                                     const layout::FlowConfig& flow,
                                     const std::vector<netlist::DesignProfile>& designs,
                                     std::uint64_t seed);

}  // namespace sma::eval
