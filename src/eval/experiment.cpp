#include "eval/experiment.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "eval/split_cache.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"
#include "util/durable_io.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sma::eval {

PreparedSplit prepare_split(const netlist::DesignProfile& profile,
                            int split_layer, const layout::FlowConfig& flow,
                            std::uint64_t seed, runtime::ThreadPool* pool) {
  static const tech::CellLibrary kLibrary = tech::CellLibrary::nangate45_like();

  SMA_TRACE_SPAN("eval", "prepare_split");
  PreparedSplit prepared;
  prepared.name = profile.name;
  // Key on the *effective* flow config (seed overrides FlowConfig::seed),
  // so configs differing only in the overridden field share one entry.
  layout::FlowConfig flow_config = flow;
  flow_config.seed = seed;
  prepared.design = SplitCache::global().get_or_build(
      design_cache_key(profile, flow_config, seed), [&] {
        netlist::Netlist nl = netlist::build_profile(profile, &kLibrary, seed);
        return std::make_shared<const layout::Design>(
            layout::run_flow(std::move(nl), flow_config, pool));
      });
  prepared.split = std::make_unique<split::SplitDesign>(prepared.design.get(),
                                                        split_layer, pool);
  return prepared;
}

ExperimentProfile ExperimentProfile::fast() {
  ExperimentProfile p;
  p.dataset.candidates.max_candidates = 15;
  p.dataset.images.size = 15;
  p.dataset.images.pixel_sizes = {100, 200, 400};
  p.net = nn::NetConfig::fast();
  p.train.epochs = 12;
  p.train.decay_every = 8;
  p.train.max_queries_per_design = 250;
  // Lane-parallel gradient accumulation; the lane count is part of the
  // profile (not the thread count), so results are machine-independent.
  p.train.batch_size = 8;
  p.flow_attack.timeout_seconds = 20.0;
  return p;
}

ExperimentProfile ExperimentProfile::paper() {
  ExperimentProfile p;
  p.dataset.candidates.max_candidates = 31;
  p.dataset.images.size = 99;
  p.dataset.images.pixel_sizes = {50, 100, 200};
  p.net = nn::NetConfig::paper();
  p.train.epochs = 60;
  p.train.decay_every = 20;
  p.train.max_queries_per_design = 0;  // all queries
  p.train.batch_size = 1;  // the paper's per-query SGD
  p.flow_attack.timeout_seconds = 100000.0;
  return p;
}

namespace {

/// Build a dataset for one prepared design under `profile`.
attack::QueryDataset make_dataset(const PreparedSplit& prepared,
                                  const ExperimentProfile& profile,
                                  bool build_images,
                                  runtime::ThreadPool* pool) {
  attack::DatasetConfig config = profile.dataset;
  config.build_images = build_images && profile.net.use_images;
  config.pool = pool;
  return attack::QueryDataset(prepared.split.get(), config);
}

/// Train a DL attack over the standard training corpus at `split_layer`.
/// Layout generation and feature extraction run per-design in parallel;
/// training itself parallelizes over gradient lanes (see DlAttack).
attack::DlAttack train_attack(int split_layer,
                              const ExperimentProfile& profile,
                              const layout::FlowConfig& flow,
                              std::uint64_t seed, double* train_seconds,
                              runtime::ThreadPool* pool) {
  util::Timer timer;
  const std::vector<netlist::DesignProfile>& profiles =
      netlist::training_profiles();

  // One task per training design covers layout generation and feature
  // extraction; designs are independent, so no barrier between stages.
  struct TrainingDesign {
    PreparedSplit prepared;
    std::unique_ptr<attack::QueryDataset> dataset;
  };
  std::vector<TrainingDesign> corpus = runtime::parallel_map(
      pool, profiles.size(), /*grain=*/1, [&](std::size_t i) {
        TrainingDesign design;
        design.prepared =
            prepare_split(profiles[i], split_layer, flow,
                          seed ^ (profiles[i].num_gates * 31ull), pool);
        design.dataset = std::make_unique<attack::QueryDataset>(
            make_dataset(design.prepared, profile, true, pool));
        return design;
      });
  std::vector<attack::QueryDataset> training;
  training.reserve(corpus.size());
  for (TrainingDesign& design : corpus) {
    training.push_back(std::move(*design.dataset));
  }
  std::vector<attack::QueryDataset> validation;  // optional; unused by default

  nn::NetConfig net_config = profile.net;
  net_config.image_channels =
      static_cast<int>(profile.dataset.images.pixel_sizes.size());
  net_config.seed ^= seed;
  attack::DlAttack dl(net_config);
  dl.train(training, validation, profile.train, pool);
  if (train_seconds != nullptr) *train_seconds = timer.seconds();
  return dl;
}

/// ------------------------------------------------------------------
/// Durable work units (ExperimentProfile::work_dir).
///
/// A unit file holds one completed, slot-addressed result (a Table-3 row
/// or a Figure-5 setting) inside a durable_io frame, keyed by a digest of
/// the full run configuration plus its slot index. Reruns load matching
/// units and skip the work; anything else (missing, damaged, or from a
/// different configuration) is recomputed and rewritten. Numeric fields
/// round-trip as raw bit patterns, so a resumed run's output is
/// bit-identical to an uninterrupted one.
/// ------------------------------------------------------------------

constexpr const char* kWorkFrameKind = "sma-work-unit";
constexpr std::uint32_t kWorkSchemaVersion = 1;

/// Fingerprint of everything that determines a run's results: the split
/// layer, the master seed, every experiment knob that feeds the dataset,
/// network, training schedule or flow attack, and — via the same digests
/// the split cache keys on — the flow configuration and every design
/// profile (training corpus and victims alike).
std::uint64_t experiment_digest(const char* what, int split_layer,
                                const ExperimentProfile& p,
                                const layout::FlowConfig& flow,
                                const std::vector<netlist::DesignProfile>& designs,
                                std::uint64_t seed) {
  util::ContentHash h;
  h.add("sma-experiment-v1").add(what).add(split_layer).add(seed);

  h.add(p.dataset.candidates.max_candidates)
      .add(p.dataset.candidates.use_direction_criterion)
      .add(p.dataset.candidates.use_non_duplication)
      .add(p.dataset.images.size)
      .add(p.dataset.images.wire_half_width)
      .add(p.dataset.build_images);
  for (std::int64_t px : p.dataset.images.pixel_sizes) h.add(px);

  h.add(p.net.vector_dim)
      .add(p.net.hidden)
      .add(p.net.vector_res_blocks)
      .add(p.net.merged_res_blocks)
      .add(p.net.use_images)
      .add(p.net.image_fc)
      .add(p.net.fc6_width)
      .add(p.net.two_class)
      .add(p.net.seed);
  for (int c : p.net.conv_channels) h.add(c);

  h.add(p.train.epochs)
      .add(p.train.decay_every)
      .add(p.train.max_queries_per_design)
      .add(p.train.batch_size)
      .add(p.train.seed)
      .add(p.train.adam.lr)
      .add(p.train.adam.beta1)
      .add(p.train.adam.beta2)
      .add(p.train.adam.eps)
      .add(p.train.adam.decay);

  h.add(p.flow_attack.candidates.max_candidates)
      .add(p.flow_attack.avg_sink_cap)
      .add(p.flow_attack.max_slots)
      .add(p.flow_attack.timeout_seconds);

  const auto add_design = [&](const netlist::DesignProfile& d,
                              std::uint64_t design_seed) {
    layout::FlowConfig flow_config = flow;
    flow_config.seed = design_seed;
    h.add(design_cache_key(d, flow_config, design_seed));
  };
  for (const netlist::DesignProfile& d : netlist::training_profiles()) {
    add_design(d, seed ^ (d.num_gates * 31ull));
  }
  h.add(designs.size());
  for (const netlist::DesignProfile& d : designs) {
    add_design(d, seed ^ 0x5151u ^ (d.num_gates * 131ull));
  }
  return h.digest();
}

std::string work_unit_path(const std::string& dir, std::uint64_t digest,
                           std::size_t slot) {
  char name[64];
  std::snprintf(name, sizeof(name), "%016llx_%03zu.sma",
                static_cast<unsigned long long>(digest), slot);
  return dir + "/" + name;
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_bits(std::string& out, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  append_u64(out, bits);
}

void append_str(std::string& out, const std::string& s) {
  append_u64(out, s.size());
  out.append(s);
}

/// Bounds-checked reader for work-unit payloads.
class WorkCursor {
 public:
  explicit WorkCursor(const std::string& bytes) : bytes_(bytes) {}

  std::uint64_t read_u64(const char* what) {
    std::uint64_t v = 0;
    if (bytes_.size() - pos_ < sizeof(v)) {
      throw util::FrameError(std::string("work unit truncated in ") + what);
    }
    std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }

  double read_bits(const char* what) {
    const std::uint64_t bits = read_u64(what);
    double d = 0.0;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  std::string read_str(const char* what) {
    const std::uint64_t size = read_u64(what);
    if (size > bytes_.size() - pos_) {
      throw util::FrameError(std::string("work unit truncated in ") + what);
    }
    std::string s(bytes_.data() + pos_, static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return s;
  }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

std::string encode_t3_row(std::uint64_t digest, std::size_t slot,
                          const Table3Row& row) {
  std::string out;
  append_u64(out, digest);
  append_u64(out, slot);
  append_str(out, row.design);
  append_u64(out, static_cast<std::uint64_t>(row.num_sink_fragments));
  append_u64(out, static_cast<std::uint64_t>(row.num_source_fragments));
  append_u64(out, (row.flow_timed_out ? 1u : 0u) |
                      (row.scaled_down ? 2u : 0u));
  append_bits(out, row.flow_ccr);
  append_bits(out, row.flow_seconds);
  append_bits(out, row.dl_ccr);
  append_bits(out, row.dl_seconds);
  append_bits(out, row.hit_rate);
  return out;
}

Table3Row decode_t3_row(const std::string& payload, std::uint64_t digest,
                        std::size_t slot) {
  WorkCursor cur(payload);
  if (cur.read_u64("digest") != digest || cur.read_u64("slot") != slot) {
    throw util::FrameError("work unit belongs to a different run or slot");
  }
  Table3Row row;
  row.design = cur.read_str("design name");
  row.num_sink_fragments = static_cast<int>(cur.read_u64("sink count"));
  row.num_source_fragments = static_cast<int>(cur.read_u64("source count"));
  const std::uint64_t flags = cur.read_u64("flags");
  row.flow_timed_out = (flags & 1u) != 0;
  row.scaled_down = (flags & 2u) != 0;
  row.flow_ccr = cur.read_bits("flow ccr");
  row.flow_seconds = cur.read_bits("flow seconds");
  row.dl_ccr = cur.read_bits("dl ccr");
  row.dl_seconds = cur.read_bits("dl seconds");
  row.hit_rate = cur.read_bits("hit rate");
  return row;
}

std::string encode_f5_row(std::uint64_t digest, std::size_t slot,
                          const AblationRow& row) {
  std::string out;
  append_u64(out, digest);
  append_u64(out, slot);
  append_str(out, row.setting);
  append_bits(out, row.avg_ccr);
  append_bits(out, row.avg_inference_seconds);
  return out;
}

AblationRow decode_f5_row(const std::string& payload, std::uint64_t digest,
                          std::size_t slot) {
  WorkCursor cur(payload);
  if (cur.read_u64("digest") != digest || cur.read_u64("slot") != slot) {
    throw util::FrameError("work unit belongs to a different run or slot");
  }
  AblationRow row;
  row.setting = cur.read_str("setting name");
  row.avg_ccr = cur.read_bits("avg ccr");
  row.avg_inference_seconds = cur.read_bits("avg inference seconds");
  return row;
}

/// Load one unit's payload, or nullopt when it is missing, damaged (the
/// file is deleted for recompute), or FaultInjected-free unreadable.
std::optional<std::string> load_work_unit(const std::string& path) {
  if (!util::file_exists(path)) return std::nullopt;
  try {
    util::fault::point("work.load");
    return util::read_frame_file(path, kWorkFrameKind, kWorkSchemaVersion);
  } catch (util::fault::FaultInjected&) {
    throw;
  } catch (const std::exception& e) {
    util::log_warn() << "discarding corrupt work unit " << path << ": "
                     << e.what();
    std::remove(path.c_str());
    return std::nullopt;
  }
}

/// Persist one unit; failure degrades to a warning (the run continues,
/// the unit is simply recomputed next time).
void save_work_unit(const std::string& path, const std::string& payload) {
  try {
    util::fault::point("work.save");
    util::write_frame_file(path, kWorkFrameKind, kWorkSchemaVersion, payload);
    SMA_COUNT("work.units_saved");
  } catch (const util::DurableIoError& e) {
    util::log_warn() << "work unit save failed for " << path << ": "
                     << e.what();
  }
}

}  // namespace

void finalize_averages(Table3Result& result) {
  int flow_rows = 0;
  double flow_ccr = 0.0;
  double flow_secs = 0.0;
  double dl_ccr_on_flow_rows = 0.0;
  double dl_ccr_all = 0.0;
  double dl_secs = 0.0;
  for (const Table3Row& row : result.rows) {
    dl_ccr_all += row.dl_ccr;
    dl_secs += row.dl_seconds;
    if (!row.flow_timed_out) {
      ++flow_rows;
      flow_ccr += row.flow_ccr;
      flow_secs += row.flow_seconds;
      dl_ccr_on_flow_rows += row.dl_ccr;
    }
  }
  (void)dl_ccr_all;
  // Paper protocol: averages exclude designs where [1] timed out.
  result.avg_flow_ccr = flow_rows > 0 ? flow_ccr / flow_rows : std::nan("");
  result.avg_dl_ccr =
      flow_rows > 0 ? dl_ccr_on_flow_rows / flow_rows : std::nan("");
  result.avg_flow_seconds =
      flow_rows > 0 ? flow_secs / flow_rows : std::nan("");
  result.avg_dl_seconds =
      result.rows.empty() ? 0.0 : dl_secs / result.rows.size();
}

Table3Result run_table3(int split_layer, const ExperimentProfile& profile,
                        const layout::FlowConfig& flow,
                        const std::vector<netlist::DesignProfile>& designs,
                        std::uint64_t seed) {
  // Durable work units: completed rows from an earlier (killed) run are
  // loaded up front; when every row is present the expensive training run
  // is skipped entirely.
  const bool use_work = !profile.work_dir.empty();
  std::uint64_t digest = 0;
  std::vector<std::optional<Table3Row>> cached(designs.size());
  if (use_work) {
    util::ensure_dir(profile.work_dir);
    digest = experiment_digest("table3", split_layer, profile, flow, designs,
                               seed);
    bool all_cached = !designs.empty();
    for (std::size_t d = 0; d < designs.size(); ++d) {
      const std::optional<std::string> payload =
          load_work_unit(work_unit_path(profile.work_dir, digest, d));
      if (payload.has_value()) {
        try {
          cached[d] = decode_t3_row(*payload, digest, d);
          SMA_COUNT("work.units_loaded");
        } catch (const util::FrameError& e) {
          util::log_warn() << "recomputing work unit " << d << ": "
                           << e.what();
        }
      }
      if (!cached[d].has_value()) all_cached = false;
    }
    if (all_cached) {
      util::log_info() << "table3 M" << split_layer << ": all "
                       << designs.size()
                       << " rows loaded from work units, skipping training";
      Table3Result result;
      for (std::size_t d = 0; d < designs.size(); ++d) {
        result.rows.push_back(std::move(*cached[d]));
      }
      finalize_averages(result);
      return result;
    }
  }

  std::unique_ptr<runtime::ThreadPool> owned_pool =
      profile.runtime.make_pool();
  runtime::ThreadPool* pool = owned_pool.get();

  Table3Result result;
  attack::DlAttack dl = train_attack(split_layer, profile, flow, seed,
                                     &result.train_seconds, pool);
  util::log_info() << "M" << split_layer << " model trained in "
                   << result.train_seconds << "s ("
                   << profile.runtime.resolved() << " threads)";

  // One task per victim design: layout generation, feature extraction,
  // both attacks. Rows land in design order; every task that touches the
  // network does so through a replica, so the rows match a serial run.
  // Caveat: with threads > 1 the per-row *_seconds are wall-clock times
  // of a contended run — use threads = 1 for paper-comparable runtimes.
  result.rows = runtime::parallel_map(
      pool, designs.size(), /*grain=*/1, [&](std::size_t d) {
        if (use_work && cached[d].has_value()) return *cached[d];
        const netlist::DesignProfile& design_profile = designs[d];
        PreparedSplit prepared = prepare_split(
            design_profile, split_layer, flow,
            seed ^ 0x5151u ^ (design_profile.num_gates * 131ull), pool);

        Table3Row row;
        row.design = design_profile.name;
        row.scaled_down = design_profile.scaled_down;
        row.num_sink_fragments =
            static_cast<int>(prepared.split->sink_fragments().size());
        row.num_source_fragments =
            static_cast<int>(prepared.split->source_fragments().size());

        // DL attack: dataset construction is feature extraction, so its
        // time counts toward the attack runtime (as in the paper).
        util::Timer dl_timer;
        attack::QueryDataset dataset =
            make_dataset(prepared, profile, true, pool);
        attack::AttackResult dl_result = dl.attack(dataset, pool);
        row.dl_ccr = dl_result.ccr;
        row.dl_seconds = dl_timer.seconds();
        row.hit_rate = dataset.candidate_hit_rate();

        attack::AttackResult flow_result =
            attack::run_flow_attack(*prepared.split, profile.flow_attack);
        row.flow_ccr = flow_result.ccr;
        row.flow_seconds = flow_result.seconds;
        row.flow_timed_out = flow_result.timed_out;

        // Log as each design completes (interleaved under parallelism,
        // but immediate — long runs need a liveness signal). Rows still
        // land in design order.
        util::log_info() << row.design << ": #Sk " << row.num_sink_fragments
                         << ", #Sc " << row.num_source_fragments << ", DL "
                         << row.dl_ccr * 100 << "% in " << row.dl_seconds
                         << "s, flow "
                         << (row.flow_timed_out
                                 ? std::string("timeout")
                                 : std::to_string(row.flow_ccr * 100) + "%")
                         << " in " << row.flow_seconds << "s";
        if (use_work) {
          save_work_unit(work_unit_path(profile.work_dir, digest, d),
                         encode_t3_row(digest, d, row));
        }
        return row;
      });

  finalize_averages(result);
  return result;
}

std::vector<AblationRow> run_figure5(
    const ExperimentProfile& profile, const layout::FlowConfig& flow,
    const std::vector<netlist::DesignProfile>& designs, std::uint64_t seed) {
  constexpr int kSplitLayer = 3;  // the paper's Figure-5 baseline is M3
  constexpr std::size_t kNumSettings = 3;

  // Durable work units, one per setting: a rerun retrains only the
  // settings whose unit is missing or damaged.
  const bool use_work = !profile.work_dir.empty();
  std::uint64_t digest = 0;
  std::vector<std::optional<AblationRow>> cached(kNumSettings);
  bool all_cached = false;
  if (use_work) {
    util::ensure_dir(profile.work_dir);
    digest =
        experiment_digest("figure5", kSplitLayer, profile, flow, designs, seed);
    all_cached = true;
    for (std::size_t s = 0; s < kNumSettings; ++s) {
      const std::optional<std::string> payload =
          load_work_unit(work_unit_path(profile.work_dir, digest, s));
      if (payload.has_value()) {
        try {
          cached[s] = decode_f5_row(*payload, digest, s);
          SMA_COUNT("work.units_loaded");
        } catch (const util::FrameError& e) {
          util::log_warn() << "recomputing work unit " << s << ": "
                           << e.what();
        }
      }
      if (!cached[s].has_value()) all_cached = false;
    }
  }
  if (all_cached) {
    util::log_info()
        << "figure5: all settings loaded from work units, skipping training";
    std::vector<AblationRow> rows;
    for (std::size_t s = 0; s < kNumSettings; ++s) {
      rows.push_back(std::move(*cached[s]));
    }
    return rows;
  }

  std::unique_ptr<runtime::ThreadPool> owned_pool =
      profile.runtime.make_pool();
  runtime::ThreadPool* pool = owned_pool.get();

  struct Setting {
    const char* name;
    bool two_class;
    bool use_images;
  };
  const Setting settings[] = {
      {"two-class", true, false},
      {"vec", false, false},
      {"vec+img", false, true},
  };

  // One setting end-to-end: train, then evaluate every victim design.
  // Each setting is fully independent (own model, own per-design
  // datasets, deterministic pipeline), so the result is the same whether
  // settings run back-to-back or concurrently.
  auto run_setting = [&](const Setting& setting) {
    ExperimentProfile variant = profile;
    variant.net.two_class = setting.two_class;
    variant.net.use_images = setting.use_images;
    // M3 corpora are small (few broken nets per design), so training can
    // afford every query and a longer schedule.
    variant.train.max_queries_per_design = 0;
    variant.train.epochs = std::max(variant.train.epochs, 36);
    variant.train.decay_every = 12;

    attack::DlAttack dl =
        train_attack(kSplitLayer, variant, flow, seed, nullptr, pool);

    struct PerDesign {
      double ccr = 0.0;
      double seconds = 0.0;
    };
    std::vector<PerDesign> per_design = runtime::parallel_map(
        pool, designs.size(), /*grain=*/1, [&](std::size_t d) {
          PreparedSplit prepared = prepare_split(
              designs[d], kSplitLayer, flow,
              seed ^ 0x5151u ^ (designs[d].num_gates * 131ull), pool);
          util::Timer timer;
          attack::QueryDataset dataset =
              make_dataset(prepared, variant, setting.use_images, pool);
          attack::AttackResult result = dl.attack(dataset, pool);
          return PerDesign{result.ccr, timer.seconds()};
        });

    // Deterministic reduction: sum in design order on this thread.
    double ccr_sum = 0.0;
    double secs_sum = 0.0;
    for (const PerDesign& p : per_design) {
      ccr_sum += p.ccr;
      secs_sum += p.seconds;
    }
    AblationRow row;
    row.setting = setting.name;
    row.avg_ccr = designs.empty() ? 0.0 : ccr_sum / designs.size();
    row.avg_inference_seconds =
        designs.empty() ? 0.0 : secs_sum / designs.size();
    util::log_info() << "figure5 " << row.setting << ": avg CCR "
                     << row.avg_ccr * 100 << "%, avg inference "
                     << row.avg_inference_seconds << "s";
    return row;
  };

  // Work-unit wrapper: a cached setting returns immediately (its training
  // run never starts); a computed one is persisted before it lands in its
  // slot.
  auto run_setting_cached = [&](std::size_t s) {
    if (use_work && cached[s].has_value()) return *cached[s];
    AblationRow row = run_setting(settings[s]);
    if (use_work) {
      save_work_unit(work_unit_path(profile.work_dir, digest, s),
                     encode_f5_row(digest, s, row));
    }
    return row;
  };

  static_assert(kNumSettings == sizeof(settings) / sizeof(settings[0]));
  std::vector<AblationRow> rows(kNumSettings);
  if (pool != nullptr) {
    // Pre-warm the split cache: all three settings want the same layouts,
    // and concurrent first requests would all miss the same key and each
    // rebuild the flow (SplitCache builds outside its lock and discards
    // duplicate inserts). One parallel pass per distinct design here means
    // the settings below hit the cache instead of racing to fill it.
    {
      const std::vector<netlist::DesignProfile>& corpus =
          netlist::training_profiles();
      runtime::parallel_for(
          pool, 0, corpus.size() + designs.size(), /*grain=*/1,
          [&](std::size_t i) {
            if (i < corpus.size()) {
              prepare_split(corpus[i], kSplitLayer, flow,
                            seed ^ (corpus[i].num_gates * 31ull), pool);
            } else {
              const netlist::DesignProfile& d = designs[i - corpus.size()];
              prepare_split(d, kSplitLayer, flow,
                            seed ^ 0x5151u ^ (d.num_gates * 131ull), pool);
            }
          });
    }
    // The three settings train as one TaskGroup: setting-level tasks keep
    // every thread busy across the serial stretches of a single training
    // run, and rows land in setting order (slot-addressed), so the output
    // matches the sequential loop row-for-row.
    runtime::TaskGroup group(pool);
    for (std::size_t s = 0; s < kNumSettings; ++s) {
      group.run(
          [s, &rows, &run_setting_cached] { rows[s] = run_setting_cached(s); });
    }
    group.wait();
  } else {
    for (std::size_t s = 0; s < kNumSettings; ++s) {
      rows[s] = run_setting_cached(s);
    }
  }
  return rows;
}

}  // namespace sma::eval
