// Content-addressed cache of implemented layouts.
//
// `prepare_split` runs the full generate -> place -> route flow, which
// dominates Table-3/Figure-5 wall time outside of training. The flow is a
// pure function of (design profile, flow config, seed), so its output can
// be content-addressed: the cache key is a digest of every field that
// feeds the generator and the flow, and a hit returns the previously
// built `layout::Design` — byte-identical to a fresh run, because the
// whole pipeline is deterministic. Splitting a cached design at a new
// layer is cheap (purely geometric), so the split layer is *not* part of
// the key: one cached layout serves M1..M5 experiments and all three
// Figure-5 settings.
//
// Designs are handed out as shared_ptr<const Design>: consumers
// (`SplitDesign`, feature extraction, the attacks) only read, so one
// cached layout may back many concurrent experiments. An LRU bound keeps
// memory in check; eviction order depends only on the call sequence, so
// cached and uncached runs stay deterministic either way.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "layout/design.hpp"
#include "netlist/profiles.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sma::tech {
class CellLibrary;
}

namespace sma::eval {

/// Digest of everything that determines a flow's output layout.
std::uint64_t design_cache_key(const netlist::DesignProfile& profile,
                               const layout::FlowConfig& flow,
                               std::uint64_t seed);

class SplitCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< memory-tier hits
    std::uint64_t misses = 0;  ///< memory-tier misses (before the disk tier)
    /// Disk tier (set_disk_dir): a disk hit is also a memory miss — the
    /// entry was loaded from a file instead of rebuilt through the flow.
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_spills = 0;  ///< entries written to the cache dir
    /// Damaged/foreign cache files detected at load, deleted, and rebuilt
    /// through the flow — a corrupt entry never poisons a layout.
    std::uint64_t disk_corrupt = 0;
  };

  /// Process-wide instance used by `prepare_split`. On first use, honors
  /// SMA_CACHE_DIR: when set (non-empty), the directory becomes this
  /// instance's durable disk tier with the standard cell library.
  static SplitCache& global();

  explicit SplitCache(std::size_t capacity = 32) : capacity_(capacity) {}

  /// Look up `key`, building (and storing) via `build` on a miss. When the
  /// cache is disabled every call builds and nothing is stored.
  std::shared_ptr<const layout::Design> get_or_build(
      std::uint64_t key,
      const std::function<std::shared_ptr<const layout::Design>()>& build)
      SMA_EXCLUDES(mutex_);

  void set_enabled(bool enabled) SMA_EXCLUDES(mutex_);
  bool enabled() const SMA_EXCLUDES(mutex_);

  /// Max resident designs; shrinking evicts immediately (LRU order).
  void set_capacity(std::size_t capacity) SMA_EXCLUDES(mutex_);

  /// Attach a durable disk tier: memory misses probe
  /// `<dir>/<key as 016x>.sma` (a checksummed durable_io frame holding the
  /// design's DEF text + routing metadata) before rebuilding, and fresh
  /// builds spill there — so layouts survive process restarts and are
  /// shared across processes. `library` resolves cell masters when
  /// re-importing DEF and must outlive this cache. A damaged or torn file
  /// is detected by the frame checksum, deleted, counted in
  /// Stats::disk_corrupt, and rebuilt through the flow; spill failures
  /// degrade to warnings (the run continues memory-only). An empty `dir`
  /// detaches the tier. The directory is created if missing; throws
  /// util::IoError when that fails.
  void set_disk_dir(const std::string& dir, const tech::CellLibrary* library)
      SMA_EXCLUDES(mutex_);
  std::string disk_dir() const SMA_EXCLUDES(mutex_);

  void clear() SMA_EXCLUDES(mutex_);
  Stats stats() const SMA_EXCLUDES(mutex_);
  std::size_t size() const SMA_EXCLUDES(mutex_);

 private:
  void evict_to_capacity_locked() SMA_REQUIRES(mutex_);
  /// Disk probe for `key` (runs outside the entry lock; IO is slow).
  /// Returns nullptr on any miss, deleting damaged files along the way.
  std::shared_ptr<const layout::Design> load_from_disk(
      const std::string& dir, const tech::CellLibrary* library,
      std::uint64_t key) SMA_EXCLUDES(mutex_);
  void spill_to_disk(const std::string& dir, std::uint64_t key,
                     const layout::Design& design) SMA_EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  bool enabled_ SMA_GUARDED_BY(mutex_) = true;
  std::size_t capacity_ SMA_GUARDED_BY(mutex_);
  std::string disk_dir_ SMA_GUARDED_BY(mutex_);
  const tech::CellLibrary* library_ SMA_GUARDED_BY(mutex_) = nullptr;
  Stats stats_ SMA_GUARDED_BY(mutex_);
  /// MRU-first key list; entries carry an iterator into it for O(1) touch.
  std::list<std::uint64_t> lru_ SMA_GUARDED_BY(mutex_);
  struct Entry {
    std::shared_ptr<const layout::Design> design;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::unordered_map<std::uint64_t, Entry> entries_ SMA_GUARDED_BY(mutex_);
};

}  // namespace sma::eval
