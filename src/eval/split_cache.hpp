// Content-addressed cache of implemented layouts.
//
// `prepare_split` runs the full generate -> place -> route flow, which
// dominates Table-3/Figure-5 wall time outside of training. The flow is a
// pure function of (design profile, flow config, seed), so its output can
// be content-addressed: the cache key is a digest of every field that
// feeds the generator and the flow, and a hit returns the previously
// built `layout::Design` — byte-identical to a fresh run, because the
// whole pipeline is deterministic. Splitting a cached design at a new
// layer is cheap (purely geometric), so the split layer is *not* part of
// the key: one cached layout serves M1..M5 experiments and all three
// Figure-5 settings.
//
// Designs are handed out as shared_ptr<const Design>: consumers
// (`SplitDesign`, feature extraction, the attacks) only read, so one
// cached layout may back many concurrent experiments. An LRU bound keeps
// memory in check; eviction order depends only on the call sequence, so
// cached and uncached runs stay deterministic either way.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "layout/design.hpp"
#include "netlist/profiles.hpp"

namespace sma::eval {

/// Digest of everything that determines a flow's output layout.
std::uint64_t design_cache_key(const netlist::DesignProfile& profile,
                               const layout::FlowConfig& flow,
                               std::uint64_t seed);

class SplitCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Process-wide instance used by `prepare_split`.
  static SplitCache& global();

  explicit SplitCache(std::size_t capacity = 32) : capacity_(capacity) {}

  /// Look up `key`, building (and storing) via `build` on a miss. When the
  /// cache is disabled every call builds and nothing is stored.
  std::shared_ptr<const layout::Design> get_or_build(
      std::uint64_t key,
      const std::function<std::shared_ptr<const layout::Design>()>& build);

  void set_enabled(bool enabled);
  bool enabled() const;

  /// Max resident designs; shrinking evicts immediately (LRU order).
  void set_capacity(std::size_t capacity);

  void clear();
  Stats stats() const;
  std::size_t size() const;

 private:
  void evict_to_capacity_locked();

  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::size_t capacity_;
  Stats stats_;
  /// MRU-first key list; entries carry an iterator into it for O(1) touch.
  std::list<std::uint64_t> lru_;
  struct Entry {
    std::shared_ptr<const layout::Design> design;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace sma::eval
