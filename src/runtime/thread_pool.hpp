// Deterministic parallel runtime.
//
// A fixed-size thread pool with a shared job queue, plus a `TaskGroup`
// for heterogeneous fork/join work. Parallelism in this codebase follows
// one contract: every parallel construct produces results bit-identical
// to the serial execution of the same code (work is decomposed into
// index-addressed tasks whose outputs land in pre-assigned slots, and
// any floating-point reduction happens on the calling thread in a fixed
// order). A null pool — or a pool of one thread — therefore degrades to
// plain serial execution with no semantic difference.
//
// Nested parallelism is safe: `TaskGroup::wait` helps drain the pool's
// queue while it blocks, so a pool task may itself fork and join on the
// same pool without deadlocking.
#pragma once

#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sma::runtime {

class ThreadPool;

/// Thread-count knob carried by experiment profiles and bench flags.
struct Config {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int threads = 0;

  /// The effective thread count (>= 1).
  int resolved() const;

  /// A pool of `resolved() - 1` workers — the calling thread participates
  /// in every parallel construct, so total compute threads == resolved().
  /// Returns nullptr when resolved() is 1: callers pass the nullptr
  /// straight through and run serially.
  std::unique_ptr<ThreadPool> make_pool() const;
};

/// Fixed-size pool of workers over one shared FIFO queue.
class ThreadPool {
 public:
  /// `threads` <= 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueue a job. Jobs must not outlive the pool.
  void submit(std::function<void()> job) SMA_EXCLUDES(mutex_);

 private:
  void worker_loop() SMA_EXCLUDES(mutex_);

  int num_threads_ = 0;
  util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::function<void()>> queue_ SMA_GUARDED_BY(mutex_);
  bool stop_ SMA_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Fork/join scope for heterogeneous jobs. `run` either enqueues on the
/// pool or — with a null pool — executes inline; `wait` blocks until all
/// jobs finish and rethrows the first exception any of them raised.
///
/// Jobs live in the group's own queue; the pool only receives stubs that
/// pull from it. A blocked `wait` therefore helps with *this group's*
/// jobs only — it never pulls unrelated work into the caller's stack (or
/// into a caller's timed region), and nested groups stay deadlock-free
/// because every waiter can always run its own queued jobs.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  /// Waits for stragglers; exceptions still pending here are dropped, so
  /// always `wait()` explicitly on the success path.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();

 private:
  /// Shared with the pool stubs, which may outlive the group (a stub
  /// whose job a blocked joiner already ran becomes a late no-op).
  struct State {
    util::Mutex mutex;
    util::CondVar cv;
    std::deque<std::function<void()>> jobs SMA_GUARDED_BY(mutex);
    int pending SMA_GUARDED_BY(mutex) = 0;
    std::exception_ptr error SMA_GUARDED_BY(mutex);

    /// Pop and run one queued job; false if none was queued.
    bool execute_one() SMA_EXCLUDES(mutex);
  };

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

}  // namespace sma::runtime
