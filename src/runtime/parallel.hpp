// Data-parallel loops over index ranges.
//
// `parallel_for` splits [begin, end) into grain-sized chunks that workers
// claim from a shared atomic counter (dynamic load balancing, in the
// spirit of tile-parallel routers). The calling thread participates, so a
// pool of N threads yields N+1-way execution of the loop body. Outputs
// must be written to index-addressed slots; under that discipline results
// are bit-identical to the serial loop for any thread count, which is the
// runtime's determinism contract.
//
// `task_rng` is the companion for stochastic bodies: every task index
// derives its own decorrelated Pcg32 stream from (seed, index) alone, so
// random draws never depend on which thread ran the task.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace sma::runtime {

/// Deterministic per-task generator: a pure function of (seed, index).
inline util::Pcg32 task_rng(std::uint64_t seed, std::uint64_t task_index) {
  return util::Pcg32(seed).fork(task_index);
}

/// A grain that aims for ~4 chunks per worker (cheap bodies should pass
/// an explicit, larger grain).
inline std::size_t default_grain(std::size_t n, const ThreadPool* pool) {
  const std::size_t workers =
      pool != nullptr ? static_cast<std::size_t>(pool->num_threads()) + 1 : 1;
  return std::max<std::size_t>(1, n / (4 * workers));
}

/// Apply `fn(i)` for every i in [begin, end). Serial when `pool` is null.
/// Rethrows the first exception thrown by any `fn` invocation; remaining
/// chunks are abandoned on error.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t grain, Fn&& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  const std::size_t num_chunks = (n + grain - 1) / grain;
  if (pool == nullptr || pool->num_threads() < 1 || num_chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  struct SharedState {
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<bool> cancelled{false};
  };
  auto state = std::make_shared<SharedState>();

  auto body = [state, begin, end, grain, num_chunks, &fn] {
    for (;;) {
      if (state->cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t c =
          state->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        state->cancelled.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  };

  const std::size_t num_workers =
      std::min<std::size_t>(static_cast<std::size_t>(pool->num_threads()),
                            num_chunks - 1);
  TaskGroup group(pool);
  for (std::size_t w = 0; w < num_workers; ++w) group.run(body);

  // The calling thread is a worker too; its exception is re-raised after
  // the join unless a pool worker failed first.
  std::exception_ptr local_error;
  try {
    body();
  } catch (...) {
    local_error = std::current_exception();
  }
  group.wait();
  if (local_error) std::rethrow_exception(local_error);
}

/// `fn(i)` -> T for i in [0, n), into slot i of the result. T must be
/// default-constructible and movable.
template <typename Fn>
auto parallel_map(ThreadPool* pool, std::size_t n, std::size_t grain, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using T = decltype(fn(std::size_t{}));
  std::vector<T> out(n);
  parallel_for(pool, 0, n, grain,
               [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// `parallel_map` with the default grain.
template <typename Fn>
auto parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  return parallel_map(pool, n, default_grain(n, pool),
                      std::forward<Fn>(fn));
}

}  // namespace sma::runtime
