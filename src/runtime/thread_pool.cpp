#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace sma::runtime {

int Config::resolved() const {
  if (threads > 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

std::unique_ptr<ThreadPool> Config::make_pool() const {
  const int n = resolved();
  if (n <= 1) return nullptr;
  return std::make_unique<ThreadPool>(n - 1);
}

ThreadPool::ThreadPool(int threads) {
  num_threads_ =
      threads > 0 ? threads
                  : static_cast<int>(
                        std::max(1u, std::thread::hardware_concurrency()));
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    util::MutexLock lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      util::MutexLock lock(mutex_);
      // Explicit loop, not a predicate lambda: the thread-safety
      // analysis cannot see a lambda body holding this lock.
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    SMA_TRACE_SPAN("pool", "task");
    SMA_COUNT("pool.tasks");
    job();
  }
}

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destruction swallows errors by necessity; the success path calls
    // wait() itself and gets them rethrown there.
  }
}

void TaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    try {
      fn();
    } catch (...) {
      util::MutexLock lock(state_->mutex);
      if (!state_->error) state_->error = std::current_exception();
    }
    return;
  }
  {
    util::MutexLock lock(state_->mutex);
    state_->jobs.push_back(std::move(fn));
    ++state_->pending;
  }
  // The stub pulls from this group's queue; it becomes a no-op when a
  // blocked joiner already executed the job. Sharing the state keeps a
  // late no-op stub safe even after the group object is gone.
  pool_->submit([state = state_] { state->execute_one(); });
}

bool TaskGroup::State::execute_one() {
  std::function<void()> fn;
  {
    util::MutexLock lock(mutex);
    if (jobs.empty()) return false;
    fn = std::move(jobs.front());
    jobs.pop_front();
  }
  SMA_TRACE_SPAN("pool", "group_job");
  SMA_COUNT("pool.group_jobs");
  try {
    fn();
  } catch (...) {
    util::MutexLock lock(mutex);
    if (!error) error = std::current_exception();
  }
  // Notify while holding the mutex, so a woken joiner cannot finish and
  // release its state reference while the cv is still being touched.
  util::MutexLock lock(mutex);
  --pending;
  cv.notify_all();
  return true;
}

void TaskGroup::wait() {
  for (;;) {
    {
      util::MutexLock lock(state_->mutex);
      if (state_->pending == 0) break;
    }
    // Help with our own queued jobs — never with unrelated pool work,
    // which would drag foreign execution into the caller's stack and
    // timed regions. Once the queue is dry the stragglers are running on
    // other threads; sleep until a completion notifies us.
    if (state_->execute_one()) continue;
    util::MutexLock lock(state_->mutex);
    while (state_->pending != 0) state_->cv.wait(lock);
  }
  util::MutexLock lock(state_->mutex);
  if (state_->error) {
    std::exception_ptr error = state_->error;
    state_->error = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace sma::runtime
