#include "place/global_placer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace sma::place {

namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::PinRef;

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// Per-lane accumulation arrays for `relax`, allocated once per placement
/// run and zeroed per iteration (the zeroing is cheap next to the net
/// traversal; keeping the arrays avoids reallocating lanes * cells
/// doubles a few hundred times per flow).
struct RelaxScratch {
  struct Lane {
    std::vector<Vec2> target;
    std::vector<double> weight;
  };
  std::vector<Lane> lanes;

  RelaxScratch(int num_lanes, std::size_t num_cells) : lanes(num_lanes) {
    for (Lane& lane : lanes) {
      lane.target.resize(num_cells);
      lane.weight.resize(num_cells);
    }
  }
};

/// One pass of centroid relaxation: every cell moves `pull` of the way
/// toward the weighted centroid of the nets it belongs to (ports act as
/// fixed anchors). This is the classic quadratic-placement fixed-point
/// iteration (Jacobi flavor: all reads see the previous iteration's
/// positions, so lanes may accumulate concurrently).
///
/// Lane l accumulates the contiguous net block [l*N/L, (l+1)*N/L) into its
/// private arrays; the per-cell reduction then adds lane partials in lane
/// order. The association of the floating-point sums is fixed by the lane
/// count alone — never by the thread count — which is what makes the
/// parallel run bit-identical to the serial one, and lanes = 1 identical
/// to the legacy single-array accumulation.
void relax(const netlist::Netlist& nl, const Placement& placement,
           std::vector<Vec2>& pos, double pull, RelaxScratch& scratch,
           runtime::ThreadPool* pool) {
  const std::size_t num_lanes = scratch.lanes.size();
  const std::size_t num_nets = static_cast<std::size_t>(nl.num_nets());
  const std::size_t num_cells = static_cast<std::size_t>(nl.num_cells());

  SMA_COUNT("place.relax_passes");
  runtime::parallel_for(pool, 0, num_lanes, /*grain=*/1, [&](std::size_t l) {
    SMA_TRACE_SPAN_V("place", "relax_lane", l);
    RelaxScratch::Lane& lane = scratch.lanes[l];
    std::fill(lane.target.begin(), lane.target.end(), Vec2{});
    std::fill(lane.weight.begin(), lane.weight.end(), 0.0);
    const NetId net_begin = static_cast<NetId>(l * num_nets / num_lanes);
    const NetId net_end = static_cast<NetId>((l + 1) * num_nets / num_lanes);

    for (NetId n = net_begin; n < net_end; ++n) {
      const netlist::Net& net = nl.net(n);
      if (net.degree() < 2) continue;
      double cx = 0.0;
      double cy = 0.0;
      int count = 0;
      auto accumulate = [&](const PinRef& pin) {
        if (pin.is_port()) {
          const util::Point& p = placement.port_location(pin.id);
          cx += static_cast<double>(p.x);
          cy += static_cast<double>(p.y);
        } else {
          cx += pos[pin.id].x;
          cy += pos[pin.id].y;
        }
        ++count;
      };
      if (net.has_driver()) accumulate(net.driver);
      for (const PinRef& sink : net.sinks) accumulate(sink);
      cx /= count;
      cy /= count;

      // Small nets pull harder than huge fanout nets.
      double w = 1.0 / static_cast<double>(net.degree() - 1);
      auto attract = [&](const PinRef& pin) {
        if (pin.is_port()) return;
        lane.target[pin.id].x += w * cx;
        lane.target[pin.id].y += w * cy;
        lane.weight[pin.id] += w;
      };
      if (net.has_driver()) attract(net.driver);
      for (const PinRef& sink : net.sinks) attract(sink);
    }
  });

  // Fixed-order lane reduction + position update, one cell per slot.
  runtime::parallel_for(
      pool, 0, num_cells, runtime::default_grain(num_cells, pool),
      [&](std::size_t c) {
        double tx = 0.0;
        double ty = 0.0;
        double w = 0.0;
        for (const RelaxScratch::Lane& lane : scratch.lanes) {
          tx += lane.target[c].x;
          ty += lane.target[c].y;
          w += lane.weight[c];
        }
        if (w <= 0.0) return;
        pos[c].x += pull * (tx / w - pos[c].x);
        pos[c].y += pull * (ty / w - pos[c].y);
      });
}

/// Order-preserving uniform spreading: cells are sorted into k x-bands of
/// equal count, and within each band sorted by y and distributed evenly.
/// Monotone in both axes, so the relaxed solution's neighbourhood
/// structure survives while density becomes uniform — the whitespace the
/// legalizer needs. Bands cover disjoint slices of `order` and the
/// comparators are strict total orders (index tie-breaks), so the
/// per-band sorts run concurrently with a unique, deterministic result.
void spread_by_rank(const Placement& placement, std::vector<Vec2>& pos,
                    runtime::ThreadPool* pool) {
  const int num_cells = static_cast<int>(pos.size());
  if (num_cells == 0) return;
  const Floorplan& fp = placement.floorplan();
  const double die_w = static_cast<double>(fp.die.width());
  const double die_h = static_cast<double>(fp.die.height());

  const int bands = std::max(1, static_cast<int>(std::lround(
                                     std::sqrt(static_cast<double>(num_cells)))));
  std::vector<int> order(num_cells);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (pos[a].x != pos[b].x) return pos[a].x < pos[b].x;
    if (pos[a].y != pos[b].y) return pos[a].y < pos[b].y;
    return a < b;
  });

  const int per_band = (num_cells + bands - 1) / bands;
  runtime::parallel_for(
      pool, 0, static_cast<std::size_t>(bands), /*grain=*/1,
      [&](std::size_t band) {
        const int begin = static_cast<int>(band) * per_band;
        const int end = std::min(num_cells, begin + per_band);
        if (begin >= end) return;
        std::sort(order.begin() + begin, order.begin() + end,
                  [&](int a, int b) {
                    if (pos[a].y != pos[b].y) return pos[a].y < pos[b].y;
                    if (pos[a].x != pos[b].x) return pos[a].x < pos[b].x;
                    return a < b;
                  });
        const double x = (band + 0.5) / bands * die_w;
        const int in_band = end - begin;
        for (int i = begin; i < end; ++i) {
          pos[order[i]].x = x;
          pos[order[i]].y = (i - begin + 0.5) / in_band * die_h;
        }
      });
}

}  // namespace

void run_global_placement(Placement& placement,
                          const GlobalPlacerConfig& config,
                          runtime::ThreadPool* pool) {
  if (config.relax_lanes < 1) {
    throw std::invalid_argument(
        "GlobalPlacerConfig::relax_lanes must be >= 1");
  }
  const netlist::Netlist& nl = placement.netlist();
  const Floorplan& fp = placement.floorplan();
  if (nl.num_cells() == 0) return;

  util::Pcg32 rng(config.seed, 0x91ac);
  const double die_w = static_cast<double>(fp.die.width());
  const double die_h = static_cast<double>(fp.die.height());

  // Initial placement: cell-id-order space-filling boustrophedon with a
  // little jitter. Netlist ids follow logic creation order, which is
  // already strongly correlated with connectivity, so this start embeds
  // the graph's "bandwidth" structure for the relaxation to refine —
  // much better than a random start for local fixed-point methods.
  std::vector<Vec2> pos(nl.num_cells());
  const int cols = std::max(1, static_cast<int>(std::lround(std::sqrt(
                                    static_cast<double>(nl.num_cells())))));
  const int rows_needed = (nl.num_cells() + cols - 1) / cols;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    int row = c / cols;
    int col = c % cols;
    if (row % 2 == 1) col = cols - 1 - col;  // snake
    pos[c].x = (col + 0.3 + 0.4 * rng.next_double()) / cols * die_w;
    pos[c].y = (row + 0.3 + 0.4 * rng.next_double()) /
               std::max(1, rows_needed) * die_h;
  }

  RelaxScratch scratch(config.relax_lanes,
                       static_cast<std::size_t>(nl.num_cells()));

  // Alternate quadratic relaxation (clusters connected cells) with
  // order-preserving spreading (restores uniform density). Early rounds
  // relax aggressively to discover global structure; later rounds make
  // smaller moves to refine it — a Kraftwerk-like schedule.
  for (int round = 0; round < config.rounds; ++round) {
    SMA_TRACE_SPAN_V("place", "round", round);
    const double t = config.rounds <= 1
                         ? 0.0
                         : static_cast<double>(round) / (config.rounds - 1);
    const double pull = config.pull * (1.0 - 0.6 * t);
    const int iters =
        std::max(2, static_cast<int>(config.iterations_per_round * (1.0 - 0.5 * t)));
    for (int iter = 0; iter < iters; ++iter) {
      relax(nl, placement, pos, pull, scratch, pool);
      for (CellId c = 0; c < nl.num_cells(); ++c) {
        pos[c].x = std::clamp(pos[c].x, 0.0, die_w - 1.0);
        pos[c].y = std::clamp(pos[c].y, 0.0, die_h - 1.0);
      }
    }
    spread_by_rank(placement, pos, pool);
  }

  // Final gentle relaxation without re-collapsing.
  for (int iter = 0; iter < config.refine_iterations; ++iter) {
    relax(nl, placement, pos, config.refine_pull, scratch, pool);
    for (CellId c = 0; c < nl.num_cells(); ++c) {
      pos[c].x = std::clamp(pos[c].x, 0.0, die_w - 1.0);
      pos[c].y = std::clamp(pos[c].y, 0.0, die_h - 1.0);
    }
  }

  for (CellId c = 0; c < nl.num_cells(); ++c) {
    placement.set_cell_origin(c,
                              {static_cast<std::int64_t>(pos[c].x),
                               static_cast<std::int64_t>(pos[c].y)});
  }
}

}  // namespace sma::place
