// Placement database: die floorplan, cell locations, port locations.
//
// The physical-design substrate of the attack. Commercial tools place
// connected cells close together to minimize wirelength — exactly the
// signal the proximity features (Sec. 3.1 of the paper) exploit — so this
// module provides an HPWL-driven flow of the same character:
// `GlobalPlacer` (force-directed, density-aware) -> `Legalizer`
// (row/site snapping) -> `DetailedPlacer` (greedy swap refinement).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/geometry.hpp"

namespace sma::place {

/// Core area geometry: `num_rows` rows of `num_sites` sites each, with the
/// die origin at (0, 0).
struct Floorplan {
  util::Rect die;
  std::int64_t row_height = 0;
  std::int64_t site_width = 0;
  int num_rows = 0;
  int num_sites = 0;

  std::int64_t row_y(int row) const { return row * row_height; }
  std::int64_t site_x(int site) const { return site * site_width; }
};

/// Size a roughly square floorplan for `netlist` at the given target row
/// utilization (0 < utilization <= 0.95).
Floorplan make_floorplan(const netlist::Netlist& netlist,
                         double utilization = 0.6);

/// Cell origins + fixed port locations over a floorplan.
///
/// Port pins are distributed around the die boundary in id order
/// (inputs: left then top edge; outputs: right then bottom edge), mimicking
/// a perimeter I/O assignment.
class Placement {
 public:
  Placement(const netlist::Netlist* netlist, Floorplan floorplan);

  const netlist::Netlist& netlist() const { return *netlist_; }
  const Floorplan& floorplan() const { return floorplan_; }

  const util::Point& cell_origin(netlist::CellId cell) const {
    return cell_origins_.at(cell);
  }
  void set_cell_origin(netlist::CellId cell, const util::Point& origin) {
    cell_origins_.at(cell) = origin;
  }

  const util::Point& port_location(netlist::PortId port) const {
    return port_locations_.at(port);
  }

  /// Absolute location of a pin: cell origin + library pin offset, or the
  /// fixed port location.
  util::Point pin_location(const netlist::PinRef& pin) const;

  /// Half-perimeter wirelength of one net (0 for degree <= 1).
  std::int64_t net_hpwl(netlist::NetId net) const;

  /// Total HPWL over all nets.
  std::int64_t total_hpwl() const;

  /// Bounding box of all pins of `net`.
  util::Rect net_bbox(netlist::NetId net) const;

  /// True if every cell is inside the die, on a row/site boundary, and no
  /// two cells overlap. `problems`, when non-null, receives diagnostics.
  bool is_legal(std::vector<std::string>* problems = nullptr) const;

 private:
  const netlist::Netlist* netlist_;
  Floorplan floorplan_;
  std::vector<util::Point> cell_origins_;
  std::vector<util::Point> port_locations_;
};

}  // namespace sma::place
