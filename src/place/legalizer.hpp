// Tetris-style row legalization.
//
// Converts the continuous global-placement result into a legal placement:
// every cell on a row, on a site boundary, inside the die, no overlaps.
// Cells are processed in x order and greedily appended to the row frontier
// that minimizes their displacement — the classic Hill "Tetris" recipe.
#pragma once

#include "place/placement.hpp"

namespace sma::place {

struct LegalizerConfig {
  /// Rows above/below the desired row to consider for each cell.
  int row_search_radius = 8;
};

/// Legalize in place. Throws std::runtime_error if the die capacity is
/// insufficient (should not happen for floorplans from `make_floorplan`).
void run_legalization(Placement& placement, const LegalizerConfig& config = {});

}  // namespace sma::place
