#include "place/detailed_placer.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace sma::place {

namespace {

using netlist::CellId;
using netlist::NetId;

/// HPWL over the nets incident to `a` and `b` (deduplicated).
std::int64_t incident_hpwl(const Placement& placement,
                           const std::vector<NetId>& nets) {
  std::int64_t total = 0;
  for (NetId n : nets) total += placement.net_hpwl(n);
  return total;
}

std::vector<NetId> nets_of(const netlist::Netlist& nl, CellId cell) {
  std::vector<NetId> nets;
  for (NetId n : nl.cell(cell).pin_nets) {
    if (n != netlist::kInvalidId) nets.push_back(n);
  }
  return nets;
}

}  // namespace

std::int64_t run_detailed_placement(Placement& placement,
                                    const DetailedPlacerConfig& config) {
  const netlist::Netlist& nl = placement.netlist();
  if (nl.num_cells() < 2) return 0;

  util::Pcg32 rng(config.seed, 0xd7a1);

  // Bucket same-width cells: only equal-width swaps keep legality trivially.
  std::vector<std::vector<CellId>> by_width;
  std::vector<std::int64_t> widths;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    std::int64_t w = nl.lib_cell_of(c).width;
    std::size_t bucket = 0;
    for (; bucket < widths.size(); ++bucket) {
      if (widths[bucket] == w) break;
    }
    if (bucket == widths.size()) {
      widths.push_back(w);
      by_width.emplace_back();
    }
    by_width[bucket].push_back(c);
  }

  const Floorplan& fp = placement.floorplan();
  std::int64_t total_gain = 0;

  for (int pass = 0; pass < config.passes; ++pass) {
    for (std::size_t bucket = 0; bucket < by_width.size(); ++bucket) {
      const auto& cells = by_width[bucket];
      if (cells.size() < 2) continue;
      for (CellId a : cells) {
        std::vector<NetId> nets_a = nets_of(nl, a);
        for (int k = 0; k < config.candidates; ++k) {
          CellId b = cells[rng.next_below(
              static_cast<std::uint32_t>(cells.size()))];
          if (a == b) continue;
          const util::Point pa = placement.cell_origin(a);
          const util::Point pb = placement.cell_origin(b);
          if (std::abs(pa.y - pb.y) >
                  config.max_row_distance * fp.row_height ||
              std::abs(pa.x - pb.x) > config.max_x_distance) {
            continue;
          }

          // Union of incident nets.
          std::vector<NetId> nets = nets_a;
          for (NetId n : nets_of(nl, b)) nets.push_back(n);
          std::sort(nets.begin(), nets.end());
          nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

          std::int64_t before = incident_hpwl(placement, nets);
          placement.set_cell_origin(a, pb);
          placement.set_cell_origin(b, pa);
          std::int64_t after = incident_hpwl(placement, nets);
          if (after < before) {
            total_gain += before - after;
          } else {
            placement.set_cell_origin(a, pa);
            placement.set_cell_origin(b, pb);
          }
        }
      }
    }
  }
  return total_gain;
}

}  // namespace sma::place
