// Global placement: quadratic relaxation + order-preserving spreading.
//
// Phase 1 iterates the quadratic-placement fixed point (every cell moves
// toward the weighted centroid of its nets; ports anchor the boundary).
// Phase 2 spreads the clustered solution to uniform density with a
// monotone rank transform (x-bands, then y within each band), preserving
// neighbourhoods. Phase 3 re-relaxes gently. The result has the
// "connected things sit near each other" structure of commercial
// placements that the proximity attack relies on.
#pragma once

#include <cstdint>

#include "place/placement.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace sma::place {

struct GlobalPlacerConfig {
  /// Relax/spread rounds (Kraftwerk-like alternation).
  int rounds = 8;
  /// Quadratic-relaxation iterations in the first round (later rounds
  /// anneal down).
  int iterations_per_round = 16;
  /// Step fraction toward the connectivity centroid per iteration.
  double pull = 0.8;
  /// Gentle post-spreading refinement.
  int refine_iterations = 4;
  double refine_pull = 0.2;
  std::uint64_t seed = 7;
  /// Accumulation lanes for the centroid relaxation: nets are split into
  /// this many contiguous blocks whose per-cell pulls accumulate into
  /// private arrays, reduced in fixed lane order (the gradient-lane
  /// pattern). Part of the algorithm — it decides how the floating-point
  /// sums associate and therefore feeds the layout-cache digest — and
  /// independent of the thread count, so any pool size is bit-identical
  /// to serial. 1 reproduces the legacy single-pass accumulation.
  int relax_lanes = 8;
};

/// Runs global placement in-place; positions are continuous (not yet
/// legalized) but inside the die. A non-null `pool` parallelizes the
/// relaxation lanes and the spreading's per-band sorts; the result is
/// bit-identical at any thread count. Throws std::invalid_argument on a
/// non-positive `relax_lanes`.
void run_global_placement(Placement& placement,
                          const GlobalPlacerConfig& config = {},
                          runtime::ThreadPool* pool = nullptr);

}  // namespace sma::place
