// Global placement: quadratic relaxation + order-preserving spreading.
//
// Phase 1 iterates the quadratic-placement fixed point (every cell moves
// toward the weighted centroid of its nets; ports anchor the boundary).
// Phase 2 spreads the clustered solution to uniform density with a
// monotone rank transform (x-bands, then y within each band), preserving
// neighbourhoods. Phase 3 re-relaxes gently. The result has the
// "connected things sit near each other" structure of commercial
// placements that the proximity attack relies on.
#pragma once

#include <cstdint>

#include "place/placement.hpp"
#include "util/rng.hpp"

namespace sma::place {

struct GlobalPlacerConfig {
  /// Relax/spread rounds (Kraftwerk-like alternation).
  int rounds = 8;
  /// Quadratic-relaxation iterations in the first round (later rounds
  /// anneal down).
  int iterations_per_round = 16;
  /// Step fraction toward the connectivity centroid per iteration.
  double pull = 0.8;
  /// Gentle post-spreading refinement.
  int refine_iterations = 4;
  double refine_pull = 0.2;
  std::uint64_t seed = 7;
};

/// Runs global placement in-place; positions are continuous (not yet
/// legalized) but inside the die.
void run_global_placement(Placement& placement,
                          const GlobalPlacerConfig& config = {});

}  // namespace sma::place
