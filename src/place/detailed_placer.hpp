// Greedy detailed placement: HPWL-reducing cell swaps on the legal layout.
//
// After legalization, neighbouring same-width cells are swapped whenever
// the swap lowers the half-perimeter wirelength of the affected nets.
// Keeps the placement legal by construction.
#pragma once

#include <cstdint>

#include "place/placement.hpp"

namespace sma::place {

struct DetailedPlacerConfig {
  int passes = 2;
  /// Candidate partners per cell and pass.
  int candidates = 6;
  /// Swap partners are drawn within this many rows / this many microns.
  int max_row_distance = 3;
  std::int64_t max_x_distance = 6000;
  std::uint64_t seed = 11;
};

/// Returns the total HPWL improvement (non-negative).
std::int64_t run_detailed_placement(Placement& placement,
                                    const DetailedPlacerConfig& config = {});

}  // namespace sma::place
