#include "place/placement.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace sma::place {

using netlist::CellId;
using netlist::NetId;
using netlist::PinRef;
using netlist::PortId;
using util::Point;
using util::Rect;

Floorplan make_floorplan(const netlist::Netlist& nl, double utilization) {
  utilization = std::clamp(utilization, 0.05, 0.95);
  std::int64_t total_width = 0;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    total_width += nl.lib_cell_of(c).width;
  }
  total_width = std::max<std::int64_t>(total_width, 1);

  Floorplan fp;
  fp.row_height = nl.library().row_height();
  fp.site_width = nl.library().site_width();

  const double cell_area =
      static_cast<double>(total_width) * static_cast<double>(fp.row_height);
  const double die_edge = std::sqrt(cell_area / utilization);
  fp.num_rows =
      std::max<int>(1, static_cast<int>(std::ceil(die_edge / fp.row_height)));
  const double row_capacity_needed =
      static_cast<double>(total_width) / utilization / fp.num_rows;
  fp.num_sites = std::max<int>(
      4, static_cast<int>(std::ceil(row_capacity_needed / fp.site_width)));
  fp.die = Rect{{0, 0},
                {fp.num_sites * fp.site_width, fp.num_rows * fp.row_height}};
  return fp;
}

Placement::Placement(const netlist::Netlist* netlist, Floorplan floorplan)
    : netlist_(netlist), floorplan_(floorplan) {
  cell_origins_.assign(netlist_->num_cells(), Point{0, 0});
  port_locations_.assign(netlist_->num_ports(), Point{0, 0});

  // Perimeter port assignment: inputs on the west and north edges, outputs
  // on the east and south edges, evenly spaced in id order.
  std::vector<PortId> inputs;
  std::vector<PortId> outputs;
  for (PortId p = 0; p < netlist_->num_ports(); ++p) {
    if (netlist_->port(p).direction == netlist::PortDirection::kInput) {
      inputs.push_back(p);
    } else {
      outputs.push_back(p);
    }
  }

  auto place_side = [&](const std::vector<PortId>& ports, bool west_east) {
    const Rect& die = floorplan_.die;
    std::size_t n = ports.size();
    for (std::size_t i = 0; i < n; ++i) {
      // First half on the vertical edge, second half on the horizontal one.
      bool vertical_edge = i < (n + 1) / 2;
      double t = vertical_edge
                     ? static_cast<double>(i + 1) / ((n + 1) / 2 + 1)
                     : static_cast<double>(i - (n + 1) / 2 + 1) /
                           (n - (n + 1) / 2 + 1);
      Point loc;
      if (vertical_edge) {
        loc.x = west_east ? die.lo.x : die.hi.x;
        loc.y = die.lo.y + static_cast<std::int64_t>(t * die.height());
      } else {
        loc.x = die.lo.x + static_cast<std::int64_t>(t * die.width());
        loc.y = west_east ? die.hi.y : die.lo.y;
      }
      port_locations_[ports[i]] = loc;
    }
  };
  place_side(inputs, /*west_east=*/true);
  place_side(outputs, /*west_east=*/false);
}

Point Placement::pin_location(const PinRef& pin) const {
  if (pin.is_port()) return port_locations_.at(pin.id);
  const netlist::Cell& cell = netlist_->cell(pin.id);
  const tech::LibCell& lib = netlist_->library().cell(cell.lib_cell);
  return cell_origins_.at(pin.id) + lib.pins.at(pin.lib_pin).offset;
}

Rect Placement::net_bbox(NetId net_id) const {
  const netlist::Net& net = netlist_->net(net_id);
  Rect box;
  if (net.has_driver()) box.expand(pin_location(net.driver));
  for (const PinRef& sink : net.sinks) box.expand(pin_location(sink));
  return box;
}

std::int64_t Placement::net_hpwl(NetId net_id) const {
  Rect box = net_bbox(net_id);
  return box.empty() ? 0 : box.half_perimeter();
}

std::int64_t Placement::total_hpwl() const {
  std::int64_t total = 0;
  for (NetId n = 0; n < netlist_->num_nets(); ++n) {
    total += net_hpwl(n);
  }
  return total;
}

bool Placement::is_legal(std::vector<std::string>* problems) const {
  bool legal = true;
  auto report = [&](const std::string& msg) {
    legal = false;
    if (problems != nullptr) problems->push_back(msg);
  };

  // Per-row interval check.
  std::vector<std::vector<std::pair<std::int64_t, CellId>>> rows(
      floorplan_.num_rows);
  for (CellId c = 0; c < netlist_->num_cells(); ++c) {
    const Point& origin = cell_origins_[c];
    std::int64_t width = netlist_->lib_cell_of(c).width;
    if (origin.y % floorplan_.row_height != 0 ||
        origin.x % floorplan_.site_width != 0) {
      report("cell off grid: " + netlist_->cell(c).name);
      continue;
    }
    int row = static_cast<int>(origin.y / floorplan_.row_height);
    if (row < 0 || row >= floorplan_.num_rows || origin.x < 0 ||
        origin.x + width > floorplan_.die.hi.x) {
      report("cell outside die: " + netlist_->cell(c).name);
      continue;
    }
    rows[row].emplace_back(origin.x, c);
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    for (std::size_t i = 1; i < row.size(); ++i) {
      CellId prev = row[i - 1].second;
      std::int64_t prev_end =
          row[i - 1].first + netlist_->lib_cell_of(prev).width;
      if (row[i].first < prev_end) {
        report("overlap between " + netlist_->cell(prev).name + " and " +
               netlist_->cell(row[i].second).name);
      }
    }
  }
  return legal;
}

}  // namespace sma::place
