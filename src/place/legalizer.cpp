#include "place/legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace sma::place {

using netlist::CellId;

// Two-phase legalization:
//   1. row assignment — cells (in y-major order) go to the nearest row
//      with remaining width capacity;
//   2. per-row packing — cells sorted by desired x are placed at their
//      desired position clamped between the row frontier and a suffix-
//      slack bound that reserves exactly enough room for the cells still
//      to come. Phase 2 cannot fail once phase 1 respects capacities, so
//      the whole procedure succeeds whenever the die can hold the cells.
void run_legalization(Placement& placement, const LegalizerConfig& config) {
  const netlist::Netlist& nl = placement.netlist();
  const Floorplan& fp = placement.floorplan();
  if (nl.num_cells() == 0) return;

  const std::int64_t row_width =
      static_cast<std::int64_t>(fp.num_sites) * fp.site_width;

  // --- phase 1: capacity-aware row assignment.
  std::vector<CellId> order(nl.num_cells());
  for (CellId c = 0; c < nl.num_cells(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    const auto& pa = placement.cell_origin(a);
    const auto& pb = placement.cell_origin(b);
    if (pa.y != pb.y) return pa.y < pb.y;
    if (pa.x != pb.x) return pa.x < pb.x;
    return a < b;
  });

  std::vector<std::int64_t> row_used(fp.num_rows, 0);
  std::vector<std::vector<CellId>> row_cells(fp.num_rows);

  for (CellId c : order) {
    const util::Point& desired = placement.cell_origin(c);
    const std::int64_t width = nl.lib_cell_of(c).width;
    int desired_row = static_cast<int>(
        std::llround(static_cast<double>(desired.y) / fp.row_height));
    desired_row = std::clamp(desired_row, 0, fp.num_rows - 1);

    int chosen = -1;
    for (int r = 0; r < fp.num_rows; ++r) {
      for (int sign : {1, -1}) {
        int row = desired_row + sign * r;
        if (sign < 0 && r == 0) continue;
        if (row < 0 || row >= fp.num_rows) continue;
        if (row_used[row] + width <= row_width) {
          chosen = row;
          break;
        }
      }
      if (chosen >= 0) break;
      if (r > config.row_search_radius && chosen >= 0) break;
    }
    if (chosen < 0) {
      throw std::runtime_error("legalizer: no capacity for cell " +
                               nl.cell(c).name);
    }
    row_used[chosen] += width;
    row_cells[chosen].push_back(c);
  }

  // --- phase 2: per-row packing with suffix slack.
  for (int row = 0; row < fp.num_rows; ++row) {
    std::vector<CellId>& cells = row_cells[row];
    std::sort(cells.begin(), cells.end(), [&](CellId a, CellId b) {
      const auto& pa = placement.cell_origin(a);
      const auto& pb = placement.cell_origin(b);
      if (pa.x != pb.x) return pa.x < pb.x;
      return a < b;
    });

    // Suffix widths: room that must stay free to the right of cell i.
    std::vector<std::int64_t> suffix(cells.size() + 1, 0);
    for (std::size_t i = cells.size(); i-- > 0;) {
      suffix[i] = suffix[i + 1] + nl.lib_cell_of(cells[i]).width;
    }

    std::int64_t frontier = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      CellId c = cells[i];
      const util::Point& desired = placement.cell_origin(c);
      // Rightmost start that still leaves room for the remaining cells;
      // row_width and all widths are site multiples, so this is aligned.
      const std::int64_t max_start = row_width - suffix[i];
      std::int64_t x =
          (desired.x + fp.site_width - 1) / fp.site_width * fp.site_width;
      x = std::clamp(x, frontier, max_start);
      placement.set_cell_origin(c, {x, fp.row_y(row)});
      frontier = x + nl.lib_cell_of(c).width;
    }
  }
}

}  // namespace sma::place
