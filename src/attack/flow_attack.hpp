// Network-flow attack baseline (Wang et al., TVLSI 2018 — reference [1] of
// the paper).
//
// Models connection recovery as min-cost max-flow on a bipartite graph:
// each sink fragment demands one unit of flow, candidate edges to source
// fragments cost their virtual-pin proximity (the placement-proximity
// heuristic), and each source fragment's capacity derives from its
// driver's maximum load capacitance — exactly the "proximity as cost,
// capacitance as capacity" formulation. Solved by successive shortest
// paths with Johnson potentials. Like the original attack, runtime grows
// steeply with design size; a wall-clock budget mirrors the paper's
// 100,000-second cap (timed-out designs report N/A).
#pragma once

#include <cstdint>

#include "attack/attack_result.hpp"
#include "split/candidates.hpp"
#include "split/split_design.hpp"

namespace sma::attack {

struct FlowAttackConfig {
  /// Candidate sources considered per sink fragment.
  split::CandidateConfig candidates{.max_candidates = 48};
  /// Assumed average sink load (fF) when converting capacitance headroom
  /// into assignment slots.
  double avg_sink_cap = 1.7;
  /// Upper bound on slots per source fragment.
  int max_slots = 64;
  /// Wall-clock budget in seconds; <= 0 means unlimited.
  double timeout_seconds = 100.0;
};

/// Run the flow attack on one split design.
AttackResult run_flow_attack(const split::SplitDesign& split,
                             const FlowAttackConfig& config = {});

}  // namespace sma::attack
