// The deep-learning attack (Secs. 4-5 of the paper).
//
// Training: per-query softmax-regression loss (or the two-class ablation
// loss) over the n candidate VPPs of each sink fragment in the training
// designs; Adam with the paper's step-decay schedule. Attacking: for every
// sink fragment of the victim design, pick the candidate with the highest
// predicted score (Eq. 2).
//
// Parallel execution: with `batch_size` > 1 training accumulates the
// gradients of a batch on fixed "lanes" — network replicas with identical
// weights, one query per lane per step — and reduces lane gradients into
// the Adam step in lane order. Lanes are scheduled on the pool but the
// lane structure (and therefore every floating-point sum) depends only on
// `batch_size`, so any thread count, including none, produces bit-identical
// models. By default (TrainConfig::fused_step) lanes share the master's
// weight tensors and each step runs the fused TrainStep engine — one
// reduce+Adam pass, no broadcast. Inference partitions queries over
// pinned shared-weight replicas (ReplicaSet); each query's scores land in
// its own slot, so parallel CCRs equal serial ones.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/attack_result.hpp"
#include "attack/dataset.hpp"
#include "attack/replica_set.hpp"
#include "nn/attack_net.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"
#include "runtime/thread_pool.hpp"

namespace sma::attack {

struct TrainConfig {
  int epochs = 24;
  nn::AdamConfig adam;        ///< lr 0.001, decay 0.6 (paper schedule)
  int decay_every = 20;       ///< epochs between lr decays
  /// Cap on training queries drawn per design per epoch (subsampling keeps
  /// single-core training tractable; 0 = use all).
  int max_queries_per_design = 400;
  /// Queries per optimizer step. 1 reproduces the paper's per-query SGD;
  /// > 1 sums gradients over the batch via parallel lanes (the effective
  /// step size grows with the batch, as with any summed minibatch, and a
  /// trailing partial batch takes a proportionally smaller step). Changing
  /// this changes the trained model — it is a training hyperparameter,
  /// not a performance knob; thread count alone never changes results.
  int batch_size = 1;
  std::uint64_t seed = 99;
  /// Report validation CCR every k epochs (0 = never).
  int validate_every = 0;
  /// Use the fused training-step engine (nn/train_step.hpp): gradient
  /// lanes share the master's weight tensors, and each optimizer step is
  /// one fused reduce+Adam pass over the parameters instead of three
  /// passes (reduce, Adam, weight broadcast). Purely a performance
  /// toggle — fused and unfused training produce byte-identical models
  /// (tests/test_train_step.cpp and bench_train assert this); `false`
  /// selects the reference three-pass path for before/after measurement.
  bool fused_step = true;
  /// Save a resumable checkpoint to `checkpoint_path` every k completed
  /// epochs (0 = never). A later `train` call with the same configuration
  /// and datasets picks the checkpoint up and continues — producing a
  /// final model byte-identical to an uninterrupted run (the durability
  /// contract tests/test_durability.cpp gates). A checkpoint from a
  /// *different* configuration or dataset is detected via an embedded
  /// digest and discarded; a damaged checkpoint file likewise falls back
  /// to a fresh start instead of failing the run.
  int checkpoint_every = 0;
  std::string checkpoint_path;
};

struct TrainStats {
  std::vector<double> epoch_loss;      ///< mean loss per epoch
  std::vector<double> validation_ccr;  ///< filled when validate_every > 0
  double seconds = 0.0;
  long queries_seen = 0;
  /// Activation-arena heap-growth events per epoch, summed over the
  /// master net and every gradient-lane replica. The first epoch warms
  /// the arenas up to the largest query shape; once every query shape of
  /// an epoch has been seen before, its entry is 0 — the alloc-free
  /// steady state bench_train and CI assert.
  std::vector<long> arena_allocs_per_epoch;
  /// Arena backing bytes pinned at the end of training (master + lanes).
  std::size_t arena_bytes_pinned = 0;
  /// Epoch index this run resumed from (0 = started fresh). On resume the
  /// per-epoch vectors above still cover the FULL run: the histories come
  /// from the checkpoint and `arena_allocs_per_epoch` is zero-padded for
  /// the skipped epochs, so every vector stays indexable by epoch.
  int resumed_from_epoch = 0;
  /// Checkpoints written by this train() call.
  long checkpoints_saved = 0;
};

class DlAttack {
 public:
  explicit DlAttack(const nn::NetConfig& net_config);
  /// Adopt an existing (e.g. deserialized) network.
  explicit DlAttack(nn::AttackNet net);

  nn::AttackNet& net() { return net_; }

  /// Train on `training` datasets; if `validation` is non-empty and
  /// `config.validate_every` > 0, track validation CCR. `pool` only
  /// changes wall-clock time, never the resulting model.
  TrainStats train(std::vector<QueryDataset>& training,
                   std::vector<QueryDataset>& validation,
                   const TrainConfig& config,
                   runtime::ThreadPool* pool = nullptr);

  /// Run inference over every query of `dataset` (runtime includes image
  /// rendering, which is part of feature extraction as in the paper).
  /// With a pool the shared network is never used directly — workers run
  /// *pinned* replicas leased from the ReplicaSet (shared read-only
  /// weights, private activation caches; no per-call clone) — so
  /// concurrent `attack` calls on one DlAttack are safe as long as every
  /// call passes a pool, and repeated calls reuse the same replicas.
  ///
  /// `batch_width` > 1 coalesces that many consecutive queries into one
  /// wide `forward_batched` pass per replica (the dataset partition stays
  /// in fixed slot order, so which replica serves a chunk never matters).
  /// Purely a performance knob: scores — and therefore selections and
  /// CCR — are byte-identical to batch_width == 1 at every width, thread
  /// count, and kernel backend (tests/test_serve.cpp, bench_serve).
  AttackResult attack(QueryDataset& dataset,
                      runtime::ThreadPool* pool = nullptr,
                      int batch_width = 1);

  /// The pinned inference replica set — the serving loop (src/serve/)
  /// leases from it directly so bounded replicas backpressure request
  /// coalescing the same way they backpressure attack() calls.
  ReplicaSet& replicas() { return *replicas_; }

  /// Replicas created by pooled attack() calls so far. Pinning means this
  /// stops growing once the set covers the worker count — the test hook
  /// for the replica-reuse contract.
  long inference_clones() const { return replicas_->clones_created(); }

  /// Aggregate activation-arena stats over the pinned inference replicas
  /// (each replica owns one arena for its lifetime; repeated attack()
  /// calls over already-seen query shapes add zero allocations).
  nn::ArenaStats inference_arena_stats() const {
    return replicas_->arena_stats();
  }

  /// Lease-lifecycle stats of the pinned replica set (leases, acquisition
  /// wait, occupancy) — the serving section of obs::RunReport.
  ReplicaSet::LeaseStats replica_lease_stats() const {
    return replicas_->lease_stats();
  }

 private:
  nn::AttackNet net_;
  /// Pinned inference replicas (heap-allocated so DlAttack stays movable;
  /// replicas reference net_'s layer objects, which have stable
  /// addresses even when the DlAttack moves).
  std::unique_ptr<ReplicaSet> replicas_;
};

}  // namespace sma::attack
