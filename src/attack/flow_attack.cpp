#include "attack/flow_attack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "features/vector_features.hpp"
#include "util/timer.hpp"

namespace sma::attack {

namespace {

/// Min-cost max-flow with successive shortest paths + Johnson potentials.
class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes)
      : graph_(num_nodes), potential_(num_nodes, 0.0) {}

  /// Returns the index of the forward edge within `from`'s adjacency list.
  int add_edge(int from, int to, int capacity, double cost) {
    graph_[from].push_back(
        {to, static_cast<int>(graph_[to].size()), capacity, cost});
    graph_[to].push_back(
        {from, static_cast<int>(graph_[from].size()) - 1, 0, -cost});
    return static_cast<int>(graph_[from].size()) - 1;
  }

  /// Push up to `max_flow` units from s to t; returns units pushed.
  /// `deadline` (seconds on `timer`) aborts long runs; returns -1 then.
  int solve(int s, int t, int max_flow, const util::Timer& timer,
            double deadline) {
    int flow = 0;
    while (flow < max_flow) {
      if (deadline > 0 && timer.seconds() > deadline) return -1;
      if (!dijkstra(s, t)) break;
      // Augment one unit (all sink demands are unit).
      int bottleneck = max_flow - flow;
      for (int v = t; v != s; v = prev_node_[v]) {
        bottleneck =
            std::min(bottleneck, graph_[prev_node_[v]][prev_edge_[v]].cap);
      }
      for (int v = t; v != s; v = prev_node_[v]) {
        Edge& e = graph_[prev_node_[v]][prev_edge_[v]];
        e.cap -= bottleneck;
        graph_[v][e.rev].cap += bottleneck;
      }
      flow += bottleneck;
    }
    return flow;
  }

  /// Remaining capacity of the i-th edge added from `from`.
  int capacity(int from, int index) const { return graph_[from][index].cap; }

 private:
  struct Edge {
    int to;
    int rev;
    int cap;
    double cost;
  };

  bool dijkstra(int s, int t) {
    const double inf = std::numeric_limits<double>::infinity();
    dist_.assign(graph_.size(), inf);
    prev_node_.assign(graph_.size(), -1);
    prev_edge_.assign(graph_.size(), -1);
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> open;
    dist_[s] = 0.0;
    open.push({0.0, s});
    while (!open.empty()) {
      auto [d, u] = open.top();
      open.pop();
      if (d > dist_[u]) continue;
      for (std::size_t i = 0; i < graph_[u].size(); ++i) {
        const Edge& e = graph_[u][i];
        if (e.cap <= 0) continue;
        double nd = d + e.cost + potential_[u] - potential_[e.to];
        if (nd < dist_[e.to] - 1e-12) {
          dist_[e.to] = nd;
          prev_node_[e.to] = u;
          prev_edge_[e.to] = static_cast<int>(i);
          open.push({nd, e.to});
        }
      }
    }
    if (dist_[t] == inf) return false;
    for (std::size_t v = 0; v < graph_.size(); ++v) {
      if (dist_[v] < inf) potential_[v] += dist_[v];
    }
    return true;
  }

  std::vector<std::vector<Edge>> graph_;
  std::vector<double> potential_;
  std::vector<double> dist_;
  std::vector<int> prev_node_;
  std::vector<int> prev_edge_;
};

}  // namespace

AttackResult run_flow_attack(const split::SplitDesign& split,
                             const FlowAttackConfig& config) {
  util::Timer timer;
  AttackResult result;
  result.attack_name = "network-flow";

  std::vector<split::SinkQuery> queries =
      split::build_queries(split, config.candidates);

  // Node numbering: 0 = S, 1..K = sinks, K+1..K+M = sources, K+M+1 = T.
  const auto& source_ids = split.source_fragments();
  const int num_sinks = static_cast<int>(queries.size());
  const int num_sources = static_cast<int>(source_ids.size());
  const int s_node = 0;
  const int t_node = num_sinks + num_sources + 1;
  std::vector<int> source_node(split.fragments().size(), -1);
  for (int j = 0; j < num_sources; ++j) {
    source_node[source_ids[j]] = num_sinks + 1 + j;
  }

  MinCostFlow flow(t_node + 1);
  for (int i = 0; i < num_sinks; ++i) {
    flow.add_edge(s_node, 1 + i, 1, 0.0);
  }
  // Source capacities from capacitance headroom.
  for (int j = 0; j < num_sources; ++j) {
    const split::Fragment& source = split.fragment(source_ids[j]);
    features::FragmentElectrical e =
        features::fragment_electrical(split, source);
    double headroom = e.driver_max_cap - e.wire_cap;
    int slots = static_cast<int>(std::floor(headroom / config.avg_sink_cap));
    slots = std::clamp(slots, 1, config.max_slots);
    flow.add_edge(num_sinks + 1 + j, t_node, slots, 0.0);
  }
  // Candidate edges, cost = Manhattan proximity of the best VPP.
  // Track (adjacency index, source fragment) for assignment readback.
  std::vector<std::vector<std::pair<int, int>>> edge_source(num_sinks);
  for (int i = 0; i < num_sinks; ++i) {
    for (const split::Vpp& vpp : queries[i].candidates) {
      const split::VirtualPin& p = split.virtual_pin(vpp.sink_vp);
      const split::VirtualPin& q = split.virtual_pin(vpp.source_vp);
      double cost =
          static_cast<double>(util::manhattan(p.location, q.location));
      int index =
          flow.add_edge(1 + i, source_node[vpp.source_fragment], 1, cost);
      edge_source[i].emplace_back(index, vpp.source_fragment);
    }
  }

  int pushed =
      flow.solve(s_node, t_node, num_sinks, timer, config.timeout_seconds);
  if (pushed < 0) {
    result.timed_out = true;
    result.seconds = timer.seconds();
    result.ccr = std::nan("");
    return result;
  }

  for (int i = 0; i < num_sinks; ++i) {
    Selection selection;
    selection.sink_fragment = queries[i].sink_fragment;
    selection.num_sinks = queries[i].num_sinks;
    // A saturated sink->source edge is the chosen assignment.
    for (const auto& [edge_index, source_fragment] : edge_source[i]) {
      if (flow.capacity(1 + i, edge_index) == 0) {
        selection.chosen_source = source_fragment;
        selection.correct =
            selection.chosen_source ==
            split.positive_source_of(selection.sink_fragment);
        break;
      }
    }
    result.selections.push_back(selection);
  }
  result.ccr = compute_ccr(result.selections);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace sma::attack
