#include "attack/dataset.hpp"

#include <algorithm>
#include <cstring>

#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace sma::attack {

QueryDataset::QueryDataset(const split::SplitDesign* split,
                           const DatasetConfig& config)
    : split_(split), config_(config) {
  SMA_TRACE_SPAN("dataset", "build");
  SMA_COUNT("dataset.builds");
  queries_ = split::build_queries(*split_, config_.candidates);
  vector_features_.resize(queries_.size());
  runtime::parallel_for(
      config_.pool, 0, queries_.size(), /*grain=*/8, [this](std::size_t i) {
        vector_features_[i].reserve(queries_[i].candidates.size());
        for (const split::Vpp& vpp : queries_[i].candidates) {
          vector_features_[i].push_back(
              features::compute_vector_features(*split_, vpp));
        }
      });
  if (config_.build_images) {
    renderer_ =
        std::make_unique<features::ImageRenderer>(split_, config_.images);
    if (config_.pool != nullptr) prebuild_images(config_.pool);
  }
}

std::vector<int> QueryDataset::referenced_pins() const {
  std::vector<int> pins;
  for (const split::SinkQuery& query : queries_) {
    for (const split::Vpp& vpp : query.candidates) {
      pins.push_back(vpp.source_vp);
    }
    if (!query.candidates.empty()) {
      const split::Fragment& sink = split_->fragment(query.sink_fragment);
      pins.push_back(sink.virtual_pins.front());
    }
  }
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  return pins;
}

void QueryDataset::prebuild_images(runtime::ThreadPool* pool) {
  if (!config_.build_images || renderer_ == nullptr) return;
  if (pool == nullptr) pool = config_.pool;

  std::vector<int> pins = referenced_pins();
  std::erase_if(pins, [this](int pin) { return image_cache_.count(pin) > 0; });
  if (pins.empty()) return;
  SMA_TRACE_SPAN_V("dataset", "render_images", pins.size());
  SMA_COUNT_N("dataset.images_rendered", pins.size());

  // Rendering is pure per pin; the cache fill stays on this thread.
  std::vector<std::vector<float>> images = runtime::parallel_map(
      pool, pins.size(), /*grain=*/1,
      [this, &pins](std::size_t i) { return renderer_->render(pins[i]); });
  for (std::size_t i = 0; i < pins.size(); ++i) {
    image_cache_.emplace(pins[i], std::move(images[i]));
  }
}

const std::vector<float>& QueryDataset::image_of(int virtual_pin) {
  auto it = image_cache_.find(virtual_pin);
  if (it == image_cache_.end()) {
    it = image_cache_.emplace(virtual_pin, renderer_->render(virtual_pin))
             .first;
  }
  return it->second;
}

nn::QueryInput QueryDataset::input(std::size_t i) {
  nn::QueryInput input;
  input_into(i, input);
  return input;
}

void QueryDataset::fill_query(std::size_t i, float* vec_dst, float* img_dst) {
  const split::SinkQuery& query = queries_.at(i);
  const int n = static_cast<int>(query.candidates.size());

  for (int j = 0; j < n; ++j) {
    std::memcpy(
        vec_dst + static_cast<std::size_t>(j) * features::kNumVectorFeatures,
        vector_features_[i][j].data(),
        sizeof(float) * features::kNumVectorFeatures);
  }

  if (img_dst != nullptr && n > 0) {
    const std::size_t per_image = renderer_->config().pixels_per_image();
    for (int j = 0; j < n; ++j) {
      const auto& source_image = image_of(query.candidates[j].source_vp);
      std::memcpy(img_dst + static_cast<std::size_t>(j) * per_image,
                  source_image.data(), sizeof(float) * per_image);
    }
    // Sink image: the sink fragment's first virtual pin represents it.
    const split::Fragment& sink = split_->fragment(query.sink_fragment);
    const auto& sink_image = image_of(sink.virtual_pins.front());
    std::memcpy(img_dst + static_cast<std::size_t>(n) * per_image,
                sink_image.data(), sizeof(float) * per_image);
  }
}

void QueryDataset::input_into(std::size_t i, nn::QueryInput& out) {
  const int n = batch_rows(i);

  // Both tensors are fully overwritten by fill_query (one memcpy per
  // row/plane covers every element), so plain resize_reuse needs no
  // zeroing and a reused QueryInput assembles without touching the heap
  // once warm.
  out.vec.resize_reuse({n, features::kNumVectorFeatures});
  const bool images = config_.build_images && renderer_ != nullptr && n > 0;
  if (images) {
    const features::ImageConfig& img = renderer_->config();
    out.images.resize_reuse({n + 1, img.channels(), img.size, img.size});
  } else {
    out.images = nn::Tensor();
  }
  fill_query(i, out.vec.data(), images ? out.images.data() : nullptr);
}

void QueryDataset::input_into_batch(std::size_t first, std::size_t count,
                                    nn::BatchedQueryInput& out) {
  out.query_rows.clear();
  out.query_rows.reserve(count);
  int rows = 0;
  int planes = 0;
  const bool images = config_.build_images && renderer_ != nullptr;
  for (std::size_t k = 0; k < count; ++k) {
    const int n = batch_rows(first + k);
    out.query_rows.push_back(n);
    if (n > 0) {
      rows += n;
      planes += n + 1;
    }
  }
  out.vec.resize_reuse({rows, features::kNumVectorFeatures});
  if (images && planes > 0) {
    const features::ImageConfig& img = renderer_->config();
    out.images.resize_reuse({planes, img.channels(), img.size, img.size});
  } else {
    out.images = nn::Tensor();
  }
  int r = 0;
  int m = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const int n = out.query_rows[k];
    if (n == 0) continue;
    fill_batch_query(first + k, out, r, m);
    r += n;
    m += n + 1;
  }
}

void QueryDataset::fill_batch_query(std::size_t i, nn::BatchedQueryInput& out,
                                    int row0, int plane0) {
  const int n = batch_rows(i);
  float* vec_dst =
      out.vec.data() +
      static_cast<std::size_t>(row0) * features::kNumVectorFeatures;
  float* img_dst = nullptr;
  if (config_.build_images && renderer_ != nullptr && n > 0) {
    img_dst = out.images.data() + static_cast<std::size_t>(plane0) *
                                      renderer_->config().pixels_per_image();
  }
  fill_query(i, vec_dst, img_dst);
}

}  // namespace sma::attack
