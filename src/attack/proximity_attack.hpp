// Naive proximity attack (Rajendran et al., DATE 2013 — reference [8]).
//
// Connects every sink fragment to the closest candidate source fragment by
// Manhattan distance between virtual pins. This is the floor every smarter
// attack is measured against, and the configuration the network-flow
// attack degenerates to when capacitance constraints are loose.
#pragma once

#include "attack/attack_result.hpp"
#include "split/candidates.hpp"
#include "split/split_design.hpp"

namespace sma::attack {

struct ProximityAttackConfig {
  split::CandidateConfig candidates{.max_candidates = 48};
};

AttackResult run_proximity_attack(const split::SplitDesign& split,
                                  const ProximityAttackConfig& config = {});

}  // namespace sma::attack
