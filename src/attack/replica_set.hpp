// Pinned inference replicas (ROADMAP "batched inference serving").
//
// Before this existed, every pooled `DlAttack::attack()` call cloned a
// fresh network replica per worker — a full weight copy plus a full
// random re-initialization, repeated for every validation pass and every
// victim design. A `ReplicaSet` instead pins replicas for the lifetime of
// the attack object: each replica is an `AttackNet::clone_shared()` that
// *reads the master's weight tensors* (one weight copy total, zero
// synchronization — a master weight update is immediately visible to all
// replicas) while keeping private activation caches, so concurrent
// workers never race.
//
// Concurrency model: replicas are handed out through exclusive leases.
// Sequential `attack()` calls reuse the same pinned replicas; concurrent
// calls (e.g. parallel per-design evaluation) lease disjoint ones, and
// the set only grows when every pinned replica is already on loan.
// Determinism is untouched: shared weights make all replicas numerically
// identical, and outputs land in index-addressed slots, so *which*
// replica serves a chunk never matters.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>
#include <vector>

#include "nn/arena.hpp"
#include "nn/attack_net.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sma::attack {

/// A bounded `ReplicaSet::lease` gave up waiting for free replicas before
/// its deadline. Typed so callers can tell "the serving tier is saturated"
/// apart from every other runtime_error and shed load deliberately.
class AcquireTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ReplicaSet;

/// Exclusive use of `nets` until destruction (returns them to the set).
class ReplicaLease {
 public:
  ReplicaLease(ReplicaSet* set, std::vector<nn::AttackNet*> nets,
               std::vector<std::size_t> indices, std::size_t lease_id);
  ~ReplicaLease();
  ReplicaLease(const ReplicaLease&) = delete;
  ReplicaLease& operator=(const ReplicaLease&) = delete;

  const std::vector<nn::AttackNet*>& nets() const { return nets_; }

 private:
  ReplicaSet* set_;
  std::vector<nn::AttackNet*> nets_;
  std::vector<std::size_t> indices_;
  /// Slot in the set's live-lease table (birth time + replica count live
  /// there, so occupancy snapshots can see leases still in flight).
  std::size_t lease_id_ = 0;
};

class ReplicaSet {
 public:
  /// Lease-lifecycle accounting for the run report: how often replicas
  /// were leased, how long callers waited to acquire the set (mutex
  /// contention between concurrent attack() calls), and the summed
  /// lease lifetimes (occupancy — replica-seconds on loan).
  struct LeaseStats {
    long leases = 0;            ///< lease() calls completed
    long replicas_leased = 0;   ///< replicas handed out, summed over leases
    long clones_created = 0;    ///< replicas ever constructed
    std::size_t max_on_loan = 0;  ///< peak concurrently leased replicas
    double wait_seconds = 0.0;    ///< summed time to acquire the set
    /// Summed replica-seconds on loan. Includes leases still live at the
    /// snapshot (their occupancy so far), so a serving loop's mid-flight
    /// numbers are honest rather than lagging one lease behind.
    double occupancy_seconds = 0.0;
    long timeouts = 0;            ///< lease() deadlines missed (bounded sets)
  };

  /// Lease `n` replicas of `master` for exclusive use. Grows the set (via
  /// `master.clone_shared()`) only when fewer than `n` replicas are free;
  /// the master is passed per call rather than stored so the owning
  /// object stays movable (pinned replicas reference the master's layer
  /// objects, which live behind stable heap storage).
  ///
  /// With a replica bound (`set_max_replicas`) the call BLOCKS while the
  /// bound leaves fewer than `n` replicas obtainable, until concurrent
  /// leases release. `timeout_seconds` caps that wait: < 0 waits
  /// indefinitely (the default), >= 0 throws AcquireTimeoutError once the
  /// deadline passes without acquisition (counted in
  /// LeaseStats::timeouts). Requesting `n` larger than the bound can
  /// never succeed and throws std::invalid_argument immediately.
  /// Unbounded sets (the default) never block and never time out.
  ReplicaLease lease(std::size_t n, nn::AttackNet& master,
                     double timeout_seconds = -1.0) SMA_EXCLUDES(mutex_);

  /// Bound the set to `cap` pinned replicas (0 = unbounded, the default).
  /// Bounds memory on wide machines: each pinned replica carries private
  /// activation arenas even though weights are shared. Shrinking below
  /// the current size keeps existing replicas but stops growth.
  void set_max_replicas(std::size_t cap) SMA_EXCLUDES(mutex_);
  std::size_t max_replicas() const SMA_EXCLUDES(mutex_);

  /// Replicas ever created — a monotone counter tests use to prove that
  /// repeated attack() calls reuse pinned replicas instead of cloning.
  long clones_created() const SMA_EXCLUDES(mutex_);

  /// Lease-lifecycle stats since construction (see LeaseStats). Safe to
  /// read while leases are live: `occupancy_seconds` and `max_on_loan`
  /// both reflect in-flight leases as of the snapshot.
  LeaseStats lease_stats() const SMA_EXCLUDES(mutex_);

  /// Aggregate activation-arena stats over every pinned replica. Each
  /// replica owns one arena for its lifetime, so repeated attack() calls
  /// over already-seen query shapes leave `allocs` unchanged — the
  /// serving-side half of the alloc-free steady-state contract. Arenas
  /// are single-owner: call this between attack() calls, not while a
  /// lease is live (a working replica mutates its arena unsynchronized).
  nn::ArenaStats arena_stats() const SMA_EXCLUDES(mutex_);

 private:
  friend class ReplicaLease;
  void release(const std::vector<std::size_t>& indices, std::size_t lease_id)
      SMA_EXCLUDES(mutex_);

  /// Free pinned replicas plus headroom to clone under the bound.
  std::size_t obtainable_locked() const SMA_REQUIRES(mutex_);

  /// One in-flight lease: birth time and replica count, kept in the set
  /// (not the lease object) so stat snapshots can account for it while
  /// it is still on loan.
  struct LiveLease {
    double start_us = 0.0;
    std::size_t replicas = 0;
    bool active = false;
  };

  mutable util::Mutex mutex_;
  util::CondVar available_;  ///< signaled on every release
  /// Deque: growth keeps addresses stable for live leases.
  std::deque<nn::AttackNet> replicas_ SMA_GUARDED_BY(mutex_);
  std::vector<bool> on_loan_ SMA_GUARDED_BY(mutex_);
  long clones_created_ SMA_GUARDED_BY(mutex_) = 0;
  LeaseStats stats_ SMA_GUARDED_BY(mutex_);
  std::size_t on_loan_now_ SMA_GUARDED_BY(mutex_) = 0;
  std::size_t max_replicas_ SMA_GUARDED_BY(mutex_) = 0;  ///< 0 = unbounded
  /// Live-lease table, slot-addressed by ReplicaLease::lease_id_ with a
  /// free list for reuse (bounded by peak lease concurrency).
  std::vector<LiveLease> live_ SMA_GUARDED_BY(mutex_);
  std::vector<std::size_t> live_free_ SMA_GUARDED_BY(mutex_);
};

}  // namespace sma::attack
