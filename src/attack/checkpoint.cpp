#include "attack/checkpoint.hpp"

#include <atomic>
#include <cstring>
#include <string>

#include "util/durable_io.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace sma::attack {

namespace {

constexpr const char* kFrameKind = "sma-train-ckpt";
constexpr std::uint32_t kSchemaVersion = 1;

std::atomic<long> g_saves{0};
std::atomic<long> g_resumes{0};
std::atomic<long> g_corrupt_discards{0};

void append_pod(std::string& out, const void* data, std::size_t size) {
  // data may be an empty vector's null data(); append requires a valid range.
  if (size > 0) out.append(static_cast<const char*>(data), size);
}

void append_u64(std::string& out, std::uint64_t v) {
  append_pod(out, &v, sizeof(v));
}

void append_doubles(std::string& out, const std::vector<double>& v) {
  append_u64(out, v.size());
  append_pod(out, v.data(), v.size() * sizeof(double));
}

/// Bounds-checked sequential reader over a payload. Doubles round-trip as
/// raw bit patterns, so histories compare bit-equal across save/load.
class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

  void read(void* into, std::size_t size, const char* what) {
    if (bytes_.size() - pos_ < size) {
      throw util::FrameError(std::string("checkpoint payload truncated in ") +
                             what);
    }
    // An empty vector's data() may be null, and memcpy's pointer args are
    // declared nonnull even for size 0.
    if (size > 0) std::memcpy(into, bytes_.data() + pos_, size);
    pos_ += size;
  }

  std::uint64_t read_u64(const char* what) {
    std::uint64_t v = 0;
    read(&v, sizeof(v), what);
    return v;
  }

  std::vector<double> read_doubles(const char* what) {
    const std::uint64_t count = read_u64(what);
    if (count > (bytes_.size() - pos_) / sizeof(double)) {
      throw util::FrameError(std::string("checkpoint payload truncated in ") +
                             what);
    }
    std::vector<double> v(static_cast<std::size_t>(count));
    read(v.data(), v.size() * sizeof(double), what);
    return v;
  }

  std::string read_blob(const char* what) {
    const std::uint64_t size = read_u64(what);
    if (size > bytes_.size() - pos_) {
      throw util::FrameError(std::string("checkpoint payload truncated in ") +
                             what);
    }
    std::string blob(bytes_.data() + pos_, static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return blob;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_params(const std::vector<nn::Param>& params) {
  std::string out;
  append_u64(out, params.size());
  for (const nn::Param& p : params) {
    append_u64(out, p.value->size());
    append_pod(out, p.value->data(), p.value->size() * sizeof(float));
  }
  return out;
}

void decode_params(const std::string& blob, std::vector<nn::Param>& params) {
  Cursor cur(blob);
  const std::uint64_t count = cur.read_u64("parameter count");
  if (count != params.size()) {
    throw util::FrameError("checkpoint parameter count mismatch: blob has " +
                           std::to_string(count) + ", model has " +
                           std::to_string(params.size()));
  }
  // Validate every size before touching any tensor, so a bad blob leaves
  // the model unchanged. Two passes over an in-memory string are cheap.
  std::vector<std::size_t> offsets(params.size());
  {
    Cursor scan(blob);
    scan.read_u64("parameter count");
    std::size_t offset = sizeof(std::uint64_t);
    for (std::size_t i = 0; i < params.size(); ++i) {
      const std::uint64_t size = scan.read_u64(params[i].name.c_str());
      if (size != params[i].value->size()) {
        throw util::FrameError(
            "checkpoint size mismatch for " + params[i].name + ": blob has " +
            std::to_string(size) + " floats, model expects " +
            std::to_string(params[i].value->size()));
      }
      offset += sizeof(std::uint64_t);
      offsets[i] = offset;
      std::vector<float> discard(static_cast<std::size_t>(size));
      scan.read(discard.data(), discard.size() * sizeof(float),
                params[i].name.c_str());
      offset += static_cast<std::size_t>(size) * sizeof(float);
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::memcpy(params[i].value->data(), blob.data() + offsets[i],
                params[i].value->size() * sizeof(float));
  }
}

std::string encode_checkpoint(const TrainCheckpoint& ckpt) {
  std::string out;
  append_u64(out, ckpt.compat_digest);
  append_u64(out, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(ckpt.epochs_done)));
  append_u64(out, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(ckpt.queries_seen)));
  append_u64(out, ckpt.rng.state);
  append_u64(out, ckpt.rng.inc);
  append_doubles(out, ckpt.epoch_loss);
  append_doubles(out, ckpt.validation_ccr);
  append_u64(out, ckpt.model_blob.size());
  out.append(ckpt.model_blob);
  append_u64(out, ckpt.adam_blob.size());
  out.append(ckpt.adam_blob);
  return out;
}

TrainCheckpoint decode_checkpoint(const std::string& payload) {
  Cursor cur(payload);
  TrainCheckpoint ckpt;
  ckpt.compat_digest = cur.read_u64("compat digest");
  ckpt.epochs_done = static_cast<int>(
      static_cast<std::int64_t>(cur.read_u64("epoch counter")));
  ckpt.queries_seen =
      static_cast<long>(static_cast<std::int64_t>(cur.read_u64("query count")));
  if (ckpt.epochs_done < 0 || ckpt.queries_seen < 0) {
    throw util::FrameError("checkpoint payload has negative counters");
  }
  ckpt.rng.state = cur.read_u64("rng state");
  ckpt.rng.inc = cur.read_u64("rng stream");
  ckpt.epoch_loss = cur.read_doubles("epoch losses");
  ckpt.validation_ccr = cur.read_doubles("validation history");
  ckpt.model_blob = cur.read_blob("model weights");
  ckpt.adam_blob = cur.read_blob("optimizer state");
  if (!cur.done()) {
    throw util::FrameError("checkpoint payload has trailing bytes");
  }
  return ckpt;
}

void save_checkpoint(const std::string& path, const TrainCheckpoint& ckpt) {
  // A crash here must leave the previous checkpoint file untouched.
  util::fault::point("checkpoint.save");
  util::write_frame_file(path, kFrameKind, kSchemaVersion,
                         encode_checkpoint(ckpt));
  g_saves.fetch_add(1, std::memory_order_relaxed);
  // A crash here must leave the NEW checkpoint valid (rename completed).
  util::fault::point("checkpoint.saved");
}

bool try_load_checkpoint(const std::string& path, std::uint64_t expect_digest,
                         TrainCheckpoint* out) {
  if (!util::file_exists(path)) return false;
  TrainCheckpoint ckpt;
  try {
    const std::string payload =
        util::read_frame_file(path, kFrameKind, kSchemaVersion);
    ckpt = decode_checkpoint(payload);
  } catch (const util::DurableIoError& e) {
    // Damaged or unreadable: discard and start fresh. FaultInjected is not
    // a DurableIoError, so simulated crashes propagate to the test harness.
    g_corrupt_discards.fetch_add(1, std::memory_order_relaxed);
    util::log_warn() << "discarding damaged checkpoint " << path << ": "
                     << e.what();
    return false;
  }
  if (ckpt.compat_digest != expect_digest) {
    g_corrupt_discards.fetch_add(1, std::memory_order_relaxed);
    util::log_warn() << "discarding checkpoint " << path
                     << ": run configuration changed (digest mismatch)";
    return false;
  }
  *out = std::move(ckpt);
  g_resumes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

CheckpointStats checkpoint_stats() {
  CheckpointStats stats;
  stats.saves = g_saves.load(std::memory_order_relaxed);
  stats.resumes = g_resumes.load(std::memory_order_relaxed);
  stats.corrupt_discards = g_corrupt_discards.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace sma::attack
