#include "attack/attack_result.hpp"

namespace sma::attack {

double compute_ccr(const std::vector<Selection>& selections) {
  long total = 0;
  long correct = 0;
  for (const Selection& s : selections) {
    total += s.num_sinks;
    if (s.correct) correct += s.num_sinks;
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

}  // namespace sma::attack
