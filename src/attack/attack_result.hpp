// Common result types for all attacks, and the CCR metric (Eq. 1).
#pragma once

#include <string>
#include <vector>

namespace sma::attack {

/// Outcome for one sink fragment.
struct Selection {
  int sink_fragment = -1;
  int chosen_source = -1;  ///< -1 if the attack made no choice
  bool correct = false;
  int num_sinks = 0;       ///< c_i of Eq. (1)
};

/// Outcome of one attack on one design.
struct AttackResult {
  std::string attack_name;
  double ccr = 0.0;        ///< correct connection rate in [0, 1]
  double seconds = 0.0;    ///< wall-clock runtime, feature extraction included
  bool timed_out = false;  ///< true if aborted; ccr is then meaningless
  std::vector<Selection> selections;
};

/// CCR = sum(c_i * x_i) / sum(c_i) over sink fragments (Eq. 1).
double compute_ccr(const std::vector<Selection>& selections);

}  // namespace sma::attack
