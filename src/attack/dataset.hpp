// Query dataset: per-sink-fragment candidate lists materialized as neural
// network inputs, with cached virtual-pin images.
//
// One dataset wraps one split design. Vector features are computed eagerly
// (in parallel when the config carries a pool); images are rendered lazily
// per virtual pin and cached, since the same pin appears in many queries.
// With a pool, construction instead prebuilds every image the dataset can
// ever need — after `prebuild_images()` the cache is immutable, making
// `input()` safe to call from concurrent attack/training workers.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "features/image_features.hpp"
#include "features/vector_features.hpp"
#include "nn/attack_net.hpp"
#include "runtime/thread_pool.hpp"
#include "split/candidates.hpp"

namespace sma::attack {

struct DatasetConfig {
  split::CandidateConfig candidates;
  features::ImageConfig images;
  /// Skip all image work (vector-only attacks / ablation).
  bool build_images = true;
  /// Non-owning pool for parallel feature extraction; null = serial. The
  /// pool must outlive every dataset operation that uses it.
  runtime::ThreadPool* pool = nullptr;
};

class QueryDataset {
 public:
  QueryDataset(const split::SplitDesign* split, const DatasetConfig& config);

  const split::SplitDesign& split() const { return *split_; }
  const DatasetConfig& config() const { return config_; }

  std::size_t num_queries() const { return queries_.size(); }
  const split::SinkQuery& query(std::size_t i) const { return queries_.at(i); }

  /// Index of the positive candidate (-1 if not in the list).
  int target(std::size_t i) const { return queries_.at(i).positive_index; }
  int num_sinks(std::size_t i) const { return queries_.at(i).num_sinks; }

  /// Assemble the network input for query `i`. Renders and caches images
  /// on first use. Safe to call concurrently only after
  /// `prebuild_images()` (or construction with a pool, which prebuilds).
  nn::QueryInput input(std::size_t i);

  /// Like `input`, but reuses `out`'s tensors in place
  /// (`Tensor::resize_reuse`: grow-only capacity, every element fully
  /// overwritten) — a training loop or inference worker that holds one
  /// QueryInput across queries assembles inputs without any per-query
  /// heap allocation once its buffers have seen the largest query.
  void input_into(std::size_t i, nn::QueryInput& out);

  /// Vector rows query `i` contributes to a batched input; its images add
  /// `batch_rows(i) + 1` planes when nonzero and images are built.
  int batch_rows(std::size_t i) const {
    return static_cast<int>(queries_.at(i).candidates.size());
  }

  /// Assemble queries [first, first + count) into one stacked
  /// `forward_batched` input, in slot order (`out.query_rows[k]` is query
  /// first + k's candidate count; empty queries contribute no rows or
  /// planes). Reuses `out`'s tensors like `input_into` — grow-only, every
  /// written element fully overwritten — so a serving worker that holds
  /// one BatchedQueryInput across batches assembles without heap traffic
  /// once its buffers have seen the widest batch. Same concurrency rule
  /// as `input_into`: prebuild images first for concurrent callers.
  void input_into_batch(std::size_t first, std::size_t count,
                        nn::BatchedQueryInput& out);

  /// Strided single-query fill for callers coalescing a batch across
  /// datasets (the serving loop): writes query `i`'s vector rows at
  /// out.vec rows [row0, row0 + n) and, when images are built and n > 0,
  /// its image planes at out.images planes [plane0, plane0 + n + 1).
  /// `out`'s tensors must already be sized; `out.query_rows` is the
  /// caller's responsibility. All writers of one batch may run serially
  /// on one thread only (this mutates the image cache unless prebuilt).
  void fill_batch_query(std::size_t i, nn::BatchedQueryInput& out, int row0,
                        int plane0);

  /// Render every image any query references into the cache, in parallel
  /// over `pool` (falling back to the config's pool, then serial).
  /// Idempotent; a no-op for vector-only datasets.
  void prebuild_images(runtime::ThreadPool* pool = nullptr);

  /// Weighted fraction of queries whose candidate list holds the truth.
  double candidate_hit_rate() const {
    return split::candidate_hit_rate(queries_);
  }

  /// Total image cache entries (for tests/diagnostics).
  std::size_t cached_images() const { return image_cache_.size(); }

 private:
  /// The shared fill behind input_into / fill_batch_query: query `i`'s
  /// vector rows to `vec_dst` and, when `img_dst` is non-null, its
  /// n + 1 image planes to `img_dst`.
  void fill_query(std::size_t i, float* vec_dst, float* img_dst);

  const std::vector<float>& image_of(int virtual_pin);
  /// All virtual pins whose image some query needs, deduplicated, in a
  /// deterministic order.
  std::vector<int> referenced_pins() const;

  const split::SplitDesign* split_;
  DatasetConfig config_;
  std::vector<split::SinkQuery> queries_;
  std::vector<std::vector<features::VectorFeatures>> vector_features_;
  std::unique_ptr<features::ImageRenderer> renderer_;
  std::unordered_map<int, std::vector<float>> image_cache_;
};

}  // namespace sma::attack
