#include "attack/dl_attack.hpp"

#include <algorithm>
#include <cstring>

#include "nn/train_step.hpp"
#include "runtime/parallel.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace sma::attack {

namespace {

/// One labelled training query.
struct Ref {
  int design;
  int query;
};

/// Score one query on `net` and fill `out` (no-op choice for empty
/// candidate lists, as in the serial reference implementation).
void select_one(nn::AttackNet& net, QueryDataset& dataset, std::size_t i,
                Selection& out) {
  const split::SinkQuery& query = dataset.query(i);
  out.sink_fragment = query.sink_fragment;
  out.num_sinks = query.num_sinks;
  if (query.candidates.empty()) return;
  nn::QueryInput input = dataset.input(i);
  nn::Tensor scores = net.forward(input);
  int predicted = nn::predict(scores);
  out.chosen_source = query.candidates[predicted].source_fragment;
  out.correct = query.candidates[predicted].positive;
}

}  // namespace

DlAttack::DlAttack(const nn::NetConfig& net_config)
    : net_(net_config), replicas_(std::make_unique<ReplicaSet>()) {}

DlAttack::DlAttack(nn::AttackNet net)
    : net_(std::move(net)), replicas_(std::make_unique<ReplicaSet>()) {}

TrainStats DlAttack::train(std::vector<QueryDataset>& training,
                           std::vector<QueryDataset>& validation,
                           const TrainConfig& config,
                           runtime::ThreadPool* pool) {
  util::Timer timer;
  TrainStats stats;
  util::Pcg32 rng(config.seed, 0x7a13);

  nn::TrainStep engine(net_.params(), config.adam);
  const bool two_class = net_.config().two_class;
  const int lanes = std::max(1, config.batch_size);

  // Lane replicas: identical weights, private gradients and activation
  // caches. The lane structure runs even without a pool: accumulating a
  // batch directly on the master net would associate the per-parameter
  // float additions differently (backward's internal adds interleave
  // with the cross-query sum), so only identical lane bookkeeping keeps
  // serial and parallel models bit-identical. The lane count is fixed by
  // the config — never by the pool — so the reduction order below is
  // thread-count-invariant.
  //
  // Fused mode pins *shared-weight* lanes: each lane reads the master's
  // weight tensors (one weight copy total — Adam updates are visible to
  // every lane with no broadcast) and owns only its gradients and
  // activation caches. Unfused mode keeps the reference three-pass path
  // on full clones; both produce byte-identical models.
  const bool use_lanes = lanes > 1;
  const bool fused = config.fused_step;
  // Without a pool the lanes of a batch run in sequence anyway, so the
  // fused engine pins ONE shared-weight replica to serve every lane:
  // after each query its (still cache-hot) gradients accumulate onto the
  // master in query order — the same ascending-order adds the multi-lane
  // reduce performs, so the model stays byte-identical while the per-step
  // working set shrinks from `lanes` replicas' gradients, im2col buffers
  // and masks to one replica's worth.
  const bool serial_lanes = use_lanes && fused && pool == nullptr;
  std::vector<nn::AttackNet> lane_nets;
  std::vector<std::vector<nn::Param>> lane_params;
  std::vector<nn::Param> master_params;
  if (use_lanes) {
    const int replicas = serial_lanes ? 1 : lanes;
    lane_nets.reserve(replicas);
    for (int l = 0; l < replicas; ++l) {
      lane_nets.push_back(fused ? net_.clone_shared() : net_.clone());
    }
    for (nn::AttackNet& lane : lane_nets) lane_params.push_back(lane.params());
    master_params = net_.params();
    if (fused && !serial_lanes) {
      engine.attach_lanes(lane_params, /*broadcast=*/false);
    }
    // Concurrent lanes read the datasets' image caches; freeze them now.
    if (pool != nullptr) {
      for (QueryDataset& dataset : training) dataset.prebuild_images(pool);
    }
  }

  // Index all trainable queries (those whose candidate list contains the
  // positive VPP — Eq. 6 needs a labelled target).
  std::vector<std::vector<Ref>> per_design(training.size());
  for (std::size_t d = 0; d < training.size(); ++d) {
    for (std::size_t q = 0; q < training[d].num_queries(); ++q) {
      if (training[d].target(q) >= 0 &&
          !training[d].query(q).candidates.empty()) {
        per_design[d].push_back({static_cast<int>(d), static_cast<int>(q)});
      }
    }
  }

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (epoch > 0 && config.decay_every > 0 &&
        epoch % config.decay_every == 0) {
      engine.decay_lr();
    }

    // Per-epoch sample: subsample each design's queries, then shuffle the
    // combined order so designs interleave.
    std::vector<Ref> order;
    for (auto& refs : per_design) {
      util::shuffle(refs, rng);
      std::size_t take = config.max_queries_per_design > 0
                             ? std::min<std::size_t>(
                                   refs.size(),
                                   static_cast<std::size_t>(
                                       config.max_queries_per_design))
                             : refs.size();
      order.insert(order.end(), refs.begin(), refs.begin() + take);
    }
    util::shuffle(order, rng);

    double epoch_loss = 0.0;
    if (!use_lanes) {
      // The paper's per-query SGD, unchanged. Adam runs serially here —
      // a per-query fork/join over small tensors costs more than it
      // saves.
      for (const Ref& ref : order) {
        QueryDataset& dataset = training[ref.design];
        nn::QueryInput input = dataset.input(ref.query);
        nn::Tensor scores = net_.forward(input);
        nn::LossResult loss =
            two_class ? nn::two_class_loss(scores, dataset.target(ref.query))
                      : nn::softmax_regression_loss(
                            scores, dataset.target(ref.query));
        net_.backward(loss.grad);
        engine.optimizer().step(nullptr);
        epoch_loss += loss.loss;
        ++stats.queries_seen;
      }
    } else if (serial_lanes) {
      // One pinned replica serves the whole batch; gradients accumulate
      // onto the master after every query, in query order.
      nn::AttackNet& worker = lane_nets[0];
      const std::vector<nn::Param>& worker_params = lane_params[0];
      for (std::size_t base = 0; base < order.size();
           base += static_cast<std::size_t>(lanes)) {
        const int active = static_cast<int>(
            std::min<std::size_t>(lanes, order.size() - base));
        for (int l = 0; l < active; ++l) {
          const Ref& ref = order[base + static_cast<std::size_t>(l)];
          QueryDataset& dataset = training[ref.design];
          nn::QueryInput input = dataset.input(ref.query);
          nn::Tensor scores = worker.forward(input);
          nn::LossResult loss =
              two_class ? nn::two_class_loss(scores, dataset.target(ref.query))
                        : nn::softmax_regression_loss(
                              scores, dataset.target(ref.query));
          worker.backward(loss.grad);
          engine.accumulate(worker_params);
          epoch_loss += loss.loss;
        }
        engine.optimizer().step(nullptr);
        stats.queries_seen += active;
      }
    } else {
      std::vector<double> lane_loss(static_cast<std::size_t>(lanes), 0.0);
      for (std::size_t base = 0; base < order.size();
           base += static_cast<std::size_t>(lanes)) {
        const int active = static_cast<int>(
            std::min<std::size_t>(lanes, order.size() - base));

        // Forward/backward one query per lane, concurrently.
        runtime::TaskGroup group(pool);
        for (int l = 0; l < active; ++l) {
          group.run([l, base, two_class, &order, &training, &lane_nets,
                     &lane_loss] {
            const Ref& ref = order[base + static_cast<std::size_t>(l)];
            QueryDataset& dataset = training[ref.design];
            nn::QueryInput input = dataset.input(ref.query);
            nn::AttackNet& net = lane_nets[l];
            nn::Tensor scores = net.forward(input);
            nn::LossResult loss =
                two_class
                    ? nn::two_class_loss(scores, dataset.target(ref.query))
                    : nn::softmax_regression_loss(scores,
                                                  dataset.target(ref.query));
            net.backward(loss.grad);
            lane_loss[l] = loss.loss;
          });
        }
        group.wait();

        if (fused) {
          // One fused reduce+Adam pass; no broadcast — lanes read the
          // master's weight tensors directly.
          engine.step(active, pool);
        } else {
          // Reference three-pass path (the PR-2 baseline bench_train
          // measures against). Reduce: per parameter, add lane gradients
          // in lane order — the order (hence the float sum) is
          // independent of scheduling.
          runtime::parallel_for(
              pool, 0, master_params.size(), /*grain=*/4, [&](std::size_t k) {
                float* master = master_params[k].grad->data();
                const std::size_t size = master_params[k].grad->size();
                for (int l = 0; l < active; ++l) {
                  float* lane = lane_params[l][k].grad->data();
                  for (std::size_t j = 0; j < size; ++j) {
                    master[j] += lane[j];
                    lane[j] = 0.0f;
                  }
                }
              });
          engine.optimizer().step(pool);

          // Broadcast the updated weights back to every lane.
          runtime::parallel_for(
              pool, 0, static_cast<std::size_t>(lanes) * master_params.size(),
              /*grain=*/8, [&](std::size_t t) {
                const std::size_t l = t / master_params.size();
                const std::size_t k = t % master_params.size();
                std::memcpy(lane_params[l][k].value->data(),
                            master_params[k].value->data(),
                            master_params[k].value->size() * sizeof(float));
              });
        }

        for (int l = 0; l < active; ++l) epoch_loss += lane_loss[l];
        stats.queries_seen += active;
      }
    }
    stats.epoch_loss.push_back(
        order.empty() ? 0.0 : epoch_loss / static_cast<double>(order.size()));

    if (config.validate_every > 0 && !validation.empty() &&
        (epoch + 1) % config.validate_every == 0) {
      long total = 0;
      long correct = 0;
      for (QueryDataset& dataset : validation) {
        AttackResult result = attack(dataset, pool);
        for (const Selection& s : result.selections) {
          total += s.num_sinks;
          if (s.correct) correct += s.num_sinks;
        }
      }
      stats.validation_ccr.push_back(
          total > 0 ? static_cast<double>(correct) / total : 0.0);
      util::log_info() << "epoch " << epoch + 1 << ": loss "
                       << stats.epoch_loss.back() << ", val CCR "
                       << stats.validation_ccr.back();
    } else {
      util::log_debug() << "epoch " << epoch + 1 << ": loss "
                        << stats.epoch_loss.back();
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

AttackResult DlAttack::attack(QueryDataset& dataset,
                              runtime::ThreadPool* pool) {
  util::Timer timer;
  AttackResult result;
  result.attack_name = net_.config().use_images ? "dl(vec+img)" : "dl(vec)";
  const std::size_t n = dataset.num_queries();
  result.selections.assign(n, Selection{});

  if (pool == nullptr || n == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      select_one(net_, dataset, i, result.selections[i]);
    }
  } else {
    // Workers run pinned shared-weight replicas leased from the
    // ReplicaSet — no per-call clone, no weight copies — and concurrent
    // attack() calls (e.g. parallel per-design evaluation) lease disjoint
    // replicas, so they stay race-free.
    dataset.prebuild_images(pool);
    const std::size_t num_chunks = std::min<std::size_t>(
        n, static_cast<std::size_t>(pool->num_threads()) + 1);
    const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
    ReplicaLease lease = replicas_->lease(num_chunks, net_);
    runtime::TaskGroup group(pool);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      group.run([c, chunk, n, &lease, &dataset, &result] {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          select_one(*lease.nets()[c], dataset, i, result.selections[i]);
        }
      });
    }
    group.wait();
  }
  result.ccr = compute_ccr(result.selections);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace sma::attack
