#include "attack/dl_attack.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "attack/checkpoint.hpp"
#include "nn/train_step.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"
#include "util/durable_io.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace sma::attack {

namespace {

/// One labelled training query.
struct Ref {
  int design;
  int query;
};

/// Score one query on `net` and fill `out` (no-op choice for empty
/// candidate lists, as in the serial reference implementation). `input`
/// is the caller's reusable assembly buffer — one per worker, reused
/// across its queries so steady-state serving never touches the heap.
void select_one(nn::AttackNet& net, QueryDataset& dataset, std::size_t i,
                nn::QueryInput& input, Selection& out) {
  const split::SinkQuery& query = dataset.query(i);
  out.sink_fragment = query.sink_fragment;
  out.num_sinks = query.num_sinks;
  if (query.candidates.empty()) return;
  dataset.input_into(i, input);
  // Scores live in the replica's activation arena — read in place.
  const nn::Tensor& scores = net.forward(input);
  int predicted = nn::predict(scores);
  out.chosen_source = query.candidates[predicted].source_fragment;
  out.correct = query.candidates[predicted].positive;
}

/// Score queries [first, first + count) in ONE wide forward pass and fill
/// their selections. Empty-candidate queries get the serial no-op choice
/// and contribute nothing to the stacked input; an all-empty batch never
/// reaches the net. `input` is the caller's reusable stacked assembly
/// buffer — grow-only, so steady-state batches never touch the heap.
/// Per-query scores are byte-identical to select_one (the forward_batched
/// contract), and the span-predict overload runs the same comparison
/// chain, so selections agree exactly with the batch-1 path.
void select_batch(nn::AttackNet& net, QueryDataset& dataset,
                  std::size_t first, std::size_t count,
                  nn::BatchedQueryInput& input, Selection* out) {
  std::size_t live_rows = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const split::SinkQuery& query = dataset.query(first + k);
    out[k].sink_fragment = query.sink_fragment;
    out[k].num_sinks = query.num_sinks;
    live_rows += query.candidates.size();
  }
  if (live_rows == 0) return;
  dataset.input_into_batch(first, count, input);
  const nn::Tensor& scores = net.forward_batched(input);
  const int cols = scores.shape().size() == 2 && scores.dim(1) == 2 ? 2 : 1;
  const float* s = scores.data();
  int r = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const int n = input.query_rows[k];
    if (n == 0) continue;
    const split::SinkQuery& query = dataset.query(first + k);
    const int predicted =
        nn::predict(s + static_cast<std::size_t>(r) * cols, n, cols);
    out[k].chosen_source = query.candidates[predicted].source_fragment;
    out[k].correct = query.candidates[predicted].positive;
    r += n;
  }
}

}  // namespace

DlAttack::DlAttack(const nn::NetConfig& net_config)
    : net_(net_config), replicas_(std::make_unique<ReplicaSet>()) {}

DlAttack::DlAttack(nn::AttackNet net)
    : net_(std::move(net)), replicas_(std::make_unique<ReplicaSet>()) {}

TrainStats DlAttack::train(std::vector<QueryDataset>& training,
                           std::vector<QueryDataset>& validation,
                           const TrainConfig& config,
                           runtime::ThreadPool* pool) {
  SMA_TRACE_SPAN_V("train", "train", config.epochs);
  util::Timer timer;
  TrainStats stats;
  util::Pcg32 rng(config.seed, 0x7a13);

  nn::TrainStep engine(net_.params(), config.adam);
  const bool two_class = net_.config().two_class;
  const int lanes = std::max(1, config.batch_size);

  // Index all trainable queries (those whose candidate list contains the
  // positive VPP — Eq. 6 needs a labelled target).
  std::vector<std::vector<Ref>> per_design(training.size());
  for (std::size_t d = 0; d < training.size(); ++d) {
    for (std::size_t q = 0; q < training[d].num_queries(); ++q) {
      if (training[d].target(q) >= 0 &&
          !training[d].query(q).candidates.empty()) {
        per_design[d].push_back({static_cast<int>(d), static_cast<int>(q)});
      }
    }
  }

  // Per-epoch sample: subsample each design's queries, then shuffle the
  // combined order so designs interleave. Factored out because resume
  // replays it (below): the shuffles both mutate `per_design` cumulatively
  // and advance `rng`, so a resumed run must re-derive the completed
  // epochs' sampling to put both back in the exact mid-run state.
  const auto build_epoch_order = [&]() {
    std::vector<Ref> order;
    for (auto& refs : per_design) {
      util::shuffle(refs, rng);
      std::size_t take = config.max_queries_per_design > 0
                             ? std::min<std::size_t>(
                                   refs.size(),
                                   static_cast<std::size_t>(
                                       config.max_queries_per_design))
                             : refs.size();
      order.insert(order.end(), refs.begin(), refs.begin() + take);
    }
    util::shuffle(order, rng);
    return order;
  };

  // Master parameters, captured once: the checkpoint target and (on
  // resume) the restore target. Restoring IN PLACE into these tensors —
  // before any lane replica exists — means full clones copy the restored
  // weights at creation and shared-weight replicas read them by
  // construction.
  std::vector<nn::Param> ckpt_params = net_.params();
  const bool checkpointing =
      config.checkpoint_every > 0 && !config.checkpoint_path.empty();
  std::uint64_t ckpt_digest = 0;
  int start_epoch = 0;
  if (checkpointing) {
    // Fingerprint of everything that shapes the training stream: the
    // Adam schedule, the sampling/batching hyperparameters, the seed,
    // the loss head, the dataset shape, and the model's parameter sizes.
    // A checkpoint whose digest differs resumes nothing.
    std::string buf;
    const auto mix_u64 = [&buf](std::uint64_t v) {
      buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    const auto mix_double = [&](double d) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      mix_u64(bits);
    };
    mix_double(config.adam.lr);
    mix_double(config.adam.beta1);
    mix_double(config.adam.beta2);
    mix_double(config.adam.eps);
    mix_double(config.adam.decay);
    mix_u64(static_cast<std::uint64_t>(config.decay_every));
    mix_u64(static_cast<std::uint64_t>(config.max_queries_per_design));
    mix_u64(static_cast<std::uint64_t>(config.batch_size));
    mix_u64(config.seed);
    mix_u64(two_class ? 1 : 0);
    mix_u64(per_design.size());
    for (const auto& refs : per_design) mix_u64(refs.size());
    mix_u64(ckpt_params.size());
    for (const nn::Param& p : ckpt_params) mix_u64(p.value->size());
    ckpt_digest = util::fnv1a(buf.data(), buf.size());

    TrainCheckpoint ckpt;
    if (try_load_checkpoint(config.checkpoint_path, ckpt_digest, &ckpt) &&
        ckpt.epochs_done > 0 && ckpt.epochs_done <= config.epochs) {
      // Snapshot the fresh state first so a checkpoint that passes the
      // frame checksum and digest but still fails to decode (should be
      // impossible; defends the invariant anyway) rolls back cleanly to
      // a fresh start instead of leaving weights and optimizer mixed.
      const std::string fresh_weights = encode_params(ckpt_params);
      std::ostringstream fresh_adam;
      engine.optimizer().serialize(fresh_adam);
      try {
        decode_params(ckpt.model_blob, ckpt_params);
        std::istringstream adam_in(ckpt.adam_blob);
        engine.optimizer().deserialize(adam_in);
        start_epoch = ckpt.epochs_done;
      } catch (const std::exception& e) {
        util::log_warn() << "checkpoint " << config.checkpoint_path
                         << " failed to decode, starting fresh: " << e.what();
        decode_params(fresh_weights, ckpt_params);
        std::istringstream adam_in(fresh_adam.str());
        engine.optimizer().deserialize(adam_in);
        start_epoch = 0;
      }
      if (start_epoch > 0) {
        stats.epoch_loss = ckpt.epoch_loss;
        stats.validation_ccr = ckpt.validation_ccr;
        stats.queries_seen = ckpt.queries_seen;
        stats.resumed_from_epoch = start_epoch;
        // Keep the per-epoch vectors epoch-indexable on resume.
        stats.arena_allocs_per_epoch.assign(
            static_cast<std::size_t>(start_epoch), 0);
        // Replay the completed epochs' sampling (cheap: shuffles only).
        for (int e = 0; e < start_epoch; ++e) build_epoch_order();
        // The replay reproduces the checkpointed RNG state exactly;
        // restoring is belt-and-braces against future drift.
        rng.restore_state(ckpt.rng);
        util::log_info() << "resuming training from checkpoint "
                         << config.checkpoint_path << " at epoch "
                         << start_epoch;
      }
    }
  }

  // Lane replicas: identical weights, private gradients and activation
  // caches. The lane structure runs even without a pool: accumulating a
  // batch directly on the master net would associate the per-parameter
  // float additions differently (backward's internal adds interleave
  // with the cross-query sum), so only identical lane bookkeeping keeps
  // serial and parallel models bit-identical. The lane count is fixed by
  // the config — never by the pool — so the reduction order below is
  // thread-count-invariant.
  //
  // Fused mode pins *shared-weight* lanes: each lane reads the master's
  // weight tensors (one weight copy total — Adam updates are visible to
  // every lane with no broadcast) and owns only its gradients and
  // activation caches. Unfused mode keeps the reference three-pass path
  // on full clones; both produce byte-identical models.
  const bool use_lanes = lanes > 1;
  const bool fused = config.fused_step;
  // Without a pool the lanes of a batch run in sequence anyway, so the
  // fused engine pins ONE shared-weight replica to serve every lane:
  // after each query its (still cache-hot) gradients accumulate onto the
  // master in query order — the same ascending-order adds the multi-lane
  // reduce performs, so the model stays byte-identical while the per-step
  // working set shrinks from `lanes` replicas' gradients, im2col buffers
  // and masks to one replica's worth.
  const bool serial_lanes = use_lanes && fused && pool == nullptr;
  std::vector<nn::AttackNet> lane_nets;
  std::vector<std::vector<nn::Param>> lane_params;
  std::vector<nn::Param> master_params;
  if (use_lanes) {
    const int replicas = serial_lanes ? 1 : lanes;
    lane_nets.reserve(replicas);
    for (int l = 0; l < replicas; ++l) {
      lane_nets.push_back(fused ? net_.clone_shared() : net_.clone());
    }
    for (nn::AttackNet& lane : lane_nets) lane_params.push_back(lane.params());
    master_params = net_.params();
    if (fused && !serial_lanes) {
      engine.attach_lanes(lane_params, /*broadcast=*/false);
    }
    // Concurrent lanes read the datasets' image caches; freeze them now.
    if (pool != nullptr) {
      for (QueryDataset& dataset : training) dataset.prebuild_images(pool);
    }
  }

  // Reusable input-assembly buffers: one per training net (the master in
  // per-query SGD mode, otherwise one per lane replica). input_into
  // resizes them in place, so steady-state epochs assemble every query
  // without heap traffic. Each buffer is only ever touched by its own
  // lane's task — race-free under the pool.
  std::vector<nn::QueryInput> lane_inputs(
      lane_nets.empty() ? 1 : lane_nets.size());

  // Activation-arena accounting: every net owns one arena for its
  // lifetime (master + each lane replica). Epoch deltas expose the
  // warm-up/steady-state split: the explicit warm-up below lands in the
  // first epoch's delta, and every later delta must be 0 — bench_train
  // and CI gate on it. (Validation replicas have their own arenas; see
  // inference_arena_stats().)
  const auto arena_allocs = [&]() {
    long total = net_.arena().stats().allocs;
    for (const nn::AttackNet& lane : lane_nets) {
      total += lane.arena().stats().allocs;
    }
    return total;
  };
  long prev_allocs = arena_allocs();

  // Arena warm-up: run every training net once over the globally largest
  // trainable query (forward + a zero-gradient backward), then discard
  // the still-zero gradients. Every activation/staging buffer is thereby
  // grown to its high-water size up front, so ALL epochs run alloc-free —
  // without this, a pooled lane would only warm to the shapes its own
  // shuffle slots happen to draw, and every reshuffle (or a subsampled
  // epoch introducing a larger query late) could grow an arena mid-run.
  // Model bytes are untouched: forward mutates no weights, backward with
  // a zero upstream gradient adds exact zeros to zero gradients, and the
  // explicit re-zeroing pins the bytes regardless.
  {
    const Ref* largest = nullptr;
    std::size_t most_candidates = 0;
    for (const auto& refs : per_design) {
      for (const Ref& ref : refs) {
        const std::size_t n =
            training[ref.design].query(ref.query).candidates.size();
        if (n > most_candidates) {
          most_candidates = n;
          largest = &ref;
        }
      }
    }
    if (largest != nullptr) {
      const auto warm_net = [&](nn::AttackNet& net, nn::QueryInput& input,
                                const std::vector<nn::Param>& params) {
        training[largest->design].input_into(largest->query, input);
        const nn::Tensor& scores = net.forward(input);
        nn::Tensor zero_grad(scores.shape());
        net.backward(zero_grad);
        for (const nn::Param& p : params) p.grad->fill(0.0f);
      };
      if (use_lanes) {
        // Warm each lane's input-assembly buffer along with its net.
        for (std::size_t l = 0; l < lane_nets.size(); ++l) {
          warm_net(lane_nets[l], lane_inputs[l], lane_params[l]);
        }
      } else {
        warm_net(net_, lane_inputs[0], net_.params());
      }
    }
  }

  for (int epoch = start_epoch; epoch < config.epochs; ++epoch) {
    SMA_TRACE_SPAN_V("train", "epoch", epoch);
    SMA_COUNT("train.epochs");
    // On resume the decays of epochs < start_epoch are already baked into
    // the deserialized optimizer's learning rate — this condition only
    // fires for the epochs this call actually runs.
    if (epoch > 0 && config.decay_every > 0 &&
        epoch % config.decay_every == 0) {
      engine.decay_lr();
    }

    std::vector<Ref> order = build_epoch_order();

    double epoch_loss = 0.0;
    if (!use_lanes) {
      // The paper's per-query SGD, unchanged. Adam runs serially here —
      // a per-query fork/join over small tensors costs more than it
      // saves.
      nn::QueryInput& input = lane_inputs[0];
      for (const Ref& ref : order) {
        QueryDataset& dataset = training[ref.design];
        dataset.input_into(ref.query, input);
        const nn::Tensor& scores = net_.forward(input);
        nn::LossResult loss =
            two_class ? nn::two_class_loss(scores, dataset.target(ref.query))
                      : nn::softmax_regression_loss(
                            scores, dataset.target(ref.query));
        net_.backward(loss.grad);
        engine.optimizer().step(nullptr);
        epoch_loss += loss.loss;
        ++stats.queries_seen;
      }
    } else if (serial_lanes) {
      // One pinned replica serves the whole batch; gradients accumulate
      // onto the master after every query, in query order.
      nn::AttackNet& worker = lane_nets[0];
      const std::vector<nn::Param>& worker_params = lane_params[0];
      nn::QueryInput& input = lane_inputs[0];
      for (std::size_t base = 0; base < order.size();
           base += static_cast<std::size_t>(lanes)) {
        const int active = static_cast<int>(
            std::min<std::size_t>(lanes, order.size() - base));
        for (int l = 0; l < active; ++l) {
          const Ref& ref = order[base + static_cast<std::size_t>(l)];
          QueryDataset& dataset = training[ref.design];
          dataset.input_into(ref.query, input);
          const nn::Tensor& scores = worker.forward(input);
          nn::LossResult loss =
              two_class ? nn::two_class_loss(scores, dataset.target(ref.query))
                        : nn::softmax_regression_loss(
                              scores, dataset.target(ref.query));
          worker.backward(loss.grad);
          engine.accumulate(worker_params);
          epoch_loss += loss.loss;
        }
        engine.optimizer().step(nullptr);
        stats.queries_seen += active;
      }
    } else {
      std::vector<double> lane_loss(static_cast<std::size_t>(lanes), 0.0);
      for (std::size_t base = 0; base < order.size();
           base += static_cast<std::size_t>(lanes)) {
        const int active = static_cast<int>(
            std::min<std::size_t>(lanes, order.size() - base));

        // Forward/backward one query per lane, concurrently.
        runtime::TaskGroup group(pool);
        for (int l = 0; l < active; ++l) {
          group.run([l, base, two_class, &order, &training, &lane_nets,
                     &lane_inputs, &lane_loss] {
            const Ref& ref = order[base + static_cast<std::size_t>(l)];
            QueryDataset& dataset = training[ref.design];
            nn::QueryInput& input = lane_inputs[l];
            dataset.input_into(ref.query, input);
            nn::AttackNet& net = lane_nets[l];
            const nn::Tensor& scores = net.forward(input);
            nn::LossResult loss =
                two_class
                    ? nn::two_class_loss(scores, dataset.target(ref.query))
                    : nn::softmax_regression_loss(scores,
                                                  dataset.target(ref.query));
            net.backward(loss.grad);
            lane_loss[l] = loss.loss;
          });
        }
        group.wait();

        if (fused) {
          // One fused reduce+Adam pass; no broadcast — lanes read the
          // master's weight tensors directly.
          engine.step(active, pool);
        } else {
          // Reference three-pass path (the PR-2 baseline bench_train
          // measures against). Reduce: per parameter, add lane gradients
          // in lane order — the order (hence the float sum) is
          // independent of scheduling.
          runtime::parallel_for(
              pool, 0, master_params.size(), /*grain=*/4, [&](std::size_t k) {
                float* master = master_params[k].grad->data();
                const std::size_t size = master_params[k].grad->size();
                for (int l = 0; l < active; ++l) {
                  float* lane = lane_params[l][k].grad->data();
                  for (std::size_t j = 0; j < size; ++j) {
                    master[j] += lane[j];
                    lane[j] = 0.0f;
                  }
                }
              });
          engine.optimizer().step(pool);

          // Broadcast the updated weights back to every lane.
          runtime::parallel_for(
              pool, 0, static_cast<std::size_t>(lanes) * master_params.size(),
              /*grain=*/8, [&](std::size_t t) {
                const std::size_t l = t / master_params.size();
                const std::size_t k = t % master_params.size();
                std::memcpy(lane_params[l][k].value->data(),
                            master_params[k].value->data(),
                            master_params[k].value->size() * sizeof(float));
              });
        }

        for (int l = 0; l < active; ++l) epoch_loss += lane_loss[l];
        stats.queries_seen += active;
      }
    }
    stats.epoch_loss.push_back(
        order.empty() ? 0.0 : epoch_loss / static_cast<double>(order.size()));
    const long allocs_now = arena_allocs();
    stats.arena_allocs_per_epoch.push_back(allocs_now - prev_allocs);
    prev_allocs = allocs_now;

    if (config.validate_every > 0 && !validation.empty() &&
        (epoch + 1) % config.validate_every == 0) {
      long total = 0;
      long correct = 0;
      for (QueryDataset& dataset : validation) {
        AttackResult result = attack(dataset, pool);
        for (const Selection& s : result.selections) {
          total += s.num_sinks;
          if (s.correct) correct += s.num_sinks;
        }
      }
      stats.validation_ccr.push_back(
          total > 0 ? static_cast<double>(correct) / total : 0.0);
      util::log_info() << "epoch " << epoch + 1 << ": loss "
                       << stats.epoch_loss.back() << ", val CCR "
                       << stats.validation_ccr.back();
    } else {
      util::log_debug() << "epoch " << epoch + 1 << ": loss "
                        << stats.epoch_loss.back();
    }

    if (checkpointing && (epoch + 1) % config.checkpoint_every == 0) {
      TrainCheckpoint ckpt;
      ckpt.compat_digest = ckpt_digest;
      ckpt.epochs_done = epoch + 1;
      ckpt.queries_seen = stats.queries_seen;
      ckpt.epoch_loss = stats.epoch_loss;
      ckpt.validation_ccr = stats.validation_ccr;
      ckpt.rng = rng.save_state();
      ckpt.model_blob = encode_params(ckpt_params);
      std::ostringstream adam_out;
      engine.optimizer().serialize(adam_out);
      ckpt.adam_blob = adam_out.str();
      try {
        save_checkpoint(config.checkpoint_path, ckpt);
        ++stats.checkpoints_saved;
        SMA_COUNT("train.checkpoints");
      } catch (const util::DurableIoError& e) {
        // Best-effort durability: a failing disk must not kill the run —
        // the previous checkpoint (if any) is still intact thanks to the
        // atomic replace. FaultInjected is not caught here: a simulated
        // crash must crash.
        util::log_warn() << "checkpoint save failed (training continues): "
                         << e.what();
      }
    }
  }
  stats.arena_bytes_pinned = net_.arena().stats().bytes_pinned;
  for (const nn::AttackNet& lane : lane_nets) {
    stats.arena_bytes_pinned += lane.arena().stats().bytes_pinned;
  }
  stats.seconds = timer.seconds();
  return stats;
}

AttackResult DlAttack::attack(QueryDataset& dataset,
                              runtime::ThreadPool* pool, int batch_width) {
  SMA_TRACE_SPAN_V("attack", "attack", dataset.num_queries());
  SMA_COUNT("attack.calls");
  if (batch_width < 1) {
    throw std::invalid_argument("DlAttack::attack: batch_width must be >= 1");
  }
  util::Timer timer;
  AttackResult result;
  result.attack_name = net_.config().use_images ? "dl(vec+img)" : "dl(vec)";
  const std::size_t n = dataset.num_queries();
  const std::size_t bw = static_cast<std::size_t>(batch_width);
  result.selections.assign(n, Selection{});

  if (pool == nullptr || n == 0) {
    if (bw <= 1) {
      nn::QueryInput input;  // reused across the whole pass
      for (std::size_t i = 0; i < n; ++i) {
        select_one(net_, dataset, i, input, result.selections[i]);
      }
    } else {
      nn::BatchedQueryInput input;  // reused across the whole pass
      for (std::size_t base = 0; base < n; base += bw) {
        select_batch(net_, dataset, base, std::min(bw, n - base), input,
                     &result.selections[base]);
      }
    }
  } else {
    // Workers run pinned shared-weight replicas leased from the
    // ReplicaSet — no per-call clone, no weight copies — and concurrent
    // attack() calls (e.g. parallel per-design evaluation) lease disjoint
    // replicas, so they stay race-free.
    dataset.prebuild_images(pool);
    std::size_t num_chunks = std::min<std::size_t>(
        n, static_cast<std::size_t>(pool->num_threads()) + 1);
    // A bounded replica set caps the fan-out: asking for more replicas
    // than the bound can never be satisfied.
    const std::size_t cap = replicas_->max_replicas();
    if (cap > 0) num_chunks = std::min(num_chunks, cap);
    const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
    ReplicaLease lease = replicas_->lease(num_chunks, net_);
    runtime::TaskGroup group(pool);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      group.run([c, chunk, n, bw, &lease, &dataset, &result] {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        SMA_TRACE_SPAN_V("attack", "chunk", hi - lo);
        if (bw <= 1) {
          nn::QueryInput input;  // reused across this worker's chunk
          for (std::size_t i = lo; i < hi; ++i) {
            select_one(*lease.nets()[c], dataset, i, input,
                       result.selections[i]);
          }
        } else {
          // The batch grid is anchored at the chunk base; the partition
          // into chunks and batches depends only on n, the thread count,
          // and bw — never on scheduling — and per-query scores are
          // width-invariant anyway, so any grid gives the same result.
          nn::BatchedQueryInput input;  // reused across this worker's chunk
          for (std::size_t base = lo; base < hi; base += bw) {
            select_batch(*lease.nets()[c], dataset, base,
                         std::min(bw, hi - base), input,
                         &result.selections[base]);
          }
        }
      });
    }
    group.wait();
  }
  result.ccr = compute_ccr(result.selections);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace sma::attack
