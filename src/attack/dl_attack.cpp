#include "attack/dl_attack.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace sma::attack {

DlAttack::DlAttack(const nn::NetConfig& net_config) : net_(net_config) {}

DlAttack::DlAttack(nn::AttackNet net) : net_(std::move(net)) {}

TrainStats DlAttack::train(std::vector<QueryDataset>& training,
                           std::vector<QueryDataset>& validation,
                           const TrainConfig& config) {
  util::Timer timer;
  TrainStats stats;
  util::Pcg32 rng(config.seed, 0x7a13);

  nn::Adam optimizer(net_.params(), config.adam);
  const bool two_class = net_.config().two_class;

  // Index all trainable queries (those whose candidate list contains the
  // positive VPP — Eq. 6 needs a labelled target).
  struct Ref {
    int design;
    int query;
  };
  std::vector<std::vector<Ref>> per_design(training.size());
  for (std::size_t d = 0; d < training.size(); ++d) {
    for (std::size_t q = 0; q < training[d].num_queries(); ++q) {
      if (training[d].target(q) >= 0 &&
          !training[d].query(q).candidates.empty()) {
        per_design[d].push_back({static_cast<int>(d), static_cast<int>(q)});
      }
    }
  }

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (epoch > 0 && config.decay_every > 0 &&
        epoch % config.decay_every == 0) {
      optimizer.decay_lr();
    }

    // Per-epoch sample: subsample each design's queries, then shuffle the
    // combined order so designs interleave.
    std::vector<Ref> order;
    for (auto& refs : per_design) {
      util::shuffle(refs, rng);
      std::size_t take = config.max_queries_per_design > 0
                             ? std::min<std::size_t>(
                                   refs.size(),
                                   static_cast<std::size_t>(
                                       config.max_queries_per_design))
                             : refs.size();
      order.insert(order.end(), refs.begin(), refs.begin() + take);
    }
    util::shuffle(order, rng);

    double epoch_loss = 0.0;
    for (const Ref& ref : order) {
      QueryDataset& dataset = training[ref.design];
      nn::QueryInput input = dataset.input(ref.query);
      nn::Tensor scores = net_.forward(input);
      nn::LossResult loss =
          two_class ? nn::two_class_loss(scores, dataset.target(ref.query))
                    : nn::softmax_regression_loss(scores,
                                                  dataset.target(ref.query));
      net_.backward(loss.grad);
      optimizer.step();
      epoch_loss += loss.loss;
      ++stats.queries_seen;
    }
    stats.epoch_loss.push_back(
        order.empty() ? 0.0 : epoch_loss / static_cast<double>(order.size()));

    if (config.validate_every > 0 && !validation.empty() &&
        (epoch + 1) % config.validate_every == 0) {
      long total = 0;
      long correct = 0;
      for (QueryDataset& dataset : validation) {
        AttackResult result = attack(dataset);
        for (const Selection& s : result.selections) {
          total += s.num_sinks;
          if (s.correct) correct += s.num_sinks;
        }
      }
      stats.validation_ccr.push_back(
          total > 0 ? static_cast<double>(correct) / total : 0.0);
      util::log_info() << "epoch " << epoch + 1 << ": loss "
                       << stats.epoch_loss.back() << ", val CCR "
                       << stats.validation_ccr.back();
    } else {
      util::log_debug() << "epoch " << epoch + 1 << ": loss "
                        << stats.epoch_loss.back();
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

AttackResult DlAttack::attack(QueryDataset& dataset) {
  util::Timer timer;
  AttackResult result;
  result.attack_name = net_.config().use_images ? "dl(vec+img)" : "dl(vec)";

  for (std::size_t i = 0; i < dataset.num_queries(); ++i) {
    const split::SinkQuery& query = dataset.query(i);
    Selection selection;
    selection.sink_fragment = query.sink_fragment;
    selection.num_sinks = query.num_sinks;
    if (!query.candidates.empty()) {
      nn::QueryInput input = dataset.input(i);
      nn::Tensor scores = net_.forward(input);
      int predicted = nn::predict(scores);
      selection.chosen_source = query.candidates[predicted].source_fragment;
      selection.correct = query.candidates[predicted].positive;
    }
    result.selections.push_back(selection);
  }
  result.ccr = compute_ccr(result.selections);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace sma::attack
