// Crash-safe training checkpoints for DlAttack::train.
//
// A checkpoint captures everything the training loop needs to continue a
// run as if it had never stopped: the model weights, the full Adam state
// (moment vectors, step counter, decayed learning rate), the training
// RNG, the epoch counter, and the per-epoch stats history. Resume is
// byte-exact — tests/test_durability.cpp gates that a killed-and-resumed
// run produces a model byte-identical to an uninterrupted one, at any
// thread count and lane count.
//
// A `compat_digest` (hyperparameters + dataset shape + parameter sizes,
// computed by the training loop) is stored in the checkpoint and checked
// on load, so a checkpoint from a different run configuration is
// discarded instead of silently resumed into the wrong optimization.
//
// Files go through util/durable_io: atomic replace means a crash during
// save leaves the *previous* checkpoint intact, and the checksummed frame
// means a damaged file is detected and discarded (counted in
// CheckpointStats::corrupt_discards), falling back to a fresh start.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace sma::nn {
class Adam;
}

namespace sma::attack {

/// Everything needed to continue training exactly where it stopped.
struct TrainCheckpoint {
  std::uint64_t compat_digest = 0;  ///< run-configuration fingerprint
  int epochs_done = 0;              ///< completed epochs
  long queries_seen = 0;
  std::vector<double> epoch_loss;       ///< stats history so far
  std::vector<double> validation_ccr;   ///< stats history so far
  util::Pcg32::State rng;               ///< training RNG after epoch `epochs_done`
  std::string model_blob;               ///< weights (encode_params format)
  std::string adam_blob;                ///< Adam::serialize output
};

/// Serialize parameter *values* (in `params` order) into a blob:
/// u64 count, then per parameter u64 float-count + raw floats.
std::string encode_params(const std::vector<nn::Param>& params);

/// Restore a blob produced by `encode_params` into `params` in place
/// (shared-weight replicas referencing these tensors stay valid). Throws
/// util::FrameError on count/size mismatch, leaving values untouched.
void decode_params(const std::string& blob, std::vector<nn::Param>& params);

/// Flat binary payload encoding (framed and checksummed by save/load).
std::string encode_checkpoint(const TrainCheckpoint& ckpt);
/// Throws util::FrameError on truncation or malformed fields.
TrainCheckpoint decode_checkpoint(const std::string& payload);

/// Write `ckpt` to `path` via durable_io's atomic replace. Throws
/// util::DurableIoError on failure. Fault injection points:
/// `checkpoint.save` (before any IO — a crash here must leave the
/// previous checkpoint untouched) and `checkpoint.saved` (after the
/// rename — a crash here must leave the NEW checkpoint valid).
void save_checkpoint(const std::string& path, const TrainCheckpoint& ckpt);

/// Load `path` if it exists and holds a valid checkpoint whose digest
/// matches `expect_digest`. Returns true and fills `out` on success.
/// Missing file, damaged frame, undecodable payload, or digest mismatch
/// all return false (damage and mismatch are logged and counted in
/// CheckpointStats) — the caller starts fresh. Injected crashes
/// (util::fault::FaultInjected) are NOT swallowed.
bool try_load_checkpoint(const std::string& path, std::uint64_t expect_digest,
                         TrainCheckpoint* out);

/// Process-wide checkpoint lifecycle counters (obs::RunReport durability
/// section).
struct CheckpointStats {
  long saves = 0;             ///< successful save_checkpoint calls
  long resumes = 0;           ///< try_load_checkpoint successes
  long corrupt_discards = 0;  ///< damaged/mismatched checkpoints discarded
};
CheckpointStats checkpoint_stats();

}  // namespace sma::attack
