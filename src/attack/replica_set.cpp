#include "attack/replica_set.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/obs.hpp"

namespace sma::attack {

ReplicaLease::ReplicaLease(ReplicaSet* set, std::vector<nn::AttackNet*> nets,
                           std::vector<std::size_t> indices,
                           std::size_t lease_id)
    : set_(set),
      nets_(std::move(nets)),
      indices_(std::move(indices)),
      lease_id_(lease_id) {}

ReplicaLease::~ReplicaLease() { set_->release(indices_, lease_id_); }

std::size_t ReplicaSet::obtainable_locked() const {
  // Obtainable now = free pinned replicas + headroom to clone new ones.
  return (replicas_.size() - on_loan_now_) +
         (max_replicas_ > replicas_.size() ? max_replicas_ - replicas_.size()
                                           : 0);
}

ReplicaLease ReplicaSet::lease(std::size_t n, nn::AttackNet& master,
                               double timeout_seconds) {
  const double wait_start_us = obs::now_us();
  util::MutexLock lock(mutex_);
  if (max_replicas_ > 0) {
    if (n > max_replicas_) {
      throw std::invalid_argument(
          "ReplicaSet::lease: requested " + std::to_string(n) +
          " replicas from a set bounded to " + std::to_string(max_replicas_));
    }
    if (timeout_seconds < 0.0) {
      while (obtainable_locked() < n) available_.wait(lock);
    } else {
      // The deadline bounds only the wait below; wall-clock time never
      // feeds a model, table, or layout.
      const auto deadline =  // sma-lint: allow(entropy) cv deadline only
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout_seconds));
      while (obtainable_locked() < n) {
        if (available_.wait_until(lock, deadline) ==
                std::cv_status::timeout &&
            obtainable_locked() < n) {
          ++stats_.timeouts;
          SMA_COUNT("replica.lease_timeouts");
          throw AcquireTimeoutError(
              "ReplicaSet::lease: timed out after " +
              std::to_string(timeout_seconds) + "s waiting for " +
              std::to_string(n) + " of " + std::to_string(max_replicas_) +
              " bounded replicas");
        }
      }
    }
  }
  // sma-lint: allow(fp-contract) diagnostic stat; never feeds an output
  stats_.wait_seconds += (obs::now_us() - wait_start_us) * 1e-6;
  std::vector<nn::AttackNet*> nets;
  std::vector<std::size_t> indices;
  nets.reserve(n);
  indices.reserve(n);
  for (std::size_t i = 0; i < replicas_.size() && nets.size() < n; ++i) {
    if (!on_loan_[i]) {
      on_loan_[i] = true;
      nets.push_back(&replicas_[i]);
      indices.push_back(i);
    }
  }
  while (nets.size() < n) {
    replicas_.push_back(master.clone_shared());
    on_loan_.push_back(true);
    ++clones_created_;
    SMA_COUNT("replica.clones_created");
    nets.push_back(&replicas_.back());
    indices.push_back(replicas_.size() - 1);
  }
  ++stats_.leases;
  stats_.replicas_leased += static_cast<long>(n);
  stats_.clones_created = clones_created_;
  on_loan_now_ += indices.size();
  stats_.max_on_loan = std::max(stats_.max_on_loan, on_loan_now_);
  // Record the lease in the live table (slot reuse via the free list) so
  // occupancy snapshots see it while it is on loan.
  std::size_t lease_id;
  if (!live_free_.empty()) {
    lease_id = live_free_.back();
    live_free_.pop_back();
  } else {
    lease_id = live_.size();
    live_.emplace_back();
  }
  live_[lease_id] = LiveLease{obs::now_us(), indices.size(), true};
  SMA_COUNT("replica.leases");
  SMA_COUNT_N("replica.replicas_leased", n);
  return ReplicaLease(this, std::move(nets), std::move(indices), lease_id);
}

void ReplicaSet::release(const std::vector<std::size_t>& indices,
                         std::size_t lease_id) {
  const double now_us = obs::now_us();
  double held_seconds = 0.0;
  {
    util::MutexLock lock(mutex_);
    held_seconds = (now_us - live_[lease_id].start_us) * 1e-6;
    live_[lease_id].active = false;
    live_free_.push_back(lease_id);
    for (std::size_t i : indices) on_loan_[i] = false;
    on_loan_now_ -= indices.size();
    stats_.occupancy_seconds +=
        held_seconds * static_cast<double>(indices.size());
  }
  SMA_HISTOGRAM_US("replica.lease_held_us",
                   static_cast<std::uint64_t>(held_seconds * 1e6));
  available_.notify_all();
}

void ReplicaSet::set_max_replicas(std::size_t cap) {
  {
    util::MutexLock lock(mutex_);
    max_replicas_ = cap;
  }
  // A raised (or removed) bound may unblock waiters.
  available_.notify_all();
}

std::size_t ReplicaSet::max_replicas() const {
  util::MutexLock lock(mutex_);
  return max_replicas_;
}

long ReplicaSet::clones_created() const {
  util::MutexLock lock(mutex_);
  return clones_created_;
}

ReplicaSet::LeaseStats ReplicaSet::lease_stats() const {
  const double now_us = obs::now_us();
  util::MutexLock lock(mutex_);
  LeaseStats out = stats_;
  // Add the occupancy still-live leases have accrued so far (their
  // remainder lands in stats_ at release). max_on_loan is already
  // live-updated at lease time.
  for (const LiveLease& lease : live_) {
    if (!lease.active) continue;
    // sma-lint: allow(fp-contract) diagnostic stat; never feeds an output
    out.occupancy_seconds += (now_us - lease.start_us) * 1e-6 *
                             static_cast<double>(lease.replicas);
  }
  return out;
}

nn::ArenaStats ReplicaSet::arena_stats() const {
  util::MutexLock lock(mutex_);
  nn::ArenaStats total;
  for (const nn::AttackNet& replica : replicas_) {
    const nn::ArenaStats s = replica.arena().stats();
    total.bytes_pinned += s.bytes_pinned;
    total.slots += s.slots;
    total.allocs += s.allocs;
    total.requests += s.requests;
  }
  return total;
}

}  // namespace sma::attack
