#include "attack/replica_set.hpp"

namespace sma::attack {

ReplicaLease::ReplicaLease(ReplicaSet* set, std::vector<nn::AttackNet*> nets,
                           std::vector<std::size_t> indices)
    : set_(set), nets_(std::move(nets)), indices_(std::move(indices)) {}

ReplicaLease::~ReplicaLease() { set_->release(indices_); }

ReplicaLease ReplicaSet::lease(std::size_t n, nn::AttackNet& master) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<nn::AttackNet*> nets;
  std::vector<std::size_t> indices;
  nets.reserve(n);
  indices.reserve(n);
  for (std::size_t i = 0; i < replicas_.size() && nets.size() < n; ++i) {
    if (!on_loan_[i]) {
      on_loan_[i] = true;
      nets.push_back(&replicas_[i]);
      indices.push_back(i);
    }
  }
  while (nets.size() < n) {
    replicas_.push_back(master.clone_shared());
    on_loan_.push_back(true);
    ++clones_created_;
    nets.push_back(&replicas_.back());
    indices.push_back(replicas_.size() - 1);
  }
  return ReplicaLease(this, std::move(nets), std::move(indices));
}

void ReplicaSet::release(const std::vector<std::size_t>& indices) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i : indices) on_loan_[i] = false;
}

long ReplicaSet::clones_created() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clones_created_;
}

nn::ArenaStats ReplicaSet::arena_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  nn::ArenaStats total;
  for (const nn::AttackNet& replica : replicas_) {
    const nn::ArenaStats s = replica.arena().stats();
    total.bytes_pinned += s.bytes_pinned;
    total.slots += s.slots;
    total.allocs += s.allocs;
    total.requests += s.requests;
  }
  return total;
}

}  // namespace sma::attack
