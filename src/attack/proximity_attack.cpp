#include "attack/proximity_attack.hpp"

#include <limits>

#include "util/timer.hpp"

namespace sma::attack {

AttackResult run_proximity_attack(const split::SplitDesign& split,
                                  const ProximityAttackConfig& config) {
  util::Timer timer;
  AttackResult result;
  result.attack_name = "proximity";

  std::vector<split::SinkQuery> queries =
      split::build_queries(split, config.candidates);
  for (const split::SinkQuery& query : queries) {
    Selection selection;
    selection.sink_fragment = query.sink_fragment;
    selection.num_sinks = query.num_sinks;

    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const split::Vpp& vpp : query.candidates) {
      const split::VirtualPin& p = split.virtual_pin(vpp.sink_vp);
      const split::VirtualPin& q = split.virtual_pin(vpp.source_vp);
      std::int64_t distance = util::manhattan(p.location, q.location);
      if (distance < best) {
        best = distance;
        selection.chosen_source = vpp.source_fragment;
        selection.correct = vpp.positive;
      }
    }
    result.selections.push_back(selection);
  }
  result.ccr = compute_ccr(result.selections);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace sma::attack
