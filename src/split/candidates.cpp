#include "split/candidates.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace sma::split {

bool prefers(const VirtualPin& p, const VirtualPin& q) {
  if (p.stub_directions.empty()) return true;  // unconstrained pin
  const util::Point d{q.location.x - p.location.x,
                      q.location.y - p.location.y};
  for (const util::Point& stub : p.stub_directions) {
    // q on the opposite side of (or beside) the wire stub.
    std::int64_t dot = d.x * stub.x + d.y * stub.y;
    if (dot <= 0) return true;
  }
  return false;
}

VppDistance vpp_distance(const SplitDesign& split, const VirtualPin& sink_vp,
                         const VirtualPin& source_vp) {
  const tech::LayerStack& stack = *split.design().stack;
  util::Axis pref = stack.preferred(split.split_layer());
  util::Axis nonpref = util::perpendicular(pref);
  util::Point d{source_vp.location.x - sink_vp.location.x,
                source_vp.location.y - sink_vp.location.y};
  VppDistance dist;
  dist.non_preferred = std::abs(util::along(d, nonpref));
  dist.preferred = std::abs(util::along(d, pref));
  return dist;
}

namespace {

/// Source virtual pins sorted along the split layer's non-preferred axis,
/// for banded nearest-neighbour gathering. The distance criterion orders
/// by non-preferred distance first, so the nearest candidates of a sink
/// pin always live in a thin band around its non-preferred coordinate.
struct SourceVpIndex {
  struct Entry {
    std::int64_t nonpref = 0;
    int vp_id = -1;
    int fragment = -1;
  };
  std::vector<Entry> entries;

  SourceVpIndex(const SplitDesign& split, util::Axis nonpref_axis) {
    for (int source_fragment : split.source_fragments()) {
      for (int vp_id : split.fragment(source_fragment).virtual_pins) {
        const VirtualPin& vp = split.virtual_pin(vp_id);
        entries.push_back(
            {util::along(vp.location, nonpref_axis), vp_id, source_fragment});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.nonpref != b.nonpref) return a.nonpref < b.nonpref;
                return a.vp_id < b.vp_id;
              });
  }

  /// The `count` entries nearest to `coord` by |Δnonpref| (two-pointer
  /// expansion; ties resolved toward lower coordinates first).
  void gather(std::int64_t coord, std::size_t count,
              std::vector<const Entry*>& out) const {
    out.clear();
    if (entries.empty()) return;
    // First entry with nonpref >= coord.
    auto it = std::lower_bound(
        entries.begin(), entries.end(), coord,
        [](const Entry& e, std::int64_t c) { return e.nonpref < c; });
    std::size_t right = static_cast<std::size_t>(it - entries.begin());
    std::size_t left = right;
    while (out.size() < count && (left > 0 || right < entries.size())) {
      std::int64_t dl = left > 0
                            ? coord - entries[left - 1].nonpref
                            : std::numeric_limits<std::int64_t>::max();
      std::int64_t dr = right < entries.size()
                            ? entries[right].nonpref - coord
                            : std::numeric_limits<std::int64_t>::max();
      if (dl <= dr) {
        out.push_back(&entries[--left]);
      } else {
        out.push_back(&entries[right++]);
      }
    }
  }
};

}  // namespace

std::vector<SinkQuery> build_queries(const SplitDesign& split,
                                     const CandidateConfig& config) {
  const tech::LayerStack& stack = *split.design().stack;
  const util::Axis pref = stack.preferred(split.split_layer());
  const util::Axis nonpref = util::perpendicular(pref);

  SourceVpIndex index(split, nonpref);
  // Gather enough band neighbours that criteria filtering still leaves n
  // candidates; generous multiple keeps the banded search near-exact.
  const std::size_t gather_count =
      std::max<std::size_t>(static_cast<std::size_t>(config.max_candidates) * 8,
                            128);

  std::vector<SinkQuery> queries;
  queries.reserve(split.sink_fragments().size());
  std::vector<const SourceVpIndex::Entry*> band;

  for (int sink_fragment : split.sink_fragments()) {
    const Fragment& sink = split.fragment(sink_fragment);
    SinkQuery query;
    query.sink_fragment = sink_fragment;
    query.num_sinks = sink.num_sink_pins;
    const int positive_source = split.positive_source_of(sink_fragment);

    struct Entry {
      VppDistance distance;
      Vpp vpp;
    };
    std::vector<Entry> entries;

    for (int sink_vp_id : sink.virtual_pins) {
      const VirtualPin& p = split.virtual_pin(sink_vp_id);
      index.gather(util::along(p.location, nonpref), gather_count, band);
      for (const SourceVpIndex::Entry* source_entry : band) {
        const VirtualPin& q = split.virtual_pin(source_entry->vp_id);
        if (config.use_direction_criterion && !prefers(p, q) &&
            !prefers(q, p)) {
          continue;
        }
        Entry entry;
        entry.distance = vpp_distance(split, p, q);
        entry.vpp.sink_vp = sink_vp_id;
        entry.vpp.source_vp = source_entry->vp_id;
        entry.vpp.sink_fragment = sink_fragment;
        entry.vpp.source_fragment = source_entry->fragment;
        entry.vpp.positive = source_entry->fragment == positive_source;
        entries.push_back(entry);
      }
    }

    // Non-duplication: keep the closest VPP per source fragment.
    if (config.use_non_duplication) {
      std::map<int, Entry> best;  // source fragment -> best entry
      for (const Entry& entry : entries) {
        auto [it, inserted] = best.emplace(entry.vpp.source_fragment, entry);
        if (!inserted && entry.distance < it->second.distance) {
          it->second = entry;
        }
      }
      entries.clear();
      for (const auto& [fragment, entry] : best) {
        entries.push_back(entry);
      }
    }

    // Distance criterion: n closest, deterministic ordering.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       if (a.distance != b.distance) {
                         return a.distance < b.distance;
                       }
                       return a.vpp.source_fragment < b.vpp.source_fragment;
                     });
    if (static_cast<int>(entries.size()) > config.max_candidates) {
      entries.resize(config.max_candidates);
    }

    query.candidates.reserve(entries.size());
    for (const Entry& entry : entries) {
      if (entry.vpp.positive && query.positive_index < 0) {
        query.positive_index = static_cast<int>(query.candidates.size());
      }
      query.candidates.push_back(entry.vpp);
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

double candidate_hit_rate(const std::vector<SinkQuery>& queries) {
  long total = 0;
  long hit = 0;
  for (const SinkQuery& query : queries) {
    total += query.num_sinks;
    if (query.positive_index >= 0) hit += query.num_sinks;
  }
  return total > 0 ? static_cast<double>(hit) / total : 0.0;
}

}  // namespace sma::split
