#include "split/split_design.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace sma::split {

namespace {

using netlist::NetId;
using netlist::PinRef;
using route::RouteSegment;
using route::RouteVia;
using util::Point;

/// Is `p` on the axis-aligned segment (inclusive)?
bool point_on_segment(const Point& p, const RouteSegment& s) {
  return p.x >= s.a.x && p.x <= s.b.x && p.y >= s.a.y && p.y <= s.b.y;
}

/// Do two axis-aligned segments on the same layer touch?
bool segments_touch(const RouteSegment& s, const RouteSegment& t) {
  return s.a.x <= t.b.x && t.a.x <= s.b.x && s.a.y <= t.b.y && t.a.y <= s.b.y;
}

/// Union-find over small per-net element sets.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(int a, int b) { parent_[find(a)] = find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::int64_t Fragment::wirelength_on(int layer) const {
  std::int64_t total = 0;
  for (const RouteSegment& s : segments) {
    if (s.layer == layer) total += s.length();
  }
  return total;
}

std::int64_t Fragment::total_wirelength() const {
  std::int64_t total = 0;
  for (const RouteSegment& s : segments) total += s.length();
  return total;
}

int Fragment::vias_on(int cut) const {
  int count = 0;
  for (const RouteVia& v : vias) {
    if (v.cut == cut) ++count;
  }
  return count;
}

SplitDesign::SplitDesign(const layout::Design* design, int split_layer,
                         runtime::ThreadPool* pool)
    : design_(design), split_layer_(split_layer) {
  if (design_ == nullptr) throw std::invalid_argument("null design");
  if (split_layer_ < 1 || split_layer_ >= design_->stack->num_layers()) {
    throw std::invalid_argument("split layer out of range");
  }
  SMA_TRACE_SPAN_V("split", "extract", split_layer_);
  SMA_COUNT("split.extractions");
  const netlist::Netlist& nl = *design_->netlist;
  net_source_fragment_.assign(nl.num_nets(), -1);
  net_broken_.assign(nl.num_nets(), false);

  // Per-net extraction is independent (slot-addressed into `extractions`);
  // the stitch below assigns global ids in net order, so pooled and serial
  // construction produce identical fragment/vpin numbering.
  const std::size_t num_nets = static_cast<std::size_t>(nl.num_nets());
  std::vector<NetExtraction> extractions = runtime::parallel_map(
      pool, num_nets, [&](std::size_t n) {
        return extract_net(static_cast<NetId>(n));
      });

  for (NetId n = 0; n < nl.num_nets(); ++n) {
    NetExtraction& e = extractions[n];
    if (!e.broken) {
      ++unbroken_nets_;
      continue;
    }
    net_broken_[n] = true;
    const int fragment_base = static_cast<int>(fragments_.size());
    const int vp_base = static_cast<int>(virtual_pins_.size());
    for (Fragment& f : e.fragments) {
      f.id += fragment_base;
      for (int& vp : f.virtual_pins) vp += vp_base;
      fragments_.push_back(std::move(f));
    }
    for (VirtualPin& vp : e.virtual_pins) {
      vp.id += vp_base;
      vp.fragment += fragment_base;
      virtual_pins_.push_back(std::move(vp));
    }
    if (e.source_fragment >= 0) {
      net_source_fragment_[n] = e.source_fragment + fragment_base;
    }
  }

  for (const Fragment& f : fragments_) {
    if (f.is_source()) source_fragments_.push_back(f.id);
    if (f.is_sink()) sink_fragments_.push_back(f.id);
  }
}

SplitDesign::NetExtraction SplitDesign::extract_net(NetId net_id) const {
  const netlist::Netlist& nl = *design_->netlist;
  const route::RoutingGrid& grid = *design_->grid;
  const netlist::Net& net = nl.net(net_id);
  const route::NetRoute& route = design_->route_of(net_id);

  // --- classify route elements.
  std::vector<RouteSegment> feol_segments;
  std::vector<RouteVia> feol_vias;
  std::vector<RouteVia> vp_vias;  // cut == split: virtual pins
  bool has_beol = false;
  for (const RouteSegment& s : route.segments) {
    if (s.layer <= split_layer_) {
      feol_segments.push_back(s);
    } else {
      has_beol = true;
    }
  }
  for (const RouteVia& v : route.vias) {
    if (v.cut < split_layer_) {
      feol_vias.push_back(v);
    } else if (v.cut == split_layer_) {
      vp_vias.push_back(v);
    } else {
      has_beol = true;
    }
  }

  NetExtraction out;

  // Pin contact points (router connects pins at their gcell center).
  struct PinElement {
    PinRef pin;
    Point at;
    bool is_sink;
  };
  std::vector<PinElement> pin_elements;
  auto add_pin = [&](const PinRef& pin, bool is_sink) {
    Point loc = design_->placement->pin_location(pin);
    pin_elements.push_back({pin, grid.gcell_center(grid.gcell_at(loc)), is_sink});
  };
  if (net.has_driver()) add_pin(net.driver, false);
  for (const PinRef& sink : net.sinks) add_pin(sink, true);

  if (vp_vias.empty()) {
    // Net fully routed in the FEOL (or not routed at all): unbroken.
    (void)has_beol;
    return out;
  }

  // --- union-find over elements: [pins][segments][vias].
  const int num_pins = static_cast<int>(pin_elements.size());
  const int num_segs = static_cast<int>(feol_segments.size());
  const int num_vias = static_cast<int>(feol_vias.size());
  const int total = num_pins + num_segs + num_vias;
  UnionFind uf(total);

  auto seg_index = [&](int s) { return num_pins + s; };
  auto via_index = [&](int v) { return num_pins + num_segs + v; };

  // pin-pin (same routed contact point).
  for (int i = 0; i < num_pins; ++i) {
    for (int j = i + 1; j < num_pins; ++j) {
      if (pin_elements[i].at == pin_elements[j].at) uf.unite(i, j);
    }
  }
  // pin-segment and pin-via: pins sit on metal 1.
  for (int i = 0; i < num_pins; ++i) {
    for (int s = 0; s < num_segs; ++s) {
      if (feol_segments[s].layer == 1 &&
          point_on_segment(pin_elements[i].at, feol_segments[s])) {
        uf.unite(i, seg_index(s));
      }
    }
    for (int v = 0; v < num_vias; ++v) {
      if (feol_vias[v].cut == 1 && feol_vias[v].at == pin_elements[i].at) {
        uf.unite(i, via_index(v));
      }
    }
  }
  // segment-segment on the same layer.
  for (int s = 0; s < num_segs; ++s) {
    for (int t = s + 1; t < num_segs; ++t) {
      if (feol_segments[s].layer == feol_segments[t].layer &&
          segments_touch(feol_segments[s], feol_segments[t])) {
        uf.unite(seg_index(s), seg_index(t));
      }
    }
  }
  // via-segment: via on cut c touches metal c and c+1 at its location.
  for (int v = 0; v < num_vias; ++v) {
    const RouteVia& via = feol_vias[v];
    for (int s = 0; s < num_segs; ++s) {
      const RouteSegment& seg = feol_segments[s];
      if ((seg.layer == via.cut || seg.layer == via.cut + 1) &&
          point_on_segment(via.at, seg)) {
        uf.unite(via_index(v), seg_index(s));
      }
    }
  }
  // via-via: stacked vias share the metal layer between them.
  for (int v = 0; v < num_vias; ++v) {
    for (int w = v + 1; w < num_vias; ++w) {
      if (std::abs(feol_vias[v].cut - feol_vias[w].cut) == 1 &&
          feol_vias[v].at == feol_vias[w].at) {
        uf.unite(via_index(v), via_index(w));
      }
    }
  }

  // --- attach virtual pins: a VP via touches metal `split` at `at`.
  // Find an element that carries that point.
  auto component_of_vp = [&](const RouteVia& vp) -> int {
    for (int s = 0; s < num_segs; ++s) {
      if (feol_segments[s].layer == split_layer_ &&
          point_on_segment(vp.at, feol_segments[s])) {
        return uf.find(seg_index(s));
      }
    }
    for (int v = 0; v < num_vias; ++v) {
      if (feol_vias[v].cut == split_layer_ - 1 && feol_vias[v].at == vp.at) {
        return uf.find(via_index(v));
      }
    }
    if (split_layer_ == 1) {
      for (int i = 0; i < num_pins; ++i) {
        if (pin_elements[i].at == vp.at) return uf.find(i);
      }
    }
    return -1;  // floating virtual pin (degenerate route)
  };

  // --- build fragments per component that has at least one VP. Ids are
  // net-local here; the constructor's stitch pass rebases them.
  std::vector<int> component_fragment(total, -1);
  auto fragment_for = [&](int component) -> int {
    if (component_fragment[component] >= 0) {
      return component_fragment[component];
    }
    Fragment fragment;
    fragment.id = static_cast<int>(out.fragments.size());
    fragment.net = net_id;
    component_fragment[component] = fragment.id;
    out.fragments.push_back(std::move(fragment));
    return component_fragment[component];
  };

  std::vector<std::pair<RouteVia, int>> vp_with_fragment;
  for (const RouteVia& vp : vp_vias) {
    int component = component_of_vp(vp);
    if (component < 0) continue;
    vp_with_fragment.emplace_back(vp, fragment_for(component));
  }
  if (vp_with_fragment.empty()) {
    return out;
  }
  out.broken = true;

  // Populate fragment contents.
  for (int i = 0; i < num_pins; ++i) {
    int fragment_id = component_fragment[uf.find(i)];
    if (fragment_id < 0) continue;
    Fragment& fragment = out.fragments[fragment_id];
    fragment.pins.push_back(pin_elements[i].pin);
    if (pin_elements[i].is_sink) {
      ++fragment.num_sink_pins;
    } else {
      fragment.has_driver = true;
    }
  }
  for (int s = 0; s < num_segs; ++s) {
    int fragment_id = component_fragment[uf.find(seg_index(s))];
    if (fragment_id >= 0) {
      out.fragments[fragment_id].segments.push_back(feol_segments[s]);
    }
  }
  for (int v = 0; v < num_vias; ++v) {
    int fragment_id = component_fragment[uf.find(via_index(v))];
    if (fragment_id >= 0) {
      out.fragments[fragment_id].vias.push_back(feol_vias[v]);
    }
  }

  // Virtual pins with stub directions.
  for (const auto& [vp, fragment_id] : vp_with_fragment) {
    VirtualPin pin;
    pin.id = static_cast<int>(out.virtual_pins.size());
    pin.fragment = fragment_id;
    pin.location = vp.at;
    for (const RouteSegment& s : out.fragments[fragment_id].segments) {
      if (s.layer != split_layer_ || !point_on_segment(vp.at, s)) continue;
      // Wire extends from the pin toward each segment end it does not sit on.
      if (vp.at != s.a) {
        pin.stub_directions.push_back(
            {s.a.x < vp.at.x ? -1 : 0, s.a.y < vp.at.y ? -1 : 0});
      }
      if (vp.at != s.b) {
        pin.stub_directions.push_back(
            {s.b.x > vp.at.x ? 1 : 0, s.b.y > vp.at.y ? 1 : 0});
      }
    }
    out.fragments[fragment_id].virtual_pins.push_back(pin.id);
    out.virtual_pins.push_back(std::move(pin));
  }

  // Ground truth source fragment for this net.
  for (int f = 0; f < static_cast<int>(out.fragments.size()); ++f) {
    if (out.fragments[f].has_driver) {
      out.source_fragment = f;
      break;
    }
  }
  return out;
}

int SplitDesign::positive_source_of(int sink_fragment) const {
  const Fragment& fragment = fragments_.at(sink_fragment);
  return net_source_fragment_.at(fragment.net);
}

SplitStats SplitDesign::stats() const {
  SplitStats s;
  s.num_fragments = static_cast<int>(fragments_.size());
  s.num_source_fragments = static_cast<int>(source_fragments_.size());
  s.num_sink_fragments = static_cast<int>(sink_fragments_.size());
  s.num_virtual_pins = static_cast<int>(virtual_pins_.size());
  s.num_unbroken_nets = unbroken_nets_;
  std::vector<bool> seen(design_->netlist->num_nets(), false);
  for (const Fragment& f : fragments_) {
    if (!seen[f.net]) {
      seen[f.net] = true;
      ++s.num_broken_nets;
    }
  }
  return s;
}

}  // namespace sma::split
