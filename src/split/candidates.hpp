// Virtual-pin-pair (VPP) candidate generation (Sec. 4.1 of the paper).
//
// For every sink fragment, the attack scores a short list of candidate
// source fragments instead of all of them. Candidates are selected with
// the paper's three criteria:
//   1. direction   — keep a VPP only if at least one of its two virtual
//                    pins "prefers" the other (Fig. 3 / Table 1): q is
//                    preferred by p when q lies on the opposite side of a
//                    wire stub attached to p (pins without stubs are
//                    unconstrained);
//   2. non-duplication — one VPP per (sink fragment, source fragment)
//                    pair: the one with the smallest distance along the
//                    split layer's non-preferred routing direction;
//   3. distance    — keep the n closest, ordered by (non-preferred,
//                    preferred) distance.
#pragma once

#include <cstdint>
#include <vector>

#include "split/split_design.hpp"

namespace sma::split {

/// One candidate virtual pin pair.
struct Vpp {
  int sink_vp = -1;
  int source_vp = -1;
  int sink_fragment = -1;
  int source_fragment = -1;
  bool positive = false;  ///< training-time label
};

/// All candidates for one sink fragment; the unit of one attack query.
struct SinkQuery {
  int sink_fragment = -1;
  int num_sinks = 0;                ///< c_i of Eq. (1)
  std::vector<Vpp> candidates;      ///< at most n, distance-ordered
  int positive_index = -1;          ///< index into candidates, -1 if absent
};

struct CandidateConfig {
  int max_candidates = 31;          ///< n (the paper uses 31)
  bool use_direction_criterion = true;
  bool use_non_duplication = true;
};

/// Does virtual pin `p` prefer `q` (direction-criterion semantics)?
bool prefers(const VirtualPin& p, const VirtualPin& q);

/// Candidate distance metric: (non-preferred, preferred) axis distances
/// w.r.t. the split layer's preferred routing direction.
struct VppDistance {
  std::int64_t non_preferred = 0;
  std::int64_t preferred = 0;
  friend auto operator<=>(const VppDistance&, const VppDistance&) = default;
};

VppDistance vpp_distance(const SplitDesign& split, const VirtualPin& sink_vp,
                         const VirtualPin& source_vp);

/// Build queries for every sink fragment of `split`.
std::vector<SinkQuery> build_queries(const SplitDesign& split,
                                     const CandidateConfig& config = {});

/// Fraction of queries whose candidate list contains the positive VPP —
/// an upper bound on any attack's CCR over these queries (sink-weighted).
double candidate_hit_rate(const std::vector<SinkQuery>& queries);

}  // namespace sma::split
