// Split-manufacturing model (Sec. 2.2 of the paper).
//
// Cutting a routed design at the split layer divides every net's wiring
// into FEOL fragments: connected pieces of metal/vias on layers 1..split.
// Vias crossing from the split layer to the layer above become *virtual
// pins* — the only spots where the hidden BEOL attaches. A fragment
// containing the net's driver is a *source fragment*; a driverless
// fragment containing sink pins is a *sink fragment*. The attacker's task
// is to reconnect each sink fragment to the right source fragment.
//
// Fragment extraction here is purely geometric (segment/via/pin contact),
// so it works identically on freshly routed designs and on designs
// re-imported from DEF-lite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "layout/design.hpp"
#include "route/net_route.hpp"
#include "runtime/thread_pool.hpp"
#include "util/geometry.hpp"

namespace sma::split {

/// A via stub from the split layer up into the BEOL; the attachment point
/// of one hidden connection.
struct VirtualPin {
  int id = -1;
  int fragment = -1;            ///< owning fragment id
  util::Point location;
  /// Directions (unit axis vectors) of split-layer wire stubs attached at
  /// this pin, pointing from the pin along the wire. Empty when the via
  /// stack carries no split-layer metal — such a pin is unconstrained for
  /// the direction criterion.
  std::vector<util::Point> stub_directions;
};

/// One connected FEOL piece of a net holding at least one virtual pin.
struct Fragment {
  int id = -1;
  netlist::NetId net = netlist::kInvalidId;
  bool has_driver = false;
  int num_sink_pins = 0;
  std::vector<netlist::PinRef> pins;          ///< cell/port pins inside
  std::vector<route::RouteSegment> segments;  ///< FEOL wiring
  std::vector<route::RouteVia> vias;          ///< FEOL vias (cut < split)
  std::vector<int> virtual_pins;              ///< VirtualPin ids

  bool is_source() const { return has_driver; }
  bool is_sink() const { return !has_driver && num_sink_pins > 0; }

  /// Wirelength on a given metal layer (DBU).
  std::int64_t wirelength_on(int layer) const;
  std::int64_t total_wirelength() const;
  int vias_on(int cut) const;
};

/// Summary counters for reporting.
struct SplitStats {
  int num_fragments = 0;
  int num_source_fragments = 0;
  int num_sink_fragments = 0;
  int num_virtual_pins = 0;
  int num_broken_nets = 0;
  int num_unbroken_nets = 0;
};

/// The FEOL view of a design split at `split_layer`, plus the training-time
/// ground truth (which source fragment each sink fragment belongs to).
class SplitDesign {
 public:
  /// Extract the FEOL view of `design` cut at `split_layer`. Per-net
  /// fragment extraction is a pure geometric function of one net's route,
  /// so a non-null `pool` extracts nets concurrently; global fragment and
  /// virtual-pin ids are then assigned in a serial net-order stitch pass,
  /// making the result bit-identical to the serial construction at any
  /// thread count.
  explicit SplitDesign(const layout::Design* design, int split_layer,
                       runtime::ThreadPool* pool = nullptr);

  const layout::Design& design() const { return *design_; }
  int split_layer() const { return split_layer_; }

  const std::vector<Fragment>& fragments() const { return fragments_; }
  const Fragment& fragment(int id) const { return fragments_.at(id); }
  const std::vector<VirtualPin>& virtual_pins() const { return virtual_pins_; }
  const VirtualPin& virtual_pin(int id) const { return virtual_pins_.at(id); }

  /// Fragment ids of all source / sink fragments.
  const std::vector<int>& source_fragments() const {
    return source_fragments_;
  }
  const std::vector<int>& sink_fragments() const { return sink_fragments_; }

  /// Ground truth: source fragment of the sink fragment's net (-1 if the
  /// net has no source fragment). Only available because we split our own
  /// layouts — an attacker uses this at training time only.
  int positive_source_of(int sink_fragment) const;

  /// True if the net was cut by the split (contributed fragments). Nets
  /// routed entirely within the FEOL are unbroken: their connectivity is
  /// plainly visible to the attacker.
  bool net_is_broken(netlist::NetId net) const { return net_broken_.at(net); }

  SplitStats stats() const;

 private:
  /// Pure per-net extraction result with net-local fragment/vpin ids;
  /// the constructor's stitch pass rebases them onto the global arrays.
  struct NetExtraction {
    std::vector<Fragment> fragments;
    std::vector<VirtualPin> virtual_pins;
    bool broken = false;
    int source_fragment = -1;  ///< net-local id, -1 if none
  };
  NetExtraction extract_net(netlist::NetId net) const;

  const layout::Design* design_;
  int split_layer_;
  std::vector<Fragment> fragments_;
  std::vector<VirtualPin> virtual_pins_;
  std::vector<int> source_fragments_;
  std::vector<int> sink_fragments_;
  /// Per net: fragment id of its source fragment, -1 if none.
  std::vector<int> net_source_fragment_;
  std::vector<bool> net_broken_;
  int unbroken_nets_ = 0;
};

}  // namespace sma::split
