// Image-based features (Sec. 3.2 of the paper).
//
// For each virtual pin, the local routed layout is rendered as gray-scale
// images at three scales (pixel regions of 0.05, 0.1 and 0.2 um in the
// paper), each `size` x `size` pixels, centered on the pin. A pixel packs
// 2m layer bits (m = number of FEOL layers): the m high bits mark the
// pin's *own* fragment per layer, the m low bits mark *other* fragments;
// higher metal layers map to more significant bits within each group and
// vias set both adjacent layers' bits. The packed value is normalized to
// [0, 1] and the scales are stacked as image channels.
#pragma once

#include <cstdint>
#include <vector>

#include "split/split_design.hpp"

namespace sma::features {

struct ImageConfig {
  /// Pixels per side (odd, so the pin is a pixel center). Paper: 99.
  int size = 99;
  /// DBU per pixel, one entry per scale/channel. Paper: 50, 100, 200 nm.
  std::vector<std::int64_t> pixel_sizes = {50, 100, 200};
  /// Rasterized wire half-width in DBU.
  std::int64_t wire_half_width = 35;

  int channels() const { return static_cast<int>(pixel_sizes.size()); }
  std::size_t pixels_per_image() const {
    return static_cast<std::size_t>(channels()) * size * size;
  }
};

/// Renders virtual-pin images for one split design. Construction builds a
/// bucket index over all fragment geometry; rendering is then local.
class ImageRenderer {
 public:
  ImageRenderer(const split::SplitDesign* split, ImageConfig config);

  const ImageConfig& config() const { return config_; }

  /// Image tensor for a virtual pin, laid out [channel][y][x], values in
  /// [0, 1].
  std::vector<float> render(int virtual_pin_id) const;

 private:
  struct Shape {
    int fragment = -1;
    /// Inflated wire rectangle (or via pad) in DBU.
    util::Rect box;
    /// Bit index contribution base: metal layer(s) covered.
    int layer_lo = 1;
    int layer_hi = 1;
  };

  void add_shape(const Shape& shape);
  void render_shape(const Shape& shape, int own_fragment,
                    const util::Point& center, std::vector<float>& image,
                    std::vector<std::uint32_t>& bits) const;

  const split::SplitDesign* split_;
  ImageConfig config_;
  int num_feol_layers_;
  std::vector<Shape> shapes_;
  /// Uniform bucket grid over the die for shape lookup.
  std::int64_t bucket_size_ = 0;
  int buckets_x_ = 0;
  int buckets_y_ = 0;
  std::vector<std::vector<std::int32_t>> buckets_;  ///< shape indices
};

}  // namespace sma::features
