#include "features/vector_features.hpp"

#include <algorithm>

namespace sma::features {

namespace {

/// Unit scaling keeps every feature O(1) for the neural network.
constexpr double kDbuToMicron = 1.0 / 1000.0;
constexpr double kCapScale = 1.0 / 10.0;     // fF -> ~O(1)
constexpr double kDelayScale = 1.0 / 100.0;  // ps -> ~O(1)
constexpr double kWlScale = kDbuToMicron / 10.0;

}  // namespace

const std::array<const char*, kNumVectorFeatures>& vector_feature_names() {
  static const std::array<const char*, kNumVectorFeatures> kNames = {
      "dist_pref_signed",   "dist_nonpref_signed", "dist_pref_abs",
      "dist_nonpref_abs",   "dist_manhattan",      "dist_pref_by_width",
      "dist_nonpref_by_h",  "dist_pref_abs_by_w",  "dist_nonpref_abs_by_h",
      "dist_by_halfperim",  "load_cap_upper",      "load_cap_lower",
      "num_sinks",          "src_wl_m1",           "src_wl_m2",
      "src_wl_m3",          "snk_wl_m1",           "snk_wl_m2",
      "snk_wl_m3",          "src_vias_v12",        "src_vias_v23",
      "snk_vias_v12",       "snk_vias_v23",        "driver_delay_lb",
      "src_wl_total",       "snk_wl_total",        "src_num_vpins",
  };
  return kNames;
}

FragmentElectrical fragment_electrical(const split::SplitDesign& split,
                                       const split::Fragment& fragment) {
  const layout::Design& design = split.design();
  const netlist::Netlist& nl = *design.netlist;
  const tech::LayerStack& stack = *design.stack;

  FragmentElectrical e;
  for (const route::RouteSegment& s : fragment.segments) {
    e.wire_cap += stack.layer(s.layer).cap_per_dbu *
                  static_cast<double>(s.length());
  }
  for (const netlist::PinRef& pin : fragment.pins) {
    if (nl.is_driver_pin(pin)) {
      if (!pin.is_port()) {
        const tech::LibCell& lib = nl.lib_cell_of(pin.id);
        e.driver_max_cap = lib.max_load_cap;
        e.driver_resistance = lib.drive_resistance;
        e.driver_intrinsic_delay = lib.intrinsic_delay;
      } else {
        // Primary input port: model a strong external driver.
        e.driver_max_cap = 120.0;
        e.driver_resistance = 3500.0;
      }
    } else {
      e.sink_pin_cap += nl.sink_capacitance(pin);
    }
  }
  return e;
}

VectorFeatures compute_vector_features(const split::SplitDesign& split,
                                       const split::Vpp& vpp) {
  const layout::Design& design = split.design();
  const tech::LayerStack& stack = *design.stack;
  const int split_layer = split.split_layer();

  const split::VirtualPin& sink_vp = split.virtual_pin(vpp.sink_vp);
  const split::VirtualPin& source_vp = split.virtual_pin(vpp.source_vp);
  const split::Fragment& sink = split.fragment(vpp.sink_fragment);
  const split::Fragment& source = split.fragment(vpp.source_fragment);

  const util::Axis pref = stack.preferred(split_layer);
  const util::Axis nonpref = util::perpendicular(pref);
  const util::Point d{source_vp.location.x - sink_vp.location.x,
                      source_vp.location.y - sink_vp.location.y};
  const double d_pref = static_cast<double>(util::along(d, pref));
  const double d_nonpref = static_cast<double>(util::along(d, nonpref));

  const util::Rect& die = design.placement->floorplan().die;
  const double chip_w = std::max<double>(1.0, static_cast<double>(die.width()));
  const double chip_h =
      std::max<double>(1.0, static_cast<double>(die.height()));
  const double half_perim = chip_w + chip_h;
  const double pref_extent =
      pref == util::Axis::kHorizontal ? chip_w : chip_h;
  const double nonpref_extent =
      pref == util::Axis::kHorizontal ? chip_h : chip_w;

  const FragmentElectrical se = fragment_electrical(split, source);
  const FragmentElectrical ke = fragment_electrical(split, sink);

  const double load_lower = ke.sink_pin_cap + se.wire_cap + ke.wire_cap;
  const double delay_lower =
      se.driver_intrinsic_delay +
      se.driver_resistance * load_lower * 1e-3;  // ohm*fF = 1e-3 ps

  VectorFeatures f{};
  int i = 0;
  // [0..4] distances in microns.
  f[i++] = static_cast<float>(d_pref * kDbuToMicron);
  f[i++] = static_cast<float>(d_nonpref * kDbuToMicron);
  f[i++] = static_cast<float>(std::abs(d_pref) * kDbuToMicron);
  f[i++] = static_cast<float>(std::abs(d_nonpref) * kDbuToMicron);
  f[i++] =
      static_cast<float>((std::abs(d_pref) + std::abs(d_nonpref)) * kDbuToMicron);
  // [5..9] chip-relative ratios.
  f[i++] = static_cast<float>(d_pref / pref_extent);
  f[i++] = static_cast<float>(d_nonpref / nonpref_extent);
  f[i++] = static_cast<float>(std::abs(d_pref) / pref_extent);
  f[i++] = static_cast<float>(std::abs(d_nonpref) / nonpref_extent);
  f[i++] = static_cast<float>((std::abs(d_pref) + std::abs(d_nonpref)) /
                              half_perim);
  // [10..12] electrical bounds and sink count.
  f[i++] = static_cast<float>(se.driver_max_cap * kCapScale);
  f[i++] = static_cast<float>(load_lower * kCapScale);
  f[i++] = static_cast<float>(sink.num_sink_pins);
  // [13..18] per-layer FEOL wirelengths (fixed 3 slots, zero above split).
  for (int layer = 1; layer <= 3; ++layer) {
    f[i++] = static_cast<float>(
        (layer <= split_layer ? source.wirelength_on(layer) : 0) * kWlScale);
  }
  for (int layer = 1; layer <= 3; ++layer) {
    f[i++] = static_cast<float>(
        (layer <= split_layer ? sink.wirelength_on(layer) : 0) * kWlScale);
  }
  // [19..22] via counts in the first two cut layers.
  f[i++] = static_cast<float>(source.vias_on(1));
  f[i++] = static_cast<float>(source.vias_on(2));
  f[i++] = static_cast<float>(sink.vias_on(1));
  f[i++] = static_cast<float>(sink.vias_on(2));
  // [23] driver delay lower bound.
  f[i++] = static_cast<float>(delay_lower * kDelayScale);
  // [24..26] totals.
  f[i++] = static_cast<float>(source.total_wirelength() * kWlScale);
  f[i++] = static_cast<float>(sink.total_wirelength() * kWlScale);
  f[i++] = static_cast<float>(source.virtual_pins.size());
  return f;
}

}  // namespace sma::features
