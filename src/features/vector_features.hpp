// Vector-based VPP features (Sec. 3.1 of the paper).
//
// 27 per-VPP features (matching the paper's fc1 input width, Table 2):
//   [0..4]   signed pref / signed nonpref / |pref| / |nonpref| / |pref|+|nonpref|
//            distances between the two virtual pins (split-layer preferred
//            axis), in microns;
//   [5..9]   the same five scaled by chip width, height, width, height and
//            half-perimeter respectively (dimensionless);
//   [10]     driver max load capacitance (upper bound, fF);
//   [11]     lower-bound load: sink-fragment pin caps + both fragments'
//            FEOL wire capacitance (fF);
//   [12]     number of sinks in the sink fragment;
//   [13..15] source-fragment wirelength in M1..M3 (um, zero above split);
//   [16..18] sink-fragment wirelength in M1..M3 (um);
//   [19..20] source-fragment via count in cut layers V12 / V23;
//   [21..22] sink-fragment via count in cut layers V12 / V23;
//   [23]     driver delay lower bound (Elmore, ps);
//   [24]     source fragment total FEOL wirelength (um);
//   [25]     sink fragment total FEOL wirelength (um);
//   [26]     number of virtual pins on the source fragment.
#pragma once

#include <array>

#include "split/candidates.hpp"
#include "split/split_design.hpp"

namespace sma::features {

inline constexpr int kNumVectorFeatures = 27;

using VectorFeatures = std::array<float, kNumVectorFeatures>;

/// Human-readable names, index-aligned with the feature array.
const std::array<const char*, kNumVectorFeatures>& vector_feature_names();

/// Per-fragment electrical summary reused across VPPs.
struct FragmentElectrical {
  double wire_cap = 0.0;      ///< FEOL wire capacitance (fF)
  double sink_pin_cap = 0.0;  ///< input-pin capacitance of contained sinks (fF)
  double driver_max_cap = 0.0;      ///< 0 unless the fragment has the driver
  double driver_resistance = 0.0;   ///< 0 unless the fragment has the driver
  double driver_intrinsic_delay = 0.0;
};

FragmentElectrical fragment_electrical(const split::SplitDesign& split,
                                       const split::Fragment& fragment);

/// Compute the 27 features of one VPP.
VectorFeatures compute_vector_features(const split::SplitDesign& split,
                                       const split::Vpp& vpp);

}  // namespace sma::features
