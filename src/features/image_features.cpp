#include "features/image_features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sma::features {

namespace {

/// Inflate a wire center line into its drawn rectangle.
util::Rect wire_box(const route::RouteSegment& s, std::int64_t half_width) {
  return util::Rect{{s.a.x - half_width, s.a.y - half_width},
                    {s.b.x + half_width, s.b.y + half_width}};
}

util::Rect via_box(const util::Point& at, std::int64_t half_width) {
  return util::Rect{{at.x - half_width, at.y - half_width},
                    {at.x + half_width, at.y + half_width}};
}

}  // namespace

ImageRenderer::ImageRenderer(const split::SplitDesign* split,
                             ImageConfig config)
    : split_(split), config_(std::move(config)) {
  if (split_ == nullptr) throw std::invalid_argument("null split design");
  if (config_.size < 3 || config_.size % 2 == 0) {
    throw std::invalid_argument("image size must be odd and >= 3");
  }
  if (config_.pixel_sizes.empty()) {
    throw std::invalid_argument("at least one image scale required");
  }
  num_feol_layers_ = split_->split_layer();

  const std::int64_t hw = config_.wire_half_width;
  auto add_segment = [&](const route::RouteSegment& s, int fragment) {
    Shape shape;
    shape.fragment = fragment;
    shape.box = wire_box(s, hw);
    shape.layer_lo = shape.layer_hi = s.layer;
    add_shape(shape);
  };
  auto add_via = [&](const route::RouteVia& v, int fragment, bool virtual_pin) {
    Shape shape;
    shape.fragment = fragment;
    shape.box = via_box(v.at, hw);
    shape.layer_lo = v.cut;
    // A virtual-pin via only shows its FEOL half (the split layer).
    shape.layer_hi = virtual_pin ? v.cut : v.cut + 1;
    add_shape(shape);
  };

  // Geometry of all fragments.
  for (const split::Fragment& fragment : split_->fragments()) {
    for (const route::RouteSegment& s : fragment.segments) {
      add_segment(s, fragment.id);
    }
    for (const route::RouteVia& v : fragment.vias) {
      add_via(v, fragment.id, false);
    }
  }
  // Virtual-pin vias are visible FEOL geometry at the split layer.
  for (const split::VirtualPin& vp : split_->virtual_pins()) {
    route::RouteVia via;
    via.cut = split_->split_layer();
    via.at = vp.location;
    add_via(via, vp.fragment, true);
  }
  // FEOL wiring of unbroken nets: visible, always "other fragment".
  const layout::Design& design = split_->design();
  for (netlist::NetId n = 0; n < design.netlist->num_nets(); ++n) {
    if (split_->net_is_broken(n)) continue;
    const route::NetRoute& route = design.route_of(n);
    for (const route::RouteSegment& s : route.segments) {
      if (s.layer <= num_feol_layers_) add_segment(s, -1);
    }
    for (const route::RouteVia& v : route.vias) {
      if (v.cut < num_feol_layers_) add_via(v, -1, false);
    }
  }

  // Bucket index sized to the largest query window.
  const util::Rect& die = design.placement->floorplan().die;
  std::int64_t max_pixel =
      *std::max_element(config_.pixel_sizes.begin(), config_.pixel_sizes.end());
  bucket_size_ = std::max<std::int64_t>(2000, max_pixel * 8);
  buckets_x_ = static_cast<int>(die.width() / bucket_size_) + 1;
  buckets_y_ = static_cast<int>(die.height() / bucket_size_) + 1;
  buckets_.assign(static_cast<std::size_t>(buckets_x_) * buckets_y_, {});
  for (std::size_t i = 0; i < shapes_.size(); ++i) {
    const util::Rect& box = shapes_[i].box;
    int bx0 = std::clamp<int>(static_cast<int>(box.lo.x / bucket_size_), 0,
                              buckets_x_ - 1);
    int bx1 = std::clamp<int>(static_cast<int>(box.hi.x / bucket_size_), 0,
                              buckets_x_ - 1);
    int by0 = std::clamp<int>(static_cast<int>(box.lo.y / bucket_size_), 0,
                              buckets_y_ - 1);
    int by1 = std::clamp<int>(static_cast<int>(box.hi.y / bucket_size_), 0,
                              buckets_y_ - 1);
    for (int by = by0; by <= by1; ++by) {
      for (int bx = bx0; bx <= bx1; ++bx) {
        buckets_[static_cast<std::size_t>(by) * buckets_x_ + bx].push_back(
            static_cast<std::int32_t>(i));
      }
    }
  }
}

void ImageRenderer::add_shape(const Shape& shape) { shapes_.push_back(shape); }

std::vector<float> ImageRenderer::render(int virtual_pin_id) const {
  const split::VirtualPin& vp = split_->virtual_pin(virtual_pin_id);
  const int size = config_.size;
  const int m = num_feol_layers_;
  const float denom = static_cast<float>((1u << (2 * m)) - 1);

  std::vector<float> image(config_.pixels_per_image(), 0.0f);
  std::vector<std::uint32_t> bits(static_cast<std::size_t>(size) * size);

  for (int channel = 0; channel < config_.channels(); ++channel) {
    std::fill(bits.begin(), bits.end(), 0u);
    const std::int64_t px = config_.pixel_sizes[channel];
    // Window such that the pin sits at the center pixel's center.
    const std::int64_t wlo_x = vp.location.x - (size / 2) * px - px / 2;
    const std::int64_t wlo_y = vp.location.y - (size / 2) * px - px / 2;
    const std::int64_t whi_x = wlo_x + static_cast<std::int64_t>(size) * px;
    const std::int64_t whi_y = wlo_y + static_cast<std::int64_t>(size) * px;
    const util::Rect window{{wlo_x, wlo_y}, {whi_x, whi_y}};

    // Visit shapes via the bucket grid (deduplication unnecessary: setting
    // bits is idempotent).
    int bx0 = std::clamp<int>(static_cast<int>(std::max<std::int64_t>(0, wlo_x) /
                                               bucket_size_),
                              0, buckets_x_ - 1);
    int bx1 = std::clamp<int>(static_cast<int>(std::max<std::int64_t>(0, whi_x) /
                                               bucket_size_),
                              0, buckets_x_ - 1);
    int by0 = std::clamp<int>(static_cast<int>(std::max<std::int64_t>(0, wlo_y) /
                                               bucket_size_),
                              0, buckets_y_ - 1);
    int by1 = std::clamp<int>(static_cast<int>(std::max<std::int64_t>(0, whi_y) /
                                               bucket_size_),
                              0, buckets_y_ - 1);
    for (int by = by0; by <= by1; ++by) {
      for (int bx = bx0; bx <= bx1; ++bx) {
        for (std::int32_t shape_index :
             buckets_[static_cast<std::size_t>(by) * buckets_x_ + bx]) {
          const Shape& shape = shapes_[shape_index];
          if (!shape.box.intersects(window)) continue;

          int px0 = static_cast<int>((std::max(shape.box.lo.x, wlo_x) - wlo_x) / px);
          int px1 = static_cast<int>((std::min(shape.box.hi.x, whi_x - 1) - wlo_x) / px);
          int py0 = static_cast<int>((std::max(shape.box.lo.y, wlo_y) - wlo_y) / px);
          int py1 = static_cast<int>((std::min(shape.box.hi.y, whi_y - 1) - wlo_y) / px);
          px0 = std::clamp(px0, 0, size - 1);
          px1 = std::clamp(px1, 0, size - 1);
          py0 = std::clamp(py0, 0, size - 1);
          py1 = std::clamp(py1, 0, size - 1);

          std::uint32_t mask = 0;
          const bool own = shape.fragment == vp.fragment;
          for (int layer = shape.layer_lo;
               layer <= std::min(shape.layer_hi, m); ++layer) {
            mask |= 1u << (own ? m + layer - 1 : layer - 1);
          }
          for (int y = py0; y <= py1; ++y) {
            std::uint32_t* row = bits.data() + static_cast<std::size_t>(y) * size;
            for (int x = px0; x <= px1; ++x) {
              row[x] |= mask;
            }
          }
        }
      }
    }

    float* out =
        image.data() + static_cast<std::size_t>(channel) * size * size;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      out[i] = static_cast<float>(bits[i]) / denom;
    }
  }
  return image;
}

}  // namespace sma::features
