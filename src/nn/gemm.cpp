#include "nn/gemm.hpp"

#include <atomic>
#include <cstddef>
#include <cstring>

#include "obs/obs.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define SMA_GEMM_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace sma::nn {

namespace {

std::atomic<KernelBackend> g_backend{KernelBackend::kBlocked};
std::atomic<ConvLayoutMode> g_conv_layout{ConvLayoutMode::kChannelMajor};

// Register tiles. The portable micro-kernel uses 4 x 8 (the accumulator
// block plus one B panel row fit the 16 SSE registers of baseline
// x86-64); the AVX2 micro-kernel widens to 4 x 16 (8 ymm accumulators).
//
// The AVX2 path deliberately uses separate multiply and add instructions,
// never FMA: a fused multiply-add rounds once where mul+add rounds twice,
// so FMA would break bit-identity with the scalar chain. With mul+add the
// wide path performs the exact same rounding steps in the exact same
// ascending-k order — results are identical on every machine, with or
// without AVX2.
constexpr int kMr = 4;
constexpr int kNr = 8;
constexpr int kNrWide = 16;
// AVX-512 tile: 8 x 32 = sixteen zmm accumulators (+ two B vectors and a
// broadcast) out of the 32 architectural zmm registers.
constexpr int kMrZ = 8;
constexpr int kNrZ = 32;

enum class CMode {
  kLoad,        ///< acc starts from C (the += forms of backward)
  kAccumulate,  ///< acc starts at zero, added to C at the end (seed nt)
  kOverwrite,   ///< acc starts at zero, stored over C (+ epilogue)
};

/// Bias flavor of the kOverwrite epilogue: per output column (Linear /
/// row-major conv output) or per output row (channel-major conv output).
enum class BiasKind { kNone, kCol, kRow };

/// A[i0..i0+MR) x [0..k) packed p-major, rows past m zero-filled. The
/// zero rows make the micro-kernel branch-free; they never reach C.
template <int MR>
void pack_a(int m, int k, int i0, const float* a, int lda, bool a_trans,
            float* out) {
  const int mr = m - i0 < MR ? m - i0 : MR;
  if (!a_trans && mr == MR) {
    // Row-major A: walk MR contiguous rows in lockstep.
    const float* rows[MR];
    for (int ii = 0; ii < MR; ++ii) {
      rows[ii] = a + static_cast<std::size_t>(i0 + ii) * lda;
    }
    for (int p = 0; p < k; ++p) {
      float* dst = out + static_cast<std::size_t>(p) * MR;
      for (int ii = 0; ii < MR; ++ii) dst[ii] = rows[ii][p];
    }
    return;
  }
  for (int p = 0; p < k; ++p) {
    float* dst = out + static_cast<std::size_t>(p) * MR;
    for (int ii = 0; ii < MR; ++ii) {
      const int i = i0 + ii;
      dst[ii] = i < m ? (a_trans ? a[static_cast<std::size_t>(p) * lda + i]
                                 : a[static_cast<std::size_t>(i) * lda + p])
                      : 0.0f;
    }
  }
}

/// All of B packed into ceil(n / NR) panels of K x NR, columns past n
/// zero-filled. B is packed once per GEMM (it is the operand every row
/// block of A streams through).
template <int NR>
void pack_b(int n, int k, const float* b, int ldb, bool b_trans, float* out) {
  const int panels = (n + NR - 1) / NR;
  for (int jp = 0; jp < panels; ++jp) {
    float* panel = out + static_cast<std::size_t>(jp) * k * NR;
    const int j0 = jp * NR;
    const int nv = n - j0 < NR ? n - j0 : NR;
    if (!b_trans && nv == NR) {
      // Row-major B: each packed row is a contiguous NR-float copy.
      for (int p = 0; p < k; ++p) {
        const float* src = b + static_cast<std::size_t>(p) * ldb + j0;
        float* dst = panel + static_cast<std::size_t>(p) * NR;
        for (int jj = 0; jj < NR; ++jj) dst[jj] = src[jj];
      }
      continue;
    }
    for (int p = 0; p < k; ++p) {
      float* dst = panel + static_cast<std::size_t>(p) * NR;
      for (int jj = 0; jj < NR; ++jj) {
        const int j = j0 + jj;
        dst[jj] = j < n ? (b_trans ? b[static_cast<std::size_t>(j) * ldb + p]
                                   : b[static_cast<std::size_t>(p) * ldb + j])
                        : 0.0f;
      }
    }
  }
}

/// The register tile: acc[ii][jj] += A[ii][p] * B[p][jj], p ascending.
/// One accumulator chain per output element — the bit-identity invariant.
/// Mode and epilogue are template parameters so each instantiation is a
/// tight branch-free loop nest (small-k shapes like conv dX run tens of
/// thousands of tiles per call; per-tile overhead must stay minimal).
template <int NR, CMode kMode, BiasKind kBias, bool kLrelu, bool kHasMask>
inline void micro_tile(int k, int n, const float* ap, const float* bp,
                       int b_stride, float* c, std::size_t c_off, int mr,
                       int nv, const float* bias, int i0, int j0, float slope,
                       std::uint8_t* mask) {
  float acc[kMr * NR];
  if (kMode == CMode::kLoad && mr == kMr && nv == NR) {
    for (int ii = 0; ii < kMr; ++ii) {
      const float* row = c + c_off + static_cast<std::size_t>(ii) * n;
      for (int jj = 0; jj < NR; ++jj) acc[ii * NR + jj] = row[jj];
    }
  } else if (kMode == CMode::kLoad) {
    for (int ii = 0; ii < kMr; ++ii) {
      for (int jj = 0; jj < NR; ++jj) acc[ii * NR + jj] = 0.0f;
    }
    for (int ii = 0; ii < mr; ++ii) {
      const float* row = c + c_off + static_cast<std::size_t>(ii) * n;
      for (int jj = 0; jj < nv; ++jj) acc[ii * NR + jj] = row[jj];
    }
  } else {
    for (int ii = 0; ii < kMr; ++ii) {
      for (int jj = 0; jj < NR; ++jj) acc[ii * NR + jj] = 0.0f;
    }
  }

  for (int p = 0; p < k; ++p) {
    const float* av = ap + static_cast<std::size_t>(p) * kMr;
    const float* bv = bp + static_cast<std::size_t>(p) * b_stride;
    for (int ii = 0; ii < kMr; ++ii) {
      const float a0 = av[ii];
      float* accr = acc + ii * NR;
      for (int jj = 0; jj < NR; ++jj) {
        accr[jj] += a0 * bv[jj];
      }
    }
  }

  for (int ii = 0; ii < mr; ++ii) {
    const std::size_t base = c_off + static_cast<std::size_t>(ii) * n;
    float* row = c + base;
    for (int jj = 0; jj < nv; ++jj) {
      float v = acc[ii * NR + jj];
      if (kMode == CMode::kAccumulate) {
        row[jj] += v;
      } else if (kMode == CMode::kOverwrite) {
        if (kBias == BiasKind::kCol) v += bias[j0 + jj];
        if (kBias == BiasKind::kRow) v += bias[i0 + ii];
        if (kHasMask) mask[base + jj] = v < 0.0f ? 1 : 0;
        if (kLrelu && v < 0.0f) v *= slope;
        row[jj] = v;
      } else {
        row[jj] = v;
      }
    }
  }
}

#ifdef SMA_GEMM_X86_DISPATCH

/// AVX2 tile (4 x 16): eight ymm accumulators, explicit mul + add (never
/// FMA — see the tile-size comment above). Bitwise equal to the portable
/// micro_tile on the same operands. Partial tiles (mr < 4 or nv < 16)
/// stage C through a local buffer so the k-loop always runs register-
/// resident at full width; the packed panels are zero-padded, so the
/// extra lanes compute harmless zeros that never reach C.
template <CMode kMode, BiasKind kBias, bool kLrelu, bool kHasMask>
__attribute__((target("avx2"))) inline void micro_tile_avx2(
    int k, int n, const float* ap, const float* bp, int b_stride, float* c,
    std::size_t c_off, int mr, int nv, const float* bias, int i0, int j0,
    float slope, std::uint8_t* mask) {
  const bool full = mr == kMr && nv == kNrWide;
  __m256 acc[kMr][2];
  if (kMode == CMode::kLoad) {
    if (full) {
      for (int ii = 0; ii < kMr; ++ii) {
        const float* row = c + c_off + static_cast<std::size_t>(ii) * n;
        acc[ii][0] = _mm256_loadu_ps(row);
        acc[ii][1] = _mm256_loadu_ps(row + 8);
      }
    } else {
      alignas(32) float tmp[kMr * kNrWide] = {};
      for (int ii = 0; ii < mr; ++ii) {
        const float* row = c + c_off + static_cast<std::size_t>(ii) * n;
        for (int jj = 0; jj < nv; ++jj) tmp[ii * kNrWide + jj] = row[jj];
      }
      for (int ii = 0; ii < kMr; ++ii) {
        acc[ii][0] = _mm256_load_ps(tmp + ii * kNrWide);
        acc[ii][1] = _mm256_load_ps(tmp + ii * kNrWide + 8);
      }
    }
  } else {
    for (int ii = 0; ii < kMr; ++ii) {
      acc[ii][0] = _mm256_setzero_ps();
      acc[ii][1] = _mm256_setzero_ps();
    }
  }

  for (int p = 0; p < k; ++p) {
    const float* av = ap + static_cast<std::size_t>(p) * kMr;
    const float* bv = bp + static_cast<std::size_t>(p) * b_stride;
    const __m256 b0 = _mm256_loadu_ps(bv);
    const __m256 b1 = _mm256_loadu_ps(bv + 8);
    for (int ii = 0; ii < kMr; ++ii) {
      const __m256 a0 = _mm256_broadcast_ss(av + ii);
      acc[ii][0] = _mm256_add_ps(acc[ii][0], _mm256_mul_ps(a0, b0));
      acc[ii][1] = _mm256_add_ps(acc[ii][1], _mm256_mul_ps(a0, b1));
    }
  }

  if (full) {
    const __m256 zero = _mm256_setzero_ps();
    const __m256 slope_v = _mm256_set1_ps(slope);
    for (int ii = 0; ii < kMr; ++ii) {
      const std::size_t base = c_off + static_cast<std::size_t>(ii) * n;
      float* row = c + base;
      const __m256 bias_row = kBias == BiasKind::kRow
                                  ? _mm256_set1_ps(bias[i0 + ii])
                                  : _mm256_setzero_ps();
      for (int half = 0; half < 2; ++half) {
        __m256 v = acc[ii][half];
        if (kMode == CMode::kAccumulate) {
          v = _mm256_add_ps(_mm256_loadu_ps(row + 8 * half), v);
        } else if (kMode == CMode::kOverwrite) {
          if (kBias == BiasKind::kCol) {
            v = _mm256_add_ps(v, _mm256_loadu_ps(bias + j0 + 8 * half));
          }
          if (kBias == BiasKind::kRow) {
            v = _mm256_add_ps(v, bias_row);
          }
          const __m256 neg = _mm256_cmp_ps(v, zero, _CMP_LT_OQ);
          if (kHasMask) {
            const int bits = _mm256_movemask_ps(neg);
            std::uint8_t* mrow = mask + base + 8 * half;
            for (int jj = 0; jj < 8; ++jj) mrow[jj] = (bits >> jj) & 1;
          }
          if (kLrelu) {
            v = _mm256_blendv_ps(v, _mm256_mul_ps(v, slope_v), neg);
          }
        }
        _mm256_storeu_ps(row + 8 * half, v);
      }
    }
    return;
  }

  // Partial tile: spill the accumulators and run the scalar epilogue on
  // the valid elements (identical operations to the portable writeback).
  alignas(32) float tmp[kMr * kNrWide];
  for (int ii = 0; ii < kMr; ++ii) {
    _mm256_store_ps(tmp + ii * kNrWide, acc[ii][0]);
    _mm256_store_ps(tmp + ii * kNrWide + 8, acc[ii][1]);
  }
  for (int ii = 0; ii < mr; ++ii) {
    const std::size_t base = c_off + static_cast<std::size_t>(ii) * n;
    float* row = c + base;
    for (int jj = 0; jj < nv; ++jj) {
      float v = tmp[ii * kNrWide + jj];
      if (kMode == CMode::kAccumulate) {
        row[jj] += v;
      } else if (kMode == CMode::kOverwrite) {
        if (kBias == BiasKind::kCol) v += bias[j0 + jj];
        if (kBias == BiasKind::kRow) v += bias[i0 + ii];
        if (kHasMask) mask[base + jj] = v < 0.0f ? 1 : 0;
        if (kLrelu && v < 0.0f) v *= slope;
        row[jj] = v;
      } else {
        row[jj] = v;
      }
    }
  }
}

template <CMode kMode, BiasKind kBias, bool kLrelu, bool kHasMask>
__attribute__((target("avx2"))) void blocked_loop_avx2(
    int m, int n, int k, const float* a, int lda, bool a_trans,
    const float* b, int ldb, bool b_trans, float* c, const float* bias,
    float slope, std::uint8_t* mask, GemmScratch& scratch) {
  const int panels = (n + kNrWide - 1) / kNrWide;
  const int mblocks = (m + kMr - 1) / kMr;
  // All of A packed once; the panel loop runs outermost so each B panel
  // is streamed through every row block while it is cache-hot (the
  // matrices with a large m here are activations whose packed form is
  // small next to the B operand).
  for (int ib = 0; ib < mblocks; ++ib) {
    pack_a<kMr>(m, k, ib * kMr, a, lda, a_trans,
           scratch.a_panel.data() + static_cast<std::size_t>(ib) * k * kMr);
  }
  for (int jp = 0; jp < panels; ++jp) {
    const int j0 = jp * kNrWide;
    const int nv = n - j0 < kNrWide ? n - j0 : kNrWide;
    // Row-major B is consumed in place (each panel row is already
    // contiguous); only transposed B and the ragged tail panel read
    // from the packed copy.
    const float* bp;
    int bs;
    if (b_trans) {
      bp = scratch.b_panel.data() + static_cast<std::size_t>(jp) * k * kNrWide;
      bs = kNrWide;
    } else if (nv == kNrWide) {
      bp = b + j0;
      bs = ldb;
    } else {
      bp = scratch.b_panel.data();
      bs = kNrWide;
    }
    for (int ib = 0; ib < mblocks; ++ib) {
      const int i0 = ib * kMr;
      const int mr = m - i0 < kMr ? m - i0 : kMr;
      micro_tile_avx2<kMode, kBias, kLrelu, kHasMask>(
          k, n,
          scratch.a_panel.data() + static_cast<std::size_t>(ib) * k * kMr,
          bp, bs, c, static_cast<std::size_t>(i0) * n + j0, mr, nv, bias, i0,
          j0, slope, mask);
    }
  }
}


/// AVX-512 tile (8 x 32): sixteen zmm accumulators, explicit mul + add
/// (never FMA). Bitwise equal to the portable micro_tile on the same
/// operands; partial tiles stage C through a local buffer.
template <CMode kMode, BiasKind kBias, bool kLrelu, bool kHasMask>
__attribute__((target("avx512f"))) inline void micro_tile_avx512(
    int k, int n, const float* ap, const float* bp, int b_stride, float* c,
    std::size_t c_off, int mr, int nv, const float* bias, int i0, int j0,
    float slope, std::uint8_t* mask) {
  const bool full = mr == kMrZ && nv == kNrZ;
  __m512 acc[kMrZ][2];
  if (kMode == CMode::kLoad) {
    if (full) {
      for (int ii = 0; ii < kMrZ; ++ii) {
        const float* row = c + c_off + static_cast<std::size_t>(ii) * n;
        acc[ii][0] = _mm512_loadu_ps(row);
        acc[ii][1] = _mm512_loadu_ps(row + 16);
      }
    } else {
      alignas(64) float tmp[kMrZ * kNrZ] = {};
      for (int ii = 0; ii < mr; ++ii) {
        const float* row = c + c_off + static_cast<std::size_t>(ii) * n;
        for (int jj = 0; jj < nv; ++jj) tmp[ii * kNrZ + jj] = row[jj];
      }
      for (int ii = 0; ii < kMrZ; ++ii) {
        acc[ii][0] = _mm512_load_ps(tmp + ii * kNrZ);
        acc[ii][1] = _mm512_load_ps(tmp + ii * kNrZ + 16);
      }
    }
  } else {
    for (int ii = 0; ii < kMrZ; ++ii) {
      acc[ii][0] = _mm512_setzero_ps();
      acc[ii][1] = _mm512_setzero_ps();
    }
  }

  for (int p = 0; p < k; ++p) {
    const float* av = ap + static_cast<std::size_t>(p) * kMrZ;
    const float* bv = bp + static_cast<std::size_t>(p) * b_stride;
    const __m512 b0 = _mm512_loadu_ps(bv);
    const __m512 b1 = _mm512_loadu_ps(bv + 16);
    for (int ii = 0; ii < kMrZ; ++ii) {
      const __m512 a0 = _mm512_set1_ps(av[ii]);
      acc[ii][0] = _mm512_add_ps(acc[ii][0], _mm512_mul_ps(a0, b0));
      acc[ii][1] = _mm512_add_ps(acc[ii][1], _mm512_mul_ps(a0, b1));
    }
  }

  if (full) {
    const __m512 zero = _mm512_setzero_ps();
    const __m512 slope_v = _mm512_set1_ps(slope);
    for (int ii = 0; ii < kMrZ; ++ii) {
      const std::size_t base = c_off + static_cast<std::size_t>(ii) * n;
      float* row = c + base;
      const __m512 bias_row = kBias == BiasKind::kRow
                                  ? _mm512_set1_ps(bias[i0 + ii])
                                  : _mm512_setzero_ps();
      for (int half = 0; half < 2; ++half) {
        __m512 v = acc[ii][half];
        if (kMode == CMode::kAccumulate) {
          v = _mm512_add_ps(_mm512_loadu_ps(row + 16 * half), v);
        } else if (kMode == CMode::kOverwrite) {
          if (kBias == BiasKind::kCol) {
            v = _mm512_add_ps(v, _mm512_loadu_ps(bias + j0 + 16 * half));
          }
          if (kBias == BiasKind::kRow) {
            v = _mm512_add_ps(v, bias_row);
          }
          const __mmask16 neg = _mm512_cmp_ps_mask(v, zero, _CMP_LT_OQ);
          if (kHasMask) {
            std::uint8_t* mrow = mask + base + 16 * half;
            for (int jj = 0; jj < 16; ++jj) mrow[jj] = (neg >> jj) & 1;
          }
          if (kLrelu) {
            v = _mm512_mask_mul_ps(v, neg, v, slope_v);
          }
        }
        _mm512_storeu_ps(row + 16 * half, v);
      }
    }
    return;
  }

  alignas(64) float tmp[kMrZ * kNrZ];
  for (int ii = 0; ii < kMrZ; ++ii) {
    _mm512_store_ps(tmp + ii * kNrZ, acc[ii][0]);
    _mm512_store_ps(tmp + ii * kNrZ + 16, acc[ii][1]);
  }
  for (int ii = 0; ii < mr; ++ii) {
    const std::size_t base = c_off + static_cast<std::size_t>(ii) * n;
    float* row = c + base;
    for (int jj = 0; jj < nv; ++jj) {
      float v = tmp[ii * kNrZ + jj];
      if (kMode == CMode::kAccumulate) {
        row[jj] += v;
      } else if (kMode == CMode::kOverwrite) {
        if (kBias == BiasKind::kCol) v += bias[j0 + jj];
        if (kBias == BiasKind::kRow) v += bias[i0 + ii];
        if (kHasMask) mask[base + jj] = v < 0.0f ? 1 : 0;
        if (kLrelu && v < 0.0f) v *= slope;
        row[jj] = v;
      } else {
        row[jj] = v;
      }
    }
  }
}

template <CMode kMode, BiasKind kBias, bool kLrelu, bool kHasMask>
__attribute__((target("avx512f"))) void blocked_loop_avx512(
    int m, int n, int k, const float* a, int lda, bool a_trans,
    const float* b, int ldb, bool b_trans, float* c, const float* bias,
    float slope, std::uint8_t* mask, GemmScratch& scratch) {
  const int panels = (n + kNrZ - 1) / kNrZ;
  const int mblocks = (m + kMrZ - 1) / kMrZ;
  for (int ib = 0; ib < mblocks; ++ib) {
    pack_a<kMrZ>(m, k, ib * kMrZ, a, lda, a_trans,
                 scratch.a_panel.data() +
                     static_cast<std::size_t>(ib) * k * kMrZ);
  }
  for (int jp = 0; jp < panels; ++jp) {
    const int j0 = jp * kNrZ;
    const int nv = n - j0 < kNrZ ? n - j0 : kNrZ;
    const float* bp;
    int bs;
    if (b_trans) {
      bp = scratch.b_panel.data() + static_cast<std::size_t>(jp) * k * kNrZ;
      bs = kNrZ;
    } else if (nv == kNrZ) {
      bp = b + j0;
      bs = ldb;
    } else {
      bp = scratch.b_panel.data();
      bs = kNrZ;
    }
    for (int ib = 0; ib < mblocks; ++ib) {
      const int i0 = ib * kMrZ;
      const int mr = m - i0 < kMrZ ? m - i0 : kMrZ;
      micro_tile_avx512<kMode, kBias, kLrelu, kHasMask>(
          k, n,
          scratch.a_panel.data() + static_cast<std::size_t>(ib) * k * kMrZ,
          bp, bs, c, static_cast<std::size_t>(i0) * n + j0, mr, nv, bias, i0,
          j0, slope, mask);
    }
  }
}

bool have_avx512() {
  static const bool value = __builtin_cpu_supports("avx512f");
  return value;
}

bool have_avx2() {
  static const bool value = __builtin_cpu_supports("avx2");
  return value;
}

#else

bool have_avx512() { return false; }
bool have_avx2() { return false; }

#endif  // SMA_GEMM_X86_DISPATCH

template <CMode kMode, BiasKind kBias, bool kLrelu, bool kHasMask>
void blocked_loop(int m, int n, int k, const float* a, int lda, bool a_trans,
                  const float* b, int ldb, bool b_trans, float* c,
                  const float* bias, float slope, std::uint8_t* mask,
                  GemmScratch& scratch) {
  const int panels = (n + kNr - 1) / kNr;
  const int mblocks = (m + kMr - 1) / kMr;
  for (int ib = 0; ib < mblocks; ++ib) {
    pack_a<kMr>(m, k, ib * kMr, a, lda, a_trans,
           scratch.a_panel.data() + static_cast<std::size_t>(ib) * k * kMr);
  }
  for (int jp = 0; jp < panels; ++jp) {
    const int j0 = jp * kNr;
    const int nv = n - j0 < kNr ? n - j0 : kNr;
    const float* bp;
    int bs;
    if (b_trans) {
      bp = scratch.b_panel.data() + static_cast<std::size_t>(jp) * k * kNr;
      bs = kNr;
    } else if (nv == kNr) {
      bp = b + j0;
      bs = ldb;
    } else {
      bp = scratch.b_panel.data();
      bs = kNr;
    }
    for (int ib = 0; ib < mblocks; ++ib) {
      const int i0 = ib * kMr;
      const int mr = m - i0 < kMr ? m - i0 : kMr;
      micro_tile<kNr, kMode, kBias, kLrelu, kHasMask>(
          k, n,
          scratch.a_panel.data() + static_cast<std::size_t>(ib) * k * kMr,
          bp, bs, c, static_cast<std::size_t>(i0) * n + j0, mr, nv, bias, i0,
          j0, slope, mask);
    }
  }
}

template <CMode kMode, BiasKind kBias, bool kLrelu, bool kHasMask>
void blocked_dispatch(int m, int n, int k, const float* a, int lda,
                      bool a_trans, const float* b, int ldb, bool b_trans,
                      float* c, const float* bias, float slope,
                      std::uint8_t* mask, GemmScratch& scratch) {
#ifdef SMA_GEMM_X86_DISPATCH
  if (have_avx512() && n >= kNrWide) {
    blocked_loop_avx512<kMode, kBias, kLrelu, kHasMask>(
        m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope, mask,
        scratch);
    return;
  }
  if (have_avx2()) {
    blocked_loop_avx2<kMode, kBias, kLrelu, kHasMask>(
        m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope, mask,
        scratch);
    return;
  }
#endif
  blocked_loop<kMode, kBias, kLrelu, kHasMask>(
      m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope, mask,
      scratch);
}

/// Blocked driver shared by every optimized form. `c` is row-major with
/// leading dimension n; `bias`/`lrelu`/`mask` only apply to kOverwrite.
void blocked_gemm(int m, int n, int k, const float* a, int lda, bool a_trans,
                  const float* b, int ldb, bool b_trans, float* c, CMode mode,
                  BiasKind bias_kind, const float* bias, bool lrelu,
                  float slope, std::uint8_t* mask, GemmScratch& scratch) {
  if (m <= 0 || n <= 0) return;
  // Dispatch count only — never a clock read: this is the hottest entry
  // point in the repo, and one relaxed add per *call* (not per tile) is
  // noise next to the GEMM itself.
  SMA_COUNT("gemm.blocked_calls");
  const bool use_z = have_avx512() && n >= kNrWide;
  const int nr = use_z ? kNrZ : (have_avx2() ? kNrWide : kNr);
  const int mr_tile = use_z ? kMrZ : kMr;
  const int panels = (n + nr - 1) / nr;
  scratch.a_panel.resize(
      static_cast<std::size_t>((m + mr_tile - 1) / mr_tile) * k * mr_tile);
  if (b_trans) {
    // Transposed B: pack every panel (column gathers would otherwise
    // defeat the vector loads).
    scratch.b_panel.resize(static_cast<std::size_t>(panels) * k * nr);
    if (nr == kNrZ) {
      pack_b<kNrZ>(n, k, b, ldb, b_trans, scratch.b_panel.data());
    } else if (nr == kNrWide) {
      pack_b<kNrWide>(n, k, b, ldb, b_trans, scratch.b_panel.data());
    } else {
      pack_b<kNr>(n, k, b, ldb, b_trans, scratch.b_panel.data());
    }
  } else if (n % nr != 0) {
    // Row-major B is read in place; only the ragged tail panel is packed
    // (zero-padded so the micro-kernel can run full-width).
    scratch.b_panel.resize(static_cast<std::size_t>(k) * nr);
    const int tail_j0 = (panels - 1) * nr;
    if (nr == kNrZ) {
      pack_b<kNrZ>(n - tail_j0, k, b + tail_j0, ldb, false,
                   scratch.b_panel.data());
    } else if (nr == kNrWide) {
      pack_b<kNrWide>(n - tail_j0, k, b + tail_j0, ldb, false,
                      scratch.b_panel.data());
    } else {
      pack_b<kNr>(n - tail_j0, k, b + tail_j0, ldb, false,
                  scratch.b_panel.data());
    }
  }

  switch (mode) {
    case CMode::kLoad:
      blocked_dispatch<CMode::kLoad, BiasKind::kNone, false, false>(
          m, n, k, a, lda, a_trans, b, ldb, b_trans, c, nullptr, 0.0f,
          nullptr, scratch);
      break;
    case CMode::kAccumulate:
      blocked_dispatch<CMode::kAccumulate, BiasKind::kNone, false, false>(
          m, n, k, a, lda, a_trans, b, ldb, b_trans, c, nullptr, 0.0f,
          nullptr, scratch);
      break;
    case CMode::kOverwrite:
      if (bias_kind == BiasKind::kNone) {
        blocked_dispatch<CMode::kOverwrite, BiasKind::kNone, false, false>(
            m, n, k, a, lda, a_trans, b, ldb, b_trans, c, nullptr, 0.0f,
            nullptr, scratch);
      } else if (bias_kind == BiasKind::kCol) {
        if (lrelu && mask != nullptr) {
          blocked_dispatch<CMode::kOverwrite, BiasKind::kCol, true, true>(
              m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope, mask,
              scratch);
        } else if (lrelu) {
          blocked_dispatch<CMode::kOverwrite, BiasKind::kCol, true, false>(
              m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope,
              nullptr, scratch);
        } else if (mask != nullptr) {
          blocked_dispatch<CMode::kOverwrite, BiasKind::kCol, false, true>(
              m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope, mask,
              scratch);
        } else {
          blocked_dispatch<CMode::kOverwrite, BiasKind::kCol, false, false>(
              m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope,
              nullptr, scratch);
        }
      } else {
        if (lrelu && mask != nullptr) {
          blocked_dispatch<CMode::kOverwrite, BiasKind::kRow, true, true>(
              m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope, mask,
              scratch);
        } else if (lrelu) {
          blocked_dispatch<CMode::kOverwrite, BiasKind::kRow, true, false>(
              m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope,
              nullptr, scratch);
        } else if (mask != nullptr) {
          blocked_dispatch<CMode::kOverwrite, BiasKind::kRow, false, true>(
              m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope, mask,
              scratch);
        } else {
          blocked_dispatch<CMode::kOverwrite, BiasKind::kRow, false, false>(
              m, n, k, a, lda, a_trans, b, ldb, b_trans, c, bias, slope,
              nullptr, scratch);
        }
      }
      break;
  }
}

}  // namespace

GemmScratch& thread_scratch() {
  thread_local GemmScratch scratch;
  return scratch;
}

void set_kernel_backend(KernelBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

KernelBackend kernel_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

void set_conv_layout_mode(ConvLayoutMode mode) {
  g_conv_layout.store(mode, std::memory_order_relaxed);
}

ConvLayoutMode conv_layout_mode() {
  return g_conv_layout.load(std::memory_order_relaxed);
}

const char* active_isa() {
  if (have_avx512()) return "avx512";
  if (have_avx2()) return "avx2";
  return "portable";
}

// --------------------------------------------------------------------
// Fused im2col/col2im pack paths. The loops are the blocked conv's PR-7
// im2col/col2im nests verbatim; the ONLY thing `Layout` changes is the
// base offset of each (img, c) input plane — row-major (img*c_in + c) vs
// channel-major (c*n + img). Same values, same element visit order, same
// clamp arithmetic: bit-identity is preserved by construction.

void pack_cm_im2col(const float* x, Layout x_layout, int n, int c_in, int h,
                    int w, int stride, int ho, int wo, float* cols) {
  const int rows = n * ho * wo;
  SMA_COUNT_N("nn.pack_bytes", static_cast<std::size_t>(c_in) * 9 * rows *
                                   sizeof(float));
  const bool cm = x_layout == Layout::kChannelMajor;
  for (int c = 0; c < c_in; ++c) {
    for (int ky = 0; ky < 3; ++ky) {
      for (int kx = 0; kx < 3; ++kx) {
        float* dst =
            cols + static_cast<std::size_t>((c * 3 + ky) * 3 + kx) * rows;
        for (int img = 0; img < n; ++img) {
          const float* plane =
              x + (cm ? (static_cast<std::size_t>(c) * n + img)
                      : (static_cast<std::size_t>(img) * c_in + c)) *
                      h * w;
          for (int oy = 0; oy < ho; ++oy) {
            float* out_row =
                dst + (static_cast<std::size_t>(img) * ho + oy) * wo;
            const int iy = oy * stride - 1 + ky;
            if (iy < 0 || iy >= h) {
              for (int ox = 0; ox < wo; ++ox) out_row[ox] = 0.0f;
              continue;
            }
            const float* src_row = plane + static_cast<std::size_t>(iy) * w;
            // ix = ox * stride - 1 + kx is in [0, w) exactly for ox in
            // [ox_lo, ox_hi); edges are padding zeros. The w < kx guard
            // matters: for a 1-wide row and kx = 2 the naive formula
            // (w - kx) / stride + 1 truncates -1/stride toward zero and
            // admitted ox = 0, reading one float past the row (heap
            // garbage on the last plane — nondeterministic models).
            const int ox_lo = kx == 0 ? 1 : 0;
            const int ox_hi_raw = w < kx ? 0 : (w - kx) / stride + 1;
            const int ox_hi = wo < ox_hi_raw ? wo : ox_hi_raw;
            for (int ox = 0; ox < ox_lo; ++ox) out_row[ox] = 0.0f;
            if (stride == 1) {
              std::memcpy(out_row + ox_lo, src_row + ox_lo - 1 + kx,
                          sizeof(float) * (ox_hi - ox_lo));
            } else {
              for (int ox = ox_lo; ox < ox_hi; ++ox) {
                out_row[ox] = src_row[ox * stride - 1 + kx];
              }
            }
            for (int ox = ox_hi; ox < wo; ++ox) out_row[ox] = 0.0f;
          }
        }
      }
    }
  }
}

void pack_cm_col2im(const float* dcols, Layout dx_layout, int n, int c_in,
                    int h, int w, int stride, int ho, int wo, float* dx) {
  const int rows = n * ho * wo;
  SMA_COUNT_N("nn.pack_bytes", static_cast<std::size_t>(c_in) * 9 * rows *
                                   sizeof(float));
  const bool cm = dx_layout == Layout::kChannelMajor;
  // Loop order (c asc, ky desc, kx desc, img, oy, ox) reproduces the
  // seed's per-element accumulation order: for a fixed dx element each
  // output position contributes at most one tap, and ky desc <=> oy asc
  // (resp. kx/ox), so contributions arrive in ascending (oy, ox) —
  // exactly the seed nest. The plane base offset does not participate in
  // that ordering, so both layouts accumulate identically.
  for (int c = 0; c < c_in; ++c) {
    for (int ky = 2; ky >= 0; --ky) {
      for (int kx = 2; kx >= 0; --kx) {
        const float* src =
            dcols + static_cast<std::size_t>((c * 3 + ky) * 3 + kx) * rows;
        for (int img = 0; img < n; ++img) {
          float* plane =
              dx + (cm ? (static_cast<std::size_t>(c) * n + img)
                       : (static_cast<std::size_t>(img) * c_in + c)) *
                       h * w;
          for (int oy = 0; oy < ho; ++oy) {
            const int iy = oy * stride - 1 + ky;
            if (iy < 0 || iy >= h) continue;
            const float* srow =
                src + (static_cast<std::size_t>(img) * ho + oy) * wo;
            float* drow = plane + static_cast<std::size_t>(iy) * w;
            // Same w < kx guard as im2col: without it this loop WROTE one
            // float past a 1-wide row (silent dx corruption).
            const int ox_lo = kx == 0 ? 1 : 0;
            const int ox_hi_raw = w < kx ? 0 : (w - kx) / stride + 1;
            const int ox_hi = wo < ox_hi_raw ? wo : ox_hi_raw;
            if (stride == 1) {
              float* base = drow + kx - 1;
              for (int ox = ox_lo; ox < ox_hi; ++ox) base[ox] += srow[ox];
            } else {
              for (int ox = ox_lo; ox < ox_hi; ++ox) {
                drow[ox * stride - 1 + kx] += srow[ox];
              }
            }
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------
// Reference kernels: the seed implementations, retained verbatim as the
// ground truth for bit-identity tests and the bench baseline.

namespace reference {

void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c) {
  SMA_COUNT("gemm.reference_calls");
  for (int i = 0; i < m; ++i) {
    float* ci = c + static_cast<std::size_t>(i) * n;
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      const float* bp = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) {
        ci[j] += av * bp[j];
      }
    }
  }
}

void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c) {
  SMA_COUNT("gemm.reference_calls");
  // a stored [K, M]; effective A[i, p] = a[p, i].
  for (int p = 0; p < k; ++p) {
    const float* ap = a + static_cast<std::size_t>(p) * m;
    const float* bp = b + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = ap[i];
      if (av == 0.0f) continue;
      float* ci = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        ci[j] += av * bp[j];
      }
    }
  }
}

void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c) {
  SMA_COUNT("gemm.reference_calls");
  // b stored [N, K]; effective B[p, j] = b[j, p].
  for (int i = 0; i < m; ++i) {
    const float* ai = a + static_cast<std::size_t>(i) * k;
    float* ci = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* bj = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += ai[p] * bj[p];
      }
      ci[j] += acc;
    }
  }
}

}  // namespace reference

// --------------------------------------------------------------------
// Public forms.

void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c) {
  if (kernel_backend() == KernelBackend::kReference) {
    reference::gemm_nn(m, n, k, a, b, c);
    return;
  }
  blocked_gemm(m, n, k, a, k, false, b, n, false, c, CMode::kLoad,
               BiasKind::kNone, nullptr, false, 0.0f, nullptr,
               thread_scratch());
}

void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c) {
  if (kernel_backend() == KernelBackend::kReference) {
    reference::gemm_tn(m, n, k, a, b, c);
    return;
  }
  blocked_gemm(m, n, k, a, m, true, b, n, false, c, CMode::kLoad,
               BiasKind::kNone, nullptr, false, 0.0f, nullptr,
               thread_scratch());
}

void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c) {
  if (kernel_backend() == KernelBackend::kReference) {
    reference::gemm_nt(m, n, k, a, b, c);
    return;
  }
  blocked_gemm(m, n, k, a, k, false, b, k, true, c, CMode::kAccumulate,
               BiasKind::kNone, nullptr, false, 0.0f, nullptr,
               thread_scratch());
}

void gemm_acc_tn(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch) {
  if (kernel_backend() == KernelBackend::kReference) {
    reference::gemm_tn(m, n, k, a, b, c);
    return;
  }
  blocked_gemm(m, n, k, a, m, true, b, n, false, c, CMode::kLoad,
               BiasKind::kNone, nullptr, false, 0.0f, nullptr, scratch);
}

void gemm_ovr_nn(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch) {
  if (kernel_backend() == KernelBackend::kReference) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(m) * n; ++i) {
      c[i] = 0.0f;
    }
    reference::gemm_nn(m, n, k, a, b, c);
    return;
  }
  blocked_gemm(m, n, k, a, k, false, b, n, false, c, CMode::kOverwrite,
               BiasKind::kNone, nullptr, false, 0.0f, nullptr, scratch);
}

void gemm_forward_nt(int m, int n, int k, const float* a, const float* b,
                     const float* bias, float* c, Epilogue epilogue,
                     float slope, std::uint8_t* mask, GemmScratch& scratch) {
  const bool lrelu = epilogue == Epilogue::kBiasLeakyReLU;
  if (kernel_backend() == KernelBackend::kReference) {
    // The seed layer path: zeroed output, naive nt, then separate bias
    // and activation passes.
    const std::size_t total = static_cast<std::size_t>(m) * n;
    for (std::size_t i = 0; i < total; ++i) c[i] = 0.0f;
    reference::gemm_nt(m, n, k, a, b, c);
    for (int i = 0; i < m; ++i) {
      float* row = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) row[j] += bias[j];
    }
    for (std::size_t i = 0; i < total; ++i) {
      const float v = c[i];
      if (mask != nullptr) mask[i] = v < 0.0f ? 1 : 0;
      if (lrelu && v < 0.0f) c[i] = v * slope;
    }
    return;
  }
  blocked_gemm(m, n, k, a, k, false, b, k, true, c, CMode::kOverwrite,
               BiasKind::kCol, bias, lrelu, slope, mask, scratch);
}

// The transposed-activation conv forms are blocked-only (the layer's
// reference path runs the seed pipeline instead; see gemm.hpp), so they
// do not consult the backend toggle.

void gemm_forward_nn_rowbias(int m, int n, int k, const float* a,
                             const float* b, const float* bias, float* c,
                             Epilogue epilogue, float slope,
                             std::uint8_t* mask, GemmScratch& scratch) {
  blocked_gemm(m, n, k, a, k, false, b, n, false, c, CMode::kOverwrite,
               BiasKind::kRow, bias, epilogue == Epilogue::kBiasLeakyReLU,
               slope, mask, scratch);
}

void gemm_acc_nn(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch) {
  blocked_gemm(m, n, k, a, k, false, b, n, false, c, CMode::kLoad,
               BiasKind::kNone, nullptr, false, 0.0f, nullptr, scratch);
}

void gemm_acc_nt(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch) {
  blocked_gemm(m, n, k, a, k, false, b, k, true, c, CMode::kLoad,
               BiasKind::kNone, nullptr, false, 0.0f, nullptr, scratch);
}

void gemm_ovr_tn(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch) {
  blocked_gemm(m, n, k, a, m, true, b, n, false, c, CMode::kOverwrite,
               BiasKind::kNone, nullptr, false, 0.0f, nullptr, scratch);
}

}  // namespace sma::nn
