// Adam optimizer with the paper's step-decay learning-rate schedule
// (initial 0.001, multiplied by 0.6 every 20 epochs).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "nn/layers.hpp"
#include "runtime/thread_pool.hpp"

namespace sma::nn {

struct AdamConfig {
  double lr = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// Learning-rate decay factor applied via `decay_lr()`.
  double decay = 0.6;
};

class Adam {
 public:
  Adam(std::vector<Param> params, const AdamConfig& config = {});

  /// Apply one update from the accumulated gradients, then zero them.
  /// Parameters update independently, so a pool parallelizes over them
  /// without changing the result.
  ///
  /// Gradient lifecycle contract: `step` both consumes and zeroes every
  /// gradient — training loops must NOT follow it with `zero_grad()` (a
  /// redundant full-tensor fill per parameter). `zero_grad` exists solely
  /// to discard the gradients of a sample that is skipped *without* an
  /// update.
  void step(runtime::ThreadPool* pool = nullptr);

  /// Per-step bias-correction factors; see `begin_step`.
  struct StepScales {
    double bc1 = 1.0;
    double bc2 = 1.0;
  };

  /// Building blocks for fused training-step engines (nn/train_step.hpp):
  /// `begin_step` advances the step counter and returns this step's bias
  /// corrections; `update_param` applies the update to parameter `i` and
  /// zeroes its gradient — exactly the arithmetic `step` performs, so a
  /// caller that invokes `update_param` once per parameter per
  /// `begin_step` produces bit-identical weights to `step`.
  StepScales begin_step();
  void update_param(std::size_t i, const StepScales& scales);

  /// Zero gradients without updating (e.g. after a skipped sample).
  /// Never needed after `step`, which zeroes as it consumes.
  void zero_grad();

  /// Multiply the learning rate by the configured decay factor.
  void decay_lr();

  double learning_rate() const { return lr_; }
  std::size_t num_parameters() const;

  /// Checkpoint the full optimizer state: learning rate (decays applied
  /// so far), step counter, and both moment vectors per parameter. The
  /// config itself is not serialized — it comes from the TrainConfig the
  /// resuming run was constructed with.
  void serialize(std::ostream& out) const;

  /// Restore state written by `serialize` into this optimizer. The
  /// parameter count and every moment-vector size must match this
  /// optimizer's parameters; throws std::runtime_error (naming the
  /// mismatch) otherwise, leaving the state untouched.
  void deserialize(std::istream& in);

 private:
  std::vector<Param> params_;
  AdamConfig config_;
  double lr_;
  long t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace sma::nn
