#include "nn/tensor.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sma::nn {

namespace {

std::string format_shape(const int* dims, std::size_t rank) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < rank; ++i) {
    if (i > 0) os << ", ";
    os << dims[i];
  }
  os << ']';
  return os.str();
}

std::size_t shape_size_impl(const int* dims, std::size_t rank) {
  std::size_t total = 1;
  for (std::size_t i = 0; i < rank; ++i) {
    const int d = dims[i];
    if (d < 0) throw std::invalid_argument("negative tensor dimension");
    const std::size_t ud = static_cast<std::size_t>(d);
    if (ud != 0 &&
        total > std::numeric_limits<std::size_t>::max() / ud) {
      throw std::overflow_error("tensor shape " + format_shape(dims, rank) +
                                " overflows std::size_t element count");
    }
    total *= ud;
  }
  return total;
}

}  // namespace

std::size_t shape_size(const std::vector<int>& shape) {
  return shape_size_impl(shape.data(), shape.size());
}

std::size_t shape_size(std::initializer_list<int> shape) {
  return shape_size_impl(shape.begin(), shape.size());
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)),
      data_(shape_size(shape_), 0.0f),
      numel_(data_.size()) {}

Tensor Tensor::randn(std::vector<int> shape, util::Pcg32& rng, double stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.next_gaussian() * stddev);
  }
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(numel_),
            value);
}

void Tensor::reshape(std::vector<int> shape) {
  if (shape_size(shape) != numel_) {
    throw std::invalid_argument("reshape changes element count");
  }
  // Copy-assign (not move) so shape_'s capacity is reused — reshape sits
  // on the alloc-free hot path (AttackNet flattens fc7's scores).
  shape_ = shape;
}

void Tensor::reshape(std::initializer_list<int> shape) {
  if (shape_size(shape) != numel_) {
    throw std::invalid_argument("reshape changes element count");
  }
  shape_.assign(shape);
}

bool Tensor::ensure_numel(std::size_t n) {
  const std::size_t cap_before = data_.capacity();
  // Grow-only: the high-water extent stays materialized, so a shrink-then-
  // grow sequence touches no allocator and performs no value-init pass.
  if (n > data_.size()) data_.resize(n);
  numel_ = n;
  return data_.capacity() != cap_before;
}

bool Tensor::resize_reuse(const std::vector<int>& shape) {
  const std::size_t n = shape_size(shape);
  shape_ = shape;  // copy-assign: reuses shape_'s capacity
  return ensure_numel(n);
}

bool Tensor::resize_reuse(std::initializer_list<int> shape) {
  const std::size_t n = shape_size(shape);
  shape_.assign(shape);
  return ensure_numel(n);
}

std::string Tensor::shape_string() const {
  return format_shape(shape_.data(), shape_.size());
}

}  // namespace sma::nn
