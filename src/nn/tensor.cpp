#include "nn/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sma::nn {

std::size_t shape_size(const std::vector<int>& shape) {
  std::size_t total = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("negative tensor dimension");
    total *= static_cast<std::size_t>(d);
  }
  return total;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor Tensor::randn(std::vector<int> shape, util::Pcg32& rng, double stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.next_gaussian() * stddev);
  }
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::reshape(std::vector<int> shape) {
  if (shape_size(shape) != data_.size()) {
    throw std::invalid_argument("reshape changes element count");
  }
  shape_ = std::move(shape);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace sma::nn
