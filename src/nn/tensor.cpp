#include "nn/tensor.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sma::nn {

namespace {

std::string format_shape(const int* dims, std::size_t rank) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < rank; ++i) {
    if (i > 0) os << ", ";
    os << dims[i];
  }
  os << ']';
  return os.str();
}

std::size_t shape_size_impl(const int* dims, std::size_t rank) {
  std::size_t total = 1;
  for (std::size_t i = 0; i < rank; ++i) {
    const int d = dims[i];
    if (d < 0) throw std::invalid_argument("negative tensor dimension");
    const std::size_t ud = static_cast<std::size_t>(d);
    if (ud != 0 &&
        total > std::numeric_limits<std::size_t>::max() / ud) {
      throw std::overflow_error("tensor shape " + format_shape(dims, rank) +
                                " overflows std::size_t element count");
    }
    total *= ud;
  }
  return total;
}

// Debug-only contract check: the channel-major permutation is defined
// only for rank-4 [n,C,H,W] shapes. Compiled out in Release so the tag
// itself stays free on the hot path.
void check_layout_shape(Layout layout, const int* dims, std::size_t rank) {
#ifndef NDEBUG
  if (layout == Layout::kChannelMajor && rank != 4) {
    throw std::logic_error("channel-major layout requires a 4-D shape, got " +
                           format_shape(dims, rank));
  }
#else
  (void)layout;
  (void)dims;
  (void)rank;
#endif
}

}  // namespace

std::size_t shape_size(const std::vector<int>& shape) {
  return shape_size_impl(shape.data(), shape.size());
}

std::size_t shape_size(std::initializer_list<int> shape) {
  return shape_size_impl(shape.begin(), shape.size());
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)),
      data_(shape_size(shape_), 0.0f),
      numel_(data_.size()) {}

Tensor Tensor::randn(std::vector<int> shape, util::Pcg32& rng, double stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.next_gaussian() * stddev);
  }
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(numel_),
            value);
}

void Tensor::set_layout(Layout layout) {
  check_layout_shape(layout, shape_.data(), shape_.size());
  layout_ = layout;
}

void Tensor::reshape(std::vector<int> shape) {
  if (shape_size(shape) != numel_) {
    throw std::invalid_argument("reshape changes element count");
  }
#ifndef NDEBUG
  // Reshaping permuted storage would silently reinterpret plane-swapped
  // bytes under the new shape; callers must convert to row-major first.
  if (layout_ == Layout::kChannelMajor) {
    throw std::logic_error("reshape of a channel-major tensor");
  }
#endif
  // Copy-assign (not move) so shape_'s capacity is reused — reshape sits
  // on the alloc-free hot path (AttackNet flattens fc7's scores).
  shape_ = shape;
}

void Tensor::reshape(std::initializer_list<int> shape) {
  if (shape_size(shape) != numel_) {
    throw std::invalid_argument("reshape changes element count");
  }
#ifndef NDEBUG
  if (layout_ == Layout::kChannelMajor) {
    throw std::logic_error("reshape of a channel-major tensor");
  }
#endif
  shape_.assign(shape);
}

bool Tensor::ensure_numel(std::size_t n) {
  const std::size_t cap_before = data_.capacity();
  // Grow-only: the high-water extent stays materialized, so a shrink-then-
  // grow sequence touches no allocator and performs no value-init pass.
  if (n > data_.size()) data_.resize(n);
  numel_ = n;
  return data_.capacity() != cap_before;
}

bool Tensor::resize_reuse(const std::vector<int>& shape, Layout layout) {
  check_layout_shape(layout, shape.data(), shape.size());
  const std::size_t n = shape_size(shape);
  shape_ = shape;  // copy-assign: reuses shape_'s capacity
  layout_ = layout;
  return ensure_numel(n);
}

bool Tensor::resize_reuse(std::initializer_list<int> shape, Layout layout) {
  check_layout_shape(layout, shape.begin(), shape.size());
  const std::size_t n = shape_size(shape);
  shape_.assign(shape);
  layout_ = layout;
  return ensure_numel(n);
}

std::string Tensor::shape_string() const {
  return format_shape(shape_.data(), shape_.size());
}

void copy_to_layout(const Tensor& src, Layout layout, Tensor& dst) {
  dst.resize_reuse(src.shape(), layout);
  const std::size_t total = src.size();
  if (src.layout() == layout || total == 0) {
    std::copy(src.data(), src.data() + total, dst.data());
    return;
  }
  // One of the two is channel-major, the other row-major; both
  // permutations are the same plane swap applied in opposite directions.
  const int n = src.dim(0);
  const int c = src.dim(1);
  const std::size_t plane =
      total / (static_cast<std::size_t>(n) * static_cast<std::size_t>(c));
  const float* s = src.data();
  float* d = dst.data();
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const std::size_t rm = (static_cast<std::size_t>(img) * c + ch) * plane;
      const std::size_t cm = (static_cast<std::size_t>(ch) * n + img) * plane;
      const std::size_t from = src.layout() == Layout::kRowMajor ? rm : cm;
      const std::size_t to = layout == Layout::kRowMajor ? rm : cm;
      std::copy(s + from, s + from + plane, d + to);
    }
  }
}

Tensor to_layout(const Tensor& src, Layout layout) {
  Tensor out;
  copy_to_layout(src, layout, out);
  return out;
}

Tensor to_row_major(const Tensor& src) {
  return to_layout(src, Layout::kRowMajor);
}

}  // namespace sma::nn
