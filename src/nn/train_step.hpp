// Fused training-step engine.
//
// PR 2 made the kernels fast enough that the fast-profile epoch is
// dominated by the *unfused tail* of every optimizer step: three separate
// passes over all parameters (lane-gradient reduce, Adam update, weight
// broadcast), each streaming megabytes of parameter state through the
// cache again. `TrainStep` fuses the three into ONE `parallel_for` pass:
// for each parameter it (1) adds the active lanes' gradients onto the
// master gradient in ascending lane order, zeroing each lane gradient,
// (2) applies the Adam update via `Adam::update_param`, and (3) — only
// for lanes that own private weight storage — copies the fresh weights
// back to every lane. Each parameter's state is touched exactly once per
// step while it is hot in cache.
//
// Determinism: parameters are independent, and within one parameter the
// fused pass performs the identical float operations in the identical
// order (fixed lane order, ascending j, the unmodified Adam arithmetic)
// as the unfused reduce / `Adam::step` / broadcast sequence. Fused and
// unfused training therefore produce byte-identical models at any lane
// count and any thread count — the PR-1 determinism contract, which
// tests/test_train_step.cpp asserts. The activation Layout refactor does
// not touch this engine: gradients arrive here as parameter tensors
// (always row-major), so the conv trunk's channel-major activations
// change where forward/backward *move* data, never what this reduce /
// Adam / broadcast pass sums or in what order.
//
// Lanes that *share* the master's weight tensors (AttackNet::
// clone_shared) attach with `broadcast = false`: the Adam update lands
// directly in the storage every lane reads, so the broadcast disappears
// entirely and the per-lane working set shrinks by one full weight copy.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "runtime/thread_pool.hpp"

namespace sma::nn {

class TrainStep {
 public:
  /// `master` holds the authoritative weights and the reduction target
  /// gradients; `config` the Adam schedule.
  TrainStep(std::vector<Param> master, const AdamConfig& config);

  /// Attach per-lane parameter views; `lanes[l]` must be index-aligned
  /// with the master params. `broadcast` selects whether `step` copies
  /// updated master weights into each lane's value tensors — required
  /// when lanes own private weight storage, pointless (and skipped) when
  /// lanes share the master's weight tensors.
  void attach_lanes(std::vector<std::vector<Param>> lanes, bool broadcast);

  /// One fused reduce + Adam + broadcast pass over all parameters, using
  /// the gradients of the first `active_lanes` lanes (a trailing partial
  /// batch activates fewer lanes than are attached). With no lanes
  /// attached this degrades to a plain `Adam::step`. A negative
  /// `active_lanes` is a caller bug and throws std::invalid_argument.
  void step(int active_lanes, runtime::ThreadPool* pool);

  /// Serial-lane mode: add `lane`'s gradients onto the master gradients
  /// (ascending parameter and element order) and zero them. A pool-less
  /// training loop pins ONE shared-weight replica and calls this after
  /// every query of the batch, then steps the optimizer — the adds reach
  /// each master element in the same batch order as the multi-lane
  /// reduce, so the sum (hence the model) is byte-identical while the
  /// per-step working set shrinks from `lanes` replicas to one. The
  /// gradients are still hot from the backward pass that produced them,
  /// making this far cheaper than a deferred reduce.
  void accumulate(const std::vector<Param>& lane);

  void decay_lr() { adam_.decay_lr(); }
  double learning_rate() const { return adam_.learning_rate(); }

  /// The underlying optimizer — the per-query (batch_size = 1) training
  /// path steps it directly, bypassing the lane machinery.
  Adam& optimizer() { return adam_; }

 private:
  std::vector<Param> master_;
  Adam adam_;
  std::vector<std::vector<Param>> lanes_;
  bool broadcast_ = false;
};

}  // namespace sma::nn
