// Persistent activation arenas: alloc-free training and inference.
//
// The kernels (PR 2) and the fused step (PR 3) left per-layer output and
// staging tensors as the dominant steady-state memory traffic: every
// forward/backward call constructed (and zero-filled) fresh tensors —
// roughly 1 MB of allocator churn per query. An `Arena` instead owns one
// persistent buffer per activation/staging slot for the lifetime of its
// network: each `AttackNet` (master, gradient-lane replica, pinned
// inference replica) owns exactly one arena, and its layers write their
// outputs into arena slots that are resized in place with grow-only
// capacity (`Tensor::resize_reuse`). After a warm-up pass that has seen
// the largest query shape, the hot path performs ZERO heap allocations
// per query — a property the arena's stats expose and tests/benches
// assert.
//
// Reuse contract (the no-stale-read rule): acquiring a slot with
// `Fill::kNone` returns storage whose contents are unspecified — the
// producer must fully overwrite every element of the logical extent
// before anything reads it. Slots whose consumers accumulate (`+=`) into
// them are acquired with `Fill::kZero`, which reproduces the bytes of a
// freshly zero-constructed tensor. Every call site in the NN hot path is
// audited against this rule (see layers.cpp / attack_net.cpp); the
// shape-varying regression tests in tests/test_arena.cpp drive
// shrink-then-grow sequences through every buffer to prove no stale byte
// ever escapes.
//
// Threading: an arena is single-owner, exactly like the network that owns
// it — replicas running on different pool threads each use their own
// arena, so there is no shared mutable state and no synchronization.
// (Call-transient staging — conv's y^T/dy^T/dcols^T and the GEMM packing
// scratch — instead lives in one per-THREAD staging arena; see
// layers.cpp.) Slot storage is address-stable (deque-backed): acquiring
// one slot never moves another, so layers may cache pointers between
// forward and backward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/tensor.hpp"

namespace sma::nn {

/// Aggregate view of an arena's footprint and allocator activity.
struct ArenaStats {
  std::size_t bytes_pinned = 0;  ///< backing-capacity bytes across all slots
  std::size_t slots = 0;         ///< tensor + float + byte slots registered
  long allocs = 0;    ///< heap-growth events since construction
  long requests = 0;  ///< slot acquisitions (>= allocs; equal only cold)
};

class Arena {
 public:
  using Slot = std::size_t;
  enum class Fill {
    kNone,  ///< contents unspecified; caller must fully overwrite
    kZero   ///< logical extent zero-filled (for += consumers)
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // -- slot registration (bind time, once per layer) ---------------------
  Slot add_tensor();
  Slot add_floats();
  Slot add_bytes();
  /// Shared slot registration: the same key returns the same float slot
  /// within this arena, letting independent call sites share one buffer
  /// for state that is live only inside a single call.
  Slot shared_floats(const std::string& key);

  // -- slot acquisition (hot path, zero allocations once warm) -----------
  /// `layout` tags the storage order the producer will write the slot in
  /// (see nn/tensor.hpp); defaulted so non-conv call sites stay unchanged.
  Tensor& tensor(Slot slot, const std::vector<int>& shape, Fill fill,
                 Layout layout = Layout::kRowMajor);
  Tensor& tensor(Slot slot, std::initializer_list<int> shape, Fill fill,
                 Layout layout = Layout::kRowMajor);
  float* floats(Slot slot, std::size_t n, Fill fill);
  std::uint8_t* bytes(Slot slot, std::size_t n);

  /// This arena's GEMM packing scratch. Growth happens inside the kernels
  /// (which know the panel geometry); the arena detects capacity changes
  /// lazily on the next acquisition or stats() call and folds them into
  /// `allocs`/`bytes_pinned`, so the zero-allocs-once-warm assertion
  /// covers packing buffers too.
  GemmScratch& gemm_scratch();

  ArenaStats stats() const;

 private:
  void reconcile_scratch() const;

  std::deque<Tensor> tensors_;
  std::deque<std::vector<float>> floats_;
  std::deque<std::vector<std::uint8_t>> bytes_;
  std::vector<std::pair<std::string, Slot>> shared_floats_;  ///< few entries
  GemmScratch scratch_;
  // Lazily-observed scratch capacities; mutable so stats() can reconcile.
  mutable std::size_t scratch_seen_a_ = 0;
  mutable std::size_t scratch_seen_b_ = 0;
  mutable long allocs_ = 0;
  long requests_ = 0;
};

}  // namespace sma::nn
