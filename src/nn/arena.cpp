#include "nn/arena.hpp"

#include <algorithm>
#include <cstring>

namespace sma::nn {

Arena::Slot Arena::add_tensor() {
  tensors_.emplace_back();
  return tensors_.size() - 1;
}

Arena::Slot Arena::add_floats() {
  floats_.emplace_back();
  return floats_.size() - 1;
}

Arena::Slot Arena::add_bytes() {
  bytes_.emplace_back();
  return bytes_.size() - 1;
}

Arena::Slot Arena::shared_floats(const std::string& key) {
  for (const auto& [name, slot] : shared_floats_) {
    if (name == key) return slot;
  }
  const Slot slot = add_floats();
  shared_floats_.emplace_back(key, slot);
  return slot;
}

Tensor& Arena::tensor(Slot slot, const std::vector<int>& shape, Fill fill,
                      Layout layout) {
  Tensor& t = tensors_[slot];
  ++requests_;
  if (t.resize_reuse(shape, layout)) ++allocs_;
  if (fill == Fill::kZero) t.fill(0.0f);
  return t;
}

Tensor& Arena::tensor(Slot slot, std::initializer_list<int> shape, Fill fill,
                      Layout layout) {
  Tensor& t = tensors_[slot];
  ++requests_;
  if (t.resize_reuse(shape, layout)) ++allocs_;
  if (fill == Fill::kZero) t.fill(0.0f);
  return t;
}

float* Arena::floats(Slot slot, std::size_t n, Fill fill) {
  std::vector<float>& v = floats_[slot];
  ++requests_;
  if (n > v.size()) {
    const std::size_t cap = v.capacity();
    v.resize(n);  // grow-only high-water extent, as in Tensor::resize_reuse
    if (v.capacity() != cap) ++allocs_;
  }
  if (fill == Fill::kZero) std::memset(v.data(), 0, n * sizeof(float));
  return v.data();
}

std::uint8_t* Arena::bytes(Slot slot, std::size_t n) {
  std::vector<std::uint8_t>& v = bytes_[slot];
  ++requests_;
  if (n > v.size()) {
    const std::size_t cap = v.capacity();
    v.resize(n);
    if (v.capacity() != cap) ++allocs_;
  }
  return v.data();
}

void Arena::reconcile_scratch() const {
  if (scratch_.a_panel.capacity() != scratch_seen_a_) {
    if (scratch_.a_panel.capacity() > scratch_seen_a_) ++allocs_;
    scratch_seen_a_ = scratch_.a_panel.capacity();
  }
  if (scratch_.b_panel.capacity() != scratch_seen_b_) {
    if (scratch_.b_panel.capacity() > scratch_seen_b_) ++allocs_;
    scratch_seen_b_ = scratch_.b_panel.capacity();
  }
}

GemmScratch& Arena::gemm_scratch() {
  reconcile_scratch();
  return scratch_;
}

ArenaStats Arena::stats() const {
  reconcile_scratch();
  ArenaStats s;
  for (const Tensor& t : tensors_) s.bytes_pinned += t.capacity_bytes();
  for (const auto& v : floats_) s.bytes_pinned += v.capacity() * sizeof(float);
  for (const auto& v : bytes_) s.bytes_pinned += v.capacity();
  s.bytes_pinned += scratch_.a_panel.capacity() * sizeof(float);
  s.bytes_pinned += scratch_.b_panel.capacity() * sizeof(float);
  s.slots = tensors_.size() + floats_.size() + bytes_.size();
  s.allocs = allocs_;
  s.requests = requests_;
  return s;
}

}  // namespace sma::nn
