// Neural-network layers with explicit backpropagation.
//
// Each layer caches what it needs during `forward` and returns the input
// gradient from `backward`, accumulating parameter gradients internally
// (zeroed by the optimizer step). One layer instance handles one position
// in the network; weight sharing (the conv trunk applied to n+1 images) is
// expressed by batching, not by layer reuse.
//
// Linear and Conv2d lower onto the blocked GEMM core (`nn/gemm.hpp`) with
// a fused bias + LeakyReLU epilogue: constructing a layer with
// `Act::kLeakyReLU` folds the activation into the kernel's writeback (the
// backward mask is captured from the pre-activation sign), which removes
// one full tensor copy per layer while producing bit-identical values to
// a separate activation layer.
//
// Batch-width contract: every layer derives its row (or image) count
// from its INPUT's leading dimension — Linear from size()/in, Conv2d and
// GlobalAvgPool from dim(0), ResBlock from its Linears — and the GEMM
// core fixes each output element's accumulation chain independently of
// how many rows share the call (nn/gemm.hpp). Stacking B queries' rows
// into one input therefore IS the batched wide-GEMM path: per-row
// outputs are byte-identical to B separate calls, at any batch width,
// thread count, or kernel backend. `AttackNet::forward_batched` builds
// on exactly this; no layer carries separate batch-1/batched code.
//
// Activation-arena contract: `forward`/`backward` return references to
// tensors owned by the layer's bound `Arena` (nn/arena.hpp) instead of
// freshly constructed values, so the hot path performs zero heap
// allocations per query once warm. A returned reference stays valid and
// stable until the SAME layer's next `forward`/`backward` call; callers
// that need the data longer must copy. Symmetrically, the tensor passed
// to `forward` is cached by POINTER (not copied) for the backward pass:
// it must stay alive and unmodified until the matching `backward`
// returns — trivially true inside a network, where it is another layer's
// arena slot. `AttackNet` binds every layer to its per-network arena at
// construction; a layer used standalone (tests, benches) lazily binds
// itself to a thread-local fallback arena on first use — such a layer
// must then keep running on the thread that first called it.
// Call-transient staging (conv's y^T/dy^T/dcols^T, GEMM packing panels)
// is NOT per-network: it lives in a per-thread staging arena
// (layers.cpp), one hot copy per thread no matter how many replicas run.
// Every arena slot below is annotated with its overwrite discipline (the
// no-stale-read audit): `full` slots are completely rewritten by their
// producer each call and acquired with Fill::kNone; `accum` slots feed
// += consumers and are acquired with Fill::kZero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/arena.hpp"
#include "nn/gemm.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace sma::nn {

/// A learnable tensor and its gradient, as seen by the optimizer.
struct Param {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Optional activation fused into a layer's epilogue.
enum class Act { kNone, kLeakyReLU };

/// y = x W^T + b over the last dimension (optionally + LeakyReLU);
/// x: [N, in] -> y: [N, out].
class Linear {
 public:
  Linear(int in, int out, util::Pcg32& rng, std::string name,
         Act act = Act::kNone, float slope = 0.01f);

  /// Attach this layer's activation/staging slots to `arena`. Call once,
  /// before the first forward; the arena must outlive the layer's use.
  void bind_arena(Arena& arena);

  Tensor& forward(const Tensor& x);
  Tensor& backward(const Tensor& dy);
  void collect_params(std::vector<Param>& out);

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  /// Weight sharing for replicas (see AttackNet::clone_shared): after
  /// this call the layer reads `master`'s weight/bias tensors and frees
  /// its own weight storage. Gradients and activation caches stay
  /// private, so shared-weight replicas may run forward/backward
  /// concurrently as long as nobody mutates the master's weights
  /// meanwhile. `collect_params` keeps reporting the (now empty) private
  /// storage — a shared replica is never the optimizer's target.
  void share_weights_from(const Linear& master);

  /// The tensors forward/backward read: the master's after
  /// `share_weights_from`, this layer's own otherwise.
  const Tensor& weight() const { return shared_w_ ? *shared_w_ : w_; }
  const Tensor& bias() const { return shared_b_ ? *shared_b_ : b_; }

 private:
  void ensure_arena();

  int in_;
  int out_;
  std::string name_;
  Act act_;
  float slope_;
  Tensor w_;   ///< [out, in]
  Tensor b_;   ///< [out]
  const Tensor* shared_w_ = nullptr;  ///< master's weights, when sharing
  const Tensor* shared_b_ = nullptr;
  Tensor dw_;
  Tensor db_;
  // Arena slots. mask (full: the GEMM epilogue writes every element)
  // persists from forward to backward; y/dx/dmasked (all full) are live
  // only until the next call.
  Arena* arena_ = nullptr;
  Arena::Slot y_slot_ = 0;
  Arena::Slot dx_slot_ = 0;
  Arena::Slot dmasked_slot_ = 0;
  Arena::Slot mask_slot_ = 0;
  /// Input of the last forward, held by pointer (see the header comment's
  /// lifetime contract) — inside a network this is another layer's slot.
  const Tensor* x_ = nullptr;
  std::uint8_t* mask_ = nullptr;     ///< pre-activation < 0, when fused
};

/// y = max(0.01 x, x) elementwise (the paper's LReLU activation).
/// Layers fuse this via `Act::kLeakyReLU`; the standalone class remains
/// for ad-hoc use and as the reference the fused epilogue is tested
/// against — as reference code it intentionally keeps the seed's
/// fresh-tensor-per-call behavior and takes no arena.
class LeakyReLU {
 public:
  explicit LeakyReLU(float slope = 0.01f) : slope_(slope) {}
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

 private:
  float slope_;
  Tensor x_;
};

/// 3x3 convolution with padding 1 and configurable stride (1 or 3 in the
/// paper's network). x: [N, C, H, W] -> y: [N, out, H', W'] with
/// H' = floor((H + 2 - 3) / stride) + 1. Lowered through im2col onto the
/// blocked GEMM, with bias (+ optional LeakyReLU) fused into the kernel
/// epilogue.
///
/// Pipeline contract — one persistent activation layout:
///  - blocked + ConvLayoutMode::kChannelMajor (the default): the im2col
///    matrix is stored transposed ([patch, rows]) and the GEMM writes its
///    channel-major [out, rows] output DIRECTLY into the layer's output
///    slot, which is tagged Layout::kChannelMajor — for rows = (img, oy,
///    ox) that [out, rows] matrix IS the [n, out, ho, wo] output stored
///    channel-major, so there is no reorder and no staging copy at all.
///    The next conv's im2col reads the channel-major slot through the
///    fused pack paths in nn/gemm.* (pack_cm_im2col / pack_cm_col2im),
///    which parameterize only the plane base offset by the input's
///    Layout tag: activations stay channel-major across the whole conv
///    trunk, and the only row-major seams in the network are the dataset
///    input (conv1 reads NCHW natively through the same pack path) and
///    the GlobalAvgPool output feeding the fc head (a [n+1, C] matrix
///    with no spatial extent — layout-free by construction). Backward
///    mirrors forward: dy arrives channel-major ([out, rows] linear in
///    storage, so the mask pass is a flat elementwise loop, not a
///    transpose) and dx is produced in the SAME layout as the forward
///    input, so gradients flow through the trunk without any reorder
///    either. Every data movement that remains is counted on the
///    nn.pack_bytes obs counter; the eliminated boundary permutations
///    are counted on nn.reorder_bytes by the paths below (the run
///    report proves the default pipeline keeps that counter at zero).
///  - blocked + ConvLayoutMode::kRowMajorCompat: the PR-7 pipeline,
///    retained as the A/B baseline — same GEMMs, but the output lands in
///    per-thread y_rows staging and is reordered into a row-major NCHW
///    slot (and dy is transposed back) at every layer boundary; those
///    copies are the nn.reorder_bytes cost the default mode deletes.
///  - reference: the seed pipeline on seed layouts (row-major im2col,
///    naive kernels, separate bias/activation passes, per-call interior
///    allocations) — the before side of bench_kernels and the ground
///    truth for the bit-identity tests. Row-major only.
/// All three produce bit-identical values: the layout modes change where
/// bytes live, never arithmetic or summation order (the GEMM operands and
/// the per-element accumulation chains are identical by construction).
/// The Layout tag guarantee: any tensor returned by forward/backward
/// carries the tag describing its actual storage order, and every
/// consumer dispatches on that tag (Debug builds assert the contract at
/// each boundary; see Tensor's layout checks).
class Conv2d {
 public:
  Conv2d(int in_channels, int out_channels, int stride, util::Pcg32& rng,
         std::string name, Act act = Act::kNone, float slope = 0.01f);

  /// See Linear::bind_arena.
  void bind_arena(Arena& arena);

  Tensor& forward(const Tensor& x);
  Tensor& backward(const Tensor& dy);
  void collect_params(std::vector<Param>& out);

  int out_size(int in_size) const { return (in_size + 2 - 3) / stride_ + 1; }

  /// When disabled, `backward` accumulates dW/db but skips the input
  /// gradient (dCols + col2im) and returns an empty tensor — the right
  /// setting for a network's first layer, whose input gradient nobody
  /// consumes.
  void set_compute_input_grad(bool enabled) { compute_input_grad_ = enabled; }

  /// Weight sharing for replicas; same contract as
  /// Linear::share_weights_from.
  void share_weights_from(const Conv2d& master);
  const Tensor& weight() const { return shared_w_ ? *shared_w_ : w_; }
  const Tensor& bias() const { return shared_b_ ? *shared_b_ : b_; }

 private:
  void ensure_arena();
  Tensor& forward_blocked(const Tensor& x);
  Tensor& forward_reference(const Tensor& x);
  Tensor& backward_blocked(const Tensor& dy);
  Tensor& backward_reference(const Tensor& dy);

  int in_channels_;
  int out_channels_;
  int stride_;
  std::string name_;
  Act act_;
  float slope_;
  bool compute_input_grad_ = true;
  Tensor w_;   ///< [out, in * 9]
  Tensor b_;   ///< [out]
  const Tensor* shared_w_ = nullptr;  ///< master's weights, when sharing
  const Tensor* shared_b_ = nullptr;
  Tensor dw_;
  Tensor db_;
  std::vector<int> x_shape_;
  bool used_blocked_path_ = true;  ///< pipeline of the last forward
  /// Storage layouts recorded at forward time (backward dispatches on
  /// these, not on the global mode — a mid-run mode flip between forward
  /// and backward must not change how cached state is interpreted).
  Layout x_layout_ = Layout::kRowMajor;
  Layout out_layout_ = Layout::kRowMajor;
  Tensor empty_;  ///< returned when the input gradient is skipped
  // Arena slots. cols (full: every element is a memcpy run, an explicit
  // padding zero, or a strided gather) and mask (full: GEMM epilogue)
  // persist from forward to backward; out (full: direct GEMM writeback in
  // channel-major mode, per-channel memcpy reorder in compat mode) and dx
  // (accum: col2im += — acquired Fill::kZero) are live until the next
  // call. The y_rows/dy_rows/dcols staging (all full) is call-transient
  // and comes from the per-thread staging arena (compat/row-major paths
  // only; the channel-major path needs none of it on forward).
  Arena* arena_ = nullptr;
  Arena::Slot cols_slot_ = 0;
  Arena::Slot mask_slot_ = 0;
  Arena::Slot out_slot_ = 0;
  Arena::Slot dx_slot_ = 0;
  const float* cols_ = nullptr;      ///< blocked im2col, [patch, rows]
  std::uint8_t* mask_ = nullptr;     ///< pre-activation < 0, when fused
  /// Reference-pipeline im2col, [rows, patch]. Deliberately NOT arena
  /// storage: the seed allocated (and zeroed) this matrix on every call,
  /// and the reference pipeline reproduces that cost as the bench
  /// baseline.
  std::vector<float> ref_cols_;
};

/// [N, C, H, W] -> [N, C] channel means. Accepts input in either storage
/// layout (the plane base offset is the only thing the tag changes) and
/// emits a row-major [N, C] matrix — this is the conv trunk's natural
/// row-major seam into the fc head, so keeping activations channel-major
/// upstream costs no conversion here. Backward returns dx in the SAME
/// layout the forward input had.
class GlobalAvgPool {
 public:
  /// See Linear::bind_arena.
  void bind_arena(Arena& arena);

  Tensor& forward(const Tensor& x);
  Tensor& backward(const Tensor& dy);

 private:
  void ensure_arena();

  std::vector<int> x_shape_;
  Layout x_layout_ = Layout::kRowMajor;  ///< layout of the last forward's x
  // Arena slots: y and dx are both fully overwritten each call.
  Arena* arena_ = nullptr;
  Arena::Slot y_slot_ = 0;
  Arena::Slot dx_slot_ = 0;
};

/// The paper's FC ResNet block: y = x + f3(f2(f1(x))) with
/// f_i = LReLU(Linear_i(.)); all widths equal. The activations are fused
/// into the Linears.
class ResBlock {
 public:
  ResBlock(int width, util::Pcg32& rng, const std::string& name);

  /// Binds the three member Linears; see Linear::bind_arena.
  void bind_arena(Arena& arena);

  Tensor& forward(const Tensor& x);
  Tensor& backward(const Tensor& dy);
  void collect_params(std::vector<Param>& out);

  /// Weight sharing for replicas; same contract as
  /// Linear::share_weights_from.
  void share_weights_from(const ResBlock& master);

 private:
  Linear fc1_;
  Linear fc2_;
  Linear fc3_;
};

}  // namespace sma::nn
