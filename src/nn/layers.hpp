// Neural-network layers with explicit backpropagation.
//
// Each layer caches what it needs during `forward` and returns the input
// gradient from `backward`, accumulating parameter gradients internally
// (zeroed by the optimizer step). One layer instance handles one position
// in the network; weight sharing (the conv trunk applied to n+1 images) is
// expressed by batching, not by layer reuse.
//
// Linear and Conv2d lower onto the blocked GEMM core (`nn/gemm.hpp`) with
// a fused bias + LeakyReLU epilogue: constructing a layer with
// `Act::kLeakyReLU` folds the activation into the kernel's writeback (the
// backward mask is captured from the pre-activation sign), which removes
// one full tensor copy per layer while producing bit-identical values to
// a separate activation layer. Scratch buffers (im2col matrix, packing
// panels, gradient staging) live on the layer and are reused across
// calls — the training hot path does no per-call allocation after the
// first batch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace sma::nn {

/// A learnable tensor and its gradient, as seen by the optimizer.
struct Param {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Optional activation fused into a layer's epilogue.
enum class Act { kNone, kLeakyReLU };

/// y = x W^T + b over the last dimension (optionally + LeakyReLU);
/// x: [N, in] -> y: [N, out].
class Linear {
 public:
  Linear(int in, int out, util::Pcg32& rng, std::string name,
         Act act = Act::kNone, float slope = 0.01f);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);
  void collect_params(std::vector<Param>& out);

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  /// Weight sharing for replicas (see AttackNet::clone_shared): after
  /// this call the layer reads `master`'s weight/bias tensors and frees
  /// its own weight storage. Gradients and activation caches stay
  /// private, so shared-weight replicas may run forward/backward
  /// concurrently as long as nobody mutates the master's weights
  /// meanwhile. `collect_params` keeps reporting the (now empty) private
  /// storage — a shared replica is never the optimizer's target.
  void share_weights_from(const Linear& master);

  /// The tensors forward/backward read: the master's after
  /// `share_weights_from`, this layer's own otherwise.
  const Tensor& weight() const { return shared_w_ ? *shared_w_ : w_; }
  const Tensor& bias() const { return shared_b_ ? *shared_b_ : b_; }

 private:
  int in_;
  int out_;
  std::string name_;
  Act act_;
  float slope_;
  Tensor w_;   ///< [out, in]
  Tensor b_;   ///< [out]
  const Tensor* shared_w_ = nullptr;  ///< master's weights, when sharing
  const Tensor* shared_b_ = nullptr;
  Tensor dw_;
  Tensor db_;
  Tensor x_;   ///< cached input
  std::vector<std::uint8_t> mask_;  ///< pre-activation < 0, when fused
};

/// y = max(0.01 x, x) elementwise (the paper's LReLU activation).
/// Layers fuse this via `Act::kLeakyReLU`; the standalone class remains
/// for ad-hoc use and as the reference the fused epilogue is tested
/// against.
class LeakyReLU {
 public:
  explicit LeakyReLU(float slope = 0.01f) : slope_(slope) {}
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

 private:
  float slope_;
  Tensor x_;
};

/// 3x3 convolution with padding 1 and configurable stride (1 or 3 in the
/// paper's network). x: [N, C, H, W] -> y: [N, out, H', W'] with
/// H' = floor((H + 2 - 3) / stride) + 1. Lowered through im2col onto the
/// blocked GEMM, with bias (+ optional LeakyReLU) fused into the kernel
/// epilogue.
///
/// Two internal pipelines, selected by the kernel backend:
///  - blocked: the im2col matrix is stored transposed ([patch, rows]) and
///    the GEMM output channel-major ([out, rows]). Every GEMM then has a
///    huge contiguous n dimension (full register panels), im2col rows
///    become memcpy runs, and the NCHW reorder collapses to per-channel
///    contiguous copies.
///  - reference: the seed pipeline on seed layouts (row-major im2col,
///    naive kernels, separate bias/activation passes) — the before side
///    of bench_kernels and the ground truth for the bit-identity tests.
/// Both produce bit-identical outputs and gradients.
class Conv2d {
 public:
  Conv2d(int in_channels, int out_channels, int stride, util::Pcg32& rng,
         std::string name, Act act = Act::kNone, float slope = 0.01f);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);
  void collect_params(std::vector<Param>& out);

  int out_size(int in_size) const { return (in_size + 2 - 3) / stride_ + 1; }

  /// When disabled, `backward` accumulates dW/db but skips the input
  /// gradient (dCols + col2im) and returns an empty tensor — the right
  /// setting for a network's first layer, whose input gradient nobody
  /// consumes.
  void set_compute_input_grad(bool enabled) { compute_input_grad_ = enabled; }

  /// Weight sharing for replicas; same contract as
  /// Linear::share_weights_from.
  void share_weights_from(const Conv2d& master);
  const Tensor& weight() const { return shared_w_ ? *shared_w_ : w_; }
  const Tensor& bias() const { return shared_b_ ? *shared_b_ : b_; }

 private:
  Tensor forward_blocked(const Tensor& x);
  Tensor forward_reference(const Tensor& x);
  Tensor backward_blocked(const Tensor& dy);
  Tensor backward_reference(const Tensor& dy);

  int in_channels_;
  int out_channels_;
  int stride_;
  std::string name_;
  Act act_;
  float slope_;
  bool compute_input_grad_ = true;
  Tensor w_;   ///< [out, in * 9]
  Tensor b_;   ///< [out]
  const Tensor* shared_w_ = nullptr;  ///< master's weights, when sharing
  const Tensor* shared_b_ = nullptr;
  Tensor dw_;
  Tensor db_;
  std::vector<int> x_shape_;
  bool used_blocked_path_ = true;  ///< pipeline of the last forward
  // Reusable per-layer scratch: the im2col matrix and activation mask
  // persist from forward to backward; purely transient staging (y^T,
  // dy^T, dcols^T) lives in shared thread-local buffers instead (see
  // layers.cpp) to keep lane replicas' working set small.
  std::vector<float> cols_;     ///< im2col, [rows, patch] (reference) or
                                ///< [patch, rows] (blocked)
  std::vector<std::uint8_t> mask_;  ///< pre-activation < 0, when fused
};

/// [N, C, H, W] -> [N, C] channel means.
class GlobalAvgPool {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

 private:
  std::vector<int> x_shape_;
};

/// The paper's FC ResNet block: y = x + f3(f2(f1(x))) with
/// f_i = LReLU(Linear_i(.)); all widths equal. The activations are fused
/// into the Linears.
class ResBlock {
 public:
  ResBlock(int width, util::Pcg32& rng, const std::string& name);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);
  void collect_params(std::vector<Param>& out);

  /// Weight sharing for replicas; same contract as
  /// Linear::share_weights_from.
  void share_weights_from(const ResBlock& master);

 private:
  Linear fc1_;
  Linear fc2_;
  Linear fc3_;
};

}  // namespace sma::nn
