// Neural-network layers with explicit backpropagation.
//
// Each layer caches what it needs during `forward` and returns the input
// gradient from `backward`, accumulating parameter gradients internally
// (zeroed by the optimizer step). One layer instance handles one position
// in the network; weight sharing (the conv trunk applied to n+1 images) is
// expressed by batching, not by layer reuse.
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace sma::nn {

/// A learnable tensor and its gradient, as seen by the optimizer.
struct Param {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// y = x W^T + b over the last dimension; x: [N, in] -> y: [N, out].
class Linear {
 public:
  Linear(int in, int out, util::Pcg32& rng, std::string name);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);
  void collect_params(std::vector<Param>& out);

  int in_features() const { return in_; }
  int out_features() const { return out_; }

 private:
  int in_;
  int out_;
  std::string name_;
  Tensor w_;   ///< [out, in]
  Tensor b_;   ///< [out]
  Tensor dw_;
  Tensor db_;
  Tensor x_;   ///< cached input
};

/// y = max(0.01 x, x) elementwise (the paper's LReLU activation).
class LeakyReLU {
 public:
  explicit LeakyReLU(float slope = 0.01f) : slope_(slope) {}
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

 private:
  float slope_;
  Tensor x_;
};

/// 3x3 convolution with padding 1 and configurable stride (1 or 3 in the
/// paper's network). x: [N, C, H, W] -> y: [N, out, H', W'] with
/// H' = floor((H + 2 - 3) / stride) + 1. Implemented with im2col + GEMM.
class Conv2d {
 public:
  Conv2d(int in_channels, int out_channels, int stride, util::Pcg32& rng,
         std::string name);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);
  void collect_params(std::vector<Param>& out);

  int out_size(int in_size) const { return (in_size + 2 - 3) / stride_ + 1; }

 private:
  int in_channels_;
  int out_channels_;
  int stride_;
  std::string name_;
  Tensor w_;   ///< [out, in * 9]
  Tensor b_;   ///< [out]
  Tensor dw_;
  Tensor db_;
  Tensor cols_;  ///< cached im2col matrix [N * H' * W', in * 9]
  std::vector<int> x_shape_;
};

/// [N, C, H, W] -> [N, C] channel means.
class GlobalAvgPool {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

 private:
  std::vector<int> x_shape_;
};

/// The paper's FC ResNet block: y = x + f3(f2(f1(x))) with
/// f_i = LReLU(Linear_i(.)); all widths equal.
class ResBlock {
 public:
  ResBlock(int width, util::Pcg32& rng, const std::string& name);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);
  void collect_params(std::vector<Param>& out);

 private:
  Linear fc1_;
  Linear fc2_;
  Linear fc3_;
  LeakyReLU act1_;
  LeakyReLU act2_;
  LeakyReLU act3_;
};

// --- low-level GEMM helpers (row-major), exposed for unit testing -------

/// C[M,N] += A[M,K] * B[K,N]
void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c);
/// C[M,N] += A^T[K,M] * B[K,N]   (a is stored [K, M])
void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c);
/// C[M,N] += A[M,K] * B^T[N,K]   (b is stored [N, K])
void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c);

}  // namespace sma::nn
